// Route repair: the paper's conclusion asks whether damaged routes can be
// efficiently replaced after deletions. This example pins end-to-end routes
// across an overlay, lets the adversary delete nodes on those routes, and
// shows the routes being spliced locally through the expander clouds Xheal
// installs — most hops of each damaged route are reused. The short detours
// exist because healed paths stay within Theorem 2.2's O(log n) stretch of
// the originals.
//
// Run with: go run ./examples/route-repair
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/xheal/xheal"
)

func main() {
	const n = 64
	g, err := xheal.RandomRegularGraph(n, 2, 77) // 4-regular overlay
	if err != nil {
		log.Fatal(err)
	}
	net, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	// Pin six long-haul routes between fixed endpoints.
	table := xheal.NewRouteTable()
	pairs := [][2]xheal.NodeID{{0, 32}, {1, 40}, {2, 50}, {3, 60}, {4, 33}, {5, 47}}
	protected := map[xheal.NodeID]bool{}
	for _, p := range pairs {
		r, err := table.Pin(net.Graph(), p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pinned route %2d -> %2d (%d hops)\n", p[0], p[1], r.Len())
		protected[p[0]] = true
		protected[p[1]] = true
	}

	// The adversary deletes interior nodes — including route hops.
	rng := rand.New(rand.NewSource(9))
	deleted := 0
	for deleted < 20 {
		alive := net.Graph().Nodes()
		victim := alive[rng.Intn(len(alive))]
		if protected[victim] {
			continue
		}
		if err := net.Delete(victim); err != nil {
			log.Fatal(err)
		}
		table.OnDelete(net.Graph(), victim)
		deleted++
	}

	stats := table.Stats()
	fmt.Printf("\nafter %d deletions: %d routes alive, %d lost\n",
		deleted, table.Routes(), stats.Lost)
	fmt.Printf("route repairs: %d (full rebuilds: %d)\n", stats.Repairs, stats.Rebuilt)
	if stats.HopsTotal > 0 {
		fmt.Printf("repair locality: %.0f%% of hops reused from damaged routes\n",
			100*float64(stats.HopsReused)/float64(stats.HopsTotal))
	}
	for _, p := range pairs {
		r, err := table.Get(p[0], p[1])
		if err != nil {
			log.Fatalf("route %v lost: %v", p, err)
		}
		fmt.Printf("route %2d -> %2d now %d hops: %v\n", p[0], p[1], r.Len(), r.Hops)
	}
	if err := net.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall routes survived 20 deletions through localized repair")
}
