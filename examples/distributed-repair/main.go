// Distributed repair: run the paper's §5 protocol — every node a goroutine,
// all coordination by messages in synchronous rounds — and watch the
// per-deletion cost match Theorem 5: O(log n) recovery rounds and amortized
// messages within O(κ·log n) of Lemma 5's Θ(deg) lower bound.
//
// Run with: go run ./examples/distributed-repair
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/xheal/xheal"
)

func main() {
	const n = 128
	// A random 6-regular expander overlay (the paper's own construction).
	g, err := xheal.RandomRegularGraph(n, 3, 21)
	if err != nil {
		log.Fatal(err)
	}
	d, err := xheal.NewDistributed(g, xheal.WithKappa(4), xheal.WithSeed(33))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	fmt.Printf("distributed Xheal on a %d-node 6-regular overlay (kappa=4)\n\n", n)
	fmt.Printf("%-10s %-8s %-8s %-10s\n", "deleted", "deg_G'", "rounds", "messages")

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 32; i++ {
		alive := d.State().AliveNodes()
		victim := alive[rng.Intn(len(alive))]
		if err := d.Delete(victim); err != nil {
			log.Fatal(err)
		}
		costs := d.Costs()
		c := costs[len(costs)-1]
		if i%4 == 0 {
			fmt.Printf("%-10d %-8d %-8d %-10d\n", c.Node, c.BlackDegree, c.Rounds, c.Messages)
		}
	}

	t := d.Totals()
	ap := d.AmortizedLowerBound()
	amort := float64(t.Messages) / float64(t.Deletions)
	fmt.Printf("\n%d deletions: %.1f rounds and %.1f messages per repair (amortized)\n",
		t.Deletions, float64(t.Rounds)/float64(t.Deletions), amort)
	fmt.Printf("Lemma 5 lower bound A(p) = %.1f msgs; Theorem 5 envelope k*log2(n)*A(p) = %.1f\n",
		ap, 4*math.Log2(n)*ap)

	// The decisive check: every node's local view — built purely from the
	// messages it received — must equal the healed graph.
	if err := d.ValidateLocalViews(); err != nil {
		log.Fatalf("local view divergence: %v", err)
	}
	fmt.Println("every node's message-built local view matches the healed graph")
	if !d.Graph().IsConnected() {
		log.Fatal("overlay disconnected")
	}
	fmt.Println("overlay connected throughout")
}
