// Star attack: the paper's motivating example (§1, Related Work). Deleting
// the center of a star destroys naive and tree-based repairs' expansion —
// Forgiving Tree/Graph leave h = O(1/n) — while Xheal keeps it constant.
// This example reproduces that comparison across every healer in the suite.
//
// Run with: go run ./examples/star-attack
package main

import (
	"fmt"
	"log"

	"github.com/xheal/xheal"
)

const leaves = 16

func main() {
	g, err := xheal.StarGraph(leaves)
	if err != nil {
		log.Fatal(err)
	}

	snaps, err := xheal.Compare(g, 0, xheal.HealerNames(),
		xheal.WithKappa(4), xheal.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("star K(1,%d), center deleted — healed topology by algorithm:\n\n", leaves)
	fmt.Printf("%-16s %-10s %-10s %-10s %-8s %-9s\n",
		"healer", "h(G)", "phi(G)", "lambda2", "maxdeg", "connected")
	for _, name := range xheal.HealerNames() {
		s := snaps[name]
		fmt.Printf("%-16s %-10.3f %-10.3f %-10.3f %-8d %-9v\n",
			name, s.ExpansionExact, s.ConductanceExact, s.Lambda2, s.MaxDegree, s.Connected)
	}

	fmt.Println("\npaper's prediction:")
	fmt.Printf("  tree repairs:  h ~ 2/n = %.3f  (expansion collapses)\n", 2.0/float64(leaves))
	fmt.Println("  xheal:         h >= min(alpha, h(G')) — constant, at bounded degree")
	fmt.Println("  clique repair: best expansion but degree Theta(n); star repair: hub degree n")
}
