// Quickstart: build a small network, let the adversary delete its hub, and
// watch Xheal wire a κ-regular expander across the wound. Demonstrates the
// core claim of Theorem 2: after Algorithm 3.1 heals a deletion, the graph
// stays connected with constant expansion and bounded degree growth.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/xheal/xheal"
)

func main() {
	// A star network: hub 0, twelve leaves. The worst case for naive
	// repairs — everything routes through the hub.
	g, err := xheal.StarGraph(12)
	if err != nil {
		log.Fatal(err)
	}

	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	before := n.Measure()
	fmt.Printf("before attack: n=%d m=%d h=%.3f (exact)\n",
		before.Nodes, before.Edges, before.ExpansionExact)

	// The adversary deletes the hub.
	if err := n.Delete(0); err != nil {
		log.Fatal(err)
	}

	after := n.Measure()
	fmt.Printf("after healing: n=%d m=%d connected=%v\n", after.Nodes, after.Edges, after.Connected)
	fmt.Printf("  edge expansion h(G) = %.3f (constant, not O(1/n))\n", after.ExpansionExact)
	fmt.Printf("  max degree %d <= kappa bound (Theorem 2.1: deg <= k*deg_G' + 2k)\n", after.MaxDegree)
	fmt.Printf("  stretch vs G' = %.2f (Theorem 2.2 allows O(log n))\n", after.MaxStretch)
	fmt.Printf("  lambda2 = %.3f (spectral gap preserved, Theorem 2.4)\n", after.Lambda2)

	if err := n.CheckInvariants(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("all structural invariants hold")
}
