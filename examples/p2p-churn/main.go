// P2P churn: the scenario the paper's introduction motivates (the 2007
// Skype outage). A peer-to-peer overlay suffers sustained churn — peers
// joining and an adversary (or failures) removing peers, including
// well-connected super-nodes. Xheal keeps the overlay connected with
// bounded degree growth and a healthy spectral gap throughout —
// Theorem 2's guarantees (connectivity, κ-factor degrees, expansion, λ₂)
// under sustained mixed churn.
//
// Run with: go run ./examples/p2p-churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/xheal/xheal"
)

func main() {
	// Start from a power-law overlay: a few super-nodes, many leaves —
	// the shape real P2P networks grow into.
	g, err := xheal.PreferentialAttachmentGraph(96, 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("P2P overlay under churn (deletions target the highest-degree peer half the time)")
	fmt.Printf("%-6s %-7s %-7s %-10s %-9s %-12s %-9s\n",
		"event", "peers", "links", "connected", "maxdeg", "deg-ratio", "lambda2n")

	rng := rand.New(rand.NewSource(5))
	nextPeer := xheal.NodeID(10000)
	for step := 1; step <= 240; step++ {
		alive := n.Graph().Nodes()
		switch {
		case len(alive) > 24 && rng.Float64() < 0.55:
			// Failure: half the time the best-connected super-node dies
			// (the adversarial case), otherwise a random peer.
			victim := alive[rng.Intn(len(alive))]
			if rng.Intn(2) == 0 {
				best := -1
				for _, p := range alive {
					if d := n.Graph().Degree(p); d > best {
						best = d
						victim = p
					}
				}
			}
			if err := n.Delete(victim); err != nil {
				log.Fatal(err)
			}
		default:
			// A new peer bootstraps off 2 random existing peers.
			attach := []xheal.NodeID{alive[rng.Intn(len(alive))]}
			if second := alive[rng.Intn(len(alive))]; second != attach[0] {
				attach = append(attach, second)
			}
			if err := n.Insert(nextPeer, attach); err != nil {
				log.Fatal(err)
			}
			nextPeer++
		}

		if step%40 == 0 {
			snap := n.Measure()
			fmt.Printf("%-6d %-7d %-7d %-10v %-9d %-12.2f %-9.4f\n",
				step, snap.Nodes, snap.Edges, snap.Connected, snap.MaxDegree,
				snap.MaxDegreeRatio, snap.Lambda2Norm)
			if !snap.Connected {
				log.Fatal("overlay disconnected — healing failed")
			}
		}
	}

	st := n.Stats()
	fmt.Printf("\nhealing work over %d insertions / %d deletions:\n", st.Insertions, st.Deletions)
	fmt.Printf("  %d primary clouds, %d secondary clouds, %d combines, %d shares\n",
		st.PrimaryClouds, st.SecondaryClouds, st.Combines, st.Shares)
	fmt.Printf("  %d healing edges added, %d removed\n", st.HealEdgesAdded, st.HealEdgesRemoved)
	if err := n.CheckInvariants(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("  all invariants hold; overlay stayed connected throughout")
}
