package spectral

import (
	"math"
	"math/rand"

	"github.com/xheal/xheal/internal/graph"
)

// jacobiCutoff is the largest dimension solved with the dense Jacobi method;
// beyond it the Lanczos path is used.
const jacobiCutoff = 220

// lanczosSteps is the Krylov dimension used for λ₂ estimation on large
// graphs. Extreme Ritz values converge long before this for graphs with a
// spectral gap (exactly the regime the paper cares about).
const lanczosSteps = 90

// Laplacian returns the combinatorial Laplacian L = D − A of g and the node
// ordering used for indices (ascending NodeID).
func Laplacian(g *graph.Graph) (*Sym, []graph.NodeID) {
	nodes := g.Nodes()
	idx := make(map[graph.NodeID]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	l := NewSym(len(nodes))
	for i, n := range nodes {
		l.Set(i, i, float64(g.Degree(n)))
		for _, w := range g.Neighbors(n) {
			j := idx[w]
			if i < j {
				l.Set(i, j, -1)
			}
		}
	}
	return l, nodes
}

// NormalizedLaplacian returns the symmetric normalized Laplacian
// ℒ = I − D^{−1/2} A D^{−1/2} of g and the node ordering. Isolated nodes
// contribute a zero row/column (eigenvalue 0), matching the convention that
// they form their own components.
func NormalizedLaplacian(g *graph.Graph) (*Sym, []graph.NodeID) {
	nodes := g.Nodes()
	idx := make(map[graph.NodeID]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	l := NewSym(len(nodes))
	for i, n := range nodes {
		di := g.Degree(n)
		if di == 0 {
			continue
		}
		l.Set(i, i, 1)
		for _, w := range g.Neighbors(n) {
			j := idx[w]
			if i < j {
				dj := g.Degree(w)
				l.Set(i, j, -1/math.Sqrt(float64(di)*float64(dj)))
			}
		}
	}
	return l, nodes
}

// AlgebraicConnectivity returns λ₂(L), the second-smallest eigenvalue of the
// combinatorial Laplacian — the paper's λ(G). It is 0 exactly when the graph
// is disconnected (detected combinatorially for robustness) and undefined
// (returned as 0) for graphs with fewer than 2 nodes.
func AlgebraicConnectivity(g *graph.Graph, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	if n <= jacobiCutoff {
		l, _ := Laplacian(g)
		eig := JacobiEigenvalues(l, 0)
		return clampTiny(eig[1])
	}
	// Matrix-free Lanczos: the Laplacian is applied straight from the
	// adjacency snapshot, O(n+m) memory instead of the dense O(n²) build.
	// Deflate the kernel: the all-ones vector.
	op := NewCSR(g)
	ones := constUnit(n)
	ritz, err := Lanczos(n, lanczosSteps, op.MulLaplacian, [][]float64{ones}, rng)
	if err != nil || len(ritz) == 0 {
		return 0
	}
	return clampTiny(ritz[0])
}

// NormalizedAlgebraicConnectivity returns λ₂ of the normalized Laplacian,
// the quantity the Cheeger inequality (paper Thm 1) brackets with the
// conductance: 2φ ≥ λ ≥ φ²/2.
func NormalizedAlgebraicConnectivity(g *graph.Graph, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	if n <= jacobiCutoff {
		l, _ := NormalizedLaplacian(g)
		eig := JacobiEigenvalues(l, 0)
		return clampTiny(eig[1])
	}
	// Matrix-free Lanczos; kernel of the normalized Laplacian is D^{1/2}·1.
	op := newNormCSR(g)
	kern := make([]float64, n)
	for i, d := range op.Deg {
		kern[i] = math.Sqrt(d)
	}
	Normalize(kern)
	ritz, err := Lanczos(n, lanczosSteps, op.MulNormalized, [][]float64{kern}, rng)
	if err != nil || len(ritz) == 0 {
		return 0
	}
	return clampTiny(ritz[0])
}

// FiedlerVector returns the eigenvector for λ₂(L) together with the node
// ordering. For large graphs it uses shifted power iteration on (cI − L)
// restricted to the complement of the all-ones kernel. Returns nil for
// graphs with fewer than 2 nodes.
func FiedlerVector(g *graph.Graph, rng *rand.Rand) ([]float64, []graph.NodeID) {
	n := g.NumNodes()
	if n < 2 {
		return nil, nil
	}
	if n <= jacobiCutoff {
		l, nodes := Laplacian(g)
		_, vecs := JacobiEigen(l, 0)
		return vecs[1], nodes
	}
	// Power iteration on B = cI − L within span{1}^⊥: the dominant
	// eigenvector of B there corresponds to λ₂(L). The Laplacian is applied
	// matrix-free from the adjacency snapshot.
	op := NewCSR(g)
	nodes := op.Nodes
	c := 2*float64(g.MaxDegree()) + 1
	ones := constUnit(n)
	v := randUnit(n, rng, [][]float64{ones})
	if v == nil {
		return nil, nodes
	}
	w := make([]float64, n)
	for iter := 0; iter < 600; iter++ {
		op.MulLaplacian(w, v)
		for i := range w {
			w[i] = c*v[i] - w[i]
		}
		orthogonalize(w, [][]float64{ones})
		if !Normalize(w) {
			break
		}
		// Convergence check every few iterations.
		if iter%8 == 7 {
			diff := 0.0
			for i := range w {
				d := math.Abs(w[i]) - math.Abs(v[i])
				diff += d * d
			}
			if math.Sqrt(diff) < 1e-10 {
				copy(v, w)
				break
			}
		}
		copy(v, w)
	}
	return v, nodes
}

// SpectrumSummary describes the Laplacian spectrum extremes of a graph.
type SpectrumSummary struct {
	// Lambda2 is λ₂ of the combinatorial Laplacian (algebraic connectivity).
	Lambda2 float64
	// Lambda2Normalized is λ₂ of the normalized Laplacian.
	Lambda2Normalized float64
	// LambdaMax is the largest combinatorial Laplacian eigenvalue (only
	// populated on the dense path; 0 otherwise).
	LambdaMax float64
}

// Summarize computes the spectrum summary of g.
func Summarize(g *graph.Graph, rng *rand.Rand) SpectrumSummary {
	s := SpectrumSummary{
		Lambda2:           AlgebraicConnectivity(g, rng),
		Lambda2Normalized: NormalizedAlgebraicConnectivity(g, rng),
	}
	if n := g.NumNodes(); n >= 2 && n <= jacobiCutoff {
		l, _ := Laplacian(g)
		eig := JacobiEigenvalues(l, 0)
		s.LambdaMax = eig[len(eig)-1]
	}
	return s
}

// CheegerLower returns the lower bound on conductance implied by the Cheeger
// inequality (paper Thm 1: 2φ ≥ λ): given λ₂ of the normalized Laplacian,
// φ ≥ λ/2.
func CheegerLower(lambdaNormalized float64) float64 { return lambdaNormalized / 2 }

// CheegerUpper returns the Cheeger-inequality upper bound φ ≤ √(2λ) implied
// by λ > φ²/2 (paper Thm 1).
func CheegerUpper(lambdaNormalized float64) float64 {
	return math.Sqrt(2 * lambdaNormalized)
}

func constUnit(n int) []float64 {
	v := make([]float64, n)
	c := 1 / math.Sqrt(float64(n))
	for i := range v {
		v[i] = c
	}
	return v
}

// clampTiny zeroes numerically-insignificant negatives produced by floating
// point round-off on PSD matrices.
func clampTiny(x float64) float64 {
	if x < 0 && x > -1e-9 {
		return 0
	}
	return x
}

// MixingTimeBound returns the standard upper bound on the mixing time of
// the lazy random walk implied by the normalized spectral gap:
// τ ≈ log(n)/λ₂(normalized). The paper motivates λ as the quantity
// capturing mixing time and routing congestion (§1.1); this helper turns a
// measured gap into the walk-length scale. Returns +Inf when the gap is 0.
func MixingTimeBound(lambdaNormalized float64, n int) float64 {
	if lambdaNormalized <= 0 || n < 2 {
		return math.Inf(1)
	}
	return math.Log(float64(n)) / lambdaNormalized
}
