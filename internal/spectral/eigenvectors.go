package spectral

import (
	"math"
	"sort"
)

// JacobiEigen returns all eigenvalues (ascending) and the corresponding
// orthonormal eigenvectors of the symmetric matrix s. vecs[k] is the
// eigenvector for vals[k]. The input is not modified.
func JacobiEigen(s *Sym, tol float64) (vals []float64, vecs [][]float64) {
	a := s.Clone()
	n := a.Dim()
	if n == 0 {
		return nil, nil
	}
	if tol <= 0 {
		scale := a.offDiagNorm() + diagNorm(a)
		tol = 1e-12 * (scale + 1)
	}
	// v holds the accumulated rotations, column j = eigenvector j.
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if a.offDiagNorm() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rotateWithVectors(a, v, p, q)
			}
		}
	}
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: a.At(i, i), col: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val < pairs[j].val })
	vals = make([]float64, n)
	vecs = make([][]float64, n)
	for k, p := range pairs {
		vals[k] = p.val
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = v[i*n+p.col]
		}
		vecs[k] = col
	}
	return vals, vecs
}

// rotateWithVectors applies a Jacobi rotation to a, accumulating it into the
// eigenvector matrix v (row-major n×n).
func rotateWithVectors(a *Sym, v []float64, p, q int) {
	apq := a.At(p, q)
	if apq == 0 {
		return
	}
	app := a.At(p, p)
	aqq := a.At(q, q)
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(theta*theta+1))
	} else {
		t = -1 / (-theta + math.Sqrt(theta*theta+1))
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c
	tau := s / (1 + c)

	n := a.Dim()
	a.Set(p, p, app-t*apq)
	a.Set(q, q, aqq+t*apq)
	a.Set(p, q, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := a.At(i, p)
		aiq := a.At(i, q)
		a.Set(i, p, aip-s*(aiq+tau*aip))
		a.Set(i, q, aiq+s*(aip-tau*aiq))
	}
	for i := 0; i < n; i++ {
		vip := v[i*n+p]
		viq := v[i*n+q]
		v[i*n+p] = vip - s*(viq+tau*vip)
		v[i*n+q] = viq + s*(vip-tau*viq)
	}
}
