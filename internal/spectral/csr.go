package spectral

import (
	"math"

	"github.com/xheal/xheal/internal/graph"
)

// CSR is a compressed-sparse-row snapshot of a graph's adjacency: the
// matrix-free backend for the large-graph eigensolver paths, also reused by
// the metrics package for walk evolution. Building it costs O(n + m) time
// and memory — compare the O(n²) dense Sym the Jacobi path needs — and one
// Laplacian matvec then costs O(n + m).
//
// The snapshot is immutable and does not track the graph; rebuild after the
// graph mutates.
type CSR struct {
	Nodes  []graph.NodeID // ascending; row i is Nodes[i]
	RowPtr []int32        // len n+1; row i's columns are Cols[RowPtr[i]:RowPtr[i+1]]
	Cols   []int32        // neighbor row indices, ascending within each row
	Deg    []float64      // Deg[i] = len(row i)
}

// Row returns row i's neighbor indices.
func (a *CSR) Row(i int) []int32 { return a.Cols[a.RowPtr[i]:a.RowPtr[i+1]] }

// NewCSR snapshots g's adjacency in node-ascending order. Rows keep
// neighbors sorted so float accumulation order — and therefore every
// eigenvalue bit — is reproducible run to run. Neighbors are gathered with
// AppendNeighbors into one reusable buffer rather than Neighbors, so a
// one-shot measurement does not leave per-node cache slices on the graph.
func NewCSR(g *graph.Graph) *CSR {
	nodes := g.Nodes()
	n := len(nodes)
	idx := make(map[graph.NodeID]int32, n)
	for i, node := range nodes {
		idx[node] = int32(i)
	}
	a := &CSR{
		Nodes:  nodes,
		RowPtr: make([]int32, n+1),
		Cols:   make([]int32, 0, 2*g.NumEdges()),
		Deg:    make([]float64, n),
	}
	buf := make([]graph.NodeID, 0, g.MaxDegree())
	for i, node := range nodes {
		buf = g.AppendNeighbors(buf[:0], node)
		for _, w := range buf {
			a.Cols = append(a.Cols, idx[w])
		}
		a.RowPtr[i+1] = int32(len(a.Cols))
		a.Deg[i] = float64(len(buf))
	}
	return a
}

// MulLaplacian computes dst = L·x for the combinatorial Laplacian
// L = D − A without materializing any matrix.
func (a *CSR) MulLaplacian(dst, x []float64) {
	for i := range dst {
		sum := 0.0
		for _, j := range a.Row(i) {
			sum += x[j]
		}
		dst[i] = a.Deg[i]*x[i] - sum
	}
}

// normCSR extends CSR with the D^{−1/2} scaling of the symmetric
// normalized Laplacian ℒ = I − D^{−1/2} A D^{−1/2}.
type normCSR struct {
	*CSR
	invSqrt []float64 // 1/√deg, 0 for isolated nodes
}

func newNormCSR(g *graph.Graph) *normCSR {
	a := NewCSR(g)
	inv := make([]float64, len(a.Deg))
	for i, d := range a.Deg {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	return &normCSR{CSR: a, invSqrt: inv}
}

// MulNormalized computes dst = ℒ·x. Isolated nodes keep the zero-row
// convention of NormalizedLaplacian (their entry of dst is 0).
func (a *normCSR) MulNormalized(dst, x []float64) {
	for i := range dst {
		if a.Deg[i] == 0 {
			dst[i] = 0
			continue
		}
		sum := 0.0
		for _, j := range a.Row(i) {
			sum += a.invSqrt[j] * x[j]
		}
		dst[i] = x[i] - a.invSqrt[i]*sum
	}
}
