package spectral

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func buildPath(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

func buildCycle(n int) *graph.Graph {
	g := buildPath(n)
	g.EnsureEdge(0, graph.NodeID(n-1))
	return g
}

func buildComplete(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return g
}

func TestJacobiDiagonalMatrix(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 0, 3)
	s.Set(1, 1, 1)
	s.Set(2, 2, 2)
	eig := JacobiEigenvalues(s, 0)
	want := []float64{1, 2, 3}
	for i := range want {
		if !approxEqual(eig[i], want[i], 1e-10) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	s := NewSym(2)
	s.Set(0, 0, 2)
	s.Set(1, 1, 2)
	s.Set(0, 1, 1)
	eig := JacobiEigenvalues(s, 0)
	if !approxEqual(eig[0], 1, 1e-10) || !approxEqual(eig[1], 3, 1e-10) {
		t.Fatalf("eig = %v, want [1 3]", eig)
	}
}

func TestJacobiTraceAndFrobeniusPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	trace := 0.0
	frob := 0.0
	for i := 0; i < n; i++ {
		trace += s.At(i, i)
		for j := 0; j < n; j++ {
			frob += s.At(i, j) * s.At(i, j)
		}
	}
	eig := JacobiEigenvalues(s, 0)
	sumEig, sumSq := 0.0, 0.0
	for _, v := range eig {
		sumEig += v
		sumSq += v * v
	}
	if !approxEqual(trace, sumEig, 1e-8) {
		t.Fatalf("trace %v != eigenvalue sum %v", trace, sumEig)
	}
	if !approxEqual(frob, sumSq, 1e-6) {
		t.Fatalf("frobenius² %v != eigenvalue square sum %v", frob, sumSq)
	}
}

func TestJacobiEigenVectorsAreEigenvectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	vals, vecs := JacobiEigen(s, 0)
	dst := make([]float64, n)
	for k := 0; k < n; k++ {
		if err := s.MulVec(dst, vecs[k]); err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		for i := 0; i < n; i++ {
			if !approxEqual(dst[i], vals[k]*vecs[k][i], 1e-7) {
				t.Fatalf("A·v != λ·v for eigenpair %d (component %d: %v vs %v)",
					k, i, dst[i], vals[k]*vecs[k][i])
			}
		}
	}
	// Orthonormality.
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			if !approxEqual(Dot(vecs[a], vecs[b]), want, 1e-8) {
				t.Fatalf("eigenvectors %d,%d not orthonormal", a, b)
			}
		}
	}
}

func TestLaplacianStructure(t *testing.T) {
	g := buildPath(3)
	l, nodes := Laplacian(g)
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	// Row sums of a Laplacian are zero.
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += l.At(i, j)
		}
		if !approxEqual(sum, 0, 1e-12) {
			t.Fatalf("row %d sum = %v, want 0", i, sum)
		}
	}
	if l.At(1, 1) != 2 {
		t.Fatalf("middle degree = %v, want 2", l.At(1, 1))
	}
}

// Known spectrum: path P_n Laplacian eigenvalues are 2-2cos(πk/n) = 4sin²(πk/2n).
func TestAlgebraicConnectivityPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 5, 10, 25} {
		g := buildPath(n)
		got := AlgebraicConnectivity(g, rng)
		want := 4 * math.Pow(math.Sin(math.Pi/(2*float64(n))), 2)
		if !approxEqual(got, want, 1e-8) {
			t.Fatalf("λ₂(P_%d) = %v, want %v", n, got, want)
		}
	}
}

// Known spectrum: K_n Laplacian eigenvalues are 0 and n (multiplicity n-1).
func TestAlgebraicConnectivityComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 6, 12} {
		g := buildComplete(n)
		got := AlgebraicConnectivity(g, rng)
		if !approxEqual(got, float64(n), 1e-8) {
			t.Fatalf("λ₂(K_%d) = %v, want %d", n, got, n)
		}
	}
}

// Known spectrum: cycle C_n eigenvalues are 2-2cos(2πk/n).
func TestAlgebraicConnectivityCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 12
	g := buildCycle(n)
	got := AlgebraicConnectivity(g, rng)
	want := 2 - 2*math.Cos(2*math.Pi/float64(n))
	if !approxEqual(got, want, 1e-8) {
		t.Fatalf("λ₂(C_%d) = %v, want %v", n, got, want)
	}
}

func TestAlgebraicConnectivityDisconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(2, 3)
	if got := AlgebraicConnectivity(g, rng); got != 0 {
		t.Fatalf("λ₂ of disconnected graph = %v, want 0", got)
	}
	single := graph.New()
	single.EnsureNode(0)
	if got := AlgebraicConnectivity(single, rng); got != 0 {
		t.Fatalf("λ₂ of single node = %v, want 0", got)
	}
}

func TestLanczosMatchesJacobiOnLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Random connected graph, dense-solver size, then force the Lanczos path
	// by calling Lanczos directly.
	g := buildCycle(60)
	extra := rand.New(rand.NewSource(5))
	for k := 0; k < 80; k++ {
		u := graph.NodeID(extra.Intn(60))
		v := graph.NodeID(extra.Intn(60))
		g.EnsureEdge(u, v)
	}
	l, _ := Laplacian(g)
	dense := JacobiEigenvalues(l, 0)
	ones := constUnit(60)
	ritz, err := Lanczos(60, 50, func(dst, x []float64) { _ = l.MulVec(dst, x) },
		[][]float64{ones}, rng)
	if err != nil {
		t.Fatalf("Lanczos: %v", err)
	}
	if !approxEqual(ritz[0], dense[1], 1e-6) {
		t.Fatalf("Lanczos λ₂ = %v, Jacobi λ₂ = %v", ritz[0], dense[1])
	}
	if !approxEqual(ritz[len(ritz)-1], dense[len(dense)-1], 1e-6) {
		t.Fatalf("Lanczos λmax = %v, Jacobi λmax = %v", ritz[len(ritz)-1], dense[len(dense)-1])
	}
}

func TestLargeGraphLanczosPath(t *testing.T) {
	// n > jacobiCutoff exercises the Lanczos branch of AlgebraicConnectivity.
	rng := rand.New(rand.NewSource(2))
	n := jacobiCutoff + 40
	g := buildCycle(n)
	// Add chords to give it a real gap.
	extra := rand.New(rand.NewSource(9))
	for k := 0; k < 4*n; k++ {
		g.EnsureEdge(graph.NodeID(extra.Intn(n)), graph.NodeID(extra.Intn(n)))
	}
	got := AlgebraicConnectivity(g, rng)
	if got <= 0 {
		t.Fatalf("λ₂ = %v, want > 0 for connected graph", got)
	}
}

func TestNormalizedLaplacianCompleteGraph(t *testing.T) {
	// Normalized Laplacian of K_n has eigenvalues 0 and n/(n-1).
	rng := rand.New(rand.NewSource(1))
	n := 8
	g := buildComplete(n)
	got := NormalizedAlgebraicConnectivity(g, rng)
	want := float64(n) / float64(n-1)
	if !approxEqual(got, want, 1e-8) {
		t.Fatalf("normalized λ₂(K_%d) = %v, want %v", n, got, want)
	}
}

func TestFiedlerVectorSplitsPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildPath(9)
	vec, nodes := FiedlerVector(g, rng)
	if vec == nil {
		t.Fatal("nil Fiedler vector")
	}
	// The Fiedler vector of a path is monotone: signs split the path in two
	// contiguous halves.
	changes := 0
	for i := 0; i+1 < len(nodes); i++ {
		if (vec[i] < 0) != (vec[i+1] < 0) {
			changes++
		}
	}
	if changes != 1 {
		t.Fatalf("Fiedler vector sign changes along path = %d, want 1 (vec=%v)", changes, vec)
	}
}

func TestTridiagEigenvalues(t *testing.T) {
	// Tridiagonal with diag=2, off=-1 (Dirichlet Laplacian) has eigenvalues
	// 2-2cos(kπ/(m+1)).
	m := 7
	alphas := make([]float64, m)
	betas := make([]float64, m-1)
	for i := range alphas {
		alphas[i] = 2
	}
	for i := range betas {
		betas[i] = -1
	}
	eig := TridiagEigenvalues(alphas, betas)
	for k := 1; k <= m; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(m+1))
		if !approxEqual(eig[k-1], want, 1e-9) {
			t.Fatalf("eig[%d] = %v, want %v", k-1, eig[k-1], want)
		}
	}
}

func TestTridiagConstant(t *testing.T) {
	eig := TridiagEigenvalues([]float64{5, 5, 5}, []float64{0, 0})
	for _, v := range eig {
		if !approxEqual(v, 5, 1e-9) {
			t.Fatalf("eig = %v, want all 5", eig)
		}
	}
}

func TestCheegerBoundsOrdering(t *testing.T) {
	for _, lam := range []float64{0.01, 0.4, 1, 1.7} {
		lo, hi := CheegerLower(lam), CheegerUpper(lam)
		if lo > hi {
			t.Fatalf("Cheeger bounds inverted for λ=%v: lo=%v hi=%v", lam, lo, hi)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	v := []float64{3, 4}
	if !approxEqual(Norm2(v), 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", Norm2(v))
	}
	if !Normalize(v) {
		t.Fatal("Normalize returned false for nonzero vector")
	}
	if !approxEqual(Norm2(v), 1, 1e-12) {
		t.Fatalf("normalized norm = %v, want 1", Norm2(v))
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Fatal("Normalize returned true for zero vector")
	}
	y := []float64{1, 1}
	AXPY(y, 2, []float64{1, 2})
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY result = %v, want [3 5]", y)
	}
}

func TestMulVecDimensionError(t *testing.T) {
	s := NewSym(3)
	if err := s.MulVec(make([]float64, 2), make([]float64, 3)); err == nil {
		t.Fatal("MulVec with wrong dst length should error")
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildComplete(5)
	s := Summarize(g, rng)
	if !approxEqual(s.Lambda2, 5, 1e-8) {
		t.Fatalf("Lambda2 = %v, want 5", s.Lambda2)
	}
	if !approxEqual(s.LambdaMax, 5, 1e-8) {
		t.Fatalf("LambdaMax = %v, want 5", s.LambdaMax)
	}
	if !approxEqual(s.Lambda2Normalized, 1.25, 1e-8) {
		t.Fatalf("Lambda2Normalized = %v, want 1.25", s.Lambda2Normalized)
	}
}

func TestMixingTimeBound(t *testing.T) {
	if !math.IsInf(MixingTimeBound(0, 10), 1) {
		t.Fatal("zero gap should give infinite mixing bound")
	}
	if !math.IsInf(MixingTimeBound(0.5, 1), 1) {
		t.Fatal("trivial graph should give infinite mixing bound")
	}
	got := MixingTimeBound(0.5, 100)
	want := math.Log(100) / 0.5
	if !approxEqual(got, want, 1e-12) {
		t.Fatalf("MixingTimeBound = %v, want %v", got, want)
	}
	// Expanders mix fast: bound decreases as the gap grows.
	if MixingTimeBound(1.0, 100) >= MixingTimeBound(0.1, 100) {
		t.Fatal("mixing bound should shrink with a larger gap")
	}
}

func TestFiedlerVectorLargeGraphPowerIteration(t *testing.T) {
	// n > jacobiCutoff exercises the shifted-power-iteration branch.
	rng := rand.New(rand.NewSource(6))
	n := jacobiCutoff + 30
	g := buildCycle(n)
	extra := rand.New(rand.NewSource(8))
	for k := 0; k < 3*n; k++ {
		g.EnsureEdge(graph.NodeID(extra.Intn(n)), graph.NodeID(extra.Intn(n)))
	}
	vec, nodes := FiedlerVector(g, rng)
	if vec == nil || len(vec) != n || len(nodes) != n {
		t.Fatalf("FiedlerVector sizes: vec=%d nodes=%d", len(vec), len(nodes))
	}
	// The Fiedler vector is orthogonal to the all-ones vector.
	sum := 0.0
	for _, v := range vec {
		sum += v
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("Fiedler vector not orthogonal to 1: sum=%v", sum)
	}
	// And it is (approximately) unit norm.
	if !approxEqual(Norm2(vec), 1, 1e-6) {
		t.Fatalf("Fiedler vector norm = %v, want 1", Norm2(vec))
	}
}

func TestLanczosFullSpectrumSmall(t *testing.T) {
	// With k = n and no deflation, Lanczos recovers the entire spectrum of a
	// small symmetric matrix.
	rng := rand.New(rand.NewSource(14))
	n := 8
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	want := JacobiEigenvalues(s, 0)
	got, err := Lanczos(n, n, func(dst, x []float64) { _ = s.MulVec(dst, x) }, nil, rng)
	if err != nil {
		t.Fatalf("Lanczos: %v", err)
	}
	if len(got) != n {
		t.Fatalf("ritz values = %d, want %d", len(got), n)
	}
	for i := range want {
		if !approxEqual(got[i], want[i], 1e-6) {
			t.Fatalf("eig[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLanczosZeroDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	out, err := Lanczos(0, 5, func(dst, x []float64) {}, nil, rng)
	if err != nil || out != nil {
		t.Fatalf("Lanczos(0) = %v, %v; want nil, nil", out, err)
	}
}
