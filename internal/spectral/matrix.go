package spectral

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when matrix/vector dimensions are inconsistent.
var ErrDimension = errors.New("spectral: dimension mismatch")

// Sym is a dense symmetric matrix stored in full row-major form. Only
// symmetric data should be written through Set, which mirrors entries.
type Sym struct {
	n    int
	data []float64
}

// NewSym returns an n×n zero symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{n: n, data: make([]float64, n*n)}
}

// Dim returns the dimension n.
func (s *Sym) Dim() int { return s.n }

// At returns the (i, j) entry.
func (s *Sym) At(i, j int) float64 { return s.data[i*s.n+j] }

// Set writes the (i, j) and (j, i) entries.
func (s *Sym) Set(i, j int, v float64) {
	s.data[i*s.n+j] = v
	s.data[j*s.n+i] = v
}

// Add adds v to the (i, j) and, when i != j, the (j, i) entries.
func (s *Sym) Add(i, j int, v float64) {
	s.data[i*s.n+j] += v
	if i != j {
		s.data[j*s.n+i] += v
	}
}

// Clone returns a deep copy.
func (s *Sym) Clone() *Sym {
	c := NewSym(s.n)
	copy(c.data, s.data)
	return c
}

// MulVec computes dst = S·x. dst and x must have length n and may not alias.
func (s *Sym) MulVec(dst, x []float64) error {
	if len(dst) != s.n || len(x) != s.n {
		return fmt.Errorf("MulVec with len(dst)=%d len(x)=%d n=%d: %w", len(dst), len(x), s.n, ErrDimension)
	}
	for i := 0; i < s.n; i++ {
		row := s.data[i*s.n : (i+1)*s.n]
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
	return nil
}

// offDiagNorm returns the Frobenius norm of the strictly upper triangle,
// the Jacobi convergence measure.
func (s *Sym) offDiagNorm() float64 {
	sum := 0.0
	for i := 0; i < s.n; i++ {
		for j := i + 1; j < s.n; j++ {
			v := s.At(i, j)
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale multiplies v in place by c.
func Scale(v []float64, c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY computes y += a·x in place.
func AXPY(y []float64, a float64, x []float64) {
	for i := range y {
		y[i] += a * x[i]
	}
}

// Normalize scales v to unit norm; it leaves a zero vector unchanged and
// reports whether normalization happened.
func Normalize(v []float64) bool {
	n := Norm2(v)
	if n == 0 {
		return false
	}
	Scale(v, 1/n)
	return true
}
