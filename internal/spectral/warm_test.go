package spectral

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

func TestCSRConnected(t *testing.T) {
	g, err := workload.RandomRegular(200, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !NewCSR(g).Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	// Split off an isolated pair.
	g.EnsureEdge(10_000, 10_001)
	if NewCSR(g).Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	single := graph.New()
	single.EnsureNode(1)
	if !NewCSR(single).Connected() {
		t.Fatal("single node is trivially connected")
	}
}

// TestLambda2WarmMatchesReference: a cold Lambda2Warm run with the full
// step budget must agree with AlgebraicConnectivity, and a warm run started
// from the returned Ritz vector must re-converge on the same value with a
// third of the steps.
func TestLambda2WarmMatchesReference(t *testing.T) {
	g, err := workload.RandomRegular(400, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	op := NewCSR(g)
	want := AlgebraicConnectivity(g, rand.New(rand.NewSource(1)))

	cold, ritz, err := Lambda2Warm(op, nil, 90, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cold-want) > 1e-8*math.Max(1, want) {
		t.Fatalf("cold Lambda2Warm = %v, AlgebraicConnectivity = %v", cold, want)
	}
	if len(ritz) != len(op.Nodes) {
		t.Fatalf("ritz vector dim %d, want %d", len(ritz), len(op.Nodes))
	}

	warm, _, err := Lambda2Warm(op, ritz, 30, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("warm Lambda2Warm (30 steps) = %v, want %v", warm, want)
	}

	// The Ritz vector must actually approximate the Fiedler direction:
	// ‖L·v − λ·v‖ small relative to λ.
	lv := make([]float64, len(ritz))
	op.MulLaplacian(lv, ritz)
	res := 0.0
	for i := range lv {
		d := lv[i] - cold*ritz[i]
		res += d * d
	}
	if math.Sqrt(res) > 1e-4*math.Max(1, cold) {
		t.Fatalf("Ritz residual %v too large for lambda %v", math.Sqrt(res), cold)
	}
}
