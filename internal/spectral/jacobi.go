package spectral

import (
	"math"
	"sort"
)

// jacobiMaxSweeps bounds the number of full sweeps of the cyclic Jacobi
// method. Convergence is quadratic; well-conditioned Laplacians converge in
// well under 20 sweeps.
const jacobiMaxSweeps = 64

// JacobiEigenvalues returns all eigenvalues of the symmetric matrix s in
// ascending order, computed by the cyclic Jacobi rotation method. The input
// is not modified. tol is the target off-diagonal Frobenius norm; pass 0 for
// a sensible default relative to the matrix scale.
func JacobiEigenvalues(s *Sym, tol float64) []float64 {
	a := s.Clone()
	n := a.Dim()
	if n == 0 {
		return nil
	}
	if tol <= 0 {
		scale := a.offDiagNorm() + diagNorm(a)
		tol = 1e-12 * (scale + 1)
	}
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if a.offDiagNorm() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rotate(a, p, q)
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a.At(i, i)
	}
	sort.Float64s(eig)
	return eig
}

func diagNorm(a *Sym) float64 {
	sum := 0.0
	for i := 0; i < a.Dim(); i++ {
		d := a.At(i, i)
		sum += d * d
	}
	return math.Sqrt(sum)
}

// rotate applies one Jacobi rotation annihilating the (p, q) entry.
func rotate(a *Sym, p, q int) {
	apq := a.At(p, q)
	if apq == 0 {
		return
	}
	app := a.At(p, p)
	aqq := a.At(q, q)
	theta := (aqq - app) / (2 * apq)
	// t = sign(theta) / (|theta| + sqrt(theta^2 + 1)), the smaller root.
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(theta*theta+1))
	} else {
		t = -1 / (-theta + math.Sqrt(theta*theta+1))
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c
	tau := s / (1 + c)

	n := a.Dim()
	a.Set(p, p, app-t*apq)
	a.Set(q, q, aqq+t*apq)
	a.Set(p, q, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := a.At(i, p)
		aiq := a.At(i, q)
		a.Set(i, p, aip-s*(aiq+tau*aip))
		a.Set(i, q, aiq+s*(aip-tau*aiq))
	}
}
