package spectral

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func randomTestGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return g
}

// The matrix-free CSR operators must agree with the dense matrices they
// replace: same operator, different storage.
func TestCSRMatchesDenseLaplacian(t *testing.T) {
	g := randomTestGraph(40, 0.15, 7)
	rng := rand.New(rand.NewSource(8))
	n := g.NumNodes()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	dense, _ := Laplacian(g)
	want := make([]float64, n)
	if err := dense.MulVec(want, x); err != nil {
		t.Fatalf("dense MulVec: %v", err)
	}
	op := NewCSR(g)
	got := make([]float64, n)
	op.MulLaplacian(got, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Laplacian matvec row %d: csr=%g dense=%g", i, got[i], want[i])
		}
	}
}

func TestCSRMatchesDenseNormalizedLaplacian(t *testing.T) {
	g := randomTestGraph(40, 0.15, 9)
	g.EnsureNode(1000) // isolated node: zero row in both representations
	rng := rand.New(rand.NewSource(10))
	n := g.NumNodes()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	dense, _ := NormalizedLaplacian(g)
	want := make([]float64, n)
	if err := dense.MulVec(want, x); err != nil {
		t.Fatalf("dense MulVec: %v", err)
	}
	op := newNormCSR(g)
	got := make([]float64, n)
	op.MulNormalized(got, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("normalized matvec row %d: csr=%g dense=%g", i, got[i], want[i])
		}
	}
}

// The large-graph (Lanczos / power-iteration) paths must keep returning the
// same spectral quantities they did with the dense backend. A circulant
// graph over the cutoff has a closed-form λ₂ to compare against.
func TestMatrixFreeLambda2OnCirculant(t *testing.T) {
	n := jacobiCutoff + 30
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		g.EnsureEdge(graph.NodeID(i), graph.NodeID((i+2)%n))
	}
	// Circulant C_n(1,2): λ₂ = (2−2cos θ) + (2−2cos 2θ), θ = 2π/n.
	theta := 2 * math.Pi / float64(n)
	want := (2 - 2*math.Cos(theta)) + (2 - 2*math.Cos(2*theta))
	got := AlgebraicConnectivity(g, rand.New(rand.NewSource(11)))
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("lambda2 = %g, want %g", got, want)
	}
}
