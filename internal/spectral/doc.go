// Package spectral provides the thin linear-algebra toolkit used to
// measure the spectral properties the Xheal paper reasons about: graph
// Laplacians (combinatorial and normalized), the algebraic connectivity λ₂
// (second-smallest Laplacian eigenvalue, the quantity of Theorem 2.4), and
// the eigenvector machinery behind the Cheeger-inequality conductance
// brackets and Fiedler sweep cuts of internal/cuts.
//
// Two eigensolvers are provided, both from scratch on the standard
// library:
//
//   - A cyclic Jacobi rotation solver for dense symmetric matrices. It is
//     simple, numerically robust, and returns the full spectrum; used for
//     small/medium graphs and as the reference oracle in tests.
//   - A Lanczos iteration with full reorthogonalization plus a
//     Sturm-sequence bisection solver for the resulting tridiagonal
//     matrix; used for larger graphs where only extreme eigenvalues are
//     needed.
//
// Above the dense cutoff the Lanczos path is matrix-free: it multiplies
// against a compressed-sparse-row snapshot of the adjacency (csr.go) —
// O(n+m) memory instead of the O(n²) dense Laplacian — which is what keeps
// λ₂ estimation usable inside experiment loops and the measurement
// tooling. AlgebraicConnectivity picks the right path by size.
package spectral
