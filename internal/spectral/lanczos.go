package spectral

import (
	"errors"
	"math"
	"math/rand"
)

// ErrBreakdown is returned when the Lanczos iteration cannot continue (the
// Krylov space is exhausted before producing any Ritz values).
var ErrBreakdown = errors.New("spectral: lanczos breakdown before first step")

// MatVec applies a linear operator: dst = A·x.
type MatVec func(dst, x []float64)

// Lanczos runs k steps of the symmetric Lanczos iteration on an n-dimensional
// operator with full reorthogonalization against all previous Lanczos
// vectors and against the provided deflation subspace (each deflate vector
// must be unit norm). It returns the eigenvalues of the resulting
// tridiagonal matrix in ascending order; these Ritz values approximate the
// extreme eigenvalues of the operator restricted to the orthogonal
// complement of the deflation space.
//
// rng seeds the start vector so that results are reproducible.
func Lanczos(n, k int, op MatVec, deflate [][]float64, rng *rand.Rand) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	if k > n-len(deflate) {
		k = n - len(deflate)
	}
	if k <= 0 {
		return nil, nil
	}

	v := randUnit(n, rng, deflate)
	if v == nil {
		return nil, ErrBreakdown
	}

	alphas := make([]float64, 0, k)
	betas := make([]float64, 0, k)
	basis := make([][]float64, 0, k)
	basis = append(basis, v)
	w := make([]float64, n)
	prevBeta := 0.0
	var prev []float64

	for j := 0; j < k; j++ {
		cur := basis[len(basis)-1]
		op(w, cur)
		if prev != nil {
			AXPY(w, -prevBeta, prev)
		}
		alpha := Dot(w, cur)
		AXPY(w, -alpha, cur)
		// Full reorthogonalization: against deflation space and basis.
		orthogonalize(w, deflate)
		orthogonalize(w, basis)
		orthogonalize(w, basis) // second pass for numerical safety
		alphas = append(alphas, alpha)

		beta := Norm2(w)
		if j == k-1 {
			break
		}
		if beta < 1e-13 {
			// Krylov space exhausted: restart with a fresh orthogonal vector.
			nv := randUnit(n, rng, append(append([][]float64{}, deflate...), basis...))
			if nv == nil {
				break
			}
			beta = 0
			prev = nil
			prevBeta = 0
			basis = append(basis, nv)
			betas = append(betas, 0)
			continue
		}
		next := make([]float64, n)
		copy(next, w)
		Scale(next, 1/beta)
		betas = append(betas, beta)
		prev = cur
		prevBeta = beta
		basis = append(basis, next)
	}

	return TridiagEigenvalues(alphas, betas), nil
}

// randUnit draws a random unit vector orthogonal to the given subspace.
// Returns nil when the complement is (numerically) empty.
func randUnit(n int, rng *rand.Rand, against [][]float64) []float64 {
	for attempt := 0; attempt < 32; attempt++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		orthogonalize(v, against)
		if Normalize(v) && Norm2(v) > 0.5 {
			return v
		}
	}
	return nil
}

// orthogonalize subtracts from v its projection onto each unit vector in basis.
func orthogonalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		AXPY(v, -Dot(v, b), b)
	}
}

// TridiagEigenvalues returns the eigenvalues, ascending, of the symmetric
// tridiagonal matrix with diagonal alphas (length m) and off-diagonal betas
// (length m-1), using Sturm-sequence bisection. The method is
// unconditionally stable.
func TridiagEigenvalues(alphas, betas []float64) []float64 {
	m := len(alphas)
	if m == 0 {
		return nil
	}
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(betas[i-1])
		}
		if i < m-1 {
			r += math.Abs(betas[i])
		}
		if alphas[i]-r < lo {
			lo = alphas[i] - r
		}
		if alphas[i]+r > hi {
			hi = alphas[i] + r
		}
	}
	if lo == hi {
		out := make([]float64, m)
		for i := range out {
			out[i] = lo
		}
		return out
	}

	out := make([]float64, m)
	eps := 1e-13 * math.Max(math.Abs(lo), math.Abs(hi))
	if eps == 0 {
		eps = 1e-13
	}
	for idx := 0; idx < m; idx++ {
		a, b := lo, hi
		for b-a > eps {
			mid := (a + b) / 2
			// count = number of eigenvalues < mid.
			if sturmCount(alphas, betas, mid) <= idx {
				a = mid
			} else {
				b = mid
			}
		}
		out[idx] = (a + b) / 2
	}
	return out
}

// sturmCount returns the number of eigenvalues of the tridiagonal matrix
// strictly less than x, via the classic LDLᵀ sign-agreement sequence.
func sturmCount(alphas, betas []float64, x float64) int {
	count := 0
	d := 1.0
	for i := range alphas {
		var off float64
		if i > 0 {
			off = betas[i-1]
		}
		if d == 0 {
			d = 1e-300
		}
		d = alphas[i] - x - off*off/d
		if d < 0 {
			count++
		}
	}
	return count
}
