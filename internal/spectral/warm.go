package spectral

import (
	"math"
	"math/rand"
)

// Warm-started λ₂ estimation: the serving daemon re-estimates λ₂ every few
// ticks on a graph that changed by a handful of edges, so the previous
// Fiedler-direction Ritz vector is an excellent start vector. A warm Krylov
// iteration re-converges in a fraction of the cold step count; the caller
// (internal/metrics/live.Lambda2Cache) keeps the returned Ritz vector for
// the next round.

// LanczosWarm is Lanczos with an optional start vector, additionally
// returning the Ritz vector of the smallest Ritz value — the approximate
// eigenvector the next call can warm-start from. start is used when it has
// dimension n and a numerically-significant component orthogonal to the
// deflation space; otherwise the start vector is drawn from rng as usual.
func LanczosWarm(n, k int, op MatVec, deflate [][]float64, start []float64, rng *rand.Rand) (vals, ritz []float64, err error) {
	if n == 0 {
		return nil, nil, nil
	}
	if k > n-len(deflate) {
		k = n - len(deflate)
	}
	if k <= 0 {
		return nil, nil, nil
	}

	var v []float64
	if len(start) == n {
		v = make([]float64, n)
		copy(v, start)
		orthogonalize(v, deflate)
		if !Normalize(v) || Norm2(v) < 0.5 {
			v = nil
		}
	}
	if v == nil {
		v = randUnit(n, rng, deflate)
	}
	if v == nil {
		return nil, nil, ErrBreakdown
	}

	alphas := make([]float64, 0, k)
	betas := make([]float64, 0, k)
	basis := make([][]float64, 0, k)
	basis = append(basis, v)
	w := make([]float64, n)
	prevBeta := 0.0
	var prev []float64

	for j := 0; j < k; j++ {
		cur := basis[len(basis)-1]
		op(w, cur)
		if prev != nil {
			AXPY(w, -prevBeta, prev)
		}
		alpha := Dot(w, cur)
		AXPY(w, -alpha, cur)
		orthogonalize(w, deflate)
		orthogonalize(w, basis)
		orthogonalize(w, basis) // second pass for numerical safety
		alphas = append(alphas, alpha)

		beta := Norm2(w)
		if j == k-1 {
			break
		}
		if beta < 1e-13 {
			nv := randUnit(n, rng, append(append([][]float64{}, deflate...), basis...))
			if nv == nil {
				break
			}
			prev = nil
			prevBeta = 0
			basis = append(basis, nv)
			betas = append(betas, 0)
			continue
		}
		next := make([]float64, n)
		copy(next, w)
		Scale(next, 1/beta)
		betas = append(betas, beta)
		prev = cur
		prevBeta = beta
		basis = append(basis, next)
	}

	vals = TridiagEigenvalues(alphas, betas)
	if len(vals) == 0 {
		return nil, nil, nil
	}
	y := tridiagSmallestVector(alphas, betas, vals[0])
	ritz = make([]float64, n)
	for j := range basis {
		AXPY(ritz, y[j], basis[j])
	}
	if !Normalize(ritz) {
		ritz = nil
	}
	return vals, ritz, nil
}

// tridiagSmallestVector returns a unit eigenvector of the symmetric
// tridiagonal matrix (alphas, betas) for its smallest eigenvalue lambda, by
// inverse iteration with a slightly off-eigenvalue shift.
func tridiagSmallestVector(alphas, betas []float64, lambda float64) []float64 {
	m := len(alphas)
	y := make([]float64, m)
	c := 1 / math.Sqrt(float64(m))
	for i := range y {
		y[i] = c
	}
	// Shift a hair off the eigenvalue so the solve stays well-posed; the
	// iteration still collapses onto the eigenvector direction.
	scale := math.Abs(lambda)
	if scale < 1 {
		scale = 1
	}
	shift := lambda - 1e-10*scale
	for iter := 0; iter < 4; iter++ {
		y = solveShiftedTridiag(alphas, betas, shift, y)
		if !Normalize(y) {
			for i := range y {
				y[i] = c
			}
			return y
		}
	}
	return y
}

// solveShiftedTridiag solves (T − shift·I)·x = b for the symmetric
// tridiagonal T via the Thomas algorithm, clamping near-zero pivots (the
// system is intentionally near-singular during inverse iteration).
func solveShiftedTridiag(alphas, betas []float64, shift float64, b []float64) []float64 {
	m := len(alphas)
	diag := make([]float64, m)
	rhs := make([]float64, m)
	for i := range diag {
		diag[i] = alphas[i] - shift
		rhs[i] = b[i]
	}
	const tiny = 1e-300
	for i := 1; i < m; i++ {
		piv := diag[i-1]
		if math.Abs(piv) < tiny {
			piv = tiny
		}
		f := betas[i-1] / piv
		diag[i] -= f * betas[i-1]
		rhs[i] -= f * rhs[i-1]
	}
	x := make([]float64, m)
	piv := diag[m-1]
	if math.Abs(piv) < tiny {
		piv = tiny
	}
	x[m-1] = rhs[m-1] / piv
	for i := m - 2; i >= 0; i-- {
		piv := diag[i]
		if math.Abs(piv) < tiny {
			piv = tiny
		}
		x[i] = (rhs[i] - betas[i]*x[i+1]) / piv
	}
	return x
}

// Lambda2Warm estimates λ₂(L) from a CSR snapshot of a connected graph,
// warm-starting from a previous Ritz vector when one is supplied. It
// returns the estimate and the Ritz vector to warm-start the next call.
// The caller must have established connectivity (see CSR.Connected) — λ₂
// of a disconnected graph is 0 and needs no iteration.
func Lambda2Warm(op *CSR, start []float64, steps int, rng *rand.Rand) (float64, []float64, error) {
	n := len(op.Nodes)
	if n < 2 {
		return 0, nil, nil
	}
	ones := constUnit(n)
	vals, ritz, err := LanczosWarm(n, steps, op.MulLaplacian, [][]float64{ones}, start, rng)
	if err != nil || len(vals) == 0 {
		return 0, nil, err
	}
	return clampTiny(vals[0]), ritz, nil
}

// Connected reports whether the CSR snapshot is one connected component,
// via an index-space BFS — no maps, no graph access, safe on a snapshot
// taken from a graph that has since moved on.
func (a *CSR) Connected() bool {
	n := len(a.Nodes)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := a.RowPtr[u]; i < a.RowPtr[u+1]; i++ {
			v := a.Cols[i]
			if !seen[v] {
				seen[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached == n
}
