package dist

import (
	"fmt"

	"github.com/xheal/xheal/internal/graph"
)

// msgKind enumerates the protocol's message types.
type msgKind int

const (
	// msgDown notifies a neighbor of v that v was deleted. Carries the wound
	// roster (the alive neighbors of v), which every member of a cloud knows
	// for its cloud-mates and black neighbors in the paper's model.
	msgDown msgKind = iota + 1
	// msgHello introduces a freshly inserted node to a chosen neighbor.
	msgHello
	// msgAggregate convergecasts (best rank, neighborhood reports) one step
	// up the election bracket.
	msgAggregate
	// msgGrant transfers leadership from the bracket root to the best-ranked
	// wound member, forwarding the gathered reports.
	msgGrant
	// msgEdgeUpdate tells a node which incident edges the repair added and
	// removed.
	msgEdgeUpdate
)

// String implements fmt.Stringer, for test failures and tracing.
func (k msgKind) String() string {
	switch k {
	case msgDown:
		return "down"
	case msgHello:
		return "hello"
	case msgAggregate:
		return "aggregate"
	case msgGrant:
		return "grant"
	case msgEdgeUpdate:
		return "edge-update"
	}
	return fmt.Sprintf("msgKind(%d)", int(k))
}

// report is one wound member's neighborhood, gathered for the leader.
type report struct {
	node graph.NodeID
	nbrs []graph.NodeID
}

// message is one protocol message. Exactly the fields for its kind are set.
type message struct {
	from, to graph.NodeID
	kind     msgKind

	// subject is the node the message is about: the deleted node (msgDown),
	// the joining node (msgHello), or the best-ranked candidate so far
	// (msgAggregate).
	subject graph.NodeID
	// roster is the sorted wound membership (msgDown).
	roster []graph.NodeID
	// rank is the best leader rank seen in the sender's subtree (msgAggregate).
	rank int64
	// reports are the gathered neighborhoods (msgAggregate, msgGrant).
	reports []report
	// add and drop are the incident-edge changes to apply (msgEdgeUpdate).
	add, drop []graph.NodeID
}

// edgeUpdate is the per-recipient slice of a repair plan.
type edgeUpdate struct {
	add, drop []graph.NodeID
}

// repairPlan is the outcome of the leader's healing computation: for every
// node whose incident edge set changed, the adds and drops to apply.
type repairPlan struct {
	victim  graph.NodeID
	updates map[graph.NodeID]*edgeUpdate
}
