package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

func regularEngine(t *testing.T, n, halfDeg, kappa int, seed int64) *Engine {
	t.Helper()
	g0, err := workload.RandomRegular(n, halfDeg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	e, err := NewEngine(Config{Kappa: kappa, Seed: seed}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Kappa: 4}, nil); !errors.Is(err, core.ErrNilGraph) {
		t.Fatalf("nil graph error = %v, want ErrNilGraph", err)
	}
	g, err := workload.Star(4)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if _, err := NewEngine(Config{Kappa: 3}, g); !errors.Is(err, core.ErrBadKappa) {
		t.Fatalf("odd kappa error = %v, want ErrBadKappa", err)
	}
}

func TestInitialViewsMatchTopology(t *testing.T) {
	e := regularEngine(t, 24, 3, 4, 1)
	if err := e.ValidateLocalViews(); err != nil {
		t.Fatalf("fresh engine views: %v", err)
	}
	if got := e.Totals(); got != (Totals{}) {
		t.Fatalf("fresh engine totals = %+v, want zero", got)
	}
	if e.AmortizedLowerBound() != 0 {
		t.Fatalf("A(p) before any deletion = %v, want 0", e.AmortizedLowerBound())
	}
}

func TestDeletionCostAccounting(t *testing.T) {
	g0, err := workload.Star(8)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	e, err := NewEngine(Config{Kappa: 4, Seed: 7}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()

	// Deleting a leaf opens a 1-node wound at the hub: one detection round,
	// then the sole member leads. No healing edges are needed.
	if err := e.Delete(3); err != nil {
		t.Fatalf("Delete leaf: %v", err)
	}
	costs := e.Costs()
	if len(costs) != 1 {
		t.Fatalf("costs = %d entries, want 1", len(costs))
	}
	leaf := costs[0]
	if leaf.Node != 3 || leaf.BlackDegree != 1 {
		t.Fatalf("leaf cost = %+v, want Node=3 BlackDegree=1", leaf)
	}
	if leaf.Messages < leaf.BlackDegree {
		t.Fatalf("leaf repair used %d messages, below the Lemma 5 floor %d",
			leaf.Messages, leaf.BlackDegree)
	}

	// Deleting the hub opens the full 7-leaf wound: detection, a real
	// election, and cloud dissemination.
	if err := e.Delete(0); err != nil {
		t.Fatalf("Delete hub: %v", err)
	}
	costs = e.Costs()
	hub := costs[1]
	if hub.BlackDegree != 7 {
		t.Fatalf("hub BlackDegree = %d, want 7", hub.BlackDegree)
	}
	if hub.Messages < 7 || hub.Rounds < 3 {
		t.Fatalf("hub cost = %+v: want >=7 messages and >=3 rounds", hub)
	}
	tot := e.Totals()
	if tot.Deletions != 2 {
		t.Fatalf("Deletions = %d, want 2", tot.Deletions)
	}
	if tot.Rounds != leaf.Rounds+hub.Rounds || tot.Messages != leaf.Messages+hub.Messages {
		t.Fatalf("totals %+v do not match cost ledger %+v", tot, costs)
	}
	wantAp := float64(leaf.BlackDegree+hub.BlackDegree) / 2
	if got := e.AmortizedLowerBound(); got != wantAp {
		t.Fatalf("A(p) = %v, want %v", got, wantAp)
	}
	if err := e.ValidateLocalViews(); err != nil {
		t.Fatalf("views after star repairs: %v", err)
	}
	if !e.Graph().IsConnected() {
		t.Fatal("healed star disconnected")
	}
}

// TestLemma5Floor: every repair must deliver at least as many messages as
// the deleted node's black degree — the Θ(deg) lower bound of Lemma 5.
func TestLemma5Floor(t *testing.T) {
	g0, err := workload.ErdosRenyi(48, 0.15, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	e, err := NewEngine(Config{Kappa: 4, Seed: 5}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 16; i++ {
		alive := e.State().AliveNodes()
		if err := e.Delete(alive[rng.Intn(len(alive))]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	for _, c := range e.Costs() {
		if c.Messages < c.BlackDegree {
			t.Fatalf("deletion of %d: %d messages < black degree %d (Lemma 5 violated)",
				c.Node, c.Messages, c.BlackDegree)
		}
	}
}

// TestTheorem5Envelope checks the paper's cost theorem on its own substrate:
// a random 6-regular H-graph. Repairs must finish in O(log n) rounds and the
// amortized message count must stay within the κ·log₂(n)·A(p) envelope.
func TestTheorem5Envelope(t *testing.T) {
	const (
		n     = 64
		kappa = 4
	)
	e := regularEngine(t, n, 3, kappa, 11)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < n/4; i++ {
		alive := e.State().AliveNodes()
		if err := e.Delete(alive[rng.Intn(len(alive))]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	logN := math.Log2(float64(n))
	maxRounds := 0
	for _, c := range e.Costs() {
		if c.Rounds > maxRounds {
			maxRounds = c.Rounds
		}
	}
	if float64(maxRounds) > 4*logN {
		t.Fatalf("max rounds %d exceeds O(log n) budget %0.1f", maxRounds, 4*logN)
	}
	amort := float64(e.Totals().Messages) / float64(e.Totals().Deletions)
	envelope := float64(kappa) * logN * e.AmortizedLowerBound()
	if amort > envelope {
		t.Fatalf("amortized %.1f messages/deletion exceeds Theorem 5 envelope %.1f", amort, envelope)
	}
	if err := e.ValidateLocalViews(); err != nil {
		t.Fatalf("views: %v", err)
	}
}

// TestLocalViewsUnderChurn is the property test: under random adversarial
// churn, after every single event, each node's message-built local view must
// equal the healed graph, and the engine must track the sequential reference
// implementation exactly (same seed, same events, same graph).
func TestLocalViewsUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		g0, err := workload.ErdosRenyi(24, 0.2, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: ErdosRenyi: %v", seed, err)
		}
		e, err := NewEngine(Config{Kappa: 4, Seed: seed}, g0)
		if err != nil {
			t.Fatalf("seed %d: NewEngine: %v", seed, err)
		}
		ref, err := core.NewState(core.Config{Kappa: 4, Seed: seed}, g0)
		if err != nil {
			t.Fatalf("seed %d: NewState: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 101))
		next := graph.NodeID(1000)
		for step := 0; step < 80; step++ {
			alive := e.State().AliveNodes()
			if len(alive) > 6 && rng.Intn(2) == 0 {
				v := alive[rng.Intn(len(alive))]
				if err := e.Delete(v); err != nil {
					t.Fatalf("seed %d step %d: Delete: %v", seed, step, err)
				}
				if err := ref.DeleteNode(v); err != nil {
					t.Fatalf("seed %d step %d: reference Delete: %v", seed, step, err)
				}
			} else {
				nbrs := []graph.NodeID{alive[rng.Intn(len(alive))]}
				if err := e.Insert(next, nbrs); err != nil {
					t.Fatalf("seed %d step %d: Insert: %v", seed, step, err)
				}
				if err := ref.InsertNode(next, nbrs); err != nil {
					t.Fatalf("seed %d step %d: reference Insert: %v", seed, step, err)
				}
				next++
			}
			if err := e.ValidateLocalViews(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if !e.Graph().Equal(ref.Graph()) {
				t.Fatalf("seed %d step %d: engine graph diverged from sequential reference", seed, step)
			}
		}
		if !e.Graph().IsConnected() {
			t.Fatalf("seed %d: disconnected after churn", seed)
		}
		e.Close()
	}
}

func TestInsertGreetings(t *testing.T) {
	e := regularEngine(t, 16, 2, 4, 3)
	before := e.Totals()
	if err := e.Insert(500, []graph.NodeID{0, 1, 2}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	after := e.Totals()
	if after.Rounds != before.Rounds+1 {
		t.Fatalf("insert took %d rounds, want 1", after.Rounds-before.Rounds)
	}
	if after.Messages != before.Messages+3 {
		t.Fatalf("insert used %d messages, want 3 greetings", after.Messages-before.Messages)
	}
	if err := e.ValidateLocalViews(); err != nil {
		t.Fatalf("views after insert: %v", err)
	}
	if err := e.Insert(500, []graph.NodeID{0}); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if err := e.Insert(501, []graph.NodeID{99999}); err == nil {
		t.Fatal("insert with dead neighbor should fail")
	}
}

func TestDeleteErrors(t *testing.T) {
	e := regularEngine(t, 12, 2, 4, 4)
	if err := e.Delete(99999); !errors.Is(err, core.ErrNodeMissing) {
		t.Fatalf("missing delete error = %v, want ErrNodeMissing", err)
	}
	if err := e.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := e.Delete(0); !errors.Is(err, core.ErrNodeMissing) {
		t.Fatalf("double delete error = %v, want ErrNodeMissing", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	e := regularEngine(t, 12, 2, 4, 8)
	e.Close()
	e.Close() // idempotent
	if err := e.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := e.Insert(100, []graph.NodeID{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	if err := e.ValidateLocalViews(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ValidateLocalViews after Close = %v, want ErrClosed", err)
	}
}

// TestWoundStateReleased: once a repair completes, no node may retain its
// wound state (the gathered reports would otherwise accumulate for the
// engine's lifetime, and stray election messages would corrupt it silently).
func TestWoundStateReleased(t *testing.T) {
	e := regularEngine(t, 24, 3, 4, 14)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 5; i++ {
		alive := e.State().AliveNodes()
		if err := e.Delete(alive[rng.Intn(len(alive))]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	for id, nd := range e.nodes {
		if nd.wound != nil {
			t.Fatalf("node %d still holds wound state for victim %d after repair",
				id, nd.wound.victim)
		}
	}
}

// TestDeterminism: equal seeds and event sequences must produce identical
// cost ledgers and healed graphs (the adversary is oblivious to the seed,
// but runs must be reproducible).
func TestDeterminism(t *testing.T) {
	run := func() ([]DeletionCost, *graph.Graph) {
		e := regularEngine(t, 32, 3, 4, 21)
		rng := rand.New(rand.NewSource(22))
		for i := 0; i < 8; i++ {
			alive := e.State().AliveNodes()
			if err := e.Delete(alive[rng.Intn(len(alive))]); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
		return e.Costs(), e.Graph().Clone()
	}
	costsA, graphA := run()
	costsB, graphB := run()
	if len(costsA) != len(costsB) {
		t.Fatalf("cost ledger lengths differ: %d vs %d", len(costsA), len(costsB))
	}
	for i := range costsA {
		if costsA[i] != costsB[i] {
			t.Fatalf("deletion %d cost diverged: %+v vs %+v", i, costsA[i], costsB[i])
		}
	}
	if !graphA.Equal(graphB) {
		t.Fatal("healed graphs diverged across identical runs")
	}
}

// TestValidateDetectsDivergence corrupts one node's view directly and checks
// that the conformance check actually fails — the check must not be vacuous.
func TestValidateDetectsDivergence(t *testing.T) {
	e := regularEngine(t, 12, 2, 4, 9)
	if err := e.ValidateLocalViews(); err != nil {
		t.Fatalf("fresh views: %v", err)
	}
	var victim *node
	for _, nd := range e.nodes {
		victim = nd
		break
	}
	victim.view[graph.NodeID(424242)] = struct{}{}
	if err := e.ValidateLocalViews(); err == nil {
		t.Fatal("corrupted view not detected")
	}
}
