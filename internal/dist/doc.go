// Package dist is the distributed Xheal protocol engine of the paper's §5:
// every alive node is a goroutine, all coordination happens by messages over
// channels in synchronous rounds, and every round and message is counted so
// the cost theorems can be checked empirically.
//
// # Protocol
//
// A deletion of node v opens a "wound": the alive neighbors of v. The repair
// runs in phases, each phase one or more synchronous rounds:
//
//  1. Detect — every wound member receives the failure notification for v
//     (deg(v) messages, the unavoidable Θ(deg) of Lemma 5) carrying the
//     wound roster, and drops v from its local view.
//  2. Elect — the wound members convergecast their random leader ranks up a
//     binary bracket over the sorted roster: ⌈log₂ k⌉ rounds, k−1 messages.
//     The bracket root then grants leadership to the best-ranked member,
//     forwarding the gathered neighborhood reports (≤ 1 message).
//  3. Heal — the leader computes the repair — wiring the κ-regular expander
//     cloud across the wound; the decision procedure is Algorithm 3.1,
//     delegated to internal/core exactly as the paper's leader simulates the
//     sequential algorithm on the gathered state — and disseminates one
//     edge-update message to every node whose incident edges change. Each
//     recipient applies the update to its local view.
//
// Insertions cost one round: the joining node greets each chosen neighbor.
//
// Every node's local view — its belief about its own incident edges — is
// built exclusively from the messages it received (plus the edges it itself
// initiated). Engine.ValidateLocalViews is the decisive conformance check:
// the graph assembled from all local views must be exactly the healed graph
// maintained by the reference implementation.
//
// The engine is not safe for concurrent use; drive it from one goroutine.
// Synchronization with the node goroutines is purely channel-based, so the
// package is clean under the race detector.
package dist
