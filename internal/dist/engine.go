package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
)

// Config parameterizes an Engine.
type Config struct {
	// Kappa is the expander degree parameter κ (even, ≥ 2); 0 selects
	// core.DefaultKappa.
	Kappa int
	// Seed seeds the protocol's private randomness: the healing decisions
	// (H-graph wiring, via internal/core) and the nodes' leader ranks.
	Seed int64
}

// DeletionCost is one repair's measured cost, the empirical side of
// Theorem 5 and Lemma 5.
type DeletionCost struct {
	// Node is the deleted node.
	Node graph.NodeID
	// BlackDegree is the number of black (original or adversary-inserted)
	// edges incident to the node at deletion time — the deg_G′ term of
	// Lemma 5's Θ(deg) lower bound.
	BlackDegree int
	// Wound is the node's full degree at deletion time (the number of
	// wound members), the parameter of Theorem 5's per-repair bounds.
	Wound int
	// Rounds is the number of synchronous rounds the repair took.
	Rounds int
	// Messages is the number of protocol messages delivered for the repair.
	Messages int
}

// Totals aggregates the protocol work performed so far.
type Totals struct {
	// Deletions is the number of repairs completed.
	Deletions int
	// Rounds and Messages count all protocol rounds and messages, including
	// the one-round insertion greetings.
	Rounds   int
	Messages int
}

// ErrClosed is returned by mutating calls after Close.
var ErrClosed = errors.New("dist: engine is closed")

// Engine runs the distributed Xheal protocol: one goroutine per alive node,
// coordinating exclusively by messages over channels in synchronous rounds.
//
// The zero value is not usable; call NewEngine. Not safe for concurrent use.
type Engine struct {
	st   *core.State
	seed int64
	src  *core.CountedSource // the stream behind rng, counted for snapshots
	rng  *rand.Rand

	nodes map[graph.NodeID]*node
	wg    sync.WaitGroup

	costs       []DeletionCost
	totals      Totals
	blackDegSum int

	// plan is the current wound's repair outcome, computed by the reference
	// implementation and read by the elected leader when it "runs" Algorithm
	// 3.1 on the gathered state. Written strictly before the protocol rounds
	// start, so the channel synchronization orders the accesses.
	plan *repairPlan

	// rec, when non-nil, receives per-wound trace callbacks. The inner
	// reference state emits admission/rewiring; the engine adds the
	// protocol phases (election, dissemination) and the ledger costs.
	rec *obs.Recorder

	// viewCursor rotates CheckInvariantsSampled's local-view window over
	// the sorted alive nodes; bookkeeping only.
	viewCursor int

	closed bool
}

// NewEngine builds the engine over a copy of the initial topology and spawns
// one goroutine per node. Every node starts knowing exactly its own
// neighbors (the initial topology is common knowledge in the paper's model).
// Close the engine when done.
func NewEngine(cfg Config, g0 *graph.Graph) (*Engine, error) {
	st, err := core.NewState(core.Config{Kappa: cfg.Kappa, Seed: cfg.Seed}, g0)
	if err != nil {
		return nil, err
	}
	src := core.NewCountedSource(cfg.Seed ^ rankSeedSalt)
	e := &Engine{
		st:    st,
		seed:  cfg.Seed,
		src:   src,
		rng:   rand.New(src),
		nodes: make(map[graph.NodeID]*node, g0.NumNodes()),
	}
	for _, id := range st.Graph().Nodes() {
		nd := e.spawn(id)
		for _, w := range st.Graph().Neighbors(id) {
			nd.view[w] = struct{}{}
		}
	}
	return e, nil
}

// spawn creates and starts the goroutine for a new alive node.
func (e *Engine) spawn(id graph.NodeID) *node {
	nd := newNode(id, e.rng.Int63(), e)
	e.nodes[id] = nd
	e.wg.Add(1)
	go nd.run()
	return nd
}

// stop terminates one node's goroutine (it was deleted).
func (e *Engine) stop(id graph.NodeID) {
	if nd, ok := e.nodes[id]; ok {
		close(nd.inbox)
		delete(e.nodes, id)
	}
}

// SetRecorder attaches a per-wound trace recorder (nil detaches it). Spans
// open when the reference state admits the deletion and settle only after
// the protocol disseminated the repair, so a distributed span covers the
// full message-passing lifecycle: admitted → rewired (plan computed) →
// elected → disseminated → settled, with the ledger's rounds/messages.
func (e *Engine) SetRecorder(r *obs.Recorder) {
	e.rec = r
	e.st.SetRecorder(r)
}

// Graph returns the healed graph G. Live view — do not modify.
func (e *Engine) Graph() *graph.Graph { return e.st.Graph() }

// State returns the underlying reference state (alive nodes, baseline G′,
// cloud bookkeeping). Live view — do not modify through it.
func (e *Engine) State() *core.State { return e.st }

// Costs returns a copy of the per-deletion cost ledger, in deletion order.
func (e *Engine) Costs() []DeletionCost {
	out := make([]DeletionCost, len(e.costs))
	copy(out, e.costs)
	return out
}

// Totals returns the aggregate protocol work counters.
func (e *Engine) Totals() Totals { return e.totals }

// AmortizedLowerBound returns A(p): the amortized Lemma 5 message lower
// bound over the deletions so far — the mean black degree of the deleted
// nodes. Zero before the first deletion.
func (e *Engine) AmortizedLowerBound() float64 {
	if len(e.costs) == 0 {
		return 0
	}
	return float64(e.blackDegSum) / float64(len(e.costs))
}

// Insert applies an adversarial insertion: u joins with black edges to the
// given alive nodes. The joining node knows the neighbors it dialed; each of
// them learns of u by a greeting message (one round, len(nbrs) messages).
func (e *Engine) Insert(u graph.NodeID, nbrs []graph.NodeID) error {
	if e.closed {
		return ErrClosed
	}
	if err := e.st.InsertNode(u, nbrs); err != nil {
		return err
	}
	nd := e.spawn(u)
	pending := make([]message, 0, len(nbrs))
	for _, w := range nbrs {
		nd.view[w] = struct{}{}
		pending = append(pending, message{from: u, to: w, kind: msgHello, subject: u})
	}
	rounds, msgs := e.runProtocol(pending)
	e.totals.Rounds += rounds
	e.totals.Messages += msgs
	return nil
}

// Delete applies an adversarial deletion of v and heals the wound through
// the message protocol: detection, leader election over the wound, and
// dissemination of the κ-regular cloud wiring. The repair's rounds and
// messages are appended to the cost ledger.
func (e *Engine) Delete(v graph.NodeID) error {
	if e.closed {
		return ErrClosed
	}
	if !e.st.Alive(v) {
		return fmt.Errorf("dist: delete %d: %w", v, core.ErrNodeMissing)
	}
	wound := e.st.Graph().Neighbors(v) // sorted
	blackDeg := 0
	for _, w := range wound {
		if black, ok := e.st.IsBlackEdge(v, w); ok && black {
			blackDeg++
		}
	}
	delta, err := e.st.DeleteNodeDelta(v)
	if err != nil {
		return err
	}
	e.stop(v)
	e.plan = buildPlan(v, delta)

	pending := make([]message, 0, len(wound))
	for _, w := range wound {
		pending = append(pending, message{
			from: v, to: w, kind: msgDown, subject: v, roster: wound,
		})
	}
	rounds, msgs := e.runProtocol(pending)
	e.rec.Phase(obs.PhaseDisseminated)
	e.plan = nil
	// The wound is closed: release every member's election state so the
	// gathered reports don't accumulate for the engine's lifetime and a
	// stray cross-wound aggregate or grant fails fast. The engine is
	// synchronized with every node here (runProtocol collected all
	// outboxes), so the direct write is ordered.
	for _, w := range wound {
		if nd, ok := e.nodes[w]; ok {
			nd.wound = nil
		}
	}

	e.costs = append(e.costs, DeletionCost{
		Node: v, BlackDegree: blackDeg, Wound: len(wound), Rounds: rounds, Messages: msgs,
	})
	e.rec.Cost(rounds, msgs)
	e.rec.RepairEnd()
	e.blackDegSum += blackDeg
	e.totals.Deletions++
	e.totals.Rounds += rounds
	e.totals.Messages += msgs
	return nil
}

// ApplyBatch applies a multi-event timestep with the same semantics as the
// sequential reference (core.State.ApplyBatch): the batch is validated up
// front and rejected wholesale on conflict, then every insertion runs as a
// greeting round and every deletion as a full message-protocol repair, in
// batch order. The cost ledger gains one entry per deletion, exactly as if
// the adversary had presented the events back-to-back (the paper's remark
// that the algorithm "can be extended to handle multiple
// insertions/deletions", realized on the §5 engine so a maintenance daemon
// can host either engine interchangeably).
func (e *Engine) ApplyBatch(b core.Batch) error {
	if e.closed {
		return ErrClosed
	}
	if err := e.st.ValidateBatch(b); err != nil {
		return err
	}
	for _, ins := range b.Insertions {
		if err := e.Insert(ins.Node, ins.Neighbors); err != nil {
			return fmt.Errorf("dist: batch insertion %d: %w", ins.Node, err)
		}
	}
	for _, d := range b.Deletions {
		if err := e.Delete(d); err != nil {
			return fmt.Errorf("dist: batch deletion %d: %w", d, err)
		}
	}
	return nil
}

// ApplyBatchDelta is ApplyBatch, additionally returning the net structural
// change the batch made (facade parity with core.State.ApplyBatchDelta, for
// the serving daemon's incremental metrics tracker). The distributed
// protocol is inherently serial per deletion, so workers is ignored.
func (e *Engine) ApplyBatchDelta(b core.Batch, _ int) (core.TickDelta, error) {
	if e.closed {
		return core.TickDelta{}, ErrClosed
	}
	e.st.BeginTickDelta()
	err := e.ApplyBatch(b)
	d := e.st.TakeTickDelta()
	if err != nil {
		return core.TickDelta{}, err
	}
	return d, nil
}

// ValidateBatch checks a batch against the current state without applying
// anything — the same admission rule the sequential reference uses
// (core.State.ValidateBatch), exposed so batch assemblers (internal/server)
// can share it across engines.
func (e *Engine) ValidateBatch(b core.Batch) error {
	if e.closed {
		return ErrClosed
	}
	return e.st.ValidateBatch(b)
}

// BeginAdmission starts an incremental batch admission with ValidateBatch's
// semantics at O(event) per decision (see core.BatchAdmission). Returns nil
// once the engine is closed — callers fall back to ValidateBatch, which
// reports ErrClosed.
func (e *Engine) BeginAdmission() *core.BatchAdmission {
	if e.closed {
		return nil
	}
	return e.st.BeginAdmission()
}

// Baseline returns G′: original nodes plus insertions, with deletions
// ignored. Live view — do not modify.
func (e *Engine) Baseline() *graph.Graph { return e.st.Baseline() }

// Kappa returns the expander degree parameter κ.
func (e *Engine) Kappa() int { return e.st.Kappa() }

// CheckInvariants verifies the full internal consistency of the engine: the
// reference state's structural invariants (cloud structure, edge claims, the
// degree bound) plus every node's message-built local view against the
// healed graph. Facade parity with Network.CheckInvariants.
func (e *Engine) CheckInvariants() error {
	if err := e.st.CheckInvariants(); err != nil {
		return err
	}
	return e.ValidateLocalViews()
}

// CheckInvariantsSampled is CheckInvariants with a rotating per-call budget
// (see core.State.CheckInvariantsSampled): a budgeted window of the state
// invariants plus a budgeted window of local-view validations, so the
// serve-path invariant gate stays O(budget) per tick at any network size.
func (e *Engine) CheckInvariantsSampled(budget int) error {
	if e.closed {
		return ErrClosed
	}
	if budget <= 0 {
		return e.CheckInvariants()
	}
	if err := e.st.CheckInvariantsSampled(budget); err != nil {
		return err
	}
	g := e.st.Graph()
	alive := g.Nodes()
	if len(e.nodes) != len(alive) {
		return fmt.Errorf("dist: %d node goroutines for %d alive nodes", len(e.nodes), len(alive))
	}
	n := len(alive)
	if n == 0 {
		return nil
	}
	if budget > n {
		budget = n
	}
	e.viewCursor %= n
	for i := 0; i < budget; i++ {
		id := alive[(e.viewCursor+i)%n]
		if err := e.validateLocalView(g, id); err != nil {
			return err
		}
	}
	e.viewCursor = (e.viewCursor + budget) % n
	return nil
}

// planFor hands the current wound's repair plan to the elected leader. It is
// called from a node goroutine; the engine wrote the plan before starting
// the rounds, so the inbox send orders the accesses.
func (e *Engine) planFor(victim graph.NodeID) *repairPlan {
	if e.plan == nil || e.plan.victim != victim {
		// A leader can only be elected inside the wound the engine opened.
		panic(fmt.Sprintf("dist: no repair plan for victim %d", victim))
	}
	// The leader picking up the plan is the moment the election resolved.
	// Called from a node goroutine; the recorder is internally synchronized.
	e.rec.Phase(obs.PhaseElected)
	return e.plan
}

// buildPlan slices the repair's net edge delta per affected node. The delta
// already excludes edges incident to the victim: their loss is learned from
// the failure notification itself.
func buildPlan(victim graph.NodeID, delta core.EdgeDelta) *repairPlan {
	plan := &repairPlan{victim: victim, updates: make(map[graph.NodeID]*edgeUpdate)}
	at := func(id graph.NodeID) *edgeUpdate {
		up, ok := plan.updates[id]
		if !ok {
			up = &edgeUpdate{}
			plan.updates[id] = up
		}
		return up
	}
	for _, edge := range delta.Removed {
		at(edge.U).drop = append(at(edge.U).drop, edge.V)
		at(edge.V).drop = append(at(edge.V).drop, edge.U)
	}
	for _, edge := range delta.Added {
		at(edge.U).add = append(at(edge.U).add, edge.V)
		at(edge.V).add = append(at(edge.V).add, edge.U)
	}
	return plan
}

// runProtocol drives synchronous rounds until no messages remain in flight:
// deliver every pending message to its recipient's inbox, let the node
// goroutines process the batches concurrently, and collect their replies as
// the next round's traffic. Returns the rounds executed and messages
// delivered.
func (e *Engine) runProtocol(pending []message) (rounds, msgs int) {
	for len(pending) > 0 {
		byDst := make(map[graph.NodeID][]message)
		for _, m := range pending {
			if _, alive := e.nodes[m.to]; !alive {
				continue // recipient died; the transport drops the message
			}
			byDst[m.to] = append(byDst[m.to], m)
		}
		if len(byDst) == 0 {
			break
		}
		order := make([]graph.NodeID, 0, len(byDst))
		for id := range byDst {
			order = append(order, id)
		}
		slices.Sort(order)
		for _, id := range order {
			e.nodes[id].inbox <- byDst[id]
			msgs += len(byDst[id])
		}
		pending = pending[:0]
		for _, id := range order {
			pending = append(pending, <-e.nodes[id].outbox...)
		}
		rounds++
	}
	return rounds, msgs
}

// ValidateLocalViews checks the protocol's decisive conformance property:
// the neighbor set every alive node believes it has — built purely from the
// messages it received — must be exactly its neighbor set in the healed
// graph. It returns nil when every view agrees.
func (e *Engine) ValidateLocalViews() error {
	if e.closed {
		return ErrClosed
	}
	g := e.st.Graph()
	alive := g.Nodes()
	if len(e.nodes) != len(alive) {
		return fmt.Errorf("dist: %d node goroutines for %d alive nodes", len(e.nodes), len(alive))
	}
	for _, id := range alive {
		if err := e.validateLocalView(g, id); err != nil {
			return err
		}
	}
	return nil
}

// validateLocalView checks one node's message-built local view against the
// healed graph (the per-node body of ValidateLocalViews).
func (e *Engine) validateLocalView(g *graph.Graph, id graph.NodeID) error {
	nd, ok := e.nodes[id]
	if !ok {
		return fmt.Errorf("dist: alive node %d has no goroutine", id)
	}
	nbrs := g.Neighbors(id)
	if len(nd.view) != len(nbrs) {
		return fmt.Errorf("dist: node %d local view has %d neighbors, healed graph has %d",
			id, len(nd.view), len(nbrs))
	}
	for _, w := range nbrs {
		if _, seen := nd.view[w]; !seen {
			return fmt.Errorf("dist: node %d is missing neighbor %d from its local view", id, w)
		}
	}
	return nil
}

// Close stops every node goroutine and waits for them to exit. Idempotent;
// mutating calls after Close return ErrClosed.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for id := range e.nodes {
		close(e.nodes[id].inbox)
	}
	e.nodes = map[graph.NodeID]*node{}
	e.wg.Wait()
}
