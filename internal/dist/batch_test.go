package dist

import (
	"errors"
	"testing"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
)

func batchFixture(t *testing.T) *graph.Graph {
	t.Helper()
	g0 := graph.New()
	for i := 1; i <= 8; i++ {
		g0.EnsureEdge(0, graph.NodeID(i))
		g0.EnsureEdge(graph.NodeID(i), graph.NodeID(i%8+1))
	}
	return g0
}

// ApplyBatch on the distributed engine must land on the same healed graph as
// the sequential reference applying the same batch under the same seed —
// facade parity for a daemon hosting either engine.
func TestApplyBatchParity(t *testing.T) {
	g0 := batchFixture(t)
	b := core.Batch{
		Insertions: []core.BatchInsertion{
			{Node: 100, Neighbors: []graph.NodeID{1, 3}},
			{Node: 101, Neighbors: []graph.NodeID{100, 5}},
		},
		Deletions: []graph.NodeID{0, 4},
	}

	st, err := core.NewState(core.Config{Kappa: 4, Seed: 7}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	if err := st.ApplyBatch(b); err != nil {
		t.Fatalf("reference ApplyBatch: %v", err)
	}

	e, err := NewEngine(Config{Kappa: 4, Seed: 7}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	if err := e.ApplyBatch(b); err != nil {
		t.Fatalf("distributed ApplyBatch: %v", err)
	}

	if !e.Graph().Equal(st.Graph()) {
		t.Fatalf("batched graphs diverge: dist n=%d m=%d, reference n=%d m=%d",
			e.Graph().NumNodes(), e.Graph().NumEdges(), st.Graph().NumNodes(), st.Graph().NumEdges())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after batch: %v", err)
	}
	if got := e.Totals().Deletions; got != len(b.Deletions) {
		t.Fatalf("ledger recorded %d deletions, want %d", got, len(b.Deletions))
	}
}

// A conflicting batch is rejected wholesale before any protocol traffic.
func TestApplyBatchConflictRejectedWholesale(t *testing.T) {
	g0 := batchFixture(t)
	e, err := NewEngine(Config{Kappa: 4, Seed: 7}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	before := e.Graph().Clone()

	conflict := core.Batch{
		Insertions: []core.BatchInsertion{{Node: 100, Neighbors: []graph.NodeID{1}}},
		Deletions:  []graph.NodeID{100}, // inserted and deleted in one timestep
	}
	if err := e.ApplyBatch(conflict); !errors.Is(err, core.ErrBatchConflict) {
		t.Fatalf("ApplyBatch(conflict) = %v, want ErrBatchConflict", err)
	}
	if !e.Graph().Equal(before) {
		t.Fatal("rejected batch mutated the graph")
	}
	if tot := e.Totals(); tot.Rounds != 0 || tot.Messages != 0 {
		t.Fatalf("rejected batch produced protocol traffic: %+v", tot)
	}
}

func TestApplyBatchClosed(t *testing.T) {
	e, err := NewEngine(Config{Kappa: 4, Seed: 7}, batchFixture(t))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.Close()
	if err := e.ApplyBatch(core.Batch{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyBatch after Close = %v, want ErrClosed", err)
	}
}
