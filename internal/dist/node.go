package dist

import (
	"fmt"
	"slices"

	"github.com/xheal/xheal/internal/graph"
)

// node is one protocol participant: a goroutine owning a local view of its
// incident edges, updated exclusively by the messages it receives (and the
// edges it initiated itself). The engine synchronizes with it only through
// the inbox/outbox channels, which also order all memory accesses.
type node struct {
	id   graph.NodeID
	rank int64 // private random leader rank (options.WithSeed derived)
	eng  *Engine

	// inbox receives one batch of messages per round the node participates
	// in; outbox returns the messages it emits for the next round. Closing
	// inbox stops the goroutine.
	inbox  chan []message
	outbox chan []message

	// view is the node's belief about its neighbor set.
	view map[graph.NodeID]struct{}

	// wound is the state of the repair the node is currently part of.
	wound *woundState
}

// woundState tracks one node's role in the repair of a single deletion.
type woundState struct {
	victim graph.NodeID
	roster []graph.NodeID // sorted wound membership
	idx    int            // this node's bracket position in roster

	pendingChildren int          // aggregates still expected from below
	bestRank        int64        // best (lowest) leader rank seen
	bestID          graph.NodeID // its holder
	reports         []report     // neighborhoods gathered from the subtree
}

func newNode(id graph.NodeID, rank int64, eng *Engine) *node {
	return &node{
		id:     id,
		rank:   rank,
		eng:    eng,
		inbox:  make(chan []message, 1),
		outbox: make(chan []message, 1),
		view:   make(map[graph.NodeID]struct{}),
	}
}

// run is the goroutine body: process one round's batch, emit the replies.
func (n *node) run() {
	defer n.eng.wg.Done()
	for batch := range n.inbox {
		var out []message
		for _, m := range batch {
			out = append(out, n.handle(m)...)
		}
		n.outbox <- out
	}
}

// handle processes one message and returns the messages to send next round.
func (n *node) handle(m message) []message {
	switch m.kind {
	case msgHello:
		n.view[m.subject] = struct{}{}
		return nil
	case msgDown:
		return n.onDown(m)
	case msgAggregate:
		if n.wound == nil {
			panic(fmt.Sprintf("dist: node %d received an aggregate outside a wound", n.id))
		}
		return n.onAggregate(m)
	case msgGrant:
		if n.wound == nil {
			panic(fmt.Sprintf("dist: node %d received a grant outside a wound", n.id))
		}
		// The root gathered every wound member's report (including this
		// node's own); the granted set replaces the local partial one.
		n.wound.reports = m.reports
		return n.lead()
	case msgEdgeUpdate:
		n.apply(m.add, m.drop)
		return nil
	}
	return nil
}

// onDown starts this node's participation in the wound: drop the victim from
// the view, take a bracket position over the roster, and begin the election
// convergecast (leaves fire immediately).
func (n *node) onDown(m message) []message {
	delete(n.view, m.subject)
	w := &woundState{
		victim:   m.subject,
		roster:   m.roster,
		idx:      -1,
		bestRank: n.rank,
		bestID:   n.id,
	}
	for i, id := range m.roster {
		if id == n.id {
			w.idx = i
			break
		}
	}
	k := len(w.roster)
	for _, child := range []int{2*w.idx + 1, 2*w.idx + 2} {
		if child < k {
			w.pendingChildren++
		}
	}
	w.reports = []report{{node: n.id, nbrs: n.viewList()}}
	n.wound = w
	if w.pendingChildren == 0 {
		return n.finishAggregate()
	}
	return nil
}

// onAggregate folds a child's subtree result into this node's and, when the
// last child has reported, forwards up the bracket (or resolves the election
// at the root).
func (n *node) onAggregate(m message) []message {
	w := n.wound
	if m.rank < w.bestRank || (m.rank == w.bestRank && m.subject < w.bestID) {
		w.bestRank, w.bestID = m.rank, m.subject
	}
	w.reports = append(w.reports, m.reports...)
	w.pendingChildren--
	if w.pendingChildren > 0 {
		return nil
	}
	return n.finishAggregate()
}

// finishAggregate sends this subtree's result to the bracket parent, or, at
// the root, grants leadership to the best-ranked member. Wound state stays
// until the engine closes the wound: any member — even one whose aggregate
// already went up — may still be granted leadership.
func (n *node) finishAggregate() []message {
	w := n.wound
	if w.idx > 0 {
		parent := w.roster[(w.idx-1)/2]
		return []message{{
			from: n.id, to: parent, kind: msgAggregate,
			subject: w.bestID, rank: w.bestRank, reports: w.reports,
		}}
	}
	if w.bestID == n.id {
		return n.lead()
	}
	return []message{{
		from: n.id, to: w.bestID, kind: msgGrant, reports: w.reports,
	}}
}

// lead is the elected leader's healing step: check the gathered wound state,
// compute the repair (Algorithm 3.1 on that state, delegated to
// internal/core) and disseminate one edge update per affected node. The
// leader's own changes apply directly.
func (n *node) lead() []message {
	w := n.wound
	// The gathered reports are the state the leader heals from: every wound
	// member must have reported, and none may still list the victim (its
	// detection round precedes the election). A violation is a protocol bug.
	if len(w.reports) != len(w.roster) {
		panic(fmt.Sprintf("dist: leader %d holds %d reports for a %d-member wound",
			n.id, len(w.reports), len(w.roster)))
	}
	for _, r := range w.reports {
		for _, nb := range r.nbrs {
			if nb == w.victim {
				panic(fmt.Sprintf("dist: wound member %d reported deleted node %d as a neighbor",
					r.node, w.victim))
			}
		}
	}
	plan := n.eng.planFor(w.victim)
	recipients := make([]graph.NodeID, 0, len(plan.updates))
	for id := range plan.updates {
		recipients = append(recipients, id)
	}
	slices.Sort(recipients)
	var out []message
	for _, id := range recipients {
		up := plan.updates[id]
		if id == n.id {
			n.apply(up.add, up.drop)
			continue
		}
		out = append(out, message{
			from: n.id, to: id, kind: msgEdgeUpdate,
			add: up.add, drop: up.drop,
		})
	}
	return out
}

// apply commits an edge update to the local view.
func (n *node) apply(add, drop []graph.NodeID) {
	for _, w := range add {
		n.view[w] = struct{}{}
	}
	for _, w := range drop {
		delete(n.view, w)
	}
}

// viewList returns the local view as a sorted slice (for reports).
func (n *node) viewList() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(n.view))
	for w := range n.view {
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}
