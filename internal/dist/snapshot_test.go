package dist

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// distEvent is one recorded adversarial action for replay across engines.
type distEvent struct {
	del  bool
	node graph.NodeID
	nbrs []graph.NodeID
}

// genDistSchedule records a random insert/delete schedule by driving a
// scratch engine, so the exact same event sequence can be applied to several
// engines.
func genDistSchedule(t *testing.T, cfg Config, g0 *graph.Graph, steps int, seed int64) []distEvent {
	t.Helper()
	e, err := NewEngine(cfg, g0.Clone())
	if err != nil {
		t.Fatalf("scratch engine: %v", err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(seed))
	next := graph.NodeID(300000)
	events := make([]distEvent, 0, steps)
	for step := 0; step < steps; step++ {
		alive := e.Graph().Nodes()
		var ev distEvent
		if len(alive) > 4 && rng.Float64() < 0.45 {
			ev = distEvent{del: true, node: alive[rng.Intn(len(alive))]}
			if err := e.Delete(ev.node); err != nil {
				t.Fatalf("schedule step %d delete: %v", step, err)
			}
		} else {
			k := 1 + rng.Intn(3)
			if k > len(alive) {
				k = len(alive)
			}
			nbrs := make([]graph.NodeID, 0, k)
			for _, i := range rng.Perm(len(alive))[:k] {
				nbrs = append(nbrs, alive[i])
			}
			ev = distEvent{node: next, nbrs: nbrs}
			next++
			if err := e.Insert(ev.node, ev.nbrs); err != nil {
				t.Fatalf("schedule step %d insert: %v", step, err)
			}
		}
		events = append(events, ev)
	}
	return events
}

func applyDistEvent(t *testing.T, e *Engine, ev distEvent) {
	t.Helper()
	var err error
	if ev.del {
		err = e.Delete(ev.node)
	} else {
		err = e.Insert(ev.node, ev.nbrs)
	}
	if err != nil {
		t.Fatalf("apply %+v: %v", ev, err)
	}
}

// TestEngineSnapshotRestoreIdentity is the distributed engine's
// recovery-identity property: for every crash point k, running k events,
// snapshotting through JSON, restoring (which respawns one goroutine per
// alive node with its recorded rank and a view rebuilt from the healed
// graph), and running the tail must be byte-indistinguishable from the
// uncrashed run.
func TestEngineSnapshotRestoreIdentity(t *testing.T) {
	cfg := Config{Kappa: 4, Seed: 21}
	g0, err := workload.RandomRegular(12, 2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	const steps = 36
	events := genDistSchedule(t, cfg, g0, steps, 77)

	genesis, err := NewEngine(cfg, g0.Clone())
	if err != nil {
		t.Fatalf("genesis engine: %v", err)
	}
	defer genesis.Close()
	for _, ev := range events {
		applyDistEvent(t, genesis, ev)
	}
	want, err := genesis.SnapshotState()
	if err != nil {
		t.Fatalf("genesis snapshot: %v", err)
	}

	for k := 0; k <= steps; k += 6 {
		e, err := NewEngine(cfg, g0.Clone())
		if err != nil {
			t.Fatalf("crash point %d: engine: %v", k, err)
		}
		for _, ev := range events[:k] {
			applyDistEvent(t, e, ev)
		}
		data, err := e.SnapshotState()
		if err != nil {
			t.Fatalf("crash point %d: snapshot: %v", k, err)
		}
		e.Close()

		snap, err := LoadSnapshot(data)
		if err != nil {
			t.Fatalf("crash point %d: load: %v", k, err)
		}
		restored, err := RestoreEngine(snap)
		if err != nil {
			t.Fatalf("crash point %d: restore: %v", k, err)
		}
		// The restored engine must re-serialize byte-identically right away...
		again, err := restored.SnapshotState()
		if err != nil {
			t.Fatalf("crash point %d: re-snapshot: %v", k, err)
		}
		if !bytes.Equal(data, again) {
			restored.Close()
			t.Fatalf("crash point %d: restored snapshot differs from original", k)
		}
		// ...and behave bit-identically through the rest of the schedule.
		for _, ev := range events[k:] {
			applyDistEvent(t, restored, ev)
		}
		if err := restored.CheckInvariants(); err != nil {
			t.Fatalf("crash point %d: invariants after tail: %v", k, err)
		}
		if err := restored.ValidateLocalViews(); err != nil {
			t.Fatalf("crash point %d: local views after tail: %v", k, err)
		}
		got, err := restored.SnapshotState()
		if err != nil {
			t.Fatalf("crash point %d: final snapshot: %v", k, err)
		}
		if !bytes.Equal(want, got) {
			restored.Close()
			t.Fatalf("crash point %d: final state diverged from uncrashed run", k)
		}
		if !restored.Graph().Equal(genesis.Graph()) {
			restored.Close()
			t.Fatalf("crash point %d: healed graphs differ", k)
		}
		restored.Close()
	}
}

// TestRestoreEngineRejectsCorruptSnapshot spot-checks restore validation.
func TestRestoreEngineRejectsCorruptSnapshot(t *testing.T) {
	e := regularEngine(t, 10, 2, 4, 9)
	for _, ev := range genDistSchedule(t, Config{Kappa: 4, Seed: 9}, e.Graph().Clone(), 0, 1) {
		_ = ev
	}
	base := e.Snapshot()

	corrupt := *base
	corrupt.Version = 99
	if _, err := RestoreEngine(&corrupt); err == nil {
		t.Fatal("bad version accepted")
	}

	corrupt = *base
	corrupt.Ranks = base.Ranks[:len(base.Ranks)-1]
	if _, err := RestoreEngine(&corrupt); err == nil {
		t.Fatal("missing rank accepted")
	}

	corrupt = *base
	corrupt.Ranks = append([]NodeRank(nil), base.Ranks...)
	corrupt.Ranks[0].Node = 999999 // not alive
	if _, err := RestoreEngine(&corrupt); err == nil {
		t.Fatal("rank for non-alive node accepted")
	}

	corrupt = *base
	corrupt.Core = nil
	if _, err := RestoreEngine(&corrupt); err == nil {
		t.Fatal("nil core accepted")
	}
}
