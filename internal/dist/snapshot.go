package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
)

// rankSeedSalt derives the engine's rank stream from the config seed (kept
// distinct from the healing stream the inner reference state consumes).
const rankSeedSalt = 0x5f3759df

// ErrBadSnapshot wraps all engine-snapshot decode/restore failures.
var ErrBadSnapshot = errors.New("dist: malformed snapshot")

// NodeRank is one alive node's private leader-election rank.
type NodeRank struct {
	Node graph.NodeID `json:"node"`
	Rank int64        `json:"rank"`
}

// Snapshot is the complete serializable state of a distributed engine: the
// inner reference state, every alive node's election rank, the position of
// the rank stream (future spawns draw from it), and the cost ledger. The
// nodes' local views are not serialized — between repairs every view equals
// the healed graph's neighbor sets exactly (ValidateLocalViews), so restore
// derives them. All collections are sorted: equal states produce
// byte-identical JSON.
type Snapshot struct {
	Version     int             `json:"version"`
	Core        *core.Snapshot  `json:"core"`
	Ranks       []NodeRank      `json:"ranks"`
	RngDraws    uint64          `json:"rng_draws"`
	Costs       []DeletionCost  `json:"costs,omitempty"`
	Totals      Totals          `json:"totals"`
	BlackDegSum int             `json:"black_deg_sum"`
}

// Snapshot captures the complete current state. The engine must be quiescent
// (between events; the protocol runs to completion inside each mutating
// call, so any moment outside Insert/Delete/ApplyBatch qualifies).
func (e *Engine) Snapshot() *Snapshot {
	snap := &Snapshot{
		Version:     core.SnapshotVersion,
		Core:        e.st.Snapshot(),
		Ranks:       make([]NodeRank, 0, len(e.nodes)),
		RngDraws:    e.src.Draws(),
		Costs:       append([]DeletionCost(nil), e.costs...),
		Totals:      e.totals,
		BlackDegSum: e.blackDegSum,
	}
	for id, nd := range e.nodes {
		snap.Ranks = append(snap.Ranks, NodeRank{Node: id, Rank: nd.rank})
	}
	slices.SortFunc(snap.Ranks, func(a, b NodeRank) int {
		switch {
		case a.Node < b.Node:
			return -1
		case a.Node > b.Node:
			return 1
		}
		return 0
	})
	return snap
}

// RestoreEngine rebuilds an engine from a snapshot: the reference state is
// restored exactly, one goroutine per alive node is spawned with its
// recorded rank, and each node's local view is seeded from the healed
// graph's neighbor sets (the protocol's own invariant between repairs). The
// restored engine's future behavior is bit-identical to the snapshotted
// original's. Close the engine when done.
func RestoreEngine(snap *Snapshot) (*Engine, error) {
	if snap == nil || snap.Core == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadSnapshot)
	}
	if snap.Version != core.SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, snap.Version, core.SnapshotVersion)
	}
	st, err := core.RestoreState(snap.Core)
	if err != nil {
		return nil, err
	}
	src := core.NewCountedSource(snap.Core.Seed ^ rankSeedSalt)
	src.Skip(snap.RngDraws)
	e := &Engine{
		st:          st,
		seed:        snap.Core.Seed,
		src:         src,
		rng:         rand.New(src),
		nodes:       make(map[graph.NodeID]*node, len(snap.Ranks)),
		costs:       append([]DeletionCost(nil), snap.Costs...),
		totals:      snap.Totals,
		blackDegSum: snap.BlackDegSum,
	}
	g := st.Graph()
	alive := g.Nodes()
	if len(snap.Ranks) != len(alive) {
		return nil, fmt.Errorf("%w: %d ranks for %d alive nodes", ErrBadSnapshot, len(snap.Ranks), len(alive))
	}
	for _, nr := range snap.Ranks {
		if !g.HasNode(nr.Node) {
			return nil, fmt.Errorf("%w: rank for non-alive node %d", ErrBadSnapshot, nr.Node)
		}
		if _, dup := e.nodes[nr.Node]; dup {
			return nil, fmt.Errorf("%w: duplicate rank for node %d", ErrBadSnapshot, nr.Node)
		}
		nd := newNode(nr.Node, nr.Rank, e)
		for _, w := range g.Neighbors(nr.Node) {
			nd.view[w] = struct{}{}
		}
		e.nodes[nr.Node] = nd
		e.wg.Add(1)
		go nd.run()
	}
	return e, nil
}

// SnapshotState serializes the complete engine state as deterministic JSON —
// the engine-agnostic form a checkpoint store persists (see internal/server's
// Snapshotter).
func (e *Engine) SnapshotState() ([]byte, error) {
	if e.closed {
		return nil, ErrClosed
	}
	return json.Marshal(e.Snapshot())
}

// LoadSnapshot decodes an engine snapshot serialized by SnapshotState.
func LoadSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &snap, nil
}

// Stats returns the healing-work counters of the inner reference state
// (facade parity with core.State.Stats, used by recovery to reseed serving
// counters).
func (e *Engine) Stats() core.Stats { return e.st.Stats() }
