package dist

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
)

// TestSpansMatchCostLedger drives a churn run with per-wound tracing on and
// checks the acceptance contract: exactly one span per deletion, in deletion
// order, with every span's node, black degree, rounds, and messages equal to
// the engine's cost-ledger entry of the same ordinal — the spans ARE the
// ledger, plus timing.
func TestSpansMatchCostLedger(t *testing.T) {
	e := regularEngine(t, 48, 3, 4, 11)
	var buf bytes.Buffer
	w := obs.NewSpanWriter(&buf)
	hist := obs.MustHistogram(obs.LatencyBuckets())
	rec := obs.NewRecorder(w, hist)
	e.SetRecorder(rec)

	rng := rand.New(rand.NewSource(11))
	alive := make([]graph.NodeID, 0, 48)
	for _, v := range e.Graph().Nodes() {
		alive = append(alive, v)
	}
	next := graph.NodeID(1000)
	deleted := 0
	for step := 0; step < 30; step++ {
		if step%3 == 2 {
			// Attach a fresh node to two alive ones: insertions must advance
			// the span event index without emitting spans.
			nbrs := []graph.NodeID{alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]}
			if nbrs[0] == nbrs[1] {
				nbrs = nbrs[:1]
			}
			if err := e.Insert(next, nbrs); err != nil {
				t.Fatalf("insert %d: %v", next, err)
			}
			alive = append(alive, next)
			next++
			continue
		}
		i := rng.Intn(len(alive))
		v := alive[i]
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		if err := e.Delete(v); err != nil {
			t.Fatalf("delete %d: %v", v, err)
		}
		deleted++
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	costs := e.Costs()
	if len(spans) != deleted || len(costs) != deleted {
		t.Fatalf("got %d spans, %d ledger entries, want %d each", len(spans), len(costs), deleted)
	}
	if rec.Spans() != uint64(deleted) || rec.Dropped() != 0 {
		t.Fatalf("recorder: %d spans, %d dropped", rec.Spans(), rec.Dropped())
	}

	var wantRounds, wantMsgs uint64
	prevEvent := -1
	for i, s := range spans {
		c := costs[i]
		if s.Seq != i {
			t.Fatalf("span %d: seq %d", i, s.Seq)
		}
		if s.Node != c.Node {
			t.Fatalf("span %d: node %d, ledger %d", i, s.Node, c.Node)
		}
		if s.BlackDegree != c.BlackDegree {
			t.Fatalf("span %d (node %d): black degree %d, ledger %d", i, s.Node, s.BlackDegree, c.BlackDegree)
		}
		if s.Rounds != c.Rounds || s.Messages != c.Messages {
			t.Fatalf("span %d (node %d): cost %d rounds / %d messages, ledger %d / %d",
				i, s.Node, s.Rounds, s.Messages, c.Rounds, c.Messages)
		}
		if s.Event <= prevEvent {
			t.Fatalf("span %d: event index %d not increasing past %d", i, s.Event, prevEvent)
		}
		prevEvent = s.Event
		if s.Wound < s.BlackDegree {
			t.Fatalf("span %d: wound %d below black degree %d", i, s.Wound, s.BlackDegree)
		}
		// The distributed lifecycle stamps every phase in order.
		p := s.Phases
		if p.ElectedUS < p.RewiredUS || p.DisseminatedUS < p.ElectedUS || p.SettledUS < p.DisseminatedUS {
			t.Fatalf("span %d: phases not monotone: %+v", i, p)
		}
		wantRounds += uint64(c.Rounds)
		wantMsgs += uint64(c.Messages)
	}
	// Insertions interleave with deletions, so the last span's event index
	// must exceed the deletion count alone.
	if spans[len(spans)-1].Event < deleted {
		t.Fatalf("final event index %d did not account for insertions", spans[len(spans)-1].Event)
	}

	if rounds, msgs := rec.Ledger(); rounds != wantRounds || msgs != wantMsgs {
		t.Fatalf("recorder ledger %d/%d, engine ledger %d/%d", rounds, msgs, wantRounds, wantMsgs)
	}
	if hist.Snapshot().Count != uint64(deleted) {
		t.Fatalf("repair hist count %d, want %d", hist.Snapshot().Count, deleted)
	}
	if err := e.ValidateLocalViews(); err != nil {
		t.Fatalf("local views after traced run: %v", err)
	}
}
