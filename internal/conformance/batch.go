package conformance

import (
	"fmt"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
)

// Batched timesteps are the serving daemon's native unit (internal/server
// coalesces concurrent submissions into one core.Batch per tick), so the
// differential engine checks them too: RunBatched drives the centralized
// reference and the distributed protocol engine through the *same* batch
// schedule in lockstep and asserts, after every timestep, the same
// properties the per-event runner checks.

// BatchFailure is a conformance violation during a batched lockstep run.
type BatchFailure struct {
	// Timestep is the 1-based index of the failing batch.
	Timestep int
	// Kind is one of the Kind* constants.
	Kind string
	// Err describes the violation.
	Err error
}

func (f *BatchFailure) Error() string {
	return fmt.Sprintf("conformance: timestep %d: %s: %v", f.Timestep, f.Kind, f.Err)
}

func (f *BatchFailure) Unwrap() error { return f.Err }

// RunBatched applies every batch to both engines in lockstep over copies of
// g0. After each timestep it asserts graph identity, the structural
// invariants, local-view consistency, and connectivity; at the end it runs
// the Theorem 2 metric checkpoint. Both engines must agree on acceptance: a
// batch only one engine rejects is itself a divergence.
func RunBatched(g0 *graph.Graph, batches []core.Batch, opts Options) error {
	net, err := xheal.NewNetwork(g0, xheal.WithKappa(opts.Kappa), xheal.WithSeed(opts.Seed))
	if err != nil {
		return fmt.Errorf("conformance: centralized engine: %w", err)
	}
	eng, err := dist.NewEngine(dist.Config{Kappa: opts.Kappa, Seed: opts.Seed}, g0)
	if err != nil {
		return fmt.Errorf("conformance: distributed engine: %w", err)
	}
	defer eng.Close()

	rs := &runState{opts: opts, net: net, eng: eng, res: &Result{}, maxAlive: g0.NumNodes()}
	for i, b := range batches {
		fail := func(kind string, err error) *BatchFailure {
			return &BatchFailure{Timestep: i + 1, Kind: kind, Err: err}
		}
		errNet := net.ApplyBatch(b)
		errEng := eng.ApplyBatch(b)
		if (errNet == nil) != (errEng == nil) {
			return fail(KindDivergence, fmt.Errorf(
				"acceptance split: centralized err=%v, distributed err=%v", errNet, errEng))
		}
		if errNet != nil {
			return fail(KindApply, fmt.Errorf("both engines rejected the batch: %w", errNet))
		}
		rs.res.Inserts += len(b.Insertions)
		rs.res.Deletions += len(b.Deletions)
		if n := net.Graph().NumNodes(); n > rs.maxAlive {
			rs.maxAlive = n
		}
		if err := diffGraphs(net.Graph(), eng.Graph()); err != nil {
			return fail(KindDivergence, err)
		}
		if err := net.CheckInvariants(); err != nil {
			return fail(KindInvariant, err)
		}
		if err := eng.ValidateLocalViews(); err != nil {
			return fail(KindViews, err)
		}
		if !net.Graph().IsConnected() {
			return fail(KindConnectivity, fmt.Errorf("healed graph disconnected (n=%d m=%d)",
				net.Graph().NumNodes(), net.Graph().NumEdges()))
		}
	}
	if err := rs.checkMetrics(len(batches) + 1); err != nil {
		return &BatchFailure{Timestep: len(batches), Kind: KindMetrics, Err: err}
	}
	return nil
}

// ChunkSchedule groups a per-event schedule into batched timesteps of at
// most size events, starting a new batch early whenever the next event would
// conflict with the one being assembled (the same arrival-order rule the
// serving daemon's coalescer uses). The concatenation of the returned
// batches applies the events in their original order.
func ChunkSchedule(events []adversary.Event, size int) []core.Batch {
	if size < 1 {
		size = 1
	}
	var batches []core.Batch
	var cur core.Batch
	curEvents := 0
	inserted := make(map[graph.NodeID]bool)
	deleted := make(map[graph.NodeID]bool)
	attached := make(map[graph.NodeID]bool)
	flush := func() {
		if curEvents == 0 {
			return
		}
		batches = append(batches, cur)
		cur = core.Batch{}
		curEvents = 0
		clear(inserted)
		clear(deleted)
		clear(attached)
	}
	conflicts := func(ev adversary.Event) bool {
		switch ev.Kind {
		case adversary.Insert:
			if inserted[ev.Node] || deleted[ev.Node] {
				return true
			}
			for _, w := range ev.Neighbors {
				if deleted[w] {
					return true
				}
			}
		case adversary.Delete:
			// A batch deletes after inserting, so deleting a batch-inserted
			// node — or a node a batch insertion attaches to — in the same
			// timestep is a conflict, not an ordering.
			if inserted[ev.Node] || deleted[ev.Node] || attached[ev.Node] {
				return true
			}
		}
		return false
	}
	for _, ev := range events {
		// ApplyBatch applies all insertions before any deletion, so an
		// insert arriving after a delete must open a new timestep — otherwise
		// the concatenated application order would differ from the original.
		hoists := ev.Kind == adversary.Insert && len(cur.Deletions) > 0
		if curEvents >= size || conflicts(ev) || hoists {
			flush()
		}
		switch ev.Kind {
		case adversary.Insert:
			cur.Insertions = append(cur.Insertions, core.BatchInsertion{
				Node: ev.Node, Neighbors: ev.Neighbors,
			})
			inserted[ev.Node] = true
			for _, w := range ev.Neighbors {
				attached[w] = true
			}
		case adversary.Delete:
			cur.Deletions = append(cur.Deletions, ev.Node)
			deleted[ev.Node] = true
		}
		curEvents++
	}
	flush()
	return batches
}
