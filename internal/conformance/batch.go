package conformance

import (
	"fmt"
	"math"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
)

// Batched timesteps are the serving daemon's native unit (internal/server
// coalesces concurrent submissions into one core.Batch per tick), so the
// differential engine checks them too: RunBatched drives the centralized
// reference and the distributed protocol engine through the *same* batch
// schedule in lockstep and asserts, after every timestep, the same
// properties the per-event runner checks.

// BatchFailure is a conformance violation during a batched lockstep run.
type BatchFailure struct {
	// Timestep is the 1-based index of the failing batch.
	Timestep int
	// Kind is one of the Kind* constants.
	Kind string
	// Err describes the violation.
	Err error
}

func (f *BatchFailure) Error() string {
	return fmt.Sprintf("conformance: timestep %d: %s: %v", f.Timestep, f.Kind, f.Err)
}

func (f *BatchFailure) Unwrap() error { return f.Err }

// RunBatched applies every batch to both engines in lockstep over copies of
// g0. After each timestep it asserts graph identity, the structural
// invariants, local-view consistency, connectivity, and the per-deletion
// ledger bounds (Lemma 5 floor, wound broadcast minimum, Theorem 5 round
// budget) grouped by repair group; at the end it runs the Theorem 2 metric
// checkpoint. Both engines must agree on acceptance: a batch only one engine
// rejects is itself a divergence. With opts.Parallelism > 1 the centralized
// reference heals each batch's disjoint wounds concurrently — graph identity
// against the serial distributed engine then certifies the parallel schedule
// equivalent to a serial order.
func RunBatched(g0 *graph.Graph, batches []core.Batch, opts Options) error {
	net, err := xheal.NewNetwork(g0, xheal.WithKappa(opts.Kappa), xheal.WithSeed(opts.Seed))
	if err != nil {
		return fmt.Errorf("conformance: centralized engine: %w", err)
	}
	eng, err := dist.NewEngine(dist.Config{Kappa: opts.Kappa, Seed: opts.Seed}, g0)
	if err != nil {
		return fmt.Errorf("conformance: distributed engine: %w", err)
	}
	defer eng.Close()

	rs := &runState{opts: opts, net: net, eng: eng, res: &Result{}, maxAlive: g0.NumNodes()}
	for i, b := range batches {
		fail := func(kind string, err error) *BatchFailure {
			return &BatchFailure{Timestep: i + 1, Kind: kind, Err: err}
		}
		costsBefore := eng.Totals().Deletions
		var errNet error
		if opts.Parallelism > 1 {
			errNet = net.ApplyBatchParallel(b, opts.Parallelism)
		} else {
			errNet = net.ApplyBatch(b)
		}
		errEng := eng.ApplyBatch(b)
		if (errNet == nil) != (errEng == nil) {
			return fail(KindDivergence, fmt.Errorf(
				"acceptance split: centralized err=%v, distributed err=%v", errNet, errEng))
		}
		if errNet != nil {
			return fail(KindApply, fmt.Errorf("both engines rejected the batch: %w", errNet))
		}
		rs.res.Inserts += len(b.Insertions)
		rs.res.Deletions += len(b.Deletions)
		if n := net.Graph().NumNodes(); n > rs.maxAlive {
			rs.maxAlive = n
		}
		if err := diffGraphs(net.Graph(), eng.Graph()); err != nil {
			return fail(KindDivergence, err)
		}
		if err := net.CheckInvariants(); err != nil {
			return fail(KindInvariant, err)
		}
		if err := eng.ValidateLocalViews(); err != nil {
			return fail(KindViews, err)
		}
		if !net.Graph().IsConnected() {
			return fail(KindConnectivity, fmt.Errorf("healed graph disconnected (n=%d m=%d)",
				net.Graph().NumNodes(), net.Graph().NumEdges()))
		}
		if err := checkGroupLedgers(net, eng, b, costsBefore); err != nil {
			return fail(KindLedger, err)
		}
	}
	if err := rs.checkMetrics(len(batches) + 1); err != nil {
		return &BatchFailure{Timestep: len(batches), Kind: KindMetrics, Err: err}
	}
	return nil
}

// checkGroupLedgers verifies one timestep's distributed repair costs against
// the paper's per-repair bounds, organized by the centralized engine's repair
// groups. The groups reported by ApplyBatchParallel must partition the
// batch's deletions (a serial apply reports none, in which case the whole
// batch is checked as one group), and every deletion must satisfy the
// Lemma 5 message floor (≥ black degree), the wound broadcast+convergecast
// minimum (≥ 2·wound−1), and the Theorem 5 round budget ⌊log₂ wound⌋+5.
func checkGroupLedgers(net *xheal.Network, eng *dist.Engine, b core.Batch, costsBefore int) error {
	costs := eng.Costs()
	if got, want := len(costs)-costsBefore, len(b.Deletions); got != want {
		return fmt.Errorf("distributed ledger grew by %d entries for %d deletions", got, want)
	}
	byNode := make(map[graph.NodeID]dist.DeletionCost, len(b.Deletions))
	for _, c := range costs[costsBefore:] {
		byNode[c.Node] = c
	}

	groups := net.LastRepairGroups()
	if groups == nil {
		// Serial path (plain ApplyBatch, or a fallback inside the parallel
		// apply): the batch is one implicit group.
		groups = [][]graph.NodeID{b.Deletions}
	} else {
		seen := make(map[graph.NodeID]int, len(b.Deletions))
		for _, grp := range groups {
			for _, v := range grp {
				seen[v]++
			}
		}
		for _, v := range b.Deletions {
			if seen[v] != 1 {
				return fmt.Errorf("repair groups cover deletion %d %d times, want exactly once", v, seen[v])
			}
		}
		if len(seen) != len(b.Deletions) {
			return fmt.Errorf("repair groups cover %d deletions, batch has %d", len(seen), len(b.Deletions))
		}
	}

	for gi, grp := range groups {
		for _, v := range grp {
			c, ok := byNode[v]
			if !ok {
				return fmt.Errorf("group %d: no ledger entry for deletion %d", gi, v)
			}
			if c.Messages < c.BlackDegree {
				return fmt.Errorf("group %d, delete %d: %d messages < black degree %d (Lemma 5 floor)",
					gi, v, c.Messages, c.BlackDegree)
			}
			if c.Wound == 0 {
				if c.Rounds != 0 || c.Messages != 0 {
					return fmt.Errorf("group %d, delete of isolated %d cost %d rounds / %d messages, want none",
						gi, v, c.Rounds, c.Messages)
				}
				continue
			}
			if minMsgs := 2*c.Wound - 1; c.Messages < minMsgs {
				return fmt.Errorf("group %d, delete %d: %d messages < %d (wound broadcast + convergecast over %d members)",
					gi, v, c.Messages, minMsgs, c.Wound)
			}
			budget := int(math.Floor(math.Log2(float64(c.Wound)))) + 5
			if c.Rounds < 1 || c.Rounds > budget {
				return fmt.Errorf("group %d, delete %d: %d rounds outside [1, %d] for a %d-member wound (Theorem 5 round budget)",
					gi, v, c.Rounds, budget, c.Wound)
			}
		}
	}
	return nil
}

// ChunkSchedule groups a per-event schedule into batched timesteps of at
// most size events, starting a new batch early whenever the next event would
// conflict with the one being assembled (the same arrival-order rule the
// serving daemon's coalescer uses). The concatenation of the returned
// batches applies the events in their original order.
func ChunkSchedule(events []adversary.Event, size int) []core.Batch {
	if size < 1 {
		size = 1
	}
	var batches []core.Batch
	var cur core.Batch
	curEvents := 0
	inserted := make(map[graph.NodeID]bool)
	deleted := make(map[graph.NodeID]bool)
	attached := make(map[graph.NodeID]bool)
	flush := func() {
		if curEvents == 0 {
			return
		}
		batches = append(batches, cur)
		cur = core.Batch{}
		curEvents = 0
		clear(inserted)
		clear(deleted)
		clear(attached)
	}
	conflicts := func(ev adversary.Event) bool {
		switch ev.Kind {
		case adversary.Insert:
			if inserted[ev.Node] || deleted[ev.Node] {
				return true
			}
			for _, w := range ev.Neighbors {
				if deleted[w] {
					return true
				}
			}
		case adversary.Delete:
			// A batch deletes after inserting, so deleting a batch-inserted
			// node — or a node a batch insertion attaches to — in the same
			// timestep is a conflict, not an ordering.
			if inserted[ev.Node] || deleted[ev.Node] || attached[ev.Node] {
				return true
			}
		}
		return false
	}
	for _, ev := range events {
		// ApplyBatch applies all insertions before any deletion, so an
		// insert arriving after a delete must open a new timestep — otherwise
		// the concatenated application order would differ from the original.
		hoists := ev.Kind == adversary.Insert && len(cur.Deletions) > 0
		if curEvents >= size || conflicts(ev) || hoists {
			flush()
		}
		switch ev.Kind {
		case adversary.Insert:
			cur.Insertions = append(cur.Insertions, core.BatchInsertion{
				Node: ev.Node, Neighbors: ev.Neighbors,
			})
			inserted[ev.Node] = true
			for _, w := range ev.Neighbors {
				attached[w] = true
			}
		case adversary.Delete:
			cur.Deletions = append(cur.Deletions, ev.Node)
			deleted[ev.Node] = true
		}
		curEvents++
	}
	flush()
	return batches
}
