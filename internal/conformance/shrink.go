package conformance

import (
	"fmt"
	"os"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
)

// shrinkBudget caps the number of candidate runs one Shrink may spend, so a
// pathological schedule cannot stall a CI soak. Each run is a full lockstep
// replay; the cap is far above what ddmin needs on the ≤64-event schedules
// the matrix produces.
const shrinkBudget = 600

// Shrink delta-debugs a failing schedule down to a locally minimal event
// subsequence that still fails with the same failure kind. It replays
// candidates with SkipInapplicable set (removing an insert must not turn a
// later delete into an apply error), so the result is directly replayable.
// The second return is the minimal schedule's failure; a nil *Failure means
// the original schedule did not fail and events is returned unchanged.
func Shrink(g0 *graph.Graph, events []adversary.Event, opts Options) ([]adversary.Event, *Failure) {
	opts.SkipInapplicable = true
	budget := shrinkBudget
	reproduce := func(cand []adversary.Event) (*Result, *Failure) {
		if budget <= 0 {
			return nil, nil
		}
		budget--
		res, err := Run(g0, adversary.NewScripted(cand...), opts)
		if err == nil {
			return res, nil
		}
		if f, ok := err.(*Failure); ok {
			return res, f
		}
		return res, &Failure{Kind: KindApply, Err: err}
	}

	res, fail := reproduce(events)
	if fail == nil {
		return events, nil
	}
	kind := fail.Kind
	// The run stops at the first violation, so everything after the failing
	// event is dead weight: restart from the applied prefix.
	current, best := res.Events, fail

	accept := func(cand []adversary.Event) bool {
		candRes, candFail := reproduce(cand)
		if candFail == nil || candFail.Kind != kind {
			return false
		}
		// Keep only what the candidate actually applied before failing:
		// sanitizer-skipped and post-failure events are noise.
		current, best = candRes.Events, candFail
		return true
	}

	// Classic ddmin: try dropping ever-finer chunks until single events.
	for chunks := 2; len(current) >= 2; {
		if chunks > len(current) {
			chunks = len(current)
		}
		shrunk := false
		size := (len(current) + chunks - 1) / chunks
		for start := 0; start < len(current); start += size {
			end := min(start+size, len(current))
			cand := make([]adversary.Event, 0, len(current)-(end-start))
			cand = append(cand, current[:start]...)
			cand = append(cand, current[end:]...)
			if len(cand) == 0 {
				continue
			}
			if accept(cand) {
				shrunk = true
				break
			}
		}
		if shrunk {
			chunks = 2
			continue
		}
		if chunks == len(current) || budget <= 0 {
			break
		}
		chunks *= 2
	}
	return current, best
}

// WriteArtifact saves a schedule as a replayable internal/trace JSON file.
// Replay it with the command ReproCommand returns.
func WriteArtifact(path string, g0 *graph.Graph, events []adversary.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("conformance: artifact: %w", err)
	}
	if err := trace.FromEvents(g0, events).Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReproCommand returns the one-command repro for a saved artifact: a replay
// through the lockstep checker itself, since most failure kinds (divergence,
// local views, ledger) only manifest with both engines running side by side.
// The trace file carries only the topology and events, so the command pins
// the run's κ and seed explicitly — healing decisions are seed-dependent,
// and a replay under different randomness would heal a different (equally
// valid) graph instead of reproducing the recorded one.
func ReproCommand(path string, opts Options) string {
	cmd := fmt.Sprintf("go run ./cmd/xheal-bench -conf-replay %s -conf-seed %d", path, opts.Seed)
	if opts.Kappa != 0 {
		cmd += fmt.Sprintf(" -conf-kappa %d", opts.Kappa)
	}
	return cmd
}
