package conformance

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
	"github.com/xheal/xheal/internal/workload"
)

// shortWorkloads is the -short sample: one adversarially easy, one random,
// and one power-law substrate; the full run covers every workload.Names()
// entry. Every adversary runs in both modes.
var shortWorkloads = map[string]bool{
	workload.NameStar:     true,
	workload.NameRegular:  true,
	workload.NamePowerLaw: true,
}

// TestConformanceMatrix is the backbone: the full adversary × workload
// cross-product, run in lockstep with every per-event check enabled. In
// short mode it samples three workloads at n=24; the full run is exhaustive
// at n=64 with 34 events per cell (the acceptance scale). A failing cell is
// shrunk to a minimal schedule and saved as a replayable trace before the
// test reports it.
func TestConformanceMatrix(t *testing.T) {
	n, steps := 64, 34
	if testing.Short() {
		n, steps = 24, 12
	}
	for _, c := range MatrixCells(n, steps, 1000) {
		if testing.Short() && !shortWorkloads[c.Workload] {
			continue
		}
		c := c
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			// Seed is set explicitly (not left for RunCell to inherit) so a
			// failure's shrink replays under the exact same randomness.
			opts := Options{Kappa: 4, Seed: c.Seed, MetricsEvery: 10}
			g0, res, err := RunCell(c, opts)
			if err == nil {
				if len(res.Events) == 0 {
					t.Fatalf("cell applied no events")
				}
				return
			}
			var fail *Failure
			if !errors.As(err, &fail) {
				t.Fatalf("cell setup: %v", err)
			}
			reportShrunk(t, g0, res.Events, opts, fail)
		})
	}
}

// reportShrunk minimizes a failing schedule, saves the replayable artifact,
// and fails the test with the one-command repro.
func reportShrunk(t *testing.T, g0 *graph.Graph, events []adversary.Event, opts Options, fail *Failure) {
	t.Helper()
	minimal, minFail := Shrink(g0, events, opts)
	f, err := os.CreateTemp("", "xheal-conformance-*.json")
	if err != nil {
		t.Fatalf("original failure %v; artifact: %v", fail, err)
	}
	path := f.Name()
	f.Close()
	if err := WriteArtifact(path, g0, minimal); err != nil {
		t.Fatalf("original failure %v; artifact: %v", fail, err)
	}
	if minFail == nil {
		// The failure only manifests under strict replay (sanitization masks
		// it); the artifact holds the full schedule, and the repro command's
		// strict lockstep replay still reproduces it.
		t.Fatalf("conformance failure: %v\nnot reproducible under sanitized shrinking; full %d-event schedule saved\nrepro: %s",
			fail, len(minimal), ReproCommand(path, opts))
	}
	t.Fatalf("conformance failure: %v\nshrunk to %d events (from %d): %v\nschedule:\n%srepro: %s",
		fail, len(minimal), len(events), minFail,
		adversary.EncodeScript(minimal), ReproCommand(path, opts))
}

// TestShrinkerInjectedBug seeds a synthetic divergence (a fault that fires
// whenever one specific node is deleted) into a long churn schedule and
// checks the shrinker collapses it to exactly that one deletion, with a
// replayable trace artifact that still reproduces the failure.
func TestShrinkerInjectedBug(t *testing.T) {
	c := Cell{Workload: workload.NameErdosRenyi, Adversary: adversary.NameChurn, N: 32, Steps: 40, Seed: 7}
	g0, adv, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Record a clean run's schedule and pick a mid-schedule deleted node as
	// the bug trigger.
	clean, err := Run(g0, adv, Options{Kappa: 4, Seed: c.Seed})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	var victim graph.NodeID
	deletes := 0
	for _, ev := range clean.Events {
		if ev.Kind == adversary.Delete {
			if deletes++; deletes == clean.Deletions/2 {
				victim = ev.Node
			}
		}
	}
	if deletes < 4 {
		t.Fatalf("schedule too tame for the experiment: %d deletions", deletes)
	}
	opts := Options{
		Kappa: 4,
		Seed:  c.Seed,
		Fault: func(_ int, ev adversary.Event, _ *graph.Graph) error {
			if ev.Kind == adversary.Delete && ev.Node == victim {
				return fmt.Errorf("injected bug: deletion of node %d", victim)
			}
			return nil
		},
	}
	_, err = Run(g0, adversary.NewScripted(clean.Events...), opts)
	var fail *Failure
	if !errors.As(err, &fail) || fail.Kind != KindFault {
		t.Fatalf("injected bug did not fire: %v", err)
	}

	minimal, minFail := Shrink(g0, clean.Events, opts)
	if minFail == nil || minFail.Kind != KindFault {
		t.Fatalf("shrunk failure = %v, want injected fault", minFail)
	}
	if len(minimal) != 1 {
		t.Fatalf("shrunk schedule has %d events, want the single triggering deletion:\n%s",
			len(minimal), adversary.EncodeScript(minimal))
	}
	if minimal[0].Kind != adversary.Delete || minimal[0].Node != victim {
		t.Fatalf("shrunk event = %+v, want delete %d", minimal[0], victim)
	}

	// The artifact must replay: through trace round-trip, the one-event
	// schedule still trips the injected bug.
	path := filepath.Join(t.TempDir(), "shrunk.json")
	if err := WriteArtifact(path, g0, minimal); err != nil {
		t.Fatalf("WriteArtifact: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		t.Fatalf("artifact did not round-trip: %v", err)
	}
	replay, err := tr.Adversary()
	if err != nil {
		t.Fatalf("trace adversary: %v", err)
	}
	opts.SkipInapplicable = true
	_, err = Run(tr.Initial(), replay, opts)
	if !errors.As(err, &fail) || fail.Kind != KindFault {
		t.Fatalf("replayed artifact did not reproduce the injected bug: %v", err)
	}
	cmd := ReproCommand(path, opts)
	if !strings.Contains(cmd, path) || !strings.Contains(cmd, fmt.Sprintf("-conf-seed %d", opts.Seed)) ||
		!strings.Contains(cmd, fmt.Sprintf("-conf-kappa %d", opts.Kappa)) {
		t.Fatalf("repro command %q must pin the artifact, seed, and kappa", cmd)
	}
}

// TestShrinkPassesThroughCleanSchedule: Shrink on a passing schedule is a
// no-op that reports no failure.
func TestShrinkPassesThroughCleanSchedule(t *testing.T) {
	g0, err := workload.Star(8)
	if err != nil {
		t.Fatal(err)
	}
	events := []adversary.Event{{Kind: adversary.Delete, Node: 0}}
	minimal, fail := Shrink(g0, events, Options{Kappa: 4, Seed: 3})
	if fail != nil {
		t.Fatalf("clean schedule reported failure: %v", fail)
	}
	if len(minimal) != 1 {
		t.Fatalf("clean schedule rewritten: %+v", minimal)
	}
}

// TestCorpus replays every checked-in shrunk schedule under testdata/ as a
// strict regression fixture: schedules that once cornered a bug must now
// pass the full per-event check battery.
func TestCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 corpus fixtures, found %d", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := trace.Load(f)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			adv, err := tr.Adversary()
			if err != nil {
				t.Fatalf("Adversary: %v", err)
			}
			if _, err := Run(tr.Initial(), adv, Options{Kappa: 4, Seed: 1, MetricsEvery: 1}); err != nil {
				t.Fatalf("fixture regressed: %v", err)
			}
		})
	}
}

// TestStrictApplyFailure: without sanitization, an inapplicable event is an
// apply failure pinned to its step.
func TestStrictApplyFailure(t *testing.T) {
	g0, err := workload.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	events := []adversary.Event{
		{Kind: adversary.Delete, Node: 0},
		{Kind: adversary.Delete, Node: 0}, // already dead
	}
	_, err = Run(g0, adversary.NewScripted(events...), Options{Kappa: 4, Seed: 2})
	var fail *Failure
	if !errors.As(err, &fail) {
		t.Fatalf("error = %v, want *Failure", err)
	}
	if fail.Kind != KindApply || fail.Step != 2 {
		t.Fatalf("failure = %+v, want apply at step 2", fail)
	}
}

// TestSanitizeSkipsInapplicable: with SkipInapplicable, junk events are
// counted and dropped while the valid remainder still runs.
func TestSanitizeSkipsInapplicable(t *testing.T) {
	g0, err := workload.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	events := []adversary.Event{
		{Kind: adversary.Delete, Node: 99},                                   // never existed
		{Kind: adversary.Insert, Node: 3, Neighbors: []graph.NodeID{0}},      // ID in use
		{Kind: adversary.Insert, Node: 200, Neighbors: []graph.NodeID{200}},  // only a self-loop
		{Kind: adversary.Delete, Node: 5},                                    // fine
		{Kind: adversary.Insert, Node: 300, Neighbors: []graph.NodeID{0, 0}}, // dup collapses to one
	}
	res, err := Run(g0, adversary.NewScripted(events...), Options{Kappa: 4, Seed: 2, SkipInapplicable: true})
	if err != nil {
		t.Fatalf("sanitized run failed: %v", err)
	}
	if res.Skipped != 3 {
		t.Fatalf("skipped %d events, want 3", res.Skipped)
	}
	if res.Deletions != 1 || res.Inserts != 1 {
		t.Fatalf("applied %d deletions / %d inserts, want 1 / 1", res.Deletions, res.Inserts)
	}
	if len(res.Events[1].Neighbors) != 1 {
		t.Fatalf("duplicate neighbor not collapsed: %+v", res.Events[1])
	}
}

// TestMatrixCellsShape: the matrix is the full cross-product with distinct
// per-cell seeds.
func TestMatrixCellsShape(t *testing.T) {
	cells := MatrixCells(48, 30, 500)
	want := len(workload.Names()) * len(adversary.Names())
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	seeds := make(map[int64]bool, len(cells))
	for _, c := range cells {
		if seeds[c.Seed] {
			t.Fatalf("duplicate cell seed %d", c.Seed)
		}
		seeds[c.Seed] = true
		if c.N != 48 || c.Steps != 30 {
			t.Fatalf("cell %s lost its size parameters", c)
		}
	}
}

// TestDeterministicRuns: equal seeds and schedules give byte-identical
// outcomes — the property every repro and fixture in this package rests on.
func TestDeterministicRuns(t *testing.T) {
	c := Cell{Workload: workload.NameRegular, Adversary: adversary.NameChurn, N: 24, Steps: 15, Seed: 42}
	_, a, err := RunCell(c, Options{Kappa: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunCell(c, Options{Kappa: 4})
	if err != nil {
		t.Fatal(err)
	}
	if adversary.EncodeScript(a.Events) != adversary.EncodeScript(b.Events) {
		t.Fatal("schedules differ across identical runs")
	}
	if a.Totals != b.Totals {
		t.Fatalf("protocol totals differ: %+v vs %+v", a.Totals, b.Totals)
	}
}
