package conformance

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/trace"
	"github.com/xheal/xheal/internal/workload"
)

// FuzzConformance feeds arbitrary event scripts (the adversary.Scripted text
// encoding) against every workload through the sanitizing lockstep runner:
// whatever applicable schedule survives sanitization must keep the
// centralized and distributed engines in exact agreement, with all paper
// invariants intact. The corpus is seeded with the checked-in shrunk
// schedules, so past near-misses steer the mutator.
func FuzzConformance(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(16), "delete 0\ndelete 1\n")
	f.Add(int64(2), uint8(4), uint8(24), "insert 2000000 0,1,2\ndelete 0\ndelete 2000000\n")
	f.Add(int64(3), uint8(7), uint8(32), "delete 3\ninsert 2000001 3\ndelete 1\ndelete 2\n")
	// Fixture filenames encode their cell substrate
	// (shrunk-<workload>-n<N>-s<SEED>-<slug>.json, written by gen_corpus.go):
	// decoding them lets each seed replay its shrunk schedule against the
	// exact graph it was minimized on, rather than an unrelated topology.
	fixtureName := regexp.MustCompile(`^shrunk-([a-z]+)-n(\d+)-s(\d+)-`)
	if fixtures, err := filepath.Glob(filepath.Join("testdata", "*.json")); err == nil {
		for _, path := range fixtures {
			m := fixtureName.FindStringSubmatch(filepath.Base(path))
			if m == nil {
				continue
			}
			wlIdx := slices.Index(workload.Names(), m[1])
			n, _ := strconv.Atoi(m[2])
			seed, _ := strconv.ParseInt(m[3], 10, 64)
			if wlIdx < 0 || n < 8 || n > 64 {
				continue
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			tr, err := trace.Load(bytes.NewReader(data))
			if err != nil {
				continue
			}
			adv, err := tr.Adversary()
			if err != nil {
				continue
			}
			sc, ok := adv.(*adversary.Scripted)
			if !ok {
				continue
			}
			f.Add(seed, uint8(wlIdx), uint8(n-8), sc.Script())
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, wl, size uint8, script string) {
		events, err := adversary.ParseScript(script)
		if err != nil {
			t.Skip()
		}
		if len(events) > 48 {
			events = events[:48]
		}
		names := workload.Names()
		name := names[int(wl)%len(names)]
		n := 8 + int(size)%57 // 8..64
		g0, err := workload.ByName(name, n, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Skip() // e.g. G(n,p) gave up on connectivity
		}
		opts := Options{Kappa: 4, Seed: seed, MetricsEvery: 8, SkipInapplicable: true}
		_, err = Run(g0, adversary.NewScripted(events...), opts)
		if err == nil {
			return
		}
		var fail *Failure
		if !errors.As(err, &fail) {
			t.Fatalf("setup error on sanitized input: %v", err)
		}
		reportShrunk(t, g0, events, opts, fail)
	})
}
