package conformance

import (
	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/scenario"
)

// Chaos scenarios are schedules like any other: RunScenario compiles a named
// scenario and drives the compiled script through the same lockstep
// differential harness the adversary×workload matrix uses, so every scenario
// gets graph identity, invariants, local-view consistency, per-repair ledger
// bounds, and the Theorem 2/5 envelopes for free. Scenario events are valid
// by construction (the stream's bookkeeping graph tracks the alive set), so
// the run is strict: a skipped or rejected event is a scenario-generator bug,
// not noise to sanitize away.

// RunScenario compiles the named scenario with p (zero fields take the
// scenario's defaults) and runs it through the per-event lockstep harness.
// The compiled schedule is returned even on failure so callers can shrink or
// archive it; err is a *Failure for conformance violations, or an ordinary
// error for compile/setup problems.
func RunScenario(name string, p scenario.Params, opts Options) (*scenario.Compiled, *Result, error) {
	comp, err := scenario.Compile(name, p)
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(comp.Genesis, adversary.NewScripted(comp.Events...), opts)
	return comp, res, err
}

// RunScenarioBatched compiles the named scenario, chunks the schedule into
// the serving daemon's batched timesteps at the scenario's wave size, and
// runs the batched lockstep harness (parallel centralized apply when
// opts.Parallelism > 1). This is the conformance leg closest to what
// `xheal-serve -scenario` does in production shape.
func RunScenarioBatched(name string, p scenario.Params, opts Options) (*scenario.Compiled, error) {
	comp, err := scenario.Compile(name, p)
	if err != nil {
		return nil, err
	}
	return comp, RunBatched(comp.Genesis, ChunkSchedule(comp.Events, comp.Params.Wave), opts)
}
