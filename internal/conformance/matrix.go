package conformance

import (
	"fmt"
	"math/rand"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// Cell is one point of the adversary × workload matrix.
type Cell struct {
	// Workload and Adversary are registry names (workload.Names,
	// adversary.Names).
	Workload  string
	Adversary string
	// N is the initial topology size; Steps the adversarial event budget.
	N     int
	Steps int
	// Seed derives the cell's generator, adversary, and protocol randomness.
	Seed int64
}

// String names the cell for subtests and soak output.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/n%d/steps%d/seed%d", c.Workload, c.Adversary, c.N, c.Steps, c.Seed)
}

// MatrixCells enumerates the full cross-product of every workload generator
// and every adversary at the given size, in deterministic order. Each cell
// gets a distinct derived seed so randomized generators and adversaries do
// not collapse onto the same sample.
func MatrixCells(n, steps int, seed int64) []Cell {
	var cells []Cell
	for _, wl := range workload.Names() {
		for _, adv := range adversary.Names() {
			cells = append(cells, Cell{
				Workload:  wl,
				Adversary: adv,
				N:         n,
				Steps:     steps,
				Seed:      seed + int64(len(cells)),
			})
		}
	}
	return cells
}

// Build constructs the cell's initial topology and adversary.
func (c Cell) Build() (*graph.Graph, adversary.Adversary, error) {
	g0, err := workload.ByName(c.Workload, c.N, rand.New(rand.NewSource(c.Seed)))
	if err != nil {
		return nil, nil, fmt.Errorf("cell %s: %w", c, err)
	}
	adv, err := adversary.ByName(c.Adversary, c.Steps, c.Seed+1)
	if err != nil {
		return nil, nil, fmt.Errorf("cell %s: %w", c, err)
	}
	return g0, adv, nil
}

// RunCell runs one matrix cell in lockstep. Options.Seed of zero inherits
// the cell seed, keeping the whole cell reproducible from one number.
func RunCell(c Cell, opts Options) (*graph.Graph, *Result, error) {
	g0, adv, err := c.Build()
	if err != nil {
		return nil, nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = c.Seed
	}
	res, runErr := Run(g0, adv, opts)
	return g0, res, runErr
}
