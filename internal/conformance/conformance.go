package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/obs"
	"github.com/xheal/xheal/internal/spectral"
)

// Failure kinds, in the order the checks run.
const (
	KindApply        = "apply"        // an engine rejected an event
	KindDivergence   = "divergence"   // healed graphs differ
	KindInvariant    = "invariant"    // core.CheckInvariants failed
	KindViews        = "views"        // dist.ValidateLocalViews failed
	KindLedger       = "ledger"       // round/message ledger out of bounds
	KindConnectivity = "connectivity" // healed graph disconnected
	KindMetrics      = "metrics"      // Theorem 2 metric envelope violated
	KindFault        = "fault"        // injected fault fired (shrinker tests)
)

// DefaultStretchC is the stretch-envelope constant: measured stretch must
// stay below DefaultStretchC·log₂(n) (Theorem 2.2's O(log n), slightly more
// generous than the harness's plotting constant to keep the matrix free of
// estimator noise).
const DefaultStretchC = 6

// FaultFunc is an injected fault for exercising the shrinker: it runs after
// each applied event with the healed graph and fails the run when it returns
// an error.
type FaultFunc func(step int, ev adversary.Event, g *graph.Graph) error

// Options parameterizes a lockstep run.
type Options struct {
	// Kappa is the expander degree parameter κ; 0 selects the default.
	Kappa int
	// Seed seeds both engines' private randomness (they must share it: the
	// distributed engine is only graph-identical to the reference under equal
	// seeds) and the metric estimators.
	Seed int64
	// MetricsEvery runs the heavy metric checkpoint (spectral, stretch) every
	// that many applied events; 0 checks only the final state.
	MetricsEvery int
	// StretchC overrides the stretch-envelope constant; 0 = DefaultStretchC.
	StretchC float64
	// SkipInapplicable silently drops events the current state cannot accept
	// (deleting a dead node, inserting a used ID, attachments to dead nodes)
	// instead of failing. The shrinker and fuzzer set it: removing a prefix
	// event must not turn the rest of the schedule into apply errors.
	SkipInapplicable bool
	// Fault is an optional injected fault (see FaultFunc).
	Fault FaultFunc
	// Recorder, when set, traces the distributed engine's repairs as
	// per-wound spans (the centralized reference runs untraced — it is the
	// oracle, not the subject).
	Recorder *obs.Recorder
	// Parallelism > 1 makes RunBatched apply each batch to the centralized
	// reference via ApplyBatchParallel with that many workers, while the
	// distributed engine stays serial — graph identity then proves the
	// parallel schedule equivalent to the serial one, and the per-repair-
	// group ledger checks bound each group's protocol work. Ignored by the
	// per-event Run.
	Parallelism int
}

func (o Options) stretchC() float64 {
	if o.StretchC > 0 {
		return o.StretchC
	}
	return DefaultStretchC
}

// Result summarizes a lockstep run.
type Result struct {
	// Events are the events actually applied, in order; on failure the last
	// entry is the failing event, so Events is always a replayable repro of
	// everything the run did.
	Events []adversary.Event
	// Inserts and Deletions count the applied events by kind.
	Inserts   int
	Deletions int
	// Skipped counts events dropped by Options.SkipInapplicable.
	Skipped int
	// Totals is the distributed engine's protocol work ledger.
	Totals dist.Totals
	// MaxRounds is the largest single-repair round count observed.
	MaxRounds int
	// Final is the last metric checkpoint (always taken at the end).
	Final metrics.Snapshot
}

// Failure is a conformance violation, pinned to the event that triggered it.
type Failure struct {
	// Step is the 1-based index into Result.Events of the failing event; 0
	// marks failures of the final whole-run checks.
	Step int
	// Kind is one of the Kind* constants.
	Kind string
	// Event is the failing event (zero for final checks).
	Event adversary.Event
	// Err describes the violation.
	Err error
}

func (f *Failure) Error() string {
	if f.Step == 0 {
		return fmt.Sprintf("conformance: final %s check: %v", f.Kind, f.Err)
	}
	return fmt.Sprintf("conformance: step %d (%s %d): %s: %v",
		f.Step, f.Event.Kind, f.Event.Node, f.Kind, f.Err)
}

func (f *Failure) Unwrap() error { return f.Err }

// runState carries one lockstep run's live pieces between the per-event
// checks.
type runState struct {
	opts Options
	net  *xheal.Network
	eng  *dist.Engine

	res        *Result
	insertMsgs int // exact greeting messages, subtracted for Theorem 5
	maxAlive   int
}

// Run drives both engines through adv's schedule in lockstep over copies of
// g0 and checks conformance after every event. It returns the applied
// schedule and, when a check fails, a *Failure describing the first
// violation. Setup problems (bad κ, disconnected g0 for metrics) surface as
// ordinary errors.
func Run(g0 *graph.Graph, adv adversary.Adversary, opts Options) (*Result, error) {
	net, err := xheal.NewNetwork(g0, xheal.WithKappa(opts.Kappa), xheal.WithSeed(opts.Seed))
	if err != nil {
		return nil, fmt.Errorf("conformance: centralized engine: %w", err)
	}
	eng, err := dist.NewEngine(dist.Config{Kappa: opts.Kappa, Seed: opts.Seed}, g0)
	if err != nil {
		return nil, fmt.Errorf("conformance: distributed engine: %w", err)
	}
	defer eng.Close()
	if opts.Recorder != nil {
		eng.SetRecorder(opts.Recorder)
	}

	rs := &runState{
		opts:     opts,
		net:      net,
		eng:      eng,
		res:      &Result{},
		maxAlive: g0.NumNodes(),
	}
	for {
		ev, ok := adv.Next(net.Graph())
		if !ok {
			break
		}
		if opts.SkipInapplicable {
			ev, ok = rs.sanitize(ev)
			if !ok {
				rs.res.Skipped++
				continue
			}
		}
		rs.res.Events = append(rs.res.Events, ev)
		if fail := rs.applyAndCheck(ev); fail != nil {
			rs.res.Totals = eng.Totals()
			return rs.res, fail
		}
	}
	rs.res.Totals = eng.Totals()
	if fail := rs.finalChecks(g0); fail != nil {
		return rs.res, fail
	}
	return rs.res, nil
}

// sanitize rewrites ev into an applicable form, or reports it unusable.
// Deletions keep at least two nodes alive so the metric checks stay
// meaningful on shrunk sub-schedules.
func (rs *runState) sanitize(ev adversary.Event) (adversary.Event, bool) {
	g := rs.net.Graph()
	switch ev.Kind {
	case adversary.Delete:
		if !g.HasNode(ev.Node) || g.NumNodes() <= 2 {
			return ev, false
		}
		return ev, true
	case adversary.Insert:
		// G′ remembers deleted nodes, so it is the full used-ID set.
		if rs.net.Baseline().HasNode(ev.Node) {
			return ev, false
		}
		nbrs := make([]graph.NodeID, 0, len(ev.Neighbors))
		seen := make(map[graph.NodeID]struct{}, len(ev.Neighbors))
		for _, w := range ev.Neighbors {
			if w == ev.Node || !g.HasNode(w) {
				continue
			}
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			nbrs = append(nbrs, w)
		}
		if len(nbrs) == 0 {
			return ev, false
		}
		ev.Neighbors = nbrs
		return ev, true
	}
	return ev, false
}

// applyAndCheck applies one event to both engines and runs every per-event
// check. The returned Failure (if any) is the first violation.
func (rs *runState) applyAndCheck(ev adversary.Event) *Failure {
	step := len(rs.res.Events)
	fail := func(kind string, err error) *Failure {
		return &Failure{Step: step, Kind: kind, Event: ev, Err: err}
	}

	before := rs.eng.Totals()
	var wound, expectBlack int
	switch ev.Kind {
	case adversary.Insert:
		if err := rs.net.Insert(ev.Node, ev.Neighbors); err != nil {
			return fail(KindApply, fmt.Errorf("centralized insert: %w", err))
		}
		if err := rs.eng.Insert(ev.Node, ev.Neighbors); err != nil {
			return fail(KindApply, fmt.Errorf("distributed insert (centralized accepted): %w", err))
		}
		rs.res.Inserts++
	case adversary.Delete:
		// Expected ledger terms, from the pre-deletion state.
		for _, w := range rs.eng.Graph().Neighbors(ev.Node) {
			wound++
			if black, ok := rs.eng.State().IsBlackEdge(ev.Node, w); ok && black {
				expectBlack++
			}
		}
		if err := rs.net.Delete(ev.Node); err != nil {
			return fail(KindApply, fmt.Errorf("centralized delete: %w", err))
		}
		if err := rs.eng.Delete(ev.Node); err != nil {
			return fail(KindApply, fmt.Errorf("distributed delete (centralized accepted): %w", err))
		}
		rs.res.Deletions++
	default:
		return fail(KindApply, fmt.Errorf("unknown event kind %d", int(ev.Kind)))
	}
	if n := rs.net.Graph().NumNodes(); n > rs.maxAlive {
		rs.maxAlive = n
	}

	if err := diffGraphs(rs.net.Graph(), rs.eng.Graph()); err != nil {
		return fail(KindDivergence, err)
	}
	if err := rs.net.CheckInvariants(); err != nil {
		return fail(KindInvariant, err)
	}
	if err := rs.eng.ValidateLocalViews(); err != nil {
		return fail(KindViews, err)
	}
	if err := rs.checkLedger(ev, before, wound, expectBlack); err != nil {
		return fail(KindLedger, err)
	}
	if !rs.net.Graph().IsConnected() {
		return fail(KindConnectivity,
			fmt.Errorf("healed graph disconnected (n=%d m=%d)",
				rs.net.Graph().NumNodes(), rs.net.Graph().NumEdges()))
	}
	if rs.opts.Fault != nil {
		if err := rs.opts.Fault(step, ev, rs.net.Graph()); err != nil {
			return fail(KindFault, err)
		}
	}
	if every := rs.opts.MetricsEvery; every > 0 && step%every == 0 {
		if err := rs.checkMetrics(step); err != nil {
			return fail(KindMetrics, err)
		}
	}
	return nil
}

// checkLedger verifies the protocol cost deltas one event produced against
// the structural bounds of the §5 protocol: insert greetings are exactly one
// round and one message per dialed neighbor; a repair must message at least
// the Lemma 5 floor and the wound broadcast+convergecast minimum, within the
// bracket-tree round budget ⌊log₂ wound⌋+5.
func (rs *runState) checkLedger(ev adversary.Event, before dist.Totals, wound, expectBlack int) error {
	after := rs.eng.Totals()
	dRounds := after.Rounds - before.Rounds
	dMsgs := after.Messages - before.Messages
	if ev.Kind == adversary.Insert {
		if dRounds != 1 || dMsgs != len(ev.Neighbors) {
			return fmt.Errorf("insert of %d: %d rounds / %d messages, want exactly 1 / %d",
				ev.Node, dRounds, dMsgs, len(ev.Neighbors))
		}
		rs.insertMsgs += dMsgs
		return nil
	}

	costs := rs.eng.Costs()
	if len(costs) != rs.res.Deletions {
		return fmt.Errorf("cost ledger holds %d entries after %d deletions", len(costs), rs.res.Deletions)
	}
	c := costs[len(costs)-1]
	if c.Node != ev.Node {
		return fmt.Errorf("last cost entry is for node %d, want %d", c.Node, ev.Node)
	}
	if c.BlackDegree != expectBlack {
		return fmt.Errorf("delete %d: ledger black degree %d, state says %d", ev.Node, c.BlackDegree, expectBlack)
	}
	if c.Wound != wound {
		return fmt.Errorf("delete %d: ledger wound %d, state says %d", ev.Node, c.Wound, wound)
	}
	if c.Rounds != dRounds || c.Messages != dMsgs {
		return fmt.Errorf("delete %d: totals moved by %d rounds / %d messages, ledger says %d / %d",
			ev.Node, dRounds, dMsgs, c.Rounds, c.Messages)
	}
	if c.Messages < c.BlackDegree {
		return fmt.Errorf("delete %d: %d messages < black degree %d (Lemma 5 floor)",
			ev.Node, c.Messages, c.BlackDegree)
	}
	if wound == 0 {
		if c.Rounds != 0 || c.Messages != 0 {
			return fmt.Errorf("delete of isolated %d cost %d rounds / %d messages, want none",
				ev.Node, c.Rounds, c.Messages)
		}
		return nil
	}
	if minMsgs := 2*wound - 1; c.Messages < minMsgs {
		return fmt.Errorf("delete %d: %d messages < %d (wound broadcast + convergecast over %d members)",
			ev.Node, c.Messages, minMsgs, wound)
	}
	budget := int(math.Floor(math.Log2(float64(wound)))) + 5
	if c.Rounds < 1 || c.Rounds > budget {
		return fmt.Errorf("delete %d: %d rounds outside [1, %d] for a %d-member wound (Theorem 5 round budget)",
			ev.Node, c.Rounds, budget, wound)
	}
	if c.Rounds > rs.res.MaxRounds {
		rs.res.MaxRounds = c.Rounds
	}
	return nil
}

// checkMetrics is the heavy checkpoint: Theorem 2's measurable guarantees on
// the current healed graph versus G′.
func (rs *runState) checkMetrics(step int) error {
	g := rs.net.Graph()
	snap := metrics.Measure(g, rs.net.Baseline(), metrics.Config{
		StretchSources: 8,
		Rng:            rand.New(rand.NewSource(rs.opts.Seed + int64(step))),
	})
	rs.res.Final = snap
	if !snap.Connected {
		return fmt.Errorf("disconnected at metric checkpoint")
	}
	if ratio, limit := snap.MaxDegreeRatio, metrics.DegreeBoundRatio(rs.net.Kappa()); ratio > limit {
		return fmt.Errorf("degree ratio %.2f exceeds Theorem 2.1 envelope %.2f", ratio, limit)
	}
	if env := metrics.StretchBound(g.NumNodes(), rs.opts.stretchC()); snap.MaxStretch > env {
		return fmt.Errorf("stretch %.2f exceeds Theorem 2.2 envelope %.2f (n=%d)",
			snap.MaxStretch, env, g.NumNodes())
	}
	if g.NumNodes() >= 2 && snap.Lambda2 <= 1e-9 {
		return fmt.Errorf("λ₂ = %g not positive on a connected graph", snap.Lambda2)
	}
	return nil
}

// finalChecks runs the whole-run assertions: the closing metric checkpoint,
// the Theorem 2.4 spectral floor (deletion-only schedules, where G′ stays
// g0), and the Theorem 5 amortized message envelope.
func (rs *runState) finalChecks(g0 *graph.Graph) *Failure {
	fail := func(kind string, err error) *Failure {
		return &Failure{Kind: kind, Err: err}
	}
	if err := rs.checkMetrics(len(rs.res.Events) + 1); err != nil {
		return fail(KindMetrics, err)
	}
	if rs.res.Inserts == 0 && rs.res.Deletions > 0 {
		rng := rand.New(rand.NewSource(rs.opts.Seed))
		floor := metrics.SpectralFloor(spectral.AlgebraicConnectivity(g0, rng),
			g0.MinDegree(), g0.MaxDegree(), rs.net.Kappa())
		if rs.res.Final.Lambda2 < floor {
			return fail(KindMetrics, fmt.Errorf("λ₂ = %g below Theorem 2.4 floor %g",
				rs.res.Final.Lambda2, floor))
		}
	}
	if rs.res.Deletions > 0 {
		amort := float64(rs.res.Totals.Messages-rs.insertMsgs) / float64(rs.res.Deletions)
		ap := math.Max(1, rs.eng.AmortizedLowerBound())
		envelope := 4 * float64(rs.net.Kappa()) * math.Log2(float64(rs.maxAlive)) * ap
		if amort > envelope {
			return fail(KindLedger, fmt.Errorf(
				"amortized %.1f messages/deletion exceeds Theorem 5 envelope %.1f (κ=%d, n≤%d, A(p)=%.1f)",
				amort, envelope, rs.net.Kappa(), rs.maxAlive, ap))
		}
	}
	return nil
}

// diffGraphs reports nil when g (centralized) and h (distributed) are
// identical, else an error naming the first discrepancy.
func diffGraphs(g, h *graph.Graph) error {
	if g.Equal(h) {
		return nil
	}
	for _, n := range g.Nodes() {
		if !h.HasNode(n) {
			return fmt.Errorf("node %d alive centrally, missing from distributed graph", n)
		}
	}
	for _, n := range h.Nodes() {
		if !g.HasNode(n) {
			return fmt.Errorf("node %d alive in distributed graph, missing centrally", n)
		}
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(e.U, e.V) {
			return fmt.Errorf("edge %d-%d healed centrally, missing from distributed graph", e.U, e.V)
		}
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("edge %d-%d in distributed graph, missing centrally", e.U, e.V)
		}
	}
	return fmt.Errorf("graphs differ (n=%d/%d m=%d/%d)", g.NumNodes(), h.NumNodes(), g.NumEdges(), h.NumEdges())
}
