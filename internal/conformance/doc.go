// Package conformance is the differential correctness backbone: it drives
// the centralized Xheal reference (the xheal.Network facade over
// core.State) and the distributed protocol engine (internal/dist) through
// the *same* adversarial event schedule in lockstep, and after every event
// asserts that
//
//   - both engines hold identical healed graphs (the protocol's §5 claim
//     that the distributed execution simulates Algorithm 3.1 exactly),
//   - the paper's structural invariants hold (core.CheckInvariants: cloud
//     structure, claims, the Theorem 2.1 degree bound),
//   - every node's message-built local view matches the healed topology
//     (dist.ValidateLocalViews),
//   - the protocol cost ledger stays inside the Theorem 5 / Lemma 5 bounds
//     (per-repair round budget, message floor, amortized message envelope),
//   - the Theorem 2 metrics hold at checkpoints: connectivity, the O(log n)
//     stretch envelope, the 3κ degree-ratio envelope, and positive λ₂.
//
// Run is the per-event lockstep runner; MatrixCells/RunCell enumerate the
// full adversary × workload cross-product the matrix test and the
// `xheal-bench -conformance` soak mode sweep.
//
// RunBatched is the same lockstep discipline for batched timesteps — the
// serving daemon's native unit (internal/server coalesces concurrent
// submissions into one core.Batch per tick) — applying each batch to both
// engines via their ApplyBatch parity and re-checking after every
// timestep. ChunkSchedule turns a per-event schedule into batches under the
// daemon's conflict rules without changing application order.
//
// On a failure the shrinker (Shrink) delta-debugs the schedule down to a
// locally minimal event sequence and WriteArtifact saves it as an
// internal/trace file, so every divergence becomes a one-command repro
// through the lockstep checker itself: `xheal-bench -conf-replay <file>`
// (see ReproCommand). Shrunk schedules that once cornered real bugs live in
// testdata/ as regression fixtures and seed the fuzz corpus
// (FuzzConformance).
package conformance
