package conformance

import (
	"fmt"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/scenario"
)

// scenarioParams sizes a conformance leg: full scale matches the scenario
// defaults; -short trims the event count so the per-PR smoke stays
// tick-budgeted while still crossing several wave boundaries.
func scenarioParams() scenario.Params {
	if testing.Short() {
		return scenario.Params{Events: 60}
	}
	return scenario.Params{}
}

// TestScenarioConformance is the per-scenario lockstep leg: every registered
// chaos scenario must drive both engines to identical graphs with all
// invariant, ledger, and Theorem 2/5 envelope checks green — and, because
// scenario events are valid by construction, with nothing skipped.
func TestScenarioConformance(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			comp, res, err := RunScenario(name, scenarioParams(), Options{
				Kappa: 4, Seed: 1, MetricsEvery: 24,
			})
			if err != nil {
				t.Fatalf("scenario %s: %v", name, err)
			}
			if res.Skipped != 0 {
				t.Fatalf("scenario %s: %d events skipped — scenarios must be valid by construction", name, res.Skipped)
			}
			if got, want := res.Inserts+res.Deletions, len(comp.Events); got != want {
				t.Fatalf("scenario %s: applied %d of %d events", name, got, want)
			}
			if res.Deletions == 0 {
				t.Fatalf("scenario %s: no deletions reached the engines", name)
			}
		})
	}
}

// TestScenarioConformanceBatched runs each scenario through the batched
// harness at its native wave size — serial and parallel centralized apply —
// mirroring how the serving daemon consumes waves.
func TestScenarioConformanceBatched(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := RunScenarioBatched(name, scenarioParams(), Options{Kappa: 4, Seed: 1}); err != nil {
				t.Fatalf("scenario %s serial: %v", name, err)
			}
			if _, err := RunScenarioBatched(name, scenarioParams(), Options{Kappa: 4, Seed: 1, Parallelism: 4}); err != nil {
				t.Fatalf("scenario %s parallel: %v", name, err)
			}
		})
	}
}

// TestScenarioShrinkable pins the PR-3 contract on scenario scripts: a
// fault-injected failure inside a compiled scenario shrinks to a small
// replayable trace, like any other schedule.
func TestScenarioShrinkable(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking is the slow path; covered by the full run")
	}
	comp, err := scenario.Compile(scenario.NameRegionFail, scenario.Params{Events: 72})
	if err != nil {
		t.Fatal(err)
	}
	// Inject a bug keyed to the schedule's midpoint deletion victim, then
	// shrink: the minimal repro is that one deletion plus whatever
	// applicability forces back in — far below the full schedule.
	var victim graph.NodeID
	total := 0
	for _, ev := range comp.Events {
		if ev.Kind == adversary.Delete {
			total++
		}
	}
	deletes := 0
	for _, ev := range comp.Events {
		if ev.Kind == adversary.Delete {
			if deletes++; deletes == total/2 {
				victim = ev.Node
				break
			}
		}
	}
	opts := Options{Kappa: 4, Seed: 1, Fault: func(_ int, ev adversary.Event, _ *graph.Graph) error {
		if ev.Kind == adversary.Delete && ev.Node == victim {
			return fmt.Errorf("injected: delete %d", victim)
		}
		return nil
	}}
	minimal, fail := Shrink(comp.Genesis, comp.Events, opts)
	if fail == nil {
		t.Fatal("injected fault did not fire on the compiled scenario")
	}
	if len(minimal) >= len(comp.Events) {
		t.Fatalf("shrinker made no progress: %d -> %d events", len(comp.Events), len(minimal))
	}
	if len(minimal) > 8 {
		t.Fatalf("scenario trace shrank only to %d events, expected a small repro", len(minimal))
	}
}
