//go:build ignore

// Generates the testdata/*.json corpus: shrunk schedules produced by running
// the delta-debugging shrinker against synthetic injected bugs on three
// representative matrix cells plus every registered chaos scenario. The
// artifacts are (a) regression fixtures — TestCorpus replays each one through
// the strict lockstep runner — and (b) fuzz seeds for FuzzConformance.
//
// Run from internal/conformance: go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/conformance"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/scenario"
	"github.com/xheal/xheal/internal/workload"
)

func main() {
	cases := []struct {
		slug    string
		cell    conformance.Cell
		trigger func(*conformance.Result) conformance.FaultFunc
	}{
		{
			// A deletion-heavy churn schedule shrunk to the single deletion
			// of one mid-schedule victim.
			slug: "churn-delete",
			cell: conformance.Cell{Workload: workload.NameErdosRenyi, Adversary: adversary.NameChurn, N: 32, Steps: 40, Seed: 7},
			trigger: func(clean *conformance.Result) conformance.FaultFunc {
				var victim graph.NodeID
				deletes := 0
				for _, ev := range clean.Events {
					if ev.Kind == adversary.Delete {
						if deletes++; deletes == clean.Deletions/2 {
							victim = ev.Node
						}
					}
				}
				return func(_ int, ev adversary.Event, _ *graph.Graph) error {
					if ev.Kind == adversary.Delete && ev.Node == victim {
						return fmt.Errorf("injected: delete %d", victim)
					}
					return nil
				}
			},
		},
		{
			// A star attack shrunk to the hub deletion plus enough leaf
			// churn to rebuild the wound twice.
			slug: "maxdeg-depth",
			cell: conformance.Cell{Workload: workload.NameStar, Adversary: adversary.NameMaxDegree, N: 64, Steps: 20, Seed: 11},
			trigger: func(*conformance.Result) conformance.FaultFunc {
				return func(_ int, _ adversary.Event, g *graph.Graph) error {
					if g.NumNodes() <= 60 {
						return fmt.Errorf("injected: shrank below 61 nodes")
					}
					return nil
				}
			},
		},
		{
			// A growth schedule shrunk to the minimal insertion prefix that
			// crosses a degree threshold at the attachment hub.
			slug: "growth-hub",
			cell: conformance.Cell{Workload: workload.NameCycle, Adversary: adversary.NameInsertBurst, N: 24, Steps: 30, Seed: 13},
			trigger: func(*conformance.Result) conformance.FaultFunc {
				return func(_ int, _ adversary.Event, g *graph.Graph) error {
					if g.MaxDegree() >= 6 {
						return fmt.Errorf("injected: a hub reached degree 6")
					}
					return nil
				}
			},
		},
	}

	if err := os.MkdirAll("testdata", 0o755); err != nil {
		log.Fatal(err)
	}
	for _, tc := range cases {
		// The filename encodes the cell's substrate (workload, n, seed) in
		// the shrunk-<workload>-n<N>-s<SEED>-<slug>.json form FuzzConformance
		// parses, so the fixture seeds the fuzzer against the exact graph its
		// schedule was shrunk on.
		file := fmt.Sprintf("shrunk-%s-n%d-s%d-%s.json", tc.cell.Workload, tc.cell.N, tc.cell.Seed, tc.slug)
		g0, adv, err := tc.cell.Build()
		if err != nil {
			log.Fatalf("%s: %v", file, err)
		}
		clean, err := conformance.Run(g0, adv, conformance.Options{Kappa: 4, Seed: tc.cell.Seed})
		if err != nil {
			log.Fatalf("%s: clean run: %v", file, err)
		}
		opts := conformance.Options{Kappa: 4, Seed: tc.cell.Seed, Fault: tc.trigger(clean)}
		minimal, fail := conformance.Shrink(g0, clean.Events, opts)
		if fail == nil {
			log.Fatalf("%s: injected bug did not fire", file)
		}
		path := filepath.Join("testdata", file)
		if err := conformance.WriteArtifact(path, g0, minimal); err != nil {
			log.Fatalf("%s: %v", file, err)
		}
		fmt.Printf("%s: %d events (from %d), failure: %v\n", path, len(minimal), len(clean.Events), fail)
	}

	// One seed per chaos scenario: compile, fault-inject the midpoint
	// deletion victim, and shrink — the same workflow a real scenario-exposed
	// bug would follow. Scenario genesis is workload.ByName(wl, N,
	// rand(Seed)), so the shrunk-<workload>-n<N>-s<SEED> filename convention
	// lets FuzzConformance rebuild the exact substrate. regionfail's default
	// n=81 exceeds the fuzzer's 8..64 window, so its corpus cell compiles at
	// a 7x7 grid instead.
	scenarioCases := []struct {
		name string
		p    scenario.Params
	}{
		{scenario.NameFlashCrowd, scenario.Params{Events: 96}},
		{scenario.NameRegionFail, scenario.Params{N: 49, Events: 96}},
		{scenario.NamePartition, scenario.Params{Events: 96}},
		{scenario.NameSlowDrip, scenario.Params{Events: 64}},
		{scenario.NameReadMix, scenario.Params{Events: 96}},
	}
	for _, tc := range scenarioCases {
		comp, err := scenario.Compile(tc.name, tc.p)
		if err != nil {
			log.Fatalf("scenario %s: %v", tc.name, err)
		}
		p := comp.Params
		file := fmt.Sprintf("shrunk-%s-n%d-s%d-scenario-%s.json", comp.Scenario.Workload, p.N, p.Seed, tc.name)
		var victim graph.NodeID
		total := 0
		for _, ev := range comp.Events {
			if ev.Kind == adversary.Delete {
				total++
			}
		}
		deletes := 0
		for _, ev := range comp.Events {
			if ev.Kind == adversary.Delete {
				if deletes++; deletes == max(1, total/2) {
					victim = ev.Node
					break
				}
			}
		}
		opts := conformance.Options{Kappa: 4, Seed: p.Seed, Fault: func(_ int, ev adversary.Event, _ *graph.Graph) error {
			if ev.Kind == adversary.Delete && ev.Node == victim {
				return fmt.Errorf("injected: delete %d", victim)
			}
			return nil
		}}
		minimal, fail := conformance.Shrink(comp.Genesis, comp.Events, opts)
		if fail == nil {
			log.Fatalf("%s: injected bug did not fire", file)
		}
		path := filepath.Join("testdata", file)
		if err := conformance.WriteArtifact(path, comp.Genesis, minimal); err != nil {
			log.Fatalf("%s: %v", file, err)
		}
		fmt.Printf("%s: %d events (from %d), failure: %v\n", path, len(minimal), len(comp.Events), fail)
	}
}
