package conformance

import (
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// TestBatchedMatrix exercises batched timesteps on both engines: each
// sampled matrix cell's applied schedule is chunked into multi-event batches
// and replayed through RunBatched, which asserts graph identity, invariants,
// local views, and connectivity after every timestep on both engines.
func TestBatchedMatrix(t *testing.T) {
	for _, wl := range []string{workload.NameStar, workload.NameRegular, workload.NamePowerLaw} {
		c := Cell{Workload: wl, Adversary: adversary.NameChurn, N: 32, Steps: 30, Seed: 2100}
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			g0, adv, err := c.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			opts := Options{Kappa: 4, Seed: c.Seed}
			res, err := Run(g0, adv, opts)
			if err != nil {
				t.Fatalf("per-event lockstep run: %v", err)
			}
			batches := ChunkSchedule(res.Events, 5)
			if len(batches) < 2 {
				t.Fatalf("schedule too tame: %d batches from %d events", len(batches), len(res.Events))
			}
			multi := 0
			for _, b := range batches {
				if len(b.Insertions)+len(b.Deletions) > 1 {
					multi++
				}
			}
			if multi == 0 {
				t.Fatal("no multi-event batch — the test is not exercising batching")
			}
			if err := RunBatched(g0, batches, opts); err != nil {
				t.Fatalf("batched lockstep: %v", err)
			}
		})
	}
}

// TestBatchedMatrixParallel is the parallel leg of the batched matrix: the
// centralized engine heals each batch's disjoint wounds concurrently
// (Parallelism 4) while the distributed engine stays serial. RunBatched's
// graph-identity check after every timestep then certifies the parallel
// schedule equivalent to the serial reference order, and its per-repair-group
// ledger checks bound each group's protocol work (Lemma 5 floor, wound
// broadcast minimum, Theorem 5 round budget).
func TestBatchedMatrixParallel(t *testing.T) {
	for _, wl := range []string{workload.NameStar, workload.NameRegular, workload.NamePowerLaw} {
		c := Cell{Workload: wl, Adversary: adversary.NameChurn, N: 32, Steps: 30, Seed: 2100}
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			g0, adv, err := c.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			opts := Options{Kappa: 4, Seed: c.Seed}
			res, err := Run(g0, adv, opts)
			if err != nil {
				t.Fatalf("per-event lockstep run: %v", err)
			}
			batches := ChunkSchedule(res.Events, 5)
			multiDel := 0
			for _, b := range batches {
				if len(b.Deletions) > 1 {
					multiDel++
				}
			}
			if multiDel == 0 {
				t.Fatal("no multi-deletion batch — the test is not exercising parallel repair")
			}
			opts.Parallelism = 4
			if err := RunBatched(g0, batches, opts); err != nil {
				t.Fatalf("parallel batched lockstep: %v", err)
			}
		})
	}
}

// ChunkSchedule preserves application order: replaying the batches through a
// fresh reference state lands on the same graph as replaying the events one
// at a time under the same seed.
func TestChunkSchedulePreservesOrder(t *testing.T) {
	c := Cell{Workload: workload.NameErdosRenyi, Adversary: adversary.NameChurn, N: 32, Steps: 40, Seed: 77}
	g0, adv, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Run(g0, adv, Options{Kappa: 4, Seed: c.Seed})
	if err != nil {
		t.Fatalf("per-event lockstep run: %v", err)
	}

	perEvent, err := core.NewState(core.Config{Kappa: 4, Seed: c.Seed}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	for i, ev := range res.Events {
		switch ev.Kind {
		case adversary.Insert:
			err = perEvent.InsertNode(ev.Node, ev.Neighbors)
		case adversary.Delete:
			err = perEvent.DeleteNode(ev.Node)
		}
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}

	batched, err := core.NewState(core.Config{Kappa: 4, Seed: c.Seed}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	for i, b := range ChunkSchedule(res.Events, 6) {
		if err := batched.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	if !batched.Graph().Equal(perEvent.Graph()) {
		t.Fatalf("batched application diverged from per-event application: n=%d/%d m=%d/%d",
			batched.Graph().NumNodes(), perEvent.Graph().NumNodes(),
			batched.Graph().NumEdges(), perEvent.Graph().NumEdges())
	}
}

// ChunkSchedule splits on intra-batch conflicts and on inserts that would be
// hoisted over an earlier delete.
func TestChunkScheduleSplits(t *testing.T) {
	ins := func(n graph.NodeID, nbrs ...graph.NodeID) adversary.Event {
		return adversary.Event{Kind: adversary.Insert, Node: n, Neighbors: nbrs}
	}
	del := func(n graph.NodeID) adversary.Event {
		return adversary.Event{Kind: adversary.Delete, Node: n}
	}
	cases := []struct {
		name   string
		events []adversary.Event
		want   int // batches
	}{
		{"insert-then-delete-same-node", []adversary.Event{ins(9, 1), del(9)}, 2},
		{"insert-after-delete-hoist", []adversary.Event{del(3), ins(9, 1)}, 2},
		{"attach-to-batch-deleted", []adversary.Event{del(3), del(4), ins(9, 3)}, 2},
		{"delete-attached-neighbor", []adversary.Event{ins(9, 1, 2), del(1)}, 2},
		{"double-delete", []adversary.Event{del(3), del(3)}, 2},
		{"compatible-run", []adversary.Event{ins(9, 1), ins(10, 9), del(3)}, 1},
		{"size-cap", []adversary.Event{del(1), del(2), del(3)}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			size := 5
			if tc.name == "size-cap" {
				size = 2
			}
			got := ChunkSchedule(tc.events, size)
			if len(got) != tc.want {
				t.Fatalf("ChunkSchedule produced %d batches, want %d: %+v", len(got), tc.want, got)
			}
			total := 0
			for _, b := range got {
				total += len(b.Insertions) + len(b.Deletions)
			}
			if total != len(tc.events) {
				t.Fatalf("batches hold %d events, want %d", total, len(tc.events))
			}
		})
	}
}
