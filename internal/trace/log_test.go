package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

func logFixture(t *testing.T) (*graph.Graph, []adversary.Event) {
	t.Helper()
	g0 := graph.New()
	g0.EnsureEdge(0, 1)
	g0.EnsureEdge(1, 2)
	g0.EnsureEdge(2, 0)
	return g0, []adversary.Event{
		{Kind: adversary.Insert, Node: 10, Neighbors: []graph.NodeID{0, 2}},
		{Kind: adversary.Delete, Node: 1},
		{Kind: adversary.Insert, Node: 11, Neighbors: []graph.NodeID{10}},
	}
}

func TestLogWriterRoundTrip(t *testing.T) {
	g0, events := logFixture(t)
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, g0)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if lw.Events() != len(events) {
		t.Fatalf("Events() = %d, want %d", lw.Events(), len(events))
	}
	if err := lw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := lw.Append(events[0]); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Append after Close = %v, want ErrLogClosed", err)
	}

	tr, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !tr.Initial().Equal(g0) {
		t.Fatal("loaded initial graph differs from g0")
	}
	if len(tr.Events) != len(events) {
		t.Fatalf("loaded %d events, want %d", len(tr.Events), len(events))
	}
	adv, err := tr.Adversary()
	if err != nil {
		t.Fatalf("Adversary: %v", err)
	}
	for i, want := range events {
		got, ok := adv.Next(nil)
		if !ok {
			t.Fatalf("adversary ended at event %d", i)
		}
		if got.Kind != want.Kind || got.Node != want.Node {
			t.Fatalf("event %d = %v %d, want %v %d", i, got.Kind, got.Node, want.Kind, want.Node)
		}
	}
}

// A log equals the one-document trace of the same run once loaded: the two
// on-disk forms are interchangeable for every consumer of Load.
func TestLogMatchesRecordedTrace(t *testing.T) {
	g0, events := logFixture(t)

	var logBuf bytes.Buffer
	lw, err := NewLogWriter(&logBuf, g0)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	var docBuf bytes.Buffer
	if err := FromEvents(g0, events).Save(&docBuf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	fromLog, err := Load(&logBuf)
	if err != nil {
		t.Fatalf("Load(log): %v", err)
	}
	fromDoc, err := Load(&docBuf)
	if err != nil {
		t.Fatalf("Load(doc): %v", err)
	}
	var a, b bytes.Buffer
	if err := fromLog.Save(&a); err != nil {
		t.Fatalf("re-save log: %v", err)
	}
	if err := fromDoc.Save(&b); err != nil {
		t.Fatalf("re-save doc: %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("log and recorded trace load differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// A crash-truncated log (partial final line) loads with the torn line
// dropped and TornTail set: by log-before-ack ordering the torn event was
// never acknowledged, so recovery must tolerate it rather than refuse to
// start. Every truncation point within the final line must behave this way —
// and a full byte-truncation sweep must never lose more than that one event.
func TestLogTruncatedTail(t *testing.T) {
	g0, events := logFixture(t)
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, g0)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	full := buf.String()
	// The log is header + one line per event; the last line starts after the
	// second-to-last newline.
	lastStart := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1

	for cut := len(full) - 1; cut > lastStart; cut-- {
		got, err := Load(strings.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: Load: %v", cut, err)
		}
		switch len(got.Events) {
		case len(events) - 1:
			if !got.TornTail {
				t.Fatalf("cut=%d: dropped final event but TornTail not set", cut)
			}
		case len(events):
			// Only the trailing newline was cut; the final line is still
			// complete JSON and must load clean.
			if cut != len(full)-1 {
				t.Fatalf("cut=%d: kept all events on a mid-line cut", cut)
			}
			if got.TornTail {
				t.Fatalf("cut=%d: complete log reported torn", cut)
			}
		default:
			t.Fatalf("cut=%d: %d events, want %d or %d",
				cut, len(got.Events), len(events)-1, len(events))
		}
	}
	// Cutting exactly at the line boundary is a clean (untorn) shorter log.
	got, err := Load(strings.NewReader(full[:lastStart]))
	if err != nil {
		t.Fatalf("boundary cut: %v", err)
	}
	if got.TornTail || len(got.Events) != len(events)-1 {
		t.Fatalf("boundary cut: events=%d torn=%v, want %d/false",
			len(got.Events), got.TornTail, len(events)-1)
	}
	// An intact log never reports a torn tail.
	intact, err := Load(strings.NewReader(full))
	if err != nil {
		t.Fatalf("intact: %v", err)
	}
	if intact.TornTail || len(intact.Events) != len(events) {
		t.Fatalf("intact: events=%d torn=%v", len(intact.Events), intact.TornTail)
	}
}

// A malformed line in the *middle* of a log — followed by more content — is
// corruption, not a torn tail, and must still fail.
func TestLogRejectsMidstreamGarbage(t *testing.T) {
	g0, events := logFixture(t)
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, g0)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	lines[2] = strings.TrimSuffix(lines[2], "\n")[:3] + "\n" // tear an interior line
	if _, err := Load(strings.NewReader(strings.Join(lines, ""))); err == nil {
		t.Fatal("Load of midstream-corrupted log succeeded, want error")
	}
}
