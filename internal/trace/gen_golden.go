//go:build ignore

// Generates testdata/golden-star16-churn80.json, the regression anchor
// replayed by TestGoldenTraceRegression: a star-16 initial topology under 80
// random-churn events (delete bias 0.55, ≤3 attachments, adversary seed 99).
// After regenerating, replay it (kappa=4, seed=99) and update the pinned
// outcome in golden_test.go deliberately.
//
// Run from internal/trace: go run gen_golden.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/trace"
	"github.com/xheal/xheal/internal/workload"
)

func main() {
	g0, err := workload.Star(16)
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.New(g0)
	rec := &trace.Recording{Inner: adversary.NewRandomChurn(80, 0.55, 3, 99), Trace: tr}

	s, err := core.NewState(core.Config{Kappa: 4, Seed: 99}, g0)
	if err != nil {
		log.Fatal(err)
	}
	for {
		ev, ok := rec.Next(s.Graph())
		if !ok {
			break
		}
		switch ev.Kind {
		case adversary.Insert:
			err = s.InsertNode(ev.Node, ev.Neighbors)
		case adversary.Delete:
			err = s.DeleteNode(ev.Node)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			log.Fatal(err)
		}
	}

	path := filepath.Join("testdata", "golden-star16-churn80.json")
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote %s: %d events\n", path, len(tr.Events))
	fmt.Printf("final: nodes=%d edges=%d connected=%v\n",
		s.Graph().NumNodes(), s.Graph().NumEdges(), s.Graph().IsConnected())
	fmt.Printf("stats: %+v\n", s.Stats())
}
