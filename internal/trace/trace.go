package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

// FormatVersion identifies the trace schema.
const FormatVersion = 1

// Sentinel errors.
var (
	ErrBadVersion = errors.New("trace: unsupported format version")
	ErrBadEvent   = errors.New("trace: malformed event")
)

// Event is the serialized form of one adversarial action.
type Event struct {
	// Kind is "insert" or "delete".
	Kind string `json:"kind"`
	// Node is the inserted or deleted node.
	Node graph.NodeID `json:"node"`
	// Neighbors are the insertion attachments (insert only).
	Neighbors []graph.NodeID `json:"neighbors,omitempty"`
}

// Trace is a replayable adversarial run: the initial topology and the event
// sequence applied to it.
type Trace struct {
	Version int            `json:"version"`
	Nodes   []graph.NodeID `json:"nodes"`
	Edges   []graph.Edge   `json:"edges"`
	Events  []Event        `json:"events"`

	// BaseTick and BaseEvents anchor a log segment written after a
	// checkpoint: the segment's events start BaseEvents events into the run,
	// not at genesis (Nodes/Edges still describe the genesis graph).
	// Replaying such a segment from its header alone is wrong — recovery
	// must first restore the checkpoint named by Checkpoint.
	BaseTick   uint64 `json:"base_tick,omitempty"`
	BaseEvents uint64 `json:"base_events,omitempty"`
	Checkpoint string `json:"checkpoint,omitempty"`

	// TornTail reports that the final log line was truncated mid-write (a
	// crash artifact) and was dropped. By log-before-ack ordering a torn
	// event was never acknowledged, so dropping it is lossless; callers
	// should still surface a warning.
	TornTail bool `json:"-"`
}

// New starts a trace over the given initial graph.
func New(g0 *graph.Graph) *Trace {
	return &Trace{
		Version: FormatVersion,
		Nodes:   g0.Nodes(),
		Edges:   g0.Edges(),
	}
}

// FromEvents builds a trace over g0 already holding the given events — the
// conformance shrinker's artifact constructor: a shrunk schedule saved this
// way replays with `xheal-sim -replay <file>`.
func FromEvents(g0 *graph.Graph, events []adversary.Event) *Trace {
	t := New(g0)
	for _, ev := range events {
		t.Record(ev)
	}
	return t
}

// Record appends one adversary event.
func (t *Trace) Record(ev adversary.Event) {
	out := Event{Node: ev.Node}
	switch ev.Kind {
	case adversary.Insert:
		out.Kind = "insert"
		out.Neighbors = append([]graph.NodeID(nil), ev.Neighbors...)
	case adversary.Delete:
		out.Kind = "delete"
	}
	t.Events = append(t.Events, out)
}

// Initial reconstructs the initial graph.
func (t *Trace) Initial() *graph.Graph {
	g := graph.New()
	for _, n := range t.Nodes {
		g.EnsureNode(n)
	}
	for _, e := range t.Edges {
		g.EnsureEdge(e.U, e.V)
	}
	return g
}

// Adversary returns a scripted adversary replaying the recorded events.
func (t *Trace) Adversary() (adversary.Adversary, error) {
	events := make([]adversary.Event, 0, len(t.Events))
	for i, ev := range t.Events {
		var kind adversary.EventKind
		switch ev.Kind {
		case "insert":
			kind = adversary.Insert
		case "delete":
			kind = adversary.Delete
		default:
			return nil, fmt.Errorf("event %d has kind %q: %w", i, ev.Kind, ErrBadEvent)
		}
		events = append(events, adversary.Event{
			Kind:      kind,
			Node:      ev.Node,
			Neighbors: append([]graph.NodeID(nil), ev.Neighbors...),
		})
	}
	return &adversary.Scripted{Events: events}, nil
}

// Save writes the trace as indented JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Load reads a trace written by Save, or an append-only event log written by
// LogWriter (the header value followed by one Event value per line — the
// trailing events are folded into Trace.Events, so both forms replay
// identically).
//
// A final log line truncated mid-write — the artifact a crash leaves — is
// dropped and reported via Trace.TornTail rather than failing the load: by
// log-before-ack ordering the torn event was never acknowledged. A malformed
// line *followed by more content* is real corruption and still fails.
func Load(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.Version != FormatVersion {
		return nil, fmt.Errorf("version %d: %w", t.Version, ErrBadVersion)
	}
	for i, ev := range t.Events {
		if ev.Kind != "insert" && ev.Kind != "delete" {
			return nil, fmt.Errorf("event %d has kind %q: %w", i, ev.Kind, ErrBadEvent)
		}
	}
	// Log-form events follow one per line; read line-wise so only a torn
	// *final* line is tolerated.
	sc := bufio.NewScanner(io.MultiReader(dec.Buffered(), r))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var badLine error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if badLine != nil {
			return nil, badLine // malformed line followed by more content
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			badLine = fmt.Errorf("trace: decode log event %d: %w", len(t.Events), err)
			continue
		}
		if ev.Kind != "insert" && ev.Kind != "delete" {
			return nil, fmt.Errorf("event %d has kind %q: %w", len(t.Events), ev.Kind, ErrBadEvent)
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	t.TornTail = badLine != nil
	return &t, nil
}

// Recording wraps an adversary, recording every event it emits.
type Recording struct {
	Inner adversary.Adversary
	Trace *Trace
}

var _ adversary.Adversary = (*Recording)(nil)

// Next implements adversary.Adversary.
func (r *Recording) Next(view *graph.Graph) (adversary.Event, bool) {
	ev, ok := r.Inner.Next(view)
	if ok {
		r.Trace.Record(ev)
	}
	return ev, ok
}
