package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

func insertEvent(n graph.NodeID, nbrs ...graph.NodeID) adversary.Event {
	return adversary.Event{Kind: adversary.Insert, Node: n, Neighbors: nbrs}
}

func filelogFixture(t *testing.T) *graph.Graph {
	t.Helper()
	g0 := graph.New()
	for i := graph.NodeID(1); i <= 4; i++ {
		g0.EnsureNode(i)
	}
	g0.EnsureEdge(1, 2)
	g0.EnsureEdge(2, 3)
	g0.EnsureEdge(3, 4)
	g0.EnsureEdge(4, 1)
	return g0
}

func TestFileLogRotateAndSplice(t *testing.T) {
	dir := t.TempDir()
	g0 := filelogFixture(t)
	fl, err := OpenFileLog(dir, g0, 0, 0, "")
	if err != nil {
		t.Fatalf("OpenFileLog: %v", err)
	}
	next := graph.NodeID(100)
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			if err := fl.Append(insertEvent(next, 1)); err != nil {
				t.Fatalf("append: %v", err)
			}
			next++
		}
	}
	appendN(3)
	if err := fl.Rotate(1, "ckpt-a"); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(2)
	if err := fl.Rotate(2, "ckpt-b"); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(4)
	if fl.Events() != 9 {
		t.Fatalf("Events()=%d, want 9", fl.Events())
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	tr, err := LoadLogDir(dir)
	if err != nil {
		t.Fatalf("LoadLogDir: %v", err)
	}
	if tr.BaseEvents != 0 || len(tr.Events) != 9 || tr.TornTail {
		t.Fatalf("spliced base=%d events=%d torn=%v, want 0/9/false",
			tr.BaseEvents, len(tr.Events), tr.TornTail)
	}
	for i, ev := range tr.Events {
		if ev.Node != graph.NodeID(100+i) {
			t.Fatalf("event %d is node %d, want %d (order lost)", i, ev.Node, 100+i)
		}
	}
	if !tr.Initial().Equal(g0) {
		t.Fatal("spliced initial graph differs from genesis")
	}
}

func TestFileLogCompact(t *testing.T) {
	for _, archive := range []bool{false, true} {
		dir := t.TempDir()
		g0 := filelogFixture(t)
		fl, err := OpenFileLog(dir, g0, 0, 0, "")
		if err != nil {
			t.Fatalf("OpenFileLog: %v", err)
		}
		next := graph.NodeID(100)
		for seg := 0; seg < 3; seg++ {
			for i := 0; i < 3; i++ {
				if err := fl.Append(insertEvent(next, 1)); err != nil {
					t.Fatalf("append: %v", err)
				}
				next++
			}
			if err := fl.Rotate(uint64(seg+1), "ckpt"); err != nil {
				t.Fatalf("rotate: %v", err)
			}
		}
		// Segments at bases 0, 3, 6 plus live segment at 9. A checkpoint at
		// event 6 covers segments 0 and 3.
		if err := fl.Compact(6, archive); err != nil {
			t.Fatalf("compact(archive=%v): %v", archive, err)
		}
		bases, _, err := listSegments(dir)
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		if len(bases) != 2 || bases[0] != 6 || bases[1] != 9 {
			t.Fatalf("archive=%v: surviving bases %v, want [6 9]", archive, bases)
		}
		// The surviving tail splices from base 6.
		tail, err := LoadLogDir(dir)
		if err != nil {
			t.Fatalf("LoadLogDir: %v", err)
		}
		if tail.BaseEvents != 6 || len(tail.Events) != 3 {
			t.Fatalf("archive=%v: tail base=%d events=%d, want 6/3",
				archive, tail.BaseEvents, len(tail.Events))
		}
		if archive {
			// Full history is preserved under archive/.
			full, err := LoadFullLog(dir)
			if err != nil {
				t.Fatalf("LoadFullLog: %v", err)
			}
			if full.BaseEvents != 0 || len(full.Events) != 9 {
				t.Fatalf("full base=%d events=%d, want 0/9", full.BaseEvents, len(full.Events))
			}
		} else if _, err := os.Stat(filepath.Join(dir, ArchiveDir)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("delete mode created archive dir (err=%v)", err)
		}
		fl.Close()
	}
}

func TestLoadLogDirDetectsGap(t *testing.T) {
	dir := t.TempDir()
	g0 := filelogFixture(t)
	fl, err := OpenFileLog(dir, g0, 0, 0, "")
	if err != nil {
		t.Fatalf("OpenFileLog: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := fl.Append(insertEvent(graph.NodeID(100+i), 1)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := fl.Rotate(1, "ckpt"); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := fl.Append(insertEvent(200, 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Corrupt the chain: drop two events from the first segment by rewriting
	// it shorter under the same name, so the next segment's base overshoots.
	first := filepath.Join(dir, "events-0000000000000000.log")
	short, err := OpenFileLog(t.TempDir(), g0, 0, 0, "")
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := short.Append(insertEvent(graph.NodeID(100+i), 1)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := short.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(short.Dir(), "events-0000000000000000.log"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := LoadLogDir(dir); !errors.Is(err, ErrLogGap) {
		t.Fatalf("LoadLogDir on gapped chain: %v, want ErrLogGap", err)
	}
}

func TestFileLogTornSegmentTail(t *testing.T) {
	dir := t.TempDir()
	g0 := filelogFixture(t)
	fl, err := OpenFileLog(dir, g0, 0, 0, "")
	if err != nil {
		t.Fatalf("OpenFileLog: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := fl.Append(insertEvent(graph.NodeID(100+i), 1)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	fl.Close()
	// Simulate a crash mid-append: tear the live segment's final line.
	name := filepath.Join(dir, "events-0000000000000000.log")
	info, err := os.Stat(name)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(name, info.Size()-4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	tr, err := LoadLogDir(dir)
	if err != nil {
		t.Fatalf("LoadLogDir: %v", err)
	}
	if !tr.TornTail || len(tr.Events) != 2 {
		t.Fatalf("torn load events=%d torn=%v, want 2/true", len(tr.Events), tr.TornTail)
	}
	// The next incarnation anchors at the survived position (2 events) and
	// the chain stays contiguous.
	fl2, err := OpenFileLog(dir, g0, 1, 2, "ckpt")
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if err := fl2.Append(insertEvent(300, 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	fl2.Close()
	tr2, err := LoadLogDir(dir)
	if err != nil {
		t.Fatalf("LoadLogDir after restart: %v", err)
	}
	if tr2.BaseEvents != 0 || len(tr2.Events) != 3 || !tr2.TornTail {
		t.Fatalf("restart splice base=%d events=%d torn=%v, want 0/3/true",
			tr2.BaseEvents, len(tr2.Events), tr2.TornTail)
	}
}
