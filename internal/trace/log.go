package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

// This file is the append-only form of a trace: a serving daemon cannot
// buffer a whole run in memory and rewrite one JSON document per event, so
// LogWriter streams the same schema as a sequence of JSON values — first the
// header (a Trace with no events), then one Event value per applied event.
// Load accepts both forms transparently, so a live event log replays through
// `xheal-sim -replay` and `xheal-bench -conf-replay` exactly like a recorded
// trace.

// ErrLogClosed is returned by Append after Close.
var ErrLogClosed = errors.New("trace: event log is closed")

// LogWriter appends an adversarial event stream to w as it happens. Each
// Append writes one complete line, so a log truncated by a crash loses at
// most the event being written; everything flushed before it still loads.
// Append alone makes events durable against process crashes (the write
// reaches the kernel); call Sync to flush them to stable storage so they
// also survive power loss (internal/server does, once per applied batch,
// before acknowledging the batch).
//
// Not safe for concurrent use; serialize Appends (internal/server appends
// from its single tick loop).
type LogWriter struct {
	w      io.Writer
	enc    *json.Encoder
	events int
	closed bool
}

// NewLogWriter starts an event log over the initial graph g0, writing the
// header immediately.
func NewLogWriter(w io.Writer, g0 *graph.Graph) (*LogWriter, error) {
	return NewLogWriterAt(w, g0, 0, 0, "")
}

// NewLogWriterAt starts an event log segment anchored after baseEvents events
// (at tick baseTick), recording which checkpoint the segment follows. The
// header still carries the genesis graph; a zero anchor produces the same
// header as NewLogWriter.
func NewLogWriterAt(w io.Writer, g0 *graph.Graph, baseTick, baseEvents uint64, checkpoint string) (*LogWriter, error) {
	lw := &LogWriter{w: w, enc: json.NewEncoder(w)}
	header := Trace{
		Version:    FormatVersion,
		Nodes:      g0.Nodes(),
		Edges:      g0.Edges(),
		BaseTick:   baseTick,
		BaseEvents: baseEvents,
		Checkpoint: checkpoint,
	}
	if err := lw.enc.Encode(&header); err != nil {
		return nil, fmt.Errorf("trace: log header: %w", err)
	}
	return lw, nil
}

// Append writes one adversary event to the log.
func (lw *LogWriter) Append(ev adversary.Event) error {
	if lw.closed {
		return ErrLogClosed
	}
	out := Event{Node: ev.Node}
	switch ev.Kind {
	case adversary.Insert:
		out.Kind = "insert"
		out.Neighbors = ev.Neighbors
	case adversary.Delete:
		out.Kind = "delete"
	default:
		return fmt.Errorf("event kind %d: %w", int(ev.Kind), ErrBadEvent)
	}
	if err := lw.enc.Encode(&out); err != nil {
		return fmt.Errorf("trace: log append: %w", err)
	}
	lw.events++
	return nil
}

// Events returns the number of events appended so far.
func (lw *LogWriter) Events() int { return lw.events }

// Sync flushes appended events to stable storage when the underlying writer
// supports it (*os.File does); for plain in-memory writers it is a no-op.
func (lw *LogWriter) Sync() error {
	if f, ok := lw.w.(interface{ Sync() error }); ok {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("trace: log sync: %w", err)
		}
	}
	return nil
}

// Close marks the log complete. It does not close the underlying writer —
// the caller owns the file handle.
func (lw *LogWriter) Close() error {
	lw.closed = true
	return nil
}
