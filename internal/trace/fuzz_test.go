package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad ensures the trace decoder never panics and that anything it
// accepts round-trips through Save/Load unchanged.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version":1,"events":[{"kind":"delete","node":3}]}`)
	f.Add(`{"version":1,"nodes":[1,2],"edges":[{"U":1,"V":2}],"events":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Load(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("Save of accepted trace failed: %v", err)
		}
		again, err := Load(&buf)
		if err != nil {
			t.Fatalf("round-trip Load failed: %v", err)
		}
		if len(again.Events) != len(tr.Events) {
			t.Fatalf("events changed in round trip: %d != %d", len(again.Events), len(tr.Events))
		}
		if !again.Initial().Equal(tr.Initial()) {
			t.Fatal("initial graph changed in round trip")
		}
	})
}
