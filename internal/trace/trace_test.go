package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

func buildStar(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := workload.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRoundTrip(t *testing.T) {
	g0 := buildStar(t, 6)
	tr := New(g0)
	tr.Record(adversary.Event{Kind: adversary.Delete, Node: 0})
	tr.Record(adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{1, 2}})

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !loaded.Initial().Equal(g0) {
		t.Fatal("initial graph did not round-trip")
	}
	if len(loaded.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(loaded.Events))
	}
	if loaded.Events[0].Kind != "delete" || loaded.Events[1].Kind != "insert" {
		t.Fatalf("event kinds = %+v", loaded.Events)
	}
	if len(loaded.Events[1].Neighbors) != 2 {
		t.Fatal("insert neighbors lost")
	}
}

func TestFromEvents(t *testing.T) {
	g0 := buildStar(t, 4)
	events := []adversary.Event{
		{Kind: adversary.Delete, Node: 0},
		{Kind: adversary.Insert, Node: 50, Neighbors: []graph.NodeID{1}},
	}
	tr := FromEvents(g0, events)
	if !tr.Initial().Equal(g0) {
		t.Fatal("FromEvents lost the initial graph")
	}
	adv, err := tr.Adversary()
	if err != nil {
		t.Fatalf("Adversary: %v", err)
	}
	for i, want := range events {
		got, ok := adv.Next(g0)
		if !ok || got.Kind != want.Kind || got.Node != want.Node {
			t.Fatalf("event %d = %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := adv.Next(g0); ok {
		t.Fatal("replay did not end after recorded events")
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	_, err := Load(strings.NewReader(`{"version": 99, "events": []}`))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("error = %v, want ErrBadVersion", err)
	}
}

func TestLoadRejectsBadKind(t *testing.T) {
	_, err := Load(strings.NewReader(`{"version": 1, "events": [{"kind": "explode", "node": 1}]}`))
	if !errors.Is(err, ErrBadEvent) {
		t.Fatalf("error = %v, want ErrBadEvent", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader(`{{{`)); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestAdversaryReplay(t *testing.T) {
	g0 := buildStar(t, 6)
	tr := New(g0)
	tr.Record(adversary.Event{Kind: adversary.Delete, Node: 0})
	adv, err := tr.Adversary()
	if err != nil {
		t.Fatalf("Adversary: %v", err)
	}
	ev, ok := adv.Next(g0)
	if !ok || ev.Kind != adversary.Delete || ev.Node != 0 {
		t.Fatalf("replayed event = %+v ok=%v", ev, ok)
	}
	if _, ok := adv.Next(g0); ok {
		t.Fatal("script should be exhausted")
	}
}

func TestAdversaryRejectsBadKind(t *testing.T) {
	tr := &Trace{Version: FormatVersion, Events: []Event{{Kind: "nope"}}}
	if _, err := tr.Adversary(); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("error = %v, want ErrBadEvent", err)
	}
}

// TestRecordedReplayIsIdentical runs a random adversary while recording,
// then replays the trace against a fresh healer with the same seed: the
// healed graphs must be identical.
func TestRecordedReplayIsIdentical(t *testing.T) {
	g0 := buildStar(t, 12)
	tr := New(g0)
	rec := &Recording{
		Inner: adversary.NewRandomChurn(60, 0.5, 2, 7),
		Trace: tr,
	}

	run := func(adv adversary.Adversary) *graph.Graph {
		s, err := core.NewState(core.Config{Kappa: 4, Seed: 3}, g0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			ev, ok := adv.Next(s.Graph())
			if !ok {
				break
			}
			switch ev.Kind {
			case adversary.Insert:
				err = s.InsertNode(ev.Node, ev.Neighbors)
			case adversary.Delete:
				err = s.DeleteNode(ev.Node)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return s.CloneGraph()
	}

	live := run(rec)

	// Round-trip through JSON, then replay.
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := loaded.Adversary()
	if err != nil {
		t.Fatal(err)
	}
	replayed := run(adv)

	if !live.Equal(replayed) {
		t.Fatal("replay diverged from recorded run")
	}
}
