// Package trace records and replays adversarial event sequences as JSON.
// Recorded traces make runs reproducible across machines and make failures
// shareable: xheal-sim can -record a run and -replay it later against any
// healer, the conformance shrinker saves minimized divergence schedules as
// trace artifacts with one-command repros, and the test suite replays
// golden traces as regression anchors.
//
// Two on-disk forms load through the same Load entry point:
//
//   - A recorded trace (Save): one indented JSON document holding the
//     initial topology and the full event list. Produced after a run
//     completes.
//   - An append-only event log (LogWriter): the same schema streamed as a
//     header value followed by one event value per line. Produced while a
//     run is still happening — the serving daemon (internal/server)
//     appends every applied batch in application order, so a live service
//     can be replayed without ever buffering its history in memory, and a
//     crash loses at most the final partial line.
//
// Replay is exact by construction: Initial rebuilds the starting graph,
// Adversary replays the events through the standard adversary interface,
// and because healing randomness is seeded, the same trace + κ + seed
// reproduces the same final topology bit-for-bit (the property
// internal/server's replay verification and the conformance repro commands
// rely on).
package trace
