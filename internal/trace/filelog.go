package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

// This file is the durable, segmented form of the event log. A FileLog owns a
// directory of segment files named events-<base>.log, where <base> is the
// number of events in the run before the segment's first event. Each segment
// is an anchored JSONL log (header via NewLogWriterAt, one event per line).
// The server rotates to a fresh segment right after each checkpoint, so
// compaction is simply: delete (or archive) every segment fully covered by
// the latest checkpoint. Recovery replays only the surviving tail.

// ArchiveDir is the subdirectory compacted segments move to when retained.
const ArchiveDir = "archive"

const (
	segPrefix = "events-"
	segSuffix = ".log"
)

// ErrLogGap reports that the segment chain is not contiguous: some segment's
// events are missing between two surviving files.
var ErrLogGap = fmt.Errorf("trace: gap in log segments")

// FileLog is an append-only event log split into checkpoint-anchored segment
// files. Not safe for concurrent use; internal/server appends from its single
// tick loop.
type FileLog struct {
	dir    string
	g0     *graph.Graph
	f      *os.File
	lw     *LogWriter
	base   uint64 // events in the run before the current segment
	events uint64 // events appended to the current segment
}

// OpenFileLog opens (creating if needed) a log directory and starts a fresh
// segment anchored after baseEvents events. A fresh segment is always started
// — never appended to an existing file — so a torn tail left by a crash is
// sealed in its old segment and tolerated once at load, not compounded. An
// existing segment at the same base is overwritten: it can only exist if the
// previous incarnation logged no surviving events past the base, so its
// content is already covered.
func OpenFileLog(dir string, g0 *graph.Graph, baseTick, baseEvents uint64, checkpoint string) (*FileLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	name := filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, baseEvents, segSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	lw, err := NewLogWriterAt(f, g0, baseTick, baseEvents, checkpoint)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Sync the header so a power loss before the first batch leaves a
	// loadable (empty) segment, not a torn or missing one.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: sync header: %w", err)
	}
	return &FileLog{dir: dir, g0: g0.Clone(), f: f, lw: lw, base: baseEvents}, nil
}

// Dir returns the log directory.
func (fl *FileLog) Dir() string { return fl.dir }

// Append writes one adversary event to the current segment.
func (fl *FileLog) Append(ev adversary.Event) error {
	if err := fl.lw.Append(ev); err != nil {
		return err
	}
	fl.events++
	return nil
}

// Events returns the total run position: base + events in this segment.
func (fl *FileLog) Events() uint64 { return fl.base + fl.events }

// Sync flushes the live segment to stable storage. The server calls it once
// per applied batch, before acknowledging the batch, so acknowledged events
// survive power loss as well as process crashes.
func (fl *FileLog) Sync() error {
	if err := fl.f.Sync(); err != nil {
		return fmt.Errorf("trace: log sync: %w", err)
	}
	return nil
}

// Rotate seals the current segment and starts a fresh one anchored at the
// current position, recording the checkpoint that covers everything before
// it. Called by the server right after each successful checkpoint.
func (fl *FileLog) Rotate(tick uint64, checkpoint string) error {
	if err := fl.f.Close(); err != nil {
		return fmt.Errorf("trace: rotate close: %w", err)
	}
	base := fl.base + fl.events
	name := filepath.Join(fl.dir, fmt.Sprintf("%s%016d%s", segPrefix, base, segSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("trace: rotate: %w", err)
	}
	lw, err := NewLogWriterAt(f, fl.g0, tick, base, checkpoint)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("trace: sync header: %w", err)
	}
	fl.f, fl.lw, fl.base, fl.events = f, lw, base, 0
	return nil
}

// Compact removes every sealed segment fully covered by a checkpoint at
// beforeEvents: a segment is dropped when the next segment starts at or
// before the watermark. With archive=true, dropped segments move to the
// archive/ subdirectory (preserving from-genesis replay for recovery
// verification) instead of being deleted. The live segment never moves.
func (fl *FileLog) Compact(beforeEvents uint64, archive bool) error {
	bases, names, err := listSegments(fl.dir)
	if err != nil {
		return err
	}
	var archiveDir string
	if archive {
		archiveDir = filepath.Join(fl.dir, ArchiveDir)
		if err := os.MkdirAll(archiveDir, 0o755); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	for i := 0; i+1 < len(bases); i++ {
		if bases[i+1] > beforeEvents || bases[i] >= fl.base {
			continue
		}
		src := filepath.Join(fl.dir, names[i])
		if archive {
			if err := os.Rename(src, filepath.Join(archiveDir, names[i])); err != nil {
				return fmt.Errorf("trace: archive segment: %w", err)
			}
		} else if err := os.Remove(src); err != nil {
			return fmt.Errorf("trace: drop segment: %w", err)
		}
	}
	return nil
}

// Close seals the current segment and closes its file.
func (fl *FileLog) Close() error {
	if err := fl.lw.Close(); err != nil {
		return err
	}
	return fl.f.Close()
}

// listSegments returns segment bases and filenames in ascending base order.
func listSegments(dir string) ([]uint64, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names) // zero-padded bases: lexicographic == numeric
	bases := make([]uint64, len(names))
	for i, name := range names {
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: segment name %q: %w", name, err)
		}
		bases[i] = base
	}
	return bases, names, nil
}

// LoadLogDir loads the surviving (non-archived) segments of a log directory
// and splices them into one trace: Nodes/Edges from the first segment's
// header, BaseEvents = the first segment's base, Events concatenated in
// order. Each segment tolerates its own torn tail — a crash seals a segment
// mid-line and the next incarnation's base counts only the events that
// survived, so the chain stays contiguous; a gap between segments is
// corruption and fails with ErrLogGap. TornTail is set if any segment was
// torn.
func LoadLogDir(dir string) (*Trace, error) {
	_, names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(dir, name)
	}
	return spliceSegments(paths)
}

// LoadFullLog loads archived and live segments together — the from-genesis
// event history, available while compaction runs in archive mode.
func LoadFullLog(dir string) (*Trace, error) {
	var paths []string
	archiveDir := filepath.Join(dir, ArchiveDir)
	if _, err := os.Stat(archiveDir); err == nil {
		_, names, err := listSegments(archiveDir)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			paths = append(paths, filepath.Join(archiveDir, name))
		}
	}
	_, names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		paths = append(paths, filepath.Join(dir, name))
	}
	// Archived and live segments can overlap in name order only at the
	// boundary; sort by base across the merged list.
	sort.Slice(paths, func(i, j int) bool { return filepath.Base(paths[i]) < filepath.Base(paths[j]) })
	return spliceSegments(paths)
}

func spliceSegments(paths []string) (*Trace, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: %w: no segments", os.ErrNotExist)
	}
	var out *Trace
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		t, err := Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace: segment %s: %w", filepath.Base(path), err)
		}
		if out == nil {
			out = t
			continue
		}
		want := out.BaseEvents + uint64(len(out.Events))
		if t.BaseEvents != want {
			return nil, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrLogGap, filepath.Base(path), t.BaseEvents, want)
		}
		out.Events = append(out.Events, t.Events...)
		out.TornTail = out.TornTail || t.TornTail
	}
	return out, nil
}
