package trace

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
)

// TestGoldenTraceRegression replays a committed 80-event churn trace
// (star-16 start) and pins the exact healed outcome: any behavioral change
// in the healing algorithm shows up as a diff against these numbers, which
// were produced by the same implementation that passed the full invariant
// suite. Update them deliberately when the algorithm changes.
func TestGoldenTraceRegression(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden-star16-churn80.json"))
	if err != nil {
		t.Fatalf("open golden trace: %v", err)
	}
	defer f.Close()
	tr, err := Load(f)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tr.Events) != 80 {
		t.Fatalf("golden trace has %d events, want 80", len(tr.Events))
	}

	s, err := core.NewState(core.Config{Kappa: 4, Seed: 99}, tr.Initial())
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	adv, err := tr.Adversary()
	if err != nil {
		t.Fatalf("Adversary: %v", err)
	}
	for {
		ev, ok := adv.Next(s.Graph())
		if !ok {
			break
		}
		switch ev.Kind {
		case adversary.Insert:
			err = s.InsertNode(ev.Node, ev.Neighbors)
		case adversary.Delete:
			err = s.DeleteNode(ev.Node)
		}
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants during replay: %v", err)
		}
	}

	// Golden outcome (see file header comment for provenance).
	if got := s.Graph().NumNodes(); got != 11 {
		t.Fatalf("final nodes = %d, want 11", got)
	}
	if got := s.Graph().NumEdges(); got != 21 {
		t.Fatalf("final edges = %d, want 21", got)
	}
	if !s.Graph().IsConnected() {
		t.Fatal("final graph disconnected")
	}
	stats := s.Stats()
	want := core.Stats{
		Insertions: 37, Deletions: 43,
		HealEdgesAdded: 133, HealEdgesRemoved: 48,
		PrimaryClouds: 54, SecondaryClouds: 10,
		Combines: 15, Shares: 5,
	}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}
