// Package workload generates the initial topologies the experiments start
// from: the adversarial shapes the paper's analysis highlights (stars —
// the motivating example, paths — the stretch worst case), the realistic
// substrates its introduction motivates (Erdős–Rényi and power-law graphs
// for peer-to-peer/mesh overlays), structured graphs that exercise
// particular repair geometry (cycles, grids, hypercubes, complete graphs),
// and the paper's own expander construction (RandomRegular, a Law–Siu
// H-graph via internal/hgraph, which doubles as the "G′ is an expander"
// workload of Corollary 1). TwoCliquesBridge reproduces the §1.1 example
// separating expansion from conductance.
//
// Every generator returns a connected graph or an error — randomized
// generators retry a bounded number of times and fail with ErrGaveUp
// rather than hand the harness a disconnected starting point. ByName maps
// registry names (Names) to generators with sensible default shape
// parameters, which is what the CLIs (xheal-sim, xheal-serve,
// xheal-bench) and the conformance matrix build cells from.
package workload
