package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/hgraph"
)

// Sentinel errors.
var (
	ErrBadSize  = errors.New("workload: invalid size parameter")
	ErrBadParam = errors.New("workload: invalid generator parameter")
	ErrGaveUp   = errors.New("workload: generator failed to produce a connected graph")
)

// Star returns K_{1,leaves}: center node 0 with the given number of leaves.
func Star(leaves int) (*graph.Graph, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("star with %d leaves: %w", leaves, ErrBadSize)
	}
	g := graph.New()
	g.EnsureNode(0)
	for i := 1; i <= leaves; i++ {
		g.EnsureEdge(0, graph.NodeID(i))
	}
	return g, nil
}

// Path returns the path graph P_n on nodes 0..n-1.
func Path(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("path of %d nodes: %w", n, ErrBadSize)
	}
	g := graph.New()
	g.EnsureNode(0)
	for i := 0; i+1 < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g, nil
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("cycle of %d nodes: %w", n, ErrBadSize)
	}
	g, err := Path(n)
	if err != nil {
		return nil, err
	}
	g.EnsureEdge(0, graph.NodeID(n-1))
	return g, nil
}

// Complete returns the complete graph K_n.
func Complete(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("complete graph of %d nodes: %w", n, ErrBadSize)
	}
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return g, nil
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("grid %dx%d: %w", rows, cols, ErrBadSize)
	}
	g := graph.New()
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.EnsureNode(id(r, c))
			if r > 0 {
				g.EnsureEdge(id(r-1, c), id(r, c))
			}
			if c > 0 {
				g.EnsureEdge(id(r, c-1), id(r, c))
			}
		}
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube (2^dim nodes).
func Hypercube(dim int) (*graph.Graph, error) {
	if dim < 1 || dim > 20 {
		return nil, fmt.Errorf("hypercube of dimension %d: %w", dim, ErrBadSize)
	}
	g := graph.New()
	n := 1 << uint(dim)
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
		for b := 0; b < dim; b++ {
			j := i ^ (1 << uint(b))
			if j < i {
				g.EnsureEdge(graph.NodeID(j), graph.NodeID(i))
			}
		}
	}
	return g, nil
}

// ErdosRenyi returns a connected G(n, p) sample: edges drawn independently
// with probability p, retried until connected (up to a bounded number of
// attempts).
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("G(%d, %v): %w", n, p, ErrBadSize)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("G(%d, %v): %w", n, p, ErrBadParam)
	}
	for attempt := 0; attempt < 200; attempt++ {
		g := graph.New()
		for i := 0; i < n; i++ {
			g.EnsureNode(graph.NodeID(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("G(%d, %v): %w", n, p, ErrGaveUp)
}

// RandomRegular returns a connected random 2d-regular graph built as a
// Law–Siu H-graph (d Hamilton cycles) — the paper's own expander
// construction, so it doubles as the "G′ is an expander" workload of
// Corollary 1.
func RandomRegular(n, halfDegree int, rng *rand.Rand) (*graph.Graph, error) {
	if n < hgraph.MinSize {
		return nil, fmt.Errorf("random regular on %d nodes: %w", n, ErrBadSize)
	}
	if halfDegree < 1 {
		return nil, fmt.Errorf("random regular with d=%d: %w", halfDegree, ErrBadParam)
	}
	vertices := make([]graph.NodeID, n)
	for i := range vertices {
		vertices[i] = graph.NodeID(i)
	}
	h, err := hgraph.New(halfDegree, vertices, rng)
	if err != nil {
		return nil, err
	}
	return h.Graph(), nil
}

// PreferentialAttachment returns a Barabási–Albert-style power-law graph:
// nodes arrive one at a time and attach m edges to existing nodes chosen
// proportionally to degree. The result is connected by construction.
func PreferentialAttachment(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("preferential attachment on %d nodes: %w", n, ErrBadSize)
	}
	if m < 1 {
		return nil, fmt.Errorf("preferential attachment with m=%d: %w", m, ErrBadParam)
	}
	g := graph.New()
	g.EnsureEdge(0, 1)
	// endpoints holds each edge endpoint once per incidence: sampling an
	// element uniformly is degree-proportional sampling.
	endpoints := []graph.NodeID{0, 1}
	for i := 2; i < n; i++ {
		u := graph.NodeID(i)
		g.EnsureNode(u)
		attach := m
		if i < m {
			attach = i
		}
		chosen := make(map[graph.NodeID]struct{}, attach)
		order := make([]graph.NodeID, 0, attach) // deterministic edge order
		for len(chosen) < attach {
			w := endpoints[rng.Intn(len(endpoints))]
			if w == u {
				continue
			}
			if _, dup := chosen[w]; dup {
				continue
			}
			chosen[w] = struct{}{}
			order = append(order, w)
		}
		for _, w := range order {
			g.EnsureEdge(u, w)
			endpoints = append(endpoints, u, w)
		}
	}
	return g, nil
}

// TwoCliquesBridge returns two k-cliques joined by a single edge — the
// paper's §1.1 example of a graph with constant expansion per side but
// conductance O(1/n).
func TwoCliquesBridge(k int) (*graph.Graph, error) {
	if k < 2 {
		return nil, fmt.Errorf("two cliques of %d: %w", k, ErrBadSize)
	}
	g := graph.New()
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
			g.EnsureEdge(graph.NodeID(1000+i), graph.NodeID(1000+j))
		}
	}
	g.EnsureEdge(0, 1000)
	return g, nil
}

// Generator names accepted by ByName, for CLIs.
const (
	NameStar       = "star"
	NamePath       = "path"
	NameCycle      = "cycle"
	NameComplete   = "complete"
	NameGrid       = "grid"
	NameHypercube  = "hypercube"
	NameErdosRenyi = "er"
	NameRegular    = "regular"
	NamePowerLaw   = "powerlaw"
)

// Names returns the generator names supported by ByName, sorted.
func Names() []string {
	names := []string{
		NameStar, NamePath, NameCycle, NameComplete, NameGrid,
		NameHypercube, NameErdosRenyi, NameRegular, NamePowerLaw,
	}
	sort.Strings(names)
	return names
}

// ByName builds a named topology of roughly n nodes with default shape
// parameters; used by the CLIs.
func ByName(name string, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch name {
	case NameStar:
		return Star(n - 1)
	case NamePath:
		return Path(n)
	case NameCycle:
		return Cycle(n)
	case NameComplete:
		return Complete(n)
	case NameGrid:
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return Grid(side, side)
	case NameHypercube:
		dim := 1
		for 1<<uint(dim+1) <= n {
			dim++
		}
		return Hypercube(dim)
	case NameErdosRenyi:
		p := 4.0 / float64(n) // average degree ~4, usually connected after retries
		if n <= 8 {
			p = 0.5
		}
		return ErdosRenyi(n, p, rng)
	case NameRegular:
		return RandomRegular(n, 2, rng)
	case NamePowerLaw:
		return PreferentialAttachment(n, 2, rng)
	}
	return nil, fmt.Errorf("unknown generator %q (valid: %s): %w",
		name, strings.Join(Names(), " "), ErrBadParam)
}
