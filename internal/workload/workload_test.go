package workload

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func TestStar(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 5 {
		t.Fatalf("star = %v, want 6 nodes 5 edges", g)
	}
	if g.Degree(0) != 5 {
		t.Fatalf("center degree = %d, want 5", g.Degree(0))
	}
	if _, err := Star(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("Star(0) error = %v", err)
	}
}

func TestPathAndCycle(t *testing.T) {
	p, err := Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if p.NumEdges() != 4 {
		t.Fatalf("path edges = %d, want 4", p.NumEdges())
	}
	c, err := Cycle(5)
	if err != nil {
		t.Fatalf("Cycle: %v", err)
	}
	if c.NumEdges() != 5 {
		t.Fatalf("cycle edges = %d, want 5", c.NumEdges())
	}
	for _, n := range c.Nodes() {
		if c.Degree(n) != 2 {
			t.Fatalf("cycle degree of %d = %d, want 2", n, c.Degree(n))
		}
	}
	if _, err := Cycle(2); !errors.Is(err, ErrBadSize) {
		t.Fatalf("Cycle(2) error = %v", err)
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if g.NumEdges() != 15 {
		t.Fatalf("K_6 edges = %d, want 15", g.NumEdges())
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d, want 12", g.NumNodes())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("grid edges = %d, want 17", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("grid not connected")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatalf("Hypercube: %v", err)
	}
	if g.NumNodes() != 16 {
		t.Fatalf("Q4 nodes = %d, want 16", g.NumNodes())
	}
	for _, n := range g.Nodes() {
		if g.Degree(n) != 4 {
			t.Fatalf("Q4 degree of %d = %d, want 4", n, g.Degree(n))
		}
	}
	if !g.IsConnected() {
		t.Fatal("hypercube not connected")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(30, 0.3, rng)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if g.NumNodes() != 30 || !g.IsConnected() {
		t.Fatalf("G(30,0.3) = %v connected=%v", g, g.IsConnected())
	}
	if _, err := ErdosRenyi(10, 1.5, rng); !errors.Is(err, ErrBadParam) {
		t.Fatalf("bad p error = %v", err)
	}
	// p=0 with n>1 can never connect.
	if _, err := ErdosRenyi(5, 0, rng); !errors.Is(err, ErrGaveUp) {
		t.Fatalf("p=0 error = %v", err)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := RandomRegular(40, 2, rng)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	if !g.IsConnected() {
		t.Fatal("regular graph not connected")
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("max degree = %d, want <= 4", g.MaxDegree())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := PreferentialAttachment(50, 2, rng)
	if err != nil {
		t.Fatalf("PreferentialAttachment: %v", err)
	}
	if g.NumNodes() != 50 || !g.IsConnected() {
		t.Fatalf("PA graph = %v connected=%v", g, g.IsConnected())
	}
	// Power-law-ish: the max degree should dominate the minimum clearly.
	if g.MaxDegree() < 3*g.MinDegree() {
		t.Fatalf("degrees look uniform: max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
}

func TestTwoCliquesBridge(t *testing.T) {
	g, err := TwoCliquesBridge(5)
	if err != nil {
		t.Fatalf("TwoCliquesBridge: %v", err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", g.NumNodes())
	}
	if g.NumEdges() != 2*10+1 {
		t.Fatalf("edges = %d, want 21", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("not connected")
	}
}

// TestByNameAll guards the Names()/ByName contract both ways: every
// advertised name must construct (at several sizes, so a size-mapping bug in
// one arm cannot hide), and the unknown-name error must name the valid set —
// CLIs print it verbatim as their only discoverability aid.
func TestByNameAll(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, name := range names {
		for _, n := range []int{8, 20, 64} {
			g, err := ByName(name, n, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("ByName(%q, %d): %v", name, n, err)
			}
			if g.NumNodes() < 2 {
				t.Fatalf("ByName(%q, %d) produced %d nodes", name, n, g.NumNodes())
			}
			if !g.IsConnected() {
				t.Fatalf("ByName(%q, %d) not connected", name, n)
			}
		}
	}
	_, err := ByName("no-such-generator", 10, rand.New(rand.NewSource(7)))
	if !errors.Is(err, ErrBadParam) {
		t.Fatalf("unknown name error = %v, want ErrBadParam", err)
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention valid generator %q", err, name)
		}
	}
}

func TestNodeIDsAreDense(t *testing.T) {
	// Generators other than TwoCliquesBridge use dense IDs from 0.
	g, err := Path(4)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	want := []graph.NodeID{0, 1, 2, 3}
	got := g.Nodes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", got, want)
		}
	}
}

// TestGeneratorsDeterministic pins seed-determinism for every generator:
// equal seeds must produce identical graphs (a map-iteration-order bug here
// once made whole experiment tables wobble).
func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 24, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		b, err := ByName(name, 24, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if !a.Equal(b) {
			t.Fatalf("generator %q is not seed-deterministic", name)
		}
	}
}
