package scenario

import (
	"reflect"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

// testParams keeps the unit tests fast while still crossing several wave
// boundaries for every scenario.
func testParams() Params { return Params{Events: 120} }

func TestNamesMatchRegistry(t *testing.T) {
	names := Names()
	want := []string{NameFlashCrowd, NamePartition, NameReadMix, NameRegionFail, NameSlowDrip}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, name := range names {
		sc, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if sc.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, sc.Name)
		}
		if sc.Description == "" || sc.Workload == "" {
			t.Fatalf("%s: missing description or workload", name)
		}
		d := sc.Defaults
		if d.N < 8 || d.Events < 1 || d.Wave < 1 || d.Rate <= 0 || d.Seed == 0 {
			t.Fatalf("%s: degenerate defaults %+v", name, d)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown scenario")
	}
}

func TestCompileDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := Compile(name, testParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Compile(name, testParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !a.Genesis.Equal(b.Genesis) {
			t.Fatalf("%s: genesis not deterministic", name)
		}
		if a.Script() != b.Script() {
			t.Fatalf("%s: schedule not deterministic", name)
		}
		c, err := Compile(name, Params{Events: 120, Seed: a.Params.Seed + 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Script() == c.Script() {
			t.Fatalf("%s: schedule ignores the seed", name)
		}
	}
}

func TestScriptRoundTrip(t *testing.T) {
	for _, name := range Names() {
		comp, err := Compile(name, testParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		parsed, err := adversary.ParseScript(comp.Script())
		if err != nil {
			t.Fatalf("%s: ParseScript: %v", name, err)
		}
		if !reflect.DeepEqual(parsed, comp.Events) {
			t.Fatalf("%s: script round trip diverged", name)
		}
	}
}

// TestEventsValidAndWavesConflictFree replays every scenario's schedule
// against a fresh bookkeeping graph and asserts the two guarantees consumers
// rely on: each event is applicable given its prefix (inserts of fresh IDs
// with alive attachments, deletions of alive nodes), and no wave contains a
// pair the serving batcher would defer (delete of a node inserted or
// attached-to in the same wave, attachment to a node deleted in the same
// wave, duplicate IDs).
func TestEventsValidAndWavesConflictFree(t *testing.T) {
	for _, name := range Names() {
		comp, err := Compile(name, testParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		book := comp.Genesis.Clone()
		var deletions int
		for wi, wave := range comp.Waves() {
			touched := make(map[graph.NodeID]struct{})
			deleted := make(map[graph.NodeID]struct{})
			for _, ev := range wave {
				switch ev.Kind {
				case adversary.Insert:
					if ev.Node < IDBase {
						t.Fatalf("%s wave %d: insert reuses low ID %d", name, wi, ev.Node)
					}
					if len(ev.Neighbors) == 0 {
						t.Fatalf("%s wave %d: insert %d has no attachments", name, wi, ev.Node)
					}
					if err := book.AddNode(ev.Node); err != nil {
						t.Fatalf("%s wave %d: insert %d: %v", name, wi, ev.Node, err)
					}
					for _, w := range ev.Neighbors {
						if _, dead := deleted[w]; dead {
							t.Fatalf("%s wave %d: insert %d attaches to %d deleted in the same wave", name, wi, ev.Node, w)
						}
						if err := book.AddEdge(ev.Node, w); err != nil {
							t.Fatalf("%s wave %d: insert %d edge to %d: %v", name, wi, ev.Node, w, err)
						}
						touched[w] = struct{}{}
					}
					touched[ev.Node] = struct{}{}
				case adversary.Delete:
					if _, conflict := touched[ev.Node]; conflict {
						t.Fatalf("%s wave %d: delete %d conflicts with an earlier event of the wave", name, wi, ev.Node)
					}
					if _, err := book.RemoveNode(ev.Node); err != nil {
						t.Fatalf("%s wave %d: delete %d: %v", name, wi, ev.Node, err)
					}
					deleted[ev.Node] = struct{}{}
					deletions++
				default:
					t.Fatalf("%s wave %d: bad kind %v", name, wi, ev.Kind)
				}
			}
			if len(wave) > comp.Params.Wave {
				t.Fatalf("%s: wave %d has %d events, cap %d", name, wi, len(wave), comp.Params.Wave)
			}
		}
		if deletions == 0 {
			t.Fatalf("%s: schedule has no deletions — not much of a chaos scenario", name)
		}
		if book.NumNodes() < 8 {
			t.Fatalf("%s: bookkeeping graph shrank to %d nodes", name, book.NumNodes())
		}
	}
}

// TestStreamUnbounded pins the soak-mode contract: a stream keeps producing
// valid events far past Params.Events without exhausting its graph.
func TestStreamUnbounded(t *testing.T) {
	for _, name := range Names() {
		st, err := NewStream(name, testParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 6 * st.Params().Events
		for i := 0; i < total; i++ {
			st.Next()
		}
		if st.Emitted() != total {
			t.Fatalf("%s: emitted %d, want %d", name, st.Emitted(), total)
		}
		if n := st.book.NumNodes(); n < 8 {
			t.Fatalf("%s: alive floor breached after long run: %d nodes", name, n)
		}
	}
}

// TestScenarioShapes spot-checks each scenario's signature behavior so a
// refactor can't quietly turn one shape into another.
func TestScenarioShapes(t *testing.T) {
	compiled := make(map[string]*Compiled)
	for _, name := range Names() {
		comp, err := Compile(name, testParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compiled[name] = comp
	}

	// Flash crowd: inserts dominate and attachments concentrate on a small
	// anchor region of the genesis graph.
	fc := compiled[NameFlashCrowd]
	targets := make(map[graph.NodeID]struct{})
	inserts := 0
	for _, ev := range fc.Events {
		if ev.Kind != adversary.Insert {
			continue
		}
		inserts++
		for _, w := range ev.Neighbors {
			targets[w] = struct{}{}
		}
	}
	if inserts < len(fc.Events)*2/3 {
		t.Fatalf("flashcrowd: only %d/%d inserts", inserts, len(fc.Events))
	}
	if len(targets) > max(4, fc.Params.N/4) {
		t.Fatalf("flashcrowd: %d distinct attachment targets — the crowd is not anchored", len(targets))
	}
	for v := range targets {
		if !fc.Genesis.HasNode(v) {
			t.Fatalf("flashcrowd: attachment target %d is not a genesis region member", v)
		}
	}

	// Regional failure: deletions arrive in correlated runs (some wave is
	// all-deletions), and both kinds appear in bulk.
	rf := compiled[NameRegionFail]
	allDeleteWave := false
	for _, wave := range rf.Waves() {
		deletes := 0
		for _, ev := range wave {
			if ev.Kind == adversary.Delete {
				deletes++
			}
		}
		if len(wave) == rf.Params.Wave && deletes == len(wave) {
			allDeleteWave = true
		}
	}
	if !allDeleteWave {
		t.Fatal("regionfail: no all-deletion wave — failures are not correlated")
	}

	// Partition churn: every deleted node is either a genesis footprint
	// member or a scenario-inserted rebuild; genesis deletions stay inside
	// one BFS ball (the footprint).
	pc := compiled[NamePartition]
	foot := ball(pc.Genesis, pc.Genesis.Nodes()[0], 2, max(4, pc.Params.N/4))
	inFoot := make(map[graph.NodeID]struct{}, len(foot))
	for _, v := range foot {
		inFoot[v] = struct{}{}
	}
	for _, ev := range pc.Events {
		if ev.Kind != adversary.Delete || ev.Node >= IDBase {
			continue
		}
		if _, ok := inFoot[ev.Node]; !ok {
			t.Fatalf("partition: deleted genesis node %d outside the footprint", ev.Node)
		}
	}

	// Slow drip: single-event waves, and every deletion targets the current
	// bookkeeping max degree (checked by replay).
	sd := compiled[NameSlowDrip]
	if sd.Params.Wave != 1 {
		t.Fatalf("slowdrip: wave = %d, want 1", sd.Params.Wave)
	}
	book := sd.Genesis.Clone()
	for i, ev := range sd.Events {
		if ev.Kind == adversary.Delete {
			if got, want := book.Degree(ev.Node), book.MaxDegree(); got != want {
				t.Fatalf("slowdrip event %d: deleted degree-%d node, max degree is %d", i, got, want)
			}
		}
		applyRaw(t, book, ev)
	}

	// Read mix: deletions only ever remove scenario-owned nodes, and the
	// scenario advertises interleaved reads.
	rm := compiled[NameReadMix]
	if rm.Scenario.ReadsPerWave == 0 {
		t.Fatal("readmix: ReadsPerWave = 0")
	}
	for _, ev := range rm.Events {
		if ev.Kind == adversary.Delete && ev.Node < IDBase {
			t.Fatalf("readmix: deleted genesis node %d", ev.Node)
		}
	}
}

func applyRaw(t *testing.T, g *graph.Graph, ev adversary.Event) {
	t.Helper()
	switch ev.Kind {
	case adversary.Insert:
		if err := g.AddNode(ev.Node); err != nil {
			t.Fatalf("apply insert %d: %v", ev.Node, err)
		}
		for _, w := range ev.Neighbors {
			if err := g.AddEdge(ev.Node, w); err != nil {
				t.Fatalf("apply insert %d edge %d: %v", ev.Node, w, err)
			}
		}
	case adversary.Delete:
		if _, err := g.RemoveNode(ev.Node); err != nil {
			t.Fatalf("apply delete %d: %v", ev.Node, err)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewStream("nope", Params{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := NewStream(NameFlashCrowd, Params{N: 4}); err == nil {
		t.Fatal("tiny n accepted")
	}
	if _, err := NewStream(NameFlashCrowd, Params{Wave: -1}); err == nil {
		t.Fatal("negative wave accepted")
	}
	st, err := NewStream(NameFlashCrowd, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Params(), registry[NameFlashCrowd].Defaults; got != want {
		t.Fatalf("defaults not applied: got %+v want %+v", got, want)
	}
}
