// Package scenario is the chaos-scenario library: named, seeded, replayable
// serving incidents compiled down to the same adversary.Event schedules the
// rest of the repo already knows how to replay, shrink, and fuzz.
//
// Where internal/adversary supplies synthetic per-event attack policies
// (random churn, max-degree targeting, ...), a scenario is shaped like a real
// production incident: a flash crowd piling inserts onto one anchor region, a
// regional failure deleting a correlated cluster footprint, partition churn
// alternately tearing down and rebuilding the same region, a slow-drip
// targeted attack removing the highest-degree node at a low rate, or mixed
// read/heal traffic interleaving health and metrics queries with mutations.
//
// Every scenario is deterministic in (name, Params): the genesis topology
// comes from workload.ByName(sc.Workload, p.N, rand.New(rand.NewSource(
// p.Seed))) and the event stream from an rng seeded with p.Seed+1 — the same
// split the conformance matrix uses — so `xheal-serve -scenario X` and
// conformance.RunScenario walk identical schedules. Compile renders the
// schedule as adversary.EncodeScript text, which makes every scenario run
// replayable through xheal-sim -replay and ddmin-shrinkable by
// conformance.Shrink, exactly like any other trace artifact.
//
// Streams emit events in waves of Params.Wave events. Within a wave the
// generator never produces two events the serving batcher would consider
// conflicting (no deleting a node inserted or attached-to in the same wave,
// no attaching to a node already deleted — the bookkeeping graph drops
// deleted nodes immediately, so they can't be picked again): a wave submitted
// as one serving batch admits without deferral, and ChunkSchedule keeps waves
// whole for batched conformance runs. Validity needs no engine in the loop:
// healing never removes nodes other than the deleted one, so a bookkeeping
// graph that applies raw events tracks the engine's alive set exactly.
//
// The registry (Names, ByName) mirrors adversary.Names/ByName so CLIs and
// tests can enumerate scenarios the same way they enumerate adversaries.
package scenario
