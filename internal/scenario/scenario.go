package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// IDBase is the first node ID a scenario stream allocates for inserted
// nodes. It matches the adversary package's allocator base, far above any
// genesis ID, and stays below adversary.ClientStreamBase so scenario traffic
// and loadgen client traffic can share a daemon without colliding.
const IDBase graph.NodeID = 1 << 20

// Params sizes and paces a scenario. Zero fields are filled from the
// scenario's Defaults, so callers only override what they care about.
type Params struct {
	// N is the genesis topology size (workload.ByName semantics).
	N int
	// Events is how many mutation events Compile emits. Streams themselves
	// are unbounded — soak mode keeps calling Next past this count.
	Events int
	// Wave is the burst size: events per wave. Waves are internally
	// conflict-free, so a wave can be submitted as one serving batch.
	Wave int
	// Rate is the target sustained mutation rate in events/second for the
	// serving loadgen mode (0 = unpaced). Offline consumers ignore it.
	Rate float64
	// Seed derives both the genesis topology (Seed) and the event stream
	// (Seed+1), mirroring the conformance matrix's Cell convention.
	Seed int64
}

// withDefaults fills zero fields from d. Seed 0 is a valid explicit seed for
// rand.NewSource, but the registry defaults all use nonzero seeds, so zero
// means "use the default" here — the same convention the CLIs follow.
func (p Params) withDefaults(d Params) Params {
	if p.N == 0 {
		p.N = d.N
	}
	if p.Events == 0 {
		p.Events = d.Events
	}
	if p.Wave == 0 {
		p.Wave = d.Wave
	}
	if p.Rate == 0 {
		p.Rate = d.Rate
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// stepFunc emits the next event given the stream's bookkeeping state. The
// stream applies the event and enforces wave bookkeeping; the generator only
// chooses it.
type stepFunc func(*Stream) adversary.Event

// Scenario is one named chaos shape: a genesis topology family plus a
// seeded event-stream generator.
type Scenario struct {
	Name        string
	Description string
	// Workload names the genesis topology family (workload.ByName).
	Workload string
	// ReadsPerWave is how many health/metrics reads the serving loadgen
	// interleaves per mutation wave (mixed read/heal traffic); 0 = none.
	ReadsPerWave int
	// Defaults are the parameters a zero Params resolves to.
	Defaults Params

	start func(*Stream) stepFunc
}

// Stream is a running scenario instance: an unbounded, deterministic event
// source over a bookkeeping graph that tracks the engine's alive set.
type Stream struct {
	sc      *Scenario
	p       Params
	genesis *graph.Graph
	book    *graph.Graph
	rng     *rand.Rand
	next    graph.NodeID
	idx     int
	// touched holds nodes inserted or attached-to in the current wave:
	// deleting one of them in the same wave would be a same-batch conflict.
	touched map[graph.NodeID]struct{}
	step    stepFunc
}

// NewStream instantiates the named scenario. The returned stream yields an
// unbounded deterministic event sequence; Compile bounds it at p.Events.
func NewStream(name string, p Params) (*Stream, error) {
	sc, err := ByName(name)
	if err != nil {
		return nil, err
	}
	p = p.withDefaults(sc.Defaults)
	if p.N < 8 {
		return nil, fmt.Errorf("scenario %s: n=%d too small (min 8)", name, p.N)
	}
	if p.Wave < 1 || p.Events < 1 {
		return nil, fmt.Errorf("scenario %s: wave=%d events=%d must be positive", name, p.Wave, p.Events)
	}
	g0, err := workload.ByName(sc.Workload, p.N, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, fmt.Errorf("scenario %s genesis: %w", name, err)
	}
	s := &Stream{
		sc:      sc,
		p:       p,
		genesis: g0,
		book:    g0.Clone(),
		rng:     rand.New(rand.NewSource(p.Seed + 1)),
		next:    IDBase,
		touched: make(map[graph.NodeID]struct{}),
	}
	s.step = sc.start(s)
	return s, nil
}

// Scenario returns the scenario this stream instantiates.
func (s *Stream) Scenario() *Scenario { return s.sc }

// Params returns the fully resolved parameters.
func (s *Stream) Params() Params { return s.p }

// Genesis returns the pristine initial topology (not the bookkeeping copy).
// Callers must not mutate it.
func (s *Stream) Genesis() *graph.Graph { return s.genesis }

// Emitted returns how many events the stream has produced so far.
func (s *Stream) Emitted() int { return s.idx }

// Next emits the next event and applies it to the bookkeeping graph. Every
// event is valid by construction against an engine that has applied the
// whole prefix, and waves of Params.Wave consecutive events are free of
// same-batch conflicts.
func (s *Stream) Next() adversary.Event {
	if s.idx%s.p.Wave == 0 {
		clear(s.touched)
	}
	ev := s.step(s)
	s.apply(ev)
	s.idx++
	return ev
}

// apply folds the event into the bookkeeping graph and the wave conflict
// set. Generators must emit valid events; a violation here is a scenario
// bug, so it panics rather than limping into a diverging schedule.
func (s *Stream) apply(ev adversary.Event) {
	switch ev.Kind {
	case adversary.Insert:
		if err := s.book.AddNode(ev.Node); err != nil {
			panic(fmt.Sprintf("scenario %s: insert %d: %v", s.sc.Name, ev.Node, err))
		}
		s.touched[ev.Node] = struct{}{}
		for _, w := range ev.Neighbors {
			if err := s.book.AddEdge(ev.Node, w); err != nil {
				panic(fmt.Sprintf("scenario %s: insert %d edge to %d: %v", s.sc.Name, ev.Node, w, err))
			}
			s.touched[w] = struct{}{}
		}
	case adversary.Delete:
		if _, ok := s.touched[ev.Node]; ok {
			panic(fmt.Sprintf("scenario %s: delete %d conflicts with an insert in the same wave", s.sc.Name, ev.Node))
		}
		if _, err := s.book.RemoveNode(ev.Node); err != nil {
			panic(fmt.Sprintf("scenario %s: delete %d: %v", s.sc.Name, ev.Node, err))
		}
	default:
		panic(fmt.Sprintf("scenario %s: bad event kind %v", s.sc.Name, ev.Kind))
	}
}

// waveIndex is the zero-based index of the wave currently being emitted.
func (s *Stream) waveIndex() int { return s.idx / s.p.Wave }

// isTouched reports whether deleting v now would conflict with an earlier
// event of the same wave.
func (s *Stream) isTouched(v graph.NodeID) bool {
	_, ok := s.touched[v]
	return ok
}

// allocID hands out a fresh node ID; scenario IDs never collide with genesis
// or previously deleted nodes.
func (s *Stream) allocID() graph.NodeID {
	id := s.next
	s.next++
	return id
}

func (s *Stream) insertEvent(nbrs []graph.NodeID) adversary.Event {
	return adversary.Event{Kind: adversary.Insert, Node: s.allocID(), Neighbors: nbrs}
}

func deleteEvent(v graph.NodeID) adversary.Event {
	return adversary.Event{Kind: adversary.Delete, Node: v}
}

// attachSet picks up to k distinct alive attachment targets from pool (nil
// pool = every alive node). Deleted nodes fall out of the bookkeeping graph,
// so filtering on HasNode keeps the wave conflict-free. At least one target
// is always returned: the whole-graph fallback scan can only come up empty
// if the bookkeeping graph itself is empty, which the generators' alive
// floors rule out.
func (s *Stream) attachSet(k int, pool []graph.NodeID) []graph.NodeID {
	if pool == nil {
		pool = s.book.Nodes()
	}
	out := make([]graph.NodeID, 0, k)
	seen := make(map[graph.NodeID]struct{}, k)
	for tries := 0; tries < 16*k && len(out) < k; tries++ {
		v := pool[s.rng.Intn(len(pool))]
		if !s.book.HasNode(v) {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	if len(out) == 0 {
		for _, v := range s.book.Nodes() {
			out = append(out, v)
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pickAliveFrom returns a uniformly random pool member that is alive and
// passes keep (nil = no filter), retrying then falling back to a scan so a
// crowded exclusion set degrades to determinism, not failure.
func (s *Stream) pickAliveFrom(pool []graph.NodeID, keep func(graph.NodeID) bool) (graph.NodeID, bool) {
	if len(pool) == 0 {
		return 0, false
	}
	ok := func(v graph.NodeID) bool {
		return s.book.HasNode(v) && (keep == nil || keep(v))
	}
	for tries := 0; tries < 32; tries++ {
		if v := pool[s.rng.Intn(len(pool))]; ok(v) {
			return v, true
		}
	}
	for _, v := range pool {
		if ok(v) {
			return v, true
		}
	}
	return 0, false
}

// Compiled is a fully materialized scenario run: genesis plus the exact
// event schedule, ready for lockstep conformance, corpus generation, or
// script export.
type Compiled struct {
	Scenario *Scenario
	Params   Params
	Genesis  *graph.Graph
	Events   []adversary.Event
}

// Compile materializes Params.Events events of the named scenario.
func Compile(name string, p Params) (*Compiled, error) {
	st, err := NewStream(name, p)
	if err != nil {
		return nil, err
	}
	events := make([]adversary.Event, 0, st.p.Events)
	for i := 0; i < st.p.Events; i++ {
		events = append(events, st.Next())
	}
	return &Compiled{Scenario: st.sc, Params: st.p, Genesis: st.genesis, Events: events}, nil
}

// Script renders the schedule in the adversary.EncodeScript line format —
// the replayable, ddmin-shrinkable trace representation.
func (c *Compiled) Script() string { return adversary.EncodeScript(c.Events) }

// Waves splits the schedule into its conflict-free bursts of Params.Wave
// events (the last wave may be shorter).
func (c *Compiled) Waves() [][]adversary.Event {
	var waves [][]adversary.Event
	for i := 0; i < len(c.Events); i += c.Params.Wave {
		end := min(i+c.Params.Wave, len(c.Events))
		waves = append(waves, c.Events[i:end])
	}
	return waves
}

// Scenario names, sorted.
const (
	NameFlashCrowd = "flashcrowd"
	NamePartition  = "partition"
	NameReadMix    = "readmix"
	NameRegionFail = "regionfail"
	NameSlowDrip   = "slowdrip"
)

// Names returns the registered scenario names, sorted — the scenario-side
// mirror of adversary.Names and workload.Names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName looks up a registered scenario.
func ByName(name string) (*Scenario, error) {
	sc, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (valid: %v)", name, Names())
	}
	return sc, nil
}
