package scenario

import (
	"sort"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
)

// registry holds the five chaos shapes. Keep Defaults CI-sized: the smoke
// consumers (conformance.RunScenario -short, the serve scenario smoke) run
// every entry per PR, so defaults must finish in seconds; soak scales them
// up via flags.
var registry = map[string]*Scenario{
	NameFlashCrowd: {
		Name:        NameFlashCrowd,
		Description: "correlated insert burst: a crowd of new nodes piles onto one BFS-ball anchor region, with light churn of earlier arrivals",
		Workload:    "regular",
		Defaults:    Params{N: 64, Events: 240, Wave: 16, Rate: 400, Seed: 11},
		start:       flashcrowdStart,
	},
	NameRegionFail: {
		Name:        NameRegionFail,
		Description: "regional failure: alternating waves delete a correlated cluster footprint (a BFS ball) and insert replacements attached to survivors",
		Workload:    "grid",
		Defaults:    Params{N: 81, Events: 240, Wave: 12, Rate: 300, Seed: 12},
		start:       regionfailStart,
	},
	NamePartition: {
		Name:        NamePartition,
		Description: "partition churn: one fixed footprint is repeatedly torn down and rebuilt, reattaching through a protected boundary that never fails",
		Workload:    "regular",
		Defaults:    Params{N: 64, Events: 240, Wave: 10, Rate: 300, Seed: 13},
		start:       partitionStart,
	},
	NameSlowDrip: {
		Name:        NameSlowDrip,
		Description: "slow-drip targeted attack: the adversary deletes the highest-degree node one event at a time, topping the graph back up at a floor",
		Workload:    "powerlaw",
		Defaults:    Params{N: 64, Events: 120, Wave: 1, Rate: 40, Seed: 14},
		start:       slowdripStart,
	},
	NameReadMix: {
		Name:         NameReadMix,
		Description:  "mixed read/heal traffic: client-style insert/delete churn with health and metrics queries interleaved into every wave",
		Workload:     "er",
		ReadsPerWave: 4,
		Defaults:     Params{N: 64, Events: 240, Wave: 8, Rate: 250, Seed: 15},
		start:        readmixStart,
	},
}

// ball returns the BFS ball of the given radius around src in g, nearest
// first (ties broken by node ID so map iteration order can't leak in),
// truncated to limit nodes.
func ball(g *graph.Graph, src graph.NodeID, radius, limit int) []graph.NodeID {
	dist := g.BFSFrom(src)
	out := make([]graph.NodeID, 0, len(dist))
	for v, d := range dist {
		if d <= radius {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if dist[out[i]] != dist[out[j]] {
			return dist[out[i]] < dist[out[j]]
		}
		return out[i] < out[j]
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// flashcrowdStart: a crowd converges on one anchor region. Every insert
// attaches to 1–3 members of a fixed radius-2 BFS ball around a random
// anchor; region members are never deleted (the region is the event's focal
// point), but ~15% of events churn out an earlier crowd arrival — the
// flash-crowd clients that leave again.
func flashcrowdStart(s *Stream) stepFunc {
	nodes := s.book.Nodes()
	anchor := nodes[s.rng.Intn(len(nodes))]
	region := ball(s.book, anchor, 2, max(4, s.p.N/4))
	var crowd []graph.NodeID
	return func(s *Stream) adversary.Event {
		if len(crowd) > 0 && s.rng.Float64() < 0.15 {
			if v, ok := s.pickAliveFrom(crowd, func(v graph.NodeID) bool { return !s.isTouched(v) }); ok {
				for i, c := range crowd {
					if c == v {
						crowd = append(crowd[:i], crowd[i+1:]...)
						break
					}
				}
				return deleteEvent(v)
			}
		}
		ev := s.insertEvent(s.attachSet(1+s.rng.Intn(3), region))
		crowd = append(crowd, ev.Node)
		return ev
	}
}

// regionfailStart: alternating failure and recovery waves. Even waves pick a
// fresh BFS-ball footprint around a random center and delete its members
// (down to an alive floor); odd waves insert replacement nodes attached to
// two survivors each — the orchestration layer refilling capacity after a
// rack loss.
func regionfailStart(s *Stream) stepFunc {
	floor := max(8, s.p.N/3)
	var pending []graph.NodeID
	return func(s *Stream) adversary.Event {
		if s.waveIndex()%2 == 0 && s.book.NumNodes() > floor {
			if len(pending) == 0 {
				if c, ok := s.pickAliveFrom(s.book.Nodes(), nil); ok {
					pending = ball(s.book, c, 2, max(4, s.p.N/6))
				}
			}
			for len(pending) > 0 {
				v := pending[0]
				pending = pending[1:]
				if s.book.HasNode(v) && !s.isTouched(v) && s.book.NumNodes() > floor {
					return deleteEvent(v)
				}
			}
		}
		return s.insertEvent(s.attachSet(2, nil))
	}
}

// partitionStart: the same footprint flaps. A fixed BFS ball around the
// smallest genesis node is the partitioned region; its outside boundary is
// protected (never deleted) so the rebuild always has somewhere to attach.
// Even waves tear footprint members down, odd waves insert new members wired
// to the boundary and surviving footprint — membership churns, locality
// doesn't.
func partitionStart(s *Stream) stepFunc {
	nodes := s.book.Nodes()
	footprint := ball(s.book, nodes[0], 2, max(4, s.p.N/4))
	inFoot := make(map[graph.NodeID]struct{}, len(footprint))
	for _, v := range footprint {
		inFoot[v] = struct{}{}
	}
	boundarySet := make(map[graph.NodeID]struct{})
	for _, v := range footprint {
		for _, w := range s.book.Neighbors(v) {
			if _, in := inFoot[w]; !in {
				boundarySet[w] = struct{}{}
			}
		}
	}
	boundary := make([]graph.NodeID, 0, len(boundarySet))
	for v := range boundarySet {
		boundary = append(boundary, v)
	}
	sort.Slice(boundary, func(i, j int) bool { return boundary[i] < boundary[j] })
	return func(s *Stream) adversary.Event {
		if s.waveIndex()%2 == 0 {
			for i, v := range footprint {
				if s.book.HasNode(v) && !s.isTouched(v) {
					footprint = append(footprint[:i], footprint[i+1:]...)
					return deleteEvent(v)
				}
			}
		}
		pool := append(append([]graph.NodeID(nil), boundary...), footprint...)
		ev := s.insertEvent(s.attachSet(1+s.rng.Intn(2), pool))
		footprint = append(footprint, ev.Node)
		return ev
	}
}

// slowdripStart: the omniscient adversary's patient variant. Each event
// deletes the highest-degree alive node of the bookkeeping graph (smallest
// ID on ties) until the alive floor, then inserts cheap replacements so a
// soak run drips forever. Wave defaults to 1: this attack is low-rate by
// definition.
func slowdripStart(s *Stream) stepFunc {
	floor := max(8, s.p.N/2)
	return func(s *Stream) adversary.Event {
		if s.book.NumNodes() > floor {
			best, bestDeg := graph.NodeID(0), -1
			for _, v := range s.book.Nodes() {
				if s.isTouched(v) {
					continue
				}
				if d := s.book.Degree(v); d > bestDeg {
					best, bestDeg = v, d
				}
			}
			if bestDeg >= 0 {
				return deleteEvent(best)
			}
		}
		return s.insertEvent(s.attachSet(2, nil))
	}
}

// readmixStart: steady client churn shaped like adversary.ClientStream —
// delete only nodes this stream inserted, never genesis — with
// ReadsPerWave health/metrics queries folded into each wave by the serving
// consumer. The mutation side is what conformance checks; the read side
// only exists over HTTP.
func readmixStart(s *Stream) stepFunc {
	var owned []graph.NodeID
	return func(s *Stream) adversary.Event {
		if len(owned) > 0 && s.rng.Float64() < 0.45 {
			if v, ok := s.pickAliveFrom(owned, func(v graph.NodeID) bool { return !s.isTouched(v) }); ok {
				for i, c := range owned {
					if c == v {
						owned = append(owned[:i], owned[i+1:]...)
						break
					}
				}
				return deleteEvent(v)
			}
		}
		ev := s.insertEvent(s.attachSet(1+s.rng.Intn(3), nil))
		owned = append(owned, ev.Node)
		return ev
	}
}
