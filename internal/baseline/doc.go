// Package baseline implements the repair algorithms Xheal is measured
// against, behind one shared Healer interface: style-faithful
// reimplementations of the tree repairs of Forgiving Tree (Hayes et al.,
// PODC 2008) and Forgiving Graph (Hayes/Saia/Trehan, PODC 2009) — the
// related work the paper improves on — plus naive healers (cycle, star,
// clique, none) that bracket the degree/expansion trade-off space the
// paper's introduction discusses.
//
// The comparisons matter because each baseline concedes exactly one of the
// properties Xheal keeps: tree-based repairs hold degrees down but collapse
// expansion to O(1/n) (the paper's motivating star attack); the clique
// healer holds expansion but blows up degrees; "none" concedes
// connectivity itself. Driving an identical adversarial schedule through
// every healer — the harness's star-attack and churn experiments, and the
// Compare function on the public facade — turns the paper's Table 1 into
// measured numbers.
//
// New constructs any healer by name (Names lists them, Xheal first); the
// Xheal entry wraps internal/core, so the baseline suite and the real
// algorithm run under the same event-loop contract: Insert and Delete per
// timestep, Graph for the healed topology.
package baseline
