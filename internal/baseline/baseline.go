package baseline

import (
	"errors"
	"fmt"
	"sort"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
)

// ErrUnknownHealer is returned by New for unrecognized names.
var ErrUnknownHealer = errors.New("baseline: unknown healer")

// Healer is a self-healing algorithm driven by adversarial events. Each
// healer owns its copy of the evolving network.
type Healer interface {
	// Name identifies the algorithm in tables and logs.
	Name() string
	// Graph returns the healer's current network. Live view; read-only.
	Graph() *graph.Graph
	// Insert applies an adversarial insertion (no healing required by any
	// algorithm in this suite).
	Insert(u graph.NodeID, nbrs []graph.NodeID) error
	// Delete applies an adversarial deletion and heals.
	Delete(v graph.NodeID) error
}

// Healer names accepted by New.
const (
	NameXheal          = "xheal"
	NameForgivingTree  = "forgiving-tree"
	NameForgivingGraph = "forgiving-graph"
	NameCycle          = "cycle"
	NameStar           = "star"
	NameClique         = "clique"
	NameNone           = "none"
)

// Names returns all healer names, Xheal first.
func Names() []string {
	return []string{
		NameXheal, NameForgivingTree, NameForgivingGraph,
		NameCycle, NameStar, NameClique, NameNone,
	}
}

// New constructs the named healer over a copy of g0. kappa and seed are used
// by Xheal and ignored by the baselines.
func New(name string, g0 *graph.Graph, kappa int, seed int64) (Healer, error) {
	switch name {
	case NameXheal:
		return NewXheal(g0, kappa, seed)
	case NameForgivingTree:
		return newRepairHealer(name, g0, treeRepair), nil
	case NameForgivingGraph:
		return newRepairHealer(name, g0, balancedTreeRepair), nil
	case NameCycle:
		return newRepairHealer(name, g0, cycleRepair), nil
	case NameStar:
		return newRepairHealer(name, g0, starRepair), nil
	case NameClique:
		return newRepairHealer(name, g0, cliqueRepair), nil
	case NameNone:
		return newRepairHealer(name, g0, func(*graph.Graph, []graph.NodeID) {}), nil
	}
	return nil, fmt.Errorf("%q: %w", name, ErrUnknownHealer)
}

// Xheal adapts core.State to the Healer interface.
type Xheal struct {
	state *core.State
}

var _ Healer = (*Xheal)(nil)

// NewXheal returns the Xheal healer over a copy of g0.
func NewXheal(g0 *graph.Graph, kappa int, seed int64) (*Xheal, error) {
	s, err := core.NewState(core.Config{Kappa: kappa, Seed: seed}, g0)
	if err != nil {
		return nil, err
	}
	return &Xheal{state: s}, nil
}

// Name implements Healer.
func (x *Xheal) Name() string { return NameXheal }

// Graph implements Healer.
func (x *Xheal) Graph() *graph.Graph { return x.state.Graph() }

// Insert implements Healer.
func (x *Xheal) Insert(u graph.NodeID, nbrs []graph.NodeID) error {
	return x.state.InsertNode(u, nbrs)
}

// Delete implements Healer.
func (x *Xheal) Delete(v graph.NodeID) error { return x.state.DeleteNode(v) }

// State exposes the underlying core state for metric collection.
func (x *Xheal) State() *core.State { return x.state }

// repairFn rewires the former neighbors of a deleted node.
type repairFn func(g *graph.Graph, nbrs []graph.NodeID)

// repairHealer is a baseline healer defined by a repair function.
type repairHealer struct {
	name   string
	g      *graph.Graph
	repair repairFn
}

var _ Healer = (*repairHealer)(nil)

func newRepairHealer(name string, g0 *graph.Graph, fn repairFn) *repairHealer {
	return &repairHealer{name: name, g: g0.Clone(), repair: fn}
}

func (h *repairHealer) Name() string { return h.name }

func (h *repairHealer) Graph() *graph.Graph { return h.g }

func (h *repairHealer) Insert(u graph.NodeID, nbrs []graph.NodeID) error {
	if h.g.HasNode(u) {
		return fmt.Errorf("baseline %s: insert %d: %w", h.name, u, graph.ErrNodeExists)
	}
	if err := h.g.AddNode(u); err != nil {
		return err
	}
	for _, w := range nbrs {
		if err := h.g.AddEdge(u, w); err != nil {
			return err
		}
	}
	return nil
}

func (h *repairHealer) Delete(v graph.NodeID) error {
	nbrs, err := h.g.RemoveNode(v)
	if err != nil {
		return err
	}
	h.repair(h.g, nbrs)
	return nil
}

// treeRepair is the Forgiving-Tree-style repair: the deleted node is
// replaced by a balanced binary tree over its former neighbors (the PODC'08
// reconstruction-tree shape, collapsed onto real nodes). Tree repairs keep
// degrees low but destroy expansion: deleting a star center leaves a tree
// with h = O(1/n) — exactly the weakness the Xheal paper identifies.
func treeRepair(g *graph.Graph, nbrs []graph.NodeID) {
	if len(nbrs) < 2 {
		return
	}
	sorted := append([]graph.NodeID(nil), nbrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		g.EnsureEdge(sorted[(i-1)/2], sorted[i])
	}
}

// balancedTreeRepair is the Forgiving-Graph-style repair: also a binary
// tree, but positions are assigned by current degree (lowest-degree nodes
// highest in the tree), the PODC'09 heuristic that keeps the multiplicative
// degree increase at most 3.
func balancedTreeRepair(g *graph.Graph, nbrs []graph.NodeID) {
	if len(nbrs) < 2 {
		return
	}
	sorted := append([]graph.NodeID(nil), nbrs...)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := g.Degree(sorted[i]), g.Degree(sorted[j])
		if di != dj {
			return di < dj
		}
		return sorted[i] < sorted[j]
	})
	for i := 1; i < len(sorted); i++ {
		g.EnsureEdge(sorted[(i-1)/2], sorted[i])
	}
}

// cycleRepair joins the former neighbors in a cycle: minimum degree increase
// (+2), maximum diameter damage.
func cycleRepair(g *graph.Graph, nbrs []graph.NodeID) {
	if len(nbrs) < 2 {
		return
	}
	sorted := append([]graph.NodeID(nil), nbrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < len(sorted); i++ {
		g.EnsureEdge(sorted[i], sorted[(i+1)%len(sorted)])
	}
}

// starRepair attaches every former neighbor to the smallest-ID one:
// minimum distance damage, worst-case degree increase.
func starRepair(g *graph.Graph, nbrs []graph.NodeID) {
	if len(nbrs) < 2 {
		return
	}
	sorted := append([]graph.NodeID(nil), nbrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	hub := sorted[0]
	for _, w := range sorted[1:] {
		g.EnsureEdge(hub, w)
	}
}

// cliqueRepair joins all pairs of former neighbors: the expansion-optimal,
// degree-profligate extreme.
func cliqueRepair(g *graph.Graph, nbrs []graph.NodeID) {
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			g.EnsureEdge(nbrs[i], nbrs[j])
		}
	}
}
