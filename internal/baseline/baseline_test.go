package baseline

import (
	"errors"
	"testing"

	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

func mustStar(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	g, err := workload.Star(leaves)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	return g
}

func TestNewAllNames(t *testing.T) {
	g := mustStar(t, 6)
	for _, name := range Names() {
		h, err := New(name, g, 4, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if h.Name() != name {
			t.Fatalf("Name = %q, want %q", h.Name(), name)
		}
		if h.Graph().NumNodes() != g.NumNodes() {
			t.Fatalf("%q: graph not initialized", name)
		}
	}
	if _, err := New("bogus", g, 4, 1); !errors.Is(err, ErrUnknownHealer) {
		t.Fatalf("unknown healer error = %v", err)
	}
}

func TestHealersOwnTheirGraphs(t *testing.T) {
	g := mustStar(t, 5)
	h, err := New(NameCycle, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !g.HasNode(0) {
		t.Fatal("healer mutated the caller's graph")
	}
}

func TestTreeRepairShape(t *testing.T) {
	g := mustStar(t, 7)
	h, err := New(NameForgivingTree, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	healed := h.Graph()
	if !healed.IsConnected() {
		t.Fatal("tree repair disconnected the leaves")
	}
	// A tree over 7 nodes has exactly 6 edges.
	if healed.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6 (tree)", healed.NumEdges())
	}
	if healed.MaxDegree() > 3 {
		t.Fatalf("binary tree max degree = %d, want <= 3", healed.MaxDegree())
	}
}

func TestForgivingGraphPrefersLowDegree(t *testing.T) {
	// Node 1 is pre-loaded with extra edges; the FG repair should place it
	// low in the tree (fewer new edges) than a low-degree node.
	g := mustStar(t, 5)
	g.EnsureEdge(1, 2)
	g.EnsureEdge(1, 3)
	g.EnsureEdge(1, 4)
	h, err := New(NameForgivingGraph, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !h.Graph().IsConnected() {
		t.Fatal("FG repair disconnected")
	}
}

func TestCycleRepairDegrees(t *testing.T) {
	g := mustStar(t, 6)
	h, err := New(NameCycle, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	healed := h.Graph()
	for _, n := range healed.Nodes() {
		if healed.Degree(n) != 2 {
			t.Fatalf("cycle repair degree of %d = %d, want 2", n, healed.Degree(n))
		}
	}
}

func TestStarRepairHub(t *testing.T) {
	g := mustStar(t, 6)
	h, err := New(NameStar, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	healed := h.Graph()
	if healed.Degree(1) != 5 {
		t.Fatalf("hub degree = %d, want 5", healed.Degree(1))
	}
	d, err := healed.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if d != 2 {
		t.Fatalf("star repair diameter = %d, want 2", d)
	}
}

func TestCliqueRepairExpansion(t *testing.T) {
	g := mustStar(t, 8)
	h, err := New(NameClique, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	healed := h.Graph()
	if healed.NumEdges() != 8*7/2 {
		t.Fatalf("edges = %d, want %d", healed.NumEdges(), 8*7/2)
	}
}

func TestNoneHealerDisconnects(t *testing.T) {
	g := mustStar(t, 5)
	h, err := New(NameNone, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if h.Graph().IsConnected() {
		t.Fatal("none healer should not repair the star")
	}
}

// The paper's headline comparison: after deleting a star center, tree
// repairs give expansion O(1/n) while Xheal keeps it constant.
func TestStarAttackXhealVsTree(t *testing.T) {
	leaves := 16
	g := mustStar(t, leaves)

	tree, err := New(NameForgivingTree, g, 4, 1)
	if err != nil {
		t.Fatalf("New tree: %v", err)
	}
	xh, err := New(NameXheal, g, 4, 1)
	if err != nil {
		t.Fatalf("New xheal: %v", err)
	}
	for _, h := range []Healer{tree, xh} {
		if err := h.Delete(0); err != nil {
			t.Fatalf("%s delete: %v", h.Name(), err)
		}
	}
	hTree, err := cuts.EdgeExpansion(tree.Graph())
	if err != nil {
		t.Fatalf("tree expansion: %v", err)
	}
	hX, err := cuts.EdgeExpansion(xh.Graph())
	if err != nil {
		t.Fatalf("xheal expansion: %v", err)
	}
	if hX <= 2*hTree {
		t.Fatalf("xheal h=%v not clearly better than tree h=%v", hX, hTree)
	}
	if hX < 0.5 {
		t.Fatalf("xheal h=%v, want constant >= 0.5", hX)
	}
}

func TestInsertErrors(t *testing.T) {
	g := mustStar(t, 4)
	h, err := New(NameCycle, g, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.Insert(0, nil); err == nil {
		t.Fatal("inserting an existing node should fail")
	}
	if err := h.Insert(100, []graph.NodeID{1, 2}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !h.Graph().HasEdge(100, 1) {
		t.Fatal("insert edge missing")
	}
}

func TestXhealStateAccess(t *testing.T) {
	g := mustStar(t, 4)
	xh, err := NewXheal(g, 4, 1)
	if err != nil {
		t.Fatalf("NewXheal: %v", err)
	}
	if xh.State() == nil {
		t.Fatal("State() returned nil")
	}
	if err := xh.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := xh.State().CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
