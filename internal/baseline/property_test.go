package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// TestPropertyAllRepairingHealersKeepConnectivity: every healer except
// "none" must keep the network connected under pure-deletion attacks on a
// connected start (each repair reconnects the deleted node's neighbors).
func TestPropertyAllRepairingHealersKeepConnectivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g0 *graph.Graph
		var err error
		switch rng.Intn(3) {
		case 0:
			g0, err = workload.Star(5 + rng.Intn(10))
		case 1:
			g0, err = workload.Cycle(5 + rng.Intn(10))
		default:
			g0, err = workload.Complete(5 + rng.Intn(6))
		}
		if err != nil {
			return false
		}
		for _, name := range Names() {
			if name == NameNone {
				continue
			}
			h, err := New(name, g0, 4, seed)
			if err != nil {
				return false
			}
			local := rand.New(rand.NewSource(seed ^ 0xbeef))
			for step := 0; step < 6; step++ {
				nodes := h.Graph().Nodes()
				if len(nodes) <= 3 {
					break
				}
				if h.Delete(nodes[local.Intn(len(nodes))]) != nil {
					return false
				}
				if !h.Graph().IsConnected() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTreeRepairDegreeBound: the Forgiving-Tree-style repair adds at
// most 3 tree edges per node per repair (binary tree positions), so a
// single repair increases any degree by at most 3.
func TestPropertyTreeRepairDegreeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		leaves := 4 + rng.Intn(14)
		g0, err := workload.Star(leaves)
		if err != nil {
			return false
		}
		h, err := New(NameForgivingTree, g0, 4, seed)
		if err != nil {
			return false
		}
		before := make(map[graph.NodeID]int, leaves)
		for _, n := range h.Graph().Nodes() {
			before[n] = h.Graph().Degree(n)
		}
		if h.Delete(0) != nil {
			return false
		}
		for _, n := range h.Graph().Nodes() {
			if h.Graph().Degree(n) > before[n]+3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCycleRepairDegreeBound: the cycle repair adds at most 2 edges
// per neighbor per repair.
func TestPropertyCycleRepairDegreeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		leaves := 4 + rng.Intn(14)
		g0, err := workload.Star(leaves)
		if err != nil {
			return false
		}
		h, err := New(NameCycle, g0, 4, seed)
		if err != nil {
			return false
		}
		if h.Delete(0) != nil {
			return false
		}
		return h.Graph().MaxDegree() <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestHealersRejectBadDeletes covers the error path uniformly.
func TestHealersRejectBadDeletes(t *testing.T) {
	g0, err := workload.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		h, err := New(name, g0, 4, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if err := h.Delete(999); err == nil {
			t.Fatalf("%s: deleting a missing node should fail", name)
		}
	}
}
