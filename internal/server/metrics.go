package server

import (
	"fmt"
	"strings"
	"time"
)

// PrometheusText renders the serving counters and basic topology gauges in
// the Prometheus text exposition format (version 0.0.4) — hand-rolled on
// purpose: the repo takes no dependencies, and the format is lines.
func (s *Server) PrometheusText() string {
	s.mu.Lock()
	c := s.counters
	g := s.eng.Graph().Clone() // connectivity is computed outside the lock
	s.mu.Unlock()
	nodes, edges := g.NumNodes(), g.NumEdges()
	connected := 0
	if g.IsConnected() {
		connected = 1
	}
	c.EventsBacklogged = s.backlogged.Load()

	var b strings.Builder
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("xheal_serve_ticks_total", "Applied timesteps (batches).", float64(c.Ticks))
	counter("xheal_serve_events_applied_total", "Events applied across all ticks.", float64(c.EventsApplied))
	counter("xheal_serve_inserts_applied_total", "Insertions applied.", float64(c.InsertsApplied))
	counter("xheal_serve_deletes_applied_total", "Deletions applied (healed).", float64(c.DeletesApplied))
	counter("xheal_serve_events_rejected_total", "Events rejected with an error.", float64(c.EventsRejected))
	counter("xheal_serve_events_backlogged_total", "Submissions refused by queue backpressure.", float64(c.EventsBacklogged))
	counter("xheal_serve_events_deferred_total", "Tick-to-tick conflict deferrals.", float64(c.EventsDeferred))
	counter("xheal_serve_apply_seconds_total", "Cumulative engine time applying batches.", c.ApplySeconds)
	counter("xheal_serve_event_wait_seconds_total", "Cumulative submit-to-applied latency over applied events.", c.WaitSeconds)
	gauge("xheal_serve_batch_events_last", "Events in the most recent batch.", float64(c.BatchLast))
	gauge("xheal_serve_batch_events_max", "Largest batch applied so far.", float64(c.BatchMax))
	gauge("xheal_serve_queue_depth", "Events accepted but not yet applied.", float64(s.QueueDepth()))
	gauge("xheal_serve_nodes", "Alive nodes in the healed graph.", float64(nodes))
	gauge("xheal_serve_edges", "Edges in the healed graph.", float64(edges))
	gauge("xheal_serve_connected", "1 when the healed graph is connected.", float64(connected))
	gauge("xheal_serve_uptime_seconds", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	return b.String()
}
