package server

import (
	"time"

	"github.com/xheal/xheal/internal/obs"
)

// This file assembles the daemon's unified metrics registry (internal/obs):
// the serving counters, topology gauges, the serving histograms (tick
// latency, batch size, queue depth), and — when a per-wound recorder is
// attached — the repair span series (repair latency histogram, per-phase
// time totals, and the protocol cost ledger). GET /metrics renders it in
// the Prometheus text exposition format (version 0.0.4) — hand-rolled on
// purpose: the repo takes no dependencies, and the format is lines.

// buildRegistry registers every serving metric. Counters and gauges are
// pull closures evaluated at scrape time; histograms are the live
// instruments the tick loop observes into.
func (s *Server) buildRegistry() {
	reg := obs.NewRegistry()
	s.reg = reg

	c := func(read func(Counters) float64) func() float64 {
		return func() float64 { return read(s.Counters()) }
	}
	reg.Counter("xheal_serve_ticks_total", "Applied timesteps (batches).",
		c(func(c Counters) float64 { return float64(c.Ticks) }))
	reg.Counter("xheal_serve_events_applied_total", "Events applied across all ticks.",
		c(func(c Counters) float64 { return float64(c.EventsApplied) }))
	reg.Counter("xheal_serve_inserts_applied_total", "Insertions applied.",
		c(func(c Counters) float64 { return float64(c.InsertsApplied) }))
	reg.Counter("xheal_serve_deletes_applied_total", "Deletions applied (healed).",
		c(func(c Counters) float64 { return float64(c.DeletesApplied) }))
	reg.Counter("xheal_serve_events_rejected_total", "Events rejected with an error.",
		c(func(c Counters) float64 { return float64(c.EventsRejected) }))
	reg.Counter("xheal_serve_events_backlogged_total", "Submissions refused by queue backpressure.",
		c(func(c Counters) float64 { return float64(c.EventsBacklogged) }))
	reg.Counter("xheal_serve_events_deferred_total", "Tick-to-tick conflict deferrals.",
		c(func(c Counters) float64 { return float64(c.EventsDeferred) }))
	reg.Counter("xheal_serve_apply_seconds_total", "Cumulative engine time applying batches.",
		c(func(c Counters) float64 { return c.ApplySeconds }))
	reg.Counter("xheal_serve_event_wait_seconds_total", "Cumulative submit-to-applied latency over applied events.",
		c(func(c Counters) float64 { return c.WaitSeconds }))
	reg.Gauge("xheal_serve_batch_events_last", "Events in the most recent batch.",
		c(func(c Counters) float64 { return float64(c.BatchLast) }))
	reg.Gauge("xheal_serve_batch_events_max", "Largest batch applied so far.",
		c(func(c Counters) float64 { return float64(c.BatchMax) }))
	reg.Gauge("xheal_serve_queue_depth", "Events accepted but not yet applied.",
		func() float64 { return float64(s.QueueDepth()) })
	if s.live != nil {
		// Topology gauges from the incremental tracker: no lock on the apply
		// path, no clone, no traversal at scrape time.
		l := s.live
		reg.Gauge("xheal_serve_nodes", "Alive nodes in the healed graph.",
			func() float64 { return float64(l.tracker.Values().Nodes) })
		reg.Gauge("xheal_serve_edges", "Edges in the healed graph.",
			func() float64 { return float64(l.tracker.Values().Edges) })
		reg.Gauge("xheal_serve_connected", "1 when the healed graph is connected (last established verdict).",
			func() float64 {
				if l.tracker.Values().Connected {
					return 1
				}
				return 0
			})
		reg.Gauge("xheal_serve_connectivity_age_ticks", "Ticks since the connectivity verdict was established (0 = exact).",
			func() float64 { return float64(l.tracker.Values().ConnectivityAgeTicks) })
		reg.Gauge("xheal_serve_max_degree", "Maximum degree in the healed graph.",
			func() float64 { return float64(l.tracker.Values().MaxDegree) })
		reg.Gauge("xheal_serve_max_degree_ratio", "Max over alive nodes of deg_G/max(1, deg_G_prime).",
			func() float64 { return l.tracker.Values().MaxDegreeRatio })
		reg.Gauge("xheal_serve_lambda2", "Cached algebraic-connectivity estimate (warm-started Lanczos).",
			func() float64 { v, _, _ := l.l2.Value(); return v })
		reg.Gauge("xheal_serve_lambda2_age_ticks", "Ticks since the cached lambda2 was computed.",
			func() float64 {
				_, asOf, ok := l.l2.Value()
				if !ok {
					return -1
				}
				return float64(l.tracker.Values().Ticks - asOf)
			})
		reg.Counter("xheal_serve_lambda2_refreshes_total", "Lanczos runs performed by the refresher.",
			func() float64 { return float64(l.l2.Stats().Refreshes) })
		reg.Counter("xheal_serve_lambda2_warm_refreshes_total", "Lanczos runs warm-started from the previous Ritz vector.",
			func() float64 { return float64(l.l2.Stats().WarmRefreshes) })
		reg.Gauge("xheal_serve_stretch_sampled", "Sampled max-stretch estimate from the cached BFS trees (-1 until built).",
			func() float64 {
				v, _, ok := l.stretch.Value(l.tracker.Values().Ticks)
				if !ok {
					return -1
				}
				return v
			})
		reg.Counter("xheal_serve_tracker_audits_total", "Full-recomputation audits of the incremental tracker.",
			func() float64 { return float64(l.tracker.Values().Audits) })
		reg.Counter("xheal_serve_tracker_audit_failures_total", "Tracker audits that found a divergence.",
			func() float64 { return float64(l.tracker.Values().AuditFailures) })
	} else {
		reg.Gauge("xheal_serve_nodes", "Alive nodes in the healed graph.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.eng.Graph().NumNodes())
		})
		reg.Gauge("xheal_serve_edges", "Edges in the healed graph.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.eng.Graph().NumEdges())
		})
		reg.Gauge("xheal_serve_connected", "1 when the healed graph is connected.", func() float64 {
			// Clone under the lock, traverse outside it: connectivity is the
			// one scrape series that walks the whole graph.
			s.mu.Lock()
			g := s.eng.Graph().Clone()
			s.mu.Unlock()
			if g.IsConnected() {
				return 1
			}
			return 0
		})
	}
	reg.Gauge("xheal_serve_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	if s.cfg.Log != nil {
		reg.Counter("xheal_serve_events_not_durable_total", "Submissions refused with ErrNotDurable after an event-log failure.",
			c(func(c Counters) float64 { return float64(c.EventsNotDurable) }))
		reg.Gauge("xheal_serve_log_failed", "1 when the event log has failed and the daemon refuses writes.",
			func() float64 {
				if s.degraded.Load() {
					return 1
				}
				return 0
			})
	}
	if s.cfg.Checkpoints != nil {
		reg.Counter("xheal_serve_checkpoints_total", "Checkpoints saved by this process.",
			c(func(c Counters) float64 { return float64(c.Checkpoints) }))
		reg.Counter("xheal_serve_checkpoint_errors_total", "Checkpoint snapshot/save/compact failures.",
			c(func(c Counters) float64 { return float64(c.CheckpointErrors) }))
		reg.Gauge("xheal_serve_checkpoint_last_tick", "Tick watermark of the newest saved checkpoint.",
			c(func(c Counters) float64 { return float64(c.LastCheckpointTick) }))
		reg.Gauge("xheal_serve_checkpoint_last_events", "Event watermark of the newest saved checkpoint.",
			c(func(c Counters) float64 { return float64(c.LastCheckpointEvents) }))
	}

	s.tickHist = obs.MustHistogram(obs.LatencyBuckets())
	s.batchHist = obs.MustHistogram(obs.SizeBuckets())
	s.queueHist = obs.MustHistogram(obs.SizeBuckets())
	reg.Histogram("xheal_serve_tick_seconds", "Engine time applying one batch (tick latency).", s.tickHist)
	reg.Histogram("xheal_serve_batch_events", "Events per applied batch.", s.batchHist)
	reg.Histogram("xheal_serve_queue_depth_at_tick", "Queue depth observed after each applied batch.", s.queueHist)

	rec := s.cfg.Recorder
	if rec == nil {
		return
	}
	reg.Counter("xheal_repair_spans_total", "Per-wound repair spans emitted.",
		func() float64 { return float64(rec.Spans()) })
	reg.Counter("xheal_repair_spans_dropped_total", "Spans lost to span-log write failures.",
		func() float64 { return float64(rec.Dropped()) })
	reg.Counter("xheal_repair_rounds_total", "Protocol rounds across all repairs (engine cost ledger).",
		func() float64 { r, _ := rec.Ledger(); return float64(r) })
	reg.Counter("xheal_repair_messages_total", "Protocol messages across all repairs (engine cost ledger).",
		func() float64 { _, m := rec.Ledger(); return float64(m) })
	for _, p := range obs.Phases() {
		p := p
		reg.LabeledCounter("xheal_repair_phase_seconds_total",
			"Cumulative time between consecutive repair phase boundaries, by phase.",
			[]obs.Label{{Key: "phase", Value: p.String()}},
			func() float64 { return rec.PhaseSeconds(p) })
	}
	if h := rec.RepairHist(); h != nil {
		reg.Histogram("xheal_repair_seconds", "Per-wound repair latency (span admitted to settled).", h)
	}
}

// PrometheusText renders the unified registry in the Prometheus text
// exposition format.
func (s *Server) PrometheusText() string { return s.reg.PrometheusText() }

// Registry exposes the daemon's metric registry, so embedders can register
// their own series alongside the serving ones.
func (s *Server) Registry() *obs.Registry { return s.reg }
