package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"

	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
)

// This file is the server's durability seam: periodic checkpoints of the
// engine's complete state, log rotation/compaction anchored on them, and
// startup recovery (checkpoint + log-tail replay) with an optional
// recovery-identity check against a from-genesis replay.
//
// The ordering contract that makes acknowledged events crash-safe is
// log-before-ack (apply → log append → ack, all inside one tick) plus
// checkpoint-after-log: a checkpoint's Events watermark never runs ahead of
// the durable log, so recovery always finds the tail it needs.

// Engine names accepted by checkpoints and recovery.
const (
	EngineCore = "core"
	EngineDist = "dist"
)

// ErrRecoveryMismatch reports that a checkpoint store belongs to a
// differently-configured run (engine, κ, seed, or genesis graph) than the
// daemon resuming from it, or that the recovered state diverges from the
// from-genesis replay.
var ErrRecoveryMismatch = errors.New("server: recovery mismatch")

// GenesisDigest fingerprints an initial graph: hex(sha256) over the sorted
// node and edge lists (graph.Nodes and graph.Edges are canonical). Stamped
// into checkpoint envelopes (Config.GenesisDigest) and checked by Recover, so
// a daemon restarted under different workload flags fails loudly instead of
// resuming a checkpoint whose genesis its log headers would misdescribe.
func GenesisDigest(g *graph.Graph) string {
	h := sha256.New()
	for _, n := range g.Nodes() {
		fmt.Fprintf(h, "n%d;", n)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(h, "e%d-%d;", e.U, e.V)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// checkpointLocked snapshots the engine and saves a checkpoint, then rotates
// and compacts the event log behind it. Caller holds s.mu. Failures are
// counted, never fatal: the daemon keeps serving on its log alone, and the
// previous checkpoint still recovers.
func (s *Server) checkpointLocked() {
	store := s.cfg.Checkpoints
	if store == nil {
		return
	}
	snap, ok := s.eng.(Snapshotter)
	if !ok {
		return
	}
	// A broken log must not advance the checkpoint watermark: events past
	// the failure were applied but never made durable, and a checkpoint
	// covering them would paper over the loss.
	if s.logErr != nil {
		return
	}
	// Nothing applied since the last checkpoint — saving again would write
	// an identical state under a new name and churn a log segment.
	if s.counters.Checkpoints > 0 && s.counters.LastCheckpointEvents == s.counters.EventsApplied {
		return
	}
	data, err := snap.SnapshotState()
	if err != nil {
		s.counters.CheckpointErrors++
		return
	}
	c := &checkpoint.Checkpoint{
		Version: checkpoint.Version,
		Tick:    s.counters.Ticks,
		Events:  s.counters.EventsApplied,
		Engine:  s.cfg.EngineName,
		Kappa:   s.eng.Kappa(),
		Seed:    s.cfg.Seed,
		Genesis: s.cfg.GenesisDigest,
		State:   data,
	}
	c.Seal()
	if err := store.Save(c); err != nil {
		s.counters.CheckpointErrors++
		return
	}
	s.counters.Checkpoints++
	s.counters.LastCheckpointTick = c.Tick
	s.counters.LastCheckpointEvents = c.Events
	if rl, ok := s.cfg.Log.(RotatingLog); ok {
		if err := rl.Rotate(c.Tick, c.Name()); err != nil {
			if s.logErr == nil {
				s.logErr = err
			}
			return
		}
		if err := rl.Compact(c.Events, s.cfg.ArchiveLog); err != nil {
			s.counters.CheckpointErrors++
		}
	}
}

// RecoverConfig parameterizes Recover.
type RecoverConfig struct {
	// Store is the checkpoint store (optional: recovery then replays the
	// whole log from genesis).
	Store checkpoint.Store
	// LogDir is the segmented event-log directory (optional: recovery then
	// restores the checkpoint alone).
	LogDir string
	// Engine, Kappa, and Seed must match the run being resumed; a mismatch
	// against the newest checkpoint fails with ErrRecoveryMismatch.
	Engine string
	Kappa  int
	Seed   int64
	// Genesis is the initial graph, used when neither a checkpoint nor a log
	// exists (first boot) — a log's own header also carries it. When the
	// newest checkpoint recorded a genesis digest, Genesis is checked against
	// it (GenesisDigest) and a mismatch — e.g. restarting under different
	// -workload/-n flags — fails with ErrRecoveryMismatch.
	Genesis *graph.Graph
}

// Recovered describes what Recover rebuilt.
type Recovered struct {
	// Engine is ready to serve; pass Tick/Events as Config.Resume.
	Engine Engine
	Tick   uint64
	Events uint64
	// FromCheckpoint is false when the state was replayed from genesis.
	FromCheckpoint bool
	// Replayed counts log-tail events applied on top of the base state;
	// TornTail reports that the log's final line was crash-truncated (and
	// dropped — by log-before-ack it was never acknowledged).
	Replayed int
	TornTail bool
}

// Recover rebuilds engine state after a crash or restart: newest valid
// checkpoint (if any), then replay of the durable log tail past the
// checkpoint's Events watermark. Each replayed event is applied as its own
// timestep, so the recovered Tick watermark advances by one per tail event.
//
// That per-event replay means the recovered Tick deliberately diverges from
// the crashed process's tick count whenever the original run batched several
// events into one timestep: the log records event order, not batch
// boundaries, and engine state is batching-insensitive (replay-identity),
// so only the Events watermark is exact across a restart. Tick stays
// monotone — which is all its consumers (checkpoint names, log-segment
// anchors, span tick stamps, last_checkpoint_tick) require — but tick-keyed
// artifacts from before and after a crash must not be compared numerically.
func Recover(rc RecoverConfig) (*Recovered, error) {
	var ck *checkpoint.Checkpoint
	if rc.Store != nil {
		c, err := rc.Store.Load()
		switch {
		case err == nil:
			ck = c
		case errors.Is(err, checkpoint.ErrNotFound):
		default:
			return nil, err
		}
	}
	if ck != nil {
		if ck.Engine != rc.Engine || ck.Kappa != rc.Kappa || ck.Seed != rc.Seed {
			return nil, fmt.Errorf("%w: checkpoint is %s/κ=%d/seed=%d, daemon is %s/κ=%d/seed=%d",
				ErrRecoveryMismatch, ck.Engine, ck.Kappa, ck.Seed, rc.Engine, rc.Kappa, rc.Seed)
		}
		if ck.Genesis != "" && rc.Genesis != nil && ck.Genesis != GenesisDigest(rc.Genesis) {
			return nil, fmt.Errorf("%w: checkpoint was taken over a different genesis graph (check -workload/-n flags)",
				ErrRecoveryMismatch)
		}
	}

	var tr *trace.Trace
	if rc.LogDir != "" {
		t, err := trace.LoadLogDir(rc.LogDir)
		switch {
		case err == nil:
			tr = t
		case errors.Is(err, os.ErrNotExist):
		default:
			return nil, err
		}
	}

	rec := &Recovered{}
	var err error
	if ck != nil {
		rec.Engine, err = restoreEngine(rc.Engine, ck.State)
		if err != nil {
			return nil, err
		}
		rec.FromCheckpoint = true
		rec.Tick, rec.Events = ck.Tick, ck.Events
	} else {
		g0 := rc.Genesis
		if tr != nil {
			if tr.BaseEvents != 0 {
				return nil, fmt.Errorf("%w: log starts at event %d but no checkpoint covers the prefix",
					ErrRecoveryMismatch, tr.BaseEvents)
			}
			g0 = tr.Initial()
		}
		if g0 == nil {
			return nil, fmt.Errorf("%w: no checkpoint, no log, and no genesis graph", ErrRecoveryMismatch)
		}
		rec.Engine, err = freshEngine(rc.Engine, rc.Kappa, rc.Seed, g0)
		if err != nil {
			return nil, err
		}
	}

	if tr != nil {
		if rec.Events < tr.BaseEvents {
			return nil, fmt.Errorf("%w: checkpoint at event %d predates compacted log base %d",
				trace.ErrLogGap, rec.Events, tr.BaseEvents)
		}
		idx := rec.Events - tr.BaseEvents
		if idx > uint64(len(tr.Events)) {
			closeEngine(rec.Engine)
			return nil, fmt.Errorf("%w: checkpoint at event %d is ahead of durable log end %d",
				ErrRecoveryMismatch, rec.Events, tr.BaseEvents+uint64(len(tr.Events)))
		}
		rec.TornTail = tr.TornTail
		for i, ev := range tr.Events[idx:] {
			if err := applyLogged(rec.Engine, ev); err != nil {
				closeEngine(rec.Engine)
				return nil, fmt.Errorf("server: replay tail event %d: %w", i, err)
			}
			rec.Events++
			rec.Tick++
			rec.Replayed++
		}
	}
	if err := rec.Engine.CheckInvariants(); err != nil {
		closeEngine(rec.Engine)
		return nil, fmt.Errorf("server: recovered state: %w", err)
	}
	return rec, nil
}

// VerifyRecovery asserts recovery identity: a fresh engine replaying the full
// from-genesis history (archived + live log segments) must reach a
// byte-identical snapshot to the recovered engine. Requires the log to have
// been compacted in archive mode (Config.ArchiveLog) so the prefix survives.
func VerifyRecovery(recovered Engine, engineName, logDir string, kappa int, seed int64) error {
	full, err := trace.LoadFullLog(logDir)
	if err != nil {
		return err
	}
	if full.BaseEvents != 0 {
		return fmt.Errorf("%w: genesis history compacted away (run with log archiving to verify)",
			ErrRecoveryMismatch)
	}
	fresh, err := freshEngine(engineName, kappa, seed, full.Initial())
	if err != nil {
		return err
	}
	defer closeEngine(fresh)
	for i, ev := range full.Events {
		if err := applyLogged(fresh, ev); err != nil {
			return fmt.Errorf("server: genesis replay event %d: %w", i, err)
		}
	}
	freshSnap, ok1 := fresh.(Snapshotter)
	recoveredSnap, ok2 := recovered.(Snapshotter)
	if !ok1 || !ok2 {
		return fmt.Errorf("%w: engine does not support snapshotting", ErrRecoveryMismatch)
	}
	want, err := freshSnap.SnapshotState()
	if err != nil {
		return err
	}
	got, err := recoveredSnap.SnapshotState()
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("%w: recovered state differs from from-genesis replay", ErrRecoveryMismatch)
	}
	return nil
}

// applyLogged applies one logged event as its own timestep.
func applyLogged(eng Engine, ev trace.Event) error {
	var b core.Batch
	switch ev.Kind {
	case "insert":
		b.Insertions = []core.BatchInsertion{{Node: ev.Node, Neighbors: ev.Neighbors}}
	case "delete":
		b.Deletions = []graph.NodeID{ev.Node}
	default:
		return fmt.Errorf("server: replay: %w: kind %q", trace.ErrBadEvent, ev.Kind)
	}
	return eng.ApplyBatch(b)
}

func freshEngine(name string, kappa int, seed int64, g0 *graph.Graph) (Engine, error) {
	switch name {
	case EngineCore:
		st, err := core.NewState(core.Config{Kappa: kappa, Seed: seed}, g0)
		if err != nil {
			return nil, err
		}
		return st, nil
	case EngineDist:
		e, err := dist.NewEngine(dist.Config{Kappa: kappa, Seed: seed}, g0)
		if err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("%w: unknown engine %q", ErrRecoveryMismatch, name)
	}
}

func restoreEngine(name string, state []byte) (Engine, error) {
	switch name {
	case EngineCore:
		snap, err := core.LoadSnapshot(state)
		if err != nil {
			return nil, err
		}
		return core.RestoreState(snap)
	case EngineDist:
		snap, err := dist.LoadSnapshot(state)
		if err != nil {
			return nil, err
		}
		return dist.RestoreEngine(snap)
	default:
		return nil, fmt.Errorf("%w: unknown engine %q", ErrRecoveryMismatch, name)
	}
}

// closeEngine shuts down engines that own goroutines (dist.Engine).
func closeEngine(eng Engine) {
	if c, ok := eng.(interface{ Close() }); ok {
		c.Close()
	}
}
