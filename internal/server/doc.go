// Package server is the long-running maintenance daemon built on the
// paper's remark that the algorithm "can be extended to handle multiple
// insertions/deletions": it owns one healing engine — the sequential
// reference (core.State) or the distributed protocol engine (dist.Engine),
// both satisfy Engine — and turns a concurrent stream of insert/delete
// submissions into the batched timesteps the engines understand. DEX
// (Pandurangan–Robinson–Trehan, "DEX: Self-healing Expanders") frames this
// always-on service view of self-healing; this package is that view for
// Xheal.
//
// # Coalescing model
//
// Clients submit single events (Submit, or the HTTP ingest endpoint served
// by Handler) and block until their event is applied. A single tick loop
// drains everything that arrived during one coalescing window (Config.Tick)
// into one core.Batch, so the engine heals once per timestep no matter how
// many clients acted. Within a tick, events are admitted in arrival order
// under the same rules core.State.ValidateBatch enforces (ErrBatchConflict):
// an event that conflicts with the batch being assembled — deleting a node
// inserted this tick, attaching to a node deleted this tick, duplicate
// targets — is deferred to the next tick, where it is re-validated against
// the settled graph; after Config.MaxDefer deferrals it is rejected.
// Invalid events (unknown deletion target, reused ID, dead neighbor) are
// rejected immediately with the corresponding core sentinel error.
//
// Backpressure is a bounded ingest queue (Config.QueueDepth): when the loop
// cannot keep up, Submit fails fast with ErrBacklog instead of letting
// latency grow without bound.
//
// # Observability and replay
//
// Health serves a MeasureFast-style snapshot (connectivity, degree ratio,
// sampled stretch) plus the serving counters; Handler additionally exposes
// the counters in Prometheus text form at /metrics. When Config.Log is set,
// every applied batch is appended — in exact application order — to an
// internal/trace event log, so any serving run replays byte-for-byte
// through `xheal-sim -replay` or the conformance checker: same initial
// graph, same κ, same seed, same final topology. Close drains the queue,
// applies everything already accepted, and finishes the log before
// returning.
package server
