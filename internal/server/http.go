package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
)

// maxBodyBytes bounds one ingest request body (1 MiB is thousands of
// events; anything bigger is a client bug, not a workload).
const maxBodyBytes = 1 << 20

// IngestEvent is the wire form of one event, the same schema internal/trace
// uses on disk — so a recorded trace's events POST verbatim.
type IngestEvent struct {
	// Kind is "insert" or "delete".
	Kind string `json:"kind"`
	// Node is the inserted or deleted node.
	Node graph.NodeID `json:"node"`
	// Neighbors are the insertion attachments (insert only).
	Neighbors []graph.NodeID `json:"neighbors,omitempty"`
}

// IngestResponse answers one ingest request.
type IngestResponse struct {
	// Applied counts this request's events that were applied; on error the
	// remaining events were either rejected (the first rejection is Error)
	// or never enqueued.
	Applied int `json:"applied"`
	// Error describes the first failure, when there was one.
	Error string `json:"error,omitempty"`
}

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/events  — ingest one event object or an array of them; each
//	                   event blocks until its tick applies it
//	GET  /v1/health  — Health snapshot as JSON
//	GET  /metrics    — the counters in Prometheus text exposition format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, 0, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, 0, errors.New("body exceeds 1 MiB"))
		return
	}
	events, err := decodeIngest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, 0, err)
		return
	}
	// Enqueue the whole array as one admission-ring operation before
	// awaiting any verdict: the group lands contiguously (preserving the
	// array's order), coalesces into as few ticks as possible, and costs
	// one atomic reservation plus one shard lock — not one synchronized
	// operation per event.
	all := make([]*submission, len(events))
	now := time.Now()
	for i, ev := range events {
		all[i] = &submission{ev: ev, done: make(chan error, 1), at: now}
	}
	accepted, firstErr := s.submitMany(all)
	subs := all[:accepted]
	if firstErr == nil && accepted < len(all) {
		firstErr = ErrBacklog
	}
	applied := 0
	for _, sub := range subs {
		select {
		case err := <-sub.done:
			switch {
			case err == nil:
				applied++
			case firstErr == nil:
				firstErr = err
			}
		case <-r.Context().Done():
			if firstErr == nil {
				firstErr = r.Context().Err()
			}
		}
		if firstErr != nil && errors.Is(firstErr, r.Context().Err()) {
			break // client gone; stop awaiting verdicts (events still apply)
		}
	}
	if firstErr != nil {
		httpError(w, statusFor(firstErr), applied, firstErr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(IngestResponse{Applied: applied})
}

// decodeIngest accepts one event object or an array of them.
func decodeIngest(body []byte) ([]adversary.Event, error) {
	var wire []IngestEvent
	for _, b := range body {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			if err := json.Unmarshal(body, &wire); err != nil {
				return nil, fmt.Errorf("decode event array: %w", err)
			}
		default:
			var one IngestEvent
			if err := json.Unmarshal(body, &one); err != nil {
				return nil, fmt.Errorf("decode event: %w", err)
			}
			wire = []IngestEvent{one}
		}
		break
	}
	if len(wire) == 0 {
		return nil, errors.New("empty request")
	}
	events := make([]adversary.Event, 0, len(wire))
	for i, e := range wire {
		var kind adversary.EventKind
		switch e.Kind {
		case "insert":
			kind = adversary.Insert
		case "delete":
			kind = adversary.Delete
		default:
			return nil, fmt.Errorf("event %d: kind %q is not \"insert\" or \"delete\"", i, e.Kind)
		}
		events = append(events, adversary.Event{Kind: kind, Node: e.Node, Neighbors: e.Neighbors})
	}
	return events, nil
}

// statusFor maps a Submit error onto an HTTP status: overload and shutdown
// are 503 (retryable elsewhere), conflicts and invalid targets are 409/422,
// a dead request context is 408 (the nearest standard code to a client
// disconnect), and anything unrecognized is a server-side failure, 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBacklog), errors.Is(err, ErrClosed), errors.Is(err, ErrNotDurable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooManyConflicts), errors.Is(err, core.ErrBatchConflict):
		return http.StatusConflict
	case errors.Is(err, core.ErrNodeExists), errors.Is(err, core.ErrReusedNodeID),
		errors.Is(err, core.ErrNodeMissing), errors.Is(err, ErrTooFewNodes):
		return http.StatusConflict
	case errors.Is(err, core.ErrBadNeighbor), errors.Is(err, core.ErrSelfInsert):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status, applied int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(IngestResponse{Applied: applied, Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.PrometheusText()))
}

// ReplayLog loads an event log (or recorded trace) and replays it through a
// fresh sequential reference state under the given κ and seed, returning
// the replayed final graph. A serving run is faithful iff this equals the
// server's final graph — the serve-equivalent of the conformance check.
func ReplayLog(r io.Reader, kappa int, seed int64) (*graph.Graph, error) {
	tr, err := trace.Load(r)
	if err != nil {
		return nil, err
	}
	if tr.BaseEvents > 0 {
		// An anchored segment holds only a tail; replaying it from the
		// genesis header would silently skip the prefix.
		return nil, fmt.Errorf("server: log segment is anchored at event %d; recover via checkpoint + tail instead", tr.BaseEvents)
	}
	st, err := core.NewState(core.Config{Kappa: kappa, Seed: seed}, tr.Initial())
	if err != nil {
		return nil, err
	}
	adv, err := tr.Adversary()
	if err != nil {
		return nil, err
	}
	for i := 0; ; i++ {
		ev, ok := adv.Next(st.Graph())
		if !ok {
			break
		}
		switch ev.Kind {
		case adversary.Insert:
			err = st.InsertNode(ev.Node, ev.Neighbors)
		case adversary.Delete:
			err = st.DeleteNode(ev.Node)
		}
		if err != nil {
			return nil, fmt.Errorf("replay event %d: %w", i, err)
		}
	}
	return st.Graph(), nil
}
