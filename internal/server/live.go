package server

import (
	"fmt"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/metrics/live"
	"github.com/xheal/xheal/internal/spectral"
)

// DeltaBatcher is the optional engine surface the incremental metrics path
// uses: apply one batch and return the net structural delta it caused.
// core.State and dist.Engine both satisfy it.
type DeltaBatcher interface {
	ApplyBatchDelta(b core.Batch, workers int) (core.TickDelta, error)
}

// SampledChecker is the optional engine surface Config.InvariantBudget
// uses: check a budgeted, rotating sample of the structural invariants
// instead of the full sweep. core.State and dist.Engine both satisfy it.
type SampledChecker interface {
	CheckInvariantsSampled(budget int) error
}

// Admitter is the optional engine surface the batching loop uses to admit
// events into a tick incrementally (O(event) per decision) instead of
// re-validating the whole prospective batch per event (O(batch) each, O(k²)
// per tick). Verdicts are identical to ValidateBatch's; a nil admission
// (engine closed) falls back to wholesale validation. core.State and
// dist.Engine both satisfy it.
type Admitter interface {
	BeginAdmission() *core.BatchAdmission
}

// liveState is the incremental metrics layer the daemon keeps when the
// engine supports batch deltas (and Config.SlowHealth is off): health polls
// read these caches instead of cloning and measuring the graph.
type liveState struct {
	tracker *live.Tracker
	l2      *live.Lambda2Cache
	stretch *live.StretchSampler
	kappa   int // engines never change κ; cached so Health skips the lock

	// refreshC carries at most one pending refresh request to the refresher
	// goroutine; refreshDone closes when it exits.
	refreshC    chan struct{}
	refreshDone chan struct{}
}

// LiveHealth is the incremental-metrics slice of a health snapshot: the
// cached estimates plus how stale each one is, in applied ticks.
type LiveHealth struct {
	// Lambda2 is the cached algebraic connectivity estimate; valid once the
	// first refresh lands. Lambda2AgeTicks is the number of ticks applied
	// since the snapshot it was computed from.
	Lambda2         float64 `json:"lambda2"`
	Lambda2Valid    bool    `json:"lambda2_valid"`
	Lambda2AgeTicks uint64  `json:"lambda2_age_ticks"`
	// Lambda2Refreshes / Lambda2WarmRefreshes count Lanczos runs and how
	// many warm-started from the previous Ritz vector;
	// Lambda2RefreshSeconds is the wall time of the most recent run.
	Lambda2Refreshes      uint64  `json:"lambda2_refreshes"`
	Lambda2WarmRefreshes  uint64  `json:"lambda2_warm_refreshes"`
	Lambda2RefreshSeconds float64 `json:"lambda2_refresh_seconds"`
	// MaxStretch is the sampled-stretch estimate from the cached BFS trees;
	// StretchAgeTicks is the age of the oldest tree.
	MaxStretch      float64 `json:"max_stretch"`
	StretchValid    bool    `json:"stretch_valid"`
	StretchAgeTicks uint64  `json:"stretch_age_ticks"`
	// ConnectivityAgeTicks is 0 while the connectivity verdict is exact and
	// the number of ticks since it was last established otherwise.
	ConnectivityAgeTicks uint64 `json:"connectivity_age_ticks"`
	// Audit telemetry: full-recomputation checks of the tracker.
	Audits        uint64 `json:"audits"`
	AuditFailures uint64 `json:"audit_failures"`
	LastAuditTick uint64 `json:"last_audit_tick"`
}

// newLiveState builds the incremental layer over the engine's current
// graphs. Caller guarantees exclusive engine access (New does).
func (s *Server) newLiveState() *liveState {
	return &liveState{
		tracker:     live.NewTracker(s.eng.Graph(), s.eng.Baseline()),
		l2:          live.NewLambda2Cache(s.cfg.Seed + 1),
		stretch:     live.NewStretchSampler(s.cfg.stretchSources(), s.cfg.stretchMaxAge(), s.cfg.Seed+2),
		kappa:       s.eng.Kappa(),
		refreshC:    make(chan struct{}, 1),
		refreshDone: make(chan struct{}),
	}
}

// requestRefresh nudges the refresher goroutine; never blocks.
func (l *liveState) requestRefresh() {
	select {
	case l.refreshC <- struct{}{}:
	default:
	}
}

// refresher is the goroutine that re-establishes the expensive cached
// metrics (connectivity, λ₂, sampled stretch) outside the apply lock. It
// holds s.mu only long enough to snapshot the graph into CSR form; the
// traversals and the Lanczos run work on the snapshot.
func (s *Server) refresher() {
	defer close(s.live.refreshDone)
	for {
		select {
		case <-s.stopc:
			return
		case <-s.live.refreshC:
		}
		s.refreshOnce()
	}
}

// refreshOnce snapshots under the lock, computes outside it, and publishes
// into the caches. Skips entirely when nothing is stale: the λ₂ generation
// matches the graph, no stretch tree is dirty or over-age, and the
// connectivity verdict is current.
func (s *Server) refreshOnce() {
	l := s.live

	s.mu.Lock()
	g := s.eng.Graph()
	gen := g.Generation()
	tv := l.tracker.Values()
	l2gen, l2ok := l.l2.Generation()
	needL2 := !l2ok || l2gen != gen
	needStretch := l.stretch.NeedsRefresh(tv.Ticks)
	needConn := tv.ConnectivityAgeTicks > 0
	var csrG, csrGp *spectral.CSR
	if needL2 || needStretch || needConn {
		csrG = spectral.NewCSR(g)
	}
	if needStretch {
		csrGp = spectral.NewCSR(s.eng.Baseline())
	}
	s.mu.Unlock()

	if csrG == nil {
		return
	}
	connected := csrG.Connected()
	l.tracker.ResolveConnectivity(connected, tv.Ticks)
	if needL2 {
		l.l2.Refresh(csrG, connected, gen, tv.Ticks)
	}
	if needStretch {
		l.stretch.Refresh(csrG, csrGp, tv.Ticks)
	}
}

// auditLive runs the tracker's full-recomputation audit against the live
// graphs. Caller holds s.mu, so the graphs exactly reflect the deltas the
// tracker has seen.
func (s *Server) auditLive() {
	if err := s.live.tracker.Audit(s.eng.Graph(), s.eng.Baseline()); err != nil {
		// The tracker records the failure (AuditFailures, surfaced as
		// degraded health); keep the daemon serving but remember the first
		// divergence for operators reading logs via health.
		if s.liveAuditErr == nil {
			s.liveAuditErr = err
		}
	}
}

// liveHealth assembles the fast-path health snapshot from the caches.
// Called without s.mu; c and logErr were snapshotted under it.
func (s *Server) liveHealth(c Counters, logErr error) Health {
	l := s.live
	tv := l.tracker.Values()
	lambda, l2tick, l2ok := l.l2.Value()
	l2stats := l.l2.Stats()
	stretch, stretchAge, stOk := l.stretch.Value(tv.Ticks)

	snap := metrics.Snapshot{
		Nodes:            tv.Nodes,
		Edges:            tv.Edges,
		Connected:        tv.Connected,
		MaxDegree:        tv.MaxDegree,
		MaxDegreeRatio:   tv.MaxDegreeRatio,
		MaxStretch:       metrics.Unavailable,
		ExpansionExact:   metrics.Unavailable,
		ConductanceExact: metrics.Unavailable,
		SweepExpansion:   metrics.Unavailable,
		SweepConductance: metrics.Unavailable,
		Lambda2:          metrics.Unavailable,
		Lambda2Norm:      metrics.Unavailable,
	}
	lh := &LiveHealth{
		Lambda2Valid:          l2ok,
		Lambda2Refreshes:      l2stats.Refreshes,
		Lambda2WarmRefreshes:  l2stats.WarmRefreshes,
		Lambda2RefreshSeconds: l2stats.LastSeconds,
		StretchValid:          stOk,
		ConnectivityAgeTicks:  tv.ConnectivityAgeTicks,
		Audits:                tv.Audits,
		AuditFailures:         tv.AuditFailures,
		LastAuditTick:         tv.LastAuditTick,
	}
	if l2ok {
		snap.Lambda2 = lambda
		lh.Lambda2 = lambda
		lh.Lambda2AgeTicks = tv.Ticks - l2tick
	}
	if stOk {
		snap.MaxStretch = stretch
		lh.MaxStretch = stretch
		lh.StretchAgeTicks = stretchAge
	}

	status, logMsg := "ok", ""
	if !tv.Connected || tv.AuditFailures > 0 {
		status = "degraded"
	}
	if logErr != nil {
		status, logMsg = "degraded", logErr.Error()
	}
	return Health{
		Status:     status,
		LogError:   logMsg,
		Nodes:      tv.Nodes,
		Edges:      tv.Edges,
		Connected:  tv.Connected,
		Kappa:      l.kappa,
		Snapshot:   snap,
		Counters:   c,
		QueueDepth: s.QueueDepth(),
		Live:       lh,
	}
}

// LiveAuditError returns the first tracker audit divergence, if any — nil
// in a healthy daemon.
func (s *Server) LiveAuditError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.liveAuditErr == nil {
		return nil
	}
	return fmt.Errorf("incremental metrics diverged: %w", s.liveAuditErr)
}
