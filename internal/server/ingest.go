package server

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// admitRing is the lock-lean admission buffer between submitters and the
// tick loop. Capacity is reserved with one atomic CAS per enqueue call (not
// per event), and the submissions land in one of several independently
// locked shards, so concurrent HTTP handlers contend on an atomic and a
// 1/shards-probability mutex instead of a single channel send per event.
//
// Ordering: one enqueue call's submissions stay contiguous and in order
// (they go to a single shard, sharing one sequence number), which is what
// the HTTP array handler needs — an insert followed by events attaching to
// it must admit in order. Across enqueue calls, drainInto restores arrival
// order by sorting on the sequence stamp: a submitter that saw its enqueue
// complete is ordered before every later enqueue, exactly as with the
// channel this replaces. (Two enqueues racing each other have no defined
// order, same as two racing channel sends.)
type admitRing struct {
	capacity int64
	depth    atomic.Int64
	rr       atomic.Uint64
	seq      atomic.Uint64
	// notify carries at most one wake-up token for the tick loop; enqueue's
	// send is non-blocking because a queued token already guarantees the
	// loop will drain everything present.
	notify chan struct{}
	shards []admitShard
}

type admitShard struct {
	mu   sync.Mutex
	subs []*submission
	// Pad shards apart so neighboring locks don't share a cache line.
	_ [40]byte
}

func newAdmitRing(capacity int) *admitRing {
	shards := runtime.GOMAXPROCS(0)
	if shards > 16 {
		shards = 16
	}
	if shards < 1 {
		shards = 1
	}
	return &admitRing{
		capacity: int64(capacity),
		notify:   make(chan struct{}, 1),
		shards:   make([]admitShard, shards),
	}
}

// enqueue admits as many of subs as capacity allows — always a prefix, all
// into one shard — and returns how many were accepted. The caller fails the
// rest with ErrBacklog.
func (r *admitRing) enqueue(subs []*submission) int {
	if len(subs) == 0 {
		return 0
	}
	want := int64(len(subs))
	for {
		cur := r.depth.Load()
		free := r.capacity - cur
		if free <= 0 {
			return 0
		}
		take := want
		if take > free {
			take = free
		}
		if r.depth.CompareAndSwap(cur, cur+take) {
			seq := r.seq.Add(1)
			for _, sub := range subs[:take] {
				sub.seq = seq
			}
			sh := &r.shards[r.rr.Add(1)%uint64(len(r.shards))]
			sh.mu.Lock()
			sh.subs = append(sh.subs, subs[:take]...)
			sh.mu.Unlock()
			select {
			case r.notify <- struct{}{}:
			default:
			}
			return int(take)
		}
	}
}

// drainInto appends every buffered submission to buf and returns it. Shard
// iteration interleaves enqueue calls arbitrarily, so the tick loop calls
// sortBySeq over everything it gathered for one batch before admitting.
// Only the tick loop calls this, so shard slices can be truncated in place
// and their backing arrays reused by later enqueues.
func (r *admitRing) drainInto(buf []*submission) []*submission {
	taken := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if len(sh.subs) > 0 {
			buf = append(buf, sh.subs...)
			taken += len(sh.subs)
			clear(sh.subs)
			sh.subs = sh.subs[:0]
		}
		sh.mu.Unlock()
	}
	if taken > 0 {
		r.depth.Add(-int64(taken))
	}
	return buf
}

// sortBySeq restores arrival order over submissions gathered from the ring:
// a submitter that saw its enqueue complete is ordered before every enqueue
// that started afterwards. Stable, so one enqueue's contiguous run (one
// shard, one shared seq) keeps its internal order — the HTTP array handler
// relies on that for inserts followed by events attaching to them.
func sortBySeq(subs []*submission) {
	sort.SliceStable(subs, func(i, j int) bool { return subs[i].seq < subs[j].seq })
}

// len reports buffered submissions (reserved capacity not yet drained).
func (r *admitRing) len() int {
	d := r.depth.Load()
	if d < 0 {
		d = 0
	}
	return int(d)
}
