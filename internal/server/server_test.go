package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
	"github.com/xheal/xheal/internal/workload"
)

func testTopology(t *testing.T, n int) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g0, err := workload.Cycle(n)
	if err != nil {
		t.Fatalf("Cycle(%d): %v", n, err)
	}
	return g0, append([]graph.NodeID(nil), g0.Nodes()...)
}

func newSeqServer(t *testing.T, g0 *graph.Graph, cfg Config) (*Server, *core.State) {
	t.Helper()
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 11}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	return New(st, cfg), st
}

// The satellite test: N goroutine clients hammer the server with overlapping
// insert/delete streams; afterwards the structural invariants hold, the
// queue is drained by Close, and the event log replays to the identical
// final graph. Run under -race in CI.
func TestConcurrentClients(t *testing.T) {
	const clients, events = 8, 60
	g0, anchors := testTopology(t, 12)

	var logBuf bytes.Buffer
	lw, err := trace.NewLogWriter(&logBuf, g0)
	if err != nil {
		t.Fatalf("log writer: %v", err)
	}
	s, st := newSeqServer(t, g0, Config{Tick: 200 * time.Microsecond, Log: lw})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := adversary.NewClientStream(c, anchors, 0.35, 3, 500)
			for i := 0; i < events; i++ {
				if err := s.Submit(context.Background(), stream.Next()); err != nil {
					errs[c] = fmt.Errorf("client %d event %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if depth := s.QueueDepth(); depth != 0 {
		t.Fatalf("queue not drained on shutdown: depth %d", depth)
	}
	c := s.Counters()
	if c.EventsApplied != clients*events {
		t.Fatalf("applied %d events, want %d (rejected %d, deferred %d)",
			c.EventsApplied, clients*events, c.EventsRejected, c.EventsDeferred)
	}
	if c.EventsRejected != 0 {
		t.Fatalf("%d events rejected under a conflict-free workload", c.EventsRejected)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after load: %v", err)
	}

	replayed, err := ReplayLog(&logBuf, st.Kappa(), 11)
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	if !replayed.Equal(st.Graph()) {
		t.Fatalf("event-log replay diverged: replay n=%d m=%d, live n=%d m=%d",
			replayed.NumNodes(), replayed.NumEdges(), st.Graph().NumNodes(), st.Graph().NumEdges())
	}
}

// Same concurrent load with the distributed protocol engine hosted behind
// the same Server — the ApplyBatch facade parity in action.
func TestConcurrentClientsDistributed(t *testing.T) {
	const clients, events = 4, 25
	g0, anchors := testTopology(t, 10)
	eng, err := dist.NewEngine(dist.Config{Kappa: 4, Seed: 11}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	var logBuf bytes.Buffer
	lw, err := trace.NewLogWriter(&logBuf, g0)
	if err != nil {
		t.Fatalf("log writer: %v", err)
	}
	s := New(eng, Config{Tick: time.Millisecond, Log: lw})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := adversary.NewClientStream(c, anchors, 0.3, 2, 900)
			for i := 0; i < events; i++ {
				if err := s.Submit(context.Background(), stream.Next()); err != nil {
					errs[c] = fmt.Errorf("client %d event %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants (incl. local views): %v", err)
	}
	replayed, err := ReplayLog(&logBuf, eng.Kappa(), 11)
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	if !replayed.Equal(eng.Graph()) {
		t.Fatal("event-log replay diverged from the distributed engine's graph")
	}
}

// Two events on the same node arriving within one tick: the second defers
// to the next timestep and both apply.
func TestSameTickConflictDefers(t *testing.T) {
	g0, _ := testTopology(t, 8)
	s, st := newSeqServer(t, g0, Config{Tick: 50 * time.Millisecond})
	defer s.Close()

	insDone := make(chan error, 1)
	delDone := make(chan error, 1)
	go func() {
		insDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{0, 1}})
	}()
	time.Sleep(5 * time.Millisecond) // same 50ms tick, insert first
	go func() {
		delDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Delete, Node: 100})
	}()
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := <-delDone; err != nil {
		t.Fatalf("deferred delete: %v", err)
	}
	c := s.Counters()
	if c.EventsDeferred == 0 {
		t.Fatal("expected at least one deferral for the same-tick insert+delete")
	}
	if c.Ticks < 2 {
		t.Fatalf("expected two timesteps, got %d", c.Ticks)
	}
	if st.Alive(100) {
		t.Fatal("node 100 should be deleted after the deferred delete applied")
	}
}

// A delete of a node that a same-tick insertion attaches to must defer to
// the next timestep — admitting it would invalidate the whole batch and
// fail every member wholesale.
func TestDeleteOfAttachedNeighborDefers(t *testing.T) {
	g0, _ := testTopology(t, 8)
	s, st := newSeqServer(t, g0, Config{Tick: 50 * time.Millisecond})
	defer s.Close()

	insDone := make(chan error, 1)
	delDone := make(chan error, 1)
	go func() {
		insDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{0, 1}})
	}()
	time.Sleep(5 * time.Millisecond) // same 50ms tick, insert admitted first
	go func() {
		delDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Delete, Node: 0}) // neighbor of the insert
	}()
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := <-delDone; err != nil {
		t.Fatalf("deferred delete of attached neighbor: %v", err)
	}
	c := s.Counters()
	if c.EventsRejected != 0 {
		t.Fatalf("%d events rejected; the conflict should defer, not fail the batch", c.EventsRejected)
	}
	if c.EventsDeferred == 0 {
		t.Fatal("expected the delete to defer one tick")
	}
	if st.Alive(0) || !st.Alive(100) {
		t.Fatal("final state wrong: want node 0 deleted, node 100 alive")
	}
}

// failAfterWriter errors every write after the first n bytes, simulating a
// disk filling up under the event log.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

// A mid-run event-log write failure must break the daemon loudly: the batch
// that hit the failure and every later submission fail with ErrNotDurable
// (never an ack-nil for a non-durable event), health reports the degraded
// state, and the failure still surfaces at Close.
func TestLogWriteFailureRefusesWrites(t *testing.T) {
	g0, _ := testTopology(t, 8)
	lw, err := trace.NewLogWriter(&failAfterWriter{n: 600}, g0)
	if err != nil {
		t.Fatalf("log writer: %v", err)
	}
	s, _ := newSeqServer(t, g0, Config{Log: lw})
	ctx := context.Background()
	acked, failed := 0, 0
	for i := 0; i < 20; i++ {
		ev := adversary.Event{Kind: adversary.Insert,
			Node: graph.NodeID(100 + i), Neighbors: []graph.NodeID{0}}
		switch err := s.Submit(ctx, ev); {
		case err == nil:
			if failed > 0 {
				t.Fatalf("Submit %d acked nil after the log failed", i)
			}
			acked++
		case errors.Is(err, ErrNotDurable):
			failed++
		default:
			t.Fatalf("Submit %d: %v, want nil or ErrNotDurable", i, err)
		}
	}
	if acked == 0 || failed == 0 {
		t.Fatalf("acked=%d failed=%d: want the log to fail mid-run", acked, failed)
	}
	h := s.Health()
	if h.Status != "degraded" || !strings.Contains(h.LogError, "disk full") {
		t.Fatalf("Health = %q/%q, want degraded with the log failure", h.Status, h.LogError)
	}
	if got := s.Counters().EventsNotDurable; got != uint64(failed) {
		t.Fatalf("EventsNotDurable = %d, want %d", got, failed)
	}
	if !strings.Contains(s.PrometheusText(), "xheal_serve_log_failed 1") {
		t.Fatal("metrics: xheal_serve_log_failed gauge not set")
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close = %v, want the recorded log write failure", err)
	}
}

func TestRejections(t *testing.T) {
	g0, _ := testTopology(t, 8)
	s, _ := newSeqServer(t, g0, Config{})
	defer s.Close()
	ctx := context.Background()

	err := s.Submit(ctx, adversary.Event{Kind: adversary.Delete, Node: 999})
	if !errors.Is(err, core.ErrNodeMissing) {
		t.Fatalf("delete unknown = %v, want ErrNodeMissing", err)
	}
	err = s.Submit(ctx, adversary.Event{Kind: adversary.Insert, Node: 0, Neighbors: []graph.NodeID{1}})
	if !errors.Is(err, core.ErrNodeExists) {
		t.Fatalf("insert existing = %v, want ErrNodeExists", err)
	}
	err = s.Submit(ctx, adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{999}})
	if !errors.Is(err, core.ErrBadNeighbor) {
		t.Fatalf("insert w/ dead neighbor = %v, want ErrBadNeighbor", err)
	}
	err = s.Submit(ctx, adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: nil})
	if !errors.Is(err, core.ErrBadNeighbor) {
		t.Fatalf("insert w/o neighbors = %v, want ErrBadNeighbor", err)
	}
	if got := s.Counters().EventsRejected; got != 4 {
		t.Fatalf("EventsRejected = %d, want 4", got)
	}
}

func TestMinNodesGuard(t *testing.T) {
	g0, _ := testTopology(t, 3)
	s, _ := newSeqServer(t, g0, Config{MinNodes: 3})
	defer s.Close()
	err := s.Submit(context.Background(), adversary.Event{Kind: adversary.Delete, Node: 0})
	if !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("delete at the floor = %v, want ErrTooFewNodes", err)
	}
}

// With the tick loop stalled mid-apply and a tiny queue, Submit reports
// backpressure instead of blocking, and Close still drains what was
// accepted.
func TestBackpressure(t *testing.T) {
	g0, _ := testTopology(t, 8)
	s, st := newSeqServer(t, g0, Config{QueueDepth: 1})

	// Stall the loop: apply() needs s.mu, which the test holds. Enqueue
	// submissions directly (same package) so "the loop picked it up" is
	// observable as the queue emptying.
	s.mu.Lock()
	enqueue := func(node graph.NodeID) *submission {
		sub := &submission{
			ev:   adversary.Event{Kind: adversary.Insert, Node: node, Neighbors: []graph.NodeID{0}},
			done: make(chan error, 1),
			at:   time.Now(),
		}
		if s.ring.enqueue([]*submission{sub}) != 1 {
			t.Fatalf("ring refused enqueue of %d", node)
		}
		return sub
	}
	subA := enqueue(100)
	for s.ring.len() != 0 { // loop has picked event 100 up
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the loop reach apply() and block
	subB := enqueue(101)              // fills the depth-1 queue behind the stalled loop

	err := s.Submit(context.Background(),
		adversary.Event{Kind: adversary.Insert, Node: 102, Neighbors: []graph.NodeID{0}})
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("overflow submit = %v, want ErrBacklog", err)
	}
	s.mu.Unlock()
	if got := s.Counters().EventsBacklogged; got != 1 {
		t.Fatalf("EventsBacklogged = %d, want 1", got)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, sub := range []*submission{subA, subB} {
		if err := <-sub.done; err != nil {
			t.Fatalf("accepted submission failed: %v", err)
		}
	}
	if !st.Alive(100) || !st.Alive(101) {
		t.Fatal("accepted events not applied during shutdown drain")
	}
	if err := s.Submit(context.Background(), adversary.Event{Kind: adversary.Delete, Node: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestHealthSnapshot(t *testing.T) {
	g0, _ := testTopology(t, 8)
	s, _ := newSeqServer(t, g0, Config{})
	defer s.Close()
	if err := s.Submit(context.Background(),
		adversary.Event{Kind: adversary.Insert, Node: 50, Neighbors: []graph.NodeID{0, 4}}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	h := s.Health()
	if h.Status != "ok" || !h.Connected {
		t.Fatalf("health = %+v, want ok/connected", h)
	}
	if h.Nodes != 9 {
		t.Fatalf("health nodes = %d, want 9", h.Nodes)
	}
	if h.Counters.EventsApplied != 1 || h.Counters.Ticks == 0 {
		t.Fatalf("health counters = %+v", h.Counters)
	}
	if h.Kappa != 4 {
		t.Fatalf("health kappa = %d, want 4", h.Kappa)
	}
}

// faultCloseLog is an EventLog whose Close fails after delegating — the
// FaultStore-style injection for the shutdown flush path.
type faultCloseLog struct {
	inner    EventLog
	closeErr error
}

func (f *faultCloseLog) Append(ev adversary.Event) error { return f.inner.Append(ev) }

func (f *faultCloseLog) Close() error {
	if err := f.inner.Close(); err != nil {
		return err
	}
	return f.closeErr
}

// TestCloseSurfacesLogCloseFailure pins the graceful-drain contract: a
// failed event-log close during the final drain must come back out of
// Server.Close (cmd/xheal-serve exits non-zero on it) and flip the daemon
// to degraded, not vanish into a private field.
func TestCloseSurfacesLogCloseFailure(t *testing.T) {
	g0, anchors := testTopology(t, 8)
	var logBuf bytes.Buffer
	lw, err := trace.NewLogWriter(&logBuf, g0)
	if err != nil {
		t.Fatalf("log writer: %v", err)
	}
	injected := errors.New("injected close failure")
	s, st := newSeqServer(t, g0, Config{Log: &faultCloseLog{inner: lw, closeErr: injected}})

	// Traffic before shutdown, so the log has a tail worth flushing.
	if err := s.Submit(context.Background(), adversary.Event{
		Kind: adversary.Insert, Node: 1000, Neighbors: anchors[:1],
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	if err := s.Close(); !errors.Is(err, injected) {
		t.Fatalf("Close = %v, want the injected log-close failure", err)
	}
	h := s.Health()
	if h.Status != "degraded" {
		t.Fatalf("health after failed log close = %q, want degraded", h.Status)
	}
	if !strings.Contains(h.LogError, "injected close failure") {
		t.Fatalf("health.LogError = %q, want the injected failure", h.LogError)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

// TestConcurrentClientsParallel is TestConcurrentClients with the parallel
// disjoint-wound path on: the engine state must stay invariant-clean and
// the event log must replay (serially) to the identical final graph —
// the serial-equivalence guarantee observed end to end through the server.
func TestConcurrentClientsParallel(t *testing.T) {
	const clients, events = 8, 60
	g0, anchors := testTopology(t, 24)

	var logBuf bytes.Buffer
	lw, err := trace.NewLogWriter(&logBuf, g0)
	if err != nil {
		t.Fatalf("log writer: %v", err)
	}
	s, st := newSeqServer(t, g0, Config{Tick: 200 * time.Microsecond, Log: lw, Parallelism: 4})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := adversary.NewClientStream(c, anchors, 0.35, 3, 500)
			for i := 0; i < events; i++ {
				if err := s.Submit(context.Background(), stream.Next()); err != nil {
					errs[c] = fmt.Errorf("client %d event %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after parallel load: %v", err)
	}
	replayed, err := ReplayLog(&logBuf, st.Kappa(), 11)
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	if !replayed.Equal(st.Graph()) {
		t.Fatalf("serial replay diverged from parallel-applied state: replay n=%d m=%d, live n=%d m=%d",
			replayed.NumNodes(), replayed.NumEdges(), st.Graph().NumNodes(), st.Graph().NumEdges())
	}
}
