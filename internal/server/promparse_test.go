package server

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/obs"
)

// This file is a strict Prometheus text-exposition-format (version 0.0.4)
// parser used to validate every series the daemon exposes: header placement
// and uniqueness, metric-name and label syntax, escape correctness, value
// parseability, series uniqueness, and histogram shape (cumulative bucket
// monotonicity, +Inf == _count, _sum/_count presence).

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

// baseFamily maps a sample name to the family it belongs to: histogram
// component suffixes fold into their base name.
func baseFamily(name string, families map[string]*promFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := families[base]; ok && f.typ == "histogram" {
				return base
			}
		}
	}
	return name
}

// parsePromText parses and structurally validates one exposition payload.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := make(map[string]*promFamily)
	seen := make(map[string]bool) // duplicate-series detection
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			name := parts[2]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", lineNo, name)
			}
			f := families[name]
			if f == nil {
				f = &promFamily{name: name}
				families[name] = f
			}
			switch parts[1] {
			case "HELP":
				if f.help != "" {
					t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = parts[3]
			case "TYPE":
				if f.typ != "" {
					t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.samples) > 0 {
					t.Fatalf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = parts[3]
				default:
					t.Fatalf("line %d: unknown TYPE %q", lineNo, parts[3])
				}
			}
			continue
		}
		s := parsePromSample(t, lineNo, line)
		key := s.name + "|" + canonicalLabels(s.labels)
		if seen[key] {
			t.Fatalf("line %d: duplicate series %s%v", lineNo, s.name, s.labels)
		}
		seen[key] = true
		base := baseFamily(s.name, families)
		f := families[base]
		if f == nil || f.typ == "" || f.help == "" {
			t.Fatalf("line %d: sample %s before HELP/TYPE of family %s", lineNo, s.name, base)
		}
		f.samples = append(f.samples, s)
	}
	return families
}

// parsePromSample parses one sample line: name[{labels}] value.
func parsePromSample(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator in %q", lineNo, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad sample name %q", lineNo, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set in %q", lineNo, line)
		}
		parseLabelSet(t, lineNo, rest[1:end], s.labels)
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if strings.ContainsAny(rest, " ") {
		// A second space would start a timestamp; the daemon never emits one.
		t.Fatalf("line %d: unexpected timestamp or trailing content %q", lineNo, rest)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil && rest != "+Inf" && rest != "-Inf" && rest != "NaN" {
		t.Fatalf("line %d: unparseable value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

// parseLabelSet parses `k="v",k2="v2"` enforcing the exact escape set the
// format allows in label values: \\, \", \n.
func parseLabelSet(t *testing.T, lineNo int, in string, out map[string]string) {
	t.Helper()
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 {
			t.Fatalf("line %d: label without '=' in %q", lineNo, in)
		}
		key := in[:eq]
		if !promNameRe.MatchString(key) {
			t.Fatalf("line %d: bad label name %q", lineNo, key)
		}
		if eq+1 >= len(in) || in[eq+1] != '"' {
			t.Fatalf("line %d: unquoted label value after %q", lineNo, key)
		}
		in = in[eq+2:]
		var val strings.Builder
		closed := false
	scan:
		for i := 0; i < len(in); i++ {
			switch in[i] {
			case '\\':
				if i+1 >= len(in) {
					t.Fatalf("line %d: dangling escape in label %q", lineNo, key)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("line %d: invalid escape \\%c in label %q", lineNo, in[i+1], key)
				}
				i++
			case '"':
				if _, ok := out[key]; ok {
					t.Fatalf("line %d: duplicate label %q", lineNo, key)
				}
				out[key] = val.String()
				in = in[i+1:]
				closed = true
				break scan
			default:
				val.WriteByte(in[i])
			}
		}
		if !closed {
			t.Fatalf("line %d: unterminated label value for %q", lineNo, key)
		}
		in = strings.TrimPrefix(in, ",")
	}
}

func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// validateHistogram checks one histogram family's shape.
func validateHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	// Group by non-le labelset: each group is one histogram series.
	type group struct {
		buckets []promSample
		sum     *promSample
		count   *promSample
	}
	groups := map[string]*group{}
	grp := func(s promSample) *group {
		rest := make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := canonicalLabels(rest)
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			if _, ok := s.labels["le"]; !ok {
				t.Fatalf("%s: bucket sample without le label", f.name)
			}
			g := grp(s)
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.name, "_sum"):
			s := s
			grp(s).sum = &s
		case strings.HasSuffix(s.name, "_count"):
			s := s
			grp(s).count = &s
		default:
			t.Fatalf("%s: unexpected histogram sample %s", f.name, s.name)
		}
	}
	if len(groups) == 0 {
		t.Fatalf("%s: histogram family with no samples", f.name)
	}
	for key, g := range groups {
		if g.sum == nil || g.count == nil {
			t.Fatalf("%s{%s}: missing _sum or _count", f.name, key)
		}
		if len(g.buckets) < 2 {
			t.Fatalf("%s{%s}: only %d buckets", f.name, key, len(g.buckets))
		}
		prevLE := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range g.buckets {
			le := b.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s{%s}: unparseable le %q", f.name, key, le)
				}
			} else {
				sawInf = true
			}
			if bound <= prevLE {
				t.Fatalf("%s{%s}: le bounds not increasing at %q", f.name, key, le)
			}
			prevLE = bound
			if b.value < prevCum {
				t.Fatalf("%s{%s}: cumulative bucket counts decreased at le=%q (%g < %g)",
					f.name, key, le, b.value, prevCum)
			}
			prevCum = b.value
		}
		if !sawInf {
			t.Fatalf("%s{%s}: no +Inf bucket", f.name, key)
		}
		last := g.buckets[len(g.buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Fatalf("%s{%s}: +Inf bucket not last", f.name, key)
		}
		if last.value != g.count.value {
			t.Fatalf("%s{%s}: +Inf bucket %g != _count %g", f.name, key, last.value, g.count.value)
		}
	}
}

// TestMetricsExpositionStrict scrapes a live daemon (distributed engine,
// per-wound tracing on, so every family the registry can expose is present)
// and validates the entire payload against the strict parser.
func TestMetricsExpositionStrict(t *testing.T) {
	g0, anchors := testTopology(t, 16)
	eng, err := dist.NewEngine(dist.Config{Kappa: 4, Seed: 3}, g0)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	var spanBuf bytes.Buffer
	rec := obs.NewRecorder(obs.NewSpanWriter(&spanBuf), obs.MustHistogram(obs.LatencyBuckets()))
	s := New(eng, Config{Recorder: rec})
	defer s.Close()

	ctx := context.Background()
	if err := s.Submit(ctx, adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: anchors[:2]}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for _, v := range anchors[2:5] {
		if err := s.Submit(ctx, adversary.Event{Kind: adversary.Delete, Node: v}); err != nil {
			t.Fatalf("delete %d: %v", v, err)
		}
	}

	text := s.PrometheusText()
	families := parsePromText(t, text)

	// Every family the daemon promises, with its type.
	wantTyp := map[string]string{
		"xheal_serve_ticks_total":                  "counter",
		"xheal_serve_events_applied_total":         "counter",
		"xheal_serve_inserts_applied_total":        "counter",
		"xheal_serve_deletes_applied_total":        "counter",
		"xheal_serve_events_rejected_total":        "counter",
		"xheal_serve_events_backlogged_total":      "counter",
		"xheal_serve_events_deferred_total":        "counter",
		"xheal_serve_apply_seconds_total":          "counter",
		"xheal_serve_event_wait_seconds_total":     "counter",
		"xheal_serve_batch_events_last":            "gauge",
		"xheal_serve_batch_events_max":             "gauge",
		"xheal_serve_queue_depth":                  "gauge",
		"xheal_serve_nodes":                        "gauge",
		"xheal_serve_edges":                        "gauge",
		"xheal_serve_connected":                    "gauge",
		"xheal_serve_connectivity_age_ticks":       "gauge",
		"xheal_serve_max_degree":                   "gauge",
		"xheal_serve_max_degree_ratio":             "gauge",
		"xheal_serve_lambda2":                      "gauge",
		"xheal_serve_lambda2_age_ticks":            "gauge",
		"xheal_serve_lambda2_refreshes_total":      "counter",
		"xheal_serve_lambda2_warm_refreshes_total": "counter",
		"xheal_serve_stretch_sampled":              "gauge",
		"xheal_serve_tracker_audits_total":         "counter",
		"xheal_serve_tracker_audit_failures_total": "counter",
		"xheal_serve_uptime_seconds":               "gauge",
		"xheal_serve_tick_seconds":                 "histogram",
		"xheal_serve_batch_events":                 "histogram",
		"xheal_serve_queue_depth_at_tick":          "histogram",
		"xheal_repair_spans_total":                 "counter",
		"xheal_repair_spans_dropped_total":         "counter",
		"xheal_repair_rounds_total":                "counter",
		"xheal_repair_messages_total":              "counter",
		"xheal_repair_phase_seconds_total":         "counter",
		"xheal_repair_seconds":                     "histogram",
	}
	for name, typ := range wantTyp {
		f := families[name]
		if f == nil {
			t.Fatalf("family %s missing from exposition:\n%s", name, text)
		}
		if f.typ != typ {
			t.Fatalf("family %s: type %q, want %q", name, f.typ, typ)
		}
		if f.help == "" {
			t.Fatalf("family %s: no HELP", name)
		}
		if len(f.samples) == 0 {
			t.Fatalf("family %s: no samples", name)
		}
		if typ == "histogram" {
			validateHistogram(t, f)
		}
	}
	for name := range families {
		if _, ok := wantTyp[name]; !ok {
			t.Fatalf("undocumented family %s exposed — add it to the contract", name)
		}
	}

	// Cross-checks against ground truth.
	sample := func(name string, labels ...string) float64 {
		f := families[name]
		for _, s := range f.samples {
			if len(labels) == 2 && s.labels[labels[0]] != labels[1] {
				continue
			}
			return s.value
		}
		t.Fatalf("no sample for %s %v", name, labels)
		return 0
	}
	c := s.Counters()
	if got := sample("xheal_serve_deletes_applied_total"); got != float64(c.DeletesApplied) {
		t.Fatalf("deletes: exposed %g, counter %d", got, c.DeletesApplied)
	}
	if got := sample("xheal_repair_spans_total"); got != float64(rec.Spans()) {
		t.Fatalf("spans: exposed %g, recorder %d", got, rec.Spans())
	}
	rounds, msgs := rec.Ledger()
	if got := sample("xheal_repair_rounds_total"); got != float64(rounds) {
		t.Fatalf("rounds: exposed %g, ledger %d", got, rounds)
	}
	if got := sample("xheal_repair_messages_total"); got != float64(msgs) {
		t.Fatalf("messages: exposed %g, ledger %d", got, msgs)
	}
	phases := families["xheal_repair_phase_seconds_total"]
	if len(phases.samples) != len(obs.Phases()) {
		t.Fatalf("phase series: %d, want %d", len(phases.samples), len(obs.Phases()))
	}
	for _, ph := range obs.Phases() {
		if got := sample("xheal_repair_phase_seconds_total", "phase", ph.String()); got != rec.PhaseSeconds(ph) {
			t.Fatalf("phase %s: exposed %g, recorder %g", ph, got, rec.PhaseSeconds(ph))
		}
	}
	if got := sample("xheal_serve_connected"); got != 1 {
		t.Fatalf("connected gauge: %g", got)
	}
}

// TestParserRejectsMalformed sanity-checks the strict parser itself against
// payloads that must fail (run via subtests that expect Fatal, emulated with
// a child test).
func TestParserCatchesBadEscapes(t *testing.T) {
	// The parser is exercised indirectly: feed a label value through the
	// registry's escaper and confirm the round trip is identity.
	raw := "a\\b\"c\nd,e{f}"
	reg := obs.NewRegistry()
	reg.LabeledCounter("test_rt_total", "Round trip.",
		[]obs.Label{{Key: "v", Value: raw}}, func() float64 { return 1 })
	families := parsePromText(t, reg.PrometheusText())
	f := families["test_rt_total"]
	if f == nil || len(f.samples) != 1 {
		t.Fatalf("round-trip family missing")
	}
	if got := f.samples[0].labels["v"]; got != raw {
		t.Fatalf("label round trip: got %q, want %q", got, raw)
	}
}
