package server

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
)

const recoverySeed = 5

func ringGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

type schedEvent struct {
	del  bool
	node graph.NodeID
	nbrs []graph.NodeID
}

func (ev schedEvent) adversary() adversary.Event {
	if ev.del {
		return adversary.Event{Kind: adversary.Delete, Node: ev.node}
	}
	return adversary.Event{Kind: adversary.Insert, Node: ev.node, Neighbors: ev.nbrs}
}

func mustEngine(t *testing.T, name string, g0 *graph.Graph) Engine {
	t.Helper()
	eng, err := freshEngine(name, 4, recoverySeed, g0)
	if err != nil {
		t.Fatalf("%s engine: %v", name, err)
	}
	return eng
}

func applySched(t *testing.T, eng Engine, ev schedEvent) {
	t.Helper()
	var b core.Batch
	if ev.del {
		b.Deletions = []graph.NodeID{ev.node}
	} else {
		b.Insertions = []core.BatchInsertion{{Node: ev.node, Neighbors: ev.nbrs}}
	}
	if err := eng.ApplyBatch(b); err != nil {
		t.Fatalf("apply %+v: %v", ev, err)
	}
}

// genServerSchedule records a random insert/delete schedule by driving a
// scratch engine of the target type, so the same sequence replays valid
// through every incarnation of the run.
func genServerSchedule(t *testing.T, engineName string, g0 *graph.Graph, steps int, seed int64) []schedEvent {
	t.Helper()
	eng := mustEngine(t, engineName, g0.Clone())
	defer closeEngine(eng)
	rng := rand.New(rand.NewSource(seed))
	next := graph.NodeID(500000)
	events := make([]schedEvent, 0, steps)
	for step := 0; step < steps; step++ {
		alive := eng.Graph().Nodes()
		var ev schedEvent
		if len(alive) > 5 && rng.Float64() < 0.45 {
			ev = schedEvent{del: true, node: alive[rng.Intn(len(alive))]}
		} else {
			k := 1 + rng.Intn(3)
			if k > len(alive) {
				k = len(alive)
			}
			nbrs := make([]graph.NodeID, 0, k)
			for _, i := range rng.Perm(len(alive))[:k] {
				nbrs = append(nbrs, alive[i])
			}
			ev = schedEvent{node: next, nbrs: nbrs}
			next++
		}
		applySched(t, eng, ev)
		events = append(events, ev)
	}
	return events
}

func snapshotBytes(t *testing.T, eng Engine) []byte {
	t.Helper()
	data, err := eng.(Snapshotter).SnapshotState()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return data
}

// TestServerCrashRecoveryIdentity is the serving-stack recovery-identity
// property, for both engines: at every crash point k, a daemon that applied
// and acknowledged k events is abandoned mid-run (no shutdown, exactly what a
// SIGKILL leaves on disk), a new incarnation recovers from checkpoint +
// durable log tail, the recovered state must byte-match a from-genesis replay
// of the log, and after serving the remaining events the final state must
// byte-match an uncrashed run. A final clean restart must replay zero tail
// events (the shutdown checkpoint covers the whole log).
func TestServerCrashRecoveryIdentity(t *testing.T) {
	for _, engineName := range []string{EngineCore, EngineDist} {
		t.Run(engineName, func(t *testing.T) {
			g0 := ringGraph(14)
			const steps = 40
			schedule := genServerSchedule(t, engineName, g0, steps, 101)

			genesis := mustEngine(t, engineName, g0.Clone())
			defer closeEngine(genesis)
			for _, ev := range schedule {
				applySched(t, genesis, ev)
			}
			want := snapshotBytes(t, genesis)

			ctx := context.Background()
			for k := 0; k <= steps; k += 8 {
				dir := t.TempDir()
				logDir := filepath.Join(dir, "log")
				store, err := checkpoint.NewFileStore(filepath.Join(dir, "checkpoints"), 3)
				if err != nil {
					t.Fatalf("k=%d: store: %v", k, err)
				}
				fl, err := trace.OpenFileLog(logDir, g0, 0, 0, "")
				if err != nil {
					t.Fatalf("k=%d: log: %v", k, err)
				}
				durable := Config{
					Log: fl, Checkpoints: store, CheckpointEvery: 3, ArchiveLog: true,
					EngineName: engineName, Seed: recoverySeed, GenesisDigest: GenesisDigest(g0),
				}
				engA := mustEngine(t, engineName, g0.Clone())
				sA := New(engA, durable)
				for i, ev := range schedule[:k] {
					if err := sA.Submit(ctx, ev.adversary()); err != nil {
						t.Fatalf("k=%d: submit %d: %v", k, i, err)
					}
				}
				// Crash: abandon sA without shutdown. Disk now holds exactly
				// what a SIGKILL would leave; sA is cleaned up after every
				// assertion against the directory is done.

				rc := RecoverConfig{
					Store: store, LogDir: logDir,
					Engine: engineName, Kappa: 4, Seed: recoverySeed, Genesis: g0.Clone(),
				}
				rec, err := Recover(rc)
				if err != nil {
					t.Fatalf("k=%d: recover: %v", k, err)
				}
				if rec.Events != uint64(k) {
					t.Fatalf("k=%d: recovered %d events (replayed %d), want %d",
						k, rec.Events, rec.Replayed, k)
				}
				if err := VerifyRecovery(rec.Engine, engineName, logDir, 4, recoverySeed); err != nil {
					t.Fatalf("k=%d: recovery identity: %v", k, err)
				}

				// Resume serving the rest of the schedule on a new daemon.
				flB, err := trace.OpenFileLog(logDir, g0, rec.Tick, rec.Events, "")
				if err != nil {
					t.Fatalf("k=%d: reopen log: %v", k, err)
				}
				cfgB := durable
				cfgB.Log = flB
				cfgB.Resume = Resume{Tick: rec.Tick, Events: rec.Events}
				sB := New(rec.Engine, cfgB)
				for i, ev := range schedule[k:] {
					if err := sB.Submit(ctx, ev.adversary()); err != nil {
						t.Fatalf("k=%d: resume submit %d: %v", k, i, err)
					}
				}
				if err := sB.Close(); err != nil {
					t.Fatalf("k=%d: close resumed server: %v", k, err)
				}
				if got := snapshotBytes(t, rec.Engine); !bytes.Equal(want, got) {
					t.Fatalf("k=%d: final state diverged from uncrashed run", k)
				}

				// A clean restart recovers from the shutdown checkpoint with
				// an empty tail: compaction left nothing to replay.
				rec2, err := Recover(rc)
				if err != nil {
					t.Fatalf("k=%d: clean restart: %v", k, err)
				}
				if rec2.Replayed != 0 || rec2.Events != steps {
					t.Fatalf("k=%d: clean restart replayed %d events at watermark %d, want 0 at %d",
						k, rec2.Replayed, rec2.Events, steps)
				}
				if got := snapshotBytes(t, rec2.Engine); !bytes.Equal(want, got) {
					t.Fatalf("k=%d: clean-restart state diverged", k)
				}

				closeEngine(rec2.Engine)
				closeEngine(rec.Engine)
				// Tear down the abandoned first incarnation last: its Close
				// scribbles a stale checkpoint into the now-dead directory.
				sA.Close()
				closeEngine(engA)
			}
		})
	}
}

// TestRecoverRejectsMismatchedRun pins the config-mismatch guard: engine,
// κ, seed, and genesis graph must all match the checkpoint being resumed.
func TestRecoverRejectsMismatchedRun(t *testing.T) {
	g0 := ringGraph(10)
	store := checkpoint.NewMemStore()
	eng := mustEngine(t, EngineCore, g0.Clone())
	state := snapshotBytes(t, eng)
	c := &checkpoint.Checkpoint{
		Version: checkpoint.Version, Tick: 0, Events: 0,
		Engine: EngineCore, Kappa: 4, Seed: recoverySeed,
		Genesis: GenesisDigest(g0), State: state,
	}
	c.Seal()
	if err := store.Save(c); err != nil {
		t.Fatalf("save: %v", err)
	}
	for _, rc := range []RecoverConfig{
		{Store: store, Engine: EngineDist, Kappa: 4, Seed: recoverySeed},
		{Store: store, Engine: EngineCore, Kappa: 6, Seed: recoverySeed},
		{Store: store, Engine: EngineCore, Kappa: 4, Seed: recoverySeed + 1},
		// Same engine/κ/seed but a different initial topology — the
		// restarted-with-different-workload-flags mistake.
		{Store: store, Engine: EngineCore, Kappa: 4, Seed: recoverySeed, Genesis: ringGraph(12)},
	} {
		if _, err := Recover(rc); !errors.Is(err, ErrRecoveryMismatch) {
			t.Fatalf("mismatched recovery %+v: %v, want ErrRecoveryMismatch", rc, err)
		}
	}
	// The matching genesis passes, as does a legacy checkpoint without a
	// recorded digest.
	if rec, err := Recover(RecoverConfig{Store: store, Engine: EngineCore, Kappa: 4,
		Seed: recoverySeed, Genesis: ringGraph(10)}); err != nil {
		t.Fatalf("matched recovery: %v", err)
	} else {
		closeEngine(rec.Engine)
	}
	c.Genesis = ""
	c.Seal()
	if err := store.Save(c); err != nil {
		t.Fatalf("save legacy: %v", err)
	}
	if rec, err := Recover(RecoverConfig{Store: store, Engine: EngineCore, Kappa: 4,
		Seed: recoverySeed, Genesis: ringGraph(12)}); err != nil {
		t.Fatalf("legacy checkpoint without digest: %v", err)
	} else {
		closeEngine(rec.Engine)
	}
}
