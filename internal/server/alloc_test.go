package server

import (
	"math/rand"
	"testing"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// tickAllocBudget is the steady-state allocation cost of one applied
// single-event tick (submission assembly, admission, engine apply, counter
// updates) with observability disabled. The always-on serving histograms
// must observe without allocating, so wiring internal/obs into the tick
// path may not raise this. The PR 5 baseline was 86; the incremental
// metrics layer adds the per-tick delta export — the accumulator is reused,
// but the sorted node/edge slices handed to the tracker are fresh each tick
// (~3 allocs over the delete+insert pair), measured at 89.
const tickAllocBudget = 92

// TestTickAllocsDisabledObservability measures the tick apply path directly
// (single goroutine: the loop is stopped first, then apply is driven by
// hand) so the number is not polluted by channel scheduling noise.
func TestTickAllocsDisabledObservability(t *testing.T) {
	g0, err := workload.RandomRegular(256, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 2}, g0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, Config{})
	if err := s.Close(); err != nil { // stop the loop; apply stays usable
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	alive := append([]graph.NodeID(nil), st.Graph().Nodes()...)
	next := graph.NodeID(1 << 20)
	step := func() {
		i := rng.Intn(len(alive))
		victim := alive[i]
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		del := &submission{ev: adversary.Event{Kind: adversary.Delete, Node: victim},
			done: make(chan error, 1), at: time.Now()}
		s.apply([]*submission{del})
		if err := <-del.done; err != nil {
			t.Fatal(err)
		}
		ins := &submission{ev: adversary.Event{Kind: adversary.Insert, Node: next,
			Neighbors: []graph.NodeID{alive[rng.Intn(len(alive))]}},
			done: make(chan error, 1), at: time.Now()}
		s.apply([]*submission{ins})
		if err := <-ins.done; err != nil {
			t.Fatal(err)
		}
		alive = append(alive, next)
		next++
	}
	for i := 0; i < 100; i++ {
		step()
	}
	avg := testing.AllocsPerRun(200, step)
	t.Logf("server tick (delete+insert): %.1f allocs/op (budget %d)", avg, tickAllocBudget)
	if avg > tickAllocBudget {
		t.Fatalf("tick path with observability disabled allocates %.1f/op, budget is %d (PR 5 baseline)",
			avg, tickAllocBudget)
	}
}
