package server

import (
	"context"
	"testing"
	"time"

	"github.com/xheal/xheal/internal/adversary"
)

// TestLiveHealthIntegration drives the daemon with churn and checks the
// incremental health path end to end: Health serves from the tracker (Live
// section present), the λ₂ and stretch caches become valid once the refresher
// has run, periodic audits pass, and the final tracked values match the
// engine's graphs exactly.
func TestLiveHealthIntegration(t *testing.T) {
	g0, anchors := testTopology(t, 16)
	s, st := newSeqServer(t, g0, Config{
		Tick:         100 * time.Microsecond,
		RefreshEvery: 4,
		AuditEvery:   8,
	})
	if s.live == nil {
		t.Fatal("live metrics layer not enabled for a DeltaBatcher engine")
	}

	stream := adversary.NewClientStream(0, anchors, 0.35, 3, 500)
	for i := 0; i < 120; i++ {
		if err := s.Submit(context.Background(), stream.Next()); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}

	// The refresher runs async; poll until both caches land or we time out.
	deadline := time.Now().Add(5 * time.Second)
	var h Health
	for {
		h = s.Health()
		if h.Live != nil && h.Live.Lambda2Valid && h.Live.StretchValid {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("caches never became valid: %+v", h.Live)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h.Live.Lambda2Refreshes == 0 {
		t.Fatalf("no λ₂ refreshes recorded: %+v", h.Live)
	}
	if h.Snapshot.Lambda2 != h.Live.Lambda2 {
		t.Fatalf("snapshot λ₂ %v != live λ₂ %v", h.Snapshot.Lambda2, h.Live.Lambda2)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h = s.Health()
	if h.Live == nil {
		t.Fatal("live section vanished after Close")
	}
	if h.Nodes != st.Graph().NumNodes() || h.Edges != st.Graph().NumEdges() {
		t.Fatalf("tracked n=%d m=%d, engine n=%d m=%d",
			h.Nodes, h.Edges, st.Graph().NumNodes(), st.Graph().NumEdges())
	}
	if h.Live.Audits == 0 || h.Live.AuditFailures != 0 {
		t.Fatalf("audit telemetry: %+v", h.Live)
	}
	if err := s.LiveAuditError(); err != nil {
		t.Fatal(err)
	}
	if h.Connected != st.Graph().IsConnected() {
		t.Fatalf("tracked connectivity %v, graph %v", h.Connected, st.Graph().IsConnected())
	}
}

// TestSlowHealthFallback pins the -slow-health escape hatch: the live layer
// stays off, Health still reports exact structural values (via the clone-and
// -measure path), and the Live section is absent from the snapshot.
func TestSlowHealthFallback(t *testing.T) {
	g0, anchors := testTopology(t, 12)
	s, st := newSeqServer(t, g0, Config{Tick: 100 * time.Microsecond, SlowHealth: true})
	if s.live != nil {
		t.Fatal("SlowHealth did not disable the live layer")
	}
	stream := adversary.NewClientStream(1, anchors, 0.3, 3, 600)
	for i := 0; i < 40; i++ {
		if err := s.Submit(context.Background(), stream.Next()); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h := s.Health()
	if h.Live != nil {
		t.Fatal("slow path emitted a Live section")
	}
	if h.Nodes != st.Graph().NumNodes() || h.Edges != st.Graph().NumEdges() {
		t.Fatalf("slow health n=%d m=%d, engine n=%d m=%d",
			h.Nodes, h.Edges, st.Graph().NumNodes(), st.Graph().NumEdges())
	}
	if h.Snapshot.MaxStretch == 0 {
		t.Fatal("slow path lost the measured stretch")
	}
}

// TestInvariantBudgetWiring: with a budget set, Server.CheckInvariants uses
// the sampled checker and stays nil on a healthy daemon across enough calls
// to complete several rotations.
func TestInvariantBudgetWiring(t *testing.T) {
	g0, anchors := testTopology(t, 12)
	s, _ := newSeqServer(t, g0, Config{Tick: 100 * time.Microsecond, InvariantBudget: 3})
	stream := adversary.NewClientStream(2, anchors, 0.35, 3, 700)
	for i := 0; i < 50; i++ {
		if err := s.Submit(context.Background(), stream.Next()); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	for i := 0; i < 64; i++ {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("sampled invariants call %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
