package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func startHTTP(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g0, _ := testTopology(t, 8)
	s, _ := newSeqServer(t, g0, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (int, IngestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func TestHTTPIngest(t *testing.T) {
	s, ts := startHTTP(t)

	code, out := post(t, ts.URL, `{"kind":"insert","node":100,"neighbors":[0,1]}`)
	if code != http.StatusOK || out.Applied != 1 || out.Error != "" {
		t.Fatalf("single insert: code=%d out=%+v", code, out)
	}
	code, out = post(t, ts.URL,
		`[{"kind":"insert","node":101,"neighbors":[100]},{"kind":"delete","node":100}]`)
	if code != http.StatusOK || out.Applied != 2 {
		t.Fatalf("array ingest: code=%d out=%+v", code, out)
	}
	if c := s.Counters(); c.EventsApplied != 3 {
		t.Fatalf("EventsApplied = %d, want 3", c.EventsApplied)
	}

	// Conflicts map to 409; Applied reports the prefix that landed.
	code, out = post(t, ts.URL,
		`[{"kind":"insert","node":102,"neighbors":[0]},{"kind":"delete","node":100}]`)
	if code != http.StatusConflict || out.Applied != 1 || out.Error == "" {
		t.Fatalf("conflict: code=%d out=%+v", code, out)
	}
	// Bad neighbors are 422, malformed bodies 400, bad kinds 400.
	if code, _ = post(t, ts.URL, `{"kind":"insert","node":103,"neighbors":[103]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("self insert: code=%d", code)
	}
	if code, _ = post(t, ts.URL, `{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed: code=%d", code)
	}
	if code, _ = post(t, ts.URL, `{"kind":"upsert","node":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad kind: code=%d", code)
	}
	if code, _ = post(t, ts.URL, ``); code != http.StatusBadRequest {
		t.Fatalf("empty body: code=%d", code)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, ts := startHTTP(t)
	if code, _ := post(t, ts.URL, `{"kind":"insert","node":100,"neighbors":[0,1]}`); code != http.StatusOK {
		t.Fatalf("seed insert failed: %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatalf("GET health: %v", err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	if h.Status != "ok" || !h.Connected || h.Nodes != 9 || h.Counters.EventsApplied != 1 {
		t.Fatalf("health = %+v", h)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{
		"xheal_serve_events_applied_total 1",
		"xheal_serve_nodes 9",
		"xheal_serve_connected 1",
		"# TYPE xheal_serve_ticks_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
}

func TestHTTPBodyTooLarge(t *testing.T) {
	_, ts := startHTTP(t)
	big := bytes.Repeat([]byte{' '}, maxBodyBytes+2)
	big[0] = '{'
	resp, err := http.Post(ts.URL+"/v1/events", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d, want 413", resp.StatusCode)
	}
}
