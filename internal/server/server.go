package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/obs"
)

// Engine is the healing engine a Server drives. Both core.State (the
// sequential Algorithm 3.1 reference) and dist.Engine (the §5 message
// protocol) satisfy it, so a daemon hosts either interchangeably.
type Engine interface {
	ApplyBatch(core.Batch) error
	ValidateBatch(core.Batch) error
	Graph() *graph.Graph
	Baseline() *graph.Graph
	Kappa() int
	CheckInvariants() error
}

// Sentinel errors.
var (
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("server: closed")
	// ErrBacklog is the backpressure signal: the bounded ingest queue is
	// full and the event was not accepted.
	ErrBacklog = errors.New("server: ingest queue is full")
	// ErrTooManyConflicts rejects an event deferred past Config.MaxDefer
	// ticks by repeated intra-tick conflicts.
	ErrTooManyConflicts = errors.New("server: event conflicted for too many consecutive ticks")
	// ErrTooFewNodes rejects a deletion that would shrink the network below
	// Config.MinNodes.
	ErrTooFewNodes = errors.New("server: deletion refused, too few nodes would remain")
	// ErrNotDurable reports that the event log failed (disk full, I/O error):
	// the log-before-ack contract can no longer be honored, so the batch that
	// hit the failure and every later submission are failed rather than
	// acknowledged non-durably. The daemon stays up for reads (health,
	// metrics, graph) but refuses writes until restarted over healthy storage.
	ErrNotDurable = errors.New("server: event log failed, refusing non-durable writes")
)

// Config parameterizes a Server. The zero value is usable: immediate ticks,
// defaults for every bound, no event log.
type Config struct {
	// Tick is the coalescing window: once the loop picks up a first event it
	// keeps gathering arrivals for this long (capped by MaxBatch) before
	// applying the batch. 0 applies whatever has already arrived — batching
	// then emerges from submissions that pile up while a batch is applying.
	Tick time.Duration
	// QueueDepth bounds the ingest queue (default 1024). A full queue fails
	// Submit with ErrBacklog.
	QueueDepth int
	// MaxBatch caps events per timestep (default 256).
	MaxBatch int
	// MaxDefer caps how many consecutive ticks one event may be deferred by
	// intra-tick conflicts before it is rejected (default 4).
	MaxDefer int
	// MinNodes refuses deletions that would leave fewer alive nodes
	// (default 2: healing and measurement both want a non-trivial graph).
	MinNodes int
	// Log, when set, receives every applied event in application order.
	// The server serializes Append calls and Closes the log on Close. If the
	// log also implements RotatingLog (trace.FileLog does), the server
	// rotates to a fresh segment after every checkpoint and compacts the
	// segments the checkpoint covers.
	Log EventLog
	// Checkpoints, when set alongside an engine that implements Snapshotter,
	// enables durability: the server saves a checkpoint every
	// CheckpointEvery applied ticks (default 32) and once more during the
	// final drain, then rotates and compacts the event log behind it.
	Checkpoints checkpoint.Store
	// CheckpointEvery is the checkpoint cadence in applied ticks (default 32).
	CheckpointEvery int
	// ArchiveLog makes compaction move covered log segments to the log
	// directory's archive/ subdirectory instead of deleting them, preserving
	// the from-genesis history that recovery verification replays.
	ArchiveLog bool
	// EngineName ("core" or "dist") and Seed are stamped into checkpoint
	// envelopes so a store can't be resumed against a differently-configured
	// daemon. GenesisDigest (see the GenesisDigest function) additionally pins
	// the initial topology, so restarting under different workload flags fails
	// recovery instead of silently serving a mismatched genesis.
	EngineName    string
	Seed          int64
	GenesisDigest string
	// Resume seeds the tick/event watermarks after recovery, so checkpoint
	// and log-segment anchors continue the run's global numbering. Only the
	// watermarks resume; per-kind counters restart at zero for this
	// process's serving window.
	Resume Resume
	// Recorder, when set, traces every wound repair as a span: the server
	// stamps the tick, the engine stamps the phases. It is handed to the
	// engine at New if the engine accepts one (core.State and dist.Engine
	// do). nil disables per-wound tracing at zero cost.
	Recorder *obs.Recorder
	// Parallelism, when > 1 and the engine implements ParallelBatcher
	// (core.State does), heals disjoint wounds of each tick's batch
	// concurrently on that many workers. 0 or 1 applies batches serially.
	// The final state is byte-identical either way; see core.State's
	// ApplyBatchParallel.
	Parallelism int
	// SlowHealth disables the incremental metrics layer: Health clones and
	// measures the graph directly, as before PR 10. The fallback for
	// debugging the fast path against — the incremental layer is on by
	// default whenever the engine supports batch deltas.
	SlowHealth bool
	// RefreshEvery is the cadence, in applied ticks, at which the refresher
	// goroutine re-establishes the expensive cached metrics: connectivity
	// (when stale), warm-started λ₂, and dirty sampled-stretch trees
	// (default 32).
	RefreshEvery int
	// StretchSources sizes the sampled-stretch BFS source reservoir
	// (default 4).
	StretchSources int
	// AuditEvery, when > 0, recomputes every tracker-maintained metric from
	// the graph each AuditEvery applied ticks and cross-checks the tracker —
	// the incremental layer's correctness oracle, priced for test and canary
	// deployments. 0 disables auditing.
	AuditEvery int
	// InvariantBudget, when > 0 and the engine supports sampled checking,
	// makes CheckInvariants examine a rotating sample of that many
	// nodes/edges/clouds per call instead of sweeping everything; successive
	// calls cover the full structure. 0 keeps the full sweep.
	InvariantBudget int
}

// ParallelBatcher is the optional engine surface Config.Parallelism uses:
// apply one batch with disjoint-wound repairs fanned out to a bounded
// worker pool. core.State satisfies it.
type ParallelBatcher interface {
	ApplyBatchParallel(b core.Batch, workers int) error
}

// EventLog is the append-only sink for applied events. *trace.LogWriter and
// *trace.FileLog both satisfy it.
type EventLog interface {
	Append(adversary.Event) error
	Close() error
}

// RotatingLog is the optional segmented-log surface: Rotate seals the current
// segment and starts a fresh one anchored at the given tick; Compact drops
// (or archives) segments fully covered by a checkpoint at beforeEvents.
// *trace.FileLog satisfies it.
type RotatingLog interface {
	Rotate(tick uint64, checkpoint string) error
	Compact(beforeEvents uint64, archive bool) error
}

// SyncingLog is the optional stable-storage surface: Sync flushes everything
// appended so far to disk. When the configured log implements it (both
// *trace.LogWriter over an *os.File and *trace.FileLog do), the server syncs
// once per applied batch before acknowledging its members, upgrading the
// log-before-ack guarantee from process-crash durability to power-loss
// durability at the cost of one fsync per tick.
type SyncingLog interface {
	Sync() error
}

// Snapshotter is the optional engine surface durability needs: the complete
// engine state as deterministic JSON. core.State and dist.Engine both
// satisfy it.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
}

// Resume carries the run-global watermarks a recovered daemon restarts from.
type Resume struct {
	Tick   uint64
	Events uint64
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 1024
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 256
}

func (c Config) maxDefer() int {
	if c.MaxDefer > 0 {
		return c.MaxDefer
	}
	return 4
}

func (c Config) minNodes() int {
	if c.MinNodes > 0 {
		return c.MinNodes
	}
	return 2
}

func (c Config) checkpointEvery() uint64 {
	if c.CheckpointEvery > 0 {
		return uint64(c.CheckpointEvery)
	}
	return 32
}

func (c Config) refreshEvery() uint64 {
	if c.RefreshEvery > 0 {
		return uint64(c.RefreshEvery)
	}
	return 32
}

func (c Config) stretchSources() int {
	if c.StretchSources > 0 {
		return c.StretchSources
	}
	return 4
}

// stretchMaxAge bounds how many ticks a cached stretch tree may serve
// without a rebuild even when no delta touched it.
func (c Config) stretchMaxAge() uint64 { return 8 * c.refreshEvery() }

// Counters are the serving-work counters, readable via Counters or the
// /metrics endpoint while the daemon runs.
type Counters struct {
	// Ticks is the number of applied timesteps (empty ticks don't count).
	Ticks uint64
	// EventsApplied = InsertsApplied + DeletesApplied.
	EventsApplied  uint64
	InsertsApplied uint64
	DeletesApplied uint64
	// EventsRejected counts events refused with an error (invalid target,
	// defer cap, engine rejection); EventsBacklogged counts ErrBacklog
	// refusals at the queue; EventsDeferred counts tick-to-tick deferrals
	// (one event deferred twice counts twice); EventsNotDurable counts
	// submissions failed with ErrNotDurable after an event-log write failure.
	EventsRejected   uint64
	EventsBacklogged uint64
	EventsDeferred   uint64
	EventsNotDurable uint64
	// BatchLast and BatchMax track applied batch sizes in events.
	BatchLast int
	BatchMax  int
	// ApplySeconds is cumulative engine time inside ApplyBatch;
	// WaitSeconds is cumulative submit→applied latency across all applied
	// events. Divide by Ticks / EventsApplied for means.
	ApplySeconds float64
	WaitSeconds  float64
	// Checkpoints counts checkpoints saved by this process;
	// CheckpointErrors counts snapshot/save/rotate failures. The Last*
	// watermarks name the newest saved checkpoint.
	Checkpoints          uint64
	CheckpointErrors     uint64
	LastCheckpointTick   uint64
	LastCheckpointEvents uint64
}

// Server is the maintenance daemon. Create with New, drive with Submit (or
// the HTTP handler), stop with Close.
type Server struct {
	cfg Config
	eng Engine

	ring  *admitRing
	carry []*submission
	stopc chan struct{}
	done  chan struct{}

	// held and nextSeq enforce arrival order over the sharded ring: the
	// loop admits only the contiguous-seq prefix of what it drained and
	// holds the rest until the missing enqueue becomes visible (its depth
	// reservation keeps the loop from sleeping meanwhile). Both are owned
	// by the loop goroutine.
	held    []*submission
	nextSeq uint64

	closeMu sync.RWMutex
	closed  bool

	mu           sync.Mutex // guards eng, counters, cfg.Log
	counters     Counters
	logErr       error
	liveAuditErr error

	// live is the incremental metrics layer (tracker + λ₂ cache + stretch
	// sampler); nil when Config.SlowHealth is set or the engine doesn't
	// support batch deltas, in which case Health measures the graph.
	live *liveState

	// adm is the reusable incremental batch admission (reset each tick so
	// its buckets amortize to zero allocations); nil until the first tick,
	// or permanently when the engine doesn't expose admission.
	adm *core.BatchAdmission

	// healthRng backs the slow health path's sampled measurement; reseeded
	// per call so repeated polls stay deterministic without allocating a
	// fresh generator each time.
	healthMu  sync.Mutex
	healthRng *rand.Rand

	// degraded mirrors logErr != nil for lock-free Submit fast-fail: once the
	// event log has failed, writes are refused (ErrNotDurable) instead of
	// being applied and acknowledged non-durably.
	degraded atomic.Bool

	backlogged atomic.Uint64
	carried    atomic.Int64 // mirrors len(carry) for QueueDepth readers
	start      time.Time

	// Unified metrics (see metrics.go). The histograms are observed by the
	// loop goroutine inside apply; the registry renders them on scrape.
	reg       *obs.Registry
	tickHist  *obs.Histogram
	batchHist *obs.Histogram
	queueHist *obs.Histogram
}

// recordableEngine is satisfied by engines that accept a per-wound trace
// recorder (core.State and dist.Engine both do).
type recordableEngine interface {
	SetRecorder(*obs.Recorder)
}

type submission struct {
	ev     adversary.Event
	done   chan error
	at     time.Time
	seq    uint64 // enqueue order stamp; drainInto sorts on it (see admitRing)
	defers int
}

// New starts the daemon over eng. The engine must not be touched by anyone
// else until Close returns (the server owns it, including reads).
func New(eng Engine, cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		eng:       eng,
		ring:      newAdmitRing(cfg.queueDepth()),
		stopc:     make(chan struct{}),
		done:      make(chan struct{}),
		start:     time.Now(),
		healthRng: rand.New(rand.NewSource(1)),
	}
	// A recovered daemon continues the run's global numbering so checkpoint
	// and log-segment anchors stay monotone across restarts.
	s.counters.Ticks = cfg.Resume.Tick
	s.counters.EventsApplied = cfg.Resume.Events
	if cfg.Recorder != nil {
		if re, ok := eng.(recordableEngine); ok {
			re.SetRecorder(cfg.Recorder)
		}
	}
	if _, ok := eng.(DeltaBatcher); ok && !cfg.SlowHealth {
		s.live = s.newLiveState()
	}
	s.buildRegistry()
	go s.loop()
	if s.live != nil {
		go s.refresher()
		// Seed the caches (connectivity is already exact; λ₂ and stretch
		// become valid once this first refresh lands).
		s.live.requestRefresh()
	}
	return s
}

// Submit enqueues one event and blocks until it is applied (nil), rejected
// (an error explaining why), refused by backpressure (ErrBacklog), or ctx
// ends. A context cancellation does not retract the event — it may still be
// applied after Submit returns.
func (s *Server) Submit(ctx context.Context, ev adversary.Event) error {
	sub, err := s.submitAsync(ev)
	if err != nil {
		return err
	}
	select {
	case err := <-sub.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitAsync enqueues one event without waiting for its verdict.
func (s *Server) submitAsync(ev adversary.Event) (*submission, error) {
	sub := &submission{ev: ev, done: make(chan error, 1), at: time.Now()}
	one := [1]*submission{sub}
	accepted, err := s.submitMany(one[:])
	if err != nil {
		return nil, err
	}
	if accepted == 0 {
		return nil, ErrBacklog
	}
	return sub, nil
}

// submitMany enqueues a group of already-assembled submissions as one
// admission-ring operation — one atomic reservation and one shard lock for
// the whole group, which both keeps the group's relative order (the HTTP
// array contract: inserts admit before the events that attach to them) and
// makes ingest cost O(1) synchronization per request instead of per event.
// Returns how many submissions were accepted (always a prefix); the caller
// fails the rest with ErrBacklog.
func (s *Server) submitMany(subs []*submission) (int, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.degraded.Load() {
		s.mu.Lock()
		s.counters.EventsNotDurable += uint64(len(subs))
		err := s.logErr
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	accepted := s.ring.enqueue(subs)
	if rest := len(subs) - accepted; rest > 0 {
		s.backlogged.Add(uint64(rest))
	}
	return accepted, nil
}

// loop is the single goroutine that owns batching: it waits for work,
// gathers one tick's worth of submissions, and applies them as one batch.
func (s *Server) loop() {
	defer close(s.done)
	for {
		if len(s.carry) == 0 && len(s.held) == 0 && s.ring.len() == 0 {
			select {
			case <-s.stopc:
				s.drain()
				return
			case <-s.ring.notify:
			}
		} else {
			select {
			case <-s.stopc:
				s.drain()
				return
			default:
			}
		}
		s.tick()
	}
}

// takeCarry empties the deferred-submission buffer. carry is owned by the
// loop goroutine (tick, drain, and apply all run on it); the atomic carried
// mirror is what concurrent QueueDepth readers see.
func (s *Server) takeCarry() []*submission {
	pending := s.carry
	s.carry = nil
	s.carried.Store(0)
	return pending
}

// orderGathered restores arrival order over one gather's worth of ring
// submissions (pending[carried:] — the carry prefix keeps its head-of-line
// position untouched). Shards interleave enqueue calls and a drain pass is
// not a consistent snapshot — it can pick up a later enqueue while an
// earlier one is still mid-append in another shard — so after sorting by
// the dense sequence stamp, only the contiguous prefix is released;
// anything after a gap is held for the next tick, when the missing
// enqueue's submissions have become visible.
func (s *Server) orderGathered(pending []*submission, carried int) []*submission {
	for tries := 0; ; tries++ {
		sortBySeq(pending[carried:])
		cut := carried
		for cut < len(pending) {
			// One enqueue call's submissions (an HTTP array) share a seq;
			// a redrained pass re-walks already-released seqs.
			sq := pending[cut].seq
			if sq > s.nextSeq+1 {
				break
			}
			if sq > s.nextSeq {
				s.nextSeq = sq
			}
			cut++
		}
		if cut == len(pending) {
			return pending
		}
		// Gap: an earlier enqueue is mid-append in its shard. It is at most
		// microseconds away — yield and redrain rather than stalling the
		// gapped tail a whole tick. Holding is the fallback for a straggler
		// that still hasn't surfaced.
		if tries < 3 {
			carried = cut
			runtime.Gosched()
			pending = s.ring.drainInto(pending)
			continue
		}
		s.held = append(s.held, pending[cut:]...)
		return pending[:cut]
	}
}

// tick gathers submissions for one coalescing window and applies them.
func (s *Server) tick() {
	pending := s.takeCarry()
	carried := len(pending)
	pending = append(pending, s.held...)
	s.held = s.held[:0]
	pending = s.ring.drainInto(pending)
	max := s.cfg.maxBatch()
	if s.cfg.Tick > 0 {
		deadline := time.NewTimer(s.cfg.Tick)
		defer deadline.Stop()
	gather:
		for len(pending) < max {
			select {
			case <-s.ring.notify:
				pending = s.ring.drainInto(pending)
			case <-deadline.C:
				break gather
			case <-s.stopc:
				break gather
			}
		}
	}
	pending = s.orderGathered(pending, carried)
	// Anything beyond the batch cap carries into the next tick; the ring's
	// one-shot notify token may already be consumed, and the loop's
	// carry/ring length check keeps it from blocking while work remains.
	if len(pending) > max {
		s.carry = append(s.carry, pending[max:]...)
		s.carried.Store(int64(len(s.carry)))
		pending = pending[:max]
	}
	s.apply(pending)
}

// drain finishes everything already accepted into the queue after Close:
// Submit can no longer enqueue (closed is set before stopc closes), so the
// queue only shrinks. Every remaining submission is applied or answered.
func (s *Server) drain() {
	for {
		pending := s.takeCarry()
		carried := len(pending)
		pending = append(pending, s.held...)
		s.held = s.held[:0]
		pending = s.ring.drainInto(pending)
		pending = s.orderGathered(pending, carried)
		if len(pending) == 0 {
			// A held gap or a reserved-but-unappended enqueue means a
			// submission is still becoming visible: yield and re-drain
			// rather than dropping it on the floor.
			if len(s.held) > 0 || s.ring.len() > 0 {
				runtime.Gosched()
				continue
			}
			s.mu.Lock()
			// Final checkpoint: a clean shutdown restarts from here with an
			// empty log tail.
			s.checkpointLocked()
			if s.cfg.Log != nil {
				// A failed final close means the log tail may not have
				// reached stable storage: surface it (Close returns logErr,
				// cmd/xheal-serve exits non-zero) and mark the daemon
				// degraded so health probes see it too.
				if err := s.cfg.Log.Close(); err != nil {
					s.degraded.Store(true)
					if s.logErr == nil {
						s.logErr = fmt.Errorf("event log close: %w", err)
					}
				}
			}
			s.mu.Unlock()
			return
		}
		// Cap the batch; anything beyond it carries into the next pass.
		max := s.cfg.maxBatch()
		if len(pending) > max {
			s.carry = append(s.carry, pending[max:]...)
			s.carried.Store(int64(len(s.carry)))
			pending = pending[:max]
		}
		s.apply(pending)
	}
}

// batchState tracks one tick's in-assembly batch for conflict admission.
// adm, when the engine supports it, carries the incremental admission state
// that makes each decision O(event) instead of O(batch).
type batchState struct {
	batch   core.Batch
	members []*submission
	adm     *core.BatchAdmission
}

// admit decides whether sub's event can join this tick's batch. The rule is
// core.ValidateBatch itself — the prospective batch (assembled so far plus
// this event) is validated through the engine, so the server cannot drift
// from the engines' own admission semantics and an admitted batch cannot be
// rejected at apply time. A prospective-batch ErrBatchConflict means the
// event only clashes with *this* timestep (delete of a node inserted or
// attached this tick, duplicate target, ...) and defers; any other
// validation error is a property of the event itself and rejects it.
// Returns (accepted, rejection): deferred events return (false, nil).
func (s *Server) admit(bs *batchState, sub *submission) (bool, error) {
	ev := sub.ev
	switch ev.Kind {
	case adversary.Insert:
		// Serving policy on top of the shared rule: an unattached insertion
		// would disconnect the healed graph, so the daemon refuses it.
		if len(ev.Neighbors) == 0 {
			return false, fmt.Errorf("insert %d: no neighbors: %w", ev.Node, core.ErrBadNeighbor)
		}
	case adversary.Delete:
		// Serving policy: keep a non-trivial graph alive.
		alive := s.eng.Graph().NumNodes() + len(bs.batch.Insertions) - len(bs.batch.Deletions)
		if alive-1 < s.cfg.minNodes() {
			return false, fmt.Errorf("delete %d: %w", ev.Node, ErrTooFewNodes)
		}
	default:
		return false, fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}

	// The shared rule itself: incremental admission when the engine offers
	// it (O(event) per decision, identical verdicts), otherwise wholesale
	// validation of the prospective batch.
	var err error
	if bs.adm != nil {
		if ev.Kind == adversary.Insert {
			err = bs.adm.AdmitInsertion(core.BatchInsertion{Node: ev.Node, Neighbors: ev.Neighbors})
		} else {
			err = bs.adm.AdmitDeletion(ev.Node)
		}
	} else {
		cand := bs.batch
		if ev.Kind == adversary.Insert {
			cand.Insertions = append(cand.Insertions, core.BatchInsertion{
				Node: ev.Node, Neighbors: ev.Neighbors,
			})
		} else {
			cand.Deletions = append(cand.Deletions, ev.Node)
		}
		if err = s.eng.ValidateBatch(cand); err == nil {
			bs.batch = cand
			return true, nil
		}
	}
	if err != nil {
		if errors.Is(err, core.ErrBatchConflict) {
			return false, nil
		}
		return false, err
	}
	if ev.Kind == adversary.Insert {
		bs.batch.Insertions = append(bs.batch.Insertions, core.BatchInsertion{
			Node: ev.Node, Neighbors: ev.Neighbors,
		})
	} else {
		bs.batch.Deletions = append(bs.batch.Deletions, ev.Node)
	}
	return true, nil
}

// apply admits pending submissions in arrival order, applies the resulting
// batch, logs it, and answers every submission.
func (s *Server) apply(pending []*submission) {
	if len(pending) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// A failed event log means nothing further can be made durable: refuse
	// the whole tick instead of applying and acknowledging events that would
	// vanish on the next crash. (Submissions racing the failure can still
	// reach here after the degraded fast-fail in submitAsync.)
	if s.logErr != nil && s.cfg.Log != nil {
		s.failNotDurable(pending)
		return
	}

	bs := &batchState{}
	if s.adm != nil {
		s.adm.Reset()
		bs.adm = s.adm
	} else if eng, ok := s.eng.(Admitter); ok {
		// nil (engine closed) falls back to wholesale ValidateBatch.
		s.adm = eng.BeginAdmission()
		bs.adm = s.adm
	}
	for _, sub := range pending {
		ok, rejection := s.admit(bs, sub)
		switch {
		case ok:
			bs.members = append(bs.members, sub)
		case rejection != nil:
			s.counters.EventsRejected++
			sub.done <- rejection
		default:
			sub.defers++
			if sub.defers > s.cfg.maxDefer() {
				s.counters.EventsRejected++
				sub.done <- fmt.Errorf("%s %d after %d deferrals: %w",
					sub.ev.Kind, sub.ev.Node, sub.defers-1, ErrTooManyConflicts)
				continue
			}
			s.counters.EventsDeferred++
			s.carry = append(s.carry, sub)
			s.carried.Store(int64(len(s.carry)))
		}
	}
	if len(bs.members) == 0 {
		return
	}

	// Spans emitted during this batch carry the tick they will be counted
	// under once the batch lands.
	s.cfg.Recorder.SetTick(s.counters.Ticks + 1)
	applyStart := time.Now()
	delta, err := s.applyBatch(bs.batch)
	applied := time.Since(applyStart)
	if err != nil {
		// Admission should have prevented this; fail the whole timestep
		// (ApplyBatch rejects wholesale) and tell every member why.
		for _, sub := range bs.members {
			s.counters.EventsRejected++
			sub.done <- fmt.Errorf("batch rejected: %w", err)
		}
		return
	}

	// Log-before-ack: the batch becomes durable (appended and, when the log
	// supports it, fsynced) before any member unblocks. On failure the
	// members are failed, not acked — they were applied in memory but are not
	// durable, and acknowledging them would break the contract that recovery
	// (and trace.Load's torn-tail tolerance) relies on.
	if s.cfg.Log != nil {
		if err := s.logBatch(bs.batch); err != nil {
			s.logErr = err
			s.degraded.Store(true)
			s.failNotDurable(bs.members)
			return
		}
	}

	if s.live != nil {
		s.live.tracker.Apply(delta)
		s.live.stretch.Observe(delta)
		ticks := s.counters.Ticks + 1
		if s.cfg.AuditEvery > 0 && ticks%uint64(s.cfg.AuditEvery) == 0 {
			s.auditLive()
		}
		if ticks%s.cfg.refreshEvery() == 0 {
			s.live.requestRefresh()
		}
	}

	s.counters.Ticks++
	s.counters.ApplySeconds += applied.Seconds()
	s.tickHist.Observe(applied.Seconds())
	s.batchHist.Observe(float64(len(bs.members)))
	s.queueHist.Observe(float64(s.QueueDepth()))
	s.counters.BatchLast = len(bs.members)
	if len(bs.members) > s.counters.BatchMax {
		s.counters.BatchMax = len(bs.members)
	}
	now := time.Now()
	for _, sub := range bs.members {
		s.counters.EventsApplied++
		if sub.ev.Kind == adversary.Insert {
			s.counters.InsertsApplied++
		} else {
			s.counters.DeletesApplied++
		}
		s.counters.WaitSeconds += now.Sub(sub.at).Seconds()
		sub.done <- nil
	}

	if s.counters.Ticks%s.cfg.checkpointEvery() == 0 {
		s.checkpointLocked()
	}
}

// applyBatch routes one admitted batch into the engine: through the
// delta-reporting path when the incremental metrics layer is live, through
// the parallel disjoint-wound path when Config.Parallelism asks for it and
// the engine supports it, serially otherwise. Every path produces
// byte-identical engine state (see core.State.ApplyBatchParallel's
// contract); only the returned delta differs (empty off the live path —
// nothing consumes it there).
func (s *Server) applyBatch(b core.Batch) (core.TickDelta, error) {
	workers := 1
	if s.cfg.Parallelism > 1 {
		workers = s.cfg.Parallelism
	}
	if s.live != nil {
		if db, ok := s.eng.(DeltaBatcher); ok {
			return db.ApplyBatchDelta(b, workers)
		}
	}
	if workers > 1 {
		if pb, ok := s.eng.(ParallelBatcher); ok {
			return core.TickDelta{}, pb.ApplyBatchParallel(b, workers)
		}
	}
	return core.TickDelta{}, s.eng.ApplyBatch(b)
}

// logBatch makes one applied batch durable: every event is appended to the
// event log in exact application order (all insertions, then all deletions),
// then the log is synced to stable storage when it supports that — one fsync
// per tick, amortized over the whole batch.
func (s *Server) logBatch(b core.Batch) error {
	for _, ins := range b.Insertions {
		ev := adversary.Event{Kind: adversary.Insert, Node: ins.Node, Neighbors: ins.Neighbors}
		if err := s.cfg.Log.Append(ev); err != nil {
			return err
		}
	}
	for _, d := range b.Deletions {
		if err := s.cfg.Log.Append(adversary.Event{Kind: adversary.Delete, Node: d}); err != nil {
			return err
		}
	}
	if sl, ok := s.cfg.Log.(SyncingLog); ok {
		return sl.Sync()
	}
	return nil
}

// failNotDurable answers every submission with ErrNotDurable (wrapping the
// recorded log failure). Caller holds s.mu with s.logErr set.
func (s *Server) failNotDurable(subs []*submission) {
	for _, sub := range subs {
		s.counters.EventsNotDurable++
		sub.done <- fmt.Errorf("%w: %v", ErrNotDurable, s.logErr)
	}
}

// Counters returns a snapshot of the serving-work counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters
	c.EventsBacklogged = s.backlogged.Load()
	return c
}

// QueueDepth reports events accepted but not yet applied (buffered in the
// admission ring plus carried deferrals). Approximate while the loop is
// moving.
func (s *Server) QueueDepth() int { return s.ring.len() + int(s.carried.Load()) }

// Health is one live health snapshot.
type Health struct {
	// Status is "ok", or "degraded" when the healed graph is disconnected or
	// the event log has failed (see LogError).
	Status string `json:"status"`
	// LogError, when set, is the event-log write failure that put the daemon
	// into the refuse-writes degraded state (every Submit fails with
	// ErrNotDurable until restart).
	LogError string `json:"log_error,omitempty"`
	// Engine-level facts.
	Nodes     int  `json:"nodes"`
	Edges     int  `json:"edges"`
	Connected bool `json:"connected"`
	Kappa     int  `json:"kappa"`
	// Snapshot is the MeasureFast-style measurement (no spectral work,
	// sampled stretch) of the healed graph against G′.
	Snapshot metrics.Snapshot `json:"snapshot"`
	// Serving state.
	Counters      Counters `json:"counters"`
	QueueDepth    int      `json:"queue_depth"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	// Obs summarizes the serving histograms and, when per-wound tracing is
	// on, the repair spans.
	Obs ObsHealth `json:"obs"`
	// Durability reports checkpoint progress; absent when no checkpoint
	// store is configured.
	Durability *DurabilityHealth `json:"durability,omitempty"`
	// Live reports the incremental metrics layer — cached λ₂ and stretch
	// estimates with their staleness, connectivity age, and tracker audit
	// telemetry. Absent on the slow (clone-and-measure) health path.
	Live *LiveHealth `json:"live,omitempty"`
}

// DurabilityHealth is the durability slice of a health snapshot.
type DurabilityHealth struct {
	// Checkpoints / CheckpointErrors count saves and failures by this
	// process; the Last* watermarks name the newest saved checkpoint.
	Checkpoints          uint64 `json:"checkpoints"`
	CheckpointErrors     uint64 `json:"checkpoint_errors"`
	LastCheckpointTick   uint64 `json:"last_checkpoint_tick"`
	LastCheckpointEvents uint64 `json:"last_checkpoint_events"`
	// Resumed is true when this process recovered prior state at startup.
	Resumed bool `json:"resumed"`
	// ResumeTick / ResumeEvents are the watermarks serving resumed from.
	ResumeTick   uint64 `json:"resume_tick,omitempty"`
	ResumeEvents uint64 `json:"resume_events,omitempty"`
}

// ObsHealth is the observability slice of a health snapshot: latency
// percentiles from the streaming histograms plus the span ledger.
type ObsHealth struct {
	// TickLatency summarizes engine time per applied batch.
	TickLatency obs.LatencySummary `json:"tick_latency"`
	// RepairLatency summarizes per-wound repair spans (admitted → settled).
	// Absent when no recorder is attached.
	RepairLatency *obs.LatencySummary `json:"repair_latency,omitempty"`
	// Spans / SpansDropped count spans emitted to the span log and spans
	// lost to write failures. Zero when no recorder is attached.
	Spans        uint64 `json:"spans"`
	SpansDropped uint64 `json:"spans_dropped"`
}

// Health snapshots the daemon's health. On the live (default) path the
// engine facts come from the incremental tracker and the λ₂/stretch caches
// — no graph clone, no traversal, no measurement under or behind the apply
// lock; the lock is held only to copy the counters. With Config.SlowHealth
// (or an engine without batch deltas) it falls back to the original
// clone-under-lock, measure-outside-it path.
func (s *Server) Health() Health {
	s.mu.Lock()
	c := s.counters
	logErr := s.logErr
	var g, gp *graph.Graph
	var kappa int
	if s.live == nil {
		g, gp = s.eng.Graph().Clone(), s.eng.Baseline().Clone()
		kappa = s.eng.Kappa()
	}
	s.mu.Unlock()
	c.EventsBacklogged = s.backlogged.Load()

	var h Health
	if s.live != nil {
		h = s.liveHealth(c, logErr)
	} else {
		h = s.slowHealth(g, gp, kappa, c, logErr)
	}
	h.UptimeSeconds = time.Since(s.start).Seconds()

	h.Obs = ObsHealth{TickLatency: s.tickHist.Snapshot().Summary()}
	if rec := s.cfg.Recorder; rec != nil {
		h.Obs.Spans, h.Obs.SpansDropped = rec.Spans(), rec.Dropped()
		if rh := rec.RepairHist(); rh != nil {
			sum := rh.Snapshot().Summary()
			h.Obs.RepairLatency = &sum
		}
	}

	if s.cfg.Checkpoints != nil {
		h.Durability = &DurabilityHealth{
			Checkpoints:          c.Checkpoints,
			CheckpointErrors:     c.CheckpointErrors,
			LastCheckpointTick:   c.LastCheckpointTick,
			LastCheckpointEvents: c.LastCheckpointEvents,
			Resumed:              s.cfg.Resume != (Resume{}),
			ResumeTick:           s.cfg.Resume.Tick,
			ResumeEvents:         s.cfg.Resume.Events,
		}
	}
	return h
}

// slowHealth is the clone-and-measure fallback: a MeasureFast-equivalent
// pass (no spectral work, sampled stretch) over cloned graphs. The
// measurement rng is persistent and reseeded per call, so polls stay
// deterministic without a per-call generator allocation.
func (s *Server) slowHealth(g, gp *graph.Graph, kappa int, c Counters, logErr error) Health {
	s.healthMu.Lock()
	s.healthRng.Seed(1)
	snap := metrics.Measure(g, gp, metrics.Config{
		SkipSpectral:   true,
		StretchSources: 4,
		Rng:            s.healthRng,
	})
	s.healthMu.Unlock()

	status, logMsg := "ok", ""
	if !snap.Connected {
		status = "degraded"
	}
	if logErr != nil {
		status, logMsg = "degraded", logErr.Error()
	}
	return Health{
		Status:     status,
		LogError:   logMsg,
		Nodes:      snap.Nodes,
		Edges:      snap.Edges,
		Connected:  snap.Connected,
		Kappa:      kappa,
		Snapshot:   snap,
		Counters:   c,
		QueueDepth: s.QueueDepth(),
	}
}

// CheckInvariants runs the engine's structural invariant check under the
// server's lock (safe while serving). With Config.InvariantBudget set and
// an engine that supports it, each call checks a rotating budgeted sample
// instead of sweeping the whole structure; successive calls cover
// everything (see core.State.CheckInvariantsSampled).
func (s *Server) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.cfg.InvariantBudget; b > 0 {
		if sc, ok := s.eng.(SampledChecker); ok {
			return sc.CheckInvariantsSampled(b)
		}
	}
	return s.eng.CheckInvariants()
}

// Graph returns a copy of the current healed graph, safe to use after the
// server keeps mutating.
func (s *Server) Graph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Graph().Clone()
}

// Close stops intake, drains and applies everything already accepted,
// finishes the event log, and waits for the loop to exit. Idempotent. The
// returned error is the first event-log failure — a write failure during
// serving or a failed flush/close of the log during the final drain — so a
// shutdown whose tail may not have reached stable storage is visible to the
// caller (cmd/xheal-serve exits non-zero on it).
func (s *Server) Close() error {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if !already {
		close(s.stopc)
	}
	<-s.done
	if s.live != nil {
		<-s.live.refreshDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logErr
}
