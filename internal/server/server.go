package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/obs"
)

// Engine is the healing engine a Server drives. Both core.State (the
// sequential Algorithm 3.1 reference) and dist.Engine (the §5 message
// protocol) satisfy it, so a daemon hosts either interchangeably.
type Engine interface {
	ApplyBatch(core.Batch) error
	ValidateBatch(core.Batch) error
	Graph() *graph.Graph
	Baseline() *graph.Graph
	Kappa() int
	CheckInvariants() error
}

// Sentinel errors.
var (
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("server: closed")
	// ErrBacklog is the backpressure signal: the bounded ingest queue is
	// full and the event was not accepted.
	ErrBacklog = errors.New("server: ingest queue is full")
	// ErrTooManyConflicts rejects an event deferred past Config.MaxDefer
	// ticks by repeated intra-tick conflicts.
	ErrTooManyConflicts = errors.New("server: event conflicted for too many consecutive ticks")
	// ErrTooFewNodes rejects a deletion that would shrink the network below
	// Config.MinNodes.
	ErrTooFewNodes = errors.New("server: deletion refused, too few nodes would remain")
	// ErrNotDurable reports that the event log failed (disk full, I/O error):
	// the log-before-ack contract can no longer be honored, so the batch that
	// hit the failure and every later submission are failed rather than
	// acknowledged non-durably. The daemon stays up for reads (health,
	// metrics, graph) but refuses writes until restarted over healthy storage.
	ErrNotDurable = errors.New("server: event log failed, refusing non-durable writes")
)

// Config parameterizes a Server. The zero value is usable: immediate ticks,
// defaults for every bound, no event log.
type Config struct {
	// Tick is the coalescing window: once the loop picks up a first event it
	// keeps gathering arrivals for this long (capped by MaxBatch) before
	// applying the batch. 0 applies whatever has already arrived — batching
	// then emerges from submissions that pile up while a batch is applying.
	Tick time.Duration
	// QueueDepth bounds the ingest queue (default 1024). A full queue fails
	// Submit with ErrBacklog.
	QueueDepth int
	// MaxBatch caps events per timestep (default 256).
	MaxBatch int
	// MaxDefer caps how many consecutive ticks one event may be deferred by
	// intra-tick conflicts before it is rejected (default 4).
	MaxDefer int
	// MinNodes refuses deletions that would leave fewer alive nodes
	// (default 2: healing and measurement both want a non-trivial graph).
	MinNodes int
	// Log, when set, receives every applied event in application order.
	// The server serializes Append calls and Closes the log on Close. If the
	// log also implements RotatingLog (trace.FileLog does), the server
	// rotates to a fresh segment after every checkpoint and compacts the
	// segments the checkpoint covers.
	Log EventLog
	// Checkpoints, when set alongside an engine that implements Snapshotter,
	// enables durability: the server saves a checkpoint every
	// CheckpointEvery applied ticks (default 32) and once more during the
	// final drain, then rotates and compacts the event log behind it.
	Checkpoints checkpoint.Store
	// CheckpointEvery is the checkpoint cadence in applied ticks (default 32).
	CheckpointEvery int
	// ArchiveLog makes compaction move covered log segments to the log
	// directory's archive/ subdirectory instead of deleting them, preserving
	// the from-genesis history that recovery verification replays.
	ArchiveLog bool
	// EngineName ("core" or "dist") and Seed are stamped into checkpoint
	// envelopes so a store can't be resumed against a differently-configured
	// daemon. GenesisDigest (see the GenesisDigest function) additionally pins
	// the initial topology, so restarting under different workload flags fails
	// recovery instead of silently serving a mismatched genesis.
	EngineName    string
	Seed          int64
	GenesisDigest string
	// Resume seeds the tick/event watermarks after recovery, so checkpoint
	// and log-segment anchors continue the run's global numbering. Only the
	// watermarks resume; per-kind counters restart at zero for this
	// process's serving window.
	Resume Resume
	// Recorder, when set, traces every wound repair as a span: the server
	// stamps the tick, the engine stamps the phases. It is handed to the
	// engine at New if the engine accepts one (core.State and dist.Engine
	// do). nil disables per-wound tracing at zero cost.
	Recorder *obs.Recorder
	// Parallelism, when > 1 and the engine implements ParallelBatcher
	// (core.State does), heals disjoint wounds of each tick's batch
	// concurrently on that many workers. 0 or 1 applies batches serially.
	// The final state is byte-identical either way; see core.State's
	// ApplyBatchParallel.
	Parallelism int
}

// ParallelBatcher is the optional engine surface Config.Parallelism uses:
// apply one batch with disjoint-wound repairs fanned out to a bounded
// worker pool. core.State satisfies it.
type ParallelBatcher interface {
	ApplyBatchParallel(b core.Batch, workers int) error
}

// EventLog is the append-only sink for applied events. *trace.LogWriter and
// *trace.FileLog both satisfy it.
type EventLog interface {
	Append(adversary.Event) error
	Close() error
}

// RotatingLog is the optional segmented-log surface: Rotate seals the current
// segment and starts a fresh one anchored at the given tick; Compact drops
// (or archives) segments fully covered by a checkpoint at beforeEvents.
// *trace.FileLog satisfies it.
type RotatingLog interface {
	Rotate(tick uint64, checkpoint string) error
	Compact(beforeEvents uint64, archive bool) error
}

// SyncingLog is the optional stable-storage surface: Sync flushes everything
// appended so far to disk. When the configured log implements it (both
// *trace.LogWriter over an *os.File and *trace.FileLog do), the server syncs
// once per applied batch before acknowledging its members, upgrading the
// log-before-ack guarantee from process-crash durability to power-loss
// durability at the cost of one fsync per tick.
type SyncingLog interface {
	Sync() error
}

// Snapshotter is the optional engine surface durability needs: the complete
// engine state as deterministic JSON. core.State and dist.Engine both
// satisfy it.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
}

// Resume carries the run-global watermarks a recovered daemon restarts from.
type Resume struct {
	Tick   uint64
	Events uint64
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 1024
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 256
}

func (c Config) maxDefer() int {
	if c.MaxDefer > 0 {
		return c.MaxDefer
	}
	return 4
}

func (c Config) minNodes() int {
	if c.MinNodes > 0 {
		return c.MinNodes
	}
	return 2
}

func (c Config) checkpointEvery() uint64 {
	if c.CheckpointEvery > 0 {
		return uint64(c.CheckpointEvery)
	}
	return 32
}

// Counters are the serving-work counters, readable via Counters or the
// /metrics endpoint while the daemon runs.
type Counters struct {
	// Ticks is the number of applied timesteps (empty ticks don't count).
	Ticks uint64
	// EventsApplied = InsertsApplied + DeletesApplied.
	EventsApplied  uint64
	InsertsApplied uint64
	DeletesApplied uint64
	// EventsRejected counts events refused with an error (invalid target,
	// defer cap, engine rejection); EventsBacklogged counts ErrBacklog
	// refusals at the queue; EventsDeferred counts tick-to-tick deferrals
	// (one event deferred twice counts twice); EventsNotDurable counts
	// submissions failed with ErrNotDurable after an event-log write failure.
	EventsRejected   uint64
	EventsBacklogged uint64
	EventsDeferred   uint64
	EventsNotDurable uint64
	// BatchLast and BatchMax track applied batch sizes in events.
	BatchLast int
	BatchMax  int
	// ApplySeconds is cumulative engine time inside ApplyBatch;
	// WaitSeconds is cumulative submit→applied latency across all applied
	// events. Divide by Ticks / EventsApplied for means.
	ApplySeconds float64
	WaitSeconds  float64
	// Checkpoints counts checkpoints saved by this process;
	// CheckpointErrors counts snapshot/save/rotate failures. The Last*
	// watermarks name the newest saved checkpoint.
	Checkpoints          uint64
	CheckpointErrors     uint64
	LastCheckpointTick   uint64
	LastCheckpointEvents uint64
}

// Server is the maintenance daemon. Create with New, drive with Submit (or
// the HTTP handler), stop with Close.
type Server struct {
	cfg Config
	eng Engine

	queue chan *submission
	carry []*submission
	stopc chan struct{}
	done  chan struct{}

	closeMu sync.RWMutex
	closed  bool

	mu       sync.Mutex // guards eng, counters, cfg.Log
	counters Counters
	logErr   error

	// degraded mirrors logErr != nil for lock-free Submit fast-fail: once the
	// event log has failed, writes are refused (ErrNotDurable) instead of
	// being applied and acknowledged non-durably.
	degraded atomic.Bool

	backlogged atomic.Uint64
	carried    atomic.Int64 // mirrors len(carry) for QueueDepth readers
	start      time.Time

	// Unified metrics (see metrics.go). The histograms are observed by the
	// loop goroutine inside apply; the registry renders them on scrape.
	reg       *obs.Registry
	tickHist  *obs.Histogram
	batchHist *obs.Histogram
	queueHist *obs.Histogram
}

// recordableEngine is satisfied by engines that accept a per-wound trace
// recorder (core.State and dist.Engine both do).
type recordableEngine interface {
	SetRecorder(*obs.Recorder)
}

type submission struct {
	ev     adversary.Event
	done   chan error
	at     time.Time
	defers int
}

// New starts the daemon over eng. The engine must not be touched by anyone
// else until Close returns (the server owns it, including reads).
func New(eng Engine, cfg Config) *Server {
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		queue: make(chan *submission, cfg.queueDepth()),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	// A recovered daemon continues the run's global numbering so checkpoint
	// and log-segment anchors stay monotone across restarts.
	s.counters.Ticks = cfg.Resume.Tick
	s.counters.EventsApplied = cfg.Resume.Events
	if cfg.Recorder != nil {
		if re, ok := eng.(recordableEngine); ok {
			re.SetRecorder(cfg.Recorder)
		}
	}
	s.buildRegistry()
	go s.loop()
	return s
}

// Submit enqueues one event and blocks until it is applied (nil), rejected
// (an error explaining why), refused by backpressure (ErrBacklog), or ctx
// ends. A context cancellation does not retract the event — it may still be
// applied after Submit returns.
func (s *Server) Submit(ctx context.Context, ev adversary.Event) error {
	sub, err := s.submitAsync(ev)
	if err != nil {
		return err
	}
	select {
	case err := <-sub.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitAsync enqueues one event without waiting for its verdict, so a
// caller holding several events (the HTTP array ingest) can land them all
// in the same coalescing window and await the verdicts afterwards.
func (s *Server) submitAsync(ev adversary.Event) (*submission, error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	if s.degraded.Load() {
		s.closeMu.RUnlock()
		s.mu.Lock()
		s.counters.EventsNotDurable++
		err := s.logErr
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrNotDurable, err)
	}
	sub := &submission{ev: ev, done: make(chan error, 1), at: time.Now()}
	select {
	case s.queue <- sub:
		s.closeMu.RUnlock()
		return sub, nil
	default:
		s.closeMu.RUnlock()
		s.backlogged.Add(1)
		return nil, ErrBacklog
	}
}

// loop is the single goroutine that owns batching: it waits for work,
// gathers one tick's worth of submissions, and applies them as one batch.
func (s *Server) loop() {
	defer close(s.done)
	for {
		var first *submission
		if len(s.carry) == 0 {
			select {
			case <-s.stopc:
				s.drain()
				return
			case first = <-s.queue:
			}
		} else {
			select {
			case <-s.stopc:
				s.drain()
				return
			default:
			}
		}
		s.tick(first)
	}
}

// takeCarry empties the deferred-submission buffer. carry is owned by the
// loop goroutine (tick, drain, and apply all run on it); the atomic carried
// mirror is what concurrent QueueDepth readers see.
func (s *Server) takeCarry() []*submission {
	pending := s.carry
	s.carry = nil
	s.carried.Store(0)
	return pending
}

// tick gathers submissions for one coalescing window and applies them.
func (s *Server) tick(first *submission) {
	pending := s.takeCarry()
	if first != nil {
		pending = append(pending, first)
	}
	max := s.cfg.maxBatch()
	if s.cfg.Tick > 0 {
		deadline := time.NewTimer(s.cfg.Tick)
		defer deadline.Stop()
	gather:
		for len(pending) < max {
			select {
			case sub := <-s.queue:
				pending = append(pending, sub)
			case <-deadline.C:
				break gather
			case <-s.stopc:
				break gather
			}
		}
	} else {
	drainNow:
		for len(pending) < max {
			select {
			case sub := <-s.queue:
				pending = append(pending, sub)
			default:
				break drainNow
			}
		}
	}
	s.apply(pending)
}

// drain finishes everything already accepted into the queue after Close:
// Submit can no longer enqueue (closed is set before stopc closes), so the
// queue only shrinks. Every remaining submission is applied or answered.
func (s *Server) drain() {
	for {
		pending := s.takeCarry()
	empty:
		for {
			select {
			case sub := <-s.queue:
				pending = append(pending, sub)
			default:
				break empty
			}
		}
		if len(pending) == 0 {
			s.mu.Lock()
			// Final checkpoint: a clean shutdown restarts from here with an
			// empty log tail.
			s.checkpointLocked()
			if s.cfg.Log != nil {
				// A failed final close means the log tail may not have
				// reached stable storage: surface it (Close returns logErr,
				// cmd/xheal-serve exits non-zero) and mark the daemon
				// degraded so health probes see it too.
				if err := s.cfg.Log.Close(); err != nil {
					s.degraded.Store(true)
					if s.logErr == nil {
						s.logErr = fmt.Errorf("event log close: %w", err)
					}
				}
			}
			s.mu.Unlock()
			return
		}
		// Cap the batch; anything beyond it carries into the next pass.
		max := s.cfg.maxBatch()
		if len(pending) > max {
			s.carry = append(s.carry, pending[max:]...)
			s.carried.Store(int64(len(s.carry)))
			pending = pending[:max]
		}
		s.apply(pending)
	}
}

// batchState tracks one tick's in-assembly batch for conflict admission.
type batchState struct {
	batch   core.Batch
	members []*submission
}

// admit decides whether sub's event can join this tick's batch. The rule is
// core.ValidateBatch itself — the prospective batch (assembled so far plus
// this event) is validated through the engine, so the server cannot drift
// from the engines' own admission semantics and an admitted batch cannot be
// rejected at apply time. A prospective-batch ErrBatchConflict means the
// event only clashes with *this* timestep (delete of a node inserted or
// attached this tick, duplicate target, ...) and defers; any other
// validation error is a property of the event itself and rejects it.
// Returns (accepted, rejection): deferred events return (false, nil).
func (s *Server) admit(bs *batchState, sub *submission) (bool, error) {
	ev := sub.ev
	cand := bs.batch
	switch ev.Kind {
	case adversary.Insert:
		// Serving policy on top of the shared rule: an unattached insertion
		// would disconnect the healed graph, so the daemon refuses it.
		if len(ev.Neighbors) == 0 {
			return false, fmt.Errorf("insert %d: no neighbors: %w", ev.Node, core.ErrBadNeighbor)
		}
		cand.Insertions = append(cand.Insertions, core.BatchInsertion{
			Node: ev.Node, Neighbors: ev.Neighbors,
		})
	case adversary.Delete:
		// Serving policy: keep a non-trivial graph alive.
		alive := s.eng.Graph().NumNodes() + len(bs.batch.Insertions) - len(bs.batch.Deletions)
		if alive-1 < s.cfg.minNodes() {
			return false, fmt.Errorf("delete %d: %w", ev.Node, ErrTooFewNodes)
		}
		cand.Deletions = append(cand.Deletions, ev.Node)
	default:
		return false, fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}
	if err := s.eng.ValidateBatch(cand); err != nil {
		if errors.Is(err, core.ErrBatchConflict) {
			return false, nil
		}
		return false, err
	}
	bs.batch = cand
	return true, nil
}

// apply admits pending submissions in arrival order, applies the resulting
// batch, logs it, and answers every submission.
func (s *Server) apply(pending []*submission) {
	if len(pending) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// A failed event log means nothing further can be made durable: refuse
	// the whole tick instead of applying and acknowledging events that would
	// vanish on the next crash. (Submissions racing the failure can still
	// reach here after the degraded fast-fail in submitAsync.)
	if s.logErr != nil && s.cfg.Log != nil {
		s.failNotDurable(pending)
		return
	}

	bs := &batchState{}
	for _, sub := range pending {
		ok, rejection := s.admit(bs, sub)
		switch {
		case ok:
			bs.members = append(bs.members, sub)
		case rejection != nil:
			s.counters.EventsRejected++
			sub.done <- rejection
		default:
			sub.defers++
			if sub.defers > s.cfg.maxDefer() {
				s.counters.EventsRejected++
				sub.done <- fmt.Errorf("%s %d after %d deferrals: %w",
					sub.ev.Kind, sub.ev.Node, sub.defers-1, ErrTooManyConflicts)
				continue
			}
			s.counters.EventsDeferred++
			s.carry = append(s.carry, sub)
			s.carried.Store(int64(len(s.carry)))
		}
	}
	if len(bs.members) == 0 {
		return
	}

	// Spans emitted during this batch carry the tick they will be counted
	// under once the batch lands.
	s.cfg.Recorder.SetTick(s.counters.Ticks + 1)
	applyStart := time.Now()
	err := s.applyBatch(bs.batch)
	applied := time.Since(applyStart)
	if err != nil {
		// Admission should have prevented this; fail the whole timestep
		// (ApplyBatch rejects wholesale) and tell every member why.
		for _, sub := range bs.members {
			s.counters.EventsRejected++
			sub.done <- fmt.Errorf("batch rejected: %w", err)
		}
		return
	}

	// Log-before-ack: the batch becomes durable (appended and, when the log
	// supports it, fsynced) before any member unblocks. On failure the
	// members are failed, not acked — they were applied in memory but are not
	// durable, and acknowledging them would break the contract that recovery
	// (and trace.Load's torn-tail tolerance) relies on.
	if s.cfg.Log != nil {
		if err := s.logBatch(bs.batch); err != nil {
			s.logErr = err
			s.degraded.Store(true)
			s.failNotDurable(bs.members)
			return
		}
	}

	s.counters.Ticks++
	s.counters.ApplySeconds += applied.Seconds()
	s.tickHist.Observe(applied.Seconds())
	s.batchHist.Observe(float64(len(bs.members)))
	s.queueHist.Observe(float64(s.QueueDepth()))
	s.counters.BatchLast = len(bs.members)
	if len(bs.members) > s.counters.BatchMax {
		s.counters.BatchMax = len(bs.members)
	}
	now := time.Now()
	for _, sub := range bs.members {
		s.counters.EventsApplied++
		if sub.ev.Kind == adversary.Insert {
			s.counters.InsertsApplied++
		} else {
			s.counters.DeletesApplied++
		}
		s.counters.WaitSeconds += now.Sub(sub.at).Seconds()
		sub.done <- nil
	}

	if s.counters.Ticks%s.cfg.checkpointEvery() == 0 {
		s.checkpointLocked()
	}
}

// applyBatch routes one admitted batch into the engine: through the
// parallel disjoint-wound path when Config.Parallelism asks for it and the
// engine supports it, serially otherwise. Both paths produce byte-identical
// engine state (see core.State.ApplyBatchParallel's contract).
func (s *Server) applyBatch(b core.Batch) error {
	if s.cfg.Parallelism > 1 {
		if pb, ok := s.eng.(ParallelBatcher); ok {
			return pb.ApplyBatchParallel(b, s.cfg.Parallelism)
		}
	}
	return s.eng.ApplyBatch(b)
}

// logBatch makes one applied batch durable: every event is appended to the
// event log in exact application order (all insertions, then all deletions),
// then the log is synced to stable storage when it supports that — one fsync
// per tick, amortized over the whole batch.
func (s *Server) logBatch(b core.Batch) error {
	for _, ins := range b.Insertions {
		ev := adversary.Event{Kind: adversary.Insert, Node: ins.Node, Neighbors: ins.Neighbors}
		if err := s.cfg.Log.Append(ev); err != nil {
			return err
		}
	}
	for _, d := range b.Deletions {
		if err := s.cfg.Log.Append(adversary.Event{Kind: adversary.Delete, Node: d}); err != nil {
			return err
		}
	}
	if sl, ok := s.cfg.Log.(SyncingLog); ok {
		return sl.Sync()
	}
	return nil
}

// failNotDurable answers every submission with ErrNotDurable (wrapping the
// recorded log failure). Caller holds s.mu with s.logErr set.
func (s *Server) failNotDurable(subs []*submission) {
	for _, sub := range subs {
		s.counters.EventsNotDurable++
		sub.done <- fmt.Errorf("%w: %v", ErrNotDurable, s.logErr)
	}
}

// Counters returns a snapshot of the serving-work counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters
	c.EventsBacklogged = s.backlogged.Load()
	return c
}

// QueueDepth reports events accepted but not yet applied (queued plus
// carried deferrals). Approximate while the loop is moving.
func (s *Server) QueueDepth() int { return len(s.queue) + int(s.carried.Load()) }

// Health is one live health snapshot.
type Health struct {
	// Status is "ok", or "degraded" when the healed graph is disconnected or
	// the event log has failed (see LogError).
	Status string `json:"status"`
	// LogError, when set, is the event-log write failure that put the daemon
	// into the refuse-writes degraded state (every Submit fails with
	// ErrNotDurable until restart).
	LogError string `json:"log_error,omitempty"`
	// Engine-level facts.
	Nodes     int  `json:"nodes"`
	Edges     int  `json:"edges"`
	Connected bool `json:"connected"`
	Kappa     int  `json:"kappa"`
	// Snapshot is the MeasureFast-style measurement (no spectral work,
	// sampled stretch) of the healed graph against G′.
	Snapshot metrics.Snapshot `json:"snapshot"`
	// Serving state.
	Counters      Counters `json:"counters"`
	QueueDepth    int      `json:"queue_depth"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	// Obs summarizes the serving histograms and, when per-wound tracing is
	// on, the repair spans.
	Obs ObsHealth `json:"obs"`
	// Durability reports checkpoint progress; absent when no checkpoint
	// store is configured.
	Durability *DurabilityHealth `json:"durability,omitempty"`
}

// DurabilityHealth is the durability slice of a health snapshot.
type DurabilityHealth struct {
	// Checkpoints / CheckpointErrors count saves and failures by this
	// process; the Last* watermarks name the newest saved checkpoint.
	Checkpoints          uint64 `json:"checkpoints"`
	CheckpointErrors     uint64 `json:"checkpoint_errors"`
	LastCheckpointTick   uint64 `json:"last_checkpoint_tick"`
	LastCheckpointEvents uint64 `json:"last_checkpoint_events"`
	// Resumed is true when this process recovered prior state at startup.
	Resumed bool `json:"resumed"`
	// ResumeTick / ResumeEvents are the watermarks serving resumed from.
	ResumeTick   uint64 `json:"resume_tick,omitempty"`
	ResumeEvents uint64 `json:"resume_events,omitempty"`
}

// ObsHealth is the observability slice of a health snapshot: latency
// percentiles from the streaming histograms plus the span ledger.
type ObsHealth struct {
	// TickLatency summarizes engine time per applied batch.
	TickLatency obs.LatencySummary `json:"tick_latency"`
	// RepairLatency summarizes per-wound repair spans (admitted → settled).
	// Absent when no recorder is attached.
	RepairLatency *obs.LatencySummary `json:"repair_latency,omitempty"`
	// Spans / SpansDropped count spans emitted to the span log and spans
	// lost to write failures. Zero when no recorder is attached.
	Spans        uint64 `json:"spans"`
	SpansDropped uint64 `json:"spans_dropped"`
}

// Health measures the current healed graph (MeasureFast-equivalent: skips
// spectral computation, samples stretch) and snapshots the counters. The
// graphs are cloned under the lock and measured outside it, so a health
// poll costs the apply loop one copy, not a full measurement pass.
func (s *Server) Health() Health {
	s.mu.Lock()
	g, gp := s.eng.Graph().Clone(), s.eng.Baseline().Clone()
	kappa := s.eng.Kappa()
	c := s.counters
	logErr := s.logErr
	s.mu.Unlock()
	snap := metrics.Measure(g, gp, metrics.Config{
		SkipSpectral:   true,
		StretchSources: 4,
		Rng:            rand.New(rand.NewSource(1)),
	})
	c.EventsBacklogged = s.backlogged.Load()

	ob := ObsHealth{TickLatency: s.tickHist.Snapshot().Summary()}
	if rec := s.cfg.Recorder; rec != nil {
		ob.Spans, ob.SpansDropped = rec.Spans(), rec.Dropped()
		if h := rec.RepairHist(); h != nil {
			sum := h.Snapshot().Summary()
			ob.RepairLatency = &sum
		}
	}

	var dur *DurabilityHealth
	if s.cfg.Checkpoints != nil {
		dur = &DurabilityHealth{
			Checkpoints:          c.Checkpoints,
			CheckpointErrors:     c.CheckpointErrors,
			LastCheckpointTick:   c.LastCheckpointTick,
			LastCheckpointEvents: c.LastCheckpointEvents,
			Resumed:              s.cfg.Resume != (Resume{}),
			ResumeTick:           s.cfg.Resume.Tick,
			ResumeEvents:         s.cfg.Resume.Events,
		}
	}

	status, logMsg := "ok", ""
	if !snap.Connected {
		status = "degraded"
	}
	if logErr != nil {
		status, logMsg = "degraded", logErr.Error()
	}
	return Health{
		Status:        status,
		LogError:      logMsg,
		Nodes:         snap.Nodes,
		Edges:         snap.Edges,
		Connected:     snap.Connected,
		Kappa:         kappa,
		Snapshot:      snap,
		Counters:      c,
		QueueDepth:    s.QueueDepth(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Obs:           ob,
		Durability:    dur,
	}
}

// CheckInvariants runs the engine's structural invariant check under the
// server's lock (safe while serving).
func (s *Server) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.CheckInvariants()
}

// Graph returns a copy of the current healed graph, safe to use after the
// server keeps mutating.
func (s *Server) Graph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Graph().Clone()
}

// Close stops intake, drains and applies everything already accepted,
// finishes the event log, and waits for the loop to exit. Idempotent. The
// returned error is the first event-log failure — a write failure during
// serving or a failed flush/close of the log during the final drain — so a
// shutdown whose tail may not have reached stable storage is visible to the
// caller (cmd/xheal-serve exits non-zero on it).
func (s *Server) Close() error {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if !already {
		close(s.stopc)
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logErr
}
