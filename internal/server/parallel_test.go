package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/trace"
)

// Deferral and backpressure under the parallel batcher. The admission logic
// (ValidateBatch -> defer -> carry) runs on the loop goroutine either way,
// but with Config.Parallelism > 1 the applied batch fans out across repair
// workers — these tests pin that the conflict-handling contract survives the
// parallel path bit-for-bit, and -race watches the handoff.

// TestSameTickConflictDefersParallel mirrors TestSameTickConflictDefers on
// the parallel apply path: an insert and a delete of the same node arriving
// in one tick window must split across two timesteps, not fail.
func TestSameTickConflictDefersParallel(t *testing.T) {
	g0, _ := testTopology(t, 16)
	s, st := newSeqServer(t, g0, Config{Tick: 50 * time.Millisecond, Parallelism: 4})
	defer s.Close()

	insDone := make(chan error, 1)
	delDone := make(chan error, 1)
	go func() {
		insDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{0, 1}})
	}()
	time.Sleep(5 * time.Millisecond) // same 50ms tick, insert first
	go func() {
		delDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Delete, Node: 100})
	}()
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := <-delDone; err != nil {
		t.Fatalf("deferred delete: %v", err)
	}
	c := s.Counters()
	if c.EventsDeferred == 0 {
		t.Fatal("expected at least one deferral for the same-tick insert+delete")
	}
	if c.EventsRejected != 0 {
		t.Fatalf("%d events rejected on the parallel path, want 0", c.EventsRejected)
	}
	if st.Alive(100) {
		t.Fatal("node 100 should be deleted after the deferred delete applied")
	}
}

// TestDeleteOfAttachedNeighborDefersParallel is the other same-tick conflict
// shape — deleting the node a batched insert attaches to — on the parallel
// apply path.
func TestDeleteOfAttachedNeighborDefersParallel(t *testing.T) {
	g0, _ := testTopology(t, 16)
	s, st := newSeqServer(t, g0, Config{Tick: 50 * time.Millisecond, Parallelism: 4})
	defer s.Close()

	insDone := make(chan error, 1)
	delDone := make(chan error, 1)
	go func() {
		insDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{0, 1}})
	}()
	time.Sleep(5 * time.Millisecond)
	go func() {
		delDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Delete, Node: 0}) // neighbor of the insert
	}()
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := <-delDone; err != nil {
		t.Fatalf("deferred delete of attached neighbor: %v", err)
	}
	c := s.Counters()
	if c.EventsRejected != 0 {
		t.Fatalf("%d events rejected; the conflict should defer, not fail the batch", c.EventsRejected)
	}
	if c.EventsDeferred == 0 {
		t.Fatal("expected the delete to defer one tick")
	}
	if st.Alive(0) || !st.Alive(100) {
		t.Fatal("final state wrong: want node 0 deleted, node 100 alive")
	}
}

// TestConflictCapRejectsParallel pins the MaxDefer escape hatch: an event
// that keeps conflicting tick after tick is eventually failed with
// ErrTooManyConflicts instead of being carried forever. Two deletes of the
// same just-inserted node conflict in the arrival tick (with the insert)
// and then with each other in the carry tick; with MaxDefer 1 the loser of
// the second tick is rejected.
func TestConflictCapRejectsParallel(t *testing.T) {
	g0, _ := testTopology(t, 16)
	s, st := newSeqServer(t, g0, Config{Tick: 50 * time.Millisecond, Parallelism: 4, MaxDefer: 1})
	defer s.Close()

	insDone := make(chan error, 1)
	go func() {
		insDone <- s.Submit(context.Background(),
			adversary.Event{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{0, 1}})
	}()
	time.Sleep(5 * time.Millisecond)
	delErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			delErrs <- s.Submit(context.Background(),
				adversary.Event{Kind: adversary.Delete, Node: 100})
		}()
	}
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	var applied, capped int
	for i := 0; i < 2; i++ {
		switch err := <-delErrs; {
		case err == nil:
			applied++
		case errors.Is(err, ErrTooManyConflicts):
			capped++
		default:
			t.Fatalf("duplicate delete: %v", err)
		}
	}
	if applied != 1 || capped != 1 {
		t.Fatalf("duplicate deletes: %d applied, %d capped, want 1/1", applied, capped)
	}
	c := s.Counters()
	if c.EventsRejected != 1 {
		t.Fatalf("EventsRejected = %d, want 1", c.EventsRejected)
	}
	if st.Alive(100) {
		t.Fatal("node 100 should be gone: one duplicate delete must win")
	}
}

// TestBackpressureParallel is TestBackpressure with the parallel batcher
// configured: a stalled apply plus a full depth-1 queue must still surface
// ErrBacklog to the overflowing submitter and fail nobody who was accepted.
func TestBackpressureParallel(t *testing.T) {
	g0, _ := testTopology(t, 8)
	s, st := newSeqServer(t, g0, Config{QueueDepth: 1, Parallelism: 4})

	// Stall the loop: apply() needs s.mu, which the test holds (the parallel
	// fan-out happens under the same lock). Enqueue submissions directly so
	// "the loop picked it up" is observable as the queue emptying.
	s.mu.Lock()
	enqueue := func(node graph.NodeID) *submission {
		sub := &submission{
			ev:   adversary.Event{Kind: adversary.Insert, Node: node, Neighbors: []graph.NodeID{0}},
			done: make(chan error, 1),
			at:   time.Now(),
		}
		if s.ring.enqueue([]*submission{sub}) != 1 {
			t.Fatalf("ring refused enqueue of %d", node)
		}
		return sub
	}
	subA := enqueue(100)
	for s.ring.len() != 0 { // loop has picked event 100 up
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the loop reach apply() and block
	subB := enqueue(101)              // fills the depth-1 queue behind the stalled loop

	err := s.Submit(context.Background(),
		adversary.Event{Kind: adversary.Insert, Node: 102, Neighbors: []graph.NodeID{0}})
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("overflow submit = %v, want ErrBacklog", err)
	}
	s.mu.Unlock()
	if got := s.Counters().EventsBacklogged; got != 1 {
		t.Fatalf("EventsBacklogged = %d, want 1", got)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, sub := range []*submission{subA, subB} {
		if err := <-sub.done; err != nil {
			t.Fatalf("accepted submission failed: %v", err)
		}
	}
	if !st.Alive(100) || !st.Alive(101) || st.Alive(102) {
		t.Fatal("final aliveness wrong: want 100,101 applied and 102 refused")
	}
}

// TestParallelConflictStorm hammers the parallel batcher with deliberately
// colliding streams — every client inserts and immediately deletes from a
// tiny shared ID space — so the carry/defer machinery runs constantly while
// repair work fans out. Run under -race; afterwards the invariants hold and
// the log replays to the identical graph.
func TestParallelConflictStorm(t *testing.T) {
	const clients, rounds = 8, 10
	g0, _ := testTopology(t, 24)

	var logBuf bytes.Buffer
	lw, err := trace.NewLogWriter(&logBuf, g0)
	if err != nil {
		t.Fatalf("log writer: %v", err)
	}
	// A 5ms tick gives each client's insert+delete pair a wide window to land
	// in the same batch; the delete is submitted while its insert is still
	// pending, so most rounds force a carry. SlowHealth keeps the background
	// λ₂ refresher off the CPU: each round's delete is valid only if the
	// insert goroutine wins its 1ms head start, and on a single-core -race
	// run a Lanczos burst can starve it past that. The live path has its own
	// concurrency coverage in live_test.go.
	s, st := newSeqServer(t, g0, Config{Tick: 5 * time.Millisecond, Log: lw, Parallelism: 4, MaxDefer: 64, SlowHealth: true})

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := graph.NodeID(1000 + 1000*c) // IDs are never reusable after deletion
			for i := 0; i < rounds; i++ {
				node := base + graph.NodeID(i)
				insDone := make(chan error, 1)
				go func() {
					insDone <- s.Submit(context.Background(),
						adversary.Event{Kind: adversary.Insert, Node: node,
							Neighbors: []graph.NodeID{graph.NodeID(c % 4), graph.NodeID(4 + c%4)}})
				}()
				time.Sleep(time.Millisecond) // same tick window, insert first
				if err := s.Submit(context.Background(),
					adversary.Event{Kind: adversary.Delete, Node: node}); err != nil {
					t.Errorf("client %d delete %d: %v", c, node, err)
					return
				}
				if err := <-insDone; err != nil {
					t.Errorf("client %d insert %d: %v", c, node, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if t.Failed() {
		return
	}
	if s.Counters().EventsDeferred == 0 {
		t.Fatal("storm produced zero deferrals — it is not exercising the carry path")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after conflict storm: %v", err)
	}
	replayed, err := ReplayLog(&logBuf, st.Kappa(), 11)
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	if !replayed.Equal(st.Graph()) {
		t.Fatalf("replay diverged after conflict storm: replay n=%d m=%d, live n=%d m=%d",
			replayed.NumNodes(), replayed.NumEdges(), st.Graph().NumNodes(), st.Graph().NumEdges())
	}
}
