// Package hgraph implements the Law–Siu random H-graph construction the
// Xheal paper uses as its distributed expander primitive (paper §5, citing
// Law & Siu, INFOCOM 2003).
//
// An H-graph over a vertex set of size z ≥ 3 is a 2d-regular multigraph
// whose edge set is the union of d Hamilton cycles. Picking each cycle
// independently and uniformly at random yields an expander with high
// probability (paper Theorem 4, expansion Ω(d)), and the distribution is
// preserved under the incremental INSERT and DELETE operations implemented
// here (paper Theorem 3): an inserted vertex splices itself into d random
// cycle positions, a deleted vertex's cycle neighbors reconnect around it.
// That maintainability under churn is what makes the construction usable
// as Xheal's cloud substrate — internal/expander layers the clique/H-graph
// mode rules and rebuild policy on top.
//
// The multigraph bookkeeping (cycle successor/predecessor maps) is internal;
// Graph projects the simple-graph view the rest of the repository consumes.
package hgraph
