package hgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

// TestPropertyChurnValid drives random insert/delete mixes from random seeds
// and asserts the structural invariants always hold.
func TestPropertyChurnValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		n := MinSize + rng.Intn(12)
		h, err := New(d, ids(n), rng)
		if err != nil {
			return false
		}
		next := graph.NodeID(500)
		for step := 0; step < 60; step++ {
			if h.Size() > MinSize && rng.Intn(2) == 0 {
				members := h.Members()
				if h.Delete(members[rng.Intn(len(members))]) != nil {
					return false
				}
			} else {
				if h.Insert(next) != nil {
					return false
				}
				next++
			}
		}
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMultigraphDegree checks the defining 2d-regularity: every
// member appears exactly once as predecessor and once as successor per cycle.
func TestPropertyMultigraphDegree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		n := MinSize + rng.Intn(20)
		h, err := New(d, ids(n), rng)
		if err != nil {
			return false
		}
		for i := 0; i < d; i++ {
			seenSucc := map[graph.NodeID]int{}
			for _, v := range h.Members() {
				w, ok := h.SuccessorOn(i, v)
				if !ok {
					return false
				}
				seenSucc[w]++
			}
			for _, v := range h.Members() {
				if seenSucc[v] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExpansionWithHighProbability spot-checks paper Theorem 4: random
// H-graphs with d >= 2 have λ₂ bounded away from zero (hence constant
// expansion) in the overwhelming majority of draws.
func TestExpansionWithHighProbability(t *testing.T) {
	const samples = 30
	good := 0
	for s := 0; s < samples; s++ {
		rng := rand.New(rand.NewSource(int64(1000 + s)))
		h, err := New(2, ids(40), rng)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		lam := spectral.AlgebraicConnectivity(h.Graph(), rng)
		if lam > 0.15 {
			good++
		}
	}
	if good < samples-2 {
		t.Fatalf("only %d/%d random H-graphs had λ₂ > 0.15", good, samples)
	}
}

// TestChurnPreservesExpansion: after heavy churn the H-graph should still be
// an expander (Theorem 3: the distribution is stationary under churn).
func TestChurnPreservesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h, err := New(3, ids(40), rng)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	next := graph.NodeID(10000)
	for step := 0; step < 400; step++ {
		if h.Size() > 20 && rng.Intn(2) == 0 {
			members := h.Members()
			if err := h.Delete(members[rng.Intn(len(members))]); err != nil {
				t.Fatalf("delete: %v", err)
			}
		} else {
			if err := h.Insert(next); err != nil {
				t.Fatalf("insert: %v", err)
			}
			next++
		}
	}
	lam := spectral.AlgebraicConnectivity(h.Graph(), rng)
	if lam < 0.2 {
		t.Fatalf("λ₂ after churn = %v, want >= 0.2 (expander preserved)", lam)
	}
}
