package hgraph

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// FuzzHGraphChurn decodes an operation tape from fuzz input and asserts the
// H-graph structural invariants hold after every operation.
func FuzzHGraphChurn(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 0, 1})
	f.Add(int64(9), []byte{1, 1, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, tape []byte) {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + int(seed&3)
		h, err := New(d, ids(5), rng)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		next := graph.NodeID(100)
		for _, b := range tape {
			if b%2 == 0 || h.Size() <= MinSize {
				if err := h.Insert(next); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				next++
			} else {
				members := h.Members()
				if err := h.Delete(members[int(b)%len(members)]); err != nil {
					t.Fatalf("Delete: %v", err)
				}
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("invalid after op %d: %v", b, err)
			}
		}
		if !h.Graph().IsConnected() {
			t.Fatal("H-graph simple graph disconnected")
		}
	})
}
