package hgraph

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func ids(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func mustNew(t *testing.T, d, n int, seed int64) *H {
	t.Helper()
	h, err := New(d, ids(n), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New(d=%d, n=%d): %v", d, n, err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(0, ids(5), rng); !errors.Is(err, ErrBadDegree) {
		t.Fatalf("d=0 error = %v, want ErrBadDegree", err)
	}
	if _, err := New(2, ids(2), rng); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("n=2 error = %v, want ErrTooSmall", err)
	}
	if _, err := New(2, []graph.NodeID{1, 2, 2, 3}, rng); !errors.Is(err, ErrMember) {
		t.Fatalf("duplicate vertex error = %v, want ErrMember", err)
	}
}

func TestNewIsValid(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		for _, n := range []int{3, 4, 10, 50} {
			h := mustNew(t, d, n, int64(d*100+n))
			if err := h.Validate(); err != nil {
				t.Fatalf("Validate(d=%d, n=%d): %v", d, n, err)
			}
			if h.Size() != n || h.D() != d {
				t.Fatalf("Size/D = %d/%d, want %d/%d", h.Size(), h.D(), n, d)
			}
		}
	}
}

func TestDegreeBounds(t *testing.T) {
	// Simple degree is at most 2d, and at least 2 (cycle neighbors).
	h := mustNew(t, 3, 20, 7)
	for _, v := range h.Members() {
		deg := len(h.Neighbors(v))
		if deg < 2 || deg > 2*h.D() {
			t.Fatalf("node %d degree %d outside [2, %d]", v, deg, 2*h.D())
		}
	}
}

func TestGraphIsConnected(t *testing.T) {
	// A Hamilton cycle alone makes the simple graph connected.
	for seed := int64(0); seed < 10; seed++ {
		h := mustNew(t, 1, 12, seed)
		if !h.Graph().IsConnected() {
			t.Fatalf("H-graph (seed %d) not connected", seed)
		}
	}
}

func TestInsert(t *testing.T) {
	h := mustNew(t, 2, 5, 3)
	if err := h.Insert(100); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after insert: %v", err)
	}
	if h.Size() != 6 {
		t.Fatalf("Size = %d, want 6", h.Size())
	}
	if !h.Contains(100) {
		t.Fatal("inserted node not a member")
	}
	if err := h.Insert(100); !errors.Is(err, ErrMember) {
		t.Fatalf("duplicate insert error = %v, want ErrMember", err)
	}
}

func TestDelete(t *testing.T) {
	h := mustNew(t, 2, 6, 3)
	if err := h.Delete(2); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after delete: %v", err)
	}
	if h.Contains(2) {
		t.Fatal("deleted node still a member")
	}
	if err := h.Delete(2); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double delete error = %v, want ErrNotMember", err)
	}
}

func TestDeleteAtMinimumRejected(t *testing.T) {
	h := mustNew(t, 1, 3, 1)
	if err := h.Delete(0); !errors.Is(err, ErrWouldShrink) {
		t.Fatalf("delete at minimum error = %v, want ErrWouldShrink", err)
	}
}

func TestChurnKeepsValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := mustNew(t, 3, 10, 42)
	next := graph.NodeID(1000)
	for step := 0; step < 500; step++ {
		if h.Size() > MinSize && rng.Intn(2) == 0 {
			members := h.Members()
			victim := members[rng.Intn(len(members))]
			if err := h.Delete(victim); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		} else {
			if err := h.Insert(next); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			next++
		}
		if step%50 == 0 {
			if err := h.Validate(); err != nil {
				t.Fatalf("step %d validate: %v", step, err)
			}
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("final validate: %v", err)
	}
}

func TestEdgesAreSimpleAndCanonical(t *testing.T) {
	h := mustNew(t, 4, 8, 5)
	edges := h.Edges()
	seen := map[graph.Edge]bool{}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	h := mustNew(t, 2, 15, 8)
	for _, v := range h.Members() {
		for _, w := range h.Neighbors(v) {
			found := false
			for _, x := range h.Neighbors(w) {
				if x == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", v, w)
			}
		}
	}
}

func TestSuccessorOn(t *testing.T) {
	h := mustNew(t, 2, 5, 2)
	if _, ok := h.SuccessorOn(5, 0); ok {
		t.Fatal("SuccessorOn out-of-range cycle should fail")
	}
	w, ok := h.SuccessorOn(0, 0)
	if !ok {
		t.Fatal("SuccessorOn(0,0) failed")
	}
	if w == 0 {
		t.Fatal("successor equals node itself")
	}
}

func TestMembersSorted(t *testing.T) {
	h := mustNew(t, 1, 6, 4)
	m := h.Members()
	for i := 0; i+1 < len(m); i++ {
		if m[i] >= m[i+1] {
			t.Fatalf("Members not sorted: %v", m)
		}
	}
}

// TestInsertUniformity is a light statistical check on the INSERT operation:
// inserting into a fixed H-graph many times should place the new node after
// each existing member with roughly equal probability (paper Thm 3 relies on
// this uniformity).
func TestInsertUniformity(t *testing.T) {
	const trials = 3000
	n := 6
	counts := make(map[graph.NodeID]int, n)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		h, err := New(1, ids(n), rng)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := h.Insert(100); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		pred, ok := h.SuccessorOn(0, 100)
		if !ok {
			t.Fatal("inserted node missing from cycle")
		}
		_ = pred
		// Find predecessor of the inserted node.
		for _, v := range ids(n) {
			if w, _ := h.SuccessorOn(0, v); w == 100 {
				counts[v]++
			}
		}
	}
	want := float64(trials) / float64(n)
	for v, c := range counts {
		if float64(c) < want*0.7 || float64(c) > want*1.3 {
			t.Fatalf("insert position after %d chosen %d times, want ~%.0f (±30%%)", v, c, want)
		}
	}
}
