package hgraph

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/xheal/xheal/internal/graph"
)

// ErrBadSnapshot wraps all snapshot-decode failures.
var ErrBadSnapshot = errors.New("hgraph: malformed snapshot")

// Snapshot is the serializable form of an H-graph. It captures the exact
// internal layout — the sampling order and each Hamilton cycle as a
// successor walk — not just the edge set, because future random splices
// index into the order slice: a restore that merely rebuilt an equivalent
// wiring would diverge from the uncrashed run on the next Insert.
type Snapshot struct {
	// D is the number of Hamilton cycles.
	D int `json:"d"`
	// Order is the internal sampling order (swap-remove order, NOT sorted).
	Order []graph.NodeID `json:"order"`
	// Cycles[i] is cycle i as a successor walk starting at Order[0]:
	// Cycles[i][j+1] = succ_i(Cycles[i][j]), omitting the closing edge back
	// to Order[0]. Each walk is a permutation of Order.
	Cycles [][]graph.NodeID `json:"cycles"`
}

// Snapshot captures the full internal state of h.
func (h *H) Snapshot() *Snapshot {
	s := &Snapshot{
		D:      h.d,
		Order:  append([]graph.NodeID(nil), h.order...),
		Cycles: make([][]graph.NodeID, h.d),
	}
	for i := 0; i < h.d; i++ {
		walk := make([]graph.NodeID, 0, len(h.order))
		v := h.order[0]
		for range h.order {
			walk = append(walk, v)
			v = h.succ[i][v]
		}
		s.Cycles[i] = walk
	}
	return s
}

// Restore rebuilds an H-graph from a snapshot, resuming random splices from
// rng (the restored shared healing stream).
func Restore(s *Snapshot, rng *rand.Rand) (*H, error) {
	if s.D < 1 {
		return nil, fmt.Errorf("%w: d=%d", ErrBadSnapshot, s.D)
	}
	if len(s.Order) < MinSize {
		return nil, fmt.Errorf("%w: %d members", ErrBadSnapshot, len(s.Order))
	}
	if len(s.Cycles) != s.D {
		return nil, fmt.Errorf("%w: %d cycles for d=%d", ErrBadSnapshot, len(s.Cycles), s.D)
	}
	h := &H{
		d:     s.D,
		succ:  make([]map[graph.NodeID]graph.NodeID, s.D),
		pred:  make([]map[graph.NodeID]graph.NodeID, s.D),
		order: append([]graph.NodeID(nil), s.Order...),
		pos:   make(map[graph.NodeID]int, len(s.Order)),
		rng:   rng,
	}
	for i, v := range h.order {
		if _, dup := h.pos[v]; dup {
			return nil, fmt.Errorf("%w: duplicate member %d", ErrBadSnapshot, v)
		}
		h.pos[v] = i
	}
	for i, walk := range s.Cycles {
		if len(walk) != len(h.order) {
			return nil, fmt.Errorf("%w: cycle %d walks %d of %d members", ErrBadSnapshot, i, len(walk), len(h.order))
		}
		h.succ[i] = make(map[graph.NodeID]graph.NodeID, len(walk))
		h.pred[i] = make(map[graph.NodeID]graph.NodeID, len(walk))
		for j, v := range walk {
			if _, member := h.pos[v]; !member {
				return nil, fmt.Errorf("%w: cycle %d visits non-member %d", ErrBadSnapshot, i, v)
			}
			if _, dup := h.succ[i][v]; dup {
				return nil, fmt.Errorf("%w: cycle %d visits %d twice", ErrBadSnapshot, i, v)
			}
			w := walk[(j+1)%len(walk)]
			h.succ[i][v] = w
			h.pred[i][w] = v
		}
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return h, nil
}
