package hgraph

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"github.com/xheal/xheal/internal/graph"
)

// MinSize is the smallest vertex set an H-graph is defined over.
const MinSize = 3

// Sentinel errors.
var (
	ErrTooSmall    = errors.New("hgraph: vertex set smaller than 3")
	ErrBadDegree   = errors.New("hgraph: cycle count d must be >= 1")
	ErrMember      = errors.New("hgraph: node already a member")
	ErrNotMember   = errors.New("hgraph: node is not a member")
	ErrWouldShrink = errors.New("hgraph: delete would shrink below minimum size")
)

// H is a random H-graph: d Hamilton cycles over a common vertex set. The
// nominal (multigraph) degree of every vertex is exactly 2d; the simple
// degree after collapsing parallel edges is at most 2d.
//
// H is not safe for concurrent use.
type H struct {
	d    int
	succ []map[graph.NodeID]graph.NodeID // successor on cycle i
	pred []map[graph.NodeID]graph.NodeID // predecessor on cycle i
	// order/pos support O(1) uniform sampling of an existing member.
	order []graph.NodeID
	pos   map[graph.NodeID]int
	rng   *rand.Rand
}

// New constructs a random H-graph with d independent uniform Hamilton cycles
// over the given vertices (at least MinSize, duplicates rejected).
func New(d int, vertices []graph.NodeID, rng *rand.Rand) (*H, error) {
	if d < 1 {
		return nil, fmt.Errorf("new H-graph with d=%d: %w", d, ErrBadDegree)
	}
	if len(vertices) < MinSize {
		return nil, fmt.Errorf("new H-graph over %d vertices: %w", len(vertices), ErrTooSmall)
	}
	h := &H{
		d:     d,
		succ:  make([]map[graph.NodeID]graph.NodeID, d),
		pred:  make([]map[graph.NodeID]graph.NodeID, d),
		order: make([]graph.NodeID, 0, len(vertices)),
		pos:   make(map[graph.NodeID]int, len(vertices)),
		rng:   rng,
	}
	for _, v := range vertices {
		if _, dup := h.pos[v]; dup {
			return nil, fmt.Errorf("new H-graph: vertex %d: %w", v, ErrMember)
		}
		h.pos[v] = len(h.order)
		h.order = append(h.order, v)
	}
	perm := make([]graph.NodeID, len(h.order))
	for i := 0; i < d; i++ {
		h.succ[i] = make(map[graph.NodeID]graph.NodeID, len(h.order))
		h.pred[i] = make(map[graph.NodeID]graph.NodeID, len(h.order))
		// A uniform random Hamilton cycle is a uniform random cyclic order.
		copy(perm, h.order)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for j, v := range perm {
			w := perm[(j+1)%len(perm)]
			h.succ[i][v] = w
			h.pred[i][w] = v
		}
	}
	return h, nil
}

// SetRand rebinds the randomness source feeding future Insert/rebuild
// draws. Used when an H-graph built in one scope (a parallel repair group)
// is merged back to draw from the owning state's stream.
func (h *H) SetRand(rng *rand.Rand) { h.rng = rng }

// Clone returns a deep structural copy wired to draw from rng. The copy
// shares no mutable memory with the original.
func (h *H) Clone(rng *rand.Rand) *H {
	c := &H{
		d:     h.d,
		succ:  make([]map[graph.NodeID]graph.NodeID, h.d),
		pred:  make([]map[graph.NodeID]graph.NodeID, h.d),
		order: append([]graph.NodeID(nil), h.order...),
		pos:   make(map[graph.NodeID]int, len(h.pos)),
		rng:   rng,
	}
	for i := 0; i < h.d; i++ {
		c.succ[i] = make(map[graph.NodeID]graph.NodeID, len(h.succ[i]))
		for k, v := range h.succ[i] {
			c.succ[i][k] = v
		}
		c.pred[i] = make(map[graph.NodeID]graph.NodeID, len(h.pred[i]))
		for k, v := range h.pred[i] {
			c.pred[i][k] = v
		}
	}
	for k, v := range h.pos {
		c.pos[k] = v
	}
	return c
}

// D returns the number of Hamilton cycles (nominal degree is 2D).
func (h *H) D() int { return h.d }

// Size returns the number of member vertices.
func (h *H) Size() int { return len(h.order) }

// Contains reports whether v is a member.
func (h *H) Contains(v graph.NodeID) bool {
	_, ok := h.pos[v]
	return ok
}

// Members returns the member vertices in ascending order.
func (h *H) Members() []graph.NodeID {
	out := make([]graph.NodeID, len(h.order))
	copy(out, h.order)
	slices.Sort(out)
	return out
}

// Insert splices u into each cycle at an independently chosen uniform random
// position (the paper's INSERT operation): u is placed between a random
// member v and its successor.
func (h *H) Insert(u graph.NodeID) error {
	if h.Contains(u) {
		return fmt.Errorf("insert %d: %w", u, ErrMember)
	}
	for i := 0; i < h.d; i++ {
		v := h.order[h.rng.Intn(len(h.order))]
		next := h.succ[i][v]
		h.succ[i][v] = u
		h.succ[i][u] = next
		h.pred[i][u] = v
		h.pred[i][next] = u
	}
	h.pos[u] = len(h.order)
	h.order = append(h.order, u)
	return nil
}

// Delete removes u from each cycle by joining its predecessor and successor
// (the paper's DELETE operation). Deleting below MinSize is rejected; the
// caller (the expander cloud layer) switches to a clique before that point.
func (h *H) Delete(u graph.NodeID) error {
	if !h.Contains(u) {
		return fmt.Errorf("delete %d: %w", u, ErrNotMember)
	}
	if len(h.order) <= MinSize {
		return fmt.Errorf("delete %d from size-%d H-graph: %w", u, len(h.order), ErrWouldShrink)
	}
	for i := 0; i < h.d; i++ {
		p := h.pred[i][u]
		s := h.succ[i][u]
		h.succ[i][p] = s
		h.pred[i][s] = p
		delete(h.succ[i], u)
		delete(h.pred[i], u)
	}
	// Swap-remove from the sampling order.
	j := h.pos[u]
	last := h.order[len(h.order)-1]
	h.order[j] = last
	h.pos[last] = j
	h.order = h.order[:len(h.order)-1]
	delete(h.pos, u)
	return nil
}

// Neighbors returns the distinct cycle neighbors of v (its simple-graph
// adjacency), ascending.
func (h *H) Neighbors(v graph.NodeID) []graph.NodeID {
	if !h.Contains(v) {
		return nil
	}
	set := make(map[graph.NodeID]struct{}, 2*h.d)
	for i := 0; i < h.d; i++ {
		set[h.succ[i][v]] = struct{}{}
		set[h.pred[i][v]] = struct{}{}
	}
	out := make([]graph.NodeID, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}

// Edges returns the simple edge set (parallel cycle edges collapsed), in
// canonical order.
func (h *H) Edges() []graph.Edge {
	set := make(map[graph.Edge]struct{}, h.d*len(h.order))
	for i := 0; i < h.d; i++ {
		for v, w := range h.succ[i] {
			set[graph.NewEdge(v, w)] = struct{}{}
		}
	}
	out := make([]graph.Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	slices.SortFunc(out, graph.CompareEdges)
	return out
}

// Graph materializes the simple graph induced by the H-graph.
func (h *H) Graph() *graph.Graph {
	g := graph.New()
	for _, v := range h.order {
		g.EnsureNode(v)
	}
	for _, e := range h.Edges() {
		g.EnsureEdge(e.U, e.V)
	}
	return g
}

// SuccessorOn returns the successor of v on cycle i, for tests and the
// stationarity experiment.
func (h *H) SuccessorOn(i int, v graph.NodeID) (graph.NodeID, bool) {
	if i < 0 || i >= h.d {
		return 0, false
	}
	w, ok := h.succ[i][v]
	return w, ok
}

// Validate checks the structural invariants: every cycle is a single
// Hamiltonian cycle over the full member set with consistent pred/succ maps.
// It returns nil when the H-graph is well formed.
func (h *H) Validate() error {
	n := len(h.order)
	if n < MinSize {
		return fmt.Errorf("validate: size %d: %w", n, ErrTooSmall)
	}
	if len(h.pos) != n {
		return errors.New("hgraph: pos/order size mismatch")
	}
	for i := 0; i < h.d; i++ {
		if len(h.succ[i]) != n || len(h.pred[i]) != n {
			return fmt.Errorf("hgraph: cycle %d has wrong map sizes", i)
		}
		for v, w := range h.succ[i] {
			if h.pred[i][w] != v {
				return fmt.Errorf("hgraph: cycle %d pred/succ inconsistent at %d->%d", i, v, w)
			}
			if v == w {
				return fmt.Errorf("hgraph: cycle %d has self loop at %d", i, v)
			}
		}
		// Single cycle covering all members.
		start := h.order[0]
		seen := 1
		for v := h.succ[i][start]; v != start; v = h.succ[i][v] {
			seen++
			if seen > n {
				return fmt.Errorf("hgraph: cycle %d does not close", i)
			}
		}
		if seen != n {
			return fmt.Errorf("hgraph: cycle %d covers %d of %d members", i, seen, n)
		}
	}
	return nil
}
