package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestNilRecorderNoops exercises every Recorder method on a nil receiver —
// the disabled-observability fast path.
func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	r.SetTick(1)
	r.InsertApplied()
	r.RepairBegin(7, 3, 2)
	r.Phase(PhaseRewired)
	r.CloudWired(4)
	r.Cost(2, 9)
	r.RepairEnd()
	if r.Spans() != 0 || r.Dropped() != 0 || r.Repairs() != 0 {
		t.Fatal("nil recorder reported activity")
	}
	if rounds, msgs := r.Ledger(); rounds != 0 || msgs != 0 {
		t.Fatal("nil recorder reported ledger")
	}
	if r.PhaseSeconds(PhaseSettled) != 0 || r.RepairHist() != nil {
		t.Fatal("nil recorder reported state")
	}
}

func TestRecorderLifecycle(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	hist := MustHistogram(LatencyBuckets())
	r := NewRecorder(w, hist)

	r.SetTick(3)
	r.InsertApplied() // event 0
	r.InsertApplied() // event 1
	r.RepairBegin(42, 5, 2)
	r.Phase(PhaseRewired)
	r.CloudWired(6)
	r.CloudWired(3)
	r.Phase(PhaseElected)
	r.Phase(PhaseDisseminated)
	r.Cost(4, 17)
	r.RepairEnd()

	r.SetTick(4)
	r.RepairBegin(43, 2, 2)
	r.RepairEnd()

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}

	s := spans[0]
	if s.Tick != 3 || s.Event != 2 || s.Seq != 0 || s.Node != 42 {
		t.Fatalf("span keys: %+v", s)
	}
	if s.Wound != 5 || s.BlackDegree != 2 {
		t.Fatalf("wound fields: %+v", s)
	}
	if s.Clouds != 2 || s.CloudNodes != 9 {
		t.Fatalf("cloud fields: %+v", s)
	}
	if s.Rounds != 4 || s.Messages != 17 {
		t.Fatalf("cost fields: %+v", s)
	}
	if s.StartUnixNano == 0 {
		t.Fatal("missing start stamp")
	}
	// Phase stamps are monotone offsets from span start.
	p := s.Phases
	if p.RewiredUS < 0 || p.ElectedUS < p.RewiredUS ||
		p.DisseminatedUS < p.ElectedUS || p.SettledUS < p.DisseminatedUS {
		t.Fatalf("phase stamps not monotone: %+v", p)
	}

	s2 := spans[1]
	if s2.Tick != 4 || s2.Event != 3 || s2.Seq != 1 || s2.Node != 43 {
		t.Fatalf("second span keys: %+v", s2)
	}
	if s2.Rounds != 0 || s2.Messages != 0 {
		t.Fatalf("second span has leftover cost: %+v", s2)
	}

	if r.Spans() != 2 || r.Dropped() != 0 || r.Repairs() != 2 {
		t.Fatalf("counters: spans=%d dropped=%d repairs=%d", r.Spans(), r.Dropped(), r.Repairs())
	}
	if rounds, msgs := r.Ledger(); rounds != 4 || msgs != 17 {
		t.Fatalf("ledger: %d rounds %d messages", rounds, msgs)
	}
	if hist.Snapshot().Count != 2 {
		t.Fatalf("repair hist count: %d", hist.Snapshot().Count)
	}
	total := 0.0
	for _, ph := range Phases() {
		sec := r.PhaseSeconds(ph)
		if sec < 0 {
			t.Fatalf("negative phase seconds for %s", ph)
		}
		total += sec
	}
	if total <= 0 {
		t.Fatal("no phase time accumulated")
	}
}

// TestRecorderAutoFinalize: a RepairBegin over a still-open span finalizes
// the stale one instead of losing it.
func TestRecorderAutoFinalize(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	r := NewRecorder(w, nil)
	r.RepairBegin(1, 3, 3)
	r.RepairBegin(2, 4, 4) // first span never saw RepairEnd
	r.RepairEnd()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Node != 1 || spans[1].Node != 2 {
		t.Fatalf("span order: %+v", spans)
	}
}

func TestSpanWriterClosed(t *testing.T) {
	w := NewSpanWriter(&bytes.Buffer{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Span{}); err != ErrSpanLogClosed {
		t.Fatalf("write after close: got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestReadSpansRejectsGarbage(t *testing.T) {
	_, err := ReadSpans(strings.NewReader("{\"tick\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Phases() {
		name := p.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("bad or duplicate phase name %q", name)
		}
		seen[name] = true
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase not unknown")
	}
}
