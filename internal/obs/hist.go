package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Histogram is a streaming fixed-bucket histogram. Buckets are defined by a
// strictly increasing slice of upper bounds plus an implicit +Inf overflow
// bucket, so an observation can never be dropped. Observe is allocation-free;
// concurrent use is safe (one short mutex hold per observation).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds (le boundaries)
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given upper bounds, which must be
// strictly increasing and non-empty. The bounds slice is retained; callers
// must not modify it.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d (%g after %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}, nil
}

// MustHistogram is NewHistogram for static bucket layouts, panicking on a
// malformed layout (a programming error, not a runtime condition).
func MustHistogram(bounds []float64) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; +Inf bucket past the end
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistSnapshot is one point-in-time copy of a Histogram, safe to read and
// summarize without holding any lock.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Mean returns the exact mean of all observations (the sum is tracked
// exactly, unlike the bucketed quantiles). Zero when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank, the same estimate
// Prometheus's histogram_quantile computes. Values in the +Inf overflow
// bucket clamp to the highest finite bound. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		within := rank - float64(cum-c)
		return lo + (hi-lo)*(within/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge folds another snapshot with the identical bucket layout into s.
// Layout mismatches are a programming error and panic.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Sum, s.Count = o.Sum, o.Count
		return
	}
	if len(o.Counts) != len(s.Counts) {
		panic("obs: merging histogram snapshots with different bucket layouts")
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// ExpBuckets returns n strictly increasing upper bounds starting at start
// and growing by factor — the standard exponential latency/size layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared latency layout: 22 exponential buckets from
// 1µs to ~4s (in seconds), covering a single cloud rewire up to a pathological
// full-network repair.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 22) }

// SizeBuckets is the shared small-integer layout (batch sizes, queue
// depths, wound sizes): powers of two from 1 to 1024.
func SizeBuckets() []float64 { return ExpBuckets(1, 2, 11) }

// LatencySummary is the JSON form of a latency histogram's headline
// statistics (internal/server's /v1/health), in milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summary condenses a seconds-valued latency snapshot into millisecond
// headline statistics.
func (s HistSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count:  s.Count,
		MeanMS: s.Mean() * 1000,
		P50MS:  s.Quantile(0.50) * 1000,
		P95MS:  s.Quantile(0.95) * 1000,
		P99MS:  s.Quantile(0.99) * 1000,
	}
}
