// Package obs is the zero-dependency observability layer of the healing
// pipeline: per-wound trace spans, streaming fixed-bucket histograms, and a
// unified pull-based metrics registry.
//
// The paper's central claim is locality — each deletion's repair cost is
// bounded per wound (Theorem 5 round budget, Lemma 5 message bounds) — so
// the unit of observation here is the wound, not the aggregate. A Recorder
// attached to an engine (core.State.SetRecorder, dist.Engine.SetRecorder)
// turns every repair into one Span: the deletion's admission, the Algorithm
// 3.1 rewiring, the §5 leader election and cloud dissemination, and the
// final settling, each stamped relative to the span start, together with
// the wound size, the cloud membership the repair wired, and the repair's
// round/message cost straight from the protocol. Spans stream to a JSONL
// SpanWriter keyed by (tick, event index), where the event index is the
// span's position in the replayable trace event log — so any span can be
// correlated with, and replayed from, the exact logged event that caused
// it.
//
// Histogram is a fixed-bucket streaming histogram: Observe is
// allocation-free and O(log buckets), quantiles (p50/p95/p99) come from
// linear interpolation within a bucket, and snapshots render directly as
// Prometheus histogram series. Registry unifies the serving counters,
// engine ledgers, and histograms behind one interface and renders the
// Prometheus text exposition format (internal/server's /metrics).
//
// Observability is strictly pay-for-use: every Recorder method no-ops on a
// nil receiver, so an engine with no recorder attached runs the exact
// pre-obs hot path — guarded by AllocsPerRun tests in internal/core and
// internal/server.
package obs
