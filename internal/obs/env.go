package obs

import "runtime"

// Env is the benchmark-environment provenance block embedded in every
// BENCH_*.json: enough to tell whether two recorded runs are comparable.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`
}

// CaptureEnv snapshots the current process's environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}
