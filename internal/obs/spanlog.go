package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// SpanWriter streams completed spans to w as JSONL: one complete span object
// per line, in emission order. Like trace.LogWriter, a log truncated by a
// crash loses at most the line being written.
//
// Methods are called under the Recorder's lock; a SpanWriter shared between
// recorders needs external serialization.
type SpanWriter struct {
	bw     *bufio.Writer
	enc    *json.Encoder
	spans  int
	closed bool
}

// ErrSpanLogClosed is returned by Write after Close.
var ErrSpanLogClosed = errors.New("obs: span log is closed")

// NewSpanWriter starts a span log over w.
func NewSpanWriter(w io.Writer) *SpanWriter {
	bw := bufio.NewWriter(w)
	return &SpanWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one span line.
func (sw *SpanWriter) Write(s *Span) error {
	if sw.closed {
		return ErrSpanLogClosed
	}
	if err := sw.enc.Encode(s); err != nil {
		return fmt.Errorf("obs: span log append: %w", err)
	}
	sw.spans++
	return nil
}

// Spans returns the number of spans written so far.
func (sw *SpanWriter) Spans() int { return sw.spans }

// Close flushes the log. It does not close the underlying writer — the
// caller owns the file handle.
func (sw *SpanWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	return sw.bw.Flush()
}

// ReadSpans loads a complete span log: one JSON span per line, in emission
// order.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("obs: span log line %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
}
