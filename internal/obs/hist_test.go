package obs

import (
	"math"
	"testing"
)

func TestHistogramBoundsValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 2, 4}); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := MustHistogram([]float64{1, 2, 4})
	// le semantics: an observation equal to a bound lands in that bound's
	// bucket, matching Prometheus cumulative buckets.
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(4)
	h.Observe(100) // +Inf overflow
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count: got %d, want 5", s.Count)
	}
	if got := s.Sum; math.Abs(got-107) > 1e-9 {
		t.Fatalf("sum: got %g, want 107", got)
	}
	if got := s.Mean(); math.Abs(got-107.0/5) > 1e-9 {
		t.Fatalf("mean: got %g", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram([]float64{10, 20, 30, 40})
	// 40 observations spread uniformly over (0, 40]: 10 per bucket.
	for i := 1; i <= 40; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	// Linear interpolation inside the owning bucket, as histogram_quantile.
	if got := s.Quantile(0.5); math.Abs(got-20) > 1e-9 {
		t.Fatalf("p50: got %g, want 20", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p25: got %g, want 10", got)
	}
	if got := s.Quantile(0.875); math.Abs(got-35) > 1e-9 {
		t.Fatalf("p87.5: got %g, want 35", got)
	}
	if got := s.Quantile(1); math.Abs(got-40) > 1e-9 {
		t.Fatalf("p100: got %g, want 40", got)
	}

	// Empty histogram: all quantiles zero.
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile: got %g", got)
	}

	// Overflow observations clamp to the highest finite bound.
	h2 := MustHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("overflow clamp: got %g, want 2", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram([]float64{1, 2})
	b := MustHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)

	var acc HistSnapshot
	acc.Merge(a.Snapshot()) // empty target adopts the layout
	acc.Merge(b.Snapshot())
	if acc.Count != 3 {
		t.Fatalf("merged count: got %d, want 3", acc.Count)
	}
	if want := []uint64{1, 1, 1}; acc.Counts[0] != want[0] || acc.Counts[1] != want[1] || acc.Counts[2] != want[2] {
		t.Fatalf("merged counts: got %v", acc.Counts)
	}
	if math.Abs(acc.Sum-11) > 1e-9 {
		t.Fatalf("merged sum: got %g, want 11", acc.Sum)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch did not panic")
		}
	}()
	mismatch := MustHistogram([]float64{1, 2, 3}).Snapshot()
	acc.Merge(mismatch)
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets: got %v, want %v", got, want)
		}
	}
	for i := 1; i < len(LatencyBuckets()); i++ {
		if LatencyBuckets()[i] <= LatencyBuckets()[i-1] {
			t.Fatal("LatencyBuckets not strictly increasing")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad ExpBuckets args did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestLatencySummary(t *testing.T) {
	h := MustHistogram([]float64{0.010, 0.020})
	for i := 0; i < 10; i++ {
		h.Observe(0.005) // all in the 10ms bucket
	}
	sum := h.Snapshot().Summary()
	if sum.Count != 10 {
		t.Fatalf("summary count: got %d", sum.Count)
	}
	if math.Abs(sum.MeanMS-5) > 1e-9 {
		t.Fatalf("summary mean: got %g ms, want 5", sum.MeanMS)
	}
	if sum.P99MS <= 0 || sum.P99MS > 10 {
		t.Fatalf("summary p99: got %g ms, want in (0, 10]", sum.P99MS)
	}
}
