package obs

import (
	"math"
	"testing"
)

func TestHistogramBoundsValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 2, 4}); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := MustHistogram([]float64{1, 2, 4})
	// le semantics: an observation equal to a bound lands in that bound's
	// bucket, matching Prometheus cumulative buckets.
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(4)
	h.Observe(100) // +Inf overflow
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count: got %d, want 5", s.Count)
	}
	if got := s.Sum; math.Abs(got-107) > 1e-9 {
		t.Fatalf("sum: got %g, want 107", got)
	}
	if got := s.Mean(); math.Abs(got-107.0/5) > 1e-9 {
		t.Fatalf("mean: got %g", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram([]float64{10, 20, 30, 40})
	// 40 observations spread uniformly over (0, 40]: 10 per bucket.
	for i := 1; i <= 40; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	// Linear interpolation inside the owning bucket, as histogram_quantile.
	if got := s.Quantile(0.5); math.Abs(got-20) > 1e-9 {
		t.Fatalf("p50: got %g, want 20", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p25: got %g, want 10", got)
	}
	if got := s.Quantile(0.875); math.Abs(got-35) > 1e-9 {
		t.Fatalf("p87.5: got %g, want 35", got)
	}
	if got := s.Quantile(1); math.Abs(got-40) > 1e-9 {
		t.Fatalf("p100: got %g, want 40", got)
	}

	// Empty histogram: all quantiles zero.
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile: got %g", got)
	}

	// Overflow observations clamp to the highest finite bound.
	h2 := MustHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("overflow clamp: got %g, want 2", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram([]float64{1, 2})
	b := MustHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)

	var acc HistSnapshot
	acc.Merge(a.Snapshot()) // empty target adopts the layout
	acc.Merge(b.Snapshot())
	if acc.Count != 3 {
		t.Fatalf("merged count: got %d, want 3", acc.Count)
	}
	if want := []uint64{1, 1, 1}; acc.Counts[0] != want[0] || acc.Counts[1] != want[1] || acc.Counts[2] != want[2] {
		t.Fatalf("merged counts: got %v", acc.Counts)
	}
	if math.Abs(acc.Sum-11) > 1e-9 {
		t.Fatalf("merged sum: got %g, want 11", acc.Sum)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch did not panic")
		}
	}()
	mismatch := MustHistogram([]float64{1, 2, 3}).Snapshot()
	acc.Merge(mismatch)
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets: got %v, want %v", got, want)
		}
	}
	for i := 1; i < len(LatencyBuckets()); i++ {
		if LatencyBuckets()[i] <= LatencyBuckets()[i-1] {
			t.Fatal("LatencyBuckets not strictly increasing")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad ExpBuckets args did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestLatencySummary(t *testing.T) {
	h := MustHistogram([]float64{0.010, 0.020})
	for i := 0; i < 10; i++ {
		h.Observe(0.005) // all in the 10ms bucket
	}
	sum := h.Snapshot().Summary()
	if sum.Count != 10 {
		t.Fatalf("summary count: got %d", sum.Count)
	}
	if math.Abs(sum.MeanMS-5) > 1e-9 {
		t.Fatalf("summary mean: got %g ms, want 5", sum.MeanMS)
	}
	if sum.P99MS <= 0 || sum.P99MS > 10 {
		t.Fatalf("summary p99: got %g ms, want in (0, 10]", sum.P99MS)
	}
}

// TestHistogramQuantileEdgeCases pins the quantile estimator's behavior on
// the degenerate inputs that show up in real scrapes: an empty histogram, a
// single observation, and every observation past the highest finite bound.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	cases := []struct {
		name    string
		observe []float64
		q       float64
		want    float64
	}{
		{"empty median", nil, 0.5, 0},
		{"empty p99", nil, 0.99, 0},
		{"empty extreme q", nil, 1, 0},
		// A single observation interpolates inside its own bucket: rank
		// q*1 lands in (2,4] for the value 3, so every quantile stays
		// within that bucket's bounds.
		{"single observation p50", []float64{3}, 0.5, 3},     // 2 + (4-2)*0.5
		{"single observation p99", []float64{3}, 0.99, 3.98}, // 2 + (4-2)*0.99
		{"single observation q=1", []float64{3}, 1, 4},
		// All mass in the +Inf overflow bucket clamps to the highest
		// finite bound for every q — the estimator never invents a value
		// past the layout.
		{"overflow p50", []float64{100, 200, 300}, 0.5, 8},
		{"overflow p99", []float64{100, 200, 300}, 0.99, 8},
		{"overflow q=1", []float64{100, 200, 300}, 1, 8},
		// Out-of-range q is clamped, not rejected. Rank 0 resolves in the
		// first (empty) bucket, whose upper bound is the estimate.
		{"q below 0", []float64{3}, -1, 1},
		{"q above 1", []float64{3}, 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := MustHistogram(bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			got := h.Snapshot().Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%g) over %v = %g, want %g", tc.q, tc.observe, got, tc.want)
			}
		})
	}
}

// TestHistogramEmptySummary asserts an untouched histogram summarizes to all
// zeros rather than NaNs — /v1/health serves this before the first tick.
func TestHistogramEmptySummary(t *testing.T) {
	sum := MustHistogram(LatencyBuckets()).Snapshot().Summary()
	if sum != (LatencySummary{}) {
		t.Fatalf("empty summary = %+v, want zero value", sum)
	}
	if m := MustHistogram([]float64{1}).Snapshot().Mean(); m != 0 {
		t.Fatalf("empty mean = %g, want 0", m)
	}
}

// TestHistogramMergeEdgeCases covers the snapshot-merge paths the registry
// relies on when folding per-worker histograms: merge into an empty
// snapshot adopts the layout, and merging disjoint snapshots is exact.
func TestHistogramMergeEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}

	t.Run("into empty", func(t *testing.T) {
		h := MustHistogram(bounds)
		h.Observe(3)
		var acc HistSnapshot
		acc.Merge(h.Snapshot())
		if acc.Count != 1 || acc.Sum != 3 {
			t.Fatalf("merge into empty: count=%d sum=%g", acc.Count, acc.Sum)
		}
		if got := acc.Quantile(0.5); math.Abs(got-3) > 1e-9 {
			t.Fatalf("merged median = %g, want 3", got)
		}
		// The adopted counts must be a copy, not an alias of the source.
		h.Observe(3)
		if acc.Count != 1 || acc.Counts[2] != 1 {
			t.Fatalf("merged snapshot aliases its source: %+v", acc)
		}
	})

	t.Run("disjoint mass", func(t *testing.T) {
		lo := MustHistogram(bounds)
		hi := MustHistogram(bounds)
		for i := 0; i < 50; i++ {
			lo.Observe(0.5) // first bucket
			hi.Observe(7)   // last finite bucket
		}
		acc := lo.Snapshot()
		acc.Merge(hi.Snapshot())
		if acc.Count != 100 {
			t.Fatalf("merged count = %d, want 100", acc.Count)
		}
		if want := 50*0.5 + 50*7.0; math.Abs(acc.Sum-want) > 1e-9 {
			t.Fatalf("merged sum = %g, want %g", acc.Sum, want)
		}
		// The median rank sits exactly at the boundary between the two
		// populations; p25 and p75 must land in each half's bucket.
		if got := acc.Quantile(0.25); got > 1 {
			t.Fatalf("p25 = %g, want inside (0,1]", got)
		}
		if got := acc.Quantile(0.75); got <= 4 || got > 8 {
			t.Fatalf("p75 = %g, want inside (4,8]", got)
		}
	})

	t.Run("empty into populated", func(t *testing.T) {
		h := MustHistogram(bounds)
		h.Observe(3)
		acc := h.Snapshot()
		acc.Merge(MustHistogram(bounds).Snapshot())
		if acc.Count != 1 || acc.Sum != 3 {
			t.Fatalf("merging an empty snapshot changed the state: %+v", acc)
		}
	})

	t.Run("layout mismatch panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("layout mismatch did not panic")
			}
		}()
		acc := MustHistogram(bounds).Snapshot()
		acc.Merge(MustHistogram([]float64{1, 2}).Snapshot())
	})
}
