package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Label is one Prometheus label pair.
type Label struct {
	Key, Value string
}

// series is one exposed time series: a pull closure (counter/gauge) or a
// histogram, plus its labels.
type series struct {
	labels []Label
	read   func() float64
	hist   *Histogram
}

// family groups the series sharing one metric name: Prometheus requires a
// single HELP/TYPE header per name no matter how many labeled series it has.
type family struct {
	name, help, typ string
	series          []series
}

// Registry is the unified pull-based metric registry: serving counters,
// engine ledgers, and histograms register once and render together in the
// Prometheus text exposition format (version 0.0.4). Counters and gauges
// are closures read at scrape time — registration is the only write path,
// so scraping never touches engine hot paths beyond what the closures do.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// Counter registers a monotonically non-decreasing series read at scrape
// time.
func (r *Registry) Counter(name, help string, read func() float64) {
	r.add(name, help, "counter", series{read: read})
}

// LabeledCounter registers one labeled series of the named counter family.
// The family's HELP/TYPE come from its first registration.
func (r *Registry) LabeledCounter(name, help string, labels []Label, read func() float64) {
	r.add(name, help, "counter", series{labels: labels, read: read})
}

// Gauge registers a point-in-time series read at scrape time.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.add(name, help, "gauge", series{read: read})
}

// Histogram registers a histogram family rendered as cumulative _bucket
// series plus _sum and _count.
func (r *Registry) Histogram(name, help string, h *Histogram) {
	r.add(name, help, "histogram", series{hist: h})
}

func (r *Registry) add(name, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.index[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// WritePrometheus renders every registered family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if s.hist != nil {
				renderHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.read()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PrometheusText renders the registry to a string.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// renderHistogram writes the cumulative bucket series, sum, and count of
// one histogram, honoring any series labels alongside the le label.
func renderHistogram(b *strings.Builder, name string, s series) {
	snap := s.hist.Snapshot()
	withLE := func(le string) string {
		labels := append(append(make([]Label, 0, len(s.labels)+1), s.labels...), Label{"le", le})
		return renderLabels(labels)
	}
	cum := uint64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(strconv.FormatFloat(bound, 'g', -1, 64)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE("+Inf"), snap.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(s.labels), formatValue(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(s.labels), snap.Count)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format label-value escapes:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// escapeHelp applies the exposition-format HELP escapes.
func escapeHelp(h string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(h)
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
