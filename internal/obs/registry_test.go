package obs

import (
	"strings"
	"testing"
)

func TestRegistryCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ticks_total", "Ticks.", func() float64 { return 42 })
	r.Gauge("test_depth", "Depth.", func() float64 { return 7 })
	out := r.PrometheusText()
	for _, want := range []string{
		"# HELP test_ticks_total Ticks.\n",
		"# TYPE test_ticks_total counter\n",
		"test_ticks_total 42\n",
		"# TYPE test_depth gauge\n",
		"test_depth 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryLabeledFamilySharesHeader(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("test_phase_seconds_total", "By phase.",
		[]Label{{Key: "phase", Value: "rewired"}}, func() float64 { return 1 })
	r.LabeledCounter("test_phase_seconds_total", "By phase.",
		[]Label{{Key: "phase", Value: "settled"}}, func() float64 { return 2 })
	out := r.PrometheusText()
	if got := strings.Count(out, "# TYPE test_phase_seconds_total"); got != 1 {
		t.Fatalf("family rendered %d TYPE headers, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `test_phase_seconds_total{phase="rewired"} 1`) ||
		!strings.Contains(out, `test_phase_seconds_total{phase="settled"} 2`) {
		t.Fatalf("labeled series missing:\n%s", out)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("test_esc_total", "Escapes.",
		[]Label{{Key: "path", Value: "a\\b\"c\nd"}}, func() float64 { return 1 })
	out := r.PrometheusText()
	want := `test_esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped series %q missing in:\n%s", want, out)
	}
}

func TestRegistryHistogramRendering(t *testing.T) {
	h := MustHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10)
	r := NewRegistry()
	r.Histogram("test_lat_seconds", "Latency.", h)
	out := r.PrometheusText()
	for _, want := range []string{
		"# TYPE test_lat_seconds histogram\n",
		`test_lat_seconds_bucket{le="1"} 1`,
		`test_lat_seconds_bucket{le="2"} 2`,
		`test_lat_seconds_bucket{le="+Inf"} 3`,
		"test_lat_seconds_sum 12\n",
		"test_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "X.", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.Gauge("test_x", "X.", func() float64 { return 0 })
}
