package obs

import (
	"sync"
	"time"

	"github.com/xheal/xheal/internal/graph"
)

// Phase is one boundary in a repair's lifecycle. Phases are stamped in
// order; the distributed engine stamps all of them, the sequential
// reference only the ones that exist in its execution (admission, rewiring,
// settling).
type Phase uint8

// Repair lifecycle phases, in execution order.
const (
	// PhaseRewired: Algorithm 3.1 computed and applied the repair's cloud
	// rewiring (stamped by internal/core at the end of the case dispatch).
	PhaseRewired Phase = iota
	// PhaseElected: the wound's leader election resolved and the elected
	// leader took over the repair (stamped by internal/dist when the leader
	// picks up the repair plan).
	PhaseElected
	// PhaseDisseminated: the cloud rewiring was disseminated — every edge
	// update reached its node and no protocol messages remain in flight
	// (stamped by internal/dist after the last round).
	PhaseDisseminated
	// PhaseSettled: the repair is complete and the engine's state has
	// settled (stamped by RepairEnd).
	PhaseSettled
	numPhases
)

// String implements fmt.Stringer; the names double as Prometheus label
// values.
func (p Phase) String() string {
	switch p {
	case PhaseRewired:
		return "rewired"
	case PhaseElected:
		return "elected"
	case PhaseDisseminated:
		return "disseminated"
	case PhaseSettled:
		return "settled"
	}
	return "unknown"
}

// Phases lists the lifecycle phases in execution order.
func Phases() []Phase { return []Phase{PhaseRewired, PhaseElected, PhaseDisseminated, PhaseSettled} }

// SpanPhases carries one span's phase stamps: microseconds from span start
// to the completion of each phase. A zero stamp with omitempty means the
// phase does not exist on the emitting engine (the sequential reference has
// no election or dissemination).
type SpanPhases struct {
	RewiredUS      float64 `json:"rewired_us"`
	ElectedUS      float64 `json:"elected_us,omitempty"`
	DisseminatedUS float64 `json:"disseminated_us,omitempty"`
	SettledUS      float64 `json:"settled_us"`
}

// Span is one repaired wound's trace record. The key is (Tick, Event):
// Event is the span's 0-based position in the adversarial event stream — in
// a serving run, exactly the line index (after the header) of the deletion
// in the trace event log — so every span correlates with the replayable
// trace that reproduces it. Seq is the deletion ordinal, the span's index
// into the distributed engine's cost ledger.
type Span struct {
	Tick  uint64       `json:"tick"`
	Event int          `json:"event"`
	Seq   int          `json:"seq"`
	Node  graph.NodeID `json:"node"`
	// Wound is the deleted node's degree at deletion time (the wound the
	// repair must close); BlackDegree counts the black (original or
	// adversary-inserted) incident edges, Lemma 5's deg_G′ term.
	Wound       int `json:"wound"`
	BlackDegree int `json:"black_degree"`
	// Clouds is the number of expander clouds the repair wired (primary and
	// secondary); CloudNodes is their total membership — the paper's cloud
	// size, the locality footprint of the repair.
	Clouds     int `json:"clouds"`
	CloudNodes int `json:"cloud_nodes"`
	// Rounds and Messages are the repair's protocol cost, matching the
	// distributed engine's cost ledger entry (zero on the sequential
	// reference, which exchanges no messages).
	Rounds   int `json:"rounds"`
	Messages int `json:"messages"`
	// StartUnixNano is the wall-clock admission time; the phase stamps in
	// Phases are monotonic offsets from it.
	StartUnixNano int64      `json:"start_unix_nano"`
	Phases        SpanPhases `json:"phases"`
}

// stamp returns a pointer to the phase's field in SpanPhases.
func (sp *SpanPhases) stamp(p Phase) *float64 {
	switch p {
	case PhaseRewired:
		return &sp.RewiredUS
	case PhaseElected:
		return &sp.ElectedUS
	case PhaseDisseminated:
		return &sp.DisseminatedUS
	default:
		return &sp.SettledUS
	}
}

// Recorder builds spans from engine callbacks and accumulates the derived
// metrics (per-phase time totals, repair latency histogram, event/repair
// counters). Engines call it at repair phase boundaries; the server keys it
// with the current tick.
//
// Every method no-ops on a nil *Recorder — a nil recorder IS the disabled
// state, and the hot path pays exactly one nil check per boundary. Methods
// are safe for concurrent use (the distributed engine stamps PhaseElected
// from a node goroutine).
type Recorder struct {
	mu sync.Mutex

	w          *SpanWriter // optional span sink
	repairHist *Histogram  // optional repair-latency histogram (seconds)

	tick  uint64
	event int // next event index in the adversarial event stream
	seq   int // deletions so far

	open    bool
	cur     Span
	started time.Time
	last    time.Time // previous phase boundary, for per-phase totals

	phaseSeconds  [numPhases]float64
	totalRounds   uint64
	totalMessages uint64
	spans         uint64
	dropped       uint64
}

// NewRecorder builds a recorder. Both arguments are optional: w receives
// every completed span as one JSONL line; repairHist observes every span's
// total latency in seconds.
func NewRecorder(w *SpanWriter, repairHist *Histogram) *Recorder {
	return &Recorder{w: w, repairHist: repairHist}
}

// SetTick keys subsequently emitted spans with the given tick (the server's
// applied-batch ordinal).
func (r *Recorder) SetTick(tick uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tick = tick
	r.mu.Unlock()
}

// InsertApplied advances the event index past one applied insertion, keeping
// span event indices aligned with the trace event log.
func (r *Recorder) InsertApplied() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.event++
	r.mu.Unlock()
}

// RepairBegin opens the span for one admitted deletion. A span still open
// from a driver that never settled it is finalized first (and such spans
// are visible as a settled-stamp equal to the last phase stamp).
func (r *Recorder) RepairBegin(node graph.NodeID, wound, blackDegree int) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if r.open {
		r.finishLocked(now)
	}
	r.cur = Span{
		Tick:          r.tick,
		Event:         r.event,
		Seq:           r.seq,
		Node:          node,
		Wound:         wound,
		BlackDegree:   blackDegree,
		StartUnixNano: now.UnixNano(),
	}
	r.event++
	r.seq++
	r.open = true
	r.started = now
	r.last = now
	r.mu.Unlock()
}

// Phase stamps the completion of one lifecycle phase on the open span.
func (r *Recorder) Phase(p Phase) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if r.open {
		*r.cur.Phases.stamp(p) = float64(now.Sub(r.started).Microseconds())
		r.phaseSeconds[p] += now.Sub(r.last).Seconds()
		r.last = now
	}
	r.mu.Unlock()
}

// CloudWired records one expander cloud the repair constructed, of the
// given membership size.
func (r *Recorder) CloudWired(size int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.open {
		r.cur.Clouds++
		r.cur.CloudNodes += size
	}
	r.mu.Unlock()
}

// Cost records the repair's protocol cost (the distributed engine's ledger
// entry for this deletion).
func (r *Recorder) Cost(rounds, messages int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.open {
		r.cur.Rounds = rounds
		r.cur.Messages = messages
	}
	r.mu.Unlock()
}

// RepairEnd stamps PhaseSettled and emits the span.
func (r *Recorder) RepairEnd() {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if r.open {
		*r.cur.Phases.stamp(PhaseSettled) = float64(now.Sub(r.started).Microseconds())
		r.phaseSeconds[PhaseSettled] += now.Sub(r.last).Seconds()
		r.finishLocked(now)
	}
	r.mu.Unlock()
}

// finishLocked emits the open span. Callers hold r.mu.
func (r *Recorder) finishLocked(now time.Time) {
	r.open = false
	r.totalRounds += uint64(r.cur.Rounds)
	r.totalMessages += uint64(r.cur.Messages)
	if r.repairHist != nil {
		r.repairHist.Observe(now.Sub(r.started).Seconds())
	}
	if r.w != nil {
		if err := r.w.Write(&r.cur); err != nil {
			r.dropped++
			return
		}
	}
	r.spans++
}

// Spans returns the number of spans emitted; Dropped the number lost to
// span-log write failures (a healthy run has zero).
func (r *Recorder) Spans() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// Dropped returns the number of spans lost to span-log write failures.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Repairs returns the number of repairs begun (the deletion ordinal).
func (r *Recorder) Repairs() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(r.seq)
}

// Ledger returns the cumulative protocol cost across all emitted spans.
func (r *Recorder) Ledger() (rounds, messages uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalRounds, r.totalMessages
}

// PhaseSeconds returns cumulative seconds spent in phase p across all
// repairs (the increment between consecutive phase boundaries).
func (r *Recorder) PhaseSeconds(p Phase) float64 {
	if r == nil || p >= numPhases {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phaseSeconds[p]
}

// RepairHist returns the repair-latency histogram the recorder observes
// into, or nil.
func (r *Recorder) RepairHist() *Histogram {
	if r == nil {
		return nil
	}
	return r.repairHist
}
