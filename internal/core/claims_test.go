package core

import (
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// These tests pin the claim-layer semantics documented in docs/ARCHITECTURE.md ("Design deviations")
// item 2: every physical edge is black xor cloud-colored, a cloud claim
// absorbs the black claim (the paper's re-coloring), two clouds may share
// one physical edge, and an edge disappears only when its last claim is
// released.

// findCloudEdge returns some edge claimed by the given cloud.
func findCloudEdge(t *testing.T, s *State, id ColorID) graph.Edge {
	t.Helper()
	for _, e := range s.Graph().Edges() {
		colors, ok := s.EdgeColors(e.U, e.V)
		if !ok {
			continue
		}
		for _, c := range colors {
			if c == id {
				return e
			}
		}
	}
	t.Fatalf("no edge claimed by cloud %d", id)
	return graph.Edge{}
}

func TestClaimAbsorbsBlackThenReleases(t *testing.T) {
	// Star with a chord between two leaves: the Case 1 clique recolors the
	// chord. Subsequent deletions shrink the cloud; when the cloud stops
	// claiming the chord, the edge must vanish even though it was originally
	// adversarial (paper re-coloring semantics).
	g := star(4)
	g.EnsureEdge(1, 2)
	s := mustState(t, Config{Kappa: 6, Seed: 1}, g)
	mustDelete(t, s, 0)

	colors, ok := s.EdgeColors(1, 2)
	if !ok || len(colors) != 1 {
		t.Fatalf("chord colors = %v ok=%v, want exactly one cloud", colors, ok)
	}
	// Delete leaves until only 1 and 2 remain: a 2-clique cloud keeps them
	// wired. The chord must still exist (claimed by the shrinking cloud).
	mustDelete(t, s, 3)
	mustDelete(t, s, 4)
	if !s.Graph().HasEdge(1, 2) {
		t.Fatal("cloud edge between last two members vanished")
	}
}

func TestTwoCloudsCanShareOneEdge(t *testing.T) {
	// Build two overlapping primary clouds: delete two star centers that
	// share leaves. With small kappa both clouds are cliques over mostly the
	// same nodes, so some edge ends up claimed by both.
	g := graph.New()
	// Centers 100 and 200 share leaves 1, 2, 3.
	for _, leaf := range []graph.NodeID{1, 2, 3} {
		g.EnsureEdge(100, leaf)
		g.EnsureEdge(200, leaf)
	}
	s := mustState(t, Config{Kappa: 6, Seed: 3}, g)
	mustDelete(t, s, 100) // clique over {1,2,3}
	mustDelete(t, s, 200) // second cloud over {1,2,3} — same pairs, new color

	shared := 0
	for _, e := range s.Graph().Edges() {
		colors, _ := s.EdgeColors(e.U, e.V)
		if len(colors) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("expected at least one edge claimed by two clouds")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestEdgeSurvivesWhileAnyClaimRemains(t *testing.T) {
	// Same overlap construction; then force one cloud to restructure away.
	g := graph.New()
	for _, leaf := range []graph.NodeID{1, 2, 3} {
		g.EnsureEdge(100, leaf)
		g.EnsureEdge(200, leaf)
	}
	s := mustState(t, Config{Kappa: 6, Seed: 3}, g)
	mustDelete(t, s, 100)
	mustDelete(t, s, 200)

	// Find a doubly-claimed edge, then delete a node of one cloud: the
	// surviving claims must keep the physical edges consistent throughout
	// (CheckInvariants inside mustDelete enforces the exact correspondence).
	var shared graph.Edge
	found := false
	for _, e := range s.Graph().Edges() {
		colors, _ := s.EdgeColors(e.U, e.V)
		if len(colors) >= 2 {
			shared = e
			found = true
			break
		}
	}
	if !found {
		t.Skip("no doubly-claimed edge in this configuration")
	}
	// Deleting the third leaf restructures both cliques down to the single
	// edge {shared.U, shared.V} — still claimed by both clouds.
	var third graph.NodeID
	for _, n := range s.AliveNodes() {
		if n != shared.U && n != shared.V {
			third = n
		}
	}
	mustDelete(t, s, third)
	if !s.Graph().HasEdge(shared.U, shared.V) {
		t.Fatal("doubly-claimed edge vanished while claims remained")
	}
}

func TestEdgeColorsIntrospection(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 2}, star(6))
	if _, ok := s.EdgeColors(1, 2); ok {
		t.Fatal("non-edge should report !ok")
	}
	colors, ok := s.EdgeColors(0, 1)
	if !ok || len(colors) != 0 {
		t.Fatalf("initial edge colors = %v ok=%v, want black", colors, ok)
	}
	mustDelete(t, s, 0)
	cloudEdge := findCloudEdge(t, s, s.Clouds()[0])
	colors, ok = s.EdgeColors(cloudEdge.U, cloudEdge.V)
	if !ok || len(colors) != 1 || colors[0] != s.Clouds()[0] {
		t.Fatalf("cloud edge colors = %v", colors)
	}
}

func TestCloudAccessors(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 2}, star(8))
	mustDelete(t, s, 0)
	ids := s.Clouds()
	if len(ids) != 1 {
		t.Fatalf("clouds = %v", ids)
	}
	members, kind, ok := s.CloudMembers(ids[0])
	if !ok || kind != Primary || len(members) != 8 {
		t.Fatalf("CloudMembers = %v %v %v", members, kind, ok)
	}
	if _, _, ok := s.CloudMembers(999); ok {
		t.Fatal("missing cloud should report !ok")
	}
	for _, m := range members {
		prims := s.PrimariesOf(m)
		if len(prims) != 1 || prims[0] != ids[0] {
			t.Fatalf("PrimariesOf(%d) = %v", m, prims)
		}
		if _, busy := s.SecondaryOf(m); busy {
			t.Fatalf("node %d should be free", m)
		}
	}
}

func TestAlwaysCombineConfig(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 5, AlwaysCombine: true}, star(12))
	mustDelete(t, s, 0)
	mustDelete(t, s, 1) // case 2.1: would make a secondary; must combine instead
	st := s.Stats()
	if st.SecondaryClouds != 0 {
		t.Fatalf("AlwaysCombine made %d secondary clouds", st.SecondaryClouds)
	}
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected under AlwaysCombine")
	}
	// Heavier churn stays consistent.
	for _, v := range []graph.NodeID{2, 3, 4} {
		mustDelete(t, s, v)
	}
}

func TestDisableSharingConfig(t *testing.T) {
	s := mustState(t, Config{Kappa: 2, Seed: 7, DisableSharing: true}, star(12))
	for _, v := range []graph.NodeID{0, 1, 2, 3, 4} {
		mustDelete(t, s, v)
		if !s.Graph().IsConnected() {
			t.Fatalf("disconnected after deleting %d", v)
		}
	}
	if s.Stats().Shares != 0 {
		t.Fatalf("sharing occurred despite DisableSharing: %d", s.Stats().Shares)
	}
}

func TestColorsAreUniquePerCloud(t *testing.T) {
	s := mustState(t, Config{Kappa: 2, Seed: 9}, star(16))
	seen := map[ColorID]bool{}
	for _, v := range []graph.NodeID{0, 1, 2, 3, 4, 5} {
		mustDelete(t, s, v)
		for _, id := range s.Clouds() {
			seen[id] = true
		}
	}
	// Colors never collide: the registry plus history must all be distinct
	// (monotone allocator); just assert current clouds have distinct ids and
	// stats counted at least as many creations as distinct colors seen.
	st := s.Stats()
	if st.PrimaryClouds+st.SecondaryClouds < len(seen) {
		t.Fatalf("cloud creations %d < distinct colors %d",
			st.PrimaryClouds+st.SecondaryClouds, len(seen))
	}
}
