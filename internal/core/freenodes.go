package core

import (
	"slices"

	"github.com/xheal/xheal/internal/graph"
)

// A node is free when it has no secondary duties (paper Algorithm 3.6:
// "Let a Free node be a primary node without secondary duties").
func (s *State) isFree(n graph.NodeID) bool {
	_, busy := s.bridgeLinks[n]
	return !busy
}

// freeMembers returns c's free members, ascending.
func (s *State) freeMembers(c *cloud) []graph.NodeID {
	members := c.members()
	out := make([]graph.NodeID, 0, len(members))
	for _, n := range members {
		if s.isFree(n) {
			out = append(out, n)
		}
	}
	return out
}

// pickFreeNode returns the smallest free member of c, if any. It scans the
// (sorted) member view directly instead of materializing the free list.
func (s *State) pickFreeNode(c *cloud) (graph.NodeID, bool) {
	for _, n := range c.members() {
		if s.isFree(n) {
			return n, true
		}
	}
	return 0, false
}

// pickShareable returns a free node from the donor clouds that can be shared
// into target: it must not already be a member of target and must never have
// been shared before (Lemma 3's "it cannot be shared henceforth").
func (s *State) pickShareable(donors []*cloud, target *cloud) (graph.NodeID, bool) {
	if s.disableSharing {
		return 0, false
	}
	best := graph.NodeID(0)
	found := false
	for _, donor := range donors {
		if donor.id == target.id {
			continue
		}
		for _, w := range donor.members() {
			if !s.isFree(w) || target.contains(w) {
				continue
			}
			if _, shared := s.sharedOnce[w]; shared {
				continue
			}
			if !found || w < best {
				best = w
				found = true
			}
		}
	}
	return best, found
}

// assignment pairs a group with its designated bridge node; share marks
// bridges that must first be shared into the group (they are free nodes of a
// different cloud).
type assignment struct {
	cloud *cloud
	node  graph.NodeID
	share bool
}

// assignFreeNodes implements the paper's free-node selection: each group
// gets a distinct free node, preferring its own members (maximum bipartite
// matching), then sharing leftover free nodes from other groups into the
// unmatched ones. It reports ok=false when the groups cannot all be served —
// the signal to combine (paper: "If there are less than j free nodes among
// all the j clouds, then we combine").
func (s *State) assignFreeNodes(groups []*cloud) ([]assignment, bool) {
	freeOf := make([][]graph.NodeID, len(groups))
	for i, c := range groups {
		freeOf[i] = s.freeMembers(c)
	}

	// Kuhn's augmenting-path maximum matching: group index -> free node.
	matchedBy := make(map[graph.NodeID]int) // node -> group index
	var try func(gi int, visited map[graph.NodeID]struct{}) bool
	try = func(gi int, visited map[graph.NodeID]struct{}) bool {
		for _, w := range freeOf[gi] {
			if _, seen := visited[w]; seen {
				continue
			}
			visited[w] = struct{}{}
			owner, taken := matchedBy[w]
			if !taken || try(owner, visited) {
				matchedBy[w] = gi
				return true
			}
		}
		return false
	}
	groupNode := make([]graph.NodeID, len(groups))
	groupDone := make([]bool, len(groups))
	for gi := range groups {
		if try(gi, make(map[graph.NodeID]struct{})) {
			continue
		}
	}
	for w, gi := range matchedBy {
		groupNode[gi] = w
		groupDone[gi] = true
	}

	// Shareable leftovers: free nodes of any group, unmatched, never shared.
	var leftovers []graph.NodeID
	seen := make(map[graph.NodeID]struct{})
	for _, free := range freeOf {
		for _, w := range free {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			if _, taken := matchedBy[w]; taken {
				continue
			}
			if _, shared := s.sharedOnce[w]; shared {
				continue
			}
			if s.disableSharing {
				continue
			}
			leftovers = append(leftovers, w)
		}
	}
	slices.Sort(leftovers)

	out := make([]assignment, 0, len(groups))
	li := 0
	for gi, c := range groups {
		if groupDone[gi] {
			out = append(out, assignment{cloud: c, node: groupNode[gi]})
			continue
		}
		// Find a leftover not already a member of this group (members would
		// have been matched; see freenodes invariants) and shareable.
		placed := false
		for li < len(leftovers) {
			w := leftovers[li]
			li++
			if c.contains(w) {
				// Own free member missed by matching cannot happen with a
				// maximum matching, but guard anyway: use it directly.
				out = append(out, assignment{cloud: c, node: w})
				placed = true
				break
			}
			out = append(out, assignment{cloud: c, node: w, share: true})
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return out, true
}
