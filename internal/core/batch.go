package core

import (
	"errors"
	"fmt"

	"github.com/xheal/xheal/internal/graph"
)

// The paper's model admits one attack per timestep but notes "Our algorithm
// can be extended to handle multiple insertions/deletions." This file is
// that extension: a Batch applies a set of insertions and deletions as one
// timestep. Following the proof of Lemma 2 (insertions commute with healing
// and can be reordered before deletions without changing either G or G′),
// insertions are applied first; deletions are then healed one at a time,
// which is equivalent to the adversary presenting them back-to-back.

// BatchInsertion is one node joining within a batch.
type BatchInsertion struct {
	Node      graph.NodeID
	Neighbors []graph.NodeID
}

// Batch is one multi-event timestep.
type Batch struct {
	Insertions []BatchInsertion
	Deletions  []graph.NodeID
}

// ErrBatchConflict is returned when a batch is internally inconsistent
// (duplicate targets, deleting a node inserted in the same batch, or an
// insertion attaching to a node deleted in the same batch).
var ErrBatchConflict = errors.New("core: conflicting batch")

// ValidateBatch checks the batch's internal consistency against the current
// state without applying anything, mirroring exactly what InsertNode and
// DeleteNode would reject so that a validated batch cannot fail mid-apply:
// duplicate targets, insert/delete of the same node in one timestep,
// attachments to batch-deleted or later-inserted nodes (all
// ErrBatchConflict), insertions of alive or used IDs (ErrNodeExists /
// ErrReusedNodeID), deletions of absent nodes (ErrNodeMissing), and
// self/duplicate/unknown attachments (ErrSelfInsert / ErrBadNeighbor).
// Callers that assemble batches from concurrent submissions
// (internal/server) use it to decide which events can share a timestep
// before committing any of them.
func (s *State) ValidateBatch(b Batch) error {
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	inserted := make(map[graph.NodeID]struct{}, len(b.Insertions))
	for _, ins := range b.Insertions {
		if _, dup := inserted[ins.Node]; dup {
			return fmt.Errorf("node %d inserted twice: %w", ins.Node, ErrBatchConflict)
		}
		if s.g.HasNode(ins.Node) {
			return fmt.Errorf("insert %d: %w", ins.Node, ErrNodeExists)
		}
		if _, was := s.deleted[ins.Node]; was || s.gp.HasNode(ins.Node) {
			return fmt.Errorf("insert %d: %w", ins.Node, ErrReusedNodeID)
		}
		inserted[ins.Node] = struct{}{}
	}
	deleted := make(map[graph.NodeID]struct{}, len(b.Deletions))
	for _, d := range b.Deletions {
		if _, dup := deleted[d]; dup {
			return fmt.Errorf("node %d deleted twice: %w", d, ErrBatchConflict)
		}
		deleted[d] = struct{}{}
		if _, ok := inserted[d]; ok {
			return fmt.Errorf("node %d inserted and deleted in one batch: %w", d, ErrBatchConflict)
		}
		if !s.g.HasNode(d) {
			return fmt.Errorf("delete %d: %w", d, ErrNodeMissing)
		}
	}
	// Insertions apply in batch order, so an attachment is only valid if its
	// target is alive now or was inserted *earlier* in the batch.
	soFar := make(map[graph.NodeID]struct{}, len(b.Insertions))
	for _, ins := range b.Insertions {
		seen := make(map[graph.NodeID]struct{}, len(ins.Neighbors))
		for _, w := range ins.Neighbors {
			if w == ins.Node {
				return fmt.Errorf("insert %d: %w", ins.Node, ErrSelfInsert)
			}
			if _, dup := seen[w]; dup {
				return fmt.Errorf("insert %d: duplicate neighbor %d: %w", ins.Node, w, ErrBadNeighbor)
			}
			seen[w] = struct{}{}
			if _, gone := deleted[w]; gone {
				return fmt.Errorf("insertion %d attaches to node %d deleted in the same batch: %w",
					ins.Node, w, ErrBatchConflict)
			}
			if _, earlier := soFar[w]; earlier || s.g.HasNode(w) {
				continue
			}
			if _, later := inserted[w]; later {
				return fmt.Errorf("insertion %d attaches to node %d inserted later in the batch: %w",
					ins.Node, w, ErrBatchConflict)
			}
			return fmt.Errorf("insertion %d attaches to unknown node %d: %w",
				ins.Node, w, ErrBadNeighbor)
		}
		soFar[ins.Node] = struct{}{}
	}
	return nil
}

// ApplyBatch applies a multi-event timestep: all insertions (in order; an
// insertion may attach to nodes inserted earlier in the same batch), then
// all deletions, healing after each.
//
// Failure contract: the batch is validated up front and rejected wholesale
// on conflict, and a validation failure leaves the state unchanged. A
// post-validation failure — which ValidateBatch's admission mirror makes
// unreachable short of a bug, and which includes a panic escaping a repair —
// is converted to an error and fail-stops the State: the batch may be half
// applied, so every subsequent mutating or exporting call returns
// ErrPoisoned rather than serving a state no serial schedule produced.
// ApplyBatchParallel inherits the same contract.
func (s *State) ApplyBatch(b Batch) (err error) {
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	if err := s.ValidateBatch(b); err != nil {
		return err
	}
	defer s.convertPanic(&err)
	for _, ins := range b.Insertions {
		if err := s.InsertNode(ins.Node, ins.Neighbors); err != nil {
			return s.poison(fmt.Errorf("batch insertion %d: %w", ins.Node, err))
		}
	}
	for _, d := range b.Deletions {
		if err := s.DeleteNode(d); err != nil {
			return s.poison(fmt.Errorf("batch deletion %d: %w", d, err))
		}
	}
	return nil
}

// poison fail-stops the State with cause and returns the error that every
// later call will observe (wrapped in ErrPoisoned).
func (s *State) poison(cause error) error {
	if s.poisoned == nil {
		s.poisoned = cause
	}
	return s.poisonedErr()
}

// poisonedErr returns the sticky fail-stop error.
func (s *State) poisonedErr() error {
	return fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
}

// convertPanic turns a panic escaping a batch apply into a poisoning error:
// the repair machinery has no recovery points mid-heal, so an escaped panic
// means the state is mid-mutation and must not be used again.
func (s *State) convertPanic(err *error) {
	if r := recover(); r != nil {
		*err = s.poison(fmt.Errorf("core: panic during batch apply: %v", r))
	}
}
