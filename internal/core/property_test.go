package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xheal/xheal/internal/graph"
)

// churn drives a random adversarial insert/delete mix against a State,
// checking invariants and connectivity after every event. The adversary
// only sees topology (it picks targets from the graph), never the state's
// internal randomness — matching the paper's oblivious-adversary model.
func churn(t *testing.T, s *State, steps int, seed int64, deleteBias float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	next := graph.NodeID(100000)
	for step := 0; step < steps; step++ {
		alive := s.AliveNodes()
		if len(alive) > 4 && rng.Float64() < deleteBias {
			victim := alive[rng.Intn(len(alive))]
			if err := s.DeleteNode(victim); err != nil {
				t.Fatalf("step %d delete %d: %v", step, victim, err)
			}
		} else {
			// Insert attached to 1-3 random alive nodes.
			k := 1 + rng.Intn(3)
			if k > len(alive) {
				k = len(alive)
			}
			perm := rng.Perm(len(alive))[:k]
			nbrs := make([]graph.NodeID, 0, k)
			for _, i := range perm {
				nbrs = append(nbrs, alive[i])
			}
			if err := s.InsertNode(next, nbrs); err != nil {
				t.Fatalf("step %d insert %d: %v", step, next, err)
			}
			next++
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d invariants: %v", step, err)
		}
		if !s.Graph().IsConnected() {
			t.Fatalf("step %d: healed graph disconnected", step)
		}
	}
}

func TestChurnCycleStart(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 21}, cycle(16))
	churn(t, s, 150, 77, 0.5)
}

func TestChurnStarStart(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 22}, star(15))
	churn(t, s, 150, 78, 0.5)
}

func TestChurnCompleteStart(t *testing.T) {
	s := mustState(t, Config{Kappa: 6, Seed: 23}, complete(10))
	churn(t, s, 150, 79, 0.5)
}

func TestChurnDeleteHeavy(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 24}, complete(30))
	churn(t, s, 120, 80, 0.8)
}

func TestChurnSmallKappa(t *testing.T) {
	s := mustState(t, Config{Kappa: 2, Seed: 25}, cycle(12))
	churn(t, s, 120, 81, 0.5)
}

// TestPropertyRandomSequences explores many short random adversarial
// sequences across seeds, initial shapes, and kappas.
func TestPropertyRandomSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g0 *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g0 = star(4 + rng.Intn(10))
		case 1:
			g0 = cycle(4 + rng.Intn(10))
		default:
			g0 = complete(4 + rng.Intn(6))
		}
		kappa := 2 * (1 + rng.Intn(3))
		s, err := NewState(Config{Kappa: kappa, Seed: seed}, g0)
		if err != nil {
			return false
		}
		next := graph.NodeID(100000)
		for step := 0; step < 40; step++ {
			alive := s.AliveNodes()
			if len(alive) > 3 && rng.Intn(2) == 0 {
				if s.DeleteNode(alive[rng.Intn(len(alive))]) != nil {
					return false
				}
			} else {
				nbrs := []graph.NodeID{alive[rng.Intn(len(alive))]}
				if s.InsertNode(next, nbrs) != nil {
					return false
				}
				next++
			}
			if s.CheckInvariants() != nil {
				return false
			}
			if !s.Graph().IsConnected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStretchBoundEmpirical checks Theorem 2.2 on a concrete workload: after
// heavy deletion the distance between surviving nodes must stay within
// O(log n) of their G' distance. The constant is generous but the growth
// must be logarithmic, not linear.
func TestStretchBoundEmpirical(t *testing.T) {
	n := 40
	// Path graph: stretch-sensitive topology.
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	s := mustState(t, Config{Kappa: 4, Seed: 31}, g)
	// Delete every third node.
	for i := 1; i < n; i += 3 {
		mustDelete(t, s, graph.NodeID(i))
	}
	gp := s.Baseline()
	healed := s.Graph()
	logn := math.Log2(float64(n))
	worst := 0.0
	for _, u := range s.AliveNodes() {
		for _, v := range s.AliveNodes() {
			if u >= v {
				continue
			}
			dOrig := gp.Distance(u, v)
			dHealed := healed.Distance(u, v)
			if dOrig <= 0 || dHealed < 0 {
				continue
			}
			if r := float64(dHealed) / float64(dOrig); r > worst {
				worst = r
			}
		}
	}
	// Theorem 2.2 allows O(log n); flag anything beyond 4·log2(n) as a
	// regression.
	if worst > 4*logn {
		t.Fatalf("stretch = %v exceeds 4·log2(n) = %v", worst, 4*logn)
	}
}

// TestExpansionPreservedOnExpanderStart verifies Corollary 1 empirically:
// starting from a good expander (a complete graph) and deleting half the
// nodes, λ₂-based expansion of the healed graph stays bounded away from 0.
func TestExpansionPreservedOnExpanderStart(t *testing.T) {
	s := mustState(t, Config{Kappa: 6, Seed: 41}, complete(24))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		alive := s.AliveNodes()
		mustDelete(t, s, alive[rng.Intn(len(alive))])
	}
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected")
	}
	// 12 nodes remain: exact expansion is computable.
	gHealed := s.Graph()
	if gHealed.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", gHealed.NumNodes())
	}
}

// TestSharedNodeNeverSharedTwice inspects the sharedOnce ledger under churn.
func TestSharedNodeNeverSharedTwice(t *testing.T) {
	s := mustState(t, Config{Kappa: 2, Seed: 51}, star(12))
	rng := rand.New(rand.NewSource(9))
	shares := 0
	for step := 0; step < 60; step++ {
		alive := s.AliveNodes()
		if len(alive) <= 4 {
			break
		}
		victim := alive[rng.Intn(len(alive))]
		if err := s.DeleteNode(victim); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if got := s.Stats().Shares; got > shares {
			shares = got
		}
	}
	// The run must stay consistent whether or not sharing occurred; the
	// counter is monotone by construction.
	if s.Stats().Shares != shares {
		t.Fatalf("shares decreased: %d -> %d", shares, s.Stats().Shares)
	}
}
