package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func TestApplyBatchInsertThenDelete(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, star(8))
	batch := Batch{
		Insertions: []BatchInsertion{
			{Node: 100, Neighbors: []graph.NodeID{1, 2}},
			{Node: 101, Neighbors: []graph.NodeID{100}}, // attaches to same-batch insert
		},
		Deletions: []graph.NodeID{0, 3},
	}
	if err := s.ApplyBatch(batch); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected after batch")
	}
	if s.Alive(0) || s.Alive(3) {
		t.Fatal("deleted nodes still alive")
	}
	if !s.Alive(100) || !s.Alive(101) {
		t.Fatal("inserted nodes missing")
	}
	st := s.Stats()
	if st.Insertions != 2 || st.Deletions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestApplyBatchConflicts(t *testing.T) {
	base := star(6)
	cases := []struct {
		name  string
		batch Batch
		want  error
	}{
		{
			name: "duplicate insert",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 100, Neighbors: []graph.NodeID{1}},
				{Node: 100, Neighbors: []graph.NodeID{2}},
			}},
			want: ErrBatchConflict,
		},
		{
			name:  "duplicate delete",
			batch: Batch{Deletions: []graph.NodeID{1, 1}},
			want:  ErrBatchConflict,
		},
		{
			name: "insert then delete same node",
			batch: Batch{
				Insertions: []BatchInsertion{{Node: 100, Neighbors: []graph.NodeID{1}}},
				Deletions:  []graph.NodeID{100},
			},
			want: ErrBatchConflict,
		},
		{
			name: "attach to deleted",
			batch: Batch{
				Insertions: []BatchInsertion{{Node: 100, Neighbors: []graph.NodeID{2}}},
				Deletions:  []graph.NodeID{2},
			},
			want: ErrBatchConflict,
		},
		{
			name:  "delete missing",
			batch: Batch{Deletions: []graph.NodeID{999}},
			want:  ErrNodeMissing,
		},
		{
			name: "attach to unknown",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 100, Neighbors: []graph.NodeID{999}},
			}},
			want: ErrBadNeighbor,
		},
		{
			// Insertions apply in order: a forward reference would fail
			// mid-apply, so validation must reject it up front to keep the
			// wholesale-rejection guarantee.
			name: "attach to later insertion",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 100, Neighbors: []graph.NodeID{101}},
				{Node: 101, Neighbors: []graph.NodeID{1}},
			}},
			want: ErrBatchConflict,
		},
		{
			name: "insert existing node",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 1, Neighbors: []graph.NodeID{2}},
			}},
			want: ErrNodeExists,
		},
		{
			name: "self neighbor",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 100, Neighbors: []graph.NodeID{100}},
			}},
			want: ErrSelfInsert,
		},
		{
			name: "duplicate neighbor",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 100, Neighbors: []graph.NodeID{1, 1}},
			}},
			want: ErrBadNeighbor,
		},
		{
			// The failing event is second: without up-front validation the
			// first insertion would already have applied.
			name: "mid-batch failure stays wholesale",
			batch: Batch{Insertions: []BatchInsertion{
				{Node: 100, Neighbors: []graph.NodeID{1}},
				{Node: 101, Neighbors: []graph.NodeID{999}},
			}},
			want: ErrBadNeighbor,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := mustState(t, Config{Kappa: 4, Seed: 2}, base)
			before := s.CloneGraph()
			err := s.ApplyBatch(tc.batch)
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			if !s.Graph().Equal(before) {
				t.Fatal("failed batch mutated the state")
			}
		})
	}
}

func TestApplyBatchEquivalentToSequential(t *testing.T) {
	// Per the paper's Lemma 2 argument, a batch is equivalent to applying
	// its insertions then its deletions one timestep at a time.
	build := func() *State { return mustState(t, Config{Kappa: 4, Seed: 9}, star(10)) }

	batchState := build()
	err := batchState.ApplyBatch(Batch{
		Insertions: []BatchInsertion{{Node: 100, Neighbors: []graph.NodeID{1, 2}}},
		Deletions:  []graph.NodeID{0, 4},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	seqState := build()
	if err := seqState.InsertNode(100, []graph.NodeID{1, 2}); err != nil {
		t.Fatalf("InsertNode: %v", err)
	}
	if err := seqState.DeleteNode(0); err != nil {
		t.Fatalf("DeleteNode: %v", err)
	}
	if err := seqState.DeleteNode(4); err != nil {
		t.Fatalf("DeleteNode: %v", err)
	}

	if !batchState.Graph().Equal(seqState.Graph()) {
		t.Fatal("batch and sequential runs diverged")
	}
	if !batchState.Baseline().Equal(seqState.Baseline()) {
		t.Fatal("baselines diverged")
	}
}

func TestApplyBatchChurn(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 11}, complete(12))
	rng := rand.New(rand.NewSource(13))
	next := graph.NodeID(500)
	for round := 0; round < 25; round++ {
		alive := s.AliveNodes()
		var b Batch
		// Two deletions per timestep (chosen first so insertions can avoid
		// attaching to them — the adversary may not reference dying nodes).
		doomed := make(map[graph.NodeID]struct{}, 2)
		if len(alive) > 6 {
			perm := rng.Perm(len(alive))
			b.Deletions = []graph.NodeID{alive[perm[0]], alive[perm[1]]}
			for _, d := range b.Deletions {
				doomed[d] = struct{}{}
			}
		}
		// Two insertions attached to surviving nodes.
		for k := 0; k < 2; k++ {
			var target graph.NodeID
			for {
				target = alive[rng.Intn(len(alive))]
				if _, dying := doomed[target]; !dying {
					break
				}
			}
			b.Insertions = append(b.Insertions, BatchInsertion{
				Node:      next,
				Neighbors: []graph.NodeID{target},
			})
			next++
		}
		if err := s.ApplyBatch(b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d invariants: %v", round, err)
		}
		if !s.Graph().IsConnected() {
			t.Fatalf("round %d: disconnected", round)
		}
	}
}

// A batch insertion reusing a deleted node's ID is rejected up front, like
// InsertNode would.
func TestApplyBatchReusedID(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 3}, star(6))
	if err := s.DeleteNode(5); err != nil {
		t.Fatalf("DeleteNode: %v", err)
	}
	before := s.CloneGraph()
	err := s.ApplyBatch(Batch{Insertions: []BatchInsertion{
		{Node: 5, Neighbors: []graph.NodeID{1}},
	}})
	if !errors.Is(err, ErrReusedNodeID) {
		t.Fatalf("error = %v, want ErrReusedNodeID", err)
	}
	if !s.Graph().Equal(before) {
		t.Fatal("failed batch mutated the state")
	}
}
