package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"github.com/xheal/xheal/internal/expander"
	"github.com/xheal/xheal/internal/graph"
)

// This file is the durability boundary of the sequential engine: Snapshot
// serializes the complete State — graphs, claims, clouds, membership maps,
// counters, and the position of the private randomness stream — and
// RestoreState rebuilds a State that is behaviorally indistinguishable from
// the original: every future event produces bit-identical healing decisions,
// because the H-graph wirings are restored exactly and the rng resumes from
// the recorded stream position. Snapshots of a restored state are
// byte-identical to snapshots of an uncrashed run at the same point, which
// is how crash-recovery identity is asserted end to end.

// SnapshotVersion identifies the engine snapshot schema.
const SnapshotVersion = 1

// ErrBadSnapshot wraps all engine-snapshot decode/restore failures.
var ErrBadSnapshot = errors.New("core: malformed snapshot")

// GraphSnapshot is a graph as flat node and edge lists, both in canonical
// ascending order.
type GraphSnapshot struct {
	Nodes []graph.NodeID `json:"nodes"`
	Edges []graph.Edge   `json:"edges"`
}

// TakeGraphSnapshot captures g.
func TakeGraphSnapshot(g *graph.Graph) GraphSnapshot {
	return GraphSnapshot{
		Nodes: append([]graph.NodeID(nil), g.Nodes()...),
		Edges: append([]graph.Edge(nil), g.Edges()...),
	}
}

// Restore rebuilds the graph.
func (gs GraphSnapshot) Restore() *graph.Graph {
	g := graph.New()
	for _, n := range gs.Nodes {
		g.EnsureNode(n)
	}
	for _, e := range gs.Edges {
		g.EnsureEdge(e.U, e.V)
	}
	return g
}

// ClaimSnapshot is the ownership record of one physical edge.
type ClaimSnapshot struct {
	Edge graph.Edge `json:"edge"`
	// Black marks an original/adversary-inserted edge; Colors lists the
	// claiming clouds (ascending) otherwise.
	Black  bool      `json:"black,omitempty"`
	Colors []ColorID `json:"colors,omitempty"`
}

// CloudSnapshot is one expander cloud. The physical edge set is not
// serialized: a cloud's claims always equal its maintainer's logical edges
// between repairs (invariant 2), so restore derives them.
type CloudSnapshot struct {
	ID         ColorID            `json:"id"`
	Kind       CloudKind          `json:"kind"`
	Maintainer *expander.Snapshot `json:"maintainer"`
}

// MembershipSnapshot lists the primary clouds one node belongs to.
type MembershipSnapshot struct {
	Node   graph.NodeID `json:"node"`
	Colors []ColorID    `json:"colors"`
}

// BridgeLinkSnapshot is one node's secondary duty.
type BridgeLinkSnapshot struct {
	Node      graph.NodeID `json:"node"`
	Primary   ColorID      `json:"primary"`
	Secondary ColorID      `json:"secondary"`
}

// Snapshot is the complete serializable state of a sequential engine. All
// collections are sorted, so encoding is deterministic: equal states produce
// byte-identical JSON.
type Snapshot struct {
	Version        int            `json:"version"`
	Kappa          int            `json:"kappa"`
	Seed           int64          `json:"seed"`
	AlwaysCombine  bool           `json:"always_combine,omitempty"`
	DisableSharing bool           `json:"disable_sharing,omitempty"`
	RngDraws       uint64         `json:"rng_draws"`
	Graph          GraphSnapshot  `json:"graph"`
	Baseline       GraphSnapshot  `json:"baseline"`
	Deleted        []graph.NodeID `json:"deleted,omitempty"`
	Claims         []ClaimSnapshot `json:"claims"`
	Clouds         []CloudSnapshot `json:"clouds,omitempty"`
	NodePrimaries  []MembershipSnapshot `json:"node_primaries,omitempty"`
	BridgeLinks    []BridgeLinkSnapshot `json:"bridge_links,omitempty"`
	SharedOnce     []graph.NodeID       `json:"shared_once,omitempty"`
	NextColor      ColorID              `json:"next_color"`
	Stats          Stats                `json:"stats"`
}

// Snapshot captures the complete current state. The state must be quiescent
// (between events); the snapshot shares no memory with the live state.
func (s *State) Snapshot() *Snapshot {
	snap := &Snapshot{
		Version:        SnapshotVersion,
		Kappa:          s.kappa,
		Seed:           s.seed,
		AlwaysCombine:  s.alwaysCombine,
		DisableSharing: s.disableSharing,
		RngDraws:       s.src.Draws(),
		Graph:          TakeGraphSnapshot(s.g),
		Baseline:       TakeGraphSnapshot(s.gp),
		NextColor:      s.nextColor,
		Stats:          s.stats,
	}
	snap.Deleted = sortedNodeSet(s.deleted)
	snap.SharedOnce = sortedNodeSet(s.sharedOnce)

	snap.Claims = make([]ClaimSnapshot, 0, len(s.claims))
	for e, cl := range s.claims {
		snap.Claims = append(snap.Claims, ClaimSnapshot{
			Edge:   e,
			Black:  cl.black,
			Colors: append([]ColorID(nil), cl.colors...),
		})
	}
	slices.SortFunc(snap.Claims, func(a, b ClaimSnapshot) int {
		return graph.CompareEdges(a.Edge, b.Edge)
	})

	for _, id := range s.Clouds() { // ascending
		c := s.clouds[id]
		snap.Clouds = append(snap.Clouds, CloudSnapshot{
			ID: id, Kind: c.kind, Maintainer: c.m.Snapshot(),
		})
	}

	for _, n := range sortedNodeKeys(s.nodePrimaries) {
		set := s.nodePrimaries[n]
		if len(set) == 0 {
			continue // empty entries are semantically absent
		}
		colors := make([]ColorID, 0, len(set))
		for id := range set {
			colors = append(colors, id)
		}
		slices.Sort(colors)
		snap.NodePrimaries = append(snap.NodePrimaries, MembershipSnapshot{Node: n, Colors: colors})
	}

	for _, n := range sortedNodeKeys(s.bridgeLinks) {
		link := s.bridgeLinks[n]
		snap.BridgeLinks = append(snap.BridgeLinks, BridgeLinkSnapshot{
			Node: n, Primary: link.primary, Secondary: link.secondary,
		})
	}
	return snap
}

// RestoreState rebuilds a State from a snapshot. The restored state passes
// CheckInvariants before being returned, so a corrupt snapshot fails here
// rather than corrupting a serving run; its future behavior is bit-identical
// to the snapshotted original's.
func RestoreState(snap *Snapshot) (*State, error) {
	if snap == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadSnapshot)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, snap.Version, SnapshotVersion)
	}
	if snap.Kappa < 2 || snap.Kappa%2 != 0 {
		return nil, fmt.Errorf("%w: kappa=%d", ErrBadSnapshot, snap.Kappa)
	}
	src := NewCountedSource(snap.Seed)
	src.Skip(snap.RngDraws)
	sw := &switchableSource{cur: src}
	s := &State{
		kappa:          snap.Kappa,
		seed:           snap.Seed,
		src:            src,
		sw:             sw,
		rng:            rand.New(sw),
		alwaysCombine:  snap.AlwaysCombine,
		disableSharing: snap.DisableSharing,
		g:              snap.Graph.Restore(),
		gp:             snap.Baseline.Restore(),
		deleted:        nodeSet(snap.Deleted),
		claims:         make(map[graph.Edge]edgeClaim, len(snap.Claims)),
		clouds:         make(map[ColorID]*cloud, len(snap.Clouds)),
		nodePrimaries:  make(map[graph.NodeID]map[ColorID]struct{}, len(snap.NodePrimaries)),
		bridgeLinks:    make(map[graph.NodeID]bridgeLink, len(snap.BridgeLinks)),
		sharedOnce:     nodeSet(snap.SharedOnce),
		nextColor:      snap.NextColor,
		stats:          snap.Stats,
	}
	for _, cl := range snap.Claims {
		if cl.Black == (len(cl.Colors) > 0) {
			return nil, fmt.Errorf("%w: claim on %v is not black xor colored", ErrBadSnapshot, cl.Edge)
		}
		s.claims[cl.Edge] = edgeClaim{black: cl.Black, colors: append([]ColorID(nil), cl.Colors...)}
	}
	for _, cs := range snap.Clouds {
		if _, dup := s.clouds[cs.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate cloud %d", ErrBadSnapshot, cs.ID)
		}
		if cs.ID >= s.nextColor {
			return nil, fmt.Errorf("%w: cloud %d at/above next color %d", ErrBadSnapshot, cs.ID, s.nextColor)
		}
		m, err := expander.Restore(cs.Maintainer, s.rng)
		if err != nil {
			return nil, fmt.Errorf("%w: cloud %d: %v", ErrBadSnapshot, cs.ID, err)
		}
		if m.Kappa() != s.kappa {
			return nil, fmt.Errorf("%w: cloud %d kappa %d != engine kappa %d", ErrBadSnapshot, cs.ID, m.Kappa(), s.kappa)
		}
		s.clouds[cs.ID] = &cloud{id: cs.ID, kind: cs.Kind, m: m, edges: m.EdgeSet()}
	}
	for _, ms := range snap.NodePrimaries {
		set := make(map[ColorID]struct{}, len(ms.Colors))
		for _, id := range ms.Colors {
			set[id] = struct{}{}
		}
		s.nodePrimaries[ms.Node] = set
	}
	for _, bl := range snap.BridgeLinks {
		s.bridgeLinks[bl.Node] = bridgeLink{primary: bl.Primary, secondary: bl.Secondary}
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("%w: restored state: %v", ErrBadSnapshot, err)
	}
	return s, nil
}

// SnapshotState serializes the complete engine state as deterministic JSON —
// the engine-agnostic form a checkpoint store persists (see internal/server's
// Snapshotter).
func (s *State) SnapshotState() ([]byte, error) {
	if s.poisoned != nil {
		return nil, s.poisonedErr()
	}
	return json.Marshal(s.Snapshot())
}

// LoadSnapshot decodes an engine snapshot serialized by SnapshotState.
func LoadSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &snap, nil
}

func sortedNodeSet(set map[graph.NodeID]struct{}) []graph.NodeID {
	if len(set) == 0 {
		return nil
	}
	out := make([]graph.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

func sortedNodeKeys[V any](m map[graph.NodeID]V) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

func nodeSet(nodes []graph.NodeID) map[graph.NodeID]struct{} {
	set := make(map[graph.NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		set[n] = struct{}{}
	}
	return set
}
