package core

import (
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// This file reproduces the paper's illustration figures as executable
// scenarios: each test constructs the configuration the figure depicts and
// asserts the structural facts the figure is used to argue.

// TestFigure2NodeInManyPrimaryClouds reproduces Figure 2: "A node can be
// part of many primary clouds." We arrange for node x to be a neighbor of
// several deleted hubs; each deletion wraps x into another primary cloud.
func TestFigure2NodeInManyPrimaryClouds(t *testing.T) {
	g := graph.New()
	const x = graph.NodeID(1)
	hubs := []graph.NodeID{100, 200, 300}
	// Each hub connects x with a few private leaves, so each deletion forms
	// a separate primary cloud containing x.
	leaf := graph.NodeID(1000)
	for _, hub := range hubs {
		g.EnsureEdge(hub, x)
		for k := 0; k < 3; k++ {
			g.EnsureEdge(hub, leaf)
			leaf++
		}
	}
	// Keep the graph connected after hub deletions: a base chain among the
	// leaf groups through x is provided by the clouds themselves.
	s := mustState(t, Config{Kappa: 4, Seed: 21}, g)
	for i, hub := range hubs {
		mustDelete(t, s, hub)
		prims := s.PrimariesOf(x)
		if len(prims) != i+1 {
			t.Fatalf("after %d hub deletions x is in %d primary clouds, want %d",
				i+1, len(prims), i+1)
		}
	}
	// The figure's point: multiple primary memberships are legal and each
	// costs at most κ degree (Theorem 2.1 argument).
	if deg := s.Graph().Degree(x); deg > 3*s.Kappa() {
		t.Fatalf("x degree %d exceeds 3κ after 3 memberships", deg)
	}
}

// TestFigure3BridgeInSecondaryCloud reproduces Figure 3's configuration: a
// deleted node x that was a bridge anchoring a primary cloud inside a
// secondary cloud F which also connects other primary clouds. Its deletion
// must re-anchor F and keep every cloud connected (Case 2.2).
func TestFigure3BridgeInSecondaryCloud(t *testing.T) {
	// Construction: two hubs sharing neighbor x. Deleting the hubs puts x
	// in two primary clouds; deleting x (Case 2.1) must then create a
	// secondary cloud bridging the two fixed clouds.
	g := graph.New()
	const x = graph.NodeID(50)
	g.EnsureEdge(100, x)
	g.EnsureEdge(200, x)
	for i := 1; i <= 3; i++ {
		g.EnsureEdge(100, graph.NodeID(i)) // cloud A members 1..3 (+x)
	}
	for i := 11; i <= 13; i++ {
		g.EnsureEdge(200, graph.NodeID(i)) // cloud B members 11..13 (+x)
	}
	s := mustState(t, Config{Kappa: 4, Seed: 23}, g)
	mustDelete(t, s, 100)
	mustDelete(t, s, 200)
	if len(s.PrimariesOf(x)) != 2 {
		t.Fatalf("x in %d clouds, want 2", len(s.PrimariesOf(x)))
	}
	mustDelete(t, s, x) // Case 2.1: fixes both clouds, builds the secondary
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected after shared-member deletion")
	}
	var bridge graph.NodeID
	found := false
	for _, n := range s.AliveNodes() {
		if _, ok := s.SecondaryOf(n); ok {
			bridge = n
			found = true
			break
		}
	}
	if !found {
		t.Fatal("Case 2.1 on two clouds did not create a secondary cloud")
	}
	// Figure 3's deletion: the bridge node itself.
	mustDelete(t, s, bridge)
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected after bridge deletion (Case 2.2)")
	}
}

// TestFigure4HealedBall reproduces Figure 4: "Healed graph after deletion
// of node x. The ball of x and its neighbors gets replaced by a κ-regular
// expander of its neighbors."
func TestFigure4HealedBall(t *testing.T) {
	const leaves = 9
	s := mustState(t, Config{Kappa: 4, Seed: 25}, star(leaves))
	mustDelete(t, s, 0)
	// Every former neighbor is in the replacement cloud, wired κ-regularly
	// (H-graph) since leaves > κ+1.
	ids := s.Clouds()
	if len(ids) != 1 {
		t.Fatalf("clouds = %v, want 1", ids)
	}
	members, kind, _ := s.CloudMembers(ids[0])
	if kind != Primary || len(members) != leaves {
		t.Fatalf("cloud = %v %v", members, kind)
	}
	for _, m := range members {
		deg := s.Graph().Degree(m)
		if deg < 2 || deg > s.Kappa() {
			t.Fatalf("member %d degree %d outside [2, κ]", m, deg)
		}
	}
}

// TestFigure5InsertionIntoHealedGraph reproduces Figure 5: G and G′ after
// an insertion when prior deletions already produced colored clouds. G has
// clouds; G′ has the deleted nodes; the inserted node's edges are black in
// both.
func TestFigure5InsertionIntoHealedGraph(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 27}, star(6))
	mustDelete(t, s, 0)
	mustInsert(t, s, 500, 1, 2)

	// G: inserted edges are black.
	for _, w := range []graph.NodeID{1, 2} {
		colors, ok := s.EdgeColors(500, w)
		if !ok || len(colors) != 0 {
			t.Fatalf("inserted edge (500,%d) colors = %v ok=%v, want black", w, colors, ok)
		}
	}
	// G′: contains the deleted hub and the inserted node, but none of the
	// healing edges.
	gp := s.Baseline()
	if !gp.HasNode(0) || !gp.HasNode(500) {
		t.Fatal("G' membership wrong")
	}
	healEdges := 0
	for _, e := range s.Graph().Edges() {
		colors, _ := s.EdgeColors(e.U, e.V)
		if len(colors) > 0 {
			healEdges++
			if gp.HasEdge(e.U, e.V) {
				t.Fatalf("healing edge %v present in G'", e)
			}
		}
	}
	if healEdges == 0 {
		t.Fatal("no healing edges found")
	}
}

// TestFigure6MixedRepair reproduces Figure 6: deletion of a node x whose
// neighbors include black neighbors and members of several colored clouds
// C1..Cj; the repair connects them all with a new cloud of a fresh color.
func TestFigure6MixedRepair(t *testing.T) {
	g := graph.New()
	// Two future primary clouds via hubs, plus black neighbors of x.
	const x = graph.NodeID(50)
	for i := 1; i <= 3; i++ {
		g.EnsureEdge(100, graph.NodeID(i))
	}
	for i := 11; i <= 13; i++ {
		g.EnsureEdge(200, graph.NodeID(i))
	}
	g.EnsureEdge(100, x)
	g.EnsureEdge(200, x)
	g.EnsureEdge(x, 31) // black neighbor
	g.EnsureEdge(x, 32) // black neighbor
	g.EnsureEdge(31, 32)

	s := mustState(t, Config{Kappa: 4, Seed: 29}, g)
	mustDelete(t, s, 100) // x joins cloud C1
	mustDelete(t, s, 200) // x joins cloud C2
	if len(s.PrimariesOf(x)) != 2 {
		t.Fatalf("x in %d primary clouds, want 2", len(s.PrimariesOf(x)))
	}
	colorCountBefore := len(s.Clouds())
	mustDelete(t, s, x) // Figure 6's deletion: mixed colored + black edges
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected after mixed deletion")
	}
	// A fresh color appeared (the secondary or combined cloud of the repair).
	if len(s.Clouds()) <= colorCountBefore-2 {
		t.Fatalf("no new cloud created: %d -> %d", colorCountBefore, len(s.Clouds()))
	}
	// 31 and 32 (black neighbors) must remain attached to the C1/C2 side.
	for _, bn := range []graph.NodeID{31, 32} {
		if s.Graph().Distance(bn, 1) == graph.Unreachable {
			t.Fatalf("black neighbor %d detached from cloud side", bn)
		}
	}
}
