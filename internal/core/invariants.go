package core

import (
	"errors"
	"fmt"

	"github.com/xheal/xheal/internal/graph"
)

// ErrInvariant wraps all invariant-check failures.
var ErrInvariant = errors.New("core: invariant violated")

func violation(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvariant, fmt.Sprintf(format, args...))
}

// CheckInvariants verifies the full internal consistency of the state:
//
//  1. claims and physical edges correspond one-to-one; every claim is black
//     xor colored by at least one live cloud;
//  2. every cloud's claimed edge set matches its maintainer's logical edges,
//     the maintainer is structurally valid, and its members are alive;
//  3. membership maps agree with cloud contents; each node has at most one
//     secondary duty, anchored in a primary cloud it belongs to;
//  4. the degree bound of paper Theorem 2.1 holds for every alive node:
//     deg_G(x) ≤ κ·deg_G′(x) + 2κ;
//  5. deleted nodes are gone from G, retained in G′, and appear in no cloud.
//
// It returns nil when all hold.
func (s *State) CheckInvariants() error {
	if err := s.checkClaims(); err != nil {
		return err
	}
	if err := s.checkClouds(); err != nil {
		return err
	}
	if err := s.checkMemberships(); err != nil {
		return err
	}
	if err := s.checkDegreeBound(); err != nil {
		return err
	}
	return s.checkDeleted()
}

func (s *State) checkClaims() error {
	for _, e := range s.g.Edges() {
		cl, ok := s.claims[e]
		if !ok {
			return violation("physical edge %v has no claim", e)
		}
		if cl.empty() {
			return violation("edge %v has an empty claim", e)
		}
		if cl.black && len(cl.colors) > 0 {
			return violation("edge %v is both black and colored", e)
		}
		for _, color := range cl.colors {
			c, live := s.clouds[color]
			if !live {
				return violation("edge %v claimed by dead cloud %d", e, color)
			}
			if _, has := c.edges[e]; !has {
				return violation("edge %v claims cloud %d which does not list it", e, color)
			}
		}
	}
	for e := range s.claims {
		if !s.g.HasEdge(e.U, e.V) {
			return violation("claim on %v without a physical edge", e)
		}
	}
	return nil
}

func (s *State) checkClouds() error {
	for id, c := range s.clouds {
		if c.id != id {
			return violation("cloud registry key %d != cloud id %d", id, c.id)
		}
		if c.kind != Primary && c.kind != Secondary {
			return violation("cloud %d has invalid kind %d", id, int(c.kind))
		}
		if c.size() == 0 {
			return violation("cloud %d is empty but registered", id)
		}
		if err := c.m.Validate(); err != nil {
			return violation("cloud %d maintainer: %v", id, err)
		}
		for _, n := range c.members() {
			if !s.g.HasNode(n) {
				return violation("cloud %d member %d is not alive", id, n)
			}
		}
		want := c.m.EdgeSet()
		if len(want) != len(c.edges) {
			return violation("cloud %d claims %d edges, maintainer wants %d", id, len(c.edges), len(want))
		}
		for e := range want {
			if _, ok := c.edges[e]; !ok {
				return violation("cloud %d missing claim on %v", id, e)
			}
			cl, ok := s.claims[e]
			if !ok {
				return violation("cloud %d edge %v has no physical claim", id, e)
			}
			if !cl.hasColor(id) {
				return violation("cloud %d edge %v claim does not list the cloud", id, e)
			}
		}
	}
	return nil
}

func (s *State) checkMemberships() error {
	// nodePrimaries must match primary cloud contents exactly.
	for n, set := range s.nodePrimaries {
		if !s.g.HasNode(n) {
			return violation("membership entry for dead node %d", n)
		}
		for id := range set {
			c, ok := s.clouds[id]
			if !ok {
				return violation("node %d lists dead cloud %d", n, id)
			}
			if c.kind != Primary {
				return violation("node %d lists non-primary cloud %d as primary", n, id)
			}
			if !c.contains(n) {
				return violation("node %d lists cloud %d which lacks it", n, id)
			}
		}
	}
	for id, c := range s.clouds {
		if c.kind != Primary {
			continue
		}
		for _, n := range c.members() {
			set, ok := s.nodePrimaries[n]
			if !ok {
				return violation("cloud %d member %d missing membership entry", id, n)
			}
			if _, in := set[id]; !in {
				return violation("cloud %d member %d does not list the cloud", id, n)
			}
		}
	}
	// Secondary duties: link must reference live clouds of the right kinds,
	// with the node a member of both sides.
	for n, link := range s.bridgeLinks {
		if !s.g.HasNode(n) {
			return violation("bridge link for dead node %d", n)
		}
		f, ok := s.clouds[link.secondary]
		if !ok {
			return violation("node %d bridges dead secondary %d", n, link.secondary)
		}
		if f.kind != Secondary {
			return violation("node %d bridge target %d is not secondary", n, link.secondary)
		}
		if !f.contains(n) {
			return violation("node %d not a member of its secondary %d", n, link.secondary)
		}
		p, ok := s.clouds[link.primary]
		if !ok {
			return violation("node %d anchors dead primary %d", n, link.primary)
		}
		if p.kind != Primary {
			return violation("node %d anchor %d is not primary", n, link.primary)
		}
		if !p.contains(n) {
			return violation("node %d not a member of its anchored primary %d", n, link.primary)
		}
	}
	// Every secondary member must carry a link to that secondary.
	for id, f := range s.clouds {
		if f.kind != Secondary {
			continue
		}
		for _, n := range f.members() {
			link, ok := s.bridgeLinks[n]
			if !ok || link.secondary != id {
				return violation("secondary %d member %d lacks a matching bridge link", id, n)
			}
		}
	}
	return nil
}

func (s *State) checkDegreeBound() error {
	for _, n := range s.g.Nodes() {
		dG := s.g.Degree(n)
		dGp := s.gp.Degree(n)
		bound := s.kappa*dGp + 2*s.kappa
		if dG > bound {
			return violation("degree bound: node %d has deg_G=%d > κ·deg_G'=%d·%d + 2κ = %d",
				n, dG, s.kappa, dGp, bound)
		}
	}
	return nil
}

func (s *State) checkDeleted() error {
	for n := range s.deleted {
		if s.g.HasNode(n) {
			return violation("deleted node %d still alive", n)
		}
		if !s.gp.HasNode(n) {
			return violation("deleted node %d missing from G'", n)
		}
		if _, ok := s.nodePrimaries[n]; ok {
			return violation("deleted node %d has primary memberships", n)
		}
		if _, ok := s.bridgeLinks[n]; ok {
			return violation("deleted node %d has a bridge link", n)
		}
	}
	for _, c := range s.clouds {
		for _, n := range c.members() {
			if _, dead := s.deleted[n]; dead {
				return violation("cloud %d contains deleted node %d", c.id, n)
			}
		}
	}
	return nil
}

// DegreeBound returns the paper's Theorem 2.1 bound κ·deg_G′(x) + 2κ for x.
func (s *State) DegreeBound(x graph.NodeID) int {
	return s.kappa*s.gp.Degree(x) + 2*s.kappa
}
