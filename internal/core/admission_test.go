package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// admissionSentinels is the full verdict vocabulary shared by ValidateBatch
// and BatchAdmission. Two errors are "the same verdict" when they agree on
// membership for every sentinel — in particular on ErrBatchConflict, which
// is the defer-vs-reject boundary the serving loop keys on.
var admissionSentinels = []error{
	ErrBatchConflict,
	ErrNodeExists,
	ErrReusedNodeID,
	ErrSelfInsert,
	ErrBadNeighbor,
	ErrNodeMissing,
}

func sameVerdict(t *testing.T, ctx string, wholesale, incremental error) {
	t.Helper()
	if (wholesale == nil) != (incremental == nil) {
		t.Fatalf("%s: wholesale=%v incremental=%v", ctx, wholesale, incremental)
	}
	if wholesale == nil {
		return
	}
	for _, sent := range admissionSentinels {
		if errors.Is(wholesale, sent) != errors.Is(incremental, sent) {
			t.Fatalf("%s: verdicts disagree on %v:\n  wholesale:   %v\n  incremental: %v",
				ctx, sent, wholesale, incremental)
		}
	}
}

// TestAdmissionMatchesValidateBatch drives randomized event schedules —
// biased hard toward the conflict and rejection cases — through both
// admission paths in lockstep: each event is judged incrementally by
// BatchAdmission and wholesale by ValidateBatch on the prospective batch,
// and the verdicts must agree exactly. Admitted batches are then applied,
// so later rounds run against a churned state with a non-empty deleted set
// and healed topology.
func TestAdmissionMatchesValidateBatch(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := mustState(t, Config{Kappa: 4, Seed: seed + 100}, cycle(48))

			// Pre-churn so s.deleted and the baseline gp are populated: the
			// ErrReusedNodeID path needs dead IDs to trip over.
			if err := s.ApplyBatch(Batch{Deletions: []graph.NodeID{3, 11, 29}}); err != nil {
				t.Fatalf("pre-churn: %v", err)
			}

			fresh := graph.NodeID(10_000)
			nextFresh := func() graph.NodeID { fresh++; return fresh }

			for round := 0; round < 8; round++ {
				alive := s.Graph().Nodes()
				randAlive := func() graph.NodeID { return alive[rng.Intn(len(alive))] }
				dead := []graph.NodeID{3, 11, 29}

				adm := s.BeginAdmission()
				var batch Batch
				var batchInserted, batchDeleted []graph.NodeID
				var attached []graph.NodeID

				for ev := 0; ev < 60; ev++ {
					if rng.Intn(3) > 0 { // insertion
						ins := BatchInsertion{Node: nextFresh()}
						switch rng.Intn(8) {
						case 0: // duplicate of an already-admitted insert
							if len(batchInserted) > 0 {
								ins.Node = batchInserted[rng.Intn(len(batchInserted))]
							}
						case 1: // alive node → ErrNodeExists
							ins.Node = randAlive()
						case 2: // dead ID → ErrReusedNodeID
							ins.Node = dead[rng.Intn(len(dead))]
						}
						for k := rng.Intn(3) + 1; k > 0; k-- {
							w := randAlive()
							switch rng.Intn(10) {
							case 0:
								w = ins.Node // self
							case 1:
								if len(ins.Neighbors) > 0 { // duplicate neighbor
									w = ins.Neighbors[rng.Intn(len(ins.Neighbors))]
								}
							case 2: // batch-deleted → conflict
								if len(batchDeleted) > 0 {
									w = batchDeleted[rng.Intn(len(batchDeleted))]
								}
							case 3: // batch-inserted → valid
								if len(batchInserted) > 0 {
									w = batchInserted[rng.Intn(len(batchInserted))]
								}
							case 4: // unknown → ErrBadNeighbor
								w = nextFresh()
							}
							ins.Neighbors = append(ins.Neighbors, w)
						}

						cand := batch
						cand.Insertions = append(cand.Insertions, ins)
						wholesale := s.ValidateBatch(cand)
						incremental := adm.AdmitInsertion(ins)
						sameVerdict(t, fmt.Sprintf("round %d ev %d insert %+v", round, ev, ins),
							wholesale, incremental)
						if incremental == nil {
							batch = cand
							batchInserted = append(batchInserted, ins.Node)
							attached = append(attached, ins.Neighbors...)
						}
					} else { // deletion
						d := randAlive()
						switch rng.Intn(6) {
						case 0: // duplicate delete
							if len(batchDeleted) > 0 {
								d = batchDeleted[rng.Intn(len(batchDeleted))]
							}
						case 1: // delete a batch insert → conflict
							if len(batchInserted) > 0 {
								d = batchInserted[rng.Intn(len(batchInserted))]
							}
						case 2: // missing → ErrNodeMissing
							d = nextFresh()
						case 3: // attachment target of an admitted insert → conflict
							if len(attached) > 0 {
								d = attached[rng.Intn(len(attached))]
							}
						}

						cand := batch
						cand.Deletions = append(cand.Deletions, d)
						wholesale := s.ValidateBatch(cand)
						incremental := adm.AdmitDeletion(d)
						sameVerdict(t, fmt.Sprintf("round %d ev %d delete %d", round, ev, d),
							wholesale, incremental)
						if incremental == nil {
							batch = cand
							batchDeleted = append(batchDeleted, d)
						}
					}
				}

				// The admitted batch must be exactly applicable — the whole
				// point of admission is that apply cannot fail afterwards.
				if len(batch.Insertions)+len(batch.Deletions) == 0 {
					continue
				}
				if err := s.ApplyBatch(batch); err != nil {
					t.Fatalf("round %d: admitted batch failed to apply: %v", round, err)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("round %d: invariants after apply: %v", round, err)
				}
			}
		})
	}
}

// TestAdmissionFailureLeavesStateUntouched pins the defer contract: a
// rejected or conflicting event must not change the admission's view, so
// the same event can be re-judged (deferred) in a later tick and unrelated
// events keep admitting as if the failure never happened.
func TestAdmissionFailureLeavesStateUntouched(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 5}, cycle(16))
	adm := s.BeginAdmission()

	if err := adm.AdmitInsertion(BatchInsertion{Node: 100, Neighbors: []graph.NodeID{0, 1}}); err != nil {
		t.Fatalf("admit 100: %v", err)
	}
	// Fails on the unknown neighbor *after* valid ones: nothing may stick.
	err := adm.AdmitInsertion(BatchInsertion{Node: 101, Neighbors: []graph.NodeID{2, 999}})
	if !errors.Is(err, ErrBadNeighbor) {
		t.Fatalf("admit 101 = %v, want ErrBadNeighbor", err)
	}
	// 101 must not count as inserted; 2 must not count as attached.
	if err := adm.AdmitDeletion(2); err != nil {
		t.Fatalf("delete 2 after failed insert naming it: %v", err)
	}
	if err := adm.AdmitInsertion(BatchInsertion{Node: 101, Neighbors: []graph.NodeID{3}}); err != nil {
		t.Fatalf("re-admit 101 with good neighbors: %v", err)
	}
	// 0 was attached by the admitted insert of 100: deleting it must defer.
	if err := adm.AdmitDeletion(0); !errors.Is(err, ErrBatchConflict) {
		t.Fatalf("delete attached 0 = %v, want ErrBatchConflict", err)
	}
}
