package core

import (
	"cmp"
	"slices"

	"github.com/xheal/xheal/internal/expander"
	"github.com/xheal/xheal/internal/graph"
)

// caseAllBlack handles paper Case 1: every deleted edge was black. A new
// primary cloud — κ-regular expander, or clique when small — is constructed
// among the deleted node's neighbors. Fewer than two neighbors need no
// wiring (paper: a degree-1 node "is just dropped").
func (s *State) caseAllBlack(blackNbrs []graph.NodeID) {
	if len(blackNbrs) < 2 {
		return
	}
	s.makePrimaryCloud(blackNbrs)
}

// casePrimaryOnly handles paper Case 2.1: the deleted node v belonged to
// primary clouds only. Each damaged primary cloud is restructured, then a
// secondary cloud is built over one free node per affected group — the
// groups being the damaged primaries plus a singleton primary per black
// neighbor of v.
func (s *State) casePrimaryOnly(v graph.NodeID, primaries []ColorID, blackNbrs []graph.NodeID) {
	groups := s.fixPrimaries(v, primaries)
	groups = append(groups, s.singletonClouds(blackNbrs)...)
	s.makeSecondary(groups)
}

// caseSecondaryBridge handles paper Case 2.2: the deleted node v was a
// bridge node anchoring primary cloud link.primary inside secondary cloud
// link.secondary. All damaged primaries are restructured, the secondary is
// re-anchored with a fresh free node (or all its primaries are combined when
// none exists), and the primaries of v left uncovered by the secondary are
// joined by a new secondary cloud.
//
// Deviation (docs/ARCHITECTURE.md, "Design deviations" item 1): the new secondary group additionally
// includes the re-anchored cloud, so the uncovered primaries stay connected
// to the rest of the network even when v was their only attachment.
func (s *State) caseSecondaryBridge(v graph.NodeID, link bridgeLink, primaries []ColorID, blackNbrs []graph.NodeID) {
	groups := s.fixPrimaries(v, primaries)

	// Restructure the secondary cloud F: remove v.
	var anchorGroup *cloud // the cloud that keeps the uncovered groups attached
	f, fAlive := s.clouds[link.secondary]
	if fAlive {
		s.removeFromCloud(f, v)
		if f.size() == 0 {
			s.dropCloud(f)
			fAlive = false
		} else {
			s.reconcileCloud(f)
		}
	}
	if fAlive {
		anchorGroup = s.fixSecondary(f, link.primary)
		if _, still := s.clouds[f.id]; !still {
			// fixSecondary combined F's primaries and dissolved F; the
			// combined cloud (returned) is the attachment point.
			fAlive = false
		}
	}
	// A secondary with fewer than two members connects nothing: dissolve it
	// and let its remaining anchors join the new secondary below. Without
	// this the lone anchor could be stranded when F held its only edge.
	var extras []*cloud
	if fAlive && f.size() < 2 {
		for _, m := range f.members() {
			l, ok := s.bridgeLinks[m]
			if !ok || l.secondary != f.id {
				continue
			}
			delete(s.bridgeLinks, m)
			if p, live := s.clouds[l.primary]; live {
				extras = append(extras, p)
			}
		}
		s.dropCloud(f)
		fAlive = false
	}
	// If the deleted bridge's own primary vanished with it, the new
	// secondary must still be tied to F's side of the network: anchor it at
	// any primary cloud F connects.
	if anchorGroup == nil && fAlive {
		if anchored := s.primariesAnchoredIn(f); len(anchored) > 0 {
			anchorGroup = anchored[0]
		}
	}

	// Which of v's primaries are now covered by F (anchored via a live
	// bridge)? The rest need a new secondary.
	covered := make(map[ColorID]struct{})
	if fAlive {
		for _, m := range f.members() {
			if l, ok := s.bridgeLinks[m]; ok && l.secondary == f.id {
				covered[l.primary] = struct{}{}
			}
		}
	}
	var uncovered []*cloud
	for _, c := range groups {
		if _, ok := covered[c.id]; !ok {
			uncovered = append(uncovered, c)
		}
	}
	uncovered = append(uncovered, extras...)
	uncovered = append(uncovered, s.singletonClouds(blackNbrs)...)
	if len(uncovered) == 0 {
		return
	}
	if anchorGroup != nil {
		if _, alive := s.clouds[anchorGroup.id]; alive && !containsCloud(uncovered, anchorGroup.id) {
			uncovered = append(uncovered, anchorGroup)
		}
	}
	s.makeSecondary(uncovered)
}

// fixSecondary re-anchors secondary cloud f after its bridge for primary
// cloud anchorPrimary was deleted (paper Algorithm 3.5). It returns the
// cloud through which f remains attached — the re-anchored primary, or the
// combined cloud when no free node existed anywhere among f's primaries.
func (s *State) fixSecondary(f *cloud, anchorPrimary ColorID) *cloud {
	ci, ok := s.clouds[anchorPrimary]
	if !ok || ci.size() == 0 {
		// The anchored primary vanished with the deletion; f's remaining
		// anchors keep it consistent.
		return nil
	}
	// Try a free node from Ci itself.
	if z, ok := s.pickFreeNode(ci); ok {
		s.addToSecondary(f, z, ci.id)
		return ci
	}
	// Try sharing a free node from another primary cloud of f into Ci.
	donors := s.primariesAnchoredIn(f)
	if w, ok := s.pickShareable(donors, ci); ok {
		s.shareInto(ci, w)
		s.addToSecondary(f, w, ci.id)
		return ci
	}
	// No free nodes among all of f's primaries: combine them (paper: "all
	// primary clouds of F are combined into one new primary cloud").
	combineSet := donors
	if !containsCloud(combineSet, ci.id) {
		combineSet = append(combineSet, ci)
	}
	combined := s.combine(combineSet)
	return combined
}

// fixPrimaries removes v from each of its primary clouds and rebuilds their
// expanders incrementally (paper Algorithm 3.3). Clouds emptied by the
// removal are dropped. It returns the surviving clouds, in input order.
func (s *State) fixPrimaries(v graph.NodeID, primaries []ColorID) []*cloud {
	out := make([]*cloud, 0, len(primaries))
	for _, id := range primaries {
		c, ok := s.clouds[id]
		if !ok {
			continue
		}
		s.removeFromCloud(c, v)
		if c.size() == 0 {
			s.dropCloud(c)
			continue
		}
		s.reconcileCloud(c)
		out = append(out, c)
	}
	return out
}

// removeFromCloud detaches v from c's maintainer and membership maps without
// reconciling (callers reconcile or drop).
func (s *State) removeFromCloud(c *cloud, v graph.NodeID) {
	if !c.contains(v) {
		return
	}
	// Remove may fail only on non-membership, excluded above.
	_ = c.m.Remove(v)
	if set, ok := s.nodePrimaries[v]; ok {
		delete(set, c.id)
		if len(set) == 0 {
			delete(s.nodePrimaries, v)
		}
	}
}

// makePrimaryCloud wires a fresh primary cloud over the given nodes (paper
// Algorithm 3.2, MakeCloud with Type=primary).
func (s *State) makePrimaryCloud(nodes []graph.NodeID) *cloud {
	m, err := expander.NewMaintainer(s.kappa, nodes, s.rng)
	if err != nil {
		// Unreachable by construction: kappa was validated and callers pass
		// non-empty, duplicate-free member sets.
		panic("core: makePrimaryCloud: " + err.Error())
	}
	c := &cloud{
		id:    s.allocColor(),
		kind:  Primary,
		m:     m,
		edges: make(map[graph.Edge]struct{}),
	}
	s.clouds[c.id] = c
	for _, n := range nodes {
		set, ok := s.nodePrimaries[n]
		if !ok {
			set = make(map[ColorID]struct{}, 1)
			s.nodePrimaries[n] = set
		}
		set[c.id] = struct{}{}
	}
	s.reconcileCloud(c)
	s.stats.PrimaryClouds++
	s.traceCloudWired(len(nodes))
	return c
}

// singletonClouds wraps each black neighbor in its own one-node primary
// cloud (paper Case 2.1: "consider each of the neighbors as a singleton
// primary cloud and then proceed as above").
func (s *State) singletonClouds(blackNbrs []graph.NodeID) []*cloud {
	out := make([]*cloud, 0, len(blackNbrs))
	for _, w := range blackNbrs {
		if !s.g.HasNode(w) {
			continue
		}
		out = append(out, s.makePrimaryCloud([]graph.NodeID{w}))
	}
	return out
}

// makeSecondary builds a secondary cloud over one free node per group
// (paper Algorithm 3.4). Groups of size ≤ 1 need no connection. When the
// groups cannot each be assigned a distinct free node — even after sharing —
// they are combined into a single primary cloud instead.
func (s *State) makeSecondary(groups []*cloud) {
	groups = liveClouds(s, groups)
	if len(groups) < 2 {
		return
	}
	if s.alwaysCombine {
		s.combine(groups)
		return
	}
	assignment, ok := s.assignFreeNodes(groups)
	if !ok {
		s.combine(groups)
		return
	}
	bridges := make([]graph.NodeID, 0, len(assignment))
	for _, a := range assignment {
		if a.share {
			s.shareInto(a.cloud, a.node)
		}
		bridges = append(bridges, a.node)
	}
	m, err := expander.NewMaintainer(s.kappa, bridges, s.rng)
	if err != nil {
		panic("core: makeSecondary: " + err.Error())
	}
	f := &cloud{
		id:    s.allocColor(),
		kind:  Secondary,
		m:     m,
		edges: make(map[graph.Edge]struct{}),
	}
	s.clouds[f.id] = f
	for _, a := range assignment {
		s.bridgeLinks[a.node] = bridgeLink{primary: a.cloud.id, secondary: f.id}
	}
	s.reconcileCloud(f)
	s.stats.SecondaryClouds++
	s.traceCloudWired(len(bridges))
}

// addToSecondary inserts bridge z (anchoring primary cloud primaryID) into
// secondary cloud f and rewires it.
func (s *State) addToSecondary(f *cloud, z graph.NodeID, primaryID ColorID) {
	if err := f.m.Add(z); err != nil {
		panic("core: addToSecondary: " + err.Error())
	}
	s.bridgeLinks[z] = bridgeLink{primary: primaryID, secondary: f.id}
	s.reconcileCloud(f)
}

// shareInto adds free node w as a member of primary cloud c (the paper's
// sharing: "adding w to C and forming a new κ-regular expander among the
// remaining nodes of C (including w)"). w is flagged so it is never shared
// again (Lemma 3).
func (s *State) shareInto(c *cloud, w graph.NodeID) {
	if c.contains(w) {
		return
	}
	if err := c.m.Add(w); err != nil {
		panic("core: shareInto: " + err.Error())
	}
	set, ok := s.nodePrimaries[w]
	if !ok {
		set = make(map[ColorID]struct{}, 1)
		s.nodePrimaries[w] = set
	}
	set[c.id] = struct{}{}
	s.sharedOnce[w] = struct{}{}
	s.reconcileCloud(c)
	s.stats.Shares++
}

// combine merges the given primary clouds into one fresh primary cloud over
// the union of their members (paper Case 2.1, the amortized expensive
// operation). Secondary clouds all of whose anchors lie inside the combined
// set are dissolved, freeing their bridges; secondaries with outside anchors
// are kept and their inside anchors re-pointed at the combined cloud
// (docs/ARCHITECTURE.md, "Design deviations" item 3). Returns the new cloud.
func (s *State) combine(groups []*cloud) *cloud {
	groups = liveClouds(s, groups)
	if len(groups) == 0 {
		return nil
	}
	combinedIDs := make(map[ColorID]struct{}, len(groups))
	memberSet := make(map[graph.NodeID]struct{})
	for _, c := range groups {
		combinedIDs[c.id] = struct{}{}
		for _, n := range c.members() {
			memberSet[n] = struct{}{}
		}
	}

	// Find the secondary clouds anchored in any combined cloud.
	touching := make(map[ColorID]*cloud)
	for _, c := range groups {
		for _, n := range c.members() {
			if link, ok := s.bridgeLinks[n]; ok {
				if _, in := combinedIDs[link.primary]; in {
					if f, live := s.clouds[link.secondary]; live {
						touching[f.id] = f
					}
				}
			}
		}
	}

	// Drop the combined primaries' wiring and memberships.
	for _, c := range groups {
		for _, n := range c.members() {
			if set, ok := s.nodePrimaries[n]; ok {
				delete(set, c.id)
				if len(set) == 0 {
					delete(s.nodePrimaries, n)
				}
			}
		}
		s.dropCloud(c)
	}

	// Create the combined cloud before re-pointing so anchors can reference it.
	members := make([]graph.NodeID, 0, len(memberSet))
	for n := range memberSet {
		members = append(members, n)
	}
	slices.Sort(members)
	d := s.makePrimaryCloud(members)
	s.stats.Combines++

	// Dissolve internal secondaries; re-point anchors of external ones.
	for _, f := range touching {
		internal := true
		for _, n := range f.members() {
			link, ok := s.bridgeLinks[n]
			if !ok || link.secondary != f.id {
				continue
			}
			if _, in := combinedIDs[link.primary]; !in {
				internal = false
				break
			}
		}
		if internal {
			// Paper: "all non-free nodes associated with the previous j
			// clouds become free again in the combined cloud."
			for _, n := range f.members() {
				if link, ok := s.bridgeLinks[n]; ok && link.secondary == f.id {
					delete(s.bridgeLinks, n)
				}
			}
			s.dropCloud(f)
			continue
		}
		for _, n := range f.members() {
			link, ok := s.bridgeLinks[n]
			if !ok || link.secondary != f.id {
				continue
			}
			if _, in := combinedIDs[link.primary]; in {
				s.bridgeLinks[n] = bridgeLink{primary: d.id, secondary: f.id}
			}
		}
	}
	return d
}

// primariesAnchoredIn returns the live primary clouds anchored in secondary
// cloud f, ordered by color.
func (s *State) primariesAnchoredIn(f *cloud) []*cloud {
	seen := make(map[ColorID]struct{})
	var out []*cloud
	for _, n := range f.members() {
		link, ok := s.bridgeLinks[n]
		if !ok || link.secondary != f.id {
			continue
		}
		if _, dup := seen[link.primary]; dup {
			continue
		}
		seen[link.primary] = struct{}{}
		if c, live := s.clouds[link.primary]; live {
			out = append(out, c)
		}
	}
	slices.SortFunc(out, func(a, b *cloud) int { return cmp.Compare(a.id, b.id) })
	return out
}

// liveClouds filters groups down to clouds still present in the registry
// with at least one member, preserving order and dropping duplicates. The
// input slice is filtered in place (callers own it and never reuse the
// unfiltered view); group lists are tiny, so dedup is a linear scan.
func liveClouds(s *State, groups []*cloud) []*cloud {
	out := groups[:0]
	for _, c := range groups {
		if c == nil || containsCloud(out, c.id) {
			continue
		}
		if live, ok := s.clouds[c.id]; ok && live == c && c.size() > 0 {
			out = append(out, c)
		}
	}
	return out
}

func containsCloud(list []*cloud, id ColorID) bool {
	for _, c := range list {
		if c.id == id {
			return true
		}
	}
	return false
}
