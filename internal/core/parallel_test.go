package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// chordedCycle returns a cycle over n nodes with extra random chords — a
// connected, roughly regular playground whose deletions are mostly
// disjoint-footprint when spaced out.
func chordedCycle(n, chords int, seed int64) *graph.Graph {
	g := cycle(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < chords; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u != v {
			g.EnsureEdge(u, v)
		}
	}
	return g
}

// randomBatch assembles a ValidateBatch-clean batch against s: fresh-ID
// insertions attached to alive nodes and deletions of distinct alive nodes
// not referenced by the insertions.
func randomBatch(s *State, rng *rand.Rand, next *graph.NodeID, inserts, deletes int) Batch {
	var b Batch
	alive := append([]graph.NodeID(nil), s.AliveNodes()...)
	rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	if deletes > len(alive)-4 {
		deletes = len(alive) - 4
	}
	victims := make(map[graph.NodeID]struct{}, deletes)
	for _, v := range alive[:max(deletes, 0)] {
		b.Deletions = append(b.Deletions, v)
		victims[v] = struct{}{}
	}
	for i := 0; i < inserts; i++ {
		var nbrs []graph.NodeID
		want := 1 + rng.Intn(3)
		for _, w := range alive[max(deletes, 0):] {
			if _, gone := victims[w]; gone {
				continue
			}
			nbrs = append(nbrs, w)
			if len(nbrs) == want {
				break
			}
		}
		if len(nbrs) == 0 {
			break
		}
		b.Insertions = append(b.Insertions, BatchInsertion{Node: *next, Neighbors: nbrs})
		*next++
	}
	return b
}

// TestParallelMatchesSerial is the byte-identity property: for random batch
// schedules, ApplyBatchParallel at worker counts 2/4/8 leaves a state whose
// graph, claim table, and SnapshotState JSON are identical to serial
// ApplyBatch's after every tick. Runs under -race in CI, so it also shakes
// out data races between repair workers.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name     string
		initial  func() *graph.Graph
		deletes  int
		schedule int64
	}{
		{"disjoint-heavy", func() *graph.Graph { return chordedCycle(64, 20, 3) }, 6, 101},
		{"star-conflicts", func() *graph.Graph { return star(24) }, 4, 102},
		{"dense", func() *graph.Graph { return complete(16) }, 3, 103},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			workers := []int{2, 4, 8}
			serial := mustState(t, Config{Kappa: 4, Seed: 9}, tc.initial())
			par := make([]*State, len(workers))
			for i := range workers {
				par[i] = mustState(t, Config{Kappa: 4, Seed: 9}, tc.initial())
			}
			rng := rand.New(rand.NewSource(tc.schedule))
			next := graph.NodeID(50000)
			for tick := 0; tick < 12; tick++ {
				b := randomBatch(serial, rng, &next, 1+rng.Intn(3), 1+rng.Intn(tc.deletes))
				if err := serial.ApplyBatch(b); err != nil {
					t.Fatalf("tick %d serial: %v", tick, err)
				}
				wantSnap, err := serial.SnapshotState()
				if err != nil {
					t.Fatalf("tick %d serial snapshot: %v", tick, err)
				}
				for i, w := range workers {
					if err := par[i].ApplyBatchParallel(b, w); err != nil {
						t.Fatalf("tick %d workers=%d: %v", tick, w, err)
					}
					if err := par[i].CheckInvariants(); err != nil {
						t.Fatalf("tick %d workers=%d invariants: %v", tick, w, err)
					}
					if !par[i].Graph().Equal(serial.Graph()) {
						t.Fatalf("tick %d workers=%d: graph differs from serial", tick, w)
					}
					gotSnap, err := par[i].SnapshotState()
					if err != nil {
						t.Fatalf("tick %d workers=%d snapshot: %v", tick, w, err)
					}
					if !bytes.Equal(gotSnap, wantSnap) {
						t.Fatalf("tick %d workers=%d: SnapshotState differs from serial\nserial: %s\nparallel: %s",
							tick, w, wantSnap, gotSnap)
					}
					// The reported repair groups must partition the batch's
					// deletions, preserving batch order within each group.
					if groups := par[i].LastRepairGroups(); groups != nil {
						seen := make(map[graph.NodeID]int)
						for _, g := range groups {
							for _, v := range g {
								seen[v]++
							}
						}
						if len(seen) != len(b.Deletions) {
							t.Fatalf("tick %d workers=%d: groups cover %d deletions, want %d",
								tick, w, len(seen), len(b.Deletions))
						}
						for _, v := range b.Deletions {
							if seen[v] != 1 {
								t.Fatalf("tick %d workers=%d: deletion %d appears %d times in groups",
									tick, w, v, seen[v])
							}
						}
					}
				}
			}
		})
	}
}

// TestParallelDeletionOnlySweep hammers wide deletion-only batches on a
// large sparse graph — the disjoint-footprint fast path where fan-out
// actually spreads across groups.
func TestParallelDeletionOnlySweep(t *testing.T) {
	serial := mustState(t, Config{Kappa: 4, Seed: 5}, chordedCycle(200, 40, 11))
	parallel := mustState(t, Config{Kappa: 4, Seed: 5}, chordedCycle(200, 40, 11))
	rng := rand.New(rand.NewSource(77))
	for tick := 0; tick < 8; tick++ {
		alive := append([]graph.NodeID(nil), serial.AliveNodes()...)
		rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		b := Batch{Deletions: alive[:12]}
		if err := serial.ApplyBatch(b); err != nil {
			t.Fatalf("tick %d serial: %v", tick, err)
		}
		if err := parallel.ApplyBatchParallel(b, 4); err != nil {
			t.Fatalf("tick %d parallel: %v", tick, err)
		}
		want, err := serial.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tick %d: parallel snapshot diverged from serial", tick)
		}
		if err := parallel.CheckInvariants(); err != nil {
			t.Fatalf("tick %d invariants: %v", tick, err)
		}
	}
}

// TestParallelFallbackSerial pins the serial fallbacks: workers ≤ 1 and
// single-deletion batches bypass the planner (LastRepairGroups nil), and a
// fully conflicting batch collapses to one group healed in place.
func TestParallelFallbackSerial(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 3}, star(12))
	if err := s.ApplyBatchParallel(Batch{Deletions: []graph.NodeID{1, 2}}, 1); err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if g := s.LastRepairGroups(); len(g) != 0 {
		t.Fatalf("workers=1 recorded groups %v, want none", g)
	}
	if err := s.ApplyBatchParallel(Batch{Deletions: []graph.NodeID{3}}, 4); err != nil {
		t.Fatalf("single deletion: %v", err)
	}
	if g := s.LastRepairGroups(); len(g) != 0 {
		t.Fatalf("single deletion recorded groups %v, want none", g)
	}
	// Star spokes share the hub's footprint: one conflicting group.
	if err := s.ApplyBatchParallel(Batch{Deletions: []graph.NodeID{4, 5, 6}}, 4); err != nil {
		t.Fatalf("conflicting batch: %v", err)
	}
	groups := s.LastRepairGroups()
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("conflicting batch groups = %v, want one group of 3", groups)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestBatchPoisoning pins the fail-stop contract: a post-validation failure
// (here a panic induced by corrupting a cloud's maintainer) converts to an
// error and poisons the State — every subsequent call reports ErrPoisoned.
func TestBatchPoisoning(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, star(10))
	if err := s.DeleteNode(0); err != nil { // hub repair builds a cloud
		t.Fatalf("seed deletion: %v", err)
	}
	if len(s.clouds) == 0 {
		t.Fatal("expected a cloud after healing the hub")
	}
	for _, c := range s.clouds {
		c.m = nil // sabotage: the next repair touching this cloud panics
	}
	victim := s.AliveNodes()[0]
	err := s.ApplyBatch(Batch{Deletions: []graph.NodeID{victim}})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("ApplyBatch after sabotage = %v, want ErrPoisoned", err)
	}
	// Fail-stop: everything refuses, including snapshots and validation.
	if err := s.InsertNode(999, []graph.NodeID{s.AliveNodes()[0]}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("InsertNode on poisoned state = %v, want ErrPoisoned", err)
	}
	if err := s.DeleteNode(s.AliveNodes()[0]); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("DeleteNode on poisoned state = %v, want ErrPoisoned", err)
	}
	if err := s.ValidateBatch(Batch{}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("ValidateBatch on poisoned state = %v, want ErrPoisoned", err)
	}
	if _, err := s.SnapshotState(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("SnapshotState on poisoned state = %v, want ErrPoisoned", err)
	}
	if err := s.ApplyBatchParallel(Batch{}, 4); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("ApplyBatchParallel on poisoned state = %v, want ErrPoisoned", err)
	}
}

// TestParallelWorkerPanicPoisons pins panic containment on the fan-out
// path: a panicking repair worker must not crash the process; the batch
// fails with ErrPoisoned and the state fail-stops.
func TestParallelWorkerPanicPoisons(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 2}, chordedCycle(64, 10, 9))
	// Create clouds, then sabotage them all so any group touching one panics
	// inside its worker.
	if err := s.ApplyBatch(Batch{Deletions: []graph.NodeID{0, 20, 40}}); err != nil {
		t.Fatalf("seed batch: %v", err)
	}
	if len(s.clouds) == 0 {
		t.Fatal("expected clouds after seeding")
	}
	for _, c := range s.clouds {
		c.m = nil
	}
	var victims []graph.NodeID
	for id := range s.nodePrimaries {
		victims = append(victims, id)
		if len(victims) == 2 {
			break
		}
	}
	if len(victims) < 2 {
		t.Skip("no cloud members to target")
	}
	err := s.ApplyBatchParallel(Batch{Deletions: victims}, 4)
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("ApplyBatchParallel with sabotaged clouds = %v, want ErrPoisoned", err)
	}
	if err := s.DeleteNode(victims[0]); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("state not fail-stopped after worker panic: %v", err)
	}
}
