// Package core implements the Xheal self-healing algorithm of Pandurangan &
// Trehan (PODC 2011): a reconfigurable network under adversarial node
// insertions and deletions is healed after every deletion by wiring
// κ-regular expander "clouds" among the affected nodes, preserving
// connectivity, edge expansion, spectral gap, and O(log n) stretch while
// increasing any node's degree by at most a κ factor plus 2κ (Theorem 2).
//
// The package is the sequential (centralized-bookkeeping) reference
// implementation of Algorithm 3.1: InsertNode is the paper's trivial
// insertion case (black edges, no healing), DeleteNode dispatches the three
// repair cases — all-black wound (Case 1), primary-cloud membership
// (Case 2 restructuring), and secondary/bridge involvement (Cases 2.1 and
// 2.2, in cases.go) — against the expander substrate of internal/expander.
// Package dist drives this same repair logic through a message-passing
// protocol with round and message accounting.
//
// # Model
//
// State tracks two graphs: the healed graph G (physical edges) and the
// insertions-only graph G′ (original plus inserted nodes and edges, deleted
// nodes retained), which the paper's guarantees are stated against.
//
// Every physical edge carries a claim set: either the black claim (original
// or adversary-inserted edge) or one or more cloud colors. A cloud claiming
// a black edge absorbs it (the paper's "re-coloring"); an edge disappears
// when its last claim is released. CheckInvariants verifies the full claim
// and cloud structure plus the Theorem 2.1 degree bound, and is asserted
// after every event by the conformance engine.
//
// # Batched timesteps
//
// The paper admits one attack per timestep but notes the algorithm "can be
// extended to handle multiple insertions/deletions"; Batch/ApplyBatch are
// that extension (insertions first, then deletions healed in turn, per the
// Lemma 2 reordering argument), ValidateBatch is its admission rule
// (ErrBatchConflict), and DeleteNodeDelta exposes a repair's net edge delta
// so the distributed engine can disseminate updates without diffing whole
// graphs. The serving daemon (internal/server) coalesces concurrent client
// events into exactly these batches.
package core
