package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// testEvent is one recorded adversarial action for replay across engines.
type testEvent struct {
	del  bool
	node graph.NodeID
	nbrs []graph.NodeID
}

// genSchedule records a random insert/delete schedule by driving a scratch
// state, so the same exact event sequence can be applied to several engines.
func genSchedule(t *testing.T, cfg Config, g0 *graph.Graph, steps int, seed int64) []testEvent {
	t.Helper()
	s := mustState(t, cfg, g0)
	rng := rand.New(rand.NewSource(seed))
	next := graph.NodeID(200000)
	events := make([]testEvent, 0, steps)
	for step := 0; step < steps; step++ {
		alive := s.AliveNodes()
		var ev testEvent
		if len(alive) > 4 && rng.Float64() < 0.45 {
			ev = testEvent{del: true, node: alive[rng.Intn(len(alive))]}
			if err := s.DeleteNode(ev.node); err != nil {
				t.Fatalf("schedule step %d delete: %v", step, err)
			}
		} else {
			k := 1 + rng.Intn(3)
			if k > len(alive) {
				k = len(alive)
			}
			nbrs := make([]graph.NodeID, 0, k)
			for _, i := range rng.Perm(len(alive))[:k] {
				nbrs = append(nbrs, alive[i])
			}
			ev = testEvent{node: next, nbrs: nbrs}
			next++
			if err := s.InsertNode(ev.node, ev.nbrs); err != nil {
				t.Fatalf("schedule step %d insert: %v", step, err)
			}
		}
		events = append(events, ev)
	}
	return events
}

func applyEvent(t *testing.T, s *State, ev testEvent) {
	t.Helper()
	var err error
	if ev.del {
		err = s.DeleteNode(ev.node)
	} else {
		err = s.InsertNode(ev.node, ev.nbrs)
	}
	if err != nil {
		t.Fatalf("apply %+v: %v", ev, err)
	}
}

// TestSnapshotRestoreIdentity is the sequential engine's recovery-identity
// property: for every crash point k, running k events, snapshotting through
// JSON, restoring, and running the tail must be indistinguishable from the
// uncrashed run — asserted in the strongest form available, byte-identical
// final snapshots (which cover the graphs, every cloud wiring, membership
// maps, counters, and the rng stream position).
func TestSnapshotRestoreIdentity(t *testing.T) {
	cfg := Config{Kappa: 4, Seed: 33}
	g0 := cycle(14)
	const steps = 60
	events := genSchedule(t, cfg, g0, steps, 91)

	genesis := mustState(t, cfg, g0)
	for _, ev := range events {
		applyEvent(t, genesis, ev)
	}
	want, err := genesis.SnapshotState()
	if err != nil {
		t.Fatalf("genesis snapshot: %v", err)
	}

	for k := 0; k <= steps; k += 7 {
		s := mustState(t, cfg, g0)
		for _, ev := range events[:k] {
			applyEvent(t, s, ev)
		}
		data, err := s.SnapshotState()
		if err != nil {
			t.Fatalf("crash point %d: snapshot: %v", k, err)
		}
		snap, err := LoadSnapshot(data)
		if err != nil {
			t.Fatalf("crash point %d: load: %v", k, err)
		}
		restored, err := RestoreState(snap)
		if err != nil {
			t.Fatalf("crash point %d: restore: %v", k, err)
		}
		// The restored state must re-serialize byte-identically right away...
		again, err := restored.SnapshotState()
		if err != nil {
			t.Fatalf("crash point %d: re-snapshot: %v", k, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("crash point %d: restored snapshot differs from original", k)
		}
		// ...and behave bit-identically through the rest of the schedule.
		for _, ev := range events[k:] {
			applyEvent(t, restored, ev)
		}
		if err := restored.CheckInvariants(); err != nil {
			t.Fatalf("crash point %d: invariants after tail: %v", k, err)
		}
		got, err := restored.SnapshotState()
		if err != nil {
			t.Fatalf("crash point %d: final snapshot: %v", k, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("crash point %d: final state diverged from uncrashed run", k)
		}
		if !restored.Graph().Equal(genesis.Graph()) {
			t.Fatalf("crash point %d: healed graphs differ", k)
		}
	}
}

// TestRestoreRejectsCorruptSnapshot spot-checks that restore validates.
func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 5}, cycle(12))
	for _, ev := range genSchedule(t, Config{Kappa: 4, Seed: 5}, cycle(12), 20, 7) {
		applyEvent(t, s, ev)
	}
	base := s.Snapshot()

	corrupt := *base
	corrupt.Version = 99
	if _, err := RestoreState(&corrupt); err == nil {
		t.Fatal("bad version accepted")
	}

	corrupt = *base
	corrupt.Kappa = 3
	if _, err := RestoreState(&corrupt); err == nil {
		t.Fatal("odd kappa accepted")
	}

	if len(base.Clouds) > 0 {
		corrupt = *base
		corrupt.Clouds = base.Clouds[:len(base.Clouds)-1]
		if _, err := RestoreState(&corrupt); err == nil {
			t.Fatal("dropped cloud accepted (claims now dangle)")
		}
	}

	if _, err := LoadSnapshot([]byte(`{"version":`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

// TestCountedSourceMatchesDefault pins the stream-identity contract: a
// counted source must produce exactly math/rand's default sequence, and
// Skip(n) must land on the same position as n live draws.
func TestCountedSourceMatchesDefault(t *testing.T) {
	want := rand.New(rand.NewSource(42))
	src := NewCountedSource(42)
	got := rand.New(src)
	for i := 0; i < 1000; i++ {
		if w, g := want.Int63(), got.Int63(); w != g {
			t.Fatalf("draw %d: %d != %d", i, g, w)
		}
	}
	if src.Draws() != 1000 {
		t.Fatalf("draws=%d want 1000", src.Draws())
	}
	skipped := NewCountedSource(42)
	skipped.Skip(1000)
	if skipped.Draws() != 1000 {
		t.Fatalf("skipped draws=%d want 1000", skipped.Draws())
	}
	a, b := rand.New(src), rand.New(skipped)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("post-skip draw %d: %d != %d", i, x, y)
		}
	}
}
