package core

import (
	"slices"

	"github.com/xheal/xheal/internal/graph"
)

// Conflict detection for parallel batched repair.
//
// Theorem 5's locality argument is what makes this sound: a repair of
// deletion v only ever touches v's wound (v and its neighbors), the clouds
// those nodes participate in, and — through the combine fallback — the
// secondary clouds reachable from those clouds' members. The footprint
// computed here is the transitive closure of that reach, taken against the
// pre-batch state:
//
//	S0      = {v} ∪ N(v)
//	cloudsA = primaries(v) ∪ {secondary(v)} ∪ primariesAnchoredIn(secondary(v))
//	N1      = S0 ∪ members(cloudsA)
//	cloudsB = {secondary(n) : n ∈ N1}      (combine can re-point their bridges)
//	N2      = members(cloudsB)
//	footprint(v) = (N1 ∪ N2, cloudsA ∪ cloudsB)
//
// Every node, claim, and cloud the repair of v reads or writes lies inside
// footprint(v), and the set is closed under the repairs of any other
// deletions with overlapping footprints (they are forced into the same
// group). Two deletions whose footprint node sets are disjoint therefore
// commute: every edge either repair touches has both endpoints inside its
// own footprint, and a cloud shared by two footprints would put its member
// nodes in both. Grouping by node overlap alone is thus sufficient; the
// cloud sets ride along to scope the state extraction.

// repairGroup is one maximal set of batch deletions with transitively
// overlapping footprints, plus the state scope their repairs may touch.
type repairGroup struct {
	deletions []graph.NodeID // in batch order
	nodes     []graph.NodeID // sorted union of member footprints
	nodeSet   map[graph.NodeID]struct{}
	clouds    map[ColorID]struct{}
	// edges is the subgraph induced on nodes at plan time — the complete
	// edge universe the group's repairs can see or mutate.
	edges []graph.Edge
}

// footprint computes deletion v's claimed footprint against the current
// state (see the package comment above for the closure rule).
func (s *State) footprint(v graph.NodeID) (map[graph.NodeID]struct{}, map[ColorID]struct{}) {
	nodes := map[graph.NodeID]struct{}{v: {}}
	for _, w := range s.g.Neighbors(v) {
		nodes[w] = struct{}{}
	}
	clouds := make(map[ColorID]struct{})
	for id := range s.nodePrimaries[v] {
		clouds[id] = struct{}{}
	}
	if link, ok := s.bridgeLinks[v]; ok {
		clouds[link.secondary] = struct{}{}
		// The repair may dissolve or re-anchor every primary anchored in
		// v's secondary (caseSecondaryBridge / fixSecondary).
		if f, live := s.clouds[link.secondary]; live {
			for _, n := range f.members() {
				if ln, ok := s.bridgeLinks[n]; ok && ln.secondary == f.id {
					clouds[ln.primary] = struct{}{}
				}
			}
		}
	}
	// N1: close over the members of the directly affected clouds.
	for id := range clouds {
		if c, live := s.clouds[id]; live {
			for _, n := range c.members() {
				nodes[n] = struct{}{}
			}
		}
	}
	// cloudsB/N2: combine can re-point the bridge of any N1 node, touching
	// the secondary it anchors and (on dissolution) that secondary's members.
	second := make(map[ColorID]struct{})
	for n := range nodes {
		if ln, ok := s.bridgeLinks[n]; ok {
			if _, have := clouds[ln.secondary]; !have {
				second[ln.secondary] = struct{}{}
			}
		}
	}
	for id := range second {
		clouds[id] = struct{}{}
		if c, live := s.clouds[id]; live {
			for _, n := range c.members() {
				nodes[n] = struct{}{}
			}
		}
	}
	return nodes, clouds
}

// planRepairGroups partitions the batch's deletions into repair groups by
// union-find over footprint-node overlap, then scopes each group: sorted
// node union, cloud union, and the induced edge list. Runs entirely on the
// coordinating goroutine (graph reads fill lazy caches, so they must not be
// concurrent with anything).
func (s *State) planRepairGroups(deletions []graph.NodeID) []*repairGroup {
	k := len(deletions)
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb { // keep the earliest batch index as root
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	fpNodes := make([]map[graph.NodeID]struct{}, k)
	fpClouds := make([]map[ColorID]struct{}, k)
	nodeOwner := make(map[graph.NodeID]int)
	for i, v := range deletions {
		fpNodes[i], fpClouds[i] = s.footprint(v)
		for n := range fpNodes[i] {
			if j, ok := nodeOwner[n]; ok {
				union(i, j)
			} else {
				nodeOwner[n] = i
			}
		}
	}

	byRoot := make(map[int]*repairGroup)
	var groups []*repairGroup
	for i, v := range deletions {
		r := find(i)
		g, ok := byRoot[r]
		if !ok {
			g = &repairGroup{
				nodeSet: make(map[graph.NodeID]struct{}),
				clouds:  make(map[ColorID]struct{}),
			}
			byRoot[r] = g
			groups = append(groups, g) // batch order of first members
		}
		g.deletions = append(g.deletions, v)
		for n := range fpNodes[i] {
			g.nodeSet[n] = struct{}{}
		}
		for id := range fpClouds[i] {
			g.clouds[id] = struct{}{}
		}
	}

	for _, g := range groups {
		g.nodes = make([]graph.NodeID, 0, len(g.nodeSet))
		for n := range g.nodeSet {
			g.nodes = append(g.nodes, n)
		}
		slices.Sort(g.nodes)
		for _, n := range g.nodes {
			for _, w := range s.g.Neighbors(n) {
				if w <= n {
					continue
				}
				if _, in := g.nodeSet[w]; in {
					g.edges = append(g.edges, graph.NewEdge(n, w))
				}
			}
		}
	}
	return groups
}
