package core

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// healRepairAllocBudget is the steady-state allocation cost of one churn
// step (one healed deletion plus one insertion) measured with observability
// disabled, pinned at the PR 5 baseline. Observability must be pay-for-use:
// with no recorder attached, the repair hot path may not allocate more than
// it did before internal/obs existed.
const healRepairAllocBudget = 88

// TestHealRepairAllocsDisabledObservability guards the no-op fast path of
// the observability layer: a State with no recorder attached must heal at
// the pre-obs allocation budget.
func TestHealRepairAllocsDisabledObservability(t *testing.T) {
	g0, err := workload.RandomRegular(256, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(Config{Kappa: 4, Seed: 2}, g0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	alive := append([]graph.NodeID(nil), st.Graph().Nodes()...)
	next := graph.NodeID(1 << 20)
	// Warm the state so slab/map growth is amortized out of the measurement.
	for i := 0; i < 200; i++ {
		alive = churnStep(t, st, rng, alive, &next)
	}
	avg := testing.AllocsPerRun(300, func() {
		alive = churnStep(t, st, rng, alive, &next)
	})
	t.Logf("heal repair churn: %.1f allocs/op (budget %d)", avg, healRepairAllocBudget)
	if avg > healRepairAllocBudget {
		t.Fatalf("heal repair with observability disabled allocates %.1f/op, budget is %d (PR 5 baseline)",
			avg, healRepairAllocBudget)
	}
}

// churnStep deletes a random alive node and inserts a fresh one, returning
// the updated alive set.
func churnStep(t *testing.T, st *State, rng *rand.Rand, alive []graph.NodeID, next *graph.NodeID) []graph.NodeID {
	i := rng.Intn(len(alive))
	victim := alive[i]
	alive[i] = alive[len(alive)-1]
	alive = alive[:len(alive)-1]
	if err := st.DeleteNode(victim); err != nil {
		t.Fatal(err)
	}
	u, v := alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]
	nbrs := []graph.NodeID{u, v}
	if u == v {
		nbrs = nbrs[:1]
	}
	if err := st.InsertNode(*next, nbrs); err != nil {
		t.Fatal(err)
	}
	alive = append(alive, *next)
	*next++
	return alive
}
