package core

import (
	"strings"
	"testing"
)

func TestWriteDOTColorsByCloud(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, star(8))
	mustDelete(t, s, 0) // creates a primary cloud
	var b strings.Builder
	if err := s.WriteDOT(&b); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "graph xheal {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT graph:\n%s", out)
	}
	// Primary cloud edges must be a red shade, not black.
	if !strings.Contains(out, `color="red`) && !strings.Contains(out, `color="firebrick"`) &&
		!strings.Contains(out, `color="crimson"`) && !strings.Contains(out, `color="indianred"`) {
		t.Fatalf("no primary (red) edges rendered:\n%s", out)
	}
}

func TestWriteDOTBlackEdges(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, cycle(5))
	var b strings.Builder
	if err := s.WriteDOT(&b); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(b.String(), `color="black"`) {
		t.Fatal("initial edges should render black")
	}
}

func TestWriteDOTBridgesAsBoxes(t *testing.T) {
	// Force a secondary cloud: delete the star center, then a cloud member.
	s := mustState(t, Config{Kappa: 2, Seed: 5}, star(10))
	mustDelete(t, s, 0)
	mustDelete(t, s, 1)
	var b strings.Builder
	if err := s.WriteDOT(&b); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	hasBridge := false
	for _, n := range s.AliveNodes() {
		if _, ok := s.SecondaryOf(n); ok {
			hasBridge = true
		}
	}
	if hasBridge && !strings.Contains(b.String(), "shape=box") {
		t.Fatal("bridge nodes should render as boxes")
	}
}

func TestWriteDOTGraph(t *testing.T) {
	g := cycle(4)
	var b strings.Builder
	if err := WriteDOTGraph(&b, g, "test"); err != nil {
		t.Fatalf("WriteDOTGraph: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "graph test {") || !strings.Contains(out, "0 -- 1;") {
		t.Fatalf("unexpected DOT:\n%s", out)
	}
}
