package core

import (
	"fmt"
	"io"

	"github.com/xheal/xheal/internal/graph"
)

// WriteDOT renders the healed graph in Graphviz DOT form using the paper's
// §3 color convention: original/inserted edges black, primary-cloud edges
// shades of red, secondary-cloud edges shades of orange. Bridge nodes are
// drawn as boxes. Deterministic output (sorted nodes and edges).
func (s *State) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph xheal {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  layout=neato; overlap=false;"); err != nil {
		return err
	}
	for _, n := range s.g.Nodes() {
		shape := "circle"
		if _, bridge := s.bridgeLinks[n]; bridge {
			shape = "box"
		}
		if _, err := fmt.Fprintf(w, "  %d [shape=%s];\n", n, shape); err != nil {
			return err
		}
	}
	for _, e := range s.g.Edges() {
		color := "black"
		penwidth := 1.0
		if cl, ok := s.claims[e]; ok && !cl.black {
			// Use the smallest claiming color for determinism.
			var first ColorID
			chosen := false
			for _, c := range cl.colors {
				if !chosen || c < first {
					first = c
					chosen = true
				}
			}
			if c, live := s.clouds[first]; live {
				color = edgeShade(c.kind, first)
				if c.kind == Secondary {
					penwidth = 2.0
				}
			}
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d [color=%q, penwidth=%.1f];\n",
			e.U, e.V, color, penwidth); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// edgeShade maps a cloud to a deterministic shade: primaries cycle through
// red shades, secondaries through orange shades (the paper's convention).
func edgeShade(kind CloudKind, id ColorID) string {
	reds := []string{"red", "red3", "firebrick", "crimson", "indianred"}
	oranges := []string{"orange", "darkorange", "orange3", "chocolate", "coral"}
	switch kind {
	case Primary:
		return reds[int(id)%len(reds)]
	case Secondary:
		return oranges[int(id)%len(oranges)]
	}
	return "gray"
}

// WriteDOTGraph renders a bare graph (no color metadata) in DOT form; used
// for baselines and G′.
func WriteDOTGraph(w io.Writer, g *graph.Graph, name string) error {
	if _, err := fmt.Fprintf(w, "graph %s {\n  layout=neato; overlap=false;\n", name); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if _, err := fmt.Fprintf(w, "  %d;\n", n); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
