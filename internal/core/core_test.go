package core

import (
	"errors"
	"testing"

	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/graph"
)

func star(n int) *graph.Graph {
	g := graph.New()
	g.EnsureNode(0)
	for i := 1; i <= n; i++ {
		g.EnsureEdge(0, graph.NodeID(i))
	}
	return g
}

func cycle(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return g
}

func mustState(t *testing.T, cfg Config, g0 *graph.Graph) *State {
	t.Helper()
	s, err := NewState(cfg, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	return s
}

func mustDelete(t *testing.T, s *State, v graph.NodeID) {
	t.Helper()
	if err := s.DeleteNode(v); err != nil {
		t.Fatalf("DeleteNode(%d): %v", v, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after deleting %d: %v", v, err)
	}
}

func mustInsert(t *testing.T, s *State, u graph.NodeID, nbrs ...graph.NodeID) {
	t.Helper()
	if err := s.InsertNode(u, nbrs); err != nil {
		t.Fatalf("InsertNode(%d, %v): %v", u, nbrs, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after inserting %d: %v", u, err)
	}
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(Config{}, nil); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("nil graph error = %v, want ErrNilGraph", err)
	}
	if _, err := NewState(Config{Kappa: 3}, cycle(4)); !errors.Is(err, ErrBadKappa) {
		t.Fatalf("odd kappa error = %v, want ErrBadKappa", err)
	}
	if _, err := NewState(Config{Kappa: -2}, cycle(4)); !errors.Is(err, ErrBadKappa) {
		t.Fatalf("negative kappa error = %v, want ErrBadKappa", err)
	}
	s := mustState(t, Config{}, cycle(4))
	if s.Kappa() != DefaultKappa {
		t.Fatalf("default kappa = %d, want %d", s.Kappa(), DefaultKappa)
	}
}

func TestInitialEdgesAreBlack(t *testing.T) {
	s := mustState(t, Config{Kappa: 4}, cycle(5))
	colors, ok := s.EdgeColors(0, 1)
	if !ok {
		t.Fatal("edge (0,1) missing")
	}
	if len(colors) != 0 {
		t.Fatalf("colors = %v, want black (empty)", colors)
	}
	if _, ok := s.EdgeColors(0, 2); ok {
		t.Fatal("non-edge reported as present")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("initial invariants: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	s := mustState(t, Config{Kappa: 4}, cycle(4))
	if err := s.InsertNode(0, nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("existing insert error = %v", err)
	}
	if err := s.InsertNode(10, []graph.NodeID{10}); !errors.Is(err, ErrSelfInsert) {
		t.Fatalf("self insert error = %v", err)
	}
	if err := s.InsertNode(10, []graph.NodeID{99}); !errors.Is(err, ErrBadNeighbor) {
		t.Fatalf("bad neighbor error = %v", err)
	}
	if err := s.InsertNode(10, []graph.NodeID{1, 1}); !errors.Is(err, ErrBadNeighbor) {
		t.Fatalf("dup neighbor error = %v", err)
	}
	mustInsert(t, s, 10, 1, 2)
	mustDelete(t, s, 10)
	if err := s.InsertNode(10, []graph.NodeID{1}); !errors.Is(err, ErrReusedNodeID) {
		t.Fatalf("reused id error = %v", err)
	}
}

func TestInsertAddsBlackEdgesToBothGraphs(t *testing.T) {
	s := mustState(t, Config{Kappa: 4}, cycle(4))
	mustInsert(t, s, 10, 0, 2)
	if !s.Graph().HasEdge(10, 0) || !s.Graph().HasEdge(10, 2) {
		t.Fatal("inserted edges missing from G")
	}
	if !s.Baseline().HasEdge(10, 0) || !s.Baseline().HasEdge(10, 2) {
		t.Fatal("inserted edges missing from G'")
	}
	colors, _ := s.EdgeColors(10, 0)
	if len(colors) != 0 {
		t.Fatalf("inserted edge colors = %v, want black", colors)
	}
	if s.Stats().Insertions != 1 {
		t.Fatalf("Insertions = %d, want 1", s.Stats().Insertions)
	}
}

func TestDeleteValidation(t *testing.T) {
	s := mustState(t, Config{Kappa: 4}, cycle(4))
	if err := s.DeleteNode(99); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("missing delete error = %v", err)
	}
	mustDelete(t, s, 2)
	if err := s.DeleteNode(2); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("double delete error = %v", err)
	}
}

// Case 1: the paper's motivating star example. Deleting the center of a
// star must leave an expander (clique or H-graph) among the leaves: the
// healed graph has constant expansion, not the O(1/n) a tree repair gives.
func TestCase1StarCenterDeletion(t *testing.T) {
	leaves := 12
	s := mustState(t, Config{Kappa: 4, Seed: 1}, star(leaves))
	mustDelete(t, s, 0)

	g := s.Graph()
	if g.NumNodes() != leaves {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), leaves)
	}
	if !g.IsConnected() {
		t.Fatal("healed graph disconnected")
	}
	if g.MaxDegree() > s.Kappa() {
		t.Fatalf("max degree %d exceeds kappa %d", g.MaxDegree(), s.Kappa())
	}
	h, err := cuts.EdgeExpansion(g)
	if err != nil {
		t.Fatalf("EdgeExpansion: %v", err)
	}
	if h < 0.5 {
		t.Fatalf("healed star expansion = %v, want >= 0.5 (constant)", h)
	}
	// A single primary cloud should exist, colored uniquely.
	ids := s.Clouds()
	if len(ids) != 1 {
		t.Fatalf("clouds = %v, want exactly 1", ids)
	}
	members, kind, ok := s.CloudMembers(ids[0])
	if !ok || kind != Primary {
		t.Fatalf("cloud kind = %v ok=%v, want primary", kind, ok)
	}
	if len(members) != leaves {
		t.Fatalf("cloud members = %d, want %d", len(members), leaves)
	}
}

// Case 1 with fewer neighbors than κ builds a clique.
func TestCase1SmallGroupClique(t *testing.T) {
	s := mustState(t, Config{Kappa: 6, Seed: 1}, star(3))
	mustDelete(t, s, 0)
	g := s.Graph()
	// 3 leaves -> triangle.
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3 (triangle)", g.NumEdges())
	}
	for _, n := range g.Nodes() {
		if g.Degree(n) != 2 {
			t.Fatalf("degree of %d = %d, want 2", n, g.Degree(n))
		}
	}
}

func TestCase1DegreeOneNodeDropped(t *testing.T) {
	// Deleting a leaf of a path: its single neighbor needs no new edges.
	g := graph.New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(1, 2)
	s := mustState(t, Config{Kappa: 4}, g)
	mustDelete(t, s, 0)
	if s.Graph().NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", s.Graph().NumEdges())
	}
	if len(s.Clouds()) != 0 {
		t.Fatal("no cloud should be created for a degree-1 deletion")
	}
}

// Case 2.1: delete the star center (creates a primary cloud), then delete a
// member of that cloud. The cloud must be restructured and a secondary
// created over the groups when more than one group is affected.
func TestCase21PrimaryRestructure(t *testing.T) {
	leaves := 10
	s := mustState(t, Config{Kappa: 4, Seed: 3}, star(leaves))
	mustDelete(t, s, 0)
	// Node 1 is now a member of the primary cloud with only colored edges.
	mustDelete(t, s, 1)
	g := s.Graph()
	if !g.IsConnected() {
		t.Fatal("healed graph disconnected after case 2.1")
	}
	if g.NumNodes() != leaves-1 {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), leaves-1)
	}
	// The primary cloud lost a member but persists.
	foundPrimary := false
	for _, id := range s.Clouds() {
		if _, kind, _ := s.CloudMembers(id); kind == Primary {
			foundPrimary = true
		}
	}
	if !foundPrimary {
		t.Fatal("primary cloud vanished")
	}
}

// Case 2.1 with black neighbors: a node that is both in a primary cloud and
// has black edges. Its black neighbors become singleton groups joined by the
// secondary cloud.
func TestCase21WithBlackNeighbors(t *testing.T) {
	// Star + an extra black edge from leaf 1 to an outside chain.
	g := star(6)
	g.EnsureEdge(1, 100)
	g.EnsureEdge(100, 101)
	s := mustState(t, Config{Kappa: 4, Seed: 5}, g)
	mustDelete(t, s, 0) // leaves 1..6 in a primary cloud
	// Node 1 has colored edges (cloud) and a black edge to 100.
	mustDelete(t, s, 1)
	if !s.Graph().IsConnected() {
		t.Fatal("graph disconnected: black neighbor was not reattached")
	}
	// 100 must have gained a connection (it was a singleton group bridged
	// into the secondary) or be connected through its chain.
	if s.Graph().Degree(100) < 1 {
		t.Fatal("black neighbor lost all edges")
	}
}

// Case 2.2: delete a bridge node (member of a secondary cloud).
func TestCase22BridgeDeletion(t *testing.T) {
	// Two stars sharing no nodes, connected by a path through node 50.
	g := star(6) // center 0, leaves 1..6
	for i := 11; i <= 16; i++ {
		g.EnsureEdge(10, graph.NodeID(i)) // second star: center 10, leaves 11..16
	}
	g.EnsureEdge(3, 50)
	g.EnsureEdge(50, 13)
	s := mustState(t, Config{Kappa: 4, Seed: 7}, g)

	// Delete both centers: two primary clouds appear.
	mustDelete(t, s, 0)
	mustDelete(t, s, 10)
	// Delete 50: its edges are black; 3 and 13 become singleton groups tied
	// by a secondary cloud... unless 50's edges were absorbed. Then delete a
	// node that has a secondary duty to exercise case 2.2.
	mustDelete(t, s, 50)
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected after deleting connector")
	}

	// Find a bridge node and delete it.
	var bridge graph.NodeID
	found := false
	for _, n := range s.AliveNodes() {
		if _, ok := s.SecondaryOf(n); ok {
			bridge = n
			found = true
			break
		}
	}
	if !found {
		t.Skip("no bridge node materialized in this configuration")
	}
	mustDelete(t, s, bridge)
	if !s.Graph().IsConnected() {
		t.Fatal("disconnected after bridge deletion (case 2.2)")
	}
}

// Connectivity must survive deleting every node of the original star one by
// one (the algorithm's central promise).
func TestConnectivityUnderSequentialDeletion(t *testing.T) {
	n := 20
	s := mustState(t, Config{Kappa: 4, Seed: 11}, star(n))
	for v := graph.NodeID(0); v < graph.NodeID(n-2); v++ {
		mustDelete(t, s, v)
		if !s.Graph().IsConnected() {
			t.Fatalf("disconnected after deleting %d", v)
		}
	}
}

func TestDegreeBoundReported(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, star(8))
	if got, want := s.DegreeBound(0), 4*8+8; got != want {
		t.Fatalf("DegreeBound(center) = %d, want %d", got, want)
	}
	mustDelete(t, s, 0)
	for _, n := range s.AliveNodes() {
		if s.Graph().Degree(n) > s.DegreeBound(n) {
			t.Fatalf("degree bound violated at %d", n)
		}
	}
}

func TestCombineWhenNoFreeNodes(t *testing.T) {
	// Engineer a shortage of free nodes: tiny clouds whose members all take
	// secondary duties, then delete to force combining. We verify the
	// algorithm stays consistent and connected rather than the exact path.
	g := graph.New()
	// A 3-star chain: centers 0,10,20 each with 2 leaves, chained by bridges.
	g.EnsureEdge(0, 1)
	g.EnsureEdge(0, 2)
	g.EnsureEdge(10, 11)
	g.EnsureEdge(10, 12)
	g.EnsureEdge(20, 21)
	g.EnsureEdge(20, 22)
	g.EnsureEdge(2, 10)
	g.EnsureEdge(12, 20)
	s := mustState(t, Config{Kappa: 2, Seed: 13}, g)
	for _, v := range []graph.NodeID{0, 10, 20, 2, 12} {
		mustDelete(t, s, v)
		if !s.Graph().IsConnected() {
			t.Fatalf("disconnected after deleting %d", v)
		}
	}
}

func TestStatsProgression(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, star(10))
	mustDelete(t, s, 0)
	st := s.Stats()
	if st.Deletions != 1 || st.PrimaryClouds != 1 {
		t.Fatalf("stats = %+v, want 1 deletion and 1 primary cloud", st)
	}
	if st.HealEdgesAdded == 0 {
		t.Fatal("healing should have added edges")
	}
}

func TestBaselineUnaffectedByDeletions(t *testing.T) {
	s := mustState(t, Config{Kappa: 4, Seed: 1}, complete(6))
	before := s.Baseline().Clone()
	mustDelete(t, s, 3)
	mustDelete(t, s, 4)
	if !s.Baseline().Equal(before) {
		t.Fatal("G' changed on deletion")
	}
	mustInsert(t, s, 100, 0, 1)
	if s.Baseline().Equal(before) {
		t.Fatal("G' did not change on insertion")
	}
	if !s.Baseline().HasNode(3) {
		t.Fatal("G' lost a deleted node")
	}
}

func TestRecoloringAbsorbsBlackEdge(t *testing.T) {
	// Two leaves of the star that are also directly connected by a black
	// edge: the new cloud may claim that edge, recoloring it.
	g := star(5)
	g.EnsureEdge(1, 2)
	s := mustState(t, Config{Kappa: 6, Seed: 2}, g)
	mustDelete(t, s, 0)
	// Clique over 5 leaves (kappa+1=7 >= 5): edge (1,2) must now be colored.
	colors, ok := s.EdgeColors(1, 2)
	if !ok {
		t.Fatal("edge (1,2) vanished")
	}
	if len(colors) == 0 {
		t.Fatal("edge (1,2) still black; expected recoloring by the cloud")
	}
}

func TestGraphAccessors(t *testing.T) {
	s := mustState(t, Config{Kappa: 4}, cycle(5))
	clone := s.CloneGraph()
	if _, err := clone.RemoveNode(0); err != nil {
		t.Fatalf("clone mutation: %v", err)
	}
	if !s.Graph().HasNode(0) {
		t.Fatal("CloneGraph is not independent")
	}
	if !s.Alive(1) || s.Alive(99) {
		t.Fatal("Alive misreports")
	}
	if len(s.AliveNodes()) != 5 {
		t.Fatalf("AliveNodes = %v", s.AliveNodes())
	}
}
