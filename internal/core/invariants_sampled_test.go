package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// churntState builds a state that has seen enough healing to populate every
// invariant category: clouds, colored claims, bridge links, deleted nodes.
func churntState(t *testing.T) *State {
	t.Helper()
	g0, err := workload.RandomRegular(60, 2, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewState(Config{Kappa: 4, Seed: 9}, g0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	next := graph.NodeID(500)
	for i := 0; i < 40; i++ {
		alive := s.Graph().Nodes()
		if rng.Float64() < 0.6 {
			if err := s.DeleteNode(alive[rng.Intn(len(alive))]); err != nil {
				t.Fatal(err)
			}
		} else {
			nbr := alive[rng.Intn(len(alive))]
			if err := s.InsertNode(next, []graph.NodeID{nbr}); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	if len(s.clouds) == 0 || len(s.deleted) == 0 {
		t.Fatalf("scenario too tame: %d clouds, %d deleted", len(s.clouds), len(s.deleted))
	}
	return s
}

// rotationCalls returns how many sampled calls guarantee a full rotation over
// every category at the given budget.
func rotationCalls(s *State, budget int) int {
	max := s.Graph().NumEdges()
	if n := s.Graph().NumNodes(); n > max {
		max = n
	}
	if n := len(s.clouds); n > max {
		max = n
	}
	if n := s.Baseline().NumNodes(); n > max {
		max = n
	}
	return (max+budget-1)/budget + 1
}

// TestSampledInvariantsCleanAgreement: on a valid state, the sampled checker
// agrees with the full sweep (both nil) across an entire rotation, at several
// budgets including one larger than every category.
func TestSampledInvariantsCleanAgreement(t *testing.T) {
	s := churntState(t)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("full sweep on clean state: %v", err)
	}
	for _, budget := range []int{1, 7, 100000} {
		s.inv = invCursors{}
		for i := 0; i < rotationCalls(s, budget); i++ {
			if err := s.CheckInvariantsSampled(budget); err != nil {
				t.Fatalf("budget %d, call %d: sampled check on clean state: %v", budget, i, err)
			}
		}
	}
	// budget ≤ 0 must be exactly the full sweep.
	if err := s.CheckInvariantsSampled(0); err != nil {
		t.Fatalf("budget 0 fallback: %v", err)
	}
}

// TestSampledInvariantsDetectCorruption corrupts one category at a time and
// requires (a) the full sweep rejects the state and (b) the sampled checker
// rejects it within one full rotation, for each category's corruption.
func TestSampledInvariantsDetectCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, s *State)
	}{
		{"empty-claim", func(t *testing.T, s *State) {
			// Edge category: an existing physical edge's claim is emptied
			// (claim count stays equal to edge count, so the O(1) global
			// check cannot catch it — only the edge rotation can).
			e := s.Graph().Edges()[3]
			s.claims[e] = edgeClaim{}
		}},
		{"cloud-missing-claim", func(t *testing.T, s *State) {
			// Cloud category: a cloud drops one of its claimed edges.
			for _, c := range s.clouds {
				for e := range c.edges {
					delete(c.edges, e)
					return
				}
			}
			t.Fatal("no cloud edge to corrupt")
		}},
		{"dead-bridge-target", func(t *testing.T, s *State) {
			// Node category: an alive node gains a bridge link into a cloud
			// that does not exist.
			for _, n := range s.Graph().Nodes() {
				if _, has := s.bridgeLinks[n]; !has {
					s.bridgeLinks[n] = bridgeLink{secondary: 1 << 30, primary: 1 << 30}
					return
				}
			}
			t.Fatal("no unbridged node to corrupt")
		}},
		{"deleted-node-membership", func(t *testing.T, s *State) {
			// Baseline category: a deleted node retains a membership entry.
			for n := range s.deleted {
				s.nodePrimaries[n] = map[ColorID]struct{}{}
				return
			}
			t.Fatal("no deleted node to corrupt")
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := churntState(t)
			tc.corrupt(t, s)
			full := s.CheckInvariants()
			if !errors.Is(full, ErrInvariant) {
				t.Fatalf("full sweep missed the corruption: %v", full)
			}
			const budget = 5
			s.inv = invCursors{}
			var sampled error
			calls := rotationCalls(s, budget)
			for i := 0; i < calls; i++ {
				if sampled = s.CheckInvariantsSampled(budget); sampled != nil {
					break
				}
			}
			if !errors.Is(sampled, ErrInvariant) {
				t.Fatalf("sampled checker missed the corruption after %d calls at budget %d: %v",
					calls, budget, sampled)
			}
		})
	}
}
