package core

import "github.com/xheal/xheal/internal/graph"

// Sampled invariant checking: CheckInvariants is O(n + m + clouds) per call,
// which a serving daemon cannot afford inside its apply loop at 10⁵–10⁶
// nodes. CheckInvariantsSampled checks a budgeted window of each category —
// physical edges, alive nodes, clouds, baseline nodes — per call, advancing
// a rotating cursor so consecutive calls amortize a full sweep. Every call
// additionally runs the O(1) global checks (claim/edge count agreement), so
// a gross divergence is caught immediately and any pointwise violation is
// caught within ⌈category size / budget⌉ calls.

// invCursors holds the rotating sample positions. The cursors index the
// sorted cached views (g.Nodes(), g.Edges(), Clouds(), gp.Nodes()), so a
// full rotation visits every item even as the sets churn; they are
// bookkeeping only and take no part in Snapshot identity.
type invCursors struct {
	node, edge, cloud, base int
}

// CheckInvariantsSampled verifies a budgeted sample of the state's
// invariants: up to budget items of each category (physical edges, alive
// nodes, clouds, baseline nodes) starting at a rotating cursor, plus the
// O(1) whole-state checks on every call. budget ≤ 0 falls back to the full
// CheckInvariants sweep. The violation vocabulary is CheckInvariants's.
func (s *State) CheckInvariantsSampled(budget int) error {
	if budget <= 0 {
		return s.CheckInvariants()
	}
	// O(1) global agreement: claims and physical edges correspond
	// one-to-one iff every edge has a claim (sampled below, complete per
	// rotation) and the counts match.
	if nc, ne := len(s.claims), s.g.NumEdges(); nc != ne {
		return violation("claim count %d != physical edge count %d", nc, ne)
	}

	edges := s.g.Edges()
	s.inv.edge = sampleRing(edges, s.inv.edge, budget, s.checkEdgeInvariant)
	if s.invErr != nil {
		return s.invErr
	}
	nodes := s.g.Nodes()
	s.inv.node = sampleRing(nodes, s.inv.node, budget, s.checkNodeInvariant)
	if s.invErr != nil {
		return s.invErr
	}
	clouds := s.Clouds()
	s.inv.cloud = sampleRing(clouds, s.inv.cloud, budget, s.checkCloudInvariant)
	if s.invErr != nil {
		return s.invErr
	}
	base := s.gp.Nodes()
	s.inv.base = sampleRing(base, s.inv.base, budget, s.checkBaselineInvariant)
	return s.invErr
}

// sampleRing visits up to budget items of view starting at cursor, wrapping
// around, and returns the advanced cursor. check signals failure through
// s.invErr (set by the check helpers) — the caller inspects it.
func sampleRing[T any](view []T, cursor, budget int, check func(T) bool) int {
	n := len(view)
	if n == 0 {
		return 0
	}
	if budget > n {
		budget = n
	}
	cursor %= n
	for i := 0; i < budget; i++ {
		if !check(view[(cursor+i)%n]) {
			return (cursor + i) % n
		}
	}
	return (cursor + budget) % n
}

// The per-item helpers mirror CheckInvariants's category sweeps one item at
// a time, reporting through s.invErr so they fit sampleRing's signature.

func (s *State) checkEdgeInvariant(e graph.Edge) bool {
	s.invErr = nil
	cl, ok := s.claims[e]
	if !ok {
		s.invErr = violation("physical edge %v has no claim", e)
		return false
	}
	if cl.empty() {
		s.invErr = violation("edge %v has an empty claim", e)
		return false
	}
	if cl.black && len(cl.colors) > 0 {
		s.invErr = violation("edge %v is both black and colored", e)
		return false
	}
	for _, color := range cl.colors {
		c, live := s.clouds[color]
		if !live {
			s.invErr = violation("edge %v claimed by dead cloud %d", e, color)
			return false
		}
		if _, has := c.edges[e]; !has {
			s.invErr = violation("edge %v claims cloud %d which does not list it", e, color)
			return false
		}
	}
	return true
}

func (s *State) checkNodeInvariant(n graph.NodeID) bool {
	s.invErr = nil
	if dG, bound := s.g.Degree(n), s.DegreeBound(n); dG > bound {
		s.invErr = violation("degree bound: node %d has deg_G=%d > κ·deg_G'=%d·%d + 2κ = %d",
			n, dG, s.kappa, s.gp.Degree(n), bound)
		return false
	}
	for id := range s.nodePrimaries[n] {
		c, ok := s.clouds[id]
		if !ok {
			s.invErr = violation("node %d lists dead cloud %d", n, id)
			return false
		}
		if c.kind != Primary {
			s.invErr = violation("node %d lists non-primary cloud %d as primary", n, id)
			return false
		}
		if !c.contains(n) {
			s.invErr = violation("node %d lists cloud %d which lacks it", n, id)
			return false
		}
	}
	if link, ok := s.bridgeLinks[n]; ok {
		f, live := s.clouds[link.secondary]
		if !live {
			s.invErr = violation("node %d bridges dead secondary %d", n, link.secondary)
			return false
		}
		if f.kind != Secondary {
			s.invErr = violation("node %d bridge target %d is not secondary", n, link.secondary)
			return false
		}
		if !f.contains(n) {
			s.invErr = violation("node %d not a member of its secondary %d", n, link.secondary)
			return false
		}
		p, live := s.clouds[link.primary]
		if !live {
			s.invErr = violation("node %d anchors dead primary %d", n, link.primary)
			return false
		}
		if p.kind != Primary {
			s.invErr = violation("node %d anchor %d is not primary", n, link.primary)
			return false
		}
		if !p.contains(n) {
			s.invErr = violation("node %d not a member of its anchored primary %d", n, link.primary)
			return false
		}
	}
	return true
}

func (s *State) checkCloudInvariant(id ColorID) bool {
	s.invErr = nil
	c, ok := s.clouds[id]
	if !ok {
		return true // raced with Clouds() view; next rotation re-reads
	}
	if c.id != id {
		s.invErr = violation("cloud registry key %d != cloud id %d", id, c.id)
		return false
	}
	if c.kind != Primary && c.kind != Secondary {
		s.invErr = violation("cloud %d has invalid kind %d", id, int(c.kind))
		return false
	}
	if c.size() == 0 {
		s.invErr = violation("cloud %d is empty but registered", id)
		return false
	}
	if err := c.m.Validate(); err != nil {
		s.invErr = violation("cloud %d maintainer: %v", id, err)
		return false
	}
	for _, n := range c.members() {
		if !s.g.HasNode(n) {
			s.invErr = violation("cloud %d member %d is not alive", id, n)
			return false
		}
		if _, dead := s.deleted[n]; dead {
			s.invErr = violation("cloud %d contains deleted node %d", id, n)
			return false
		}
		switch c.kind {
		case Primary:
			set, ok := s.nodePrimaries[n]
			if !ok {
				s.invErr = violation("cloud %d member %d missing membership entry", id, n)
				return false
			}
			if _, in := set[id]; !in {
				s.invErr = violation("cloud %d member %d does not list the cloud", id, n)
				return false
			}
		case Secondary:
			link, ok := s.bridgeLinks[n]
			if !ok || link.secondary != id {
				s.invErr = violation("secondary %d member %d lacks a matching bridge link", id, n)
				return false
			}
		}
	}
	want := c.m.EdgeSet()
	if len(want) != len(c.edges) {
		s.invErr = violation("cloud %d claims %d edges, maintainer wants %d", id, len(c.edges), len(want))
		return false
	}
	for e := range want {
		if _, ok := c.edges[e]; !ok {
			s.invErr = violation("cloud %d missing claim on %v", id, e)
			return false
		}
		cl, ok := s.claims[e]
		if !ok {
			s.invErr = violation("cloud %d edge %v has no physical claim", id, e)
			return false
		}
		if !cl.hasColor(id) {
			s.invErr = violation("cloud %d edge %v claim does not list the cloud", id, e)
			return false
		}
	}
	return true
}

// checkBaselineInvariant covers the deleted-node category: G′ holds every
// node ever inserted, so a rotation over gp.Nodes() deterministically
// visits all deleted nodes (unlike ranging the deleted map).
func (s *State) checkBaselineInvariant(n graph.NodeID) bool {
	s.invErr = nil
	_, dead := s.deleted[n]
	if !dead {
		if !s.g.HasNode(n) {
			s.invErr = violation("baseline node %d neither alive nor deleted", n)
			return false
		}
		return true
	}
	if s.g.HasNode(n) {
		s.invErr = violation("deleted node %d still alive", n)
		return false
	}
	if _, ok := s.nodePrimaries[n]; ok {
		s.invErr = violation("deleted node %d has primary memberships", n)
		return false
	}
	if _, ok := s.bridgeLinks[n]; ok {
		s.invErr = violation("deleted node %d has a bridge link", n)
		return false
	}
	return true
}
