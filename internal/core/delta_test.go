package core

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// TestDeleteNodeDeltaMatchesGraphDiff checks, under churn, that the edge
// delta reported by DeleteNodeDelta is exactly the net difference between
// the pre- and post-repair graphs (excluding the victim's own edges) — the
// contract the distributed engine's dissemination plan depends on.
func TestDeleteNodeDeltaMatchesGraphDiff(t *testing.T) {
	g0, err := workload.ErdosRenyi(28, 0.18, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	s, err := NewState(Config{Kappa: 4, Seed: 3}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 18; step++ {
		alive := s.AliveNodes()
		if len(alive) <= 5 {
			break
		}
		v := alive[rng.Intn(len(alive))]
		prev := s.CloneGraph()
		delta, err := s.DeleteNodeDelta(v)
		if err != nil {
			t.Fatalf("step %d: DeleteNodeDelta(%d): %v", step, v, err)
		}
		cur := s.Graph()

		want := make(map[graph.Edge]int8)
		for _, e := range prev.Edges() {
			if e.U == v || e.V == v {
				continue
			}
			if !cur.HasEdge(e.U, e.V) {
				want[e] = -1
			}
		}
		for _, e := range cur.Edges() {
			if !prev.HasEdge(e.U, e.V) {
				want[e] = 1
			}
		}
		got := make(map[graph.Edge]int8)
		for _, e := range delta.Added {
			got[e] = 1
		}
		for _, e := range delta.Removed {
			got[e] = -1
		}
		if len(got) != len(want) {
			t.Fatalf("step %d delete %d: delta has %d edges, graph diff has %d",
				step, v, len(got), len(want))
		}
		for e, kind := range want {
			if got[e] != kind {
				t.Fatalf("step %d delete %d: edge %v delta %d, want %d",
					step, v, e, got[e], kind)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
}
