package core

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
)

// Parallel batched repair: disjoint wounds heal concurrently.
//
// ApplyBatchParallel partitions the batch's deletions into repair groups
// with pairwise-disjoint footprints (see footprint.go), extracts each
// group's scope into a private sub-State, heals the groups concurrently on a
// bounded worker pool, and merges the results back in deterministic (batch)
// order. The schedule is equivalent to the serial one:
//
//   - Randomness: every repair draws exactly one value from the main counted
//     stream — the seed of its private sub-stream (see deleteNode). Seeds
//     are pre-drawn in batch order, so the main stream position and every
//     repair's randomness match the serial run exactly.
//   - Colors: each scope allocates from the same base; the merge remaps
//     scope colors to the IDs a serial run would have assigned (contiguous
//     in batch order). The remap is monotone within each scope, so sorted
//     color lists stay sorted.
//   - State: a group's repairs read and write only its footprint, so groups
//     compose by disjoint union; the merge is a per-group splice.
//
// The result is byte-identical to ApplyBatch — graph, claims, clouds,
// Snapshot() — for any worker count.

// recCall is one captured recorder callback (see repairCapture).
type recCall struct {
	kind  recCallKind
	node  graph.NodeID
	a, b  int
	phase obs.Phase
}

type recCallKind uint8

const (
	callRepairBegin recCallKind = iota + 1
	callPhase
	callCloudWired
	callRepairEnd
)

// repairCapture buffers recorder callbacks emitted inside a scoped repair.
// The obs.Recorder is not safe for concurrent repairs (one span at a time),
// so scoped states capture instead and the coordinator replays the calls in
// batch order after the merge.
type repairCapture struct {
	calls []recCall
}

// The trace* wrappers route repair trace callbacks either to the live
// recorder (serial path) or into the capture buffer (scoped parallel path).

func (s *State) traceRepairBegin(v graph.NodeID, wound, black int) {
	if s.capture != nil {
		s.capture.calls = append(s.capture.calls, recCall{kind: callRepairBegin, node: v, a: wound, b: black})
		return
	}
	s.rec.RepairBegin(v, wound, black)
}

func (s *State) tracePhase(p obs.Phase) {
	if s.capture != nil {
		s.capture.calls = append(s.capture.calls, recCall{kind: callPhase, phase: p})
		return
	}
	s.rec.Phase(p)
}

func (s *State) traceCloudWired(size int) {
	if s.capture != nil {
		s.capture.calls = append(s.capture.calls, recCall{kind: callCloudWired, a: size})
		return
	}
	s.rec.CloudWired(size)
}

func (s *State) traceRepairEnd() {
	if s.capture != nil {
		s.capture.calls = append(s.capture.calls, recCall{kind: callRepairEnd})
		return
	}
	s.rec.RepairEnd()
}

// replayCall re-emits one captured callback against the live recorder.
func (s *State) replayCall(c recCall) {
	switch c.kind {
	case callRepairBegin:
		s.rec.RepairBegin(c.node, c.a, c.b)
	case callPhase:
		s.rec.Phase(c.phase)
	case callCloudWired:
		s.rec.CloudWired(c.a)
	case callRepairEnd:
		s.rec.RepairEnd()
	}
}

// groupResult is one worker's output.
type groupResult struct {
	sub      *State      // the healed scope
	colors   []int       // colors allocated per deletion, in group order
	captures [][]recCall // captured trace calls per deletion, in group order
	err      error
}

// LastRepairGroups returns the deletion groups of the most recent
// ApplyBatchParallel call, in merge order (each group's deletions in batch
// order), or nil when the last batch took the plain serial path (worker
// count ≤ 1 or fewer than two deletions). Observability hook for the
// conformance harness's per-group ledger checks.
func (s *State) LastRepairGroups() [][]graph.NodeID {
	if s.lastGroups == nil {
		return nil
	}
	out := make([][]graph.NodeID, len(s.lastGroups))
	for i, g := range s.lastGroups {
		out[i] = append([]graph.NodeID(nil), g...)
	}
	return out
}

// ApplyBatchParallel is ApplyBatch with the batch's deletions healed
// concurrently where their footprints are disjoint. workers bounds the
// worker pool; values ≤ 1 (and batches with fewer than two deletions) take
// the serial path. Conflicting deletions share a group and heal serially
// within it, so the schedule is always equivalent to the serial order — the
// final state is byte-identical to ApplyBatch's for any worker count.
//
// The failure contract is ApplyBatch's: validation failures leave the state
// unchanged; a post-validation failure (including a panicking repair worker)
// poisons the State.
func (s *State) ApplyBatchParallel(b Batch, workers int) (err error) {
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	s.lastGroups = nil
	if workers <= 1 || len(b.Deletions) < 2 {
		return s.ApplyBatch(b)
	}
	if err := s.ValidateBatch(b); err != nil {
		return err
	}
	defer s.convertPanic(&err)
	for _, ins := range b.Insertions {
		if err := s.InsertNode(ins.Node, ins.Neighbors); err != nil {
			return s.poison(fmt.Errorf("batch insertion %d: %w", ins.Node, err))
		}
	}

	groups := s.planRepairGroups(b.Deletions)
	s.lastGroups = make([][]graph.NodeID, len(groups))
	for i, g := range groups {
		s.lastGroups[i] = append([]graph.NodeID(nil), g.deletions...)
	}
	if len(groups) == 1 {
		// Everything conflicts: nothing to fan out, heal in place.
		for _, d := range b.Deletions {
			if err := s.deleteNode(d, true); err != nil {
				return s.poison(fmt.Errorf("batch deletion %d: %w", d, err))
			}
		}
		return nil
	}

	// Pre-draw each repair's sub-stream seed in batch order, so the main
	// stream advances exactly as a serial run's would.
	seedOf := make(map[graph.NodeID]int64, len(b.Deletions))
	for _, d := range b.Deletions {
		seedOf[d] = int64(s.src.Uint64())
	}

	base := s.nextColor
	results := make([]*groupResult, len(groups))
	sem := make(chan struct{}, min(workers, len(groups)))
	var wg sync.WaitGroup
	for gi, g := range groups {
		seeds := make([]int64, len(g.deletions))
		for i, d := range g.deletions {
			seeds[i] = seedOf[d]
		}
		wg.Add(1)
		go func(gi int, g *repairGroup, seeds []int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[gi] = s.runGroup(g, seeds, base)
		}(gi, g, seeds)
	}
	wg.Wait()

	for gi := range groups {
		if e := results[gi].err; e != nil {
			// Insertions are already applied and no serial prefix exists to
			// roll back to; fail-stop rather than expose a half-applied tick.
			return s.poison(fmt.Errorf("parallel repair group %d: %w", gi, e))
		}
	}
	s.mergeGroups(b, groups, results, base)
	return nil
}

// runGroup heals one repair group inside a private scoped sub-State.
// Panics are contained here so one bad group cannot take down the
// coordinator before the join.
func (s *State) runGroup(g *repairGroup, seeds []int64, base ColorID) (res *groupResult) {
	res = &groupResult{}
	defer func() {
		if r := recover(); r != nil {
			res.err = fmt.Errorf("panic: %v", r)
		}
	}()
	sub := s.extractScope(g, base)
	res.sub = sub
	sub.seedQueue = seeds
	for _, v := range g.deletions {
		before := sub.nextColor
		var cur int
		if sub.capture != nil {
			cur = len(sub.capture.calls)
		}
		if err := sub.deleteNode(v, true); err != nil {
			res.err = fmt.Errorf("deletion %d: %w", v, err)
			return res
		}
		res.colors = append(res.colors, int(sub.nextColor-before))
		if sub.capture != nil {
			calls := sub.capture.calls
			res.captures = append(res.captures, calls[cur:len(calls):len(calls)])
		}
	}
	return res
}

// extractScope builds a private sub-State holding exactly the group's
// footprint: the induced subgraph, its claims, deep copies of the footprint
// clouds, and the footprint nodes' membership records. Scope color
// allocation starts at base (the main state's nextColor at fan-out); the
// merge remaps. Only concurrency-safe reads of the parent state happen here
// — map lookups and deep copies of clouds no other group shares (a shared
// cloud's members would have forced the groups to merge).
func (s *State) extractScope(g *repairGroup, base ColorID) *State {
	sw := &switchableSource{} // installed per repair; no main stream in scope
	sub := &State{
		kappa:          s.kappa,
		seed:           s.seed,
		sw:             sw,
		rng:            rand.New(sw),
		alwaysCombine:  s.alwaysCombine,
		disableSharing: s.disableSharing,
		g:              graph.New(),
		gp:             graph.New(), // deletions never read G′
		deleted:        make(map[graph.NodeID]struct{}, len(g.deletions)),
		claims:         make(map[graph.Edge]edgeClaim, len(g.edges)),
		clouds:         make(map[ColorID]*cloud, len(g.clouds)),
		nodePrimaries:  make(map[graph.NodeID]map[ColorID]struct{}),
		bridgeLinks:    make(map[graph.NodeID]bridgeLink),
		sharedOnce:     make(map[graph.NodeID]struct{}),
		nextColor:      base,
	}
	if s.rec != nil {
		sub.capture = &repairCapture{}
	}
	for _, n := range g.nodes {
		sub.g.EnsureNode(n)
	}
	for _, e := range g.edges {
		sub.g.EnsureEdge(e.U, e.V)
		cl := s.claims[e]
		sub.claims[e] = edgeClaim{black: cl.black, colors: append([]ColorID(nil), cl.colors...)}
	}
	for id := range g.clouds {
		c, live := s.clouds[id]
		if !live {
			continue
		}
		sub.clouds[id] = &cloud{
			id:    id,
			kind:  c.kind,
			m:     c.m.Clone(sub.rng),
			edges: copyEdgeSet(c.edges),
		}
	}
	for _, n := range g.nodes {
		if set, ok := s.nodePrimaries[n]; ok {
			ns := make(map[ColorID]struct{}, len(set))
			for id := range set {
				ns[id] = struct{}{}
			}
			sub.nodePrimaries[n] = ns
		}
		if l, ok := s.bridgeLinks[n]; ok {
			sub.bridgeLinks[n] = l
		}
		if _, ok := s.sharedOnce[n]; ok {
			sub.sharedOnce[n] = struct{}{}
		}
	}
	return sub
}

func copyEdgeSet(set map[graph.Edge]struct{}) map[graph.Edge]struct{} {
	out := make(map[graph.Edge]struct{}, len(set))
	for e := range set {
		out[e] = struct{}{}
	}
	return out
}

// mergeGroups splices the healed scopes back into the main state, in
// deterministic order, remapping scope colors to the IDs a serial run would
// have assigned: color blocks are laid out per deletion in batch order
// starting at base. The remap is monotone within each scope (both sides
// follow the group-restricted batch order), so sorted color lists remain
// sorted and the merged state is byte-identical to the serial result.
func (s *State) mergeGroups(b Batch, groups []*repairGroup, results []*groupResult, base ColorID) {
	// Where is each deletion within its group?
	type slot struct{ group, idx int }
	slots := make(map[graph.NodeID]slot, len(b.Deletions))
	for gi, g := range groups {
		for k, v := range g.deletions {
			slots[v] = slot{group: gi, idx: k}
		}
	}

	// Final color layout: per deletion in batch order, contiguous from base.
	finalStart := make(map[graph.NodeID]ColorID, len(b.Deletions))
	next := base
	for _, v := range b.Deletions {
		sl := slots[v]
		finalStart[v] = next
		next += ColorID(results[sl.group].colors[sl.idx])
	}

	// Per-group remap tables: scope color (offset from base) → final color.
	remaps := make([][]ColorID, len(groups))
	for gi, g := range groups {
		total := 0
		for _, c := range results[gi].colors {
			total += c
		}
		rm := make([]ColorID, total)
		cursor := 0
		for k, v := range g.deletions {
			for t := 0; t < results[gi].colors[k]; t++ {
				rm[cursor] = finalStart[v] + ColorID(t)
				cursor++
			}
		}
		remaps[gi] = rm
	}

	for gi, g := range groups {
		sub := results[gi].sub
		rm := remaps[gi]
		remap := func(c ColorID) ColorID {
			if c >= base {
				return rm[c-base]
			}
			return c
		}

		// Victims leave the main graph exactly as deleteNode would have
		// removed them; their incident claims die in the edge sync below.
		for _, v := range g.deletions {
			wound, err := s.g.RemoveNode(v)
			if err != nil {
				panic(fmt.Sprintf("core: merge: victim %d not in graph: %v", v, err))
			}
			s.noteNodeRemoved(v, wound)
			s.deleted[v] = struct{}{}
			delete(s.nodePrimaries, v)
			delete(s.bridgeLinks, v)
			delete(s.sharedOnce, v)
		}

		// Edge sync, claims as source of truth: scope edges that vanished
		// are released; surviving and new ones adopt the scope's claims.
		for _, e := range g.edges {
			if _, kept := sub.claims[e]; kept {
				continue
			}
			delete(s.claims, e)
			if s.g.HasEdge(e.U, e.V) {
				if err := s.g.RemoveEdge(e.U, e.V); err != nil {
					panic(fmt.Sprintf("core: merge: remove edge %v: %v", e, err))
				}
				if s.tick != nil {
					netDelta(s.tick.edges, e, deltaRemoved)
				}
			}
		}
		for e, cl := range sub.claims {
			for i, id := range cl.colors {
				cl.colors[i] = remap(id)
			}
			s.claims[e] = cl
			if !s.g.HasEdge(e.U, e.V) {
				s.g.EnsureEdge(e.U, e.V)
				if s.tick != nil {
					netDelta(s.tick.edges, e, deltaAdded)
				}
			}
		}

		// Clouds: footprint clouds are replaced wholesale by the scope's
		// survivors, rebound to the main rng stream.
		for id := range g.clouds {
			delete(s.clouds, id)
		}
		for id, c := range sub.clouds {
			nid := remap(id)
			c.id = nid
			c.m.SetRand(s.rng)
			s.clouds[nid] = c
		}

		// Membership records of surviving footprint nodes.
		for _, n := range g.nodes {
			if _, dead := sub.deleted[n]; dead {
				continue
			}
			if set, ok := sub.nodePrimaries[n]; ok && len(set) > 0 {
				ns := make(map[ColorID]struct{}, len(set))
				for id := range set {
					ns[remap(id)] = struct{}{}
				}
				s.nodePrimaries[n] = ns
			} else {
				delete(s.nodePrimaries, n)
			}
			if l, ok := sub.bridgeLinks[n]; ok {
				s.bridgeLinks[n] = bridgeLink{primary: remap(l.primary), secondary: remap(l.secondary)}
			} else {
				delete(s.bridgeLinks, n)
			}
			if _, ok := sub.sharedOnce[n]; ok {
				s.sharedOnce[n] = struct{}{}
			} else {
				delete(s.sharedOnce, n)
			}
		}

		s.stats.add(sub.stats)
	}
	s.nextColor = next

	// Replay the captured repair traces in batch order, the order the
	// recorder would have seen serially.
	if s.rec != nil {
		for _, v := range b.Deletions {
			sl := slots[v]
			if sl.idx < len(results[sl.group].captures) {
				for _, call := range results[sl.group].captures[sl.idx] {
					s.replayCall(call)
				}
			}
		}
	}
}
