package core

import (
	"fmt"

	"github.com/xheal/xheal/internal/graph"
)

// BatchAdmission is ValidateBatch unrolled into per-event decisions: events
// join a batch one at a time in arrival order, and each verdict is identical
// to validating the assembled prospective batch wholesale — at O(event)
// instead of O(batch) per decision. The serving daemon admits each tick's
// batch through this (a 256-event tick costs 256 event checks, not 256²).
//
// The equivalence argument: the admitted prefix has already passed every
// ValidateBatch rule, so validating prefix+event can only fail on the new
// event's own properties or its interactions with the prefix. Those
// interactions are exactly membership in three sets — nodes inserted so
// far, nodes deleted so far, and attachment targets referenced so far —
// which the admission tracks as it goes. TestAdmissionMatchesValidateBatch
// pins the equivalence against randomized schedules.
//
// A failed Admit leaves the admission state untouched: the caller can defer
// the event and keep admitting others. The engine must not mutate between
// Begin and the batch's application (the serving loop is single-threaded, so
// this holds by construction).
type BatchAdmission struct {
	s        *State
	inserted map[graph.NodeID]struct{}
	deleted  map[graph.NodeID]struct{}
	attached map[graph.NodeID]struct{}
}

// BeginAdmission starts the incremental admission of one batch.
func (s *State) BeginAdmission() *BatchAdmission {
	return &BatchAdmission{
		s:        s,
		inserted: make(map[graph.NodeID]struct{}),
		deleted:  make(map[graph.NodeID]struct{}),
		attached: make(map[graph.NodeID]struct{}),
	}
}

// Reset rewinds the admission to an empty batch so the caller can reuse it
// for the next tick: clearing keeps the map buckets, so a steady-state
// serving loop admits with zero allocations.
func (a *BatchAdmission) Reset() {
	clear(a.inserted)
	clear(a.deleted)
	clear(a.attached)
}

// AdmitInsertion decides whether the insertion may join the batch. The
// checks mirror ValidateBatch's insertion rules in order; error identities
// (ErrBatchConflict vs the rest) are the same, so callers defer and reject
// on exactly the verdicts wholesale validation would give.
func (a *BatchAdmission) AdmitInsertion(ins BatchInsertion) error {
	s := a.s
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	if _, dup := a.inserted[ins.Node]; dup {
		return fmt.Errorf("node %d inserted twice: %w", ins.Node, ErrBatchConflict)
	}
	if s.g.HasNode(ins.Node) {
		return fmt.Errorf("insert %d: %w", ins.Node, ErrNodeExists)
	}
	if _, was := s.deleted[ins.Node]; was || s.gp.HasNode(ins.Node) {
		return fmt.Errorf("insert %d: %w", ins.Node, ErrReusedNodeID)
	}
	// Duplicate-neighbor detection scans the admitted prefix directly:
	// neighbor lists are degree-sized, so this beats allocating a set —
	// except for adversarially wide inserts, which fall back to one.
	var seen map[graph.NodeID]struct{}
	if len(ins.Neighbors) > 32 {
		seen = make(map[graph.NodeID]struct{}, len(ins.Neighbors))
	}
	for i, w := range ins.Neighbors {
		if w == ins.Node {
			return fmt.Errorf("insert %d: %w", ins.Node, ErrSelfInsert)
		}
		dup := false
		if seen != nil {
			_, dup = seen[w]
			seen[w] = struct{}{}
		} else {
			for _, prev := range ins.Neighbors[:i] {
				if prev == w {
					dup = true
					break
				}
			}
		}
		if dup {
			return fmt.Errorf("insert %d: duplicate neighbor %d: %w", ins.Node, w, ErrBadNeighbor)
		}
		if _, gone := a.deleted[w]; gone {
			return fmt.Errorf("insertion %d attaches to node %d deleted in the same batch: %w",
				ins.Node, w, ErrBatchConflict)
		}
		if _, earlier := a.inserted[w]; earlier || s.g.HasNode(w) {
			continue
		}
		return fmt.Errorf("insertion %d attaches to unknown node %d: %w",
			ins.Node, w, ErrBadNeighbor)
	}
	a.inserted[ins.Node] = struct{}{}
	for _, w := range ins.Neighbors {
		a.attached[w] = struct{}{}
	}
	return nil
}

// AdmitDeletion decides whether the deletion may join the batch, mirroring
// ValidateBatch's deletion rules plus the attachment-conflict rule (an
// already-admitted insertion attaching to the victim).
func (a *BatchAdmission) AdmitDeletion(d graph.NodeID) error {
	s := a.s
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	if _, dup := a.deleted[d]; dup {
		return fmt.Errorf("node %d deleted twice: %w", d, ErrBatchConflict)
	}
	if _, ok := a.inserted[d]; ok {
		return fmt.Errorf("node %d inserted and deleted in one batch: %w", d, ErrBatchConflict)
	}
	if !s.g.HasNode(d) {
		return fmt.Errorf("delete %d: %w", d, ErrNodeMissing)
	}
	if _, ok := a.attached[d]; ok {
		return fmt.Errorf("insertion attaches to node %d deleted in the same batch: %w",
			d, ErrBatchConflict)
	}
	a.deleted[d] = struct{}{}
	return nil
}
