package core

import (
	"fmt"
	"math/rand"
	"slices"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
)

// DefaultKappa is the expander degree parameter used when Config.Kappa is
// zero. κ is "a small parameter (which is implementation dependent, can be
// chosen to be a constant)" (paper §1); 6 gives three Hamilton cycles.
const DefaultKappa = 6

// Config parameterizes a State.
type Config struct {
	// Kappa is the expander degree parameter κ (even, ≥ 2). 0 selects
	// DefaultKappa.
	Kappa int
	// Seed seeds the algorithm's private randomness (H-graph construction).
	// The adversary is oblivious to it, per the paper's model.
	Seed int64

	// AlwaysCombine disables secondary clouds: affected groups are combined
	// into one primary cloud on every multi-group repair. Ablation knob for
	// the paper's amortization argument (secondary clouds exist to make
	// combining rare); not part of the paper's algorithm.
	AlwaysCombine bool
	// DisableSharing disables free-node sharing: repairs combine whenever
	// the bipartite matching alone cannot serve every group. Ablation knob.
	DisableSharing bool
}

// State is the sequential Xheal instance: the healed graph G, the
// insertions-only graph G′, and all cloud/color bookkeeping.
//
// Not safe for concurrent mutation; concurrent reads are safe.
type State struct {
	kappa          int
	seed           int64
	src            *CountedSource // the counted main stream (snapshot position)
	sw             *switchableSource
	rng            *rand.Rand // reads through sw; normally sw.cur == src
	alwaysCombine  bool
	disableSharing bool

	g       *graph.Graph // healed graph (physical)
	gp      *graph.Graph // G′: original + insertions, deletions ignored
	deleted map[graph.NodeID]struct{}

	claims map[graph.Edge]edgeClaim
	clouds map[ColorID]*cloud

	// nodePrimaries[n] is the set of primary clouds n belongs to;
	// bridgeLinks[n] is n's unique secondary duty, if any.
	nodePrimaries map[graph.NodeID]map[ColorID]struct{}
	bridgeLinks   map[graph.NodeID]bridgeLink

	// sharedOnce marks nodes that have been shared into a foreign primary
	// cloud; the paper forbids sharing a node twice (Lemma 3).
	sharedOnce map[graph.NodeID]struct{}

	nextColor ColorID
	stats     Stats

	// colorSlab is a chunked arena handing out the capacity-1 color slices
	// single-color claims hold — the overwhelmingly common case — so claim
	// churn costs one allocation per chunk instead of one per claimed edge.
	colorSlab []ColorID

	// deltaLog, when non-nil, accumulates the net physical edge changes of
	// the current repair (see DeleteNodeDelta).
	deltaLog map[graph.Edge]int8

	// tick, when non-nil, accumulates the net structural changes of the
	// whole in-flight batch — wound edges and node set changes included
	// (see BeginTickDelta / TakeTickDelta in tickdelta.go).
	tick *tickAcc
	// tickSpare keeps the previous capture's accumulator for reuse, so the
	// steady-state tick path doesn't pay a fresh map per batch.
	tickSpare *tickAcc

	// rec, when non-nil, receives per-wound trace callbacks (repair
	// admission, rewiring, cloud construction). All obs.Recorder methods
	// no-op on nil, so the disabled hot path pays one nil check.
	rec *obs.Recorder

	// capture, when non-nil, diverts recorder callbacks into an in-memory
	// list instead of rec. ApplyBatchParallel sets it on the scoped states so
	// concurrent repairs never touch the shared recorder; the coordinator
	// replays the captured calls in batch order after the merge.
	capture *repairCapture

	// seedQueue, when non-nil, feeds deleteNode its per-repair sub-stream
	// seeds instead of the main stream. ApplyBatchParallel pre-draws one seed
	// per deletion in batch order and routes each group's share here, so the
	// main stream advances identically to a serial run.
	seedQueue []int64

	// inv / invErr carry the rotating cursors and pending violation of
	// CheckInvariantsSampled; bookkeeping only, outside Snapshot identity.
	inv    invCursors
	invErr error

	// poisoned, once set, fail-stops the State: every mutating or exporting
	// call returns ErrPoisoned wrapping this cause. See ApplyBatch's contract.
	poisoned error

	// lastGroups records the repair groups of the most recent
	// ApplyBatchParallel call, in merge order; see LastRepairGroups.
	lastGroups [][]graph.NodeID
}

// NewState builds a State over a copy of the initial graph g0, whose edges
// are colored black (paper: "the original edges of G ... are all colored
// black initially").
func NewState(cfg Config, g0 *graph.Graph) (*State, error) {
	if g0 == nil {
		return nil, ErrNilGraph
	}
	kappa := cfg.Kappa
	if kappa == 0 {
		kappa = DefaultKappa
	}
	if kappa < 2 || kappa%2 != 0 {
		return nil, fmt.Errorf("kappa=%d: %w", kappa, ErrBadKappa)
	}
	src := NewCountedSource(cfg.Seed)
	sw := &switchableSource{cur: src}
	s := &State{
		kappa:          kappa,
		seed:           cfg.Seed,
		src:            src,
		sw:             sw,
		rng:            rand.New(sw),
		alwaysCombine:  cfg.AlwaysCombine,
		disableSharing: cfg.DisableSharing,
		g:              g0.Clone(),
		gp:             g0.Clone(),
		deleted:        make(map[graph.NodeID]struct{}),
		claims:         make(map[graph.Edge]edgeClaim, g0.NumEdges()),
		clouds:         make(map[ColorID]*cloud),
		nodePrimaries:  make(map[graph.NodeID]map[ColorID]struct{}),
		bridgeLinks:    make(map[graph.NodeID]bridgeLink),
		sharedOnce:     make(map[graph.NodeID]struct{}),
		nextColor:      1,
	}
	for _, e := range g0.Edges() {
		s.claims[e] = edgeClaim{black: true}
	}
	return s, nil
}

// Kappa returns the expander degree parameter κ.
func (s *State) Kappa() int { return s.kappa }

// SetRecorder attaches a per-wound trace recorder (nil detaches it). The
// recorder learns every applied event and the repair phase boundaries of
// every deletion; see internal/obs.
func (s *State) SetRecorder(r *obs.Recorder) { s.rec = r }

// Graph returns the healed graph G. The returned graph is live and must not
// be modified; use CloneGraph for a mutable copy.
func (s *State) Graph() *graph.Graph { return s.g }

// CloneGraph returns a mutable deep copy of the healed graph.
func (s *State) CloneGraph() *graph.Graph { return s.g.Clone() }

// Baseline returns G′: the graph of original nodes and adversarial
// insertions with deletions ignored (deleted nodes are still present). Live
// view; must not be modified.
func (s *State) Baseline() *graph.Graph { return s.gp }

// Alive reports whether n exists in the healed graph.
func (s *State) Alive(n graph.NodeID) bool { return s.g.HasNode(n) }

// AliveNodes returns the nodes of the healed graph, ascending. The slice is
// the graph's cached read-only view (see graph.Graph.Nodes): do not modify
// it; copy to shuffle or retain a mutable list.
func (s *State) AliveNodes() []graph.NodeID { return s.g.Nodes() }

// Stats returns a copy of the healing-work counters.
func (s *State) Stats() Stats { return s.stats }

// EdgeColors returns the colors claiming the physical edge {u, v}: nil with
// ok=false if the edge is absent, an empty slice for a black edge, and the
// sorted cloud colors otherwise. The result is a fresh slice the caller may
// keep; hot paths that only test blackness should use IsBlackEdge.
func (s *State) EdgeColors(u, v graph.NodeID) (colors []ColorID, ok bool) {
	cl, present := s.claims[graph.NewEdge(u, v)]
	if !present {
		return nil, false
	}
	if cl.black {
		return []ColorID{}, true
	}
	return append(make([]ColorID, 0, len(cl.colors)), cl.colors...), true
}

// IsBlackEdge reports whether the physical edge {u, v} exists and carries
// the black claim, without allocating.
func (s *State) IsBlackEdge(u, v graph.NodeID) (black, ok bool) {
	cl, present := s.claims[graph.NewEdge(u, v)]
	return cl.black, present
}

// PrimariesOf returns the primary clouds containing n, ascending.
func (s *State) PrimariesOf(n graph.NodeID) []ColorID {
	set := s.nodePrimaries[n]
	out := make([]ColorID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// SecondaryOf returns the secondary cloud n bridges for, or (0, false).
func (s *State) SecondaryOf(n graph.NodeID) (ColorID, bool) {
	link, ok := s.bridgeLinks[n]
	if !ok {
		return 0, false
	}
	return link.secondary, true
}

// CloudMembers returns the member set of cloud id (ascending) and its kind.
// The slice is a fresh copy the caller may keep and modify.
func (s *State) CloudMembers(id ColorID) ([]graph.NodeID, CloudKind, bool) {
	c, ok := s.clouds[id]
	if !ok {
		return nil, 0, false
	}
	return append([]graph.NodeID(nil), c.members()...), c.kind, true
}

// Clouds returns all live cloud colors, ascending.
func (s *State) Clouds() []ColorID {
	out := make([]ColorID, 0, len(s.clouds))
	for id := range s.clouds {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// InsertNode applies an adversarial insertion: node u joins with black edges
// to the given existing nodes (paper: "Addition is straightforward, the
// algorithm takes no action. The added edges are colored black.").
//
// Node IDs of deleted nodes cannot be reused: G′ still contains them.
func (s *State) InsertNode(u graph.NodeID, nbrs []graph.NodeID) error {
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	if s.g.HasNode(u) {
		return fmt.Errorf("insert %d: %w", u, ErrNodeExists)
	}
	if _, wasDeleted := s.deleted[u]; wasDeleted || s.gp.HasNode(u) {
		return fmt.Errorf("insert %d: %w", u, ErrReusedNodeID)
	}
	seen := make(map[graph.NodeID]struct{}, len(nbrs))
	for _, w := range nbrs {
		if w == u {
			return fmt.Errorf("insert %d: %w", u, ErrSelfInsert)
		}
		if !s.g.HasNode(w) {
			return fmt.Errorf("insert %d with neighbor %d: %w", u, w, ErrBadNeighbor)
		}
		if _, dup := seen[w]; dup {
			return fmt.Errorf("insert %d: duplicate neighbor %d: %w", u, w, ErrBadNeighbor)
		}
		seen[w] = struct{}{}
	}
	if err := s.g.AddNode(u); err != nil {
		return err
	}
	if err := s.gp.AddNode(u); err != nil {
		return err
	}
	for _, w := range nbrs {
		if err := s.g.AddEdge(u, w); err != nil {
			return err
		}
		if err := s.gp.AddEdge(u, w); err != nil {
			return err
		}
		s.claims[graph.NewEdge(u, w)] = edgeClaim{black: true}
	}
	s.noteNodeInserted(u, nbrs)
	s.stats.Insertions++
	s.rec.InsertApplied()
	return nil
}

// DeleteNode applies an adversarial deletion of v and runs the Xheal repair
// (Algorithm 3.1). G′ is unchanged by deletions.
func (s *State) DeleteNode(v graph.NodeID) error {
	return s.deleteNode(v, true)
}

// deleteNode is DeleteNode's body. When settle is true the repair's trace
// span (if a recorder is attached) is closed on return; the distributed
// engine passes false through DeleteNodeDelta because its repair continues
// with the message protocol (election and dissemination) and it settles the
// span itself.
func (s *State) deleteNode(v graph.NodeID, settle bool) error {
	if s.poisoned != nil {
		return s.poisonedErr()
	}
	if !s.g.HasNode(v) {
		return fmt.Errorf("delete %d: %w", v, ErrNodeMissing)
	}

	// Every repair consumes exactly one value from the main counted stream:
	// the seed of an ephemeral, uncounted sub-stream that supplies all of the
	// repair's randomness (H-graph wiring, shuffles). This is the draw-merge
	// rule that keeps Snapshot byte-deterministic under parallel batching:
	// src.Draws() advances by one per deletion regardless of how repairs are
	// grouped or interleaved, and a repair's outcome depends only on its own
	// seed — never on how many values earlier repairs happened to draw.
	prev := s.sw.cur
	s.sw.cur = rand.NewSource(s.nextRepairSeed()).(rand.Source64)
	defer func() { s.sw.cur = prev }()

	// Gather v's situation before mutating anything.
	blackNbrs := s.blackNeighborsOf(v)
	primaries := s.PrimariesOf(v)
	link, hasLink := s.bridgeLinks[v]
	s.traceRepairBegin(v, len(s.g.Neighbors(v)), len(blackNbrs))

	// Physically remove v; its incident edges and their claims die with it.
	nbrs, err := s.g.RemoveNode(v)
	if err != nil {
		return err
	}
	for _, w := range nbrs {
		delete(s.claims, graph.NewEdge(v, w))
	}
	s.noteNodeRemoved(v, nbrs)
	s.deleted[v] = struct{}{}
	delete(s.nodePrimaries, v)
	delete(s.bridgeLinks, v)
	delete(s.sharedOnce, v)

	// Dispatch the repair case (paper Algorithm 3.1).
	switch {
	case len(primaries) == 0 && !hasLink:
		s.caseAllBlack(blackNbrs)
	case !hasLink:
		s.casePrimaryOnly(v, primaries, blackNbrs)
	default:
		s.caseSecondaryBridge(v, link, primaries, blackNbrs)
	}
	s.stats.Deletions++
	s.tracePhase(obs.PhaseRewired)
	if settle {
		s.traceRepairEnd()
	}
	return nil
}

// nextRepairSeed returns the sub-stream seed for the next repair: popped
// from the pre-drawn queue when one is installed (scoped parallel runs),
// otherwise one counted draw from the main stream.
func (s *State) nextRepairSeed() int64 {
	if s.seedQueue != nil {
		if len(s.seedQueue) == 0 {
			panic("core: repair seed queue exhausted")
		}
		seed := s.seedQueue[0]
		s.seedQueue = s.seedQueue[1:]
		return seed
	}
	return int64(s.src.Uint64())
}

// EdgeDelta is the net physical edge change one healing repair made,
// excluding the edges that died with the deleted node itself. Edges are in
// canonical sorted order.
type EdgeDelta struct {
	Added, Removed []graph.Edge
}

const (
	deltaAdded   int8 = 1
	deltaRemoved int8 = -1
)

// logDelta nets one physical edge change into the active delta logs: an add
// cancels a pending remove of the same edge and vice versa, so an edge the
// repair drops and re-wires contributes nothing.
func (s *State) logDelta(e graph.Edge, kind int8) {
	if s.deltaLog != nil {
		netDelta(s.deltaLog, e, kind)
	}
	if s.tick != nil {
		netDelta(s.tick.edges, e, kind)
	}
}

// DeleteNodeDelta is DeleteNode, additionally returning the net physical
// edge changes the healing performed. It lets a driver (the distributed
// engine) learn the repair in O(|wound| + |delta|) instead of diffing full
// graph snapshots.
func (s *State) DeleteNodeDelta(v graph.NodeID) (EdgeDelta, error) {
	s.deltaLog = make(map[graph.Edge]int8)
	err := s.deleteNode(v, false)
	var delta EdgeDelta
	for e, kind := range s.deltaLog {
		if kind == deltaAdded {
			delta.Added = append(delta.Added, e)
		} else {
			delta.Removed = append(delta.Removed, e)
		}
	}
	s.deltaLog = nil
	sortEdges(delta.Added)
	sortEdges(delta.Removed)
	return delta, err
}

func sortEdges(edges []graph.Edge) {
	slices.SortFunc(edges, graph.CompareEdges)
}

// blackNeighborsOf returns the neighbors of v connected by black edges.
func (s *State) blackNeighborsOf(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, w := range s.g.Neighbors(v) {
		if cl, ok := s.claims[graph.NewEdge(v, w)]; ok && cl.black {
			out = append(out, w)
		}
	}
	return out
}

// --- claim plumbing -------------------------------------------------------

// addClaim records cloud color's claim on edge e, creating the physical edge
// if needed and absorbing any black claim (the paper's re-coloring).
func (s *State) addClaim(e graph.Edge, color ColorID) {
	cl, ok := s.claims[e]
	if !ok {
		s.g.EnsureEdge(e.U, e.V)
		s.stats.HealEdgesAdded++
		s.logDelta(e, deltaAdded)
	}
	if len(cl.colors) == 0 {
		cl = edgeClaim{colors: s.singleColor(color)}
	} else {
		cl = cl.withColor(color)
	}
	s.claims[e] = cl
}

// singleColor returns a capacity-1 slice holding color, carved from the
// arena. Growing past one color (rare) reallocates through slices.Insert.
func (s *State) singleColor(color ColorID) []ColorID {
	if len(s.colorSlab) == 0 {
		s.colorSlab = make([]ColorID, 512)
	}
	out := s.colorSlab[:1:1]
	out[0] = color
	s.colorSlab = s.colorSlab[1:]
	return out
}

// releaseClaim drops color's claim on e, removing the physical edge when no
// claims remain. Edges already destroyed by a node deletion are tolerated.
func (s *State) releaseClaim(e graph.Edge, color ColorID) {
	cl, ok := s.claims[e]
	if !ok {
		return
	}
	cl = cl.withoutColor(color)
	if !cl.empty() {
		s.claims[e] = cl
		return
	}
	delete(s.claims, e)
	if s.g.HasEdge(e.U, e.V) {
		if err := s.g.RemoveEdge(e.U, e.V); err == nil {
			s.stats.HealEdgesRemoved++
			s.logDelta(e, deltaRemoved)
		}
	}
}

// reconcileCloud synchronizes the physical claims of c with its maintainer's
// logical edge set. The diff runs against the maintainer's sorted edge list
// (binary search for stale claims, map lookup for new ones) and updates
// c.edges in place, so a repair allocates no per-reconcile set.
func (s *State) reconcileCloud(c *cloud) {
	want := c.m.Edges() // canonical sorted order (see expander.Edges)
	inWant := func(e graph.Edge) bool {
		_, found := slices.BinarySearchFunc(want, e, graph.CompareEdges)
		return found
	}
	for e := range c.edges {
		if !inWant(e) {
			s.releaseClaim(e, c.id)
			delete(c.edges, e)
		}
	}
	for _, e := range want {
		if _, have := c.edges[e]; !have {
			s.addClaim(e, c.id)
			c.edges[e] = struct{}{}
		}
	}
}

// dropCloud releases all of c's claims and removes it from the registry.
// Membership maps must be cleaned by the caller.
func (s *State) dropCloud(c *cloud) {
	for e := range c.edges {
		s.releaseClaim(e, c.id)
	}
	delete(s.clouds, c.id)
}

// allocColor returns a fresh unique color.
func (s *State) allocColor() ColorID {
	id := s.nextColor
	s.nextColor++
	return id
}
