package core

import (
	"errors"
	"fmt"
	"slices"

	"github.com/xheal/xheal/internal/expander"
	"github.com/xheal/xheal/internal/graph"
)

// ColorID identifies an edge color. Black is the zero value; every cloud
// gets a unique non-zero color (the paper suggests the deleted node's ID;
// we use a monotone counter, which is equivalent and collision-free).
type ColorID int

// Black is the color of original and adversary-inserted edges.
const Black ColorID = 0

// CloudKind distinguishes primary from secondary expander clouds.
type CloudKind int

// Cloud kinds. The paper renders primaries as shades of red and secondaries
// as shades of orange; the kind plays exactly that role.
const (
	// Primary clouds replace a deleted node among its neighbors (Case 1) or
	// are the restructured clouds the deleted node belonged to (Case 2).
	Primary CloudKind = iota + 1
	// Secondary clouds connect bridge nodes of several primary clouds
	// (Case 2.1/2.2).
	Secondary
)

// String implements fmt.Stringer.
func (k CloudKind) String() string {
	switch k {
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	}
	return fmt.Sprintf("CloudKind(%d)", int(k))
}

// Sentinel errors.
var (
	ErrNodeExists   = errors.New("core: node already exists")
	ErrNodeMissing  = errors.New("core: node does not exist or was deleted")
	ErrBadNeighbor  = errors.New("core: insertion neighbor is not alive")
	ErrBadKappa     = errors.New("core: kappa must be an even integer >= 2")
	ErrSelfInsert   = errors.New("core: node cannot neighbor itself")
	ErrNilGraph     = errors.New("core: initial graph is nil")
	ErrReusedNodeID = errors.New("core: node IDs cannot be reused after deletion")
	// ErrPoisoned marks a State fail-stopped by a post-validation batch
	// failure: the state may be half applied, so it refuses further use.
	// See ApplyBatch's failure contract.
	ErrPoisoned = errors.New("core: state poisoned by failed batch apply")
)

// cloud is one expander cloud: a color, a kind, and the maintained wiring.
type cloud struct {
	id   ColorID
	kind CloudKind
	m    *expander.Maintainer
	// edges is the set of edges this cloud currently claims in the physical
	// graph; reconciled against m.EdgeSet() after every membership change.
	edges map[graph.Edge]struct{}
}

func (c *cloud) size() int { return c.m.Size() }

func (c *cloud) members() []graph.NodeID { return c.m.Members() }

func (c *cloud) contains(v graph.NodeID) bool { return c.m.Contains(v) }

// bridgeLink records the secondary duty of a bridge node: which primary
// cloud it represents (anchors) inside which secondary cloud. A node has at
// most one link — the paper's "any (bridge) node of a primary cloud can
// belong to at most one secondary cloud".
type bridgeLink struct {
	primary   ColorID
	secondary ColorID
}

// edgeClaim is the ownership record of one physical edge. Exactly one of
// black / non-empty colors holds: a cloud claim absorbs the black claim
// (paper's re-coloring), and the edge is removed when all claims are gone.
//
// Claims are stored by value in the claims map and colors is a small sorted
// slice: an edge rarely carries more than two colors, so this costs one
// allocation per claimed edge where a per-claim map cost three — claim churn
// is the allocation hot spot of every repair.
type edgeClaim struct {
	black  bool
	colors []ColorID // ascending; nil while black
}

func (c edgeClaim) empty() bool { return !c.black && len(c.colors) == 0 }

// hasColor reports whether the claim lists the given cloud color.
func (c edgeClaim) hasColor(color ColorID) bool {
	_, found := slices.BinarySearch(c.colors, color)
	return found
}

// withColor returns the claim with color added (absorbing any black claim).
func (c edgeClaim) withColor(color ColorID) edgeClaim {
	i, found := slices.BinarySearch(c.colors, color)
	if !found {
		c.colors = slices.Insert(c.colors, i, color)
	}
	c.black = false
	return c
}

// withoutColor returns the claim with color removed.
func (c edgeClaim) withoutColor(color ColorID) edgeClaim {
	if i, found := slices.BinarySearch(c.colors, color); found {
		c.colors = slices.Delete(c.colors, i, i+1)
	}
	return c
}

// Stats counts the healing work performed, for the cost experiments.
type Stats struct {
	// Insertions and Deletions count adversarial events processed.
	Insertions int
	Deletions  int
	// HealEdgesAdded / HealEdgesRemoved count physical edge changes made by
	// the healing algorithm (excluding edges removed by the adversary's node
	// deletions themselves).
	HealEdgesAdded   int
	HealEdgesRemoved int
	// PrimaryClouds / SecondaryClouds count cloud creations.
	PrimaryClouds   int
	SecondaryClouds int
	// Combines counts the expensive cloud-combination events the paper
	// amortizes; Shares counts free-node sharing events.
	Combines int
	Shares   int
}

// add accumulates o's counters; used when merging the per-scope stats of
// parallel repair groups back into the main state.
func (st *Stats) add(o Stats) {
	st.Insertions += o.Insertions
	st.Deletions += o.Deletions
	st.HealEdgesAdded += o.HealEdgesAdded
	st.HealEdgesRemoved += o.HealEdgesRemoved
	st.PrimaryClouds += o.PrimaryClouds
	st.SecondaryClouds += o.SecondaryClouds
	st.Combines += o.Combines
	st.Shares += o.Shares
}
