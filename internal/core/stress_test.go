package core

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// TestChurnLongStress runs extended adversarial mixes across seeds and
// kappas, checking every invariant after every event. Skipped with -short.
func TestChurnLongStress(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress test")
	}
	cases := []struct {
		name  string
		build func() *graph.Graph
		kappa int
		seed  int64
		bias  float64
	}{
		{"star-k2", func() *graph.Graph { return star(20) }, 2, 101, 0.55},
		{"star-k6", func() *graph.Graph { return star(20) }, 6, 102, 0.55},
		{"cycle-k4", func() *graph.Graph { return cycle(24) }, 4, 103, 0.5},
		{"complete-k4", func() *graph.Graph { return complete(16) }, 4, 104, 0.6},
		{"complete-k8", func() *graph.Graph { return complete(12) }, 8, 105, 0.45},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := mustState(t, Config{Kappa: tc.kappa, Seed: tc.seed}, tc.build())
			churnQuiet(t, s, 800, tc.seed*7+1, tc.bias)
		})
	}
}

// churnQuiet is like churn but checks invariants every few steps to keep the
// long runs affordable, and connectivity every step.
func churnQuiet(t *testing.T, s *State, steps int, seed int64, deleteBias float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	next := graph.NodeID(200000)
	for step := 0; step < steps; step++ {
		alive := s.AliveNodes()
		if len(alive) > 4 && rng.Float64() < deleteBias {
			victim := alive[rng.Intn(len(alive))]
			if err := s.DeleteNode(victim); err != nil {
				t.Fatalf("step %d delete %d: %v", step, victim, err)
			}
		} else {
			k := 1 + rng.Intn(3)
			if k > len(alive) {
				k = len(alive)
			}
			perm := rng.Perm(len(alive))[:k]
			nbrs := make([]graph.NodeID, 0, k)
			for _, i := range perm {
				nbrs = append(nbrs, alive[i])
			}
			if err := s.InsertNode(next, nbrs); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			next++
		}
		if !s.Graph().IsConnected() {
			t.Fatalf("step %d: disconnected", step)
		}
		if step%10 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d invariants: %v", step, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
}
