package core

import (
	"slices"

	"github.com/xheal/xheal/internal/graph"
)

// Batch-scoped delta export: the exact net structural change one applied
// batch made to the healed graph G and the baseline G′, in canonical order.
// The serving daemon feeds these to the incremental metrics tracker
// (internal/metrics/live) so health polls never rescan the graph.
//
// The accumulator nets adds against removes (an edge the tick wires and then
// drops contributes nothing), mirroring the per-repair deltaLog, but it also
// records the wound edges that die with each deleted node and the node set
// changes — DeleteNodeDelta excludes those by contract, a tracker needs them.

// TickDelta is the net structural change of one applied batch.
//
// Replaying it against the pre-batch graphs reproduces the post-batch
// graphs exactly: add NodesAdded to both G and G′, apply EdgesAdded/
// EdgesRemoved to G, add BaselineEdges to G′, then drop NodesRemoved from G
// (by then they have no incident edges left). All slices are sorted; node
// IDs never repeat across Added and Removed unless the same node was
// inserted and deleted within the batch, in which case it appears in both
// and its edges net to nothing.
type TickDelta struct {
	NodesAdded   []graph.NodeID
	NodesRemoved []graph.NodeID
	EdgesAdded   []graph.Edge // net physical additions to G
	EdgesRemoved []graph.Edge // net physical removals from G
	// BaselineEdges are the edges added to G′ (insertion attachments).
	// G′ never loses edges, so these are un-netted.
	BaselineEdges []graph.Edge
}

// Empty reports whether the delta carries no change.
func (d TickDelta) Empty() bool {
	return len(d.NodesAdded) == 0 && len(d.NodesRemoved) == 0 &&
		len(d.EdgesAdded) == 0 && len(d.EdgesRemoved) == 0 &&
		len(d.BaselineEdges) == 0
}

// tickAcc accumulates one batch's net changes while a delta capture is
// active (see BeginTickDelta).
type tickAcc struct {
	edges        map[graph.Edge]int8 // net G changes, add/remove cancelling
	nodesAdded   []graph.NodeID
	nodesRemoved []graph.NodeID
	baseEdges    []graph.Edge
}

// netDelta nets one physical edge change into m: an add cancels a pending
// remove of the same edge and vice versa.
func netDelta(m map[graph.Edge]int8, e graph.Edge, kind int8) {
	if m[e] == -kind {
		delete(m, e)
		return
	}
	m[e] = kind
}

// BeginTickDelta starts capturing the net structural changes of subsequent
// mutations; TakeTickDelta ends the capture and returns them. The pair
// brackets exactly one batch application — ApplyBatchDelta does this for
// the core engine, the distributed engine brackets its own ApplyBatch.
func (s *State) BeginTickDelta() {
	if s.tickSpare != nil {
		// Reuse last tick's accumulator: its map and struct survive; the
		// slices were handed out with the previous delta and restart nil.
		acc := s.tickSpare
		s.tickSpare = nil
		clear(acc.edges)
		acc.nodesAdded, acc.nodesRemoved, acc.baseEdges = nil, nil, nil
		s.tick = acc
		return
	}
	s.tick = &tickAcc{edges: make(map[graph.Edge]int8)}
}

// TakeTickDelta ends the capture started by BeginTickDelta and returns the
// accumulated delta with all slices in canonical sorted order.
func (s *State) TakeTickDelta() TickDelta {
	acc := s.tick
	s.tick = nil
	if acc == nil {
		return TickDelta{}
	}
	s.tickSpare = acc
	d := TickDelta{
		NodesAdded:    acc.nodesAdded,
		NodesRemoved:  acc.nodesRemoved,
		BaselineEdges: acc.baseEdges,
	}
	for e, kind := range acc.edges {
		if kind == deltaAdded {
			d.EdgesAdded = append(d.EdgesAdded, e)
		} else {
			d.EdgesRemoved = append(d.EdgesRemoved, e)
		}
	}
	slices.Sort(d.NodesAdded)
	slices.Sort(d.NodesRemoved)
	sortEdges(d.EdgesAdded)
	sortEdges(d.EdgesRemoved)
	sortEdges(d.BaselineEdges)
	return d
}

// noteNodeInserted records a successful insertion into the active capture.
func (s *State) noteNodeInserted(u graph.NodeID, nbrs []graph.NodeID) {
	if s.tick == nil {
		return
	}
	s.tick.nodesAdded = append(s.tick.nodesAdded, u)
	for _, w := range nbrs {
		e := graph.NewEdge(u, w)
		netDelta(s.tick.edges, e, deltaAdded)
		s.tick.baseEdges = append(s.tick.baseEdges, e)
	}
}

// noteNodeRemoved records a deletion and its wound edges into the active
// capture. DeleteNodeDelta's per-repair log excludes wound edges by
// contract; the batch capture must include them — they change degrees.
func (s *State) noteNodeRemoved(v graph.NodeID, wound []graph.NodeID) {
	if s.tick == nil {
		return
	}
	s.tick.nodesRemoved = append(s.tick.nodesRemoved, v)
	for _, w := range wound {
		netDelta(s.tick.edges, graph.NewEdge(v, w), deltaRemoved)
	}
}

// ApplyBatchDelta applies one batch — in parallel when workers > 1, serially
// otherwise — and returns the net structural change it made. The failure
// contract is ApplyBatch's; on error the returned delta is empty.
func (s *State) ApplyBatchDelta(b Batch, workers int) (TickDelta, error) {
	s.BeginTickDelta()
	var err error
	if workers > 1 {
		err = s.ApplyBatchParallel(b, workers)
	} else {
		err = s.ApplyBatch(b)
	}
	d := s.TakeTickDelta()
	if err != nil {
		return TickDelta{}, err
	}
	return d, nil
}
