package core

import "math/rand"

// CountedSource is a math/rand Source64 that counts how many values it has
// produced. That count is what makes full-state snapshots possible: the
// healing algorithm's private randomness (H-graph wiring, leader ranks) is a
// deterministic stream from the seed, so a snapshot only needs to record the
// seed and the number of values drawn so far; restoring re-seeds the stream
// and fast-forwards past the consumed prefix, after which every future draw
// is identical to the uncrashed run's.
//
// Both Int63 and Uint64 advance the underlying generator by exactly one
// step, so a single count captures the stream position regardless of which
// method each call site used.
type CountedSource struct {
	src   rand.Source64
	draws uint64
}

var _ rand.Source64 = (*CountedSource)(nil)

// NewCountedSource returns a counted source over math/rand's default
// generator seeded with seed. rand.New over it yields the exact value
// sequence of rand.New(rand.NewSource(seed)).
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *CountedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source. Re-seeding resets the draw count: the stream
// position is again 0 values past the (new) seed.
func (c *CountedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Draws returns the number of values produced since seeding.
func (c *CountedSource) Draws() uint64 { return c.draws }

// switchableSource is the one level of indirection between a State's
// *rand.Rand and the stream actually feeding it. Cloud maintainers capture
// the *rand.Rand pointer for their lifetime, so redirecting randomness for
// the duration of one repair (see deleteNode's per-repair sub-stream) must
// happen behind the Rand, not by handing out a different Rand.
//
// Not safe for concurrent use; each State (including the scoped states built
// by ApplyBatchParallel) owns exactly one.
type switchableSource struct {
	cur rand.Source64
}

var _ rand.Source64 = (*switchableSource)(nil)

func (w *switchableSource) Int63() int64  { return w.cur.Int63() }
func (w *switchableSource) Uint64() uint64 { return w.cur.Uint64() }
func (w *switchableSource) Seed(seed int64) { w.cur.Seed(seed) }

// Skip fast-forwards the stream by n values (used by snapshot restore to
// reach the recorded position).
func (c *CountedSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}
