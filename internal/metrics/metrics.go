package metrics

import (
	"math"
	"math/rand"

	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

// Unavailable marks metrics that were not computed (graph too large for the
// exact path, or skipped by configuration).
const Unavailable = -1

// Config controls measurement cost.
type Config struct {
	// StretchSources bounds the number of BFS sources used for stretch
	// estimation; 0 means all alive nodes (exact stretch).
	StretchSources int
	// SkipSpectral disables λ₂ and sweep-cut computation.
	SkipSpectral bool
	// SweepCuts additionally computes Fiedler sweep-cut witnesses
	// (SweepExpansion / SweepConductance). Off by default: the sweep needs
	// the full eigenvector — by far the most expensive spectral quantity —
	// and most consumers only read λ₂.
	SweepCuts bool
	// Rng seeds the spectral estimators; nil uses a fixed seed.
	Rng *rand.Rand
}

// Snapshot is one measurement of a healed graph G against its baseline G′.
type Snapshot struct {
	// Nodes and Edges describe G.
	Nodes int
	Edges int
	// Connected reports whether G is connected.
	Connected bool
	// MaxDegree is the maximum degree in G.
	MaxDegree int
	// MaxDegreeRatio is max over alive x of deg_G(x)/max(1, deg_G′(x)) —
	// the paper's degree-increase metric (Theorem 2.1 bounds it by ~κ).
	MaxDegreeRatio float64
	// MaxStretch is the maximum over measured alive pairs of
	// dist_G(u,v)/dist_G′(u,v) (Theorem 2.2 bounds it by O(log n)).
	MaxStretch float64
	// ExpansionExact is h(G) when exactly computable, else Unavailable.
	ExpansionExact float64
	// ConductanceExact is φ(G) when exactly computable, else Unavailable.
	ConductanceExact float64
	// SweepExpansion / SweepConductance are witness-cut upper bounds,
	// populated only when Config.SweepCuts is set (Unavailable otherwise).
	SweepExpansion   float64
	SweepConductance float64
	// Lambda2 is λ₂ of the combinatorial Laplacian of G.
	Lambda2 float64
	// Lambda2Norm is λ₂ of the normalized Laplacian of G.
	Lambda2Norm float64
}

// Measure computes a Snapshot of g against baseline gp (the insertions-only
// graph G′, which may contain deleted nodes).
func Measure(g, gp *graph.Graph, cfg Config) Snapshot {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	snap := Snapshot{
		Nodes:            g.NumNodes(),
		Edges:            g.NumEdges(),
		Connected:        g.IsConnected(),
		MaxDegree:        g.MaxDegree(),
		MaxDegreeRatio:   DegreeRatio(g, gp),
		MaxStretch:       Stretch(g, gp, cfg.StretchSources, rng),
		ExpansionExact:   Unavailable,
		ConductanceExact: Unavailable,
		SweepExpansion:   Unavailable,
		SweepConductance: Unavailable,
	}
	if g.NumNodes() >= 2 && g.NumNodes() <= cuts.ExactLimit {
		if h, err := cuts.EdgeExpansion(g); err == nil {
			snap.ExpansionExact = h
		}
		if phi, err := cuts.Conductance(g); err == nil {
			snap.ConductanceExact = phi
		}
	}
	if !cfg.SkipSpectral && g.NumNodes() >= 2 {
		snap.Lambda2 = spectral.AlgebraicConnectivity(g, rng)
		snap.Lambda2Norm = spectral.NormalizedAlgebraicConnectivity(g, rng)
		if cfg.SweepCuts && snap.Connected {
			phi, h := cuts.SweepCut(g, rng)
			snap.SweepConductance = phi
			snap.SweepExpansion = h
		}
	}
	return snap
}

// DegreeRatio returns max over nodes x alive in g of
// deg_g(x) / max(1, deg_gp(x)).
func DegreeRatio(g, gp *graph.Graph) float64 {
	worst := 0.0
	g.ForEachNode(func(n graph.NodeID) {
		base := gp.Degree(n)
		if base < 1 {
			base = 1
		}
		if r := float64(g.Degree(n)) / float64(base); r > worst {
			worst = r
		}
	})
	return worst
}

// Stretch returns the maximum ratio dist_g(u,v)/dist_gp(u,v) over pairs of
// nodes alive in g, using BFS from up to maxSources sources (0 = all). Pairs
// unreachable in either graph are skipped; if g is disconnected while gp
// connects a pair, +Inf is returned.
func Stretch(g, gp *graph.Graph, maxSources int, rng *rand.Rand) float64 {
	alive := g.Nodes()
	if len(alive) < 2 {
		return 1
	}
	sources := alive
	if maxSources > 0 && maxSources < len(alive) {
		sources = sampleSources(alive, maxSources, rng)
	}
	worst := 1.0
	for _, src := range sources {
		dg := g.BFSFrom(src)
		dp := gp.BFSFrom(src)
		for _, dst := range alive {
			if dst == src {
				continue
			}
			base, okp := dp[dst]
			if !okp || base == 0 {
				continue
			}
			healed, okg := dg[dst]
			if !okg {
				return math.Inf(1)
			}
			if r := float64(healed) / float64(base); r > worst {
				worst = r
			}
		}
	}
	return worst
}

// sampleSources draws k distinct nodes uniformly from alive via a partial
// Fisher–Yates shuffle. alive is a cached read-only view, so the shuffle's
// displacements live in a sparse map: O(k) space and allocations instead of
// the O(n) permutation this used to build to pick a handful of sources.
func sampleSources(alive []graph.NodeID, k int, rng *rand.Rand) []graph.NodeID {
	out := make([]graph.NodeID, k)
	moved := make(map[int]int, 2*k)
	n := len(alive)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := moved[j]
		if !ok {
			vj = j
		}
		vi, ok := moved[i]
		if !ok {
			vi = i
		}
		out[i] = alive[vj]
		moved[j] = vi
	}
	return out
}

// StretchBound returns the reference envelope c·log2(n) the harness plots
// against measured stretch (Theorem 2.2's O(log n), with explicit constant).
func StretchBound(n int, c float64) float64 {
	if n < 2 {
		return 1
	}
	return c * math.Log2(float64(n))
}

// DegreeBoundRatio returns the paper's Theorem 2.1 envelope expressed as a
// ratio: (κ·d′ + 2κ)/d′ for the worst (smallest) d′ = 1, i.e. 3κ.
func DegreeBoundRatio(kappa int) float64 { return float64(3 * kappa) }

// SpectralFloor returns the paper's Theorem 2.4 lower-bound envelope
//
//	min( λ′²·dmin′/(κ²·dmax′²), 1/(κ·dmax′)² )
//
// up to the theorem's implied constant (taken as 1/8, from its proof).
func SpectralFloor(lambdaPrime float64, dminPrime, dmaxPrime, kappa int) float64 {
	if dmaxPrime == 0 || kappa == 0 {
		return 0
	}
	k2 := float64(kappa * kappa)
	dmax2 := float64(dmaxPrime * dmaxPrime)
	a := lambdaPrime * lambdaPrime * float64(dminPrime) / (k2 * dmax2)
	b := 1 / (k2 * dmax2)
	return math.Min(a, b) / 8
}
