package live

import (
	"math/rand"
	"sync"
	"time"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

// Default Krylov step counts: cold matches spectral.AlgebraicConnectivity's
// budget; warm restarts from the previous Ritz vector and needs far fewer
// steps to re-converge on a graph that moved by a few edges.
const (
	coldLanczosSteps = 90
	warmLanczosSteps = 32
)

// Lambda2Cache is a warm-started λ₂ estimator over CSR snapshots. It keeps
// the previous refresh's Ritz vector keyed by node order; a refresh remaps
// it onto the new snapshot's ordering (surviving nodes keep their values,
// new nodes start at zero) and re-converges from there. Refreshes are
// driven by the serving daemon's refresh cycle; Value is O(1) and never
// blocks behind an in-flight iteration.
type Lambda2Cache struct {
	mu  sync.Mutex
	rng *rand.Rand

	prevNodes []graph.NodeID // node ordering of prevVec (sorted)
	prevVec   []float64      // last Ritz vector, unit norm
	haveVec   bool

	lambda float64
	valid  bool
	gen    uint64 // graph generation the estimate reflects
	tick   uint64 // tick the estimate reflects

	refreshes   uint64
	warmCount   uint64
	lastSeconds float64
	lastWarm    bool
}

// Lambda2Stats is refresh telemetry for health and benchmarks.
type Lambda2Stats struct {
	Refreshes     uint64
	WarmRefreshes uint64
	// LastSeconds is the wall time of the most recent Lanczos run;
	// LastWarm reports whether it started from the cached Ritz vector.
	LastSeconds float64
	LastWarm    bool
}

// NewLambda2Cache builds an empty cache; seed fixes the cold-start vector
// draws for reproducibility.
func NewLambda2Cache(seed int64) *Lambda2Cache {
	return &Lambda2Cache{rng: rand.New(rand.NewSource(seed))}
}

// Generation returns the graph generation of the current estimate; a
// refresher skips recomputation entirely while the live graph still
// carries this generation.
func (c *Lambda2Cache) Generation() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen, c.valid
}

// Value returns the cached λ₂ estimate and the tick it reflects.
func (c *Lambda2Cache) Value() (lambda float64, asOf uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lambda, c.tick, c.valid
}

// Stats returns refresh telemetry.
func (c *Lambda2Cache) Stats() Lambda2Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Lambda2Stats{
		Refreshes:     c.refreshes,
		WarmRefreshes: c.warmCount,
		LastSeconds:   c.lastSeconds,
		LastWarm:      c.lastWarm,
	}
}

// Refresh re-estimates λ₂ from a CSR snapshot taken at (gen, tick).
// connected is the snapshot's connectivity verdict: λ₂ of a disconnected
// graph is 0 and needs no iteration (and the cached Ritz vector is dropped
// — it spans the wrong space once components merge back). Single-caller
// (the refresh goroutine); Value readers are never blocked by the Lanczos
// run itself.
func (c *Lambda2Cache) Refresh(op *spectral.CSR, connected bool, gen, tick uint64) {
	if !connected || len(op.Nodes) < 2 {
		c.mu.Lock()
		c.lambda = 0
		c.valid = true
		c.haveVec = false
		c.prevNodes, c.prevVec = nil, nil
		c.gen, c.tick = gen, tick
		c.refreshes++
		c.lastSeconds, c.lastWarm = 0, false
		c.mu.Unlock()
		return
	}

	c.mu.Lock()
	var start []float64
	warm := false
	if c.haveVec {
		start = remapVector(op.Nodes, c.prevNodes, c.prevVec)
		warm = start != nil
	}
	rng := c.rng
	c.mu.Unlock()

	steps := coldLanczosSteps
	if warm {
		steps = warmLanczosSteps
	}
	began := time.Now()
	lambda, ritz, err := spectral.Lambda2Warm(op, start, steps, rng)
	elapsed := time.Since(began).Seconds()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshes++
	c.lastSeconds, c.lastWarm = elapsed, warm
	if warm {
		c.warmCount++
	}
	if err != nil {
		// Krylov breakdown: keep the previous estimate, drop the vector.
		c.haveVec = false
		return
	}
	c.lambda = lambda
	c.valid = true
	c.gen, c.tick = gen, tick
	c.prevNodes, c.prevVec = op.Nodes, ritz
	c.haveVec = ritz != nil
}

// remapVector carries the previous Ritz vector onto a new sorted node
// ordering: surviving nodes keep their component, new nodes start at 0.
// Returns nil when fewer than half the nodes carry over — a start vector
// that sparse converges no faster than a random one.
func remapVector(nodes, prevNodes []graph.NodeID, prevVec []float64) []float64 {
	out := make([]float64, len(nodes))
	matched := 0
	j := 0
	for i, n := range nodes {
		for j < len(prevNodes) && prevNodes[j] < n {
			j++
		}
		if j < len(prevNodes) && prevNodes[j] == n {
			out[i] = prevVec[j]
			matched++
		}
	}
	if matched*2 < len(nodes) {
		return nil
	}
	return out
}
