package live

import (
	"fmt"
	"sync"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
)

// Tracker maintains the cheap-but-global serving metrics incrementally from
// applied batch deltas: node and edge counts, maximum degree, the paper's
// maximum degree ratio deg_G/max(1, deg_G′), and a connectivity verdict
// with staleness. All values except connectivity are exact after every
// Apply; connectivity is exact whenever ConnectivityAgeTicks is 0 and
// last-known otherwise.
type Tracker struct {
	mu    sync.RWMutex
	nodes int
	edges int

	degG  map[graph.NodeID]int32 // degree in G, alive nodes only
	degGp map[graph.NodeID]int32 // degree in G′, alive nodes only

	degCount []int32 // degCount[d] = alive nodes with deg_G == d
	maxDeg   int

	ratioCount map[float64]int32 // ratio value → alive nodes at that ratio
	maxRatio   float64

	connected bool
	connDirty bool
	connTick  uint64 // tick the verdict was established for

	ticks uint64 // applied ticks observed

	audits        uint64
	auditFails    uint64
	lastAuditTick uint64
}

// Values is one consistent read of the tracked metrics.
type Values struct {
	Nodes          int
	Edges          int
	MaxDegree      int
	MaxDegreeRatio float64
	// Connected is the last established verdict; it is current when
	// ConnectivityAgeTicks is 0 and ConnectivityAgeTicks ticks old
	// otherwise.
	Connected            bool
	ConnectivityAgeTicks uint64
	// Ticks is the number of deltas applied to the tracker.
	Ticks uint64
	// Audit telemetry (see Audit).
	Audits        uint64
	AuditFailures uint64
	LastAuditTick uint64
}

// NewTracker seeds a tracker from the engine's graphs: one O(n+m) scan plus
// one connectivity traversal, paid once at daemon start.
func NewTracker(g, gp *graph.Graph) *Tracker {
	t := &Tracker{
		degG:       make(map[graph.NodeID]int32, g.NumNodes()),
		degGp:      make(map[graph.NodeID]int32, g.NumNodes()),
		ratioCount: make(map[float64]int32),
		nodes:      g.NumNodes(),
		edges:      g.NumEdges(),
		connected:  g.IsConnected(),
	}
	g.ForEachNode(func(n graph.NodeID) {
		d, dp := int32(g.Degree(n)), int32(gp.Degree(n))
		t.degG[n] = d
		t.degGp[n] = dp
		t.bumpDeg(int(d), +1)
		t.bumpRatio(degRatio(d, dp), +1)
	})
	return t
}

// degRatio mirrors metrics.DegreeRatio's per-node expression exactly, so
// tracked ratios are bit-identical to the full recomputation.
func degRatio(dg, dgp int32) float64 {
	base := dgp
	if base < 1 {
		base = 1
	}
	return float64(dg) / float64(base)
}

// Apply folds one applied batch's net delta into the tracker. Call once per
// applied tick, in application order, under the serving lock.
func (t *Tracker) Apply(d core.TickDelta) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ticks++
	for _, u := range d.NodesAdded {
		t.degG[u] = 0
		t.degGp[u] = 0
		t.bumpDeg(0, +1)
		t.bumpRatio(0, +1)
	}
	for _, e := range d.BaselineEdges {
		t.addBaseDeg(e.U)
		t.addBaseDeg(e.V)
	}
	for _, e := range d.EdgesAdded {
		t.addDeg(e.U, +1)
		t.addDeg(e.V, +1)
	}
	for _, e := range d.EdgesRemoved {
		t.addDeg(e.U, -1)
		t.addDeg(e.V, -1)
	}
	for _, v := range d.NodesRemoved {
		dg, dgp := t.degG[v], t.degGp[v]
		t.bumpDeg(int(dg), -1)
		t.bumpRatio(degRatio(dg, dgp), -1)
		delete(t.degG, v)
		delete(t.degGp, v)
	}
	t.nodes += len(d.NodesAdded) - len(d.NodesRemoved)
	t.edges += len(d.EdgesAdded) - len(d.EdgesRemoved)

	// Connectivity: inserting a node attached to the connected component
	// cannot disconnect a connected graph, so pure-growth ticks keep the
	// verdict current. Removals — and any change at all while already
	// disconnected (an insert can bridge components) — stale it.
	if len(d.NodesRemoved) > 0 || len(d.EdgesRemoved) > 0 || !t.connected {
		t.connDirty = true
	} else if !t.connDirty {
		t.connTick = t.ticks
	}
}

// addDeg shifts n's healed-graph degree by delta, maintaining the degree
// histogram and the ratio index.
func (t *Tracker) addDeg(n graph.NodeID, delta int32) {
	old, ok := t.degG[n]
	if !ok {
		return // endpoint died earlier in the same delta walk
	}
	dgp := t.degGp[n]
	t.bumpDeg(int(old), -1)
	t.bumpRatio(degRatio(old, dgp), -1)
	t.degG[n] = old + delta
	t.bumpDeg(int(old+delta), +1)
	t.bumpRatio(degRatio(old+delta, dgp), +1)
}

// addBaseDeg shifts n's baseline degree up by one (G′ only grows).
func (t *Tracker) addBaseDeg(n graph.NodeID) {
	old, ok := t.degGp[n]
	if !ok {
		return
	}
	dg := t.degG[n]
	t.bumpRatio(degRatio(dg, old), -1)
	t.degGp[n] = old + 1
	t.bumpRatio(degRatio(dg, old+1), +1)
}

// bumpDeg adjusts the degree histogram and tracked maximum.
func (t *Tracker) bumpDeg(d int, delta int32) {
	for d >= len(t.degCount) {
		t.degCount = append(t.degCount, 0)
	}
	t.degCount[d] += delta
	if delta > 0 && d > t.maxDeg {
		t.maxDeg = d
	}
	if delta < 0 && d == t.maxDeg && t.degCount[d] == 0 {
		for t.maxDeg > 0 && t.degCount[t.maxDeg] == 0 {
			t.maxDeg--
		}
	}
}

// bumpRatio adjusts the ratio index and tracked maximum. Distinct ratio
// values are few (degrees are bounded by the paper's Theorem 2.1), so the
// occasional rescan when the maximum empties is cheap.
func (t *Tracker) bumpRatio(r float64, delta int32) {
	c := t.ratioCount[r] + delta
	if c == 0 {
		delete(t.ratioCount, r)
	} else {
		t.ratioCount[r] = c
	}
	if delta > 0 && r > t.maxRatio {
		t.maxRatio = r
	}
	if delta < 0 && r == t.maxRatio && c == 0 {
		t.maxRatio = 0
		for k := range t.ratioCount {
			if k > t.maxRatio {
				t.maxRatio = k
			}
		}
	}
}

// ResolveConnectivity installs a connectivity verdict established by a
// traversal of the graph as of tick asOf (the refresh cycle's CSR BFS).
// Ticks applied after the snapshot keep the verdict dirty.
func (t *Tracker) ResolveConnectivity(connected bool, asOf uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.connected = connected
	t.connTick = asOf
	t.connDirty = t.ticks > asOf
}

// Values returns one consistent snapshot of the tracked metrics.
func (t *Tracker) Values() Values {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v := Values{
		Nodes:          t.nodes,
		Edges:          t.edges,
		MaxDegree:      t.maxDeg,
		MaxDegreeRatio: t.maxRatio,
		Connected:      t.connected,
		Ticks:          t.ticks,
		Audits:         t.audits,
		AuditFailures:  t.auditFails,
		LastAuditTick:  t.lastAuditTick,
	}
	if t.connDirty {
		age := t.ticks - t.connTick
		if age == 0 {
			age = 1 // dirtied this tick; never report stale as current
		}
		v.ConnectivityAgeTicks = age
	}
	return v
}

// Audit recomputes every tracked value from the graphs — the correctness
// oracle — and fails loudly on any mismatch. The caller must guarantee g
// and gp reflect exactly the deltas applied so far (the serving daemon
// audits under its apply lock). A successful audit also re-establishes the
// connectivity verdict.
func (t *Tracker) Audit(g, gp *graph.Graph) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.audits++
	t.lastAuditTick = t.ticks
	conn := g.IsConnected()
	var err error
	switch {
	case g.NumNodes() != t.nodes:
		err = fmt.Errorf("nodes: tracked %d, measured %d", t.nodes, g.NumNodes())
	case g.NumEdges() != t.edges:
		err = fmt.Errorf("edges: tracked %d, measured %d", t.edges, g.NumEdges())
	case g.MaxDegree() != t.maxDeg:
		err = fmt.Errorf("max degree: tracked %d, measured %d", t.maxDeg, g.MaxDegree())
	case metrics.DegreeRatio(g, gp) != t.maxRatio:
		err = fmt.Errorf("max degree ratio: tracked %v, measured %v", t.maxRatio, metrics.DegreeRatio(g, gp))
	case !t.connDirty && conn != t.connected:
		err = fmt.Errorf("connectivity: tracked %v as current, measured %v", t.connected, conn)
	}
	if err != nil {
		t.auditFails++
		return fmt.Errorf("live tracker audit (tick %d): %w", t.ticks, err)
	}
	t.connected = conn
	t.connDirty = false
	t.connTick = t.ticks
	return nil
}
