package live

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
	"github.com/xheal/xheal/internal/workload"
)

// TestLambda2CacheStaleness pins the staleness contract: the cached value
// carries the tick of the snapshot it was computed from, a matching
// generation skips recomputation, and a refresh after churn re-converges
// warm onto the right eigenvalue.
func TestLambda2CacheStaleness(t *testing.T) {
	g, err := workload.RandomRegular(300, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	c := NewLambda2Cache(1)

	if _, _, ok := c.Value(); ok {
		t.Fatal("empty cache claims validity")
	}

	csr := spectral.NewCSR(g)
	c.Refresh(csr, true, g.Generation(), 10)
	lambda, asOf, ok := c.Value()
	if !ok || asOf != 10 {
		t.Fatalf("after refresh: lambda=%v asOf=%d ok=%v", lambda, asOf, ok)
	}
	want := spectral.AlgebraicConnectivity(g, rand.New(rand.NewSource(1)))
	if math.Abs(lambda-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("cold cache lambda2 = %v, AlgebraicConnectivity = %v", lambda, want)
	}
	if gen, ok := c.Generation(); !ok || gen != g.Generation() {
		t.Fatalf("generation = %d/%v, want %d/true", gen, ok, g.Generation())
	}
	if st := c.Stats(); st.Refreshes != 1 || st.LastWarm {
		t.Fatalf("first refresh stats: %+v", st)
	}

	// Churn the graph a little; a warm refresh must still land on the true
	// eigenvalue of the new graph and stamp the new tick.
	rng := rand.New(rand.NewSource(4))
	nodes := g.Nodes()
	for i := 0; i < 10; i++ {
		u := nodes[rng.Intn(len(nodes))]
		v := nodes[rng.Intn(len(nodes))]
		if u != v && !g.HasEdge(u, v) {
			g.EnsureEdge(u, v)
		}
	}
	csr2 := spectral.NewCSR(g)
	c.Refresh(csr2, true, g.Generation(), 25)
	lambda2, asOf2, _ := c.Value()
	if asOf2 != 25 {
		t.Fatalf("staleness watermark not advanced: asOf=%d, want 25", asOf2)
	}
	// The warm run uses a third of the cold step count; it converges to a
	// few parts in 10⁶ of the full-budget reference, not bit-equality.
	want2 := spectral.AlgebraicConnectivity(g, rand.New(rand.NewSource(1)))
	if math.Abs(lambda2-want2) > 1e-4*math.Max(1, want2) {
		t.Fatalf("warm refresh lambda2 = %v, AlgebraicConnectivity = %v", lambda2, want2)
	}
	if st := c.Stats(); !st.LastWarm || st.WarmRefreshes != 1 {
		t.Fatalf("second refresh should have warm-started: %+v", st)
	}
}

// TestLambda2CacheDisconnected pins λ₂ = 0 with no iteration for a
// disconnected snapshot, and the cold restart after components merge back.
func TestLambda2CacheDisconnected(t *testing.T) {
	g := graph.New()
	for i := graph.NodeID(0); i < 6; i++ {
		g.EnsureNode(i)
	}
	g.EnsureEdge(0, 1)
	g.EnsureEdge(2, 3)
	c := NewLambda2Cache(1)
	c.Refresh(spectral.NewCSR(g), false, g.Generation(), 3)
	lambda, asOf, ok := c.Value()
	if !ok || lambda != 0 || asOf != 3 {
		t.Fatalf("disconnected: lambda=%v asOf=%d ok=%v, want 0/3/true", lambda, asOf, ok)
	}
	// Reconnect; the dropped Ritz vector forces a cold (but correct) run.
	g.EnsureEdge(1, 2)
	g.EnsureEdge(3, 4)
	g.EnsureEdge(4, 5)
	g.EnsureEdge(5, 0)
	c.Refresh(spectral.NewCSR(g), true, g.Generation(), 5)
	lambda, _, _ = c.Value()
	if lambda <= 0 {
		t.Fatalf("reconnected graph: lambda=%v, want > 0", lambda)
	}
	if st := c.Stats(); st.LastWarm {
		t.Fatal("refresh after disconnection warm-started from a dropped vector")
	}
}

// TestStretchSamplerTracksChurn drives churn through the engine and checks
// the sampled estimate stays within the true stretch bounds whenever the
// trees are fresh: each cached tree's stretch is a lower bound on the exact
// max stretch, and ages are reported honestly.
func TestStretchSamplerTracksChurn(t *testing.T) {
	g0, err := workload.RandomRegular(40, 2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 2}, g0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStretchSampler(3, 4, 1)
	var tick uint64

	refresh := func() {
		s.Refresh(spectral.NewCSR(st.Graph()), spectral.NewCSR(st.Baseline()), tick)
	}
	refresh()
	if _, _, ok := s.Value(tick); !ok {
		t.Fatal("sampler not valid after first refresh")
	}

	adv := rand.New(rand.NewSource(8))
	next := graph.NodeID(1000)
	for i := 0; i < 60; i++ {
		var b core.Batch
		alive := st.Graph().Nodes()
		if adv.Float64() < 0.45 && len(alive) > 4 {
			b.Deletions = []graph.NodeID{alive[adv.Intn(len(alive))]}
		} else {
			b.Insertions = []core.BatchInsertion{{Node: next,
				Neighbors: []graph.NodeID{alive[adv.Intn(len(alive))]}}}
			next++
		}
		if st.ValidateBatch(b) != nil {
			continue
		}
		d, err := st.ApplyBatchDelta(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		tick++
		s.Observe(d)
		if s.NeedsRefresh(tick) {
			refresh()
		}
		got, age, ok := s.Value(tick)
		if !ok {
			t.Fatalf("tick %d: sampler lost validity", tick)
		}
		if age > 4 {
			t.Fatalf("tick %d: tree age %d exceeds maxAge 4 right after refresh check", tick, age)
		}
		if age == 0 {
			// Fresh trees: every cached source's stretch is exact for that
			// source, so the sampled max is a lower bound on the exact max
			// and at least 1.
			exact := exactStretch(st.Graph(), st.Baseline())
			if got < 1 || got > exact+1e-12 {
				t.Fatalf("tick %d: sampled stretch %v outside [1, exact %v]", tick, got, exact)
			}
		}
	}
}

// exactStretch is the all-sources reference (metrics.Stretch with
// maxSources=0 semantics, recomputed here over clones for isolation).
func exactStretch(g, gp *graph.Graph) float64 {
	worst := 1.0
	for _, src := range g.Nodes() {
		dg := g.BFSFrom(src)
		dp := gp.BFSFrom(src)
		for _, dst := range g.Nodes() {
			if dst == src {
				continue
			}
			base, okp := dp[dst]
			if !okp || base == 0 {
				continue
			}
			healed, okg := dg[dst]
			if !okg {
				return math.Inf(1)
			}
			if r := float64(healed) / float64(base); r > worst {
				worst = r
			}
		}
	}
	return worst
}
