package live

import (
	"math"
	"math/rand"
	"slices"
	"sync"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

// stretchTree caches the two BFS distance arrays (healed graph G and
// baseline G′) from one source, aligned to the CSR node orderings they were
// built from. Distances are -1 for unreachable.
type stretchTree struct {
	src graph.NodeID

	nodes []graph.NodeID // G ordering at build time (sorted)
	dg    []int32

	pnodes []graph.NodeID // G′ ordering at build time (sorted)
	dp     []int32

	stretch float64
	built   bool
	dirty   bool
	builtAt uint64 // tracker tick of the snapshot the tree was built from
}

// StretchSampler estimates the paper's max-stretch metric from a reservoir
// of BFS sources with cached trees. Observe screens each applied delta
// against every cached tree and only marks a tree for rebuild when the
// delta could have changed its distances; Refresh rebuilds marked (or
// over-age) trees from CSR snapshots, BFS outside any lock the serving
// path holds. Between refreshes the value is an estimate and carries its
// age in ticks.
type StretchSampler struct {
	mu     sync.Mutex
	rng    *rand.Rand
	maxAge uint64
	trees  []*stretchTree
}

// NewStretchSampler builds a sampler with k source slots; each tree is also
// rebuilt unconditionally once it is maxAge ticks old, bounding how long
// the screened-delta estimate can drift. seed fixes source draws.
func NewStretchSampler(k int, maxAge uint64, seed int64) *StretchSampler {
	if k < 1 {
		k = 1
	}
	if maxAge < 1 {
		maxAge = 1
	}
	s := &StretchSampler{
		rng:    rand.New(rand.NewSource(seed)),
		maxAge: maxAge,
		trees:  make([]*stretchTree, k),
	}
	for i := range s.trees {
		s.trees[i] = &stretchTree{dirty: true}
	}
	return s
}

// Observe screens one applied delta against the cached trees, marking any
// tree whose distances the delta could have changed. O(k·|delta|·log n);
// called from the serving apply path, so it must stay cheap.
func (s *StretchSampler) Observe(d core.TickDelta) {
	if d.Empty() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.trees {
		if !t.built || t.dirty {
			continue
		}
		if t.touchedBy(d) {
			t.dirty = true
		}
	}
}

// touchedBy reports whether the delta could change t's distances (or its
// validity — a dead source). Conservative: false positives only cost a
// rebuild; false negatives are bounded by the sampler's age cap.
func (t *stretchTree) touchedBy(d core.TickDelta) bool {
	if _, dead := slices.BinarySearch(d.NodesRemoved, t.src); dead {
		return true
	}
	for _, e := range d.EdgesRemoved {
		du, okU := t.distG(e.U)
		dw, okW := t.distG(e.V)
		if !okU || !okW || du < 0 || dw < 0 {
			// Endpoint unknown to the tree (inserted after build) or
			// unreachable: the tree never counted paths through this edge.
			continue
		}
		if du-dw == 1 || dw-du == 1 {
			return true // possible shortest-path tree edge
		}
	}
	for _, e := range d.EdgesAdded {
		du, okU := t.distG(e.U)
		dw, okW := t.distG(e.V)
		if !okU || !okW {
			continue // attachment of a new node; counted from next rebuild
		}
		if du < 0 || dw < 0 {
			return true // reconnects an unreachable region
		}
		if du-dw >= 2 || dw-du >= 2 {
			return true // shortcut across BFS levels
		}
	}
	for _, e := range d.BaselineEdges {
		du, okU := t.distGp(e.U)
		dw, okW := t.distGp(e.V)
		if !okU || !okW {
			continue
		}
		if du < 0 || dw < 0 {
			return true
		}
		if du-dw >= 2 || dw-du >= 2 {
			return true // baseline shortcut shrinks denominators
		}
	}
	return false
}

func (t *stretchTree) distG(n graph.NodeID) (int32, bool) {
	i, ok := slices.BinarySearch(t.nodes, n)
	if !ok {
		return 0, false
	}
	return t.dg[i], true
}

func (t *stretchTree) distGp(n graph.NodeID) (int32, bool) {
	i, ok := slices.BinarySearch(t.pnodes, n)
	if !ok {
		return 0, false
	}
	return t.dp[i], true
}

// NeedsRefresh reports whether any tree is marked dirty or past its age
// bound at the given tick.
func (s *StretchSampler) NeedsRefresh(tick uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.trees {
		if !t.built || t.dirty || tick-t.builtAt >= s.maxAge {
			return true
		}
	}
	return false
}

// Refresh rebuilds every dirty or over-age tree from the CSR snapshots
// taken at tick. The BFS work runs outside the sampler lock; deltas applied
// between snapshot and publish are missed until the age bound forces the
// next rebuild — acceptable for an estimator that advertises its age.
func (s *StretchSampler) Refresh(csrG, csrGp *spectral.CSR, tick uint64) {
	if len(csrG.Nodes) == 0 {
		return
	}
	s.mu.Lock()
	var rebuild []int
	for i, t := range s.trees {
		if !t.built || t.dirty || tick-t.builtAt >= s.maxAge {
			rebuild = append(rebuild, i)
		}
	}
	sources := make([]graph.NodeID, len(rebuild))
	for j, i := range rebuild {
		src := s.trees[i].src
		if _, alive := slices.BinarySearch(csrG.Nodes, src); !alive || !s.trees[i].built {
			src = csrG.Nodes[s.rng.Intn(len(csrG.Nodes))]
		}
		sources[j] = src
	}
	s.mu.Unlock()

	fresh := make([]*stretchTree, len(rebuild))
	for j, src := range sources {
		fresh[j] = buildStretchTree(csrG, csrGp, src, tick)
	}

	s.mu.Lock()
	for j, i := range rebuild {
		s.trees[i] = fresh[j]
	}
	s.mu.Unlock()
}

// buildStretchTree BFSes src in both snapshots and computes the tree's max
// stretch with the same pair semantics as metrics.Stretch: pairs with no
// baseline path (or baseline distance 0) are skipped, and a pair reachable
// in G′ but not in G yields +Inf.
func buildStretchTree(csrG, csrGp *spectral.CSR, src graph.NodeID, tick uint64) *stretchTree {
	t := &stretchTree{
		src:     src,
		nodes:   csrG.Nodes,
		pnodes:  csrGp.Nodes,
		built:   true,
		builtAt: tick,
		stretch: 1,
	}
	gi, ok := slices.BinarySearch(csrG.Nodes, src)
	if !ok {
		t.dirty = true // source vanished between snapshot and build
		return t
	}
	t.dg = csrBFS(csrG, gi)
	if pi, ok := slices.BinarySearch(csrGp.Nodes, src); ok {
		t.dp = csrBFS(csrGp, pi)
	} else {
		t.dp = make([]int32, len(csrGp.Nodes))
		for i := range t.dp {
			t.dp[i] = -1
		}
	}

	// Walk alive nodes (G ordering) and join against the baseline ordering:
	// both are sorted, so one two-pointer merge covers every pair (src, dst).
	j := 0
	for i, dst := range t.nodes {
		if dst == src {
			continue
		}
		for j < len(t.pnodes) && t.pnodes[j] < dst {
			j++
		}
		if j >= len(t.pnodes) || t.pnodes[j] != dst {
			continue // not in baseline snapshot
		}
		base := t.dp[j]
		if base <= 0 {
			continue // unreachable in G′, or degenerate
		}
		healed := t.dg[i]
		if healed < 0 {
			t.stretch = math.Inf(1)
			return t
		}
		if r := float64(healed) / float64(base); r > t.stretch {
			t.stretch = r
		}
	}
	return t
}

// csrBFS returns BFS distances from row src in index space, -1 for
// unreachable rows.
func csrBFS(a *spectral.CSR, src int) []int32 {
	dist := make([]int32, len(a.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, len(a.Nodes))
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range a.Row(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Value returns the max stretch over the cached trees and the age in ticks
// of the oldest tree, given the current tick. ok is false until every slot
// has been built at least once.
func (s *StretchSampler) Value(tick uint64) (stretch float64, ageTicks uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stretch = 1
	for _, t := range s.trees {
		if !t.built {
			return 0, 0, false
		}
		if t.stretch > stretch {
			stretch = t.stretch
		}
		if age := tick - t.builtAt; age > ageTicks {
			ageTicks = age
		}
	}
	return stretch, ageTicks, true
}

// Sources returns the current source reservoir (for tests and debugging).
func (s *StretchSampler) Sources() []graph.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]graph.NodeID, 0, len(s.trees))
	for _, t := range s.trees {
		if t.built {
			out = append(out, t.src)
		}
	}
	return out
}
