package live

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/workload"
)

// checkAgainstOracle compares every tracked value against the full
// recomputation after one applied tick.
func checkAgainstOracle(t *testing.T, tr *Tracker, g, gp *graph.Graph, tick int) {
	t.Helper()
	v := tr.Values()
	if v.Nodes != g.NumNodes() {
		t.Fatalf("tick %d: tracker nodes %d, graph %d", tick, v.Nodes, g.NumNodes())
	}
	if v.Edges != g.NumEdges() {
		t.Fatalf("tick %d: tracker edges %d, graph %d", tick, v.Edges, g.NumEdges())
	}
	if v.MaxDegree != g.MaxDegree() {
		t.Fatalf("tick %d: tracker max degree %d, graph %d", tick, v.MaxDegree, g.MaxDegree())
	}
	if want := metrics.DegreeRatio(g, gp); v.MaxDegreeRatio != want {
		t.Fatalf("tick %d: tracker degree ratio %v, metrics.DegreeRatio %v", tick, v.MaxDegreeRatio, want)
	}
	if v.ConnectivityAgeTicks == 0 && v.Connected != g.IsConnected() {
		t.Fatalf("tick %d: tracker claims connectivity %v is current, graph says %v",
			tick, v.Connected, g.IsConnected())
	}
}

// checkAgainstMeasure ties the tracker to the full metrics.Measure pass the
// slow health path runs.
func checkAgainstMeasure(t *testing.T, tr *Tracker, g, gp *graph.Graph, tick int) {
	t.Helper()
	snap := metrics.Measure(g.Clone(), gp.Clone(), metrics.Config{
		SkipSpectral:   true,
		StretchSources: 1,
		Rng:            rand.New(rand.NewSource(7)),
	})
	v := tr.Values()
	if v.Nodes != snap.Nodes || v.Edges != snap.Edges ||
		v.MaxDegree != snap.MaxDegree || v.MaxDegreeRatio != snap.MaxDegreeRatio {
		t.Fatalf("tick %d: tracker %+v diverges from Measure %+v", tick, v, snap)
	}
	if v.ConnectivityAgeTicks == 0 && v.Connected != snap.Connected {
		t.Fatalf("tick %d: tracker connectivity %v (current), Measure %v", tick, v.Connected, snap.Connected)
	}
}

// TestTrackerMatchesMeasure drives every registered adversary against the
// sequential engine, feeding each tick's delta to the tracker, and checks
// every tracked value against the full recomputation after every tick.
func TestTrackerMatchesMeasure(t *testing.T) {
	for _, name := range adversary.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g0, err := workload.RandomRegular(48, 2, rand.New(rand.NewSource(5)))
			if err != nil {
				t.Fatal(err)
			}
			st, err := core.NewState(core.Config{Kappa: 4, Seed: 11}, g0)
			if err != nil {
				t.Fatal(err)
			}
			adv, err := adversary.ByName(name, 160, 23)
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTracker(st.Graph(), st.Baseline())
			tick := 0
			for {
				ev, ok := adv.Next(st.Graph())
				if !ok {
					break
				}
				var b core.Batch
				switch ev.Kind {
				case adversary.Delete:
					if !st.Graph().HasNode(ev.Node) || st.Graph().NumNodes() <= 3 {
						continue
					}
					b.Deletions = []graph.NodeID{ev.Node}
				case adversary.Insert:
					if st.Baseline().HasNode(ev.Node) || len(ev.Neighbors) == 0 {
						continue
					}
					b.Insertions = []core.BatchInsertion{{Node: ev.Node, Neighbors: ev.Neighbors}}
				}
				if err := st.ValidateBatch(b); err != nil {
					continue
				}
				d, err := st.ApplyBatchDelta(b, 1)
				if err != nil {
					t.Fatalf("tick %d: apply: %v", tick, err)
				}
				tr.Apply(d)
				tick++
				checkAgainstOracle(t, tr, st.Graph(), st.Baseline(), tick)
				if tick%16 == 0 {
					checkAgainstMeasure(t, tr, st.Graph(), st.Baseline(), tick)
					if err := tr.Audit(st.Graph(), st.Baseline()); err != nil {
						t.Fatalf("tick %d: %v", tick, err)
					}
				}
			}
			if tick < 32 {
				t.Fatalf("schedule too short to be meaningful: %d applied ticks", tick)
			}
			if err := tr.Audit(st.Graph(), st.Baseline()); err != nil {
				t.Fatal(err)
			}
			v := tr.Values()
			if v.Audits == 0 || v.AuditFailures != 0 {
				t.Fatalf("audit telemetry: %+v", v)
			}
		})
	}
}

// TestTrackerParallelBatches assembles multi-event batches and applies them
// through the parallel disjoint-wound path on one state and the serial path
// on a twin, asserting the deltas are identical and the tracker matches the
// oracle after every batch. This is the instrumentation check for the
// parallel merge path, which bypasses the serial claim-tracking hooks.
func TestTrackerParallelBatches(t *testing.T) {
	g0, err := workload.RandomRegular(64, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.NewState(core.Config{Kappa: 4, Seed: 3}, g0)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := core.NewState(core.Config{Kappa: 4, Seed: 3}, g0)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewRandomChurn(400, 0.5, 3, 77)
	tr := NewTracker(par.Graph(), par.Baseline())

	var batch core.Batch
	events := 0
	tick := 0
	flush := func() {
		if len(batch.Insertions) == 0 && len(batch.Deletions) == 0 {
			return
		}
		dp, err := par.ApplyBatchDelta(batch, 4)
		if err != nil {
			t.Fatalf("parallel apply: %v", err)
		}
		ds, err := ser.ApplyBatchDelta(batch, 1)
		if err != nil {
			t.Fatalf("serial apply: %v", err)
		}
		if !reflect.DeepEqual(dp, ds) {
			t.Fatalf("tick %d: parallel delta %+v != serial delta %+v", tick, dp, ds)
		}
		tr.Apply(dp)
		tick++
		checkAgainstOracle(t, tr, par.Graph(), par.Baseline(), tick)
		batch = core.Batch{}
	}
	for {
		ev, ok := adv.Next(par.Graph())
		if !ok {
			break
		}
		cand := batch
		switch ev.Kind {
		case adversary.Delete:
			if !par.Graph().HasNode(ev.Node) ||
				par.Graph().NumNodes()+len(batch.Insertions)-len(batch.Deletions) <= 4 {
				continue
			}
			cand.Deletions = append(append([]graph.NodeID(nil), batch.Deletions...), ev.Node)
			cand.Insertions = batch.Insertions
		case adversary.Insert:
			if par.Baseline().HasNode(ev.Node) || len(ev.Neighbors) == 0 {
				continue
			}
			cand.Insertions = append(append([]core.BatchInsertion(nil), batch.Insertions...),
				core.BatchInsertion{Node: ev.Node, Neighbors: ev.Neighbors})
			cand.Deletions = batch.Deletions
		}
		if err := par.ValidateBatch(cand); err != nil {
			flush() // conflicts with this batch; start the next one with it
			continue
		}
		batch = cand
		events++
		if len(batch.Insertions)+len(batch.Deletions) >= 8 {
			flush()
		}
	}
	flush()
	if tick < 20 {
		t.Fatalf("too few applied batches: %d", tick)
	}
	if err := tr.Audit(par.Graph(), par.Baseline()); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerConnectivityDirtying checks the dirty-flag rule directly:
// growth ticks on a connected graph keep the verdict current; a removal
// stales it until resolved.
func TestTrackerConnectivityDirtying(t *testing.T) {
	g0, err := workload.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 1}, g0)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(st.Graph(), st.Baseline())

	d, err := st.ApplyBatchDelta(core.Batch{
		Insertions: []core.BatchInsertion{{Node: 100, Neighbors: []graph.NodeID{0, 1}}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Apply(d)
	if v := tr.Values(); v.ConnectivityAgeTicks != 0 || !v.Connected {
		t.Fatalf("pure growth staled connectivity: %+v", v)
	}

	d, err = st.ApplyBatchDelta(core.Batch{Deletions: []graph.NodeID{3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Apply(d)
	if v := tr.Values(); v.ConnectivityAgeTicks == 0 {
		t.Fatalf("removal tick did not stale connectivity: %+v", v)
	}

	// A traversal as of the current tick resolves it.
	tr.ResolveConnectivity(st.Graph().IsConnected(), tr.Values().Ticks)
	if v := tr.Values(); v.ConnectivityAgeTicks != 0 {
		t.Fatalf("resolve did not clear staleness: %+v", v)
	}
}
