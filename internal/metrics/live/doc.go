// Package live maintains serving metrics incrementally, so a health poll of
// a 10⁵–10⁶-node daemon costs O(1) instead of a full measurement pass.
//
// The package has three parts, all fed by the exact per-tick structural
// deltas the engines export (core.TickDelta):
//
//   - Tracker keeps node/edge counts, the maximum degree, and the paper's
//     degree-increase metric max deg_G/deg_G′ (Theorem 2.1) exactly, via a
//     degree histogram and a degree-ratio index updated per delta. It also
//     keeps the last established connectivity verdict together with a dirty
//     flag: pure attached growth of a connected graph preserves
//     connectivity, anything else marks the verdict stale until a
//     traversal (the refresh cycle's CSR BFS) re-establishes it. Audit
//     compares every tracked value against the full metrics recomputation —
//     the correctness oracle the equivalence tests and the serving daemon's
//     periodic audit both use.
//
//   - Lambda2Cache estimates λ₂(L) on CSR snapshots with a warm-started
//     Lanczos iteration: the previous refresh's Ritz vector, remapped onto
//     the new node ordering, re-converges in a third of the cold step
//     count. Refreshes are skipped entirely while the graph generation is
//     unchanged; staleness (ticks since refresh) is exposed for /v1/health.
//
//   - StretchSampler estimates the paper's stretch metric (Theorem 2.2)
//     from a reservoir of BFS sources with cached distance arrays. Each
//     applied delta is screened against every cached tree: a tree is only
//     re-BFSed when the delta could change its distances (a removed edge on
//     a shortest-path level boundary, an inserted shortcut, a dead source)
//     or when it exceeds its age bound. Values are estimates between
//     refreshes — nodes inserted after a tree's build are not counted until
//     the next rebuild — and carry their age so consumers can judge them.
//
// Everything here is safe for one writer (the serving apply loop and its
// refresh goroutine) plus any number of concurrent readers.
package live
