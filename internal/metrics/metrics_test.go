package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

// mustGraph unwraps generator results; generator failures in tests are
// programming errors, so it panics.
func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestDegreeRatio(t *testing.T) {
	gp := mustGraph(workload.Star(4))
	g := gp.Clone()
	// Healed graph doubles leaf 1's degree: add edges 1-2, 1-3.
	g.EnsureEdge(1, 2)
	g.EnsureEdge(1, 3)
	// deg_G(1)=3, deg_G'(1)=1 -> ratio 3.
	if r := DegreeRatio(g, gp); r != 3 {
		t.Fatalf("DegreeRatio = %v, want 3", r)
	}
}

func TestDegreeRatioHandlesZeroBaseline(t *testing.T) {
	gp := graph.New()
	gp.EnsureNode(1)
	g := graph.New()
	g.EnsureEdge(1, 2)
	// Node 2 absent from gp: baseline clamps to 1.
	if r := DegreeRatio(g, gp); r != 1 {
		t.Fatalf("DegreeRatio = %v, want 1", r)
	}
}

func TestStretchIdentityGraphs(t *testing.T) {
	g := mustGraph(workload.Cycle(8))
	rng := rand.New(rand.NewSource(1))
	if s := Stretch(g, g, 0, rng); s != 1 {
		t.Fatalf("stretch of identical graphs = %v, want 1", s)
	}
}

func TestStretchDetour(t *testing.T) {
	// G' is a cycle; G lost one edge (path): antipodal pairs stretch.
	gp := mustGraph(workload.Cycle(8))
	g := gp.Clone()
	if err := g.RemoveEdge(0, 7); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	s := Stretch(g, gp, 0, rng)
	// dist_G(0,7)=7 vs dist_G'(0,7)=1.
	if s != 7 {
		t.Fatalf("stretch = %v, want 7", s)
	}
}

func TestStretchInfiniteWhenDisconnected(t *testing.T) {
	gp := mustGraph(workload.Path(3))
	g := gp.Clone()
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if s := Stretch(g, gp, 0, rng); !math.IsInf(s, 1) {
		t.Fatalf("stretch = %v, want +Inf", s)
	}
}

func TestStretchSampledSources(t *testing.T) {
	gp := mustGraph(workload.Cycle(30))
	g := gp.Clone()
	rng := rand.New(rand.NewSource(2))
	s := Stretch(g, gp, 5, rng)
	if s != 1 {
		t.Fatalf("sampled stretch of identical graphs = %v, want 1", s)
	}
}

func TestMeasureSmallGraphExactPath(t *testing.T) {
	g := mustGraph(workload.Complete(6))
	snap := Measure(g, g, Config{})
	if !snap.Connected || snap.Nodes != 6 || snap.Edges != 15 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ExpansionExact == Unavailable || snap.ConductanceExact == Unavailable {
		t.Fatal("exact cuts should be available for n=6")
	}
	if snap.ExpansionExact != 3 {
		t.Fatalf("h(K_6) = %v, want 3", snap.ExpansionExact)
	}
	if math.Abs(snap.Lambda2-6) > 1e-8 {
		t.Fatalf("λ₂(K_6) = %v, want 6", snap.Lambda2)
	}
	if snap.MaxStretch != 1 || snap.MaxDegreeRatio != 1 {
		t.Fatalf("identity metrics: %+v", snap)
	}
}

func TestMeasureLargeGraphSkipsExact(t *testing.T) {
	g := mustGraph(workload.Cycle(40))
	snap := Measure(g, g, Config{StretchSources: 4, SweepCuts: true})
	if snap.ExpansionExact != Unavailable {
		t.Fatal("exact expansion should be unavailable for n=40")
	}
	if snap.SweepConductance == Unavailable {
		t.Fatal("sweep cut should be available when requested")
	}
	if snap.Lambda2 <= 0 {
		t.Fatalf("λ₂ = %v, want > 0", snap.Lambda2)
	}
}

func TestMeasureSweepCutsOptIn(t *testing.T) {
	g := mustGraph(workload.Cycle(40))
	snap := Measure(g, g, Config{StretchSources: 4})
	if snap.SweepConductance != Unavailable || snap.SweepExpansion != Unavailable {
		t.Fatalf("sweep cuts should be off by default: %+v", snap)
	}
	if snap.Lambda2 <= 0 {
		t.Fatalf("λ₂ should still be measured, got %v", snap.Lambda2)
	}
}

func TestMeasureSkipSpectral(t *testing.T) {
	g := mustGraph(workload.Cycle(10))
	snap := Measure(g, g, Config{SkipSpectral: true})
	if snap.Lambda2 != 0 || snap.SweepConductance != Unavailable {
		t.Fatalf("spectral fields should be zero/unavailable: %+v", snap)
	}
}

func TestStretchBound(t *testing.T) {
	if b := StretchBound(16, 2); b != 8 {
		t.Fatalf("StretchBound(16,2) = %v, want 8", b)
	}
	if b := StretchBound(1, 2); b != 1 {
		t.Fatalf("StretchBound(1,2) = %v, want 1", b)
	}
}

func TestDegreeBoundRatio(t *testing.T) {
	if r := DegreeBoundRatio(4); r != 12 {
		t.Fatalf("DegreeBoundRatio(4) = %v, want 12", r)
	}
}

func TestSpectralFloor(t *testing.T) {
	// b-branch: 1/(κ·dmax)² / 8 when λ' is large.
	got := SpectralFloor(10, 4, 4, 2)
	want := 1.0 / (4.0 * 16.0) / 8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SpectralFloor = %v, want %v", got, want)
	}
	if SpectralFloor(1, 1, 0, 2) != 0 {
		t.Fatal("zero dmax should yield 0")
	}
}

func TestMeasureDisconnected(t *testing.T) {
	g := graph.New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(2, 3)
	snap := Measure(g, g, Config{})
	if snap.Connected {
		t.Fatal("disconnected graph reported connected")
	}
	if snap.Lambda2 != 0 {
		t.Fatalf("λ₂ = %v, want 0", snap.Lambda2)
	}
}
