package metrics

import (
	"math"
	"math/rand"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

// The paper (§1.1) motivates the spectral quantities it preserves by what
// they control: "key properties such as mixing time, conductance, congestion
// in routing etc." This file measures mixing time *empirically* — by
// evolving the lazy-random-walk distribution — so experiments can confront
// the spectral story with walk behavior on healed vs. tree-repaired graphs.

// MixingResult reports an empirical mixing measurement.
type MixingResult struct {
	// Steps is the number of lazy-walk steps needed to bring the total
	// variation distance to stationarity below the threshold, or MaxSteps+1
	// if never reached (e.g. disconnected graphs).
	Steps int
	// FinalTV is the total-variation distance after Steps (or MaxSteps).
	FinalTV float64
}

// MixingTime evolves the lazy random walk (stay with probability 1/2, else
// move to a uniform neighbor) from the worst of `starts` randomly chosen
// start vertices, and returns the steps needed to reach total variation
// distance ≤ threshold from the degree-stationary distribution.
//
// The walk distribution is computed exactly (dense vector iteration), so the
// result is deterministic given the start choices.
func MixingTime(g *graph.Graph, threshold float64, maxSteps, starts int, rng *rand.Rand) MixingResult {
	n := g.NumNodes()
	if n < 2 || !g.IsConnected() || g.NumEdges() == 0 {
		return MixingResult{Steps: maxSteps + 1, FinalTV: 1}
	}
	// Snapshot the adjacency once in compressed-sparse-row form (shared with
	// the spectral package): the walk evolution then runs on flat arrays
	// instead of per-step map iteration.
	csr := spectral.NewCSR(g)
	// Stationary distribution of the walk: π(v) = deg(v)/2m.
	pi := make([]float64, n)
	twoM := float64(2 * g.NumEdges())
	for i := range pi {
		pi[i] = csr.Deg[i] / twoM
	}

	if starts < 1 {
		starts = 1
	}
	worst := MixingResult{}
	for s := 0; s < starts; s++ {
		start := rng.Intn(n)
		res := mixFrom(csr, pi, start, threshold, maxSteps)
		if res.Steps > worst.Steps {
			worst = res
		}
	}
	return worst
}

func mixFrom(csr *spectral.CSR, pi []float64, start int, threshold float64, maxSteps int) MixingResult {
	n := len(pi)
	p := make([]float64, n)
	next := make([]float64, n)
	p[start] = 1
	tv := tvDistance(p, pi)
	for step := 1; step <= maxSteps; step++ {
		for i := range next {
			next[i] = 0
		}
		for i, pv := range p {
			if pv == 0 {
				continue
			}
			// Lazy step: half stays, half spreads over neighbors.
			next[i] += pv / 2
			row := csr.Row(i)
			share := pv / 2 / float64(len(row))
			for _, j := range row {
				next[j] += share
			}
		}
		p, next = next, p
		tv = tvDistance(p, pi)
		if tv <= threshold {
			return MixingResult{Steps: step, FinalTV: tv}
		}
	}
	return MixingResult{Steps: maxSteps + 1, FinalTV: tv}
}

// tvDistance returns the total variation distance between two distributions.
func tvDistance(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / 2
}
