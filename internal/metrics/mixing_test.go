package metrics

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

func TestMixingTimeCompleteGraphFast(t *testing.T) {
	g := mustGraph(workload.Complete(16))
	rng := rand.New(rand.NewSource(1))
	res := MixingTime(g, 0.05, 200, 3, rng)
	if res.Steps > 15 {
		t.Fatalf("K16 mixing steps = %d, want fast (<= 15)", res.Steps)
	}
	if res.FinalTV > 0.05 {
		t.Fatalf("FinalTV = %v, want <= threshold", res.FinalTV)
	}
}

func TestMixingTimePathSlow(t *testing.T) {
	gFast := mustGraph(workload.Complete(24))
	gSlow := mustGraph(workload.Path(24))
	rng := rand.New(rand.NewSource(2))
	fast := MixingTime(gFast, 0.05, 2000, 3, rng)
	slow := MixingTime(gSlow, 0.05, 2000, 3, rng)
	if slow.Steps <= 2*fast.Steps {
		t.Fatalf("path (%d steps) should mix much slower than complete (%d steps)",
			slow.Steps, fast.Steps)
	}
}

func TestMixingTimeExpanderLogarithmic(t *testing.T) {
	// Expander mixing times at n and 4n should differ by a small additive
	// amount (log scaling), not a multiplicative ~4 (poly scaling).
	rng := rand.New(rand.NewSource(3))
	small, err := workload.RandomRegular(32, 3, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	big, err := workload.RandomRegular(128, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	ts := MixingTime(small, 0.05, 1000, 2, rng)
	tb := MixingTime(big, 0.05, 1000, 2, rng)
	if tb.Steps > 3*ts.Steps {
		t.Fatalf("expander mixing scaled poorly: %d -> %d steps for 4x nodes",
			ts.Steps, tb.Steps)
	}
}

func TestMixingTimeDisconnected(t *testing.T) {
	g := graph.New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(2, 3)
	rng := rand.New(rand.NewSource(4))
	res := MixingTime(g, 0.05, 50, 1, rng)
	if res.Steps != 51 {
		t.Fatalf("disconnected graph Steps = %d, want maxSteps+1", res.Steps)
	}
}

func TestMixingTimeThresholdNeverMet(t *testing.T) {
	g := mustGraph(workload.Path(40))
	rng := rand.New(rand.NewSource(5))
	res := MixingTime(g, 0.001, 3, 1, rng) // absurdly few steps allowed
	if res.Steps != 4 {
		t.Fatalf("Steps = %d, want maxSteps+1 = 4", res.Steps)
	}
	if res.FinalTV <= 0.001 {
		t.Fatalf("FinalTV = %v unexpectedly below threshold", res.FinalTV)
	}
}

func TestTVDistance(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0.5, 0.5}
	if got := tvDistance(a, b); got != 0.5 {
		t.Fatalf("tv = %v, want 0.5", got)
	}
	if got := tvDistance(a, a); got != 0 {
		t.Fatalf("tv(self) = %v, want 0", got)
	}
}
