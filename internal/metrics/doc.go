// Package metrics measures the quantities the Xheal paper's guarantees are
// stated in (Theorem 2): per-node degree increase versus G′ (2.1), pairwise
// stretch versus G′ (2.2), edge expansion and conductance (2.3), and the
// algebraic connectivity λ₂ with its Theorem 2.4 floor — switching between
// exact and estimated computation by graph size.
//
// Measure produces one Snapshot of a healed graph against its
// insertions-only baseline. Config tunes the cost/fidelity trade-off:
// exact expansion/conductance below the enumeration cutoff versus
// sweep-cut witnesses above it (internal/cuts), full all-pairs stretch
// versus sampled sources (StretchSources), spectral computation on or off
// (SkipSpectral — the serving daemon's health endpoint and other tight
// loops skip it), and opt-in sweep cuts (SweepCuts — only callers that
// read the witness bounds pay for the eigenvector). DegreeBoundRatio,
// StretchBound, and SpectralFloor are the envelope formulas the
// conformance checker and the harness assert against.
//
// The empirical mixing-time walk (mixing.go) backs the paper's "mixing
// time degrades gracefully" remark, evolving a distribution on the same
// CSR snapshot the Lanczos path uses.
package metrics
