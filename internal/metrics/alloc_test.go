package metrics

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

// TestSampleSourcesAllocs pins the O(k) cost of source sampling: the partial
// Fisher–Yates must allocate only the output slice and its displacement map,
// never an O(n) permutation. ~3 allocations per call (slice + map header +
// one bucket block); 8 leaves headroom for map growth across Go versions
// while still failing instantly if anyone reintroduces rng.Perm(n).
func TestSampleSourcesAllocs(t *testing.T) {
	alive := make([]graph.NodeID, 200_000)
	for i := range alive {
		alive[i] = graph.NodeID(i)
	}
	rng := rand.New(rand.NewSource(1))
	const k = 8
	allocs := testing.AllocsPerRun(20, func() {
		out := sampleSources(alive, k, rng)
		if len(out) != k {
			t.Fatalf("sampled %d sources, want %d", len(out), k)
		}
	})
	if allocs > 8 {
		t.Fatalf("sampleSources allocates %v times per call over n=200k; "+
			"an O(n) permutation has crept back in", allocs)
	}
}

// TestSampleSourcesUniqueAndComplete: the sample holds k distinct alive
// nodes, and k == n degenerates to a full permutation of the input.
func TestSampleSourcesUniqueAndComplete(t *testing.T) {
	alive := []graph.NodeID{10, 11, 12, 13, 14, 15, 16, 17}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		out := sampleSources(alive, 5, rng)
		seen := make(map[graph.NodeID]bool, len(out))
		for _, v := range out {
			if seen[v] {
				t.Fatalf("trial %d: duplicate source %d in %v", trial, v, out)
			}
			seen[v] = true
			if v < 10 || v > 17 {
				t.Fatalf("trial %d: source %d not in input", trial, v)
			}
		}
	}
	full := sampleSources(alive, len(alive), rng)
	seen := make(map[graph.NodeID]bool, len(full))
	for _, v := range full {
		seen[v] = true
	}
	if len(seen) != len(alive) {
		t.Fatalf("k=n sample is not a permutation: %v", full)
	}
}
