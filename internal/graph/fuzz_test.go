package graph

import (
	"math/rand"
	"testing"
)

// FuzzGraphOps drives random operation sequences decoded from fuzz input
// bytes and asserts the structural invariants (symmetry, loop-freedom, edge
// accounting) after every operation.
func FuzzGraphOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := New()
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 4
			u := NodeID(data[i+1] % 16)
			v := NodeID(data[i+2] % 16)
			switch op {
			case 0:
				g.EnsureNode(u)
			case 1:
				g.EnsureEdge(u, v)
			case 2:
				if g.HasNode(u) {
					if _, err := g.RemoveNode(u); err != nil {
						t.Fatalf("RemoveNode(%d): %v", u, err)
					}
				}
			case 3:
				if g.HasEdge(u, v) {
					if err := g.RemoveEdge(u, v); err != nil {
						t.Fatalf("RemoveEdge(%d,%d): %v", u, v, err)
					}
				}
			}
		}
		if !checkSymmetric(g) {
			t.Fatal("adjacency symmetry broken")
		}
		// Components partition the nodes.
		total := 0
		for _, comp := range g.Components() {
			total += len(comp)
		}
		if total != g.NumNodes() {
			t.Fatalf("components cover %d of %d nodes", total, g.NumNodes())
		}
	})
}

// FuzzDistanceConsistency checks Distance against BFSFrom on fuzzed graphs.
func FuzzDistanceConsistency(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(42), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, size uint8) {
		n := int(size%24) + 2
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < n; i++ {
			g.EnsureNode(NodeID(i))
		}
		for i := 0; i < 2*n; i++ {
			g.EnsureEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		src := NodeID(rng.Intn(n))
		dist := g.BFSFrom(src)
		for i := 0; i < n; i++ {
			dst := NodeID(i)
			want, reachable := dist[dst]
			got := g.Distance(src, dst)
			if reachable && got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS = %d", src, dst, got, want)
			}
			if !reachable && got != Unreachable {
				t.Fatalf("Distance(%d,%d) = %d, want Unreachable", src, dst, got)
			}
		}
	})
}
