package graph

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
)

// NodeID identifies a node. IDs are assigned by callers (the harness uses
// small dense integers; the distributed engine uses them as addresses).
type NodeID int

// Edge is an unordered pair of node IDs. Canonical form has U <= V.
type Edge struct {
	U, V NodeID
}

// NewEdge returns the canonical (U <= V) form of the edge {u, v}.
func NewEdge(u, v NodeID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint; callers are expected to hold an incident edge.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", n, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// CompareEdges orders edges by (U, V), the canonical table order — the one
// comparator every sorted edge list in the repository uses. cmp.Compare is
// overflow-safe for the full caller-assigned NodeID range (a subtraction
// would wrap for far-apart IDs).
func CompareEdges(a, b Edge) int {
	if c := cmp.Compare(a.U, b.U); c != 0 {
		return c
	}
	return cmp.Compare(a.V, b.V)
}

// Sentinel errors returned by mutating operations.
var (
	ErrNodeExists   = errors.New("graph: node already exists")
	ErrNodeMissing  = errors.New("graph: node does not exist")
	ErrEdgeExists   = errors.New("graph: edge already exists")
	ErrEdgeMissing  = errors.New("graph: edge does not exist")
	ErrSelfLoop     = errors.New("graph: self loops are not allowed")
	ErrEmptyGraph   = errors.New("graph: graph has no nodes")
	ErrDisconnected = errors.New("graph: graph is not connected")
)

// nbrView is one node's cached sorted neighbor slice, valid while its gen
// matches the graph's mutation counter.
type nbrView struct {
	gen uint64
	ids []NodeID
}

// Graph is a dynamic undirected simple graph.
//
// The zero value is not usable; call New.
type Graph struct {
	adj   map[NodeID]map[NodeID]struct{}
	edges int

	// gen counts mutations. Cached views record the gen they were built at
	// and are served only while it still matches. It starts at 1 so the
	// zero-valued cache gens are never mistaken for fresh.
	gen      uint64
	nodesGen uint64
	nodes    []NodeID
	edgesGen uint64
	edgeList []Edge
	nbrs     map[NodeID]nbrView
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]struct{}), gen: 1}
}

// Clone returns a deep copy of g. Caches are not copied; the clone
// materializes its own views on demand.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make(map[NodeID]map[NodeID]struct{}, len(g.adj)),
		edges: g.edges,
		gen:   1,
	}
	for n, nbrs := range g.adj {
		m := make(map[NodeID]struct{}, len(nbrs))
		for w := range nbrs {
			m[w] = struct{}{}
		}
		c.adj[n] = m
	}
	return c
}

// Generation returns the graph's mutation counter: it changes on every
// structural mutation, so equal generations of the *same* Graph imply an
// unchanged structure. Clones restart at 1 — the counter identifies
// versions of one graph, not graphs.
func (g *Graph) Generation() uint64 { return g.gen }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether n is present.
func (g *Graph) HasNode(n NodeID) bool {
	_, ok := g.adj[n]
	return ok
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	nbrs, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = nbrs[v]
	return ok
}

// Degree returns the degree of n, or 0 if n is absent.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// AddNode inserts an isolated node. It returns ErrNodeExists if n is present.
func (g *Graph) AddNode(n NodeID) error {
	if g.HasNode(n) {
		return fmt.Errorf("add node %d: %w", n, ErrNodeExists)
	}
	g.adj[n] = make(map[NodeID]struct{})
	g.gen++
	return nil
}

// EnsureNode inserts n if absent and reports whether it was inserted.
func (g *Graph) EnsureNode(n NodeID) bool {
	if g.HasNode(n) {
		return false
	}
	g.adj[n] = make(map[NodeID]struct{})
	g.gen++
	return true
}

// RemoveNode deletes n and all incident edges, returning the neighbors it had
// (sorted). It returns ErrNodeMissing if n is absent. When n's neighbor view
// is cached the cached slice is returned instead of re-sorting; like every
// other view it is read-only — it may alias a slice an earlier Neighbors
// call handed out, so treat it as a frozen snapshot and copy to mutate.
func (g *Graph) RemoveNode(n NodeID) ([]NodeID, error) {
	set, ok := g.adj[n]
	if !ok {
		return nil, fmt.Errorf("remove node %d: %w", n, ErrNodeMissing)
	}
	var out []NodeID
	if v, cached := g.nbrs[n]; cached && v.gen == g.gen {
		out = v.ids
	} else {
		out = make([]NodeID, 0, len(set))
		for w := range set {
			out = append(out, w)
		}
		slices.Sort(out)
	}
	for _, w := range out {
		delete(g.adj[w], n)
		g.edges--
	}
	delete(g.adj, n)
	delete(g.nbrs, n)
	g.gen++
	return out, nil
}

// AddEdge inserts the edge {u, v}. Both endpoints must exist; self loops and
// duplicate edges are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("add edge (%d,%d): %w", u, v, ErrSelfLoop)
	}
	if !g.HasNode(u) {
		return fmt.Errorf("add edge (%d,%d): endpoint %d: %w", u, v, u, ErrNodeMissing)
	}
	if !g.HasNode(v) {
		return fmt.Errorf("add edge (%d,%d): endpoint %d: %w", u, v, v, ErrNodeMissing)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("add edge (%d,%d): %w", u, v, ErrEdgeExists)
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	g.gen++
	return nil
}

// EnsureEdge inserts {u, v} if absent (creating endpoints as needed) and
// reports whether a new edge was created. Self loops are ignored.
func (g *Graph) EnsureEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	g.EnsureNode(u)
	g.EnsureNode(v)
	if g.HasEdge(u, v) {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	g.gen++
	return true
}

// RemoveEdge deletes the edge {u, v}. It returns ErrEdgeMissing if absent.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("remove edge (%d,%d): %w", u, v, ErrEdgeMissing)
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	g.gen++
	return nil
}

// Nodes returns all node IDs in ascending order. The slice is a cached
// read-only view: it must not be modified, and it stops tracking the graph
// at the next mutation (see the package comment).
func (g *Graph) Nodes() []NodeID {
	if g.nodesGen != g.gen {
		nodes := make([]NodeID, 0, len(g.adj))
		for n := range g.adj {
			nodes = append(nodes, n)
		}
		slices.Sort(nodes)
		g.nodes, g.nodesGen = nodes, g.gen
	}
	return g.nodes
}

// AppendNodes appends all node IDs in ascending order to buf and returns the
// extended slice. It allocates nothing when buf has sufficient capacity,
// regardless of cache state — the zero-allocation alternative to Nodes for
// callers that own a reusable buffer.
func (g *Graph) AppendNodes(buf []NodeID) []NodeID {
	if g.nodesGen == g.gen {
		return append(buf, g.nodes...)
	}
	start := len(buf)
	for n := range g.adj {
		buf = append(buf, n)
	}
	slices.Sort(buf[start:])
	return buf
}

// ForEachNode calls fn for every node in unspecified order, with zero
// allocations.
func (g *Graph) ForEachNode(fn func(NodeID)) {
	for n := range g.adj {
		fn(n)
	}
}

// Neighbors returns the neighbors of n in ascending order, or nil if n is
// absent. The slice is a cached read-only view: it must not be modified, and
// it stops tracking the graph at the next mutation (see the package comment).
func (g *Graph) Neighbors(n NodeID) []NodeID {
	set, ok := g.adj[n]
	if !ok {
		return nil
	}
	if v, cached := g.nbrs[n]; cached && v.gen == g.gen {
		return v.ids
	}
	ids := make([]NodeID, 0, len(set))
	for w := range set {
		ids = append(ids, w)
	}
	slices.Sort(ids)
	if g.nbrs == nil {
		g.nbrs = make(map[NodeID]nbrView, len(g.adj))
	}
	g.nbrs[n] = nbrView{gen: g.gen, ids: ids}
	return ids
}

// AppendNeighbors appends the neighbors of n in ascending order to buf and
// returns the extended slice (unchanged if n is absent). It allocates
// nothing when buf has sufficient capacity, regardless of cache state.
func (g *Graph) AppendNeighbors(buf []NodeID, n NodeID) []NodeID {
	set, ok := g.adj[n]
	if !ok {
		return buf
	}
	if v, cached := g.nbrs[n]; cached && v.gen == g.gen {
		return append(buf, v.ids...)
	}
	start := len(buf)
	for w := range set {
		buf = append(buf, w)
	}
	slices.Sort(buf[start:])
	return buf
}

// ForEachNeighbor calls fn for every neighbor of n in unspecified order.
// It avoids the allocation of Neighbors for hot paths.
func (g *Graph) ForEachNeighbor(n NodeID, fn func(NodeID)) {
	for w := range g.adj[n] {
		fn(w)
	}
}

// Edges returns every edge once, in canonical sorted order. The slice is a
// cached read-only view: it must not be modified, and it stops tracking the
// graph at the next mutation (see the package comment).
func (g *Graph) Edges() []Edge {
	if g.edgesGen != g.gen {
		out := make([]Edge, 0, g.edges)
		for u, nbrs := range g.adj {
			for v := range nbrs {
				if u < v {
					out = append(out, Edge{U: u, V: v})
				}
			}
		}
		slices.SortFunc(out, CompareEdges)
		g.edgeList, g.edgesGen = out, g.gen
	}
	return g.edgeList
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	best := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > best {
			best = len(nbrs)
		}
	}
	return best
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	best := -1
	for _, nbrs := range g.adj {
		if best < 0 || len(nbrs) < best {
			best = len(nbrs)
		}
	}
	return best
}

// Volume returns the sum of degrees of the given node set (2|E| over all
// nodes). Absent nodes contribute zero.
func (g *Graph) Volume(nodes []NodeID) int {
	total := 0
	for _, n := range nodes {
		total += len(g.adj[n])
	}
	return total
}

// InducedSubgraph returns the subgraph induced by keep. Nodes absent from g
// are ignored.
func (g *Graph) InducedSubgraph(keep []NodeID) *Graph {
	set := make(map[NodeID]struct{}, len(keep))
	sub := New()
	for _, n := range keep {
		if g.HasNode(n) {
			set[n] = struct{}{}
			sub.EnsureNode(n)
		}
	}
	for n := range set {
		for w := range g.adj[n] {
			if _, ok := set[w]; ok && n < w {
				sub.EnsureEdge(n, w)
			}
		}
	}
	return sub
}

// CutSize returns |E(S, V-S)|: the number of edges with exactly one endpoint
// in s. Nodes in s absent from g are ignored.
func (g *Graph) CutSize(s map[NodeID]struct{}) int {
	cut := 0
	for n := range s {
		for w := range g.adj[n] {
			if _, in := s[w]; !in {
				cut++
			}
		}
	}
	return cut
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for n, nbrs := range g.adj {
		hn, ok := h.adj[n]
		if !ok || len(hn) != len(nbrs) {
			return false
		}
		for w := range nbrs {
			if _, ok := hn[w]; !ok {
				return false
			}
		}
	}
	return true
}

// String returns a compact human-readable rendering, e.g. for test failures.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}
