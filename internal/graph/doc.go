// Package graph provides the dynamic undirected simple graph every other
// subsystem in this repository builds on. It supports incremental node/edge
// insertion and deletion, neighbor iteration in deterministic order, and
// the traversal and statistics helpers (BFS distances, connected
// components, diameter, articulation points, degree summaries) needed by
// the Xheal algorithm, the distributed engine, the adversaries, and the
// measurement tooling.
//
// # Cached views and the read-only contract
//
// Nodes, Neighbors, and Edges return sorted views served from internal
// caches keyed by a mutation counter: the first call after a mutation
// builds and sorts the view (one allocation), every further call until the
// next mutation returns the same slice with zero allocations. The returned
// slices are read-only — callers must not modify them. A retained slice
// stays valid as a snapshot even across later mutations (rebuilds allocate
// fresh backing arrays), but it no longer reflects the graph once a
// mutation happens. Callers that need to modify the result must copy it;
// callers that want to avoid the cache entirely can use the
// zero-allocation iteration APIs (ForEachNode, ForEachNeighbor,
// AppendNodes, AppendNeighbors). The contract is enforced by
// alloc_test.go, so it cannot silently rot.
//
// Because even read methods may materialize a cached view, the graph is not
// safe for any concurrent use — including concurrent reads — without
// external synchronization (internal/server serializes all access to its
// engine's graphs for exactly this reason).
package graph
