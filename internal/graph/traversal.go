package graph

import "sort"

// Unreachable is the distance reported for node pairs with no connecting path.
const Unreachable = -1

// BFSFrom returns the BFS distance (in hops) from src to every reachable
// node. Unreachable nodes are absent from the map. Returns nil if src is not
// in the graph.
func (g *Graph) BFSFrom(src NodeID) map[NodeID]int {
	if !g.HasNode(src) {
		return nil
	}
	dist := make(map[NodeID]int, len(g.adj))
	dist[src] = 0
	queue := make([]NodeID, 0, len(g.adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := dist[n]
		for w := range g.adj[n] {
			if _, seen := dist[w]; !seen {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Distance returns the hop distance between u and v, or Unreachable if there
// is no path (or either endpoint is absent).
func (g *Graph) Distance(u, v NodeID) int {
	if !g.HasNode(u) || !g.HasNode(v) {
		return Unreachable
	}
	if u == v {
		return 0
	}
	// Bidirectional BFS keeps stretch measurement affordable on large graphs.
	distU := map[NodeID]int{u: 0}
	distV := map[NodeID]int{v: 0}
	frontierU := []NodeID{u}
	frontierV := []NodeID{v}
	for len(frontierU) > 0 && len(frontierV) > 0 {
		// Expand the smaller frontier.
		if len(frontierU) > len(frontierV) {
			distU, distV = distV, distU
			frontierU, frontierV = frontierV, frontierU
		}
		next := make([]NodeID, 0, len(frontierU)*2)
		for _, n := range frontierU {
			d := distU[n]
			for w := range g.adj[n] {
				if dv, ok := distV[w]; ok {
					return d + 1 + dv
				}
				if _, seen := distU[w]; !seen {
					distU[w] = d + 1
					next = append(next, w)
				}
			}
		}
		frontierU = next
	}
	return Unreachable
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if len(g.adj) == 0 {
		return true
	}
	var src NodeID
	for n := range g.adj {
		src = n
		break
	}
	return len(g.BFSFrom(src)) == len(g.adj)
}

// Components returns the connected components, each sorted ascending, ordered
// by their smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make(map[NodeID]struct{}, len(g.adj))
	var comps [][]NodeID
	for _, start := range g.Nodes() {
		if _, ok := seen[start]; ok {
			continue
		}
		dist := g.BFSFrom(start)
		comp := make([]NodeID, 0, len(dist))
		for n := range dist {
			seen[n] = struct{}{}
			comp = append(comp, n)
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent returns the node set of the largest connected component
// (ties broken by smallest member), or nil for an empty graph.
func (g *Graph) LargestComponent() []NodeID {
	var best []NodeID
	for _, comp := range g.Components() {
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// Eccentricity returns the maximum BFS distance from n to any reachable node.
func (g *Graph) Eccentricity(n NodeID) int {
	ecc := 0
	for _, d := range g.BFSFrom(n) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter of the graph (maximum pairwise
// distance). It returns ErrEmptyGraph for an empty graph and ErrDisconnected
// if the graph has more than one component. Cost is O(n·m): intended for
// measurement on small and medium graphs.
func (g *Graph) Diameter() (int, error) {
	if len(g.adj) == 0 {
		return 0, ErrEmptyGraph
	}
	diam := 0
	for n := range g.adj {
		dist := g.BFSFrom(n)
		if len(dist) != len(g.adj) {
			return 0, ErrDisconnected
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam, nil
}

// ShortestPath returns one shortest path from src to dst inclusive, or nil if
// unreachable. Neighbors are explored in ascending order, so among the equal
// shortest paths the same one is returned on every run (callers like the
// path-dismantling adversary and route repair rely on reproducibility).
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	parent := map[NodeID]NodeID{src: src}
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(n) {
			if _, seen := parent[w]; seen {
				continue
			}
			parent[w] = n
			if w == dst {
				return buildPath(parent, src, dst)
			}
			queue = append(queue, w)
		}
	}
	return nil
}

func buildPath(parent map[NodeID]NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for n := dst; ; n = parent[n] {
		rev = append(rev, n)
		if n == src {
			break
		}
	}
	out := make([]NodeID, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
