package graph

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEdgeBetweennessPath(t *testing.T) {
	// Path 0-1-2-3: edge (i,i+1) carries (i+1)*(n-1-i) pairs.
	g := pathGraph(t, 4)
	bc := g.EdgeBetweenness()
	want := map[Edge]float64{
		{0, 1}: 3, // pairs {0,1},{0,2},{0,3}
		{1, 2}: 4, // pairs {0,2},{0,3},{1,2},{1,3}
		{2, 3}: 3,
	}
	for e, w := range want {
		if !almostEqual(bc[e], w) {
			t.Fatalf("betweenness%v = %v, want %v", e, bc[e], w)
		}
	}
}

func TestEdgeBetweennessCompleteUniform(t *testing.T) {
	// K_4: every pair adjacent, each edge carries exactly its own pair.
	g := New()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.EnsureEdge(NodeID(i), NodeID(j))
		}
	}
	bc := g.EdgeBetweenness()
	for e, v := range bc {
		if !almostEqual(v, 1) {
			t.Fatalf("K4 edge %v betweenness = %v, want 1", e, v)
		}
	}
}

func TestEdgeBetweennessSplitsTies(t *testing.T) {
	// 4-cycle: antipodal pairs have two shortest paths, each edge carrying
	// half; total per edge = own pair (1) + 2 antipodal halves (0.5+0.5) = 2.
	g := cycleGraph(t, 4)
	bc := g.EdgeBetweenness()
	for e, v := range bc {
		if !almostEqual(v, 2) {
			t.Fatalf("C4 edge %v betweenness = %v, want 2", e, v)
		}
	}
}

func TestEdgeBetweennessStarHub(t *testing.T) {
	// Star K_{1,5}: each spoke carries its own pair plus 4 two-hop pairs...
	// exactly 1 + (n-1-1) = 5 with n-1=5 leaves: pairs through spoke (0,i):
	// {0,i} plus {i,j} for j != i (4 of them) = 5.
	g := New()
	for i := 1; i <= 5; i++ {
		g.EnsureEdge(0, NodeID(i))
	}
	bc := g.EdgeBetweenness()
	for e, v := range bc {
		if !almostEqual(v, 5) {
			t.Fatalf("star spoke %v betweenness = %v, want 5", e, v)
		}
	}
	maxLoad, meanLoad := g.MaxEdgeBetweenness()
	if !almostEqual(maxLoad, 5) || !almostEqual(meanLoad, 5) {
		t.Fatalf("max/mean = %v/%v, want 5/5", maxLoad, meanLoad)
	}
}

func TestMaxEdgeBetweennessEmpty(t *testing.T) {
	g := New()
	g.EnsureNode(1)
	maxLoad, meanLoad := g.MaxEdgeBetweenness()
	if maxLoad != 0 || meanLoad != 0 {
		t.Fatalf("empty betweenness = %v/%v, want 0/0", maxLoad, meanLoad)
	}
}

func TestArticulationPointsPath(t *testing.T) {
	g := pathGraph(t, 5) // interior nodes 1,2,3 are cut vertices
	cuts := g.ArticulationPoints()
	want := []NodeID{1, 2, 3}
	if len(cuts) != len(want) {
		t.Fatalf("cut vertices = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cut vertices = %v, want %v", cuts, want)
		}
	}
}

func TestArticulationPointsCycleNone(t *testing.T) {
	g := cycleGraph(t, 6)
	if cuts := g.ArticulationPoints(); len(cuts) != 0 {
		t.Fatalf("cycle should have no cut vertices, got %v", cuts)
	}
}

func TestArticulationPointsStarHub(t *testing.T) {
	g := New()
	for i := 1; i <= 4; i++ {
		g.EnsureEdge(0, NodeID(i))
	}
	cuts := g.ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 0 {
		t.Fatalf("star cut vertices = %v, want [0]", cuts)
	}
}

func TestArticulationPointsTwoTriangles(t *testing.T) {
	// Two triangles sharing node 2: node 2 is the unique cut vertex.
	g := New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(1, 2)
	g.EnsureEdge(2, 0)
	g.EnsureEdge(2, 3)
	g.EnsureEdge(3, 4)
	g.EnsureEdge(4, 2)
	cuts := g.ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("cut vertices = %v, want [2]", cuts)
	}
}

func TestArticulationPointsDisconnected(t *testing.T) {
	g := New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(1, 2) // component A: 1 is a cut vertex
	g.EnsureEdge(10, 11)
	cuts := g.ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 1 {
		t.Fatalf("cut vertices = %v, want [1]", cuts)
	}
}

// TestArticulationRemovalDisconnects cross-checks the definition: removing
// any reported cut vertex must increase the component count of its
// component; removing a non-cut vertex must not.
func TestArticulationRemovalDisconnects(t *testing.T) {
	// A mixed graph: two triangles bridged by a path.
	g := New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(1, 2)
	g.EnsureEdge(2, 0)
	g.EnsureEdge(2, 3)
	g.EnsureEdge(3, 4)
	g.EnsureEdge(4, 5)
	g.EnsureEdge(5, 6)
	g.EnsureEdge(6, 4)
	cutSet := map[NodeID]bool{}
	for _, c := range g.ArticulationPoints() {
		cutSet[c] = true
	}
	for _, n := range g.Nodes() {
		h := g.Clone()
		if _, err := h.RemoveNode(n); err != nil {
			t.Fatalf("RemoveNode: %v", err)
		}
		disconnected := len(h.Components()) > 1
		if cutSet[n] != disconnected {
			t.Fatalf("node %d: cut=%v but removal disconnects=%v", n, cutSet[n], disconnected)
		}
	}
}
