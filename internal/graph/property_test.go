package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraphFromSeed builds a deterministic pseudo-random graph from a seed:
// n in [1, 24], each pair an edge with probability p in [0.1, 0.7].
func randomGraphFromSeed(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(24)
	p := 0.1 + 0.6*rng.Float64()
	g := New()
	for i := 0; i < n; i++ {
		g.EnsureNode(NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.EnsureEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// checkSymmetric verifies the adjacency structure is symmetric and loop-free
// and that the edge counter matches reality.
func checkSymmetric(g *Graph) bool {
	count := 0
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u == v {
				return false
			}
			if !g.HasEdge(v, u) {
				return false
			}
			if u < v {
				count++
			}
		}
	}
	return count == g.NumEdges()
}

func TestPropertyAdjacencySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		return checkSymmetric(randomGraphFromSeed(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRemoveNodeKeepsSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		// Nodes returns a read-only cached view; copy before shuffling.
		nodes := append([]NodeID(nil), g.Nodes()...)
		// Remove half the nodes in random order.
		rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
		for _, n := range nodes[:len(nodes)/2] {
			if _, err := g.RemoveNode(n); err != nil {
				return false
			}
			if !checkSymmetric(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed)
		nodes := g.Nodes()
		rng := rand.New(rand.NewSource(seed ^ 0xd15c))
		for k := 0; k < 10; k++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if g.Distance(u, v) != g.Distance(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed)
		nodes := g.Nodes()
		rng := rand.New(rand.NewSource(seed ^ 0x7a1))
		for k := 0; k < 10; k++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			c := nodes[rng.Intn(len(nodes))]
			dab, dbc, dac := g.Distance(a, b), g.Distance(b, c), g.Distance(a, c)
			if dab == Unreachable || dbc == Unreachable {
				continue
			}
			if dac == Unreachable || dac > dab+dbc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed)
		comps := g.Components()
		seen := map[NodeID]bool{}
		total := 0
		for _, comp := range comps {
			total += len(comp)
			for _, n := range comp {
				if seen[n] {
					return false // overlap
				}
				seen[n] = true
			}
		}
		if total != g.NumNodes() {
			return false
		}
		// No edges between different components.
		compOf := map[NodeID]int{}
		for i, comp := range comps {
			for _, n := range comp {
				compOf[n] = i
			}
		}
		for _, e := range g.Edges() {
			if compOf[e.U] != compOf[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed)
		return g.Equal(g.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
