package graph

import (
	"errors"
	"testing"
)

func cycleGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := pathGraph(t, n)
	if n > 2 {
		mustAddEdges(t, g, [2]NodeID{0, NodeID(n - 1)})
	}
	return g
}

func TestBFSFromPath(t *testing.T) {
	g := pathGraph(t, 5)
	dist := g.BFSFrom(0)
	for i := 0; i < 5; i++ {
		if dist[NodeID(i)] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[NodeID(i)], i)
		}
	}
	if g.BFSFrom(99) != nil {
		t.Fatal("BFSFrom absent node should be nil")
	}
}

func TestDistance(t *testing.T) {
	g := pathGraph(t, 10)
	tests := []struct {
		u, v NodeID
		want int
	}{
		{0, 9, 9},
		{0, 0, 0},
		{3, 7, 4},
		{9, 0, 9},
	}
	for _, tc := range tests {
		if got := g.Distance(tc.u, tc.v); got != tc.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestDistanceUnreachable(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 1, 2)
	if got := g.Distance(1, 2); got != Unreachable {
		t.Fatalf("Distance in disconnected graph = %d, want Unreachable", got)
	}
	if got := g.Distance(1, 99); got != Unreachable {
		t.Fatalf("Distance to absent node = %d, want Unreachable", got)
	}
}

func TestDistanceMatchesBFS(t *testing.T) {
	// Cross-check bidirectional BFS against plain BFS on a cycle.
	g := cycleGraph(t, 11)
	dist := g.BFSFrom(0)
	for n, want := range dist {
		if got := g.Distance(0, n); got != want {
			t.Fatalf("Distance(0,%d) = %d, BFS says %d", n, got, want)
		}
	}
}

func TestIsConnectedAndComponents(t *testing.T) {
	g := New()
	if !g.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
	mustAddNodes(t, g, 0, 1, 2, 3, 4)
	mustAddEdges(t, g, [2]NodeID{0, 1}, [2]NodeID{2, 3})
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %d sets, want 3", len(comps))
	}
	if comps[0][0] != 0 || comps[1][0] != 2 || comps[2][0] != 4 {
		t.Fatalf("components out of order: %v", comps)
	}
	lc := g.LargestComponent()
	if len(lc) != 2 || lc[0] != 0 {
		t.Fatalf("LargestComponent = %v, want [0 1]", lc)
	}
	mustAddEdges(t, g, [2]NodeID{1, 2}, [2]NodeID{3, 4})
	if !g.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestDiameter(t *testing.T) {
	g := pathGraph(t, 6)
	d, err := g.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if d != 5 {
		t.Fatalf("path diameter = %d, want 5", d)
	}

	c := cycleGraph(t, 8)
	d, err = c.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if d != 4 {
		t.Fatalf("cycle diameter = %d, want 4", d)
	}

	if _, err := New().Diameter(); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("empty diameter error = %v, want ErrEmptyGraph", err)
	}
	disc := New()
	mustAddNodes(t, disc, 1, 2)
	if _, err := disc.Diameter(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected diameter error = %v, want ErrDisconnected", err)
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(t, 5)
	if got := g.Eccentricity(0); got != 4 {
		t.Fatalf("Eccentricity(0) = %d, want 4", got)
	}
	if got := g.Eccentricity(2); got != 2 {
		t.Fatalf("Eccentricity(2) = %d, want 2", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := pathGraph(t, 5)
	p := g.ShortestPath(0, 4)
	if len(p) != 5 {
		t.Fatalf("ShortestPath length = %d, want 5", len(p))
	}
	for i, n := range p {
		if n != NodeID(i) {
			t.Fatalf("path[%d] = %d, want %d", i, n, i)
		}
	}
	if p := g.ShortestPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("trivial path = %v, want [2]", p)
	}
	disc := New()
	mustAddNodes(t, disc, 1, 2)
	if p := disc.ShortestPath(1, 2); p != nil {
		t.Fatalf("path in disconnected graph = %v, want nil", p)
	}
}

func TestShortestPathIsValidWalk(t *testing.T) {
	g := cycleGraph(t, 9)
	p := g.ShortestPath(0, 4)
	if len(p)-1 != g.Distance(0, 4) {
		t.Fatalf("path length %d != distance %d", len(p)-1, g.Distance(0, 4))
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path step (%d,%d) is not an edge", p[i], p[i+1])
		}
	}
}
