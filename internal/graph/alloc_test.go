package graph

import "testing"

// The allocation guarantees below are part of the package API (see the
// package comment and README "Performance"): hot-path accessors must stay
// allocation-free and the cached views must be free in steady state, so the
// perf wins of the caching layer cannot silently rot.

func allocGraph(tb testing.TB) *Graph {
	tb.Helper()
	g := New()
	for i := 0; i < 64; i++ {
		g.EnsureNode(NodeID(i))
	}
	for i := 0; i < 64; i++ {
		g.EnsureEdge(NodeID(i), NodeID((i+1)%64))
		g.EnsureEdge(NodeID(i), NodeID((i+7)%64))
	}
	return g
}

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, fn); avg != 0 {
		t.Errorf("%s allocates %.1f times per call, want 0", name, avg)
	}
}

func TestZeroAllocAccessors(t *testing.T) {
	g := allocGraph(t)
	sink := 0
	assertZeroAllocs(t, "Degree", func() { sink += g.Degree(7) })
	assertZeroAllocs(t, "HasEdge", func() {
		if g.HasEdge(3, 4) {
			sink++
		}
	})
	assertZeroAllocs(t, "HasNode", func() {
		if g.HasNode(3) {
			sink++
		}
	})
	fn := func(w NodeID) { sink += int(w) }
	assertZeroAllocs(t, "ForEachNeighbor", func() { g.ForEachNeighbor(5, fn) })
	assertZeroAllocs(t, "ForEachNode", func() { g.ForEachNode(fn) })
	_ = sink
}

func TestZeroAllocCachedViewsSteadyState(t *testing.T) {
	g := allocGraph(t)
	// Warm the caches once; steady-state reads must then be free.
	g.Nodes()
	g.Edges()
	g.Neighbors(5)
	var n int
	assertZeroAllocs(t, "Nodes (cached)", func() { n += len(g.Nodes()) })
	assertZeroAllocs(t, "Edges (cached)", func() { n += len(g.Edges()) })
	assertZeroAllocs(t, "Neighbors (cached)", func() { n += len(g.Neighbors(5)) })
	_ = n
}

func TestZeroAllocAppendWithCapacity(t *testing.T) {
	g := allocGraph(t)
	nodeBuf := make([]NodeID, 0, g.NumNodes())
	nbrBuf := make([]NodeID, 0, g.MaxDegree())
	var n int
	assertZeroAllocs(t, "AppendNodes", func() { n += len(g.AppendNodes(nodeBuf[:0])) })
	assertZeroAllocs(t, "AppendNeighbors", func() { n += len(g.AppendNeighbors(nbrBuf[:0], 5)) })

	// The Append APIs must stay allocation-free even when the caches are
	// cold (that is their whole point on mutation-heavy paths).
	g.EnsureEdge(0, 32) // invalidate
	assertZeroAllocs(t, "AppendNodes (cold cache)", func() {
		n += len(g.AppendNodes(nodeBuf[:0]))
	})
	_ = n
}
