package graph

import (
	"errors"
	"testing"
)

func mustAddNodes(t *testing.T, g *Graph, ids ...NodeID) {
	t.Helper()
	for _, id := range ids {
		if err := g.AddNode(id); err != nil {
			t.Fatalf("AddNode(%d): %v", id, err)
		}
	}
}

func mustAddEdges(t *testing.T, g *Graph, pairs ...[2]NodeID) {
	t.Helper()
	for _, p := range pairs {
		if err := g.AddEdge(p[0], p[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", p[0], p[1], err)
		}
	}
}

func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		mustAddNodes(t, g, NodeID(i))
	}
	for i := 0; i+1 < n; i++ {
		mustAddEdges(t, g, [2]NodeID{NodeID(i), NodeID(i + 1)})
	}
	return g
}

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want (2,5)", e)
	}
	if got := e.Other(2); got != 5 {
		t.Fatalf("Other(2) = %d, want 5", got)
	}
	if got := e.Other(5); got != 2 {
		t.Fatalf("Other(5) = %d, want 2", got)
	}
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	NewEdge(1, 2).Other(3)
}

func TestAddRemoveNode(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 1, 2, 3)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if err := g.AddNode(2); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate AddNode error = %v, want ErrNodeExists", err)
	}
	mustAddEdges(t, g, [2]NodeID{1, 2}, [2]NodeID{2, 3})
	nbrs, err := g.RemoveNode(2)
	if err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("RemoveNode neighbors = %v, want [1 3]", nbrs)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges after removal = %d, want 0", g.NumEdges())
	}
	if _, err := g.RemoveNode(2); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("RemoveNode missing error = %v, want ErrNodeMissing", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 1, 2)
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop error = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(1, 9); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("missing endpoint error = %v, want ErrNodeMissing", err)
	}
	mustAddEdges(t, g, [2]NodeID{1, 2})
	if err := g.AddEdge(2, 1); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("duplicate edge error = %v, want ErrEdgeExists", err)
	}
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if err := g.RemoveEdge(1, 2); !errors.Is(err, ErrEdgeMissing) {
		t.Fatalf("RemoveEdge missing error = %v, want ErrEdgeMissing", err)
	}
}

func TestEnsureEdge(t *testing.T) {
	g := New()
	if !g.EnsureEdge(4, 7) {
		t.Fatal("EnsureEdge on fresh pair = false, want true")
	}
	if g.EnsureEdge(7, 4) {
		t.Fatal("EnsureEdge on existing pair = true, want false")
	}
	if g.EnsureEdge(3, 3) {
		t.Fatal("EnsureEdge self loop = true, want false")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph = %v, want 2 nodes 1 edge", g)
	}
}

func TestNeighborsSortedView(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 1, 5, 3, 2)
	mustAddEdges(t, g, [2]NodeID{1, 5}, [2]NodeID{1, 3}, [2]NodeID{1, 2})
	nbrs := g.Neighbors(1)
	want := []NodeID{2, 3, 5}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nbrs, want)
		}
	}
	if g.Neighbors(42) != nil {
		t.Fatal("Neighbors of absent node should be nil")
	}
}

func TestCachedViewsInvalidatedByMutation(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 1, 2, 3)
	mustAddEdges(t, g, [2]NodeID{1, 2})

	nodes := g.Nodes()
	nbrs := g.Neighbors(1)
	edges := g.Edges()

	// A retained view is a frozen snapshot: later mutations must not write
	// into it (rebuilds allocate fresh arrays).
	mustAddNodes(t, g, 4)
	mustAddEdges(t, g, [2]NodeID{1, 4})
	if len(nodes) != 3 || nodes[2] != 3 {
		t.Fatalf("retained Nodes view changed: %v", nodes)
	}
	if len(nbrs) != 1 || nbrs[0] != 2 {
		t.Fatalf("retained Neighbors view changed: %v", nbrs)
	}
	if len(edges) != 1 {
		t.Fatalf("retained Edges view changed: %v", edges)
	}

	// Fresh calls reflect the mutation.
	if got := g.Nodes(); len(got) != 4 || got[3] != 4 {
		t.Fatalf("Nodes after mutation = %v", got)
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Neighbors after mutation = %v", got)
	}
	if got := g.Edges(); len(got) != 2 {
		t.Fatalf("Edges after mutation = %v", got)
	}

	// Steady state: repeated calls return the identical cached slice.
	a, b := g.Nodes(), g.Nodes()
	if &a[0] != &b[0] {
		t.Fatal("steady-state Nodes calls returned different backing arrays")
	}
}

func TestAppendIterationAPIs(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 3, 1, 2)
	mustAddEdges(t, g, [2]NodeID{1, 2}, [2]NodeID{1, 3})

	buf := g.AppendNodes(nil)
	if len(buf) != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("AppendNodes = %v", buf)
	}
	buf = g.AppendNodes(buf[:0]) // reuse must re-fill, not duplicate
	if len(buf) != 3 {
		t.Fatalf("AppendNodes reuse = %v", buf)
	}
	nb := g.AppendNeighbors([]NodeID{99}, 1)
	if len(nb) != 3 || nb[0] != 99 || nb[1] != 2 || nb[2] != 3 {
		t.Fatalf("AppendNeighbors = %v", nb)
	}
	if got := g.AppendNeighbors(nil, 42); got != nil {
		t.Fatalf("AppendNeighbors of absent node = %v", got)
	}
	seen := map[NodeID]bool{}
	g.ForEachNode(func(n NodeID) { seen[n] = true })
	if len(seen) != 3 {
		t.Fatalf("ForEachNode visited %v", seen)
	}
}

func TestRemoveNodeReusesCachedNeighbors(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 1, 2, 3)
	mustAddEdges(t, g, [2]NodeID{2, 1}, [2]NodeID{2, 3})
	cached := g.Neighbors(2) // warm the cache
	nbrs, err := g.RemoveNode(2)
	if err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("RemoveNode neighbors = %v, want [1 3]", nbrs)
	}
	if &cached[0] != &nbrs[0] {
		t.Fatal("RemoveNode did not hand over the cached sorted slice")
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := New()
	mustAddNodes(t, g, 3, 1, 2)
	mustAddEdges(t, g, [2]NodeID{3, 1}, [2]NodeID{2, 3}, [2]NodeID{1, 2})
	edges := g.Edges()
	want := []Edge{{1, 2}, {1, 3}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := pathGraph(t, 4) // 0-1-2-3
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Fatalf("MinDegree = %d, want 1", g.MinDegree())
	}
	if got := g.Volume([]NodeID{0, 1}); got != 3 {
		t.Fatalf("Volume([0,1]) = %d, want 3", got)
	}
	empty := New()
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 {
		t.Fatal("empty graph degree stats should be 0")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := pathGraph(t, 5)
	sub := g.InducedSubgraph([]NodeID{0, 1, 2, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatal("induced subgraph missing expected edges")
	}
}

func TestCutSize(t *testing.T) {
	g := pathGraph(t, 4)
	s := map[NodeID]struct{}{0: {}, 1: {}}
	if got := g.CutSize(s); got != 1 {
		t.Fatalf("CutSize = %d, want 1", got)
	}
	s = map[NodeID]struct{}{1: {}, 3: {}}
	if got := g.CutSize(s); got != 3 {
		t.Fatalf("CutSize = %d, want 3", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := pathGraph(t, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	if _, err := c.RemoveNode(1); err != nil {
		t.Fatalf("RemoveNode on clone: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatal("mutating clone affected original")
	}
	if g.Equal(c) {
		t.Fatal("graphs should differ after clone mutation")
	}
}

func TestEqual(t *testing.T) {
	a := pathGraph(t, 3)
	b := pathGraph(t, 3)
	if !a.Equal(b) {
		t.Fatal("identical path graphs not Equal")
	}
	// Same node/edge count, different wiring.
	c := New()
	mustAddNodes(t, c, 0, 1, 2)
	mustAddEdges(t, c, [2]NodeID{0, 1}, [2]NodeID{0, 2})
	if a.Equal(c) {
		t.Fatal("different graphs reported Equal")
	}
}

func TestForEachNeighbor(t *testing.T) {
	g := pathGraph(t, 3)
	seen := map[NodeID]bool{}
	g.ForEachNeighbor(1, func(w NodeID) { seen[w] = true })
	if !seen[0] || !seen[2] || len(seen) != 2 {
		t.Fatalf("ForEachNeighbor visited %v, want {0,2}", seen)
	}
}
