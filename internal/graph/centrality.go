package graph

// EdgeBetweenness returns, for every edge, the number of shortest paths
// between node pairs that traverse it (each unordered pair counted once,
// path counts split fractionally across ties) — Brandes' algorithm adapted
// to edges on unweighted graphs.
//
// This is the routing-congestion measure the Xheal paper motivates via the
// spectral gap (§1.1): if all pairs route along shortest paths, the most
// loaded link carries exactly the maximum edge betweenness.
func (g *Graph) EdgeBetweenness() map[Edge]float64 {
	out := make(map[Edge]float64, g.edges)
	nodes := g.Nodes()
	// Scratch structures reused across sources.
	sigma := make(map[NodeID]float64, len(nodes))
	dist := make(map[NodeID]int, len(nodes))
	delta := make(map[NodeID]float64, len(nodes))
	preds := make(map[NodeID][]NodeID, len(nodes))

	for _, s := range nodes {
		// BFS from s computing shortest-path counts and predecessors.
		for k := range sigma {
			delete(sigma, k)
		}
		for k := range dist {
			delete(dist, k)
		}
		for k := range delta {
			delete(delta, k)
		}
		for k := range preds {
			delete(preds, k)
		}
		var stack []NodeID
		sigma[s] = 1
		dist[s] = 0
		queue := []NodeID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for w := range g.adj[v] {
				dw, seen := dist[w]
				if !seen {
					dist[w] = dist[v] + 1
					dw = dist[w]
					queue = append(queue, w)
				}
				if dw == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				c := sigma[v] / sigma[w] * (1 + delta[w])
				out[NewEdge(v, w)] += c
				delta[v] += c
			}
		}
	}
	// Each unordered pair was counted from both endpoints.
	for e := range out {
		out[e] /= 2
	}
	return out
}

// MaxEdgeBetweenness returns the maximum and mean edge betweenness — the
// worst and average link congestion under all-pairs shortest-path routing.
// Zero for graphs with no edges.
func (g *Graph) MaxEdgeBetweenness() (maxLoad, meanLoad float64) {
	bc := g.EdgeBetweenness()
	if len(bc) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range bc {
		if v > maxLoad {
			maxLoad = v
		}
		sum += v
	}
	return maxLoad, sum / float64(len(bc))
}

// ArticulationPoints returns the cut vertices of g (nodes whose removal
// disconnects their component), ascending — Tarjan's low-link DFS. These
// are an adversary's most damaging targets.
func (g *Graph) ArticulationPoints() []NodeID {
	index := make(map[NodeID]int, len(g.adj))
	low := make(map[NodeID]int, len(g.adj))
	isCut := make(map[NodeID]bool)
	counter := 0

	// Iterative DFS to avoid recursion depth limits on path-like graphs.
	type frame struct {
		node, parent NodeID
		nbrs         []NodeID
		next         int
		children     int
	}
	for _, root := range g.Nodes() {
		if _, seen := index[root]; seen {
			continue
		}
		counter++
		index[root] = counter
		low[root] = counter
		stack := []frame{{node: root, parent: root, nbrs: g.Neighbors(root)}}
		rootChildren := 0
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.nbrs) {
				w := f.nbrs[f.next]
				f.next++
				if w == f.parent {
					continue
				}
				if wi, seen := index[w]; seen {
					if wi < low[f.node] {
						low[f.node] = wi
					}
					continue
				}
				counter++
				index[w] = counter
				low[w] = counter
				f.children++
				if f.node == root {
					rootChildren++
				}
				stack = append(stack, frame{node: w, parent: f.node, nbrs: g.Neighbors(w)})
				continue
			}
			// Post-order: propagate low-link to parent.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.node] < low[p.node] {
					low[p.node] = low[f.node]
				}
				if p.node != root && low[f.node] >= index[p.node] {
					isCut[p.node] = true
				}
			}
		}
		if rootChildren >= 2 {
			isCut[root] = true
		}
	}
	out := make([]NodeID, 0, len(isCut))
	for n := range isCut {
		out = append(out, n)
	}
	sortNodeIDs(out)
	return out
}
