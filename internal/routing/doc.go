// Package routing implements the paper's first future-work item ("Can we
// efficiently find new routes to replace the routes damaged by the
// deletions?"): a route table maintained on top of the healed graph, with
// *localized* route repair.
//
// A Table pins routes between (source, destination) pairs. When a deletion
// breaks a route, Repair splices the gap locally: it keeps the undamaged
// prefix and suffix and searches for a short detour between the endpoints
// adjacent to the damage. Because Xheal replaces every deleted node with an
// expander cloud of logarithmic diameter, the detour is short and the
// repair touches only the neighborhood of the wound; RepairStats counts
// reused hops, detour lengths, and full-recompute fallbacks, and the
// route-repair experiment (and examples/route-repair) reports the measured
// locality. The paper's O(log n) stretch bound (Theorem 2.2) is what makes
// the spliced routes competitive with recomputed ones.
package routing
