package routing

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/workload"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestPinAndGet(t *testing.T) {
	g := mustGraph(workload.Path(6))
	tab := NewTable()
	r, err := tab.Pin(g, 0, 5)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if r.Len() != 5 {
		t.Fatalf("route length = %d, want 5", r.Len())
	}
	if !r.Valid(g) {
		t.Fatal("fresh route invalid")
	}
	got, err := tab.Get(0, 5)
	if err != nil || got.Len() != 5 {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := tab.Get(5, 0); !errors.Is(err, ErrUnknownPair) {
		t.Fatalf("reverse pair error = %v, want ErrUnknownPair", err)
	}
}

func TestPinValidation(t *testing.T) {
	g := mustGraph(workload.Path(4))
	tab := NewTable()
	if _, err := tab.Pin(g, 0, 0); !errors.Is(err, ErrBadPair) {
		t.Fatalf("self pair error = %v", err)
	}
	if _, err := tab.Pin(g, 0, 99); !errors.Is(err, ErrBadPair) {
		t.Fatalf("missing node error = %v", err)
	}
	disc := graph.New()
	disc.EnsureNode(1)
	disc.EnsureNode(2)
	if _, err := tab.Pin(disc, 1, 2); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("disconnected error = %v", err)
	}
}

func TestValidDetectsDamage(t *testing.T) {
	g := mustGraph(workload.Path(5))
	tab := NewTable()
	r, err := tab.Pin(g, 0, 4)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if _, err := g.RemoveNode(2); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if r.Valid(g) {
		t.Fatal("route through deleted node reported valid")
	}
}

func TestOnDeleteRepairsThroughHealing(t *testing.T) {
	// An Xheal-healed network: routes broken by a deletion must be
	// repairable through the expander cloud the healer installs.
	g0 := mustGraph(workload.Star(10))
	s, err := core.NewState(core.Config{Kappa: 4, Seed: 3}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	tab := NewTable()
	// Leaf-to-leaf routes all pass through the hub.
	for i := graph.NodeID(1); i <= 5; i++ {
		if _, err := tab.Pin(s.Graph(), i, i+5); err != nil {
			t.Fatalf("Pin: %v", err)
		}
	}
	if err := s.DeleteNode(0); err != nil {
		t.Fatalf("DeleteNode: %v", err)
	}
	tab.OnDelete(s.Graph(), 0)

	stats := tab.Stats()
	if stats.Lost != 0 {
		t.Fatalf("lost %d routes; healing should keep endpoints connected", stats.Lost)
	}
	if stats.Repairs != 5 {
		t.Fatalf("repairs = %d, want 5", stats.Repairs)
	}
	for i := graph.NodeID(1); i <= 5; i++ {
		r, err := tab.Get(i, i+5)
		if err != nil {
			t.Fatalf("Get(%d,%d): %v", i, i+5, err)
		}
		if !r.Valid(s.Graph()) {
			t.Fatalf("repaired route %v invalid", r.Hops)
		}
	}
}

func TestOnDeleteDropsDeadEndpoints(t *testing.T) {
	g := mustGraph(workload.Path(4))
	tab := NewTable()
	if _, err := tab.Pin(g, 0, 3); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if _, err := g.RemoveNode(3); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	tab.OnDelete(g, 3)
	if tab.Routes() != 0 {
		t.Fatal("route with dead endpoint not dropped")
	}
	if tab.Stats().Lost != 1 {
		t.Fatalf("lost = %d, want 1", tab.Stats().Lost)
	}
}

func TestOnDeleteDropsDisconnected(t *testing.T) {
	// No healer: deleting the middle of a path disconnects it.
	g := mustGraph(workload.Path(5))
	tab := NewTable()
	if _, err := tab.Pin(g, 0, 4); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if _, err := g.RemoveNode(2); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	tab.OnDelete(g, 2)
	if tab.Routes() != 0 || tab.Stats().Lost != 1 {
		t.Fatalf("routes=%d lost=%d, want 0/1", tab.Routes(), tab.Stats().Lost)
	}
}

func TestRepairLocality(t *testing.T) {
	// On a long healed path, repairing a mid-route deletion must reuse most
	// of the route: the repair is localized to the wound.
	n := 40
	g0 := mustGraph(workload.Path(n))
	s, err := core.NewState(core.Config{Kappa: 4, Seed: 7}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	tab := NewTable()
	if _, err := tab.Pin(s.Graph(), 0, graph.NodeID(n-1)); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	victim := graph.NodeID(n / 2)
	if err := s.DeleteNode(victim); err != nil {
		t.Fatalf("DeleteNode: %v", err)
	}
	tab.OnDelete(s.Graph(), victim)
	stats := tab.Stats()
	if stats.Repairs != 1 || stats.Lost != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.HopsTotal == 0 {
		t.Fatal("no hops accounted")
	}
	locality := float64(stats.HopsReused) / float64(stats.HopsTotal)
	if locality < 0.8 {
		t.Fatalf("route repair reused only %.0f%% of hops; want >= 80%% (localized)", 100*locality)
	}
}

func TestRepairUnderChurn(t *testing.T) {
	g0 := mustGraph(workload.Complete(16))
	s, err := core.NewState(core.Config{Kappa: 4, Seed: 9}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	tab := NewTable()
	rng := rand.New(rand.NewSource(13))
	// Pin routes among the first few nodes; delete others around them.
	pairs := [][2]graph.NodeID{{1, 2}, {3, 4}, {5, 6}}
	for _, p := range pairs {
		if _, err := tab.Pin(s.Graph(), p[0], p[1]); err != nil {
			t.Fatalf("Pin: %v", err)
		}
	}
	protected := map[graph.NodeID]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true}
	for step := 0; step < 8; step++ {
		alive := s.AliveNodes()
		var victim graph.NodeID
		found := false
		for _, cand := range alive {
			if !protected[cand] {
				victim = cand
				found = true
				break
			}
		}
		if !found {
			break
		}
		if err := s.DeleteNode(victim); err != nil {
			t.Fatalf("DeleteNode: %v", err)
		}
		tab.OnDelete(s.Graph(), victim)
		_ = rng
		for _, p := range pairs {
			r, err := tab.Get(p[0], p[1])
			if err != nil {
				t.Fatalf("route %v lost: %v", p, err)
			}
			if !r.Valid(s.Graph()) {
				t.Fatalf("route %v invalid after step %d", p, step)
			}
		}
	}
	if tab.Stats().Lost != 0 {
		t.Fatalf("lost routes under healing: %+v", tab.Stats())
	}
}

func TestDedupeWalk(t *testing.T) {
	in := []graph.NodeID{1, 2, 3, 2, 4}
	out := dedupeWalk(in)
	want := []graph.NodeID{1, 2, 4}
	if len(out) != len(want) {
		t.Fatalf("dedupeWalk = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dedupeWalk = %v, want %v", out, want)
		}
	}
}
