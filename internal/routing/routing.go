package routing

import (
	"errors"
	"fmt"

	"github.com/xheal/xheal/internal/graph"
)

// Sentinel errors.
var (
	ErrNoRoute     = errors.New("routing: endpoints are not connected")
	ErrUnknownPair = errors.New("routing: no route registered for pair")
	ErrBadPair     = errors.New("routing: invalid source/destination")
)

// Pair identifies a pinned route.
type Pair struct {
	Src, Dst graph.NodeID
}

// Route is a currently valid path between a pair, inclusive of endpoints.
type Route struct {
	Pair Pair
	Hops []graph.NodeID
}

// Len returns the hop count (edges) of the route.
func (r *Route) Len() int { return len(r.Hops) - 1 }

// RepairStats aggregates the locality of the route repairs performed.
type RepairStats struct {
	// Repairs counts routes that needed fixing; Rebuilt counts the subset
	// that fell back to a full shortest-path recomputation.
	Repairs int
	Rebuilt int
	// HopsReused / HopsTotal measure locality: reused hops are nodes kept
	// from the damaged route.
	HopsReused int
	HopsTotal  int
	// Lost counts routes whose endpoints were themselves deleted or became
	// disconnected (dropped from the table).
	Lost int
}

// Table maintains pinned routes over an externally healed graph. It is not
// safe for concurrent mutation.
type Table struct {
	routes map[Pair]*Route
	stats  RepairStats
}

// NewTable returns an empty route table.
func NewTable() *Table {
	return &Table{routes: make(map[Pair]*Route)}
}

// Stats returns a copy of the repair counters.
func (t *Table) Stats() RepairStats { return t.stats }

// Routes returns the number of pinned routes.
func (t *Table) Routes() int { return len(t.routes) }

// Pin registers (or refreshes) a route between src and dst over g.
func (t *Table) Pin(g *graph.Graph, src, dst graph.NodeID) (*Route, error) {
	if src == dst || !g.HasNode(src) || !g.HasNode(dst) {
		return nil, fmt.Errorf("pin %d->%d: %w", src, dst, ErrBadPair)
	}
	hops := g.ShortestPath(src, dst)
	if hops == nil {
		return nil, fmt.Errorf("pin %d->%d: %w", src, dst, ErrNoRoute)
	}
	r := &Route{Pair: Pair{Src: src, Dst: dst}, Hops: hops}
	t.routes[r.Pair] = r
	return r, nil
}

// Get returns the pinned route for the pair.
func (t *Table) Get(src, dst graph.NodeID) (*Route, error) {
	r, ok := t.routes[Pair{Src: src, Dst: dst}]
	if !ok {
		return nil, fmt.Errorf("get %d->%d: %w", src, dst, ErrUnknownPair)
	}
	return r, nil
}

// Valid reports whether the route is an existing walk in g.
func (r *Route) Valid(g *graph.Graph) bool {
	if len(r.Hops) == 0 {
		return false
	}
	for i, n := range r.Hops {
		if !g.HasNode(n) {
			return false
		}
		if i > 0 && !g.HasEdge(r.Hops[i-1], n) {
			return false
		}
	}
	return true
}

// OnDelete repairs every pinned route damaged by the deletion of v, given
// the already-healed graph g. Routes whose endpoints died (or that cannot
// be reconnected) are dropped and counted as lost.
func (t *Table) OnDelete(g *graph.Graph, v graph.NodeID) {
	for pair, r := range t.routes {
		if pair.Src == v || pair.Dst == v {
			delete(t.routes, pair)
			t.stats.Lost++
			continue
		}
		if r.Valid(g) {
			continue // the deletion (plus healing) left this route intact
		}
		repaired, reused := repairRoute(g, r, v)
		if repaired == nil {
			delete(t.routes, pair)
			t.stats.Lost++
			continue
		}
		t.stats.Repairs++
		t.stats.HopsReused += reused
		t.stats.HopsTotal += len(repaired.Hops)
		if reused == 0 {
			t.stats.Rebuilt++
		}
		t.routes[pair] = repaired
	}
}

// repairRoute splices the damaged route locally: it trims the route to its
// longest valid prefix and suffix and reconnects them with a shortest detour
// between the trim points. Falls back to a full recomputation when splicing
// fails. Returns the new route and the number of hops reused from the old.
func repairRoute(g *graph.Graph, r *Route, deleted graph.NodeID) (*Route, int) {
	hops := r.Hops
	// Longest prefix of still-valid hops.
	pre := 0
	for pre+1 < len(hops) && g.HasNode(hops[pre+1]) && g.HasEdge(hops[pre], hops[pre+1]) {
		pre++
	}
	// Longest suffix of still-valid hops.
	suf := len(hops) - 1
	for suf-1 > pre && g.HasNode(hops[suf-1]) && g.HasEdge(hops[suf], hops[suf-1]) {
		suf--
	}
	prefix := hops[:pre+1]
	suffix := hops[suf:]

	detour := g.ShortestPath(prefix[len(prefix)-1], suffix[0])
	if detour == nil {
		// Local splice failed (the healed detour may bypass the trim
		// points entirely): full rebuild.
		full := g.ShortestPath(r.Pair.Src, r.Pair.Dst)
		if full == nil {
			return nil, 0
		}
		return &Route{Pair: r.Pair, Hops: full}, 0
	}
	merged := make([]graph.NodeID, 0, len(prefix)+len(detour)+len(suffix))
	merged = append(merged, prefix...)
	merged = append(merged, detour[1:]...)
	if len(suffix) > 1 {
		merged = append(merged, suffix[1:]...)
	}
	merged = dedupeWalk(merged)
	reused := len(prefix) + len(suffix)
	if reused > len(merged) {
		reused = len(merged)
	}
	return &Route{Pair: r.Pair, Hops: merged}, reused
}

// dedupeWalk removes loops from a walk (a node visited twice short-circuits
// to its last occurrence), producing a simple path.
func dedupeWalk(hops []graph.NodeID) []graph.NodeID {
	last := make(map[graph.NodeID]int, len(hops))
	for i, n := range hops {
		last[n] = i
	}
	out := make([]graph.NodeID, 0, len(hops))
	for i := 0; i < len(hops); i++ {
		n := hops[i]
		out = append(out, n)
		if j := last[n]; j > i {
			i = j // skip the loop
		}
	}
	return out
}
