package expander

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/hgraph"
)

// MinKappa is the smallest supported expander degree parameter.
const MinKappa = 2

// Mode identifies how the current member set is wired.
type Mode int

// Modes. Enums start at 1 so the zero value is invalid (Uber guide).
const (
	// ModeClique wires all pairs; used for groups of size ≤ κ+1.
	ModeClique Mode = iota + 1
	// ModeHGraph wires a random κ-regular H-graph.
	ModeHGraph
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeClique:
		return "clique"
	case ModeHGraph:
		return "hgraph"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Sentinel errors.
var (
	ErrBadKappa  = errors.New("expander: kappa must be an even integer >= 2")
	ErrMember    = errors.New("expander: node already a member")
	ErrNotMember = errors.New("expander: node is not a member")
	ErrEmpty     = errors.New("expander: member set is empty")
)

// Maintainer keeps an expander-or-clique wiring over a mutable member set.
// It is purely logical: it reports the edge set it wants, and the caller
// (the cloud layer) reconciles that with the physical graph.
//
// Not safe for concurrent use.
type Maintainer struct {
	kappa   int
	members map[graph.NodeID]struct{}
	h       *hgraph.H // nil in clique mode
	rng     *rand.Rand
	peak    int // peak size since last full H-graph rebuild

	// view caches the sorted member slice served by Members; nil when a
	// membership change has invalidated it.
	view []graph.NodeID
}

// NewMaintainer builds the initial wiring over members (at least one node).
// kappa must be an even integer ≥ 2 so that the H-graph realizes exactly
// κ = 2d.
func NewMaintainer(kappa int, members []graph.NodeID, rng *rand.Rand) (*Maintainer, error) {
	if kappa < MinKappa || kappa%2 != 0 {
		return nil, fmt.Errorf("new maintainer with kappa=%d: %w", kappa, ErrBadKappa)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("new maintainer: %w", ErrEmpty)
	}
	m := &Maintainer{
		kappa:   kappa,
		members: make(map[graph.NodeID]struct{}, len(members)),
		rng:     rng,
	}
	for _, v := range members {
		if _, dup := m.members[v]; dup {
			return nil, fmt.Errorf("new maintainer: node %d: %w", v, ErrMember)
		}
		m.members[v] = struct{}{}
	}
	if err := m.rebuild(); err != nil {
		return nil, err
	}
	return m, nil
}

// SetRand rebinds the randomness source feeding future rewiring draws (and
// the H-graph's, if one is live). Used when a maintainer built in one scope
// (a parallel repair group) is merged back into the owning state.
func (m *Maintainer) SetRand(rng *rand.Rand) {
	m.rng = rng
	if m.h != nil {
		m.h.SetRand(rng)
	}
}

// Clone returns a deep copy wired to draw from rng. The copy shares no
// mutable memory with the original.
func (m *Maintainer) Clone(rng *rand.Rand) *Maintainer {
	c := &Maintainer{
		kappa:   m.kappa,
		members: make(map[graph.NodeID]struct{}, len(m.members)),
		rng:     rng,
		peak:    m.peak,
	}
	for v := range m.members {
		c.members[v] = struct{}{}
	}
	if m.h != nil {
		c.h = m.h.Clone(rng)
	}
	return c
}

// Kappa returns the degree parameter.
func (m *Maintainer) Kappa() int { return m.kappa }

// Size returns the number of members.
func (m *Maintainer) Size() int { return len(m.members) }

// Mode returns the current wiring mode.
func (m *Maintainer) Mode() Mode {
	if m.h != nil {
		return ModeHGraph
	}
	return ModeClique
}

// Contains reports whether v is a member.
func (m *Maintainer) Contains(v graph.NodeID) bool {
	_, ok := m.members[v]
	return ok
}

// Members returns the member set in ascending order. The slice is a cached
// read-only view: callers must not modify it, and it is only valid until the
// next Add/Remove/Rebuild (copy to retain).
func (m *Maintainer) Members() []graph.NodeID {
	if m.view == nil {
		view := make([]graph.NodeID, 0, len(m.members))
		for v := range m.members {
			view = append(view, v)
		}
		slices.Sort(view)
		m.view = view
	}
	return m.view
}

// Add inserts a new member and rewires incrementally (H-graph INSERT) or by
// clique extension; crossing the size threshold upgrades clique → H-graph.
func (m *Maintainer) Add(v graph.NodeID) error {
	if m.Contains(v) {
		return fmt.Errorf("add %d: %w", v, ErrMember)
	}
	m.members[v] = struct{}{}
	m.view = nil
	if len(m.members) > m.peak {
		m.peak = len(m.members)
	}
	if m.h == nil {
		if len(m.members) > m.kappa+1 {
			return m.rebuild() // upgrade to H-graph
		}
		return nil // clique grows implicitly; Edges() reflects it
	}
	return m.h.Insert(v)
}

// Remove deletes a member and rewires incrementally (H-graph DELETE) or by
// clique shrink; crossing the size threshold downgrades H-graph → clique,
// and losing half the peak size triggers a full rebuild.
func (m *Maintainer) Remove(v graph.NodeID) error {
	if !m.Contains(v) {
		return fmt.Errorf("remove %d: %w", v, ErrNotMember)
	}
	delete(m.members, v)
	m.view = nil
	if m.h == nil {
		return nil
	}
	if len(m.members) <= m.kappa+1 {
		m.h = nil // downgrade to clique
		m.peak = len(m.members)
		return nil
	}
	if err := m.h.Delete(v); err != nil {
		return err
	}
	if 2*len(m.members) <= m.peak {
		// Half the nodes lost since last rebuild: refresh the randomness
		// (paper §5 last paragraph) so Theorem 4's w.h.p. bound keeps holding.
		return m.rebuild()
	}
	return nil
}

// Rebuild rewires the current member set from scratch.
func (m *Maintainer) Rebuild() error { return m.rebuild() }

func (m *Maintainer) rebuild() error {
	m.peak = len(m.members)
	if len(m.members) <= m.kappa+1 {
		m.h = nil
		return nil
	}
	h, err := hgraph.New(m.kappa/2, m.Members(), m.rng)
	if err != nil {
		return fmt.Errorf("rebuild expander: %w", err)
	}
	m.h = h
	return nil
}

// Edges returns the logical edge set of the current wiring in canonical
// order: all pairs in clique mode, the H-graph's simple edges otherwise.
func (m *Maintainer) Edges() []graph.Edge {
	if m.h != nil {
		return m.h.Edges()
	}
	members := m.Members()
	if len(members) < 2 {
		return nil
	}
	out := make([]graph.Edge, 0, len(members)*(len(members)-1)/2)
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			out = append(out, graph.Edge{U: members[i], V: members[j]})
		}
	}
	return out
}

// EdgeSet returns the logical edges as a set, for efficient diffing by the
// cloud layer.
func (m *Maintainer) EdgeSet() map[graph.Edge]struct{} {
	edges := m.Edges()
	out := make(map[graph.Edge]struct{}, len(edges))
	for _, e := range edges {
		out[e] = struct{}{}
	}
	return out
}

// Validate checks internal consistency (H-graph structure, mode/threshold
// agreement). Used by tests and the harness invariant checker.
func (m *Maintainer) Validate() error {
	if m.h == nil {
		if len(m.members) > m.kappa+1 {
			return fmt.Errorf("expander: %d members in clique mode exceeds kappa+1=%d", len(m.members), m.kappa+1)
		}
		return nil
	}
	if len(m.members) <= m.kappa+1 {
		return fmt.Errorf("expander: %d members in hgraph mode at/below kappa+1=%d", len(m.members), m.kappa+1)
	}
	if m.h.Size() != len(m.members) {
		return fmt.Errorf("expander: hgraph size %d != member count %d", m.h.Size(), len(m.members))
	}
	for v := range m.members {
		if !m.h.Contains(v) {
			return fmt.Errorf("expander: member %d missing from hgraph", v)
		}
	}
	return m.h.Validate()
}

// BuildEdges is a one-shot helper: the edge set of a κ-regular expander (or
// clique) over the given nodes, as a leader in the distributed protocol
// would construct locally (paper §5, Case 1).
func BuildEdges(kappa int, nodes []graph.NodeID, rng *rand.Rand) ([]graph.Edge, error) {
	m, err := NewMaintainer(kappa, nodes, rng)
	if err != nil {
		return nil, err
	}
	return m.Edges(), nil
}
