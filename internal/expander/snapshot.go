package expander

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/hgraph"
)

// ErrBadSnapshot wraps all snapshot-decode failures.
var ErrBadSnapshot = errors.New("expander: malformed snapshot")

// Snapshot is the serializable form of a Maintainer: the member set, the
// rebuild watermark, and — in H-graph mode — the exact wiring. Clique mode
// needs no wiring (Edges derives it from the members).
type Snapshot struct {
	Kappa   int              `json:"kappa"`
	Members []graph.NodeID   `json:"members"` // ascending
	Peak    int              `json:"peak"`
	H       *hgraph.Snapshot `json:"h,omitempty"` // nil in clique mode
}

// Snapshot captures the full internal state of m.
func (m *Maintainer) Snapshot() *Snapshot {
	s := &Snapshot{
		Kappa:   m.kappa,
		Members: append([]graph.NodeID(nil), m.Members()...),
		Peak:    m.peak,
	}
	if m.h != nil {
		s.H = m.h.Snapshot()
	}
	return s
}

// Restore rebuilds a Maintainer from a snapshot, resuming random rewiring
// from rng (the restored shared healing stream).
func Restore(s *Snapshot, rng *rand.Rand) (*Maintainer, error) {
	if s.Kappa < MinKappa || s.Kappa%2 != 0 {
		return nil, fmt.Errorf("%w: kappa=%d", ErrBadSnapshot, s.Kappa)
	}
	if len(s.Members) == 0 {
		return nil, fmt.Errorf("%w: empty member set", ErrBadSnapshot)
	}
	m := &Maintainer{
		kappa:   s.Kappa,
		members: make(map[graph.NodeID]struct{}, len(s.Members)),
		rng:     rng,
		peak:    s.Peak,
	}
	for _, v := range s.Members {
		if _, dup := m.members[v]; dup {
			return nil, fmt.Errorf("%w: duplicate member %d", ErrBadSnapshot, v)
		}
		m.members[v] = struct{}{}
	}
	if s.H != nil {
		h, err := hgraph.Restore(s.H, rng)
		if err != nil {
			return nil, err
		}
		m.h = h
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return m, nil
}
