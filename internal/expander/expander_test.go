package expander

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

func ids(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func mustMaintainer(t *testing.T, kappa, n int, seed int64) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(kappa, ids(n), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewMaintainer(kappa=%d, n=%d): %v", kappa, n, err)
	}
	return m
}

func materialize(m *Maintainer) *graph.Graph {
	g := graph.New()
	for _, v := range m.Members() {
		g.EnsureNode(v)
	}
	for _, e := range m.Edges() {
		g.EnsureEdge(e.U, e.V)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMaintainer(3, ids(5), rng); !errors.Is(err, ErrBadKappa) {
		t.Fatalf("odd kappa error = %v, want ErrBadKappa", err)
	}
	if _, err := NewMaintainer(0, ids(5), rng); !errors.Is(err, ErrBadKappa) {
		t.Fatalf("zero kappa error = %v, want ErrBadKappa", err)
	}
	if _, err := NewMaintainer(4, nil, rng); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty error = %v, want ErrEmpty", err)
	}
	if _, err := NewMaintainer(4, []graph.NodeID{1, 1}, rng); !errors.Is(err, ErrMember) {
		t.Fatalf("dup error = %v, want ErrMember", err)
	}
}

func TestSmallGroupIsClique(t *testing.T) {
	kappa := 4
	for n := 1; n <= kappa+1; n++ {
		m := mustMaintainer(t, kappa, n, int64(n))
		if m.Mode() != ModeClique {
			t.Fatalf("n=%d mode = %v, want clique", n, m.Mode())
		}
		if got, want := len(m.Edges()), n*(n-1)/2; got != want {
			t.Fatalf("n=%d edges = %d, want %d", n, got, want)
		}
	}
}

func TestLargeGroupIsHGraph(t *testing.T) {
	m := mustMaintainer(t, 4, 10, 1)
	if m.Mode() != ModeHGraph {
		t.Fatalf("mode = %v, want hgraph", m.Mode())
	}
	g := materialize(m)
	if g.MaxDegree() > 4 {
		t.Fatalf("max degree %d exceeds kappa=4", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Fatal("expander graph not connected")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDegreeNeverExceedsKappa(t *testing.T) {
	for _, kappa := range []int{2, 4, 6, 8} {
		for _, n := range []int{1, 3, kappa, kappa + 1, kappa + 2, 3 * kappa} {
			m := mustMaintainer(t, kappa, n, int64(kappa*100+n))
			g := materialize(m)
			if g.MaxDegree() > kappa {
				t.Fatalf("kappa=%d n=%d: max degree %d", kappa, n, g.MaxDegree())
			}
		}
	}
}

func TestUpgradeToHGraphOnAdd(t *testing.T) {
	kappa := 4
	m := mustMaintainer(t, kappa, kappa+1, 3)
	if m.Mode() != ModeClique {
		t.Fatal("expected clique before threshold")
	}
	if err := m.Add(graph.NodeID(100)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if m.Mode() != ModeHGraph {
		t.Fatal("expected hgraph after crossing threshold")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := m.Add(graph.NodeID(100)); !errors.Is(err, ErrMember) {
		t.Fatalf("dup add error = %v, want ErrMember", err)
	}
}

func TestDowngradeToCliqueOnRemove(t *testing.T) {
	kappa := 4
	m := mustMaintainer(t, kappa, kappa+2, 3)
	if m.Mode() != ModeHGraph {
		t.Fatal("expected hgraph above threshold")
	}
	if err := m.Remove(0); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m.Mode() != ModeClique {
		t.Fatal("expected clique after shrink")
	}
	if err := m.Remove(0); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double remove error = %v, want ErrNotMember", err)
	}
}

func TestHalfLossTriggersRebuildAndStaysValid(t *testing.T) {
	m := mustMaintainer(t, 4, 40, 9)
	for i := 0; i < 30; i++ {
		if err := m.Remove(graph.NodeID(i)); err != nil {
			t.Fatalf("Remove(%d): %v", i, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Validate after remove %d: %v", i, err)
		}
	}
	if m.Size() != 10 {
		t.Fatalf("Size = %d, want 10", m.Size())
	}
}

func TestConnectivityUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := mustMaintainer(t, 6, 20, 5)
	next := graph.NodeID(1000)
	for step := 0; step < 300; step++ {
		if m.Size() > 2 && rng.Intn(2) == 0 {
			members := m.Members()
			if err := m.Remove(members[rng.Intn(len(members))]); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
		} else {
			if err := m.Add(next); err != nil {
				t.Fatalf("step %d add: %v", step, err)
			}
			next++
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("step %d validate: %v", step, err)
		}
		if m.Size() >= 2 && !materialize(m).IsConnected() {
			t.Fatalf("step %d: expander disconnected (size %d, mode %v)", step, m.Size(), m.Mode())
		}
	}
}

func TestExpansionIsConstant(t *testing.T) {
	// The point of the substrate: groups wired by the maintainer have λ₂
	// bounded away from zero regardless of size.
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 30, 100} {
		m := mustMaintainer(t, 6, n, int64(n))
		lam := spectral.AlgebraicConnectivity(materialize(m), rng)
		if lam < 0.3 {
			t.Fatalf("n=%d: λ₂ = %v, want >= 0.3", n, lam)
		}
	}
}

func TestBuildEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	edges, err := BuildEdges(4, ids(3), rng)
	if err != nil {
		t.Fatalf("BuildEdges: %v", err)
	}
	if len(edges) != 3 {
		t.Fatalf("clique of 3 should have 3 edges, got %d", len(edges))
	}
	if _, err := BuildEdges(5, ids(3), rng); !errors.Is(err, ErrBadKappa) {
		t.Fatalf("BuildEdges odd kappa error = %v", err)
	}
}

func TestPropertyModeMatchesThreshold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kappa := 2 * (1 + rng.Intn(4))
		n := 1 + rng.Intn(3*kappa)
		m, err := NewMaintainer(kappa, ids(n), rng)
		if err != nil {
			return false
		}
		for step := 0; step < 40; step++ {
			if m.Size() > 1 && rng.Intn(2) == 0 {
				members := m.Members()
				if m.Remove(members[rng.Intn(len(members))]) != nil {
					return false
				}
			} else {
				if m.Add(graph.NodeID(10000+step)) != nil {
					return false
				}
			}
			wantClique := m.Size() <= kappa+1
			if wantClique != (m.Mode() == ModeClique) {
				return false
			}
			if m.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildKeepsMembersAndValidity(t *testing.T) {
	m := mustMaintainer(t, 4, 12, 17)
	before := m.Members()
	if err := m.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	after := m.Members()
	if len(before) != len(after) {
		t.Fatalf("Rebuild changed membership: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Rebuild changed membership: %v -> %v", before, after)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate after Rebuild: %v", err)
	}
	if !materialize(m).IsConnected() {
		t.Fatal("rebuilt expander disconnected")
	}
}

func TestModeString(t *testing.T) {
	if ModeClique.String() != "clique" || ModeHGraph.String() != "hgraph" {
		t.Fatal("Mode strings wrong")
	}
	if Mode(0).String() != "Mode(0)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestEdgeSetMatchesEdges(t *testing.T) {
	m := mustMaintainer(t, 4, 9, 19)
	set := m.EdgeSet()
	edges := m.Edges()
	if len(set) != len(edges) {
		t.Fatalf("EdgeSet size %d != Edges %d", len(set), len(edges))
	}
	for _, e := range edges {
		if _, ok := set[e]; !ok {
			t.Fatalf("edge %v missing from set", e)
		}
	}
}

func TestSingletonAndPairEdges(t *testing.T) {
	single := mustMaintainer(t, 4, 1, 3)
	if len(single.Edges()) != 0 {
		t.Fatal("singleton should have no edges")
	}
	pair := mustMaintainer(t, 4, 2, 3)
	if len(pair.Edges()) != 1 {
		t.Fatalf("pair edges = %d, want 1", len(pair.Edges()))
	}
}

func TestKappaAccessor(t *testing.T) {
	m := mustMaintainer(t, 6, 4, 1)
	if m.Kappa() != 6 {
		t.Fatalf("Kappa = %d, want 6", m.Kappa())
	}
}
