// Package expander maintains a κ-regular expander — or a clique when the
// group is small — over a mutable member set. It is the building block the
// Xheal algorithm uses for its primary and secondary clouds (paper §3: "we
// assume the existence of a κ-regular expander with edge expansion α > 2",
// realized in §5 with Law–Siu H-graphs from internal/hgraph).
//
// Mode rules, following the paper:
//
//   - groups of size ≤ κ+1 are wired as a clique (every node degree ≤ κ);
//   - larger groups are wired as a random H-graph with d = κ/2 Hamilton
//     cycles (nominal degree κ = 2d);
//   - when a group has lost half its peak size since the last full rebuild,
//     the H-graph is rebuilt from scratch to restore the
//     with-high-probability expansion guarantee (paper §5, final remark).
//
// A Maintainer reports every wiring change as an edge delta, which is how
// cloud rewiring propagates into core.State's claim bookkeeping (and from
// there into the distributed engine's per-node update messages). Members
// views follow the same cached read-only contract as internal/graph.
package expander
