package adversary

import (
	"math/rand"

	"github.com/xheal/xheal/internal/graph"
)

// The view-driven adversaries in this package model the paper's omniscient
// attacker: they inspect the whole healed topology before every move. A
// maintenance daemon's clients cannot do that — many of them act at once and
// none sees the coalesced state — so ClientStream generates adversarial
// churn from purely client-local knowledge: the nodes this client itself
// inserted plus a fixed set of anchor nodes it was told about at connect
// time. Streams with disjoint namespaces and delete-only-your-own behavior
// never conflict with each other, no matter how their events interleave,
// which is exactly what a load generator needs to drive a concurrent server
// at full speed while the run stays verifiable.

// ClientStreamBase is the start of the client-stream ID space. Each client
// owns the range [base+client·stride, base+(client+1)·stride); the space is
// far above the view-driven adversaries' own allocator (1<<20) so the two
// kinds of load can share a network.
const (
	ClientStreamBase   graph.NodeID = 1 << 30
	ClientStreamStride graph.NodeID = 1 << 20
)

// ClientStream generates one client's event stream against a live
// maintenance service. Events are valid by construction provided the stream
// is driven sequentially (submit an event, wait for it to apply, then ask
// for the next) and the anchors are never deleted: insertions use fresh IDs
// from the client's private namespace and attach only to anchors or to the
// client's own live nodes; deletions target only the client's own nodes.
type ClientStream struct {
	rng        *rand.Rand
	anchors    []graph.NodeID
	own        []graph.NodeID
	next       graph.NodeID
	deleteBias float64
	maxAttach  int
}

// NewClientStream returns the event stream for one load-generator client.
// client numbers its namespace; anchors are initial-topology nodes that no
// client ever deletes; deleteBias in [0,1) is the probability of deleting
// one of the client's own earlier insertions instead of inserting.
func NewClientStream(client int, anchors []graph.NodeID, deleteBias float64, maxAttach int, seed int64) *ClientStream {
	if maxAttach < 1 {
		maxAttach = 1
	}
	return &ClientStream{
		rng:        rand.New(rand.NewSource(seed ^ int64(client)<<17)),
		anchors:    append([]graph.NodeID(nil), anchors...),
		next:       ClientStreamBase + graph.NodeID(client)*ClientStreamStride,
		deleteBias: deleteBias,
		maxAttach:  maxAttach,
	}
}

// Next returns the stream's next event. The stream assumes every returned
// event is applied before Next is called again; Owns reports the live set
// that assumption implies.
func (c *ClientStream) Next() Event {
	if len(c.own) > 0 && c.rng.Float64() < c.deleteBias {
		i := c.rng.Intn(len(c.own))
		victim := c.own[i]
		c.own[i] = c.own[len(c.own)-1]
		c.own = c.own[:len(c.own)-1]
		return Event{Kind: Delete, Node: victim}
	}
	// Attach to a uniform sample of anchors ∪ own. Connectivity to the
	// stable core is transitive — every owned node traces back to an
	// anchor — so no per-insertion anchor guarantee is needed.
	pool := make([]graph.NodeID, 0, len(c.anchors)+len(c.own))
	pool = append(pool, c.anchors...)
	pool = append(pool, c.own...)
	k := 1 + c.rng.Intn(c.maxAttach)
	if k > len(pool) {
		k = len(pool)
	}
	nbrs := make([]graph.NodeID, 0, k)
	seen := make(map[graph.NodeID]struct{}, k)
	for len(nbrs) < k {
		w := pool[c.rng.Intn(len(pool))]
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		nbrs = append(nbrs, w)
	}
	id := c.next
	c.next++
	c.own = append(c.own, id)
	return Event{Kind: Insert, Node: id, Neighbors: nbrs}
}

// Owns returns the nodes the stream believes it has inserted and not yet
// deleted. Read-only view.
func (c *ClientStream) Owns() []graph.NodeID { return c.own }
