package adversary

import (
	"math/rand"
	"time"
)

// Backoff computes full-jitter exponential backoff delays for retryable
// rejections (a loaded daemon answering 503 on queue backpressure). Attempt
// k draws uniformly from [0, min(Max, Base<<k)): the exponential envelope
// bounds the wait, and the jitter decorrelates a herd of clients that were
// all rejected by the same full queue.
type Backoff struct {
	// Base scales the envelope: attempt 0 draws from [0, Base).
	Base time.Duration
	// Max caps the envelope regardless of attempt count.
	Max time.Duration
	// Rng drives the jitter; a seeded source keeps load runs reproducible.
	Rng *rand.Rand
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	env := b.Base
	for i := 0; i < attempt && env < b.Max; i++ {
		env *= 2
	}
	if env > b.Max {
		env = b.Max
	}
	if env <= 0 {
		return 0
	}
	return time.Duration(b.Rng.Int63n(int64(env)))
}
