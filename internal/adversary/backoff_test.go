package adversary

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffEnvelope pins the full-jitter contract: every delay for attempt
// k lies in [0, min(Max, Base<<k)), and the envelope saturates at Max.
func TestBackoffEnvelope(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Rng: rand.New(rand.NewSource(1))}
	for attempt := 0; attempt < 12; attempt++ {
		env := time.Millisecond << attempt
		if env > b.Max {
			env = b.Max
		}
		for trial := 0; trial < 200; trial++ {
			d := b.Delay(attempt)
			if d < 0 || d >= env {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, env)
			}
		}
	}
}

// TestBackoffZeroEnvelope: a non-positive envelope yields zero delay rather
// than panicking in Int63n.
func TestBackoffZeroEnvelope(t *testing.T) {
	b := Backoff{Base: 0, Max: 0, Rng: rand.New(rand.NewSource(1))}
	if d := b.Delay(0); d != 0 {
		t.Fatalf("zero envelope delay = %v, want 0", d)
	}
}
