package adversary

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/xheal/xheal/internal/graph"
)

// ErrBadScript wraps all script-parsing failures.
var ErrBadScript = errors.New("adversary: malformed script")

// NewScripted returns an adversary replaying exactly the given events, in
// order. The events are copied, so the caller may keep mutating its slice —
// the conformance shrinker relies on this while minimizing schedules.
func NewScripted(events ...Event) *Scripted {
	copied := make([]Event, len(events))
	for i, ev := range events {
		copied[i] = ev
		copied[i].Neighbors = append([]graph.NodeID(nil), ev.Neighbors...)
	}
	return &Scripted{Events: copied}
}

// Script renders the remaining-plus-consumed event list in the line-based
// text form accepted by ParseScript. It is the Scripted adversary's
// round-trip encoding: ParseScript(s.Script()) reproduces s.Events.
func (a *Scripted) Script() string { return EncodeScript(a.Events) }

// EncodeScript renders events one per line:
//
//	insert <node> <nbr>,<nbr>,...
//	delete <node>
//
// The encoding is the shrinker's and fuzzer's schedule representation: it is
// trivially splittable by line, diffable, and survives a round trip through
// ParseScript unchanged.
func EncodeScript(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		switch ev.Kind {
		case Insert:
			b.WriteString("insert ")
			b.WriteString(strconv.FormatInt(int64(ev.Node), 10))
			for i, w := range ev.Neighbors {
				if i == 0 {
					b.WriteByte(' ')
				} else {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatInt(int64(w), 10))
			}
		case Delete:
			b.WriteString("delete ")
			b.WriteString(strconv.FormatInt(int64(ev.Node), 10))
		default:
			b.WriteString("unknown ")
			b.WriteString(strconv.FormatInt(int64(ev.Node), 10))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseScript parses the EncodeScript text form. Blank lines and lines
// starting with '#' are skipped, so scripts can carry comments.
func ParseScript(s string) ([]Event, error) {
	var events []Event
	for lineNo, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		ev, err := parseScriptLine(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d %q: %w", lineNo+1, line, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

func parseScriptLine(fields []string) (Event, error) {
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("want `<kind> <node> [nbrs]`: %w", ErrBadScript)
	}
	node, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("node %q: %w", fields[1], ErrBadScript)
	}
	switch fields[0] {
	case "delete":
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("delete takes no neighbors: %w", ErrBadScript)
		}
		return Event{Kind: Delete, Node: graph.NodeID(node)}, nil
	case "insert":
		if len(fields) > 3 {
			return Event{}, fmt.Errorf("insert neighbors must be one comma-separated field: %w", ErrBadScript)
		}
		ev := Event{Kind: Insert, Node: graph.NodeID(node)}
		if len(fields) == 3 {
			for _, part := range strings.Split(fields[2], ",") {
				if part == "" {
					continue
				}
				w, err := strconv.ParseInt(part, 10, 64)
				if err != nil {
					return Event{}, fmt.Errorf("neighbor %q: %w", part, ErrBadScript)
				}
				ev.Neighbors = append(ev.Neighbors, graph.NodeID(w))
			}
		}
		return ev, nil
	}
	return Event{}, fmt.Errorf("kind %q: %w", fields[0], ErrBadScript)
}

// Adversary names accepted by ByName, for CLIs and the conformance matrix.
const (
	NameChurn       = "churn"
	NameMaxDegree   = "maxdeg"
	NameSequential  = "sequential"
	NameDismantle   = "dismantle"
	NameCutVertex   = "cutvertex"
	NameInsertBurst = "growth"
)

// Names returns the adversary names supported by ByName, sorted.
func Names() []string {
	names := []string{
		NameChurn, NameMaxDegree, NameSequential,
		NameDismantle, NameCutVertex, NameInsertBurst,
	}
	sort.Strings(names)
	return names
}

// ByName constructs the named adversary with the default shape parameters
// the CLIs use (churn: 55% deletions, up to 3 attachments; growth: 2
// attachments). Randomized adversaries consume seed; deterministic ones
// ignore it.
func ByName(name string, steps int, seed int64) (Adversary, error) {
	switch name {
	case NameChurn:
		return NewRandomChurn(steps, 0.55, 3, seed), nil
	case NameMaxDegree:
		return NewMaxDegree(steps), nil
	case NameSequential:
		return NewSequential(steps), nil
	case NameDismantle:
		return NewPathDismantler(steps), nil
	case NameCutVertex:
		return NewCutVertex(steps), nil
	case NameInsertBurst:
		return NewInsertBurst(steps, 2, seed), nil
	}
	return nil, fmt.Errorf("unknown adversary %q (valid: %s)", name, strings.Join(Names(), " "))
}
