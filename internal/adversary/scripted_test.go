package adversary

import (
	"reflect"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func TestNewScriptedReplaysInOrder(t *testing.T) {
	events := []Event{
		{Kind: Insert, Node: 10, Neighbors: []graph.NodeID{0, 1}},
		{Kind: Delete, Node: 0},
		{Kind: Delete, Node: 10},
	}
	adv := NewScripted(events...)
	g := graph.New()
	for i, want := range events {
		got, ok := adv.Next(g)
		if !ok {
			t.Fatalf("event %d: exhausted early", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := adv.Next(g); ok {
		t.Fatal("scripted adversary did not stop after its events")
	}
}

func TestNewScriptedCopiesEvents(t *testing.T) {
	nbrs := []graph.NodeID{0, 1}
	events := []Event{{Kind: Insert, Node: 9, Neighbors: nbrs}}
	adv := NewScripted(events...)
	nbrs[0] = 99
	events[0].Node = 77
	ev, ok := adv.Next(graph.New())
	if !ok || ev.Node != 9 || ev.Neighbors[0] != 0 {
		t.Fatalf("scripted adversary aliased the caller's slices: %+v", ev)
	}
}

func TestScriptRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: Insert, Node: 1048576, Neighbors: []graph.NodeID{3, 7, 12}},
		{Kind: Delete, Node: 3},
		{Kind: Insert, Node: 1048577, Neighbors: []graph.NodeID{1048576}},
		{Kind: Delete, Node: 1048577},
	}
	text := EncodeScript(events)
	parsed, err := ParseScript(text)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if !reflect.DeepEqual(parsed, events) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", parsed, events)
	}
	// And the adversary-level round trip.
	again, err := ParseScript(NewScripted(events...).Script())
	if err != nil {
		t.Fatalf("ParseScript(Script()): %v", err)
	}
	if !reflect.DeepEqual(again, events) {
		t.Fatalf("Script round trip:\n got %+v\nwant %+v", again, events)
	}
}

func TestParseScriptSkipsCommentsAndBlanks(t *testing.T) {
	events, err := ParseScript("# a comment\n\n  delete 4  \n# another\ninsert 5 1,2\n")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	want := []Event{
		{Kind: Delete, Node: 4},
		{Kind: Insert, Node: 5, Neighbors: []graph.NodeID{1, 2}},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed %+v, want %+v", events, want)
	}
}

func TestParseScriptRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"explode 4",
		"delete",
		"delete 1 2",
		"delete x",
		"insert 5 1,y",
		"insert 5 1 2",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted a malformed line", bad)
		}
	}
}

func TestByNameCoversAllNames(t *testing.T) {
	for _, name := range Names() {
		adv, err := ByName(name, 5, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if adv == nil {
			t.Fatalf("ByName(%q) returned nil adversary", name)
		}
	}
}

func TestByNameUnknownMentionsValidSet(t *testing.T) {
	_, err := ByName("nuke", 5, 1)
	if err == nil {
		t.Fatal("unknown adversary accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention valid name %q", err, name)
		}
	}
}
