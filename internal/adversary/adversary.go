package adversary

import (
	"math/rand"
	"sort"

	"github.com/xheal/xheal/internal/graph"
)

// EventKind distinguishes insertions from deletions.
type EventKind int

// Event kinds.
const (
	// Insert adds Node with black edges to Neighbors.
	Insert EventKind = iota + 1
	// Delete removes Node and its incident edges.
	Delete
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	}
	return "unknown"
}

// Event is one adversarial action.
type Event struct {
	Kind      EventKind
	Node      graph.NodeID
	Neighbors []graph.NodeID // insertion attachments; nil for deletions
}

// Adversary produces the next attack given the current healed topology.
// Returning ok=false ends the attack sequence.
type Adversary interface {
	Next(view *graph.Graph) (ev Event, ok bool)
}

// idAllocator hands out fresh node IDs above any initial ID, so inserted
// nodes never collide with existing or deleted ones.
type idAllocator struct{ next graph.NodeID }

func newIDAllocator() *idAllocator { return &idAllocator{next: 1 << 20} }

func (a *idAllocator) alloc() graph.NodeID {
	id := a.next
	a.next++
	return id
}

// RandomChurn deletes a uniformly random node with probability DeleteBias,
// otherwise inserts a node attached to 1..MaxAttach random nodes. It stops
// after Steps events or when the graph would drop below MinNodes.
type RandomChurn struct {
	Steps      int
	DeleteBias float64
	MaxAttach  int
	MinNodes   int

	rng  *rand.Rand
	ids  *idAllocator
	done int
}

var _ Adversary = (*RandomChurn)(nil)

// NewRandomChurn returns a churn adversary with the given intensity.
func NewRandomChurn(steps int, deleteBias float64, maxAttach int, seed int64) *RandomChurn {
	return &RandomChurn{
		Steps:      steps,
		DeleteBias: deleteBias,
		MaxAttach:  maxAttach,
		MinNodes:   4,
		rng:        rand.New(rand.NewSource(seed)),
		ids:        newIDAllocator(),
	}
}

// Next implements Adversary.
func (a *RandomChurn) Next(view *graph.Graph) (Event, bool) {
	if a.done >= a.Steps {
		return Event{}, false
	}
	a.done++
	nodes := view.Nodes()
	if len(nodes) > a.MinNodes && a.rng.Float64() < a.DeleteBias {
		return Event{Kind: Delete, Node: nodes[a.rng.Intn(len(nodes))]}, true
	}
	k := 1 + a.rng.Intn(a.MaxAttach)
	if k > len(nodes) {
		k = len(nodes)
	}
	perm := a.rng.Perm(len(nodes))[:k]
	nbrs := make([]graph.NodeID, 0, k)
	for _, i := range perm {
		nbrs = append(nbrs, nodes[i])
	}
	return Event{Kind: Insert, Node: a.ids.alloc(), Neighbors: nbrs}, true
}

// MaxDegree always deletes a node of maximum degree — the attack that
// devastates tree-shaped repairs (the paper's star example generalized).
type MaxDegree struct {
	Steps    int
	MinNodes int
	done     int
}

var _ Adversary = (*MaxDegree)(nil)

// NewMaxDegree returns a max-degree-targeting deleter.
func NewMaxDegree(steps int) *MaxDegree {
	return &MaxDegree{Steps: steps, MinNodes: 3}
}

// Next implements Adversary.
func (a *MaxDegree) Next(view *graph.Graph) (Event, bool) {
	if a.done >= a.Steps || view.NumNodes() <= a.MinNodes {
		return Event{}, false
	}
	a.done++
	var victim graph.NodeID
	best := -1
	for _, n := range view.Nodes() {
		if d := view.Degree(n); d > best {
			best = d
			victim = n
		}
	}
	return Event{Kind: Delete, Node: victim}, true
}

// Sequential deletes nodes in ascending ID order (the original nodes first),
// modeling a sweep that dismantles the initial topology.
type Sequential struct {
	Steps    int
	MinNodes int
	done     int
}

var _ Adversary = (*Sequential)(nil)

// NewSequential returns a sequential deleter.
func NewSequential(steps int) *Sequential {
	return &Sequential{Steps: steps, MinNodes: 3}
}

// Next implements Adversary.
func (a *Sequential) Next(view *graph.Graph) (Event, bool) {
	if a.done >= a.Steps || view.NumNodes() <= a.MinNodes {
		return Event{}, false
	}
	a.done++
	nodes := view.Nodes()
	return Event{Kind: Delete, Node: nodes[0]}, true
}

// PathDismantler targets the interior of a diameter path, the worst case for
// the stretch guarantee (Theorem 2.2): each deletion forces detours.
type PathDismantler struct {
	Steps    int
	MinNodes int
	done     int
}

var _ Adversary = (*PathDismantler)(nil)

// NewPathDismantler returns a stretch-targeting deleter.
func NewPathDismantler(steps int) *PathDismantler {
	return &PathDismantler{Steps: steps, MinNodes: 4}
}

// Next implements Adversary.
func (a *PathDismantler) Next(view *graph.Graph) (Event, bool) {
	if a.done >= a.Steps || view.NumNodes() <= a.MinNodes {
		return Event{}, false
	}
	a.done++
	// Double-BFS heuristic for a near-diameter path, then hit its middle.
	nodes := view.Nodes()
	far := farthestFrom(view, nodes[0])
	path := view.ShortestPath(far, farthestFrom(view, far))
	if len(path) < 3 {
		// No interior: fall back to any non-endpoint node.
		return Event{Kind: Delete, Node: nodes[len(nodes)/2]}, true
	}
	return Event{Kind: Delete, Node: path[len(path)/2]}, true
}

func farthestFrom(g *graph.Graph, src graph.NodeID) graph.NodeID {
	dist := g.BFSFrom(src)
	far := src
	best := -1
	// Deterministic scan order for reproducibility.
	keys := make([]graph.NodeID, 0, len(dist))
	for n := range dist {
		keys = append(keys, n)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, n := range keys {
		if dist[n] > best {
			best = dist[n]
			far = n
		}
	}
	return far
}

// InsertBurst only inserts, attaching preferentially to high-degree nodes
// (growing hubs) — the workload for degree/stretch bookkeeping under pure
// growth (insertions cost the healer nothing, per the paper).
type InsertBurst struct {
	Steps  int
	Attach int

	rng  *rand.Rand
	ids  *idAllocator
	done int
}

var _ Adversary = (*InsertBurst)(nil)

// NewInsertBurst returns a pure-insertion adversary.
func NewInsertBurst(steps, attach int, seed int64) *InsertBurst {
	return &InsertBurst{
		Steps:  steps,
		Attach: attach,
		rng:    rand.New(rand.NewSource(seed)),
		ids:    newIDAllocator(),
	}
}

// Next implements Adversary.
func (a *InsertBurst) Next(view *graph.Graph) (Event, bool) {
	if a.done >= a.Steps {
		return Event{}, false
	}
	a.done++
	nodes := view.Nodes()
	// Degree-proportional sampling without replacement.
	total := 0
	for _, n := range nodes {
		total += view.Degree(n) + 1
	}
	chosen := make(map[graph.NodeID]struct{})
	want := a.Attach
	if want > len(nodes) {
		want = len(nodes)
	}
	for len(chosen) < want {
		r := a.rng.Intn(total)
		for _, n := range nodes {
			r -= view.Degree(n) + 1
			if r < 0 {
				chosen[n] = struct{}{}
				break
			}
		}
	}
	nbrs := make([]graph.NodeID, 0, len(chosen))
	for n := range chosen {
		nbrs = append(nbrs, n)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	return Event{Kind: Insert, Node: a.ids.alloc(), Neighbors: nbrs}, true
}

// Scripted replays a fixed list of events; used by tests and by the
// distributed-vs-sequential equivalence checks.
type Scripted struct {
	Events []Event
	pos    int
}

var _ Adversary = (*Scripted)(nil)

// Next implements Adversary.
func (a *Scripted) Next(_ *graph.Graph) (Event, bool) {
	if a.pos >= len(a.Events) {
		return Event{}, false
	}
	ev := a.Events[a.pos]
	a.pos++
	return ev, true
}

// CutVertex deletes articulation points first — the single most damaging
// deletion available to the adversary (without healing, each one
// disconnects the network) — falling back to the maximum-degree node when
// the healed graph is biconnected. A healer that survives this attack
// demonstrates the connectivity guarantee meaningfully.
type CutVertex struct {
	Steps    int
	MinNodes int
	done     int
}

var _ Adversary = (*CutVertex)(nil)

// NewCutVertex returns an articulation-point-targeting deleter.
func NewCutVertex(steps int) *CutVertex {
	return &CutVertex{Steps: steps, MinNodes: 3}
}

// Next implements Adversary.
func (a *CutVertex) Next(view *graph.Graph) (Event, bool) {
	if a.done >= a.Steps || view.NumNodes() <= a.MinNodes {
		return Event{}, false
	}
	a.done++
	if cuts := view.ArticulationPoints(); len(cuts) > 0 {
		// Deterministic: the smallest cut vertex.
		return Event{Kind: Delete, Node: cuts[0]}, true
	}
	var victim graph.NodeID
	best := -1
	for _, n := range view.Nodes() {
		if d := view.Degree(n); d > best {
			best = d
			victim = n
		}
	}
	return Event{Kind: Delete, Node: victim}, true
}
