package adversary

import (
	"testing"

	"github.com/xheal/xheal/internal/graph"
)

func testGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

func TestRandomChurnRespectsBounds(t *testing.T) {
	g := testGraph(10)
	adv := NewRandomChurn(50, 0.5, 3, 1)
	steps := 0
	for {
		ev, ok := adv.Next(g)
		if !ok {
			break
		}
		steps++
		switch ev.Kind {
		case Delete:
			if !g.HasNode(ev.Node) {
				t.Fatalf("delete target %d not in view", ev.Node)
			}
		case Insert:
			if len(ev.Neighbors) == 0 || len(ev.Neighbors) > 3 {
				t.Fatalf("insert attaches %d nodes, want 1..3", len(ev.Neighbors))
			}
			for _, w := range ev.Neighbors {
				if !g.HasNode(w) {
					t.Fatalf("insert neighbor %d not in view", w)
				}
			}
			if g.HasNode(ev.Node) {
				t.Fatalf("insert reuses id %d", ev.Node)
			}
		default:
			t.Fatalf("unknown kind %v", ev.Kind)
		}
		// Note: the view is static here; we only validate event well-formedness.
	}
	if steps != 50 {
		t.Fatalf("steps = %d, want 50", steps)
	}
}

func TestRandomChurnStopsDeletingAtMinNodes(t *testing.T) {
	g := testGraph(4) // == MinNodes default
	adv := NewRandomChurn(20, 1.0, 2, 2)
	for {
		ev, ok := adv.Next(g)
		if !ok {
			break
		}
		if ev.Kind == Delete {
			t.Fatal("deleted below MinNodes")
		}
	}
}

func TestMaxDegreeTargetsHub(t *testing.T) {
	g := graph.New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(0, 2)
	g.EnsureEdge(0, 3)
	g.EnsureEdge(3, 4)
	adv := NewMaxDegree(1)
	ev, ok := adv.Next(g)
	if !ok || ev.Kind != Delete || ev.Node != 0 {
		t.Fatalf("event = %+v ok=%v, want delete node 0", ev, ok)
	}
}

func TestMaxDegreeStopsAtMinNodes(t *testing.T) {
	g := testGraph(3)
	adv := NewMaxDegree(5)
	if _, ok := adv.Next(g); ok {
		t.Fatal("should not attack a 3-node graph")
	}
}

func TestSequentialOrder(t *testing.T) {
	g := testGraph(6)
	adv := NewSequential(2)
	ev1, ok := adv.Next(g)
	if !ok || ev1.Node != 0 {
		t.Fatalf("first delete = %+v, want node 0", ev1)
	}
	if removed, err := g.RemoveNode(0); err != nil || len(removed) == 0 {
		t.Fatalf("RemoveNode: %v", err)
	}
	ev2, ok := adv.Next(g)
	if !ok || ev2.Node != 1 {
		t.Fatalf("second delete = %+v, want node 1", ev2)
	}
}

func TestPathDismantlerHitsInterior(t *testing.T) {
	// Path 0-1-2-3-4: the dismantler must delete an interior node.
	g := graph.New()
	for i := 0; i+1 < 5; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	adv := NewPathDismantler(1)
	ev, ok := adv.Next(g)
	if !ok || ev.Kind != Delete {
		t.Fatalf("event = %+v ok=%v", ev, ok)
	}
	if ev.Node == 0 || ev.Node == 4 {
		t.Fatalf("dismantler deleted endpoint %d", ev.Node)
	}
}

func TestInsertBurstGrowsOnly(t *testing.T) {
	g := testGraph(5)
	adv := NewInsertBurst(10, 2, 3)
	count := 0
	for {
		ev, ok := adv.Next(g)
		if !ok {
			break
		}
		count++
		if ev.Kind != Insert {
			t.Fatalf("burst produced %v", ev.Kind)
		}
		if len(ev.Neighbors) != 2 {
			t.Fatalf("attach = %d, want 2", len(ev.Neighbors))
		}
	}
	if count != 10 {
		t.Fatalf("events = %d, want 10", count)
	}
}

func TestScriptedReplay(t *testing.T) {
	events := []Event{
		{Kind: Delete, Node: 3},
		{Kind: Insert, Node: 100, Neighbors: []graph.NodeID{1}},
	}
	adv := &Scripted{Events: events}
	g := testGraph(5)
	for i, want := range events {
		ev, ok := adv.Next(g)
		if !ok {
			t.Fatalf("event %d missing", i)
		}
		if ev.Kind != want.Kind || ev.Node != want.Node {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	if _, ok := adv.Next(g); ok {
		t.Fatal("script should be exhausted")
	}
}

func TestEventKindString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatal("EventKind strings wrong")
	}
	if EventKind(0).String() != "unknown" {
		t.Fatal("zero EventKind should be unknown")
	}
}

func TestCutVertexTargetsArticulationPoint(t *testing.T) {
	// Path 0-1-2-3-4: node 1 is the smallest articulation point.
	g := graph.New()
	for i := 0; i+1 < 5; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	adv := NewCutVertex(1)
	ev, ok := adv.Next(g)
	if !ok || ev.Kind != Delete || ev.Node != 1 {
		t.Fatalf("event = %+v ok=%v, want delete node 1", ev, ok)
	}
}

func TestCutVertexFallsBackToMaxDegree(t *testing.T) {
	// A cycle has no articulation points; the fallback targets max degree.
	g := testGraph(6)
	g.EnsureEdge(0, 2) // node 0 and 2 now degree 3
	adv := NewCutVertex(1)
	ev, ok := adv.Next(g)
	if !ok || ev.Kind != Delete {
		t.Fatalf("event = %+v ok=%v", ev, ok)
	}
	if g.Degree(ev.Node) != g.MaxDegree() {
		t.Fatalf("fallback chose degree-%d node, max is %d", g.Degree(ev.Node), g.MaxDegree())
	}
}

func TestCutVertexStops(t *testing.T) {
	g := testGraph(3)
	adv := NewCutVertex(5)
	if _, ok := adv.Next(g); ok {
		t.Fatal("should not attack a 3-node graph")
	}
}
