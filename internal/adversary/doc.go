// Package adversary implements the attack side of the paper's model (§2):
// an omniscient adversary watches the current topology and, once per
// timestep, deletes an arbitrary node or inserts a node with arbitrary
// connections. Per the model, the adversary is oblivious to the healing
// algorithm's private randomness — every strategy receives only a read-only
// view of the healed graph, never the healer's internal state.
//
// # Strategies
//
// The view-driven strategies cover the attack space the paper's analysis
// highlights: RandomChurn (sustained mixed insert/delete load, the
// peer-to-peer scenario of the introduction), MaxDegree (always kill the
// highest-degree node — the star example generalized), CutVertex (delete
// articulation points, the most damaging single deletion available),
// PathDismantler (target diameter-path interiors, the stretch bound's worst
// case), Sequential (dismantle the original topology in ID order), and
// InsertBurst (pure preferential growth, exercising the degree bookkeeping
// insertions-only). Scripted replays a fixed event list and is the
// foundation of trace replay and the conformance shrinker; EncodeScript and
// ParseScript round-trip schedules through a human-readable text form.
//
// All strategies register under Names/ByName so CLIs can enumerate them and
// error messages can list the valid set.
//
// # Client streams
//
// ClientStream is the serving-era counterpart: a generator for one client
// of the maintenance daemon (internal/server), which cannot see the
// topology at all. Each stream owns a disjoint node-ID namespace, attaches
// only to fixed anchor nodes or its own insertions, and deletes only nodes
// it owns — so any number of concurrent streams interleave without ever
// producing a conflicting event, which is what the load generator needs to
// drive the daemon at full speed while keeping the run verifiable.
package adversary
