package adversary

import (
	"testing"

	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
)

// Sequentially applied client-stream events are valid by construction, and
// two streams' namespaces never collide.
func TestClientStreamValidByConstruction(t *testing.T) {
	g0 := graph.New()
	anchors := make([]graph.NodeID, 0, 8)
	for i := 0; i < 8; i++ {
		g0.EnsureEdge(graph.NodeID(i), graph.NodeID((i+1)%8))
		anchors = append(anchors, graph.NodeID(i))
	}
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 3}, g0)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}

	streams := []*ClientStream{
		NewClientStream(0, anchors, 0.4, 3, 99),
		NewClientStream(1, anchors, 0.4, 3, 99),
	}
	seen := make(map[graph.NodeID]int)
	for step := 0; step < 200; step++ {
		for ci, cs := range streams {
			ev := cs.Next()
			switch ev.Kind {
			case Insert:
				if owner, dup := seen[ev.Node]; dup {
					t.Fatalf("node %d inserted by client %d and client %d", ev.Node, owner, ci)
				}
				seen[ev.Node] = ci
				err = st.InsertNode(ev.Node, ev.Neighbors)
			case Delete:
				err = st.DeleteNode(ev.Node)
			}
			if err != nil {
				t.Fatalf("step %d client %d: %s %d: %v", step, ci, ev.Kind, ev.Node, err)
			}
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	for _, cs := range streams {
		for _, own := range cs.Owns() {
			if !st.Alive(own) {
				t.Fatalf("stream believes it owns dead node %d", own)
			}
		}
	}
}

func TestClientStreamDeterministic(t *testing.T) {
	anchors := []graph.NodeID{0, 1, 2}
	a := NewClientStream(3, anchors, 0.3, 2, 7)
	b := NewClientStream(3, anchors, 0.3, 2, 7)
	for i := 0; i < 50; i++ {
		x, y := a.Next(), b.Next()
		if x.Kind != y.Kind || x.Node != y.Node || len(x.Neighbors) != len(y.Neighbors) {
			t.Fatalf("streams diverged at event %d: %+v vs %+v", i, x, y)
		}
	}
}
