package cuts

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

// ExactLimit is the largest node count accepted by the exact enumerators
// (2^(n-1) subsets are visited).
const ExactLimit = 24

// ErrTooLarge is returned by exact enumeration on graphs over ExactLimit nodes.
var ErrTooLarge = errors.New("cuts: graph too large for exact enumeration")

// ErrTooSmall is returned when the quantity is undefined (fewer than 2 nodes).
var ErrTooSmall = errors.New("cuts: need at least 2 nodes")

// EdgeExpansion returns the exact edge expansion
//
//	h(G) = min_{0<|S|<=n/2} |E(S, V-S)| / |S|
//
// by enumerating all subsets. For a disconnected graph it returns 0.
func EdgeExpansion(g *graph.Graph) (float64, error) {
	h, _, err := EdgeExpansionCut(g)
	return h, err
}

// EdgeExpansionCut returns the exact edge expansion and a witness subset
// achieving it.
func EdgeExpansionCut(g *graph.Graph) (float64, []graph.NodeID, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n < 2 {
		return 0, nil, fmt.Errorf("edge expansion of %d-node graph: %w", n, ErrTooSmall)
	}
	if n > ExactLimit {
		return 0, nil, fmt.Errorf("edge expansion of %d-node graph: %w", n, ErrTooLarge)
	}
	best := math.Inf(1)
	var bestMask uint32
	full := (uint32(1) << uint(n)) - 1
	enumerateCuts(g, nodes, func(mask uint32, size, cut, _ int) {
		if size == 0 {
			return
		}
		// Expansion is not complement-symmetric (the denominator is |S|),
		// and the enumerator fixes node 0 outside S, so evaluate both sides
		// of every cut: S itself and its complement (which contains node 0).
		if 2*size <= n {
			if v := float64(cut) / float64(size); v < best {
				best = v
				bestMask = mask
			}
		}
		if co := n - size; co > 0 && 2*co <= n {
			if v := float64(cut) / float64(co); v < best {
				best = v
				bestMask = full &^ mask
			}
		}
	})
	return best, maskToNodes(bestMask, nodes), nil
}

// Conductance returns the exact Cheeger constant (conductance)
//
//	φ(G) = min_S |E(S, V-S)| / min(vol(S), vol(V-S))
//
// by enumeration. For a disconnected graph it returns 0.
func Conductance(g *graph.Graph) (float64, error) {
	phi, _, err := ConductanceCut(g)
	return phi, err
}

// ConductanceCut returns the exact conductance and a witness subset.
func ConductanceCut(g *graph.Graph) (float64, []graph.NodeID, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n < 2 {
		return 0, nil, fmt.Errorf("conductance of %d-node graph: %w", n, ErrTooSmall)
	}
	if n > ExactLimit {
		return 0, nil, fmt.Errorf("conductance of %d-node graph: %w", n, ErrTooLarge)
	}
	totalVol := 2 * g.NumEdges()
	if totalVol == 0 {
		return 0, nil, nil
	}
	best := math.Inf(1)
	var bestMask uint32
	enumerateCuts(g, nodes, func(mask uint32, size, cut, vol int) {
		if size == 0 || size == n {
			return
		}
		denom := vol
		if other := totalVol - vol; other < denom {
			denom = other
		}
		if denom == 0 {
			// One side has no edge endpoints: conductance 0 cut (disconnected
			// or isolated vertices).
			if cut == 0 {
				best = 0
				bestMask = mask
			}
			return
		}
		v := float64(cut) / float64(denom)
		if v < best {
			best = v
			bestMask = mask
		}
	})
	if math.IsInf(best, 1) {
		best = 0
	}
	return best, maskToNodes(bestMask, nodes), nil
}

// enumerateCuts visits every subset S (as a bitmask over nodes, excluding the
// full set; including the empty set which callers skip) and reports its
// size, cut size, and volume. To halve work it fixes node 0 out of S.
func enumerateCuts(g *graph.Graph, nodes []graph.NodeID, visit func(mask uint32, size, cut, vol int)) {
	n := len(nodes)
	idx := make(map[graph.NodeID]int, n)
	for i, node := range nodes {
		idx[node] = i
	}
	// Precompute adjacency bitmasks and degrees (ForEachNeighbor: order is
	// irrelevant for mask building, and it allocates nothing).
	adj := make([]uint32, n)
	deg := make([]int, n)
	for i, node := range nodes {
		deg[i] = g.Degree(node)
		g.ForEachNeighbor(node, func(w graph.NodeID) {
			adj[i] |= 1 << uint(idx[w])
		})
	}
	// Subsets of {1..n-1}: node 0 always on the complement side.
	limit := uint32(1) << uint(n-1)
	for m := uint32(1); m < limit; m++ {
		mask := m << 1 // node 0 excluded
		size := 0
		cut := 0
		vol := 0
		rest := mask
		for rest != 0 {
			i := bits.TrailingZeros32(rest)
			rest &^= 1 << uint(i)
			size++
			vol += deg[i]
			cut += bits.OnesCount32(adj[i] &^ mask)
		}
		visit(mask, size, cut, vol)
	}
}

func maskToNodes(mask uint32, nodes []graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for i, node := range nodes {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, node)
		}
	}
	return out
}

// Estimate captures bounds on expansion/conductance for graphs too large for
// exact enumeration.
type Estimate struct {
	// ConductanceUpper is the conductance of the best sweep cut found — a
	// certified upper bound (the cut is a witness).
	ConductanceUpper float64
	// ConductanceLower is λ₂(normalized)/2, the Cheeger-inequality lower
	// bound (paper Thm 1).
	ConductanceLower float64
	// ExpansionUpper is the edge expansion of the best sweep cut (by |S|).
	ExpansionUpper float64
	// Lambda2Normalized is λ₂ of the normalized Laplacian.
	Lambda2Normalized float64
}

// EstimateBounds computes spectral bounds and sweep-cut witnesses for g.
// Disconnected graphs report all-zero bounds.
func EstimateBounds(g *graph.Graph, rng *rand.Rand) Estimate {
	var est Estimate
	if g.NumNodes() < 2 || !g.IsConnected() {
		return est
	}
	est.Lambda2Normalized = spectral.NormalizedAlgebraicConnectivity(g, rng)
	est.ConductanceLower = spectral.CheegerLower(est.Lambda2Normalized)
	phi, h := SweepCut(g, rng)
	est.ConductanceUpper = phi
	est.ExpansionUpper = h
	return est
}

// SweepCut orders nodes by the Fiedler vector and scans the n-1 prefix cuts,
// returning the minimum conductance and minimum edge expansion found. This
// is the standard spectral-partitioning rounding; by Cheeger's inequality the
// returned conductance is within √(2λ) of optimal.
func SweepCut(g *graph.Graph, rng *rand.Rand) (conductance, expansion float64) {
	n := g.NumNodes()
	if n < 2 {
		return 0, 0
	}
	vec, nodes := spectral.FiedlerVector(g, rng)
	if vec == nil {
		return 0, 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort node indices by Fiedler value.
	sortByVec(order, vec)

	idx := make(map[graph.NodeID]int, n)
	for i, node := range nodes {
		idx[node] = i
	}
	inS := make([]bool, n)
	totalVol := 2 * g.NumEdges()
	cut := 0
	vol := 0
	size := 0
	bestPhi := math.Inf(1)
	bestH := math.Inf(1)
	for k := 0; k < n-1; k++ {
		i := order[k]
		node := nodes[i]
		inS[i] = true
		size++
		vol += g.Degree(node)
		// Each neighbor already in S converts a cut edge to internal; each
		// neighbor outside S adds a cut edge.
		g.ForEachNeighbor(node, func(w graph.NodeID) {
			if inS[idx[w]] {
				cut--
			} else {
				cut++
			}
		})
		denom := vol
		if other := totalVol - vol; other < denom {
			denom = other
		}
		if denom > 0 {
			if phi := float64(cut) / float64(denom); phi < bestPhi {
				bestPhi = phi
			}
		}
		sz := size
		if other := n - size; other < sz {
			sz = other
		}
		if sz > 0 {
			if h := float64(cut) / float64(sz); h < bestH {
				bestH = h
			}
		}
	}
	if math.IsInf(bestPhi, 1) {
		bestPhi = 0
	}
	if math.IsInf(bestH, 1) {
		bestH = 0
	}
	return bestPhi, bestH
}

func sortByVec(order []int, vec []float64) {
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })
}
