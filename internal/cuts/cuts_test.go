package cuts

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/spectral"
)

func buildComplete(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return g
}

func buildPath(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.EnsureEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

func buildCycle(n int) *graph.Graph {
	g := buildPath(n)
	g.EnsureEdge(0, graph.NodeID(n-1))
	return g
}

func buildStar(n int) *graph.Graph {
	g := graph.New()
	g.EnsureNode(0)
	for i := 1; i <= n; i++ {
		g.EnsureEdge(0, graph.NodeID(i))
	}
	return g
}

func TestEdgeExpansionComplete(t *testing.T) {
	// h(K_n) = ceil(n/2) for the balanced cut: |S|=floor(n/2) gives cut
	// |S|*(n-|S|), so h = n - floor(n/2) = ceil(n/2).
	for _, n := range []int{4, 5, 8} {
		g := buildComplete(n)
		h, err := EdgeExpansion(g)
		if err != nil {
			t.Fatalf("EdgeExpansion(K_%d): %v", n, err)
		}
		want := float64(n - n/2)
		if h != want {
			t.Fatalf("h(K_%d) = %v, want %v", n, h, want)
		}
	}
}

func TestEdgeExpansionPath(t *testing.T) {
	// Splitting a path in half cuts one edge: h = 1/floor(n/2).
	for _, n := range []int{4, 7, 10} {
		g := buildPath(n)
		h, err := EdgeExpansion(g)
		if err != nil {
			t.Fatalf("EdgeExpansion(P_%d): %v", n, err)
		}
		want := 1 / float64(n/2)
		if h != want {
			t.Fatalf("h(P_%d) = %v, want %v", n, h, want)
		}
	}
}

func TestEdgeExpansionCycle(t *testing.T) {
	// A contiguous half of the cycle cuts exactly 2 edges.
	for _, n := range []int{6, 9} {
		g := buildCycle(n)
		h, err := EdgeExpansion(g)
		if err != nil {
			t.Fatalf("EdgeExpansion(C_%d): %v", n, err)
		}
		want := 2 / float64(n/2)
		if h != want {
			t.Fatalf("h(C_%d) = %v, want %v", n, h, want)
		}
	}
}

func TestEdgeExpansionStar(t *testing.T) {
	// Star K_{1,n}: every leaf has degree 1, any S of leaves has cut |S|,
	// so h = 1.
	g := buildStar(9)
	h, err := EdgeExpansion(g)
	if err != nil {
		t.Fatalf("EdgeExpansion(star): %v", err)
	}
	if h != 1 {
		t.Fatalf("h(star) = %v, want 1", h)
	}
}

func TestEdgeExpansionDisconnected(t *testing.T) {
	g := graph.New()
	g.EnsureEdge(0, 1)
	g.EnsureEdge(2, 3)
	h, err := EdgeExpansion(g)
	if err != nil {
		t.Fatalf("EdgeExpansion: %v", err)
	}
	if h != 0 {
		t.Fatalf("h(disconnected) = %v, want 0", h)
	}
}

func TestEdgeExpansionCutWitness(t *testing.T) {
	g := buildPath(6)
	h, cut, err := EdgeExpansionCut(g)
	if err != nil {
		t.Fatalf("EdgeExpansionCut: %v", err)
	}
	// Witness must achieve the reported ratio.
	set := make(map[graph.NodeID]struct{}, len(cut))
	for _, n := range cut {
		set[n] = struct{}{}
	}
	if len(cut) == 0 || 2*len(cut) > g.NumNodes() {
		t.Fatalf("witness size %d invalid", len(cut))
	}
	got := float64(g.CutSize(set)) / float64(len(cut))
	if got != h {
		t.Fatalf("witness achieves %v, reported %v", got, h)
	}
}

func TestConductanceTwoCliquesBridge(t *testing.T) {
	// The paper's own example: two cliques joined by a single edge have
	// constant-ish expansion per small side but conductance O(1/vol).
	g := graph.New()
	k := 6
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID(j))
			g.EnsureEdge(graph.NodeID(100+i), graph.NodeID(100+j))
		}
	}
	g.EnsureEdge(0, 100)
	phi, err := Conductance(g)
	if err != nil {
		t.Fatalf("Conductance: %v", err)
	}
	// One side volume: k*(k-1) + 1 = 31, cut 1.
	want := 1.0 / 31.0
	if math.Abs(phi-want) > 1e-12 {
		t.Fatalf("φ = %v, want %v", phi, want)
	}
}

func TestConductanceComplete(t *testing.T) {
	// φ(K_n) for even n: cut (n/2)² over vol (n/2)(n-1).
	n := 6
	g := buildComplete(n)
	phi, err := Conductance(g)
	if err != nil {
		t.Fatalf("Conductance: %v", err)
	}
	want := float64(n/2) / float64(n-1)
	if math.Abs(phi-want) > 1e-12 {
		t.Fatalf("φ(K_%d) = %v, want %v", n, phi, want)
	}
}

func TestExactTooLarge(t *testing.T) {
	g := buildCycle(ExactLimit + 1)
	if _, err := EdgeExpansion(g); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
	if _, err := Conductance(g); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
}

func TestExactTooSmall(t *testing.T) {
	g := graph.New()
	g.EnsureNode(1)
	if _, err := EdgeExpansion(g); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("error = %v, want ErrTooSmall", err)
	}
}

func TestCheegerInequalityHolds(t *testing.T) {
	// Verify paper Thm 1 (2φ ≥ λ > φ²/2) on a set of small graphs using the
	// exact conductance and the exact normalized λ₂.
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*graph.Graph{
		"path8":    buildPath(8),
		"cycle9":   buildCycle(9),
		"complete": buildComplete(7),
		"star":     buildStar(8),
	}
	for name, g := range graphs {
		phi, err := Conductance(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lam := spectral.NormalizedAlgebraicConnectivity(g, rng)
		if !(2*phi >= lam-1e-9) {
			t.Errorf("%s: 2φ=%v < λ=%v violates Cheeger", name, 2*phi, lam)
		}
		if !(lam > phi*phi/2-1e-9) {
			t.Errorf("%s: λ=%v <= φ²/2=%v violates Cheeger", name, lam, phi*phi/2)
		}
	}
}

func TestSweepCutUpperBoundsExact(t *testing.T) {
	// The sweep cut is a real cut, so its conductance must be >= the exact
	// minimum, and should be reasonably close on structured graphs.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{8, 12, 16} {
		g := buildCycle(n)
		exact, err := Conductance(g)
		if err != nil {
			t.Fatalf("Conductance: %v", err)
		}
		phi, h := SweepCut(g, rng)
		if phi < exact-1e-9 {
			t.Fatalf("sweep φ=%v below exact minimum %v", phi, exact)
		}
		exactH, err := EdgeExpansion(g)
		if err != nil {
			t.Fatalf("EdgeExpansion: %v", err)
		}
		if h < exactH-1e-9 {
			t.Fatalf("sweep h=%v below exact minimum %v", h, exactH)
		}
		// On a cycle the Fiedler sweep finds the optimal contiguous cut.
		if math.Abs(phi-exact) > 1e-9 {
			t.Fatalf("sweep φ=%v, exact=%v: sweep should be optimal on C_%d", phi, exact, n)
		}
	}
}

func TestEstimateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildComplete(10)
	est := EstimateBounds(g, rng)
	if est.ConductanceLower <= 0 {
		t.Fatalf("ConductanceLower = %v, want > 0", est.ConductanceLower)
	}
	if est.ConductanceUpper < est.ConductanceLower-1e-9 {
		t.Fatalf("bounds inverted: [%v, %v]", est.ConductanceLower, est.ConductanceUpper)
	}
	exact, err := Conductance(g)
	if err != nil {
		t.Fatalf("Conductance: %v", err)
	}
	if exact < est.ConductanceLower-1e-9 || exact > est.ConductanceUpper+1e-9 {
		t.Fatalf("exact φ=%v outside estimated bounds [%v, %v]",
			exact, est.ConductanceLower, est.ConductanceUpper)
	}

	// Disconnected graphs report zeros.
	d := graph.New()
	d.EnsureEdge(0, 1)
	d.EnsureEdge(5, 6)
	est = EstimateBounds(d, rng)
	if est.ConductanceLower != 0 || est.ConductanceUpper != 0 {
		t.Fatalf("disconnected estimate = %+v, want zeros", est)
	}
}

// TestPropertySweepNeverBeatsExact cross-checks the spectral sweep cut
// against exhaustive enumeration on random small graphs: the sweep is a
// real cut, so it can never report less than the exact minimum, and the
// exact conductance must sit inside the Cheeger bracket.
func TestPropertySweepNeverBeatsExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.EnsureNode(graph.NodeID(i))
		}
		// Random connected-ish graph: a cycle plus random chords.
		for i := 0; i < n; i++ {
			g.EnsureEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		}
		for k := 0; k < n; k++ {
			g.EnsureEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		exactPhi, err := Conductance(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exactH, err := EdgeExpansion(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sweepPhi, sweepH := SweepCut(g, rng)
		if sweepPhi < exactPhi-1e-9 {
			t.Fatalf("seed %d: sweep phi %v < exact %v", seed, sweepPhi, exactPhi)
		}
		if sweepH < exactH-1e-9 {
			t.Fatalf("seed %d: sweep h %v < exact %v", seed, sweepH, exactH)
		}
		lam := spectral.NormalizedAlgebraicConnectivity(g, rng)
		if 2*exactPhi < lam-1e-9 {
			t.Fatalf("seed %d: Cheeger upper violated: 2phi=%v < lam=%v", seed, 2*exactPhi, lam)
		}
		if lam <= exactPhi*exactPhi/2-1e-9 {
			t.Fatalf("seed %d: Cheeger lower violated: lam=%v <= phi^2/2=%v",
				seed, lam, exactPhi*exactPhi/2)
		}
	}
}
