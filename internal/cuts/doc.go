// Package cuts measures edge expansion and conductance — the combinatorial
// quantities the Xheal paper's guarantees are stated in (Theorem 2.3's
// expansion floor, and the conductance side of its spectral argument).
//
// Two regimes are provided:
//
//   - Exact values by enumerating all vertex subsets, feasible up to
//     roughly 24 nodes. Used by unit tests and by the harness on small
//     scenarios (e.g. the star-attack experiment, where the paper's
//     motivating numbers — Xheal constant, tree repairs O(1/n) — are
//     exact).
//   - Estimates for larger graphs: a Fiedler-vector sweep cut gives an
//     upper bound with an explicit witness cut, and the Cheeger inequality
//     applied to λ₂ of the normalized Laplacian (internal/spectral) gives a
//     lower bound on conductance, bracketing the true value from both
//     sides.
//
// The two-cliques-with-a-bridge example of the paper's §1.1 — constant
// expansion per side, O(1/n) conductance — is the canonical case the
// sweep-cut witness reproduces; workload.TwoCliquesBridge generates it.
package cuts
