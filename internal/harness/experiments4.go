package harness

import (
	"math"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/workload"
)

// E14Congestion is an extension experiment for the paper's third §1.1
// motivation: "congestion in routing". Under all-pairs shortest-path
// routing, the most loaded link carries exactly the maximum edge
// betweenness. After hub attacks, tree repairs funnel traffic through their
// root (max load Θ(n²)) while Xheal's expander clouds spread it.
func E14Congestion() (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "routing congestion (max edge betweenness) after attack: Xheal vs tree repair (extension)",
		Columns: []string{"workload", "n0", "attack", "xheal max", "xheal mean",
			"tree max", "tree mean", "tree/xheal max", "ok"},
		Notes: []string{
			"edge betweenness = shortest-path pairs crossing a link (Brandes); max = worst link load",
			"ok: xheal max load within 4x the uniform ideal pairs/edges ratio",
		},
	}
	cases := []struct {
		wl    string
		n     int
		dels  int
		label string
	}{
		{workload.NameStar, 32, 1, "hub delete"},
		{workload.NameStar, 64, 1, "hub delete"},
		{workload.NameRegular, 64, 20, "cutvertex x20"},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		g0, err := buildInitial(c.wl, c.n, int64(2800+i))
		if err != nil {
			return nil, err
		}
		xh, err := baseline.New(baseline.NameXheal, g0, 6, int64(2900+i))
		if err != nil {
			return nil, err
		}
		tree, err := baseline.New(baseline.NameForgivingTree, g0, 6, int64(2900+i))
		if err != nil {
			return nil, err
		}
		var adv adversary.Adversary
		if c.label == "hub delete" {
			adv = adversary.NewMaxDegree(c.dels)
		} else {
			adv = adversary.NewCutVertex(c.dels)
		}
		if _, err := Run(Scenario{
			Name:      "E14",
			Initial:   g0,
			Adversary: adv,
			Healers:   []baseline.Healer{xh, tree},
			Metrics:   metrics.Config{SkipSpectral: true, StretchSources: 1},
		}); err != nil {
			return nil, err
		}
		xhMax, xhMean := xh.Graph().MaxEdgeBetweenness()
		trMax, trMean := tree.Graph().MaxEdgeBetweenness()
		ratio := math.Inf(1)
		if xhMax > 0 {
			ratio = trMax / xhMax
		}
		// Ideal uniform load: all pairs spread evenly over all edges.
		g := xh.Graph()
		nAlive := float64(g.NumNodes())
		ideal := nAlive * (nAlive - 1) / 2 / float64(g.NumEdges())
		// Diameter inflates total load linearly; allow the O(log n) healed
		// diameter on top of the 4x spread slack.
		ok := g.IsConnected() && xhMax <= 4*ideal*math.Log2(nAlive)
		return []string{c.wl, I(c.n), c.label, F1(xhMax), F1(xhMean), F1(trMax), F1(trMean),
			F1(ratio), B(ok)}, nil
	})
	return t, err
}
