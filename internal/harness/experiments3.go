package harness

import (
	"math"
	"math/rand"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/spectral"
	"github.com/xheal/xheal/internal/workload"
)

// E13Mixing is an extension experiment (not a paper table): §1.1 motivates
// preserving λ because it controls the random-walk mixing time. Here we
// measure mixing *empirically* on healed networks — Xheal vs the tree
// repair — and check Xheal's healed walks mix in O(log n) steps. On the
// hub-deletion workloads the tree repair's mixing collapses with n, the
// walk-level face of its O(1/n) expansion.
func E13Mixing() (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "empirical lazy-walk mixing time after attack: Xheal vs tree repair (extension)",
		Columns: []string{"workload", "n0", "attack", "xheal steps", "xheal pred",
			"tree steps", "tree/xheal", "ok"},
		Notes: []string{
			"steps = lazy-walk steps to total variation <= 0.05 from worst of 3 starts",
			"pred = log(n)/lambda2n, the spectral bound the paper's guarantees protect",
			"ok: xheal's healed network mixes within 4x its spectral prediction",
		},
	}
	cases := []struct {
		wl   string
		n    int
		dels int
	}{
		{workload.NameRegular, 48, 16},
		{workload.NameRegular, 96, 32},
		{workload.NameStar, 32, 1},
		{workload.NameStar, 64, 1},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		rng := rand.New(rand.NewSource(int64(6100 + i)))
		g0, err := buildInitial(c.wl, c.n, int64(2600+i))
		if err != nil {
			return nil, err
		}
		xh, err := baseline.New(baseline.NameXheal, g0, 6, int64(2700+i))
		if err != nil {
			return nil, err
		}
		tree, err := baseline.New(baseline.NameForgivingTree, g0, 6, int64(2700+i))
		if err != nil {
			return nil, err
		}
		_, err = Run(Scenario{
			Name:      "E13",
			Initial:   g0,
			Adversary: adversary.NewMaxDegree(c.dels),
			Healers:   []baseline.Healer{xh, tree},
			Metrics:   metrics.Config{SkipSpectral: true, StretchSources: 1},
		})
		if err != nil {
			return nil, err
		}
		const maxSteps = 4000
		xhMix := metrics.MixingTime(xh.Graph(), 0.05, maxSteps, 3, rng)
		treeMix := metrics.MixingTime(tree.Graph(), 0.05, maxSteps, 3, rng)
		xhPred := spectral.MixingTimeBound(
			spectral.NormalizedAlgebraicConnectivity(xh.Graph(), rng), xh.Graph().NumNodes())
		ratio := math.Inf(1)
		if xhMix.Steps > 0 {
			ratio = float64(treeMix.Steps) / float64(xhMix.Steps)
		}
		ok := xhMix.Steps <= maxSteps && float64(xhMix.Steps) <= 4*xhPred
		return []string{c.wl, I(c.n), attackLabel(c.wl, c.dels), I(xhMix.Steps), F1(xhPred),
			I(treeMix.Steps), F1(ratio), B(ok)}, nil
	})
	return t, err
}

func attackLabel(wl string, dels int) string {
	if wl == workload.NameStar && dels == 1 {
		return "hub delete"
	}
	return "maxdeg x" + I(dels)
}

// measureHealers is shared by extension experiments: current healed λ₂ₙ per
// healer. Exposed for tests.
func measureHealers(healers []baseline.Healer, rng *rand.Rand) map[string]float64 {
	out := make(map[string]float64, len(healers))
	for _, h := range healers {
		out[h.Name()] = spectral.NormalizedAlgebraicConnectivity(h.Graph(), rng)
	}
	return out
}
