package harness

import (
	"runtime"
	"sync"
)

// tokens is the global worker budget shared by every ForEachIndex call, so
// nested fan-outs (experiments × their rows) stay bounded by GOMAXPROCS
// overall instead of multiplying per level.
var tokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// ForEachIndex runs fn(0), …, fn(n-1) on a bounded worker pool and blocks
// until all calls finish. It returns the error of the lowest failing index
// (not the first to fail in wall-clock order), so error reporting is
// deterministic under any scheduling.
//
// The bound is global: all ForEachIndex calls (including nested ones) share
// one GOMAXPROCS-sized token budget. A call that finds the budget exhausted
// runs the task inline on the calling goroutine — that keeps nested pools
// deadlock-free (no one blocks waiting for a token while holding one) and
// caps true parallelism instead of oversubscribing CPUs level × level.
//
// Every fn call must be self-contained — own rand sources, own graphs, no
// shared mutable state — so results are independent of execution order.
// Callers assemble outputs by index afterwards; that is what keeps the
// rendered tables (and EXPERIMENTS.md) byte-identical no matter how many
// workers run.
func ForEachIndex(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-tokens }()
				errs[i] = fn(i)
			}(i)
		default:
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fillRows builds one table row per case on the worker pool and appends them
// to t in case order. build(i) must be self-contained (see ForEachIndex);
// the deterministic append order is what keeps parallel experiments
// byte-reproducible.
func (t *Table) fillRows(cases int, build func(i int) ([]string, error)) error {
	rows := make([][]string, cases)
	if err := ForEachIndex(cases, func(i int) error {
		row, err := build(i)
		rows[i] = row
		return err
	}); err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return nil
}
