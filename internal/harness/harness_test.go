package harness

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/workload"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestRunRequiresHealers(t *testing.T) {
	_, err := Run(Scenario{Initial: mustGraph(workload.Star(4))})
	if !errors.Is(err, ErrNoHealers) {
		t.Fatalf("error = %v, want ErrNoHealers", err)
	}
}

func TestRunLockstepAndBaseline(t *testing.T) {
	g0 := mustGraph(workload.Star(8))
	xh, err := baseline.New(baseline.NameXheal, g0, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tree, err := baseline.New(baseline.NameForgivingTree, g0, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	script := &adversary.Scripted{Events: []adversary.Event{
		{Kind: adversary.Delete, Node: 0},
		{Kind: adversary.Insert, Node: 100, Neighbors: []graph.NodeID{1, 2}},
		{Kind: adversary.Delete, Node: 3},
	}}
	res, err := Run(Scenario{
		Name:        "lockstep",
		Initial:     g0,
		Adversary:   script,
		Healers:     []baseline.Healer{xh, tree},
		SampleEvery: 1,
		Metrics:     metrics.Config{SkipSpectral: true},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", res.Steps)
	}
	// G' = star + inserted node, deletions ignored.
	if !res.Baseline.HasNode(0) || !res.Baseline.HasNode(3) {
		t.Fatal("baseline lost deleted nodes")
	}
	if !res.Baseline.HasEdge(100, 1) {
		t.Fatal("baseline missing inserted edge")
	}
	// Both healers saw all events: same node sets.
	if xh.Graph().NumNodes() != tree.Graph().NumNodes() {
		t.Fatalf("healer node sets diverged: %d vs %d",
			xh.Graph().NumNodes(), tree.Graph().NumNodes())
	}
	// SampleEvery=1 gives one snapshot per step plus the final one.
	for _, s := range res.Series {
		if len(s.Snapshots) != 4 {
			t.Fatalf("%s: snapshots = %d, want 4", s.Healer, len(s.Snapshots))
		}
	}
	if res.SeriesFor(baseline.NameXheal) == nil || res.SeriesFor("nope") != nil {
		t.Fatal("SeriesFor lookup broken")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "long column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", "y")
	tab.AddRow("longer-cell") // second cell padded
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T0 — demo", "| a ", "long column", "longer-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(metrics.Unavailable) != "-" {
		t.Fatalf("F(Unavailable) = %q", F(metrics.Unavailable))
	}
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if F1(2.0) != "2.0" {
		t.Fatalf("F1 = %q", F1(2.0))
	}
	if I(7) != "7" || B(true) != "ok" || B(false) != "FAIL" {
		t.Fatal("I/B helpers broken")
	}
}

func TestAllExperimentsListed(t *testing.T) {
	exps := All()
	if len(exps) != 14 {
		t.Fatalf("experiments = %d, want 14", len(exps))
	}
	for i, e := range exps {
		wantID := "E" + I(i+1)
		if e.ID != wantID {
			t.Fatalf("experiment %d has ID %q, want %q", i, e.ID, wantID)
		}
		if e.Run == nil || e.Name == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

// TestExperimentsPass regenerates every table and asserts no row reports
// FAIL — the repository-level statement that the paper's bounds hold on the
// reproduction. Each table is also rendered to exercise formatting.
func TestExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration is a long test")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if strings.Contains(buf.String(), "FAIL") {
				t.Fatalf("%s reports FAIL rows:\n%s", e.ID, buf.String())
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
		})
	}
}

func TestForEachIndexOrderAndErrors(t *testing.T) {
	// Results land by index regardless of scheduling.
	out := make([]int, 50)
	if err := ForEachIndex(50, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatalf("ForEachIndex: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	// The lowest failing index wins, deterministically.
	wantErr := errors.New("boom")
	err := ForEachIndex(50, func(i int) error {
		if i == 7 || i == 31 {
			return fmt.Errorf("index %d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || !errors.Is(err, wantErr) || !strings.Contains(err.Error(), "index 7") {
		t.Fatalf("error = %v, want the index-7 failure", err)
	}
	if err := ForEachIndex(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty ForEachIndex: %v", err)
	}
}

func TestFillRowsDeterministicOrder(t *testing.T) {
	tab := &Table{ID: "T1", Title: "order", Columns: []string{"i"}}
	if err := tab.fillRows(20, func(i int) ([]string, error) {
		return []string{I(i)}, nil
	}); err != nil {
		t.Fatalf("fillRows: %v", err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[0] != I(i) {
			t.Fatalf("row %d = %v, want %d", i, row, i)
		}
	}
}

// TestExperimentDeterminism re-runs a representative subset (including a
// dist-engine experiment and a spectral one) and requires byte-identical
// rendered tables: the parallel row pool must not leak scheduling into
// results. The full-suite equivalent is TestRunSubset's double run in
// cmd/xheal-bench.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments twice")
	}
	for _, id := range []string{"E1", "E6", "E13"} {
		var exp Experiment
		for _, e := range All() {
			if e.ID == id {
				exp = e
			}
		}
		render := func() string {
			tab, err := exp.Run()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			return buf.String()
		}
		if a, b := render(), render(); a != b {
			t.Fatalf("%s is not deterministic:\n--- first ---\n%s--- second ---\n%s", id, a, b)
		}
	}
}

func TestMeasureHealersHelper(t *testing.T) {
	g0 := mustGraph(workload.Complete(10))
	xh, err := baseline.New(baseline.NameXheal, g0, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tree, err := baseline.New(baseline.NameForgivingTree, g0, 4, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	gaps := measureHealers([]baseline.Healer{xh, tree}, rng)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v", gaps)
	}
	for name, lam := range gaps {
		if lam <= 0 {
			t.Fatalf("%s gap = %v, want > 0 on K10", name, lam)
		}
	}
}
