// Package harness drives the experiments that reproduce the paper's
// analysis: it runs adversarial scenarios against Xheal and the baseline
// healers in lockstep, collects metric snapshots, and renders the result
// tables recorded in EXPERIMENTS.md. Each experiment (E1–E14) maps to one
// theorem, lemma, corollary, or motivating example of the paper — the
// degree bound (Theorem 2.1), stretch (2.2), expansion (2.3), the spectral
// floor (2.4), the distributed cost envelope (Theorem 5 / Lemma 5), the
// H-graph substrate (Theorems 3–4), the star-attack comparison, and the
// design ablations. docs/ARCHITECTURE.md carries the full experiment ↔
// theorem index.
//
// Experiments — and the independent rows inside each experiment — run on a
// bounded worker pool (ForEachIndex, GOMAXPROCS workers) with results
// assembled in index order, so `xheal-bench -all > EXPERIMENTS.md` produces
// identical bytes no matter how many workers run; every row builds its own
// rand sources from the experiment seed. Timing lines go to stderr, the
// one non-deterministic output.
package harness
