package harness

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/spectral"
	"github.com/xheal/xheal/internal/workload"
)

// Experiment is one reproducible unit of the paper's evaluation.
type Experiment struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns every experiment in order E1..E14.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "degree increase (Theorem 2.1)", Run: E1Degree},
		{ID: "E2", Name: "stretch (Theorem 2.2)", Run: E2Stretch},
		{ID: "E3", Name: "edge expansion (Theorem 2.3)", Run: E3Expansion},
		{ID: "E4", Name: "spectral gap (Theorem 2.4)", Run: E4Spectral},
		{ID: "E5", Name: "expander preservation (Corollary 1)", Run: E5ExpanderPreservation},
		{ID: "E6", Name: "distributed cost (Theorem 5)", Run: E6DistributedCost},
		{ID: "E7", Name: "H-graph expansion (Theorem 4)", Run: E7HGraphExpansion},
		{ID: "E8", Name: "H-graph stationarity (Theorem 3)", Run: E8HGraphStationarity},
		{ID: "E9", Name: "star attack vs baselines (§1 example)", Run: E9StarAttack},
		{ID: "E10", Name: "message lower bound (Lemma 5)", Run: E10LowerBound},
		{ID: "E11", Name: "model conformance & invariants (Fig. 1)", Run: E11Invariants},
		{ID: "E12", Name: "ablations (κ, secondary clouds, sharing)", Run: E12Ablations},
		{ID: "E13", Name: "empirical mixing time (extension)", Run: E13Mixing},
		{ID: "E14", Name: "routing congestion (extension)", Run: E14Congestion},
	}
}

func buildInitial(name string, n int, seed int64) (*graph.Graph, error) {
	return workload.ByName(name, n, rand.New(rand.NewSource(seed)))
}

// E1Degree measures the paper's degree-increase metric under churn: Theorem
// 2.1 promises deg_G(x) ≤ κ·deg_G′(x) + 2κ, i.e. a worst-case ratio of 3κ
// (at deg_G′ = 1). The table reports the max ratio observed over the run.
func E1Degree() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "degree increase under churn vs Theorem 2.1 bound",
		Columns: []string{"workload", "n0", "kappa", "steps", "max deg ratio", "bound 3k", "ok"},
		Notes: []string{
			"ratio = max over alive x of deg_G(x)/max(1, deg_G'(x)), max over sampled steps",
		},
	}
	cases := []struct {
		wl    string
		n     int
		kappa int
		steps int
	}{
		{workload.NameErdosRenyi, 64, 4, 96},
		{workload.NameErdosRenyi, 64, 8, 96},
		{workload.NamePowerLaw, 128, 4, 128},
		{workload.NameRegular, 96, 6, 128},
		{workload.NameStar, 48, 4, 64},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		g0, err := buildInitial(c.wl, c.n, int64(100+i))
		if err != nil {
			return nil, err
		}
		h, err := baseline.NewXheal(g0, c.kappa, int64(200+i))
		if err != nil {
			return nil, err
		}
		res, err := Run(Scenario{
			Name:        fmt.Sprintf("E1-%s", c.wl),
			Initial:     g0,
			Adversary:   adversary.NewRandomChurn(c.steps, 0.6, 3, int64(300+i)),
			Healers:     []baseline.Healer{h},
			SampleEvery: 8,
			Metrics:     metrics.Config{SkipSpectral: true, StretchSources: 1},
		})
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, s := range res.Series[0].Snapshots {
			if s.Snap.MaxDegreeRatio > worst {
				worst = s.Snap.MaxDegreeRatio
			}
		}
		bound := metrics.DegreeBoundRatio(c.kappa)
		return []string{c.wl, I(c.n), I(c.kappa), I(res.Steps), F(worst), F1(bound), B(worst <= bound)}, nil
	})
	return t, err
}

// E2Stretch measures pairwise stretch against G′ under stretch-hostile
// attacks; Theorem 2.2 bounds it by O(log n).
func E2Stretch() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "stretch vs G' under deletion attacks vs Theorem 2.2 envelope",
		Columns: []string{"workload", "n0", "attack", "steps", "max stretch", "4*log2(n)", "ok"},
		Notes:   []string{"stretch = max over alive pairs of dist_G(u,v)/dist_G'(u,v)"},
	}
	cases := []struct {
		wl     string
		n      int
		attack string
		steps  int
	}{
		{workload.NamePath, 32, "dismantle", 10},
		{workload.NamePath, 64, "dismantle", 20},
		{workload.NameGrid, 64, "dismantle", 20},
		{workload.NameErdosRenyi, 64, "churn", 64},
		{workload.NameCycle, 48, "sequential", 16},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		g0, err := buildInitial(c.wl, c.n, int64(400+i))
		if err != nil {
			return nil, err
		}
		var adv adversary.Adversary
		switch c.attack {
		case "dismantle":
			adv = adversary.NewPathDismantler(c.steps)
		case "sequential":
			adv = adversary.NewSequential(c.steps)
		default:
			adv = adversary.NewRandomChurn(c.steps, 0.6, 2, int64(500+i))
		}
		h, err := baseline.NewXheal(g0, 4, int64(600+i))
		if err != nil {
			return nil, err
		}
		res, err := Run(Scenario{
			Name:        fmt.Sprintf("E2-%s", c.wl),
			Initial:     g0,
			Adversary:   adv,
			Healers:     []baseline.Healer{h},
			SampleEvery: 4,
			Metrics:     metrics.Config{SkipSpectral: true},
		})
		if err != nil {
			return nil, err
		}
		worst := 1.0
		for _, s := range res.Series[0].Snapshots {
			if s.Snap.MaxStretch > worst {
				worst = s.Snap.MaxStretch
			}
		}
		envelope := metrics.StretchBound(res.Baseline.NumNodes(), 4)
		return []string{c.wl, I(c.n), c.attack, I(res.Steps), F(worst), F1(envelope), B(worst <= envelope)}, nil
	})
	return t, err
}

// E3Expansion verifies Theorem 2.3 exactly on small graphs: after
// deletion-only attacks (G′ stays the initial graph), h(G) must be at least
// min(1, h(G′)) — the theorem's min(α, h(G′)) with the conservative α = 1
// our clique/H-graph clouds guarantee.
func E3Expansion() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "edge expansion after deletions vs Theorem 2.3 (exact, small n)",
		Columns: []string{"workload", "n0", "deletions", "h(G')", "h(G)", "min(1,h(G'))", "ok"},
	}
	cases := []struct {
		wl   string
		n    int
		dels int
	}{
		{workload.NameStar, 12, 4},
		{workload.NameComplete, 16, 8},
		{workload.NameCycle, 14, 4},
		{workload.NameErdosRenyi, 14, 5},
		{workload.NameHypercube, 16, 6},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		g0, err := buildInitial(c.wl, c.n, int64(700+i))
		if err != nil {
			return nil, err
		}
		hGp, _, err := expansionExact(g0)
		if err != nil {
			return nil, err
		}
		h, err := baseline.NewXheal(g0, 4, int64(800+i))
		if err != nil {
			return nil, err
		}
		res, err := Run(Scenario{
			Name:      fmt.Sprintf("E3-%s", c.wl),
			Initial:   g0,
			Adversary: adversary.NewSequential(c.dels),
			Healers:   []baseline.Healer{h},
			Metrics:   metrics.Config{},
		})
		if err != nil {
			return nil, err
		}
		final := res.Series[0].Final()
		bound := math.Min(1, hGp)
		ok := final.ExpansionExact >= bound-1e-9
		return []string{c.wl, I(c.n), I(res.Steps), F(hGp), F(final.ExpansionExact), F(bound), B(ok)}, nil
	})
	return t, err
}

// E4Spectral verifies Theorem 2.4's λ₂ floor after heavy deletions.
func E4Spectral() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "algebraic connectivity after deletions vs Theorem 2.4 floor",
		Columns: []string{"workload", "n0", "kappa", "lam2(G')", "dmin'", "dmax'", "floor", "lam2(G)", "ok"},
	}
	cases := []struct {
		wl    string
		n     int
		kappa int
		dels  int
	}{
		{workload.NameComplete, 32, 4, 16},
		{workload.NameErdosRenyi, 48, 4, 20},
		{workload.NameRegular, 64, 6, 32},
		{workload.NameHypercube, 64, 4, 24},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		rng := rand.New(rand.NewSource(int64(950 + i)))
		g0, err := buildInitial(c.wl, c.n, int64(900+i))
		if err != nil {
			return nil, err
		}
		lamGp := spectral.AlgebraicConnectivity(g0, rng)
		h, err := baseline.NewXheal(g0, c.kappa, int64(1000+i))
		if err != nil {
			return nil, err
		}
		res, err := Run(Scenario{
			Name:      fmt.Sprintf("E4-%s", c.wl),
			Initial:   g0,
			Adversary: adversary.NewRandomChurn(c.dels, 1.0, 1, int64(1100+i)),
			Healers:   []baseline.Healer{h},
			Metrics:   metrics.Config{StretchSources: 2},
		})
		if err != nil {
			return nil, err
		}
		final := res.Series[0].Final()
		floor := metrics.SpectralFloor(lamGp, res.Baseline.MinDegree(), res.Baseline.MaxDegree(), c.kappa)
		ok := final.Lambda2 >= floor && final.Connected
		return []string{c.wl, I(c.n), I(c.kappa), F(lamGp), I(res.Baseline.MinDegree()),
			I(res.Baseline.MaxDegree()), F(floor), F(final.Lambda2), B(ok)}, nil
	})
	return t, err
}

// E5ExpanderPreservation is Corollary 1: start from a bounded-degree
// expander (a random H-graph), delete half the nodes, and compare the healed
// spectral gap under Xheal against the Forgiving-Tree-style repair.
func E5ExpanderPreservation() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "expander in => expander out (Corollary 1), Xheal vs tree repair",
		Columns: []string{"n0", "lam2n(G0)", "deletions",
			"xheal lam2n", "tree lam2n", "xheal/tree", "ok"},
		Notes: []string{
			"lam2n = normalized algebraic connectivity; initial graph is a random 6-regular H-graph",
		},
	}
	sizes := []int{64, 128, 256}
	// Each row averages over a few independent churn/healer seeds: the
	// single-trial spectral gap is noisy enough that one unlucky draw can
	// invert a comparison the distributions clearly order.
	const trials = 3
	err := t.fillRows(len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		rng := rand.New(rand.NewSource(int64(1250 + i)))
		g0, err := workload.RandomRegular(n, 3, rand.New(rand.NewSource(int64(1200+i))))
		if err != nil {
			return nil, err
		}
		lam0 := spectral.NormalizedAlgebraicConnectivity(g0, rng)
		var xhMean, treeMean float64
		var steps int
		for trial := 0; trial < trials; trial++ {
			healerSeed := int64(1300 + i + 100*trial)
			xh, err := baseline.NewXheal(g0, 6, healerSeed)
			if err != nil {
				return nil, err
			}
			tree, err := baseline.New(baseline.NameForgivingTree, g0, 6, healerSeed)
			if err != nil {
				return nil, err
			}
			res, err := Run(Scenario{
				Name:      fmt.Sprintf("E5-%d-%d", n, trial),
				Initial:   g0,
				Adversary: adversary.NewRandomChurn(n/2, 1.0, 1, int64(1400+i+100*trial)),
				Healers:   []baseline.Healer{xh, tree},
				Metrics:   metrics.Config{StretchSources: 2},
			})
			if err != nil {
				return nil, err
			}
			steps = res.Steps
			xhMean += res.SeriesFor(baseline.NameXheal).Final().Lambda2Norm / trials
			treeMean += res.SeriesFor(baseline.NameForgivingTree).Final().Lambda2Norm / trials
		}
		ratio := math.Inf(1)
		if treeMean > 0 {
			ratio = xhMean / treeMean
		}
		ok := xhMean >= 0.05 && ratio > 1
		return []string{I(n), F(lam0), I(steps), F(xhMean),
			F(treeMean), F1(ratio), B(ok)}, nil
	})
	return t, err
}

// E6DistributedCost measures the distributed protocol's repair cost
// (Theorem 5): rounds per deletion vs log n, and amortized messages vs
// κ·log n·A(p).
func E6DistributedCost() (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "distributed repair cost (Theorem 5)",
		Columns: []string{"n0", "deletions", "mean rounds", "max rounds", "log2 n",
			"amort msgs", "A(p)", "k*log2n*A(p)", "ok"},
		Notes: []string{
			"initial graph: random 6-regular H-graph; kappa=4; deletions target random nodes",
			"ok: amortized messages within 4x the paper's K*log2(n)*A(p) envelope",
		},
	}
	const kappa = 4
	sizes := []int{32, 64, 128, 256}
	err := t.fillRows(len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		g0, err := workload.RandomRegular(n, 3, rand.New(rand.NewSource(int64(1500+i))))
		if err != nil {
			return nil, err
		}
		e, err := dist.NewEngine(dist.Config{Kappa: kappa, Seed: int64(1600 + i)}, g0)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		rng := rand.New(rand.NewSource(int64(1700 + i)))
		dels := n / 4
		for d := 0; d < dels; d++ {
			alive := e.State().AliveNodes()
			if err := e.Delete(alive[rng.Intn(len(alive))]); err != nil {
				return nil, err
			}
		}
		if err := e.ValidateLocalViews(); err != nil {
			return nil, err
		}
		costs := e.Costs()
		maxRounds, sumRounds := 0, 0
		for _, c := range costs {
			sumRounds += c.Rounds
			if c.Rounds > maxRounds {
				maxRounds = c.Rounds
			}
		}
		meanRounds := float64(sumRounds) / float64(len(costs))
		amort := float64(e.Totals().Messages) / float64(len(costs))
		ap := e.AmortizedLowerBound()
		envelope := float64(kappa) * math.Log2(float64(n)) * ap
		ok := amort <= 4*envelope
		return []string{I(n), I(dels), F1(meanRounds), I(maxRounds), F1(math.Log2(float64(n))),
			F1(amort), F1(ap), F1(envelope), B(ok)}, nil
	})
	return t, err
}

// expansionExact wraps cuts for initial-graph measurements.
func expansionExact(g *graph.Graph) (float64, float64, error) {
	snap := metrics.Measure(g, g, metrics.Config{SkipSpectral: true})
	if snap.ExpansionExact == metrics.Unavailable {
		return 0, 0, fmt.Errorf("harness: graph too large for exact expansion (n=%d)", g.NumNodes())
	}
	return snap.ExpansionExact, snap.ConductanceExact, nil
}
