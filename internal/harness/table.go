package harness

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a rendered experiment result: the unit EXPERIMENTS.md and
// cmd/xheal-bench emit.
type Table struct {
	ID      string // experiment id, e.g. "E3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells padded empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Columns)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	n := len([]rune(s))
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Cell formatting helpers used by the experiments.

// F formats a float with 3 decimals; NaN/Inf and the metrics.Unavailable
// sentinel render as "-".
func F(v float64) string {
	if v == -1 || math.IsNaN(v) {
		return "-"
	}
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// F1 formats a float with 1 decimal.
func F1(v float64) string {
	if v == -1 || math.IsNaN(v) {
		return "-"
	}
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// B formats a pass/fail verdict.
func B(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
