package harness

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
)

// ErrNoHealers is returned by Run when the scenario lists no healers.
var ErrNoHealers = errors.New("harness: scenario has no healers")

// Scenario is one adversarial run: an initial topology, an attack strategy,
// and the healers to drive in lockstep. The adversary observes the first
// healer's view (all healers share the same node set, so its events apply
// to every healer).
type Scenario struct {
	Name        string
	Initial     *graph.Graph
	Adversary   adversary.Adversary
	Healers     []baseline.Healer
	SampleEvery int // snapshot interval; 0 = final snapshot only
	Metrics     metrics.Config
}

// Stamped is a snapshot taken after a given number of adversarial events.
type Stamped struct {
	Step int
	Snap metrics.Snapshot
}

// Series is the metric history of one healer.
type Series struct {
	Healer    string
	Snapshots []Stamped
}

// Final returns the last snapshot of the series.
func (s *Series) Final() metrics.Snapshot {
	if len(s.Snapshots) == 0 {
		return metrics.Snapshot{}
	}
	return s.Snapshots[len(s.Snapshots)-1].Snap
}

// Result is the outcome of a scenario run.
type Result struct {
	Scenario string
	Steps    int
	// Baseline is G′ after the run (shared by all healers).
	Baseline *graph.Graph
	Series   []Series
}

// SeriesFor returns the series of the named healer, or nil.
func (r *Result) SeriesFor(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Healer == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Run executes the scenario to adversary exhaustion.
func Run(sc Scenario) (*Result, error) {
	if len(sc.Healers) == 0 {
		return nil, ErrNoHealers
	}
	gp := sc.Initial.Clone() // shared G′ tracker
	res := &Result{
		Scenario: sc.Name,
		Series:   make([]Series, len(sc.Healers)),
	}
	for i, h := range sc.Healers {
		res.Series[i].Healer = h.Name()
	}
	if sc.Metrics.Rng == nil {
		sc.Metrics.Rng = rand.New(rand.NewSource(12345))
	}

	step := 0
	for {
		ev, ok := sc.Adversary.Next(sc.Healers[0].Graph())
		if !ok {
			break
		}
		step++
		switch ev.Kind {
		case adversary.Insert:
			gp.EnsureNode(ev.Node)
			for _, w := range ev.Neighbors {
				gp.EnsureEdge(ev.Node, w)
			}
			for _, h := range sc.Healers {
				if err := h.Insert(ev.Node, ev.Neighbors); err != nil {
					return nil, fmt.Errorf("step %d: healer %s insert: %w", step, h.Name(), err)
				}
			}
		case adversary.Delete:
			for _, h := range sc.Healers {
				if err := h.Delete(ev.Node); err != nil {
					return nil, fmt.Errorf("step %d: healer %s delete: %w", step, h.Name(), err)
				}
			}
		default:
			return nil, fmt.Errorf("step %d: unknown event kind %v", step, ev.Kind)
		}
		if sc.SampleEvery > 0 && step%sc.SampleEvery == 0 {
			res.sample(sc, gp, step)
		}
	}
	res.sample(sc, gp, step)
	res.Steps = step
	res.Baseline = gp
	return res, nil
}

func (r *Result) sample(sc Scenario, gp *graph.Graph, step int) {
	for i, h := range sc.Healers {
		snap := metrics.Measure(h.Graph(), gp, sc.Metrics)
		r.Series[i].Snapshots = append(r.Series[i].Snapshots, Stamped{Step: step, Snap: snap})
	}
}
