package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/hgraph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/spectral"
	"github.com/xheal/xheal/internal/workload"
)

// E7HGraphExpansion samples random H-graphs and measures their spectral gap:
// Theorem 4 promises expansion Ω(d) w.h.p. for d ≥ 2 Hamilton cycles (d = 1
// is a plain cycle — the negative control).
func E7HGraphExpansion() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "random H-graph expansion (Theorem 4), 20 samples per cell",
		Columns: []string{"n", "d", "mean lam2n", "min lam2n", "frac expander", "ok"},
		Notes: []string{
			"expander threshold: normalized lam2 >= 0.1; d=1 rows are the negative control (a bare cycle)",
		},
	}
	const samples = 20
	type cell struct{ n, d int }
	var cells []cell
	for _, n := range []int{16, 64, 256} {
		for _, d := range []int{1, 2, 3} {
			cells = append(cells, cell{n, d})
		}
	}
	err := t.fillRows(len(cells), func(i int) ([]string, error) {
		n, d := cells[i].n, cells[i].d
		rng := rand.New(rand.NewSource(int64(23000 + i)))
		mean, minLam := 0.0, math.Inf(1)
		good := 0
		for s := 0; s < samples; s++ {
			g, err := workload.RandomRegular(n, d, rand.New(rand.NewSource(int64(n*1000+d*100+s))))
			if err != nil {
				return nil, err
			}
			lam := spectral.NormalizedAlgebraicConnectivity(g, rng)
			mean += lam
			if lam < minLam {
				minLam = lam
			}
			if lam >= 0.1 {
				good++
			}
		}
		mean /= samples
		frac := float64(good) / samples
		ok := frac >= 0.9
		if d == 1 {
			ok = true // negative control: no expansion expected at large n
		}
		return []string{I(n), I(d), F(mean), F(minLam), F(frac), B(ok)}, nil
	})
	return t, err
}

// E8HGraphStationarity tests Theorem 3: the H-graph distribution is
// invariant under INSERT/DELETE. We compare the empirical distribution of
// labeled 5-node Hamilton cycles from fresh construction against cycles
// obtained by building a 7-node H-graph and deleting two nodes.
func E8HGraphStationarity() (*Table, error) {
	const (
		n       = 5
		samples = 4000
	)
	ids := func() []graph.NodeID {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}()

	canon := func(h *hgraph.H) string {
		var b strings.Builder
		cur := graph.NodeID(0)
		for i := 0; i < n; i++ {
			b.WriteString(strconv.Itoa(int(cur)))
			next, ok := h.SuccessorOn(0, cur)
			if !ok {
				return "invalid"
			}
			b.WriteByte('-')
			cur = next
		}
		return b.String()
	}

	fresh := make(map[string]int)
	churned := make(map[string]int)
	for s := 0; s < samples; s++ {
		rngF := rand.New(rand.NewSource(int64(2*s + 1)))
		hf, err := hgraph.New(1, ids, rngF)
		if err != nil {
			return nil, err
		}
		fresh[canon(hf)]++

		rngC := rand.New(rand.NewSource(int64(2*s + 2)))
		extended := append(append([]graph.NodeID(nil), ids...), 100, 101)
		hc, err := hgraph.New(1, extended, rngC)
		if err != nil {
			return nil, err
		}
		if err := hc.Delete(100); err != nil {
			return nil, err
		}
		if err := hc.Delete(101); err != nil {
			return nil, err
		}
		churned[canon(hc)]++
	}

	cells := make(map[string]struct{})
	for k := range fresh {
		cells[k] = struct{}{}
	}
	for k := range churned {
		cells[k] = struct{}{}
	}
	tv := 0.0
	for k := range cells {
		tv += math.Abs(float64(fresh[k])-float64(churned[k])) / samples
	}
	tv /= 2
	tvUniform := 0.0
	uniform := float64(samples) / 24 // (n-1)! directed labeled cycles
	for k := range cells {
		tvUniform += math.Abs(float64(fresh[k]) - uniform)
	}
	tvUniform /= 2 * samples

	t := &Table{
		ID:      "E8",
		Title:   "H-graph distribution stationarity under churn (Theorem 3)",
		Columns: []string{"cells", "samples", "TV(fresh, churned)", "TV(fresh, uniform)", "ok"},
		Notes: []string{
			"TV = total variation distance between empirical cycle distributions (24 possible cycles)",
			"churned = 7-node construction followed by two DELETEs down to the same 5 labels",
		},
	}
	ok := tv < 0.08 && tvUniform < 0.08
	t.AddRow(I(len(cells)), I(samples), F(tv), F(tvUniform), B(ok))
	return t, nil
}

// E9StarAttack reproduces the paper's motivating example (§1, Related Work):
// delete the center of a star and compare every healer. Tree repairs crash
// the expansion to O(1/n); Xheal keeps it constant.
func E9StarAttack() (*Table, error) {
	const leaves = 16
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("star K(1,%d) center deletion: healed topology by algorithm", leaves),
		Columns: []string{"healer", "h(G)", "phi(G)", "lam2", "max deg", "diameter", "connected"},
		Notes: []string{
			"paper: tree-like repairs pull expansion down to O(1/n); Xheal keeps >= min(alpha, h(G'))",
		},
	}
	names := baseline.Names()
	err := t.fillRows(len(names), func(i int) ([]string, error) {
		name := names[i]
		rng := rand.New(rand.NewSource(int64(3300 + i)))
		g0, err := workload.Star(leaves)
		if err != nil {
			return nil, err
		}
		h, err := baseline.New(name, g0, 4, 77)
		if err != nil {
			return nil, err
		}
		if err := h.Delete(0); err != nil {
			return nil, err
		}
		healed := h.Graph()
		var hExact, phiExact float64 = metrics.Unavailable, metrics.Unavailable
		if v, err := cuts.EdgeExpansion(healed); err == nil {
			hExact = v
		}
		if v, err := cuts.Conductance(healed); err == nil {
			phiExact = v
		}
		lam := spectral.AlgebraicConnectivity(healed, rng)
		diam := "-"
		if d, err := healed.Diameter(); err == nil {
			diam = I(d)
		}
		connected := "yes"
		if !healed.IsConnected() {
			connected = "no" // expected for the do-nothing baseline
		}
		return []string{name, F(hExact), F(phiExact), F(lam), I(healed.MaxDegree()),
			diam, connected}, nil
	})
	return t, err
}

// E10LowerBound compares per-deletion message cost against Lemma 5's
// Θ(deg(v)) lower bound: no repair can use fewer messages than the black
// degree, and Xheal stays within an O(κ log n) factor.
func E10LowerBound() (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "messages vs Lemma 5 lower bound",
		Columns: []string{"workload", "n0", "deletions", "min msg/deg", "mean msg/deg",
			"max msg/deg", "k*log2(n)", "ok"},
		Notes: []string{
			"msg/deg = per-deletion protocol messages / black degree of deleted node",
			"ok: every deletion used at least ~deg(v) messages and the mean stays within 4*k*log2(n)",
		},
	}
	const kappa = 4
	cases := []struct {
		wl string
		n  int
	}{
		{workload.NameErdosRenyi, 48},
		{workload.NameRegular, 128},
		{workload.NamePowerLaw, 96},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		g0, err := buildInitial(c.wl, c.n, int64(1800+i))
		if err != nil {
			return nil, err
		}
		e, err := dist.NewEngine(dist.Config{Kappa: kappa, Seed: int64(1900 + i)}, g0)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		rng := rand.New(rand.NewSource(int64(2000 + i)))
		for d := 0; d < c.n/4; d++ {
			alive := e.State().AliveNodes()
			if err := e.Delete(alive[rng.Intn(len(alive))]); err != nil {
				return nil, err
			}
		}
		minR, maxR, sumR := math.Inf(1), 0.0, 0.0
		count := 0
		for _, cost := range e.Costs() {
			if cost.BlackDegree == 0 {
				continue
			}
			r := float64(cost.Messages) / float64(cost.BlackDegree)
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
			sumR += r
			count++
		}
		mean := sumR / float64(count)
		factor := float64(kappa) * math.Log2(float64(c.n))
		ok := minR >= 0.9 && mean <= 4*factor
		return []string{c.wl, I(c.n), I(count), F1(minR), F1(mean), F1(maxR), F1(factor), B(ok)}, nil
	})
	return t, err
}

// E11Invariants runs long adversarial mixes and checks, after every event,
// the full invariant suite (Figure 1 model conformance): simple graph,
// claim/cloud consistency, the degree bound, and connectivity.
func E11Invariants() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "model conformance: per-event invariant checks under churn",
		Columns: []string{"workload", "n0", "kappa", "steps", "violations",
			"disconnects", "final n", "final clouds", "ok"},
	}
	cases := []struct {
		wl    string
		n     int
		kappa int
		steps int
		bias  float64
	}{
		{workload.NameStar, 24, 4, 200, 0.55},
		{workload.NameErdosRenyi, 32, 6, 200, 0.5},
		{workload.NameComplete, 16, 2, 200, 0.6},
	}
	err := t.fillRows(len(cases), func(i int) ([]string, error) {
		c := cases[i]
		g0, err := buildInitial(c.wl, c.n, int64(2100+i))
		if err != nil {
			return nil, err
		}
		st, err := core.NewState(core.Config{Kappa: c.kappa, Seed: int64(2200 + i)}, g0)
		if err != nil {
			return nil, err
		}
		adv := adversary.NewRandomChurn(c.steps, c.bias, 3, int64(2300+i))
		violations, disconnects, steps := 0, 0, 0
		for {
			ev, ok := adv.Next(st.Graph())
			if !ok {
				break
			}
			steps++
			switch ev.Kind {
			case adversary.Insert:
				err = st.InsertNode(ev.Node, ev.Neighbors)
			case adversary.Delete:
				err = st.DeleteNode(ev.Node)
			}
			if err != nil {
				return nil, fmt.Errorf("E11 step %d: %w", steps, err)
			}
			if st.CheckInvariants() != nil {
				violations++
			}
			if !st.Graph().IsConnected() {
				disconnects++
			}
		}
		ok := violations == 0 && disconnects == 0
		return []string{c.wl, I(c.n), I(c.kappa), I(steps), I(violations), I(disconnects),
			I(st.Graph().NumNodes()), I(len(st.Clouds())), B(ok)}, nil
	})
	return t, err
}

// E12Ablations quantifies the design choices the paper argues for: the κ
// parameter trade-off, secondary clouds (vs always combining), and free-node
// sharing.
func E12Ablations() (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "ablations on a fixed churn script (star-24 start, 160 events)",
		Columns: []string{"variant", "combines", "shares", "2nd clouds", "heal edges",
			"max deg ratio", "lam2n"},
		Notes: []string{
			"secondary clouds exist to amortize combining (paper section 3); ablations disable them",
		},
	}
	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"xheal k=4 (paper)", core.Config{Kappa: 4, Seed: 1}},
		{"xheal k=2", core.Config{Kappa: 2, Seed: 1}},
		{"xheal k=8", core.Config{Kappa: 8, Seed: 1}},
		{"always-combine k=4", core.Config{Kappa: 4, Seed: 1, AlwaysCombine: true}},
		{"no-sharing k=4", core.Config{Kappa: 4, Seed: 1, DisableSharing: true}},
	}
	err := t.fillRows(len(variants), func(i int) ([]string, error) {
		v := variants[i]
		rng := rand.New(rand.NewSource(int64(5500 + i)))
		g0, err := workload.Star(24)
		if err != nil {
			return nil, err
		}
		st, err := core.NewState(v.cfg, g0)
		if err != nil {
			return nil, err
		}
		adv := adversary.NewRandomChurn(160, 0.55, 3, 2500)
		for {
			ev, ok := adv.Next(st.Graph())
			if !ok {
				break
			}
			switch ev.Kind {
			case adversary.Insert:
				err = st.InsertNode(ev.Node, ev.Neighbors)
			case adversary.Delete:
				err = st.DeleteNode(ev.Node)
			}
			if err != nil {
				return nil, fmt.Errorf("E12 %s: %w", v.name, err)
			}
		}
		stats := st.Stats()
		lam := spectral.NormalizedAlgebraicConnectivity(st.Graph(), rng)
		ratio := metrics.DegreeRatio(st.Graph(), st.Baseline())
		return []string{v.name, I(stats.Combines), I(stats.Shares), I(stats.SecondaryClouds),
			I(stats.HealEdgesAdded), F(ratio), F(lam)}, nil
	})
	return t, err
}
