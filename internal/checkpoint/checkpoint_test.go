package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkCheckpoint(tick, events uint64, payload string) *Checkpoint {
	c := &Checkpoint{
		Version: Version,
		Tick:    tick,
		Events:  events,
		Engine:  "core",
		Kappa:   4,
		Seed:    7,
		State:   json.RawMessage(payload),
	}
	c.Seal()
	return c
}

func TestVerifyCatchesTampering(t *testing.T) {
	c := mkCheckpoint(3, 12, `{"x":1}`)
	if err := c.Verify(); err != nil {
		t.Fatalf("fresh checkpoint: %v", err)
	}
	c.State = json.RawMessage(`{"x":2}`)
	if err := c.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered state: %v, want ErrCorrupt", err)
	}
	c = mkCheckpoint(3, 12, `{"x":1}`)
	c.Version = 9
	if err := c.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: %v, want ErrCorrupt", err)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMemStore()
	if _, err := m.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty load: %v, want ErrNotFound", err)
	}
	c := mkCheckpoint(1, 4, `{"a":1}`)
	if err := m.Save(c); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := m.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Tick != 1 || got.Events != 4 || string(got.State) != `{"a":1}` {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Loaded copies must not alias the stored state.
	got.State[2] = 'b'
	again, _ := m.Load()
	if string(again.State) != `{"a":1}` {
		t.Fatal("Load returned aliased state")
	}
}

func TestFileStoreRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 2)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if _, err := fs.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty load: %v, want ErrNotFound", err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := fs.Save(mkCheckpoint(i, i*10, `{"n":`+strings.Repeat("1", int(i))+`}`)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	got, err := fs.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Tick != 5 || got.Events != 50 {
		t.Fatalf("loaded tick=%d events=%d, want 5/50", got.Tick, got.Events)
	}
	names, err := fs.list()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(names) != 2 {
		t.Fatalf("retained %d files, want 2 (%v)", len(names), names)
	}
}

// A crash between CreateTemp and rename orphans a temp file; reopening the
// store must sweep such leftovers so they don't accumulate across crash
// cycles, while leaving real checkpoints alone.
func TestFileStoreSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 2)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := fs.Save(mkCheckpoint(1, 4, `{"a":1}`)); err != nil {
		t.Fatalf("save: %v", err)
	}
	for _, name := range []string{tmpPrefix + "111", tmpPrefix + "222"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
	}
	if _, err := NewFileStore(dir, 2); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("stale temp file %s survived reopen", e.Name())
		}
	}
	if got, err := fs.Load(); err != nil || got.Tick != 1 {
		t.Fatalf("checkpoint lost by sweep: %+v, %v", got, err)
	}
}

func TestFileStoreSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 3)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := fs.Save(mkCheckpoint(1, 10, `{"good":true}`)); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := fs.Save(mkCheckpoint(2, 20, `{"good":true}`)); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Tear the newest file byte-by-byte shorter; every truncation must fall
	// back to checkpoint 1, never error, never return garbage.
	names, _ := fs.list()
	newest := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for cut := len(data) - 1; cut >= 0; cut -= 7 {
		if err := os.WriteFile(newest, data[:cut], 0o644); err != nil {
			t.Fatalf("truncate to %d: %v", cut, err)
		}
		got, err := fs.Load()
		if err != nil {
			t.Fatalf("cut=%d: load: %v", cut, err)
		}
		if got.Tick != 1 {
			t.Fatalf("cut=%d: loaded tick %d, want fallback to 1", cut, got.Tick)
		}
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 3)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	fst := NewFaultStore(fs)
	fst.SaveScript = []Fault{FaultNone, FaultTornWrite}
	if err := fst.Save(mkCheckpoint(1, 10, `{"ok":1}`)); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	if err := fst.Save(mkCheckpoint(2, 20, `{"ok":2}`)); !errors.Is(err, ErrInjected) {
		t.Fatalf("save 2: %v, want ErrInjected", err)
	}
	// The torn file exists at the final path but must be skipped on load.
	if names, _ := fs.list(); len(names) != 2 {
		t.Fatalf("expected torn file on disk, got %v", names)
	}
	got, err := fst.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Tick != 1 {
		t.Fatalf("loaded tick %d, want 1 (torn 2 skipped)", got.Tick)
	}
}

func TestFaultStoreKillAtSync(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 3)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	fst := NewFaultStore(fs)
	fst.SaveScript = []Fault{FaultNone, FaultKillAtSync}
	if err := fst.Save(mkCheckpoint(1, 10, `{"ok":1}`)); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	if err := fst.Save(mkCheckpoint(2, 20, `{"ok":2}`)); !errors.Is(err, ErrInjected) {
		t.Fatalf("save 2: %v, want ErrInjected", err)
	}
	// Only the temp file was written; no new checkpoint is visible.
	if names, _ := fs.list(); len(names) != 1 {
		t.Fatalf("expected 1 checkpoint file, got %v", names)
	}
	got, err := fst.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Tick != 1 {
		t.Fatalf("loaded tick %d, want 1", got.Tick)
	}
}

func TestFaultStoreShortRead(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 3)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	fst := NewFaultStore(fs)
	fst.LoadScript = []Fault{FaultShortRead, FaultShortRead}
	if err := fst.Save(mkCheckpoint(1, 10, `{"ok":1}`)); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	if err := fst.Save(mkCheckpoint(2, 20, `{"ok":2}`)); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	// First load: newest (tick 2) is truncated in place → falls back to 1.
	got, err := fst.Load()
	if err != nil {
		t.Fatalf("load 1: %v", err)
	}
	if got.Tick != 1 {
		t.Fatalf("loaded tick %d, want 1", got.Tick)
	}
	// Second load truncates tick 1 as well (it is now the newest intact
	// file after 2 was torn — list order still has 2 last, already torn, so
	// the fault tears it further; 1 must still load).
	if _, err := fst.Load(); err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatalf("load 2: %v", err)
	}
}
