// Package checkpoint persists engine snapshots so a crashed daemon can
// recover without replaying its event log from genesis. A Checkpoint pairs an
// opaque engine snapshot (the deterministic JSON produced by
// core.SnapshotState / dist.SnapshotState) with the watermarks needed to
// resume serving: the tick and event counts at capture time. Stores are
// deliberately dumb — they hold bytes and watermarks; what the bytes mean is
// the engine's business.
//
// Two implementations ship: MemStore for tests, and FileStore, which writes
// each checkpoint to its own file via the temp-file + fsync + atomic-rename
// dance so a crash at any instant leaves either the old checkpoint set or the
// new one, never a torn file that parses. FaultStore wraps a FileStore and
// injects the failures the rename dance is supposed to survive — torn writes,
// short reads, kills at fsync time — so recovery paths are tested against the
// crashes they claim to handle.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Version identifies the checkpoint envelope schema.
const Version = 1

// ErrNotFound reports that a store holds no usable checkpoint.
var ErrNotFound = errors.New("checkpoint: no checkpoint")

// ErrCorrupt wraps all envelope validation failures (bad version, checksum
// mismatch, watermark regressions).
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Checkpoint is one durable engine snapshot plus the serving watermarks.
type Checkpoint struct {
	Version int `json:"version"`
	// Tick and Events are the server's progress watermarks at capture time:
	// recovery replays only log events after Events.
	Tick   uint64 `json:"tick"`
	Events uint64 `json:"events"`
	// Engine names the snapshot dialect ("core" or "dist"); Kappa and Seed
	// guard against resuming a store against a differently-configured daemon.
	Engine string `json:"engine"`
	Kappa  int    `json:"kappa"`
	Seed   int64  `json:"seed"`
	// Genesis, when set, fingerprints the run's initial graph (the producer
	// decides the digest; internal/server uses GenesisDigest). Recovery fails
	// on mismatch, so a daemon restarted under different topology flags can't
	// silently resume another run's checkpoint. Empty skips the check.
	Genesis string `json:"genesis,omitempty"`
	// State is the engine snapshot, opaque to the store.
	State json.RawMessage `json:"state"`
	// Checksum is hex(sha256(State)), verified on load so a torn or
	// bit-rotted file is skipped rather than restored.
	Checksum string `json:"checksum"`
}

// Name is the canonical filename for this checkpoint — zero-padded tick and
// event watermarks, so lexicographic order equals recovery order. FileStore
// saves under this name; log segment headers record it as their anchor.
func (c *Checkpoint) Name() string {
	return fmt.Sprintf("ckpt-%016d-%016d.json", c.Tick, c.Events)
}

// Seal recomputes the checksum over State. Call after filling State.
func (c *Checkpoint) Seal() {
	sum := sha256.Sum256(c.State)
	c.Checksum = hex.EncodeToString(sum[:])
}

// Verify validates the envelope: version, checksum, and non-empty state.
func (c *Checkpoint) Verify() error {
	if c.Version != Version {
		return fmt.Errorf("%w: version %d (want %d)", ErrCorrupt, c.Version, Version)
	}
	if len(c.State) == 0 {
		return fmt.Errorf("%w: empty state", ErrCorrupt)
	}
	sum := sha256.Sum256(c.State)
	if hex.EncodeToString(sum[:]) != c.Checksum {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return nil
}

// Store persists checkpoints. Save must be atomic: after a crash at any
// point, Load returns either the previous latest checkpoint or the new one.
// Load returns the newest valid checkpoint, or ErrNotFound.
type Store interface {
	Save(c *Checkpoint) error
	Load() (*Checkpoint, error)
}

// MemStore is an in-memory Store for tests. It keeps only the latest
// checkpoint, deep-copied on both Save and Load so callers can't alias.
type MemStore struct {
	latest *Checkpoint
	saves  int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save retains a copy of c as the latest checkpoint.
func (m *MemStore) Save(c *Checkpoint) error {
	if err := c.Verify(); err != nil {
		return err
	}
	cp := *c
	cp.State = append(json.RawMessage(nil), c.State...)
	m.latest = &cp
	m.saves++
	return nil
}

// Load returns a copy of the latest checkpoint.
func (m *MemStore) Load() (*Checkpoint, error) {
	if m.latest == nil {
		return nil, ErrNotFound
	}
	cp := *m.latest
	cp.State = append(json.RawMessage(nil), m.latest.State...)
	return &cp, nil
}

// Saves reports how many checkpoints have been saved (test hook).
func (m *MemStore) Saves() int { return m.saves }
