package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrInjected marks a failure produced by a FaultStore rather than the
// filesystem. Callers under test treat it like any I/O error.
var ErrInjected = errors.New("checkpoint: injected fault")

// Fault is one scripted failure mode.
type Fault int

const (
	// FaultNone performs the operation normally.
	FaultNone Fault = iota
	// FaultTornWrite leaves a half-written checkpoint at the *final* path —
	// the wreckage a crash leaves when a writer skips the rename dance — and
	// reports failure. Recovery must skip the torn file.
	FaultTornWrite
	// FaultKillAtSync simulates dying at fsync time: the full payload is
	// written to a temp file that is never renamed. No new checkpoint
	// becomes visible; the previous one must still load.
	FaultKillAtSync
	// FaultShortRead truncates the newest checkpoint file in place before
	// the read, simulating a torn tail at rest. Load must fall back to an
	// older checkpoint (or report ErrNotFound if none survives).
	FaultShortRead
)

// FaultStore wraps a FileStore and injects scripted faults, one per call:
// the i-th Save consumes SaveScript[i], the i-th Load consumes LoadScript[i]
// (FaultNone past the end of a script). It exists so crash-recovery tests
// exercise the exact failure shapes the atomic-rename protocol claims to
// survive, deterministically rather than by racing a real SIGKILL.
type FaultStore struct {
	fs         *FileStore
	SaveScript []Fault
	LoadScript []Fault
	saves      int
	loads      int
}

// NewFaultStore wraps fs.
func NewFaultStore(fs *FileStore) *FaultStore { return &FaultStore{fs: fs} }

func nextFault(script []Fault, n int) Fault {
	if n < len(script) {
		return script[n]
	}
	return FaultNone
}

// Save applies the next scripted save fault.
func (f *FaultStore) Save(c *Checkpoint) error {
	fault := nextFault(f.SaveScript, f.saves)
	f.saves++
	switch fault {
	case FaultTornWrite:
		data, err := json.Marshal(c)
		if err != nil {
			return fmt.Errorf("checkpoint: encode: %w", err)
		}
		final := filepath.Join(f.fs.dir, f.fs.nameFor(c))
		if err := os.WriteFile(final, data[:len(data)/2], 0o644); err != nil {
			return fmt.Errorf("checkpoint: torn write: %w", err)
		}
		return fmt.Errorf("%w: torn write of %s", ErrInjected, filepath.Base(final))
	case FaultKillAtSync:
		data, err := json.Marshal(c)
		if err != nil {
			return fmt.Errorf("checkpoint: encode: %w", err)
		}
		tmp, err := os.CreateTemp(f.fs.dir, ".tmp-ckpt-*")
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		_, werr := tmp.Write(data)
		tmp.Close()
		if werr != nil {
			return fmt.Errorf("checkpoint: %w", werr)
		}
		return fmt.Errorf("%w: killed at fsync before rename", ErrInjected)
	default:
		return f.fs.Save(c)
	}
}

// Load applies the next scripted load fault, then delegates.
func (f *FaultStore) Load() (*Checkpoint, error) {
	fault := nextFault(f.LoadScript, f.loads)
	f.loads++
	if fault == FaultShortRead {
		if names, err := f.fs.list(); err == nil && len(names) > 0 {
			newest := filepath.Join(f.fs.dir, names[len(names)-1])
			if info, err := os.Stat(newest); err == nil && info.Size() > 0 {
				_ = os.Truncate(newest, info.Size()/3)
			}
		}
	}
	return f.fs.Load()
}
