package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// filePrefix and fileSuffix frame checkpoint filenames. The zero-padded
// tick/event watermarks in between make lexicographic order equal recovery
// order, so Load can scan newest-first without parsing every file.
const (
	filePrefix = "ckpt-"
	fileSuffix = ".json"
	// tmpPrefix names in-flight temp files; a crash between CreateTemp and
	// rename orphans one, so NewFileStore sweeps leftovers at open.
	tmpPrefix = ".tmp-ckpt-"
)

// FileStore persists each checkpoint as its own file under a directory,
// written with the temp-file + fsync + atomic-rename sequence: a crash at any
// instant leaves either the previous checkpoint set or the new one. Load
// scans newest-first and skips files that fail to parse or verify, so one
// torn write never blocks recovery — the previous checkpoint still restores.
//
// FileStore is not safe for concurrent use; the server serializes access
// through its tick loop.
type FileStore struct {
	dir  string
	keep int // retained checkpoint files; older ones pruned after each Save
}

// NewFileStore opens (creating if needed) a checkpoint directory. keep bounds
// how many checkpoint files survive pruning; values below 2 are raised to 2
// so there is always a fallback if the newest file is torn.
func NewFileStore(dir string, keep int) (*FileStore, error) {
	if keep < 2 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	// Sweep temp files orphaned by a crash mid-Save: nothing references them
	// (list filters them out), so left alone they accumulate forever across
	// crash/restart cycles. Best-effort, like prune.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), tmpPrefix) {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &FileStore{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) nameFor(c *Checkpoint) string { return c.Name() }

// Save writes c durably: temp file in the same directory, fsync, rename to
// the final name, fsync the directory so the rename itself is durable, then
// prune old checkpoints beyond the retention count.
func (f *FileStore) Save(c *Checkpoint) error {
	if err := c.Verify(); err != nil {
		return err
	}
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	final := filepath.Join(f.dir, f.nameFor(c))
	tmp, err := os.CreateTemp(f.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	syncDir(f.dir)
	f.prune()
	return nil
}

// Load returns the newest checkpoint that parses and verifies, skipping
// corrupt files (a torn newest file falls back to its predecessor).
func (f *FileStore) Load() (*Checkpoint, error) {
	names, err := f.list()
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(f.dir, names[i]))
		if err != nil {
			continue
		}
		var c Checkpoint
		if err := json.Unmarshal(data, &c); err != nil {
			continue
		}
		if err := c.Verify(); err != nil {
			continue
		}
		return &c, nil
	}
	return nil, ErrNotFound
}

// list returns checkpoint filenames in ascending (oldest-first) order.
func (f *FileStore) list() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, filePrefix) && strings.HasSuffix(name, fileSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// prune removes checkpoint files beyond the retention count, oldest first.
// Best-effort: pruning failures never fail a Save.
func (f *FileStore) prune() {
	names, err := f.list()
	if err != nil || len(names) <= f.keep {
		return
	}
	for _, name := range names[:len(names)-f.keep] {
		_ = os.Remove(filepath.Join(f.dir, name))
	}
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
