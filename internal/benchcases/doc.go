// Package benchcases holds the core micro-benchmark bodies shared by the
// repository's `go test -bench` suite (bench_test.go at the module root)
// and the `xheal-bench -benchjson` trajectory recorder. A single
// implementation keeps the committed BENCH_*.json numbers measuring exactly
// the code the CI benchmark-smoke job runs — two copies would silently
// drift apart, and a perf regression could hide in the gap.
//
// Each case is a plain func(b *testing.B) so the same body runs under `go
// test -bench` (interactive work, CI smoke at -benchtime 1x) and under
// testing.Benchmark inside xheal-bench (the recorded ns/op, B/op, and
// allocs/op series committed as BENCH_PR*.json). The cases cover the hot
// layers with perf contracts: graph mutation and cached-view iteration,
// heal-repair allocation counts, H-graph churn, λ₂ estimation (Jacobi and
// Lanczos/CSR), and mixing-time measurement.
//
// When adding a case, register it in both consumers (the root bench file
// and cmd/xheal-bench's micro list) — the shared body is the point of this
// package.
package benchcases
