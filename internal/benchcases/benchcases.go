package benchcases

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/hgraph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/spectral"
)

// removeAt swap-deletes index i from ids, preserving the invariant that ids
// tracks the alive set without re-listing the graph inside a timed loop.
func removeAt(ids []graph.NodeID, i int) ([]graph.NodeID, graph.NodeID) {
	v := ids[i]
	ids[i] = ids[len(ids)-1]
	return ids[:len(ids)-1], v
}

// HealDeletion measures one sequential Xheal repair in steady state
// (delete + re-insert on a churned network). The alive-ID slice is
// maintained incrementally so the measured region is the healing itself,
// not node listing.
func HealDeletion(b *testing.B) {
	g, err := xheal.RandomRegularGraph(256, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(2))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	alive := append([]xheal.NodeID(nil), n.Graph().Nodes()...)
	next := xheal.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var victim xheal.NodeID
		alive, victim = removeAt(alive, rng.Intn(len(alive)))
		if err := n.Delete(victim); err != nil {
			b.Fatal(err)
		}
		u, v := alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]
		nbrs := []xheal.NodeID{u, v}
		if u == v {
			nbrs = nbrs[:1]
		}
		if err := n.Insert(next, nbrs); err != nil {
			b.Fatal(err)
		}
		alive = append(alive, next)
		next++
	}
}

// DistributedDeletion measures one full message-passing repair.
func DistributedDeletion(b *testing.B) {
	g, err := xheal.RandomRegularGraph(512, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	d, err := xheal.NewDistributed(g, xheal.WithKappa(4), xheal.WithSeed(5))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(6))
	alive := append([]xheal.NodeID(nil), d.State().AliveNodes()...)
	next := xheal.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var victim xheal.NodeID
		alive, victim = removeAt(alive, rng.Intn(len(alive)))
		if err := d.Delete(victim); err != nil {
			b.Fatal(err)
		}
		if err := d.Insert(next, []xheal.NodeID{alive[rng.Intn(len(alive))]}); err != nil {
			b.Fatal(err)
		}
		alive = append(alive, next)
		next++
	}
}

// HGraphChurn measures the expander substrate's incremental ops.
func HGraphChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ids := make([]graph.NodeID, 128)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	h, err := hgraph.New(3, ids, rng)
	if err != nil {
		b.Fatal(err)
	}
	members := append([]graph.NodeID(nil), h.Members()...)
	next := graph.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var victim graph.NodeID
		members, victim = removeAt(members, rng.Intn(len(members)))
		if err := h.Delete(victim); err != nil {
			b.Fatal(err)
		}
		if err := h.Insert(next); err != nil {
			b.Fatal(err)
		}
		members = append(members, next)
		next++
	}
}

// churnBatch assembles one steady-state timestep against the alive set:
// deletes distinct victims and re-inserts as many fresh nodes attached to
// surviving neighbors, keeping the network size constant. Returns the
// updated alive slice (victims removed, fresh IDs appended).
func churnBatch(rng *rand.Rand, alive []xheal.NodeID, next *xheal.NodeID, dels int) (xheal.Batch, []xheal.NodeID) {
	var batch xheal.Batch
	for i := 0; i < dels && len(alive) > 4; i++ {
		var victim xheal.NodeID
		alive, victim = removeAt(alive, rng.Intn(len(alive)))
		batch.Deletions = append(batch.Deletions, victim)
	}
	for range batch.Deletions {
		u, v := alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]
		nbrs := []xheal.NodeID{u, v}
		if u == v {
			nbrs = nbrs[:1]
		}
		batch.Insertions = append(batch.Insertions, xheal.BatchInsertion{Node: *next, Neighbors: nbrs})
		alive = append(alive, *next)
		*next++
	}
	return batch, alive
}

// applyBatchChurn measures multi-deletion timesteps on a large sparse
// network — the disjoint-footprint regime where ApplyBatchParallel fans
// repairs out across groups. workers ≤ 1 takes the serial ApplyBatch path;
// both paths produce byte-identical states, so the two benchmarks measure
// exactly the scheduling overhead/speedup.
func applyBatchChurn(b *testing.B, workers int) {
	g, err := xheal.RandomRegularGraph(512, 3, 21)
	if err != nil {
		b.Fatal(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(22))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	alive := append([]xheal.NodeID(nil), n.Graph().Nodes()...)
	next := xheal.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch xheal.Batch
		batch, alive = churnBatch(rng, alive, &next, 12)
		if workers > 1 {
			err = n.ApplyBatchParallel(batch, workers)
		} else {
			err = n.ApplyBatch(batch)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ApplyBatchSerial measures a 12-deletion churn timestep healed serially.
func ApplyBatchSerial(b *testing.B) { applyBatchChurn(b, 1) }

// ApplyBatchParallel measures the same timestep with disjoint wounds healed
// concurrently on 4 workers.
func ApplyBatchParallel(b *testing.B) { applyBatchChurn(b, 4) }

// Lambda2Jacobi measures the dense eigensolver path (n <= 220).
func Lambda2Jacobi(b *testing.B) {
	g, err := xheal.RandomRegularGraph(128, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lam := spectral.AlgebraicConnectivity(g, rng); lam <= 0 {
			b.Fatal("non-positive lambda2")
		}
	}
}

// Lambda2Lanczos measures the sparse (matrix-free) eigensolver path (n > 220).
func Lambda2Lanczos(b *testing.B) {
	g, err := xheal.RandomRegularGraph(512, 3, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lam := spectral.AlgebraicConnectivity(g, rng); lam <= 0 {
			b.Fatal("non-positive lambda2")
		}
	}
}

// MixingTime measures the exact lazy-walk mixing estimator.
func MixingTime(b *testing.B) {
	g, err := xheal.RandomRegularGraph(96, 3, 12)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := metrics.MixingTime(g, 0.05, 2000, 2, rng)
		if res.Steps > 2000 {
			b.Fatal("walk failed to mix")
		}
	}
}
