package benchcases

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/server"
	"github.com/xheal/xheal/internal/workload"
)

// churntServer builds a serving daemon over a churned n-node network. The
// returned server is live (incremental metrics) unless slow is set, in which
// case every Health() clones and re-measures — the PR-4 behavior kept as the
// -slow-health escape hatch.
func churntServer(b *testing.B, n int, slow bool) *server.Server {
	b.Helper()
	g0, err := workload.RandomRegular(n, 3, rand.New(rand.NewSource(31)))
	if err != nil {
		b.Fatal(err)
	}
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 32}, g0)
	if err != nil {
		b.Fatal(err)
	}
	s := server.New(st, server.Config{
		SlowHealth:   slow,
		RefreshEvery: 8,
	})
	anchors := append([]graph.NodeID(nil), g0.Nodes()...)
	stream := adversary.NewClientStream(0, anchors, 0.35, 3, 900)
	for i := 0; i < 64; i++ {
		if err := s.Submit(context.Background(), stream.Next()); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// HealthPoll measures one /v1/health snapshot on the incremental path: the
// tracker and caches answer without cloning the graph or running BFS.
func HealthPoll(b *testing.B) {
	s := churntServer(b, 2048, false)
	defer s.Close()
	// Let the refresher land once so polls exercise the steady state
	// (valid λ₂ + stretch caches), not the warm-up window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := s.Health()
		if h.Live != nil && h.Live.Lambda2Valid && h.Live.StretchValid {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("live caches never became valid")
		}
		time.Sleep(time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.Health()
		if h.Nodes == 0 {
			b.Fatal("empty health snapshot")
		}
	}
}

// HealthPollSlow is the same poll on the clone-and-measure path (Config.
// SlowHealth), the before side of BENCH_PR10's health-poll comparison.
func HealthPollSlow(b *testing.B) {
	s := churntServer(b, 2048, true)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.Health()
		if h.Nodes == 0 {
			b.Fatal("empty health snapshot")
		}
	}
}

// IngestArray measures one 64-event array POSTed to /v1/events — the
// batch-enqueue ingest path: one admission-ring reservation and one shard
// lock for the whole array, then one verdict await per event.
func IngestArray(b *testing.B) {
	const arrayLen = 64
	s := churntServer(b, 1024, false)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Steady-state arrays: each deletes the nodes the previous iteration
	// inserted and inserts fresh ones attached to long-lived anchors, so the
	// network neither grows without bound nor runs dry.
	anchors := s.Graph().Nodes()[:16]
	next := graph.NodeID(1 << 24)
	var prev []graph.NodeID
	makeBody := func() []byte {
		events := make([]server.IngestEvent, 0, arrayLen)
		for _, v := range prev {
			events = append(events, server.IngestEvent{Kind: "delete", Node: v})
		}
		prev = prev[:0]
		for len(events) < arrayLen {
			events = append(events, server.IngestEvent{
				Kind: "insert", Node: next,
				Neighbors: []graph.NodeID{anchors[int(next)%len(anchors)]},
			})
			prev = append(prev, next)
			next++
		}
		body, err := json.Marshal(events)
		if err != nil {
			b.Fatal(err)
		}
		return body
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/events", "application/json", bytes.NewReader(makeBody()))
		if err != nil {
			b.Fatal(err)
		}
		var r server.IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || r.Applied != arrayLen {
			b.Fatal(fmt.Errorf("status %d, applied %d/%d: %s", resp.StatusCode, r.Applied, arrayLen, r.Error))
		}
	}
	b.SetBytes(arrayLen) // events/sec via B/s
}
