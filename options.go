package xheal

import "github.com/xheal/xheal/internal/core"

// config collects the functional options shared by the constructors.
type config struct {
	kappa int
	seed  int64
}

func (c config) kappaOrDefault() int {
	if c.kappa == 0 {
		return core.DefaultKappa
	}
	return c.kappa
}

func buildConfig(opts []Option) config {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Option configures a Network, Distributed engine, or Healer.
type Option func(*config)

// WithKappa sets the expander degree parameter κ (an even integer ≥ 2; the
// paper's "small parameter"). The default is 6 — three Hamilton cycles per
// cloud. Constructors reject invalid values.
func WithKappa(kappa int) Option {
	return func(c *config) { c.kappa = kappa }
}

// WithSeed seeds the algorithm's private randomness (expander wiring, leader
// ranks). Runs with equal seeds and event sequences are reproducible. The
// paper's adversary is oblivious to this randomness.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}
