package xheal_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/xheal/xheal"
)

func mustStar(t *testing.T, leaves int) *xheal.Graph {
	t.Helper()
	g, err := xheal.StarGraph(leaves)
	if err != nil {
		t.Fatalf("StarGraph: %v", err)
	}
	return g
}

func TestQuickstartFlow(t *testing.T) {
	g := mustStar(t, 8)
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(42))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if n.Kappa() != 4 {
		t.Fatalf("Kappa = %d, want 4", n.Kappa())
	}
	if err := n.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	snap := n.Measure()
	if !snap.Connected {
		t.Fatal("healed star disconnected")
	}
	if snap.ExpansionExact < 0.5 {
		t.Fatalf("expansion = %v, want constant", snap.ExpansionExact)
	}
	if !n.Baseline().HasNode(0) {
		t.Fatal("baseline lost the deleted hub")
	}
	if n.Alive(0) {
		t.Fatal("deleted hub still alive")
	}
}

func TestDefaultOptions(t *testing.T) {
	g := mustStar(t, 4)
	n, err := xheal.NewNetwork(g)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if n.Kappa() != 6 {
		t.Fatalf("default kappa = %d, want 6", n.Kappa())
	}
	if _, err := xheal.NewNetwork(g, xheal.WithKappa(3)); err == nil {
		t.Fatal("odd kappa should be rejected")
	}
}

func TestInsertAndStats(t *testing.T) {
	g := mustStar(t, 5)
	n, err := xheal.NewNetwork(g, xheal.WithSeed(7))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Insert(100, []xheal.NodeID{1, 2}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := n.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st := n.Stats()
	if st.Insertions != 1 || st.Deletions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n.DegreeBound(1) <= 0 {
		t.Fatal("DegreeBound not positive")
	}
	if n.MeasureFast().Nodes != n.Graph().NumNodes() {
		t.Fatal("MeasureFast nodes mismatch")
	}
}

func TestCompareStarAttack(t *testing.T) {
	g := mustStar(t, 12)
	snaps, err := xheal.Compare(g, 0,
		[]string{xheal.HealerXheal, xheal.HealerForgivingTree},
		xheal.WithKappa(4), xheal.WithSeed(3))
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	xh := snaps[xheal.HealerXheal]
	tree := snaps[xheal.HealerForgivingTree]
	if xh.ExpansionExact <= tree.ExpansionExact {
		t.Fatalf("xheal h=%v should beat tree h=%v", xh.ExpansionExact, tree.ExpansionExact)
	}
}

func TestHealerNames(t *testing.T) {
	names := xheal.HealerNames()
	if len(names) != 7 || names[0] != xheal.HealerXheal {
		t.Fatalf("HealerNames = %v", names)
	}
	g := mustStar(t, 4)
	for _, name := range names {
		if _, err := xheal.NewHealer(name, g); err != nil {
			t.Fatalf("NewHealer(%q): %v", name, err)
		}
	}
	if _, err := xheal.NewHealer("bogus", g); err == nil {
		t.Fatal("unknown healer should fail")
	}
}

func TestDistributedFacade(t *testing.T) {
	g, err := xheal.RandomRegularGraph(24, 3, 5)
	if err != nil {
		t.Fatalf("RandomRegularGraph: %v", err)
	}
	d, err := xheal.NewDistributed(g, xheal.WithKappa(4), xheal.WithSeed(9))
	if err != nil {
		t.Fatalf("NewDistributed: %v", err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 6; i++ {
		alive := d.State().AliveNodes()
		if err := d.Delete(alive[rng.Intn(len(alive))]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := d.ValidateLocalViews(); err != nil {
		t.Fatalf("local views: %v", err)
	}
	if d.Totals().Deletions != 6 {
		t.Fatalf("Deletions = %d, want 6", d.Totals().Deletions)
	}
	if !d.Graph().IsConnected() {
		t.Fatal("distributed healed graph disconnected")
	}
}

func TestGeneratorsFacade(t *testing.T) {
	if g, err := xheal.PathGraph(5); err != nil || g.NumEdges() != 4 {
		t.Fatalf("PathGraph: %v %v", g, err)
	}
	if g, err := xheal.CycleGraph(5); err != nil || g.NumEdges() != 5 {
		t.Fatalf("CycleGraph: %v %v", g, err)
	}
	if g, err := xheal.CompleteGraph(5); err != nil || g.NumEdges() != 10 {
		t.Fatalf("CompleteGraph: %v %v", g, err)
	}
	if g, err := xheal.GridGraph(2, 3); err != nil || g.NumNodes() != 6 {
		t.Fatalf("GridGraph: %v %v", g, err)
	}
	if g, err := xheal.HypercubeGraph(3); err != nil || g.NumNodes() != 8 {
		t.Fatalf("HypercubeGraph: %v %v", g, err)
	}
	if g, err := xheal.ErdosRenyiGraph(16, 0.4, 1); err != nil || !g.IsConnected() {
		t.Fatalf("ErdosRenyiGraph: %v %v", g, err)
	}
	if g, err := xheal.PreferentialAttachmentGraph(16, 2, 1); err != nil || !g.IsConnected() {
		t.Fatalf("PreferentialAttachmentGraph: %v %v", g, err)
	}
}

func TestChurnThroughPublicAPI(t *testing.T) {
	g, err := xheal.ErdosRenyiGraph(20, 0.3, 11)
	if err != nil {
		t.Fatalf("ErdosRenyiGraph: %v", err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(13))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	next := xheal.NodeID(1000)
	for step := 0; step < 60; step++ {
		alive := n.Graph().Nodes()
		if len(alive) > 5 && rng.Intn(2) == 0 {
			if err := n.Delete(alive[rng.Intn(len(alive))]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			if err := n.Insert(next, []xheal.NodeID{alive[rng.Intn(len(alive))]}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			next++
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("step %d invariants: %v", step, err)
		}
	}
	if !n.Graph().IsConnected() {
		t.Fatal("disconnected after churn")
	}
}

func TestApplyBatchFacade(t *testing.T) {
	g := mustStar(t, 8)
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(2))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	err = n.ApplyBatch(xheal.Batch{
		Insertions: []xheal.BatchInsertion{{Node: 100, Neighbors: []xheal.NodeID{1}}},
		Deletions:  []xheal.NodeID{0, 2},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if !n.Graph().IsConnected() {
		t.Fatal("disconnected after batch")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Conflicting batch is rejected atomically.
	err = n.ApplyBatch(xheal.Batch{Deletions: []xheal.NodeID{3, 3}})
	if err == nil {
		t.Fatal("conflicting batch should fail")
	}
}

func TestWriteDOTFacade(t *testing.T) {
	g := mustStar(t, 6)
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(3))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	var b strings.Builder
	if err := n.WriteDOT(&b); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(b.String(), "graph xheal {") {
		t.Fatalf("not DOT output:\n%s", b.String())
	}
}
