// Command xheal-sim runs a single self-healing scenario with an event trace:
// pick an initial topology, an adversary, and a healer, and watch the
// network heal (the Figure 1 loop of the paper, observable).
//
// Usage:
//
//	xheal-sim -workload star -n 24 -adversary maxdeg -steps 12 -v
//	xheal-sim -workload er -n 64 -adversary churn -steps 100 -healer forgiving-tree
//	xheal-sim -workload regular -n 64 -adversary churn -steps 40 -distributed
//	xheal-sim -workload star -n 24 -record run.json     # save the event trace
//	xheal-sim -replay run.json -healer forgiving-tree   # replay it elsewhere
//	xheal-sim -workload star -n 16 -steps 4 -dot out.dot # paper-colored DOT
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/trace"
	"github.com/xheal/xheal/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xheal-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl          = fs.String("workload", "star", "initial topology: "+fmt.Sprint(workload.Names()))
		n           = fs.Int("n", 24, "initial node count")
		healer      = fs.String("healer", baseline.NameXheal, "healer: "+fmt.Sprint(baseline.Names()))
		advName     = fs.String("adversary", "churn", "adversary: "+fmt.Sprint(adversary.Names()))
		steps       = fs.Int("steps", 40, "adversarial events")
		kappa       = fs.Int("kappa", 4, "expander degree parameter (even)")
		seed        = fs.Int64("seed", 1, "randomness seed")
		verbose     = fs.Bool("v", false, "print every event")
		distributed = fs.Bool("distributed", false, "run the distributed protocol engine (xheal only)")
		record      = fs.String("record", "", "save the event trace to this JSON file")
		replay      = fs.String("replay", "", "replay a recorded trace instead of generating events")
		dotOut      = fs.String("dot", "", "write the final healed graph as Graphviz DOT (paper colors; xheal only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var (
		g0  *graph.Graph
		adv adversary.Adversary
		err error
	)
	if *replay != "" {
		g0, adv, err = loadTrace(stdout, *replay)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		g0, err = workload.ByName(*wl, *n, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		adv, err = adversary.ByName(*advName, *steps, *seed)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	var rec *trace.Trace
	if *record != "" {
		rec = trace.New(g0)
		adv = &trace.Recording{Inner: adv, Trace: rec}
	}
	fmt.Fprintf(stdout, "initial: %s n=%d m=%d | healer=%s adversary=%s steps=%d kappa=%d seed=%d\n",
		*wl, g0.NumNodes(), g0.NumEdges(), *healer, *advName, *steps, *kappa, *seed)

	code := 0
	if *distributed {
		code = runDistributed(stdout, stderr, g0, adv, *kappa, *seed, *verbose)
	} else {
		code = runSequential(stdout, stderr, g0, adv, *healer, *kappa, *seed, *verbose, *dotOut)
	}
	if code == 0 && rec != nil {
		if err := saveTrace(*record, rec); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "trace recorded to %s (%d events)\n", *record, len(rec.Events))
	}
	return code
}

func loadTrace(stdout io.Writer, path string) (*graph.Graph, adversary.Adversary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		return nil, nil, err
	}
	adv, err := tr.Adversary()
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(stdout, "replaying %s: %d events\n", path, len(tr.Events))
	return tr.Initial(), adv, nil
}

func saveTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runSequential(stdout, stderr io.Writer, g0 *graph.Graph, adv adversary.Adversary, healer string, kappa int, seed int64, verbose bool, dotOut string) int {
	h, err := baseline.New(healer, g0, kappa, seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	gp := g0.Clone() // G' tracker: insertions only
	step := 0
	for {
		ev, ok := adv.Next(h.Graph())
		if !ok {
			break
		}
		step++
		switch ev.Kind {
		case adversary.Insert:
			gp.EnsureNode(ev.Node)
			for _, w := range ev.Neighbors {
				gp.EnsureEdge(ev.Node, w)
			}
			err = h.Insert(ev.Node, ev.Neighbors)
		case adversary.Delete:
			err = h.Delete(ev.Node)
		}
		if err != nil {
			fmt.Fprintf(stderr, "step %d: %v\n", step, err)
			return 1
		}
		if verbose {
			g := h.Graph()
			fmt.Fprintf(stdout, "step %3d: %-6s node %-7d -> n=%d m=%d connected=%v\n",
				step, ev.Kind, ev.Node, g.NumNodes(), g.NumEdges(), g.IsConnected())
		}
	}
	printFinal(stdout, h.Graph(), gp, step)
	if xh, ok := h.(*baseline.Xheal); ok {
		st := xh.State().Stats()
		fmt.Fprintf(stdout, "healing work: +%d/-%d edges, %d primary clouds, %d secondary, %d combines, %d shares\n",
			st.HealEdgesAdded, st.HealEdgesRemoved, st.PrimaryClouds, st.SecondaryClouds, st.Combines, st.Shares)
		if err := xh.State().CheckInvariants(); err != nil {
			fmt.Fprintf(stderr, "INVARIANT VIOLATION: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "invariants: ok")
		if dotOut != "" {
			f, err := os.Create(dotOut)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := xh.State().WriteDOT(f); err != nil {
				f.Close()
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "healed graph written to %s (black=original, red=primary, orange=secondary)\n", dotOut)
		}
	}
	return 0
}

func runDistributed(stdout, stderr io.Writer, g0 *graph.Graph, adv adversary.Adversary, kappa int, seed int64, verbose bool) int {
	e, err := dist.NewEngine(dist.Config{Kappa: kappa, Seed: seed}, g0)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer e.Close()
	step := 0
	for {
		ev, ok := adv.Next(e.Graph())
		if !ok {
			break
		}
		step++
		switch ev.Kind {
		case adversary.Insert:
			err = e.Insert(ev.Node, ev.Neighbors)
		case adversary.Delete:
			err = e.Delete(ev.Node)
		}
		if err != nil {
			fmt.Fprintf(stderr, "step %d: %v\n", step, err)
			return 1
		}
		if verbose && ev.Kind == adversary.Delete {
			costs := e.Costs()
			c := costs[len(costs)-1]
			fmt.Fprintf(stdout, "step %3d: delete node %-7d -> rounds=%d messages=%d (deg_G'=%d)\n",
				step, ev.Node, c.Rounds, c.Messages, c.BlackDegree)
		}
	}
	printFinal(stdout, e.Graph(), e.State().Baseline(), step)
	t := e.Totals()
	fmt.Fprintf(stdout, "protocol: %d deletions, %d rounds, %d messages (A(p)=%.1f, amortized %.1f msg/deletion)\n",
		t.Deletions, t.Rounds, t.Messages, e.AmortizedLowerBound(),
		float64(t.Messages)/float64(max(1, t.Deletions)))
	if err := e.ValidateLocalViews(); err != nil {
		fmt.Fprintf(stderr, "LOCAL VIEW DIVERGENCE: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "local views: consistent with healed graph")
	return 0
}

func printFinal(stdout io.Writer, g, gp *graph.Graph, steps int) {
	// The summary prints sweep-cut witnesses on large graphs, so opt into
	// their (expensive, eigenvector-carrying) computation here.
	snap := metrics.Measure(g, gp, metrics.Config{StretchSources: 8, SweepCuts: true})
	fmt.Fprintf(stdout, "after %d events: n=%d m=%d connected=%v maxdeg=%d lambda2=%.4f\n",
		steps, snap.Nodes, snap.Edges, snap.Connected, snap.MaxDegree, snap.Lambda2)
	if snap.ExpansionExact != metrics.Unavailable {
		fmt.Fprintf(stdout, "exact: h=%.4f phi=%.4f\n", snap.ExpansionExact, snap.ConductanceExact)
	} else {
		fmt.Fprintf(stdout, "sweep-cut bounds: h<=%.4f phi<=%.4f (phi>=%.4f by Cheeger)\n",
			snap.SweepExpansion, snap.SweepConductance, snap.Lambda2Norm/2)
	}
}
