package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunStarMaxDegree(t *testing.T) {
	code, out, errOut := runCLI(t, "-workload", "star", "-n", "12",
		"-adversary", "maxdeg", "-steps", "4", "-v")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "invariants: ok") {
		t.Fatalf("missing invariants line:\n%s", out)
	}
	if !strings.Contains(out, "step   1: delete") {
		t.Fatalf("missing event trace:\n%s", out)
	}
}

func TestRunBaselineHealer(t *testing.T) {
	code, out, errOut := runCLI(t, "-workload", "star", "-n", "10",
		"-healer", "forgiving-tree", "-adversary", "sequential", "-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "after 3 events") {
		t.Fatalf("missing summary:\n%s", out)
	}
}

func TestRunDistributed(t *testing.T) {
	code, out, errOut := runCLI(t, "-workload", "regular", "-n", "24",
		"-adversary", "churn", "-steps", "10", "-distributed", "-v")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "local views: consistent with healed graph") {
		t.Fatalf("missing validation line:\n%s", out)
	}
	if !strings.Contains(out, "protocol:") {
		t.Fatalf("missing protocol cost line:\n%s", out)
	}
}

func TestRecordReplayAndDot(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.json")
	dotPath := filepath.Join(dir, "out.dot")

	code, out, errOut := runCLI(t, "-workload", "star", "-n", "10",
		"-adversary", "maxdeg", "-steps", "3",
		"-record", tracePath, "-dot", dotPath)
	if code != 0 {
		t.Fatalf("record run exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "trace recorded") || !strings.Contains(out, "healed graph written") {
		t.Fatalf("missing record/dot confirmations:\n%s", out)
	}

	code, out, errOut = runCLI(t, "-replay", tracePath, "-healer", "cycle")
	if code != 0 {
		t.Fatalf("replay exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "replaying") {
		t.Fatalf("missing replay banner:\n%s", out)
	}
}

// TestDeterministicStdout pins the CLI's reproducibility contract: equal
// flags and seed produce byte-identical stdout, in both the sequential and
// the distributed mode (trace repros and the conformance corpus depend on
// it).
func TestDeterministicStdout(t *testing.T) {
	for _, mode := range [][]string{
		{"-workload", "er", "-n", "32", "-adversary", "churn", "-steps", "15", "-seed", "7", "-v"},
		{"-workload", "regular", "-n", "24", "-adversary", "churn", "-steps", "10", "-seed", "7", "-distributed", "-v"},
	} {
		code, first, errOut := runCLI(t, mode...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", mode, code, errOut)
		}
		code, second, errOut := runCLI(t, mode...)
		if code != 0 {
			t.Fatalf("%v: rerun exit %d, stderr: %s", mode, code, errOut)
		}
		if first != second {
			t.Fatalf("%v: stdout not deterministic:\n--- first\n%s\n--- second\n%s", mode, first, second)
		}
	}
}

// TestAllAdversaryNamesRun: the -adversary flag accepts every registry name
// (the CLI and the conformance matrix share adversary.ByName, so a name that
// works here works there).
func TestAllAdversaryNamesRun(t *testing.T) {
	for _, name := range adversary.Names() {
		code, out, errOut := runCLI(t, "-workload", "cycle", "-n", "12",
			"-adversary", name, "-steps", "3", "-seed", "2")
		if code != 0 {
			t.Fatalf("adversary %q: exit %d, stderr: %s", name, code, errOut)
		}
		if !strings.Contains(out, "after ") {
			t.Fatalf("adversary %q: missing summary:\n%s", name, out)
		}
	}
}

// TestUnknownAdversaryErrorNamesValidSet: the error is the discoverability
// path, so it must list what would have worked.
func TestUnknownAdversaryErrorNamesValidSet(t *testing.T) {
	code, _, errOut := runCLI(t, "-adversary", "nuke")
	if code == 0 {
		t.Fatal("unknown adversary accepted")
	}
	for _, name := range adversary.Names() {
		if !strings.Contains(errOut, name) {
			t.Fatalf("stderr %q does not mention valid adversary %q", errOut, name)
		}
	}
}

func TestBadFlags(t *testing.T) {
	// (unknown -adversary is covered by TestUnknownAdversaryErrorNamesValidSet)
	if code, _, _ := runCLI(t, "-workload", "nope"); code == 0 {
		t.Fatal("unknown workload should fail")
	}
	if code, _, _ := runCLI(t, "-healer", "nope", "-steps", "1"); code == 0 {
		t.Fatal("unknown healer should fail")
	}
	if code, _, _ := runCLI(t, "-notaflag"); code != 2 {
		t.Fatal("bad flag should return usage error")
	}
	if code, _, _ := runCLI(t, "-replay", "/does/not/exist.json"); code == 0 {
		t.Fatal("missing replay file should fail")
	}
}
