package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/xheal/xheal/internal/conformance"
	"github.com/xheal/xheal/internal/harness"
	"github.com/xheal/xheal/internal/obs"
	"github.com/xheal/xheal/internal/trace"
)

// replayConformance re-runs one saved schedule artifact through the full
// lockstep checker — the repro command a failing cell prints. Unlike
// `xheal-sim -replay` (which replays one engine), this reproduces every
// failure kind the matrix can detect: divergence needs both engines side by
// side. Metric checkpoints run on every event, since shrunk schedules are
// short.
func replayConformance(stdout, stderr io.Writer, path string, seed int64, kappa int) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	adv, err := tr.Adversary()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "replaying %s through the lockstep checker: %d events, seed=%d kappa=%d\n",
		path, len(tr.Events), seed, kappa)
	res, err := conformance.Run(tr.Initial(), adv, conformance.Options{
		Kappa: kappa, Seed: seed, MetricsEvery: 1,
	})
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		fmt.Fprintln(stdout, "conformance: FAIL")
		return 1
	}
	fmt.Fprintf(stdout, "conformance: ok (%d events, %d deletions, %d rounds, %d messages)\n",
		len(res.Events), res.Deletions, res.Totals.Rounds, res.Totals.Messages)
	return 0
}

// runConformance is the CI soak mode: every adversary × workload cell runs
// the lockstep centralized-vs-distributed simulation with the full per-event
// check battery. Cells run on the shared bounded worker pool; output is
// rendered in cell order, so stdout is byte-reproducible for a fixed seed.
// A failing cell is shrunk to a minimal schedule and saved as a replayable
// trace artifact before being reported.
func runConformance(stdout, stderr io.Writer, n, steps int, seed int64, kappa int) int {
	cells := conformance.MatrixCells(n, steps, seed)
	type outcome struct {
		res  *conformance.Result
		line string // failure report, empty on success
	}
	results := make([]outcome, len(cells))
	// One recorder + histogram per cell (cells run concurrently); the
	// snapshots merge into a soak-wide repair-latency aggregate afterwards.
	// Timing goes to stderr only — stdout stays byte-reproducible.
	hists := make([]*obs.Histogram, len(cells))
	recs := make([]*obs.Recorder, len(cells))
	for i := range cells {
		hists[i] = obs.MustHistogram(obs.LatencyBuckets())
		recs[i] = obs.NewRecorder(nil, hists[i])
	}
	_ = harness.ForEachIndex(len(cells), func(i int) error {
		c := cells[i]
		opts := conformance.Options{Kappa: kappa, Seed: c.Seed, MetricsEvery: 10, Recorder: recs[i]}
		g0, res, err := conformance.RunCell(c, opts)
		if err == nil {
			results[i] = outcome{res: res}
			return nil
		}
		var fail *conformance.Failure
		if !errors.As(err, &fail) {
			results[i] = outcome{line: fmt.Sprintf("%s: setup: %v", c, err)}
			return nil
		}
		minimal, minFail := conformance.Shrink(g0, res.Events, opts)
		report := fmt.Sprintf("%s: %v", c, fail)
		if f, err := os.CreateTemp("", "xheal-conformance-*.json"); err == nil {
			path := f.Name()
			f.Close()
			if err := conformance.WriteArtifact(path, g0, minimal); err == nil {
				if minFail == nil {
					// Sanitized replay masks the failure; the full schedule
					// is saved and the strict lockstep repro still trips it.
					report += fmt.Sprintf("\n  not reproducible under sanitized shrinking; full %d-event schedule saved\n  repro: %s",
						len(minimal), conformance.ReproCommand(path, opts))
				} else {
					report += fmt.Sprintf("\n  shrunk to %d events: %v\n  repro: %s",
						len(minimal), minFail, conformance.ReproCommand(path, opts))
				}
			}
		}
		results[i] = outcome{line: report}
		return nil
	})

	failures := 0
	for i, c := range cells {
		if line := results[i].line; line != "" {
			failures++
			fmt.Fprintln(stderr, line)
			fmt.Fprintf(stdout, "FAIL %s\n", c)
			continue
		}
		res := results[i].res
		fmt.Fprintf(stdout, "ok   %-40s events=%-3d dels=%-3d rounds=%-4d msgs=%-6d maxrounds=%d\n",
			c, len(res.Events), res.Deletions, res.Totals.Rounds, res.Totals.Messages, res.MaxRounds)
	}
	fmt.Fprintf(stdout, "conformance: %d/%d cells ok (n=%d, %d events/cell, κ=%d, seed=%d)\n",
		len(cells)-failures, len(cells), n, steps, kappa, seed)

	var agg obs.HistSnapshot
	var rounds, msgs uint64
	for i := range cells {
		agg.Merge(hists[i].Snapshot())
		r, m := recs[i].Ledger()
		rounds += r
		msgs += m
	}
	if sum := agg.Summary(); sum.Count > 0 {
		fmt.Fprintf(stderr, "soak repair latency p50/p95/p99 = %.3f/%.3f/%.3f ms over %d repairs (%d rounds, %d messages)\n",
			sum.P50MS, sum.P95MS, sum.P99MS, sum.Count, rounds, msgs)
	}
	if failures > 0 {
		return 1
	}
	return 0
}
