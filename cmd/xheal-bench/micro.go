package main

import (
	"testing"

	"github.com/xheal/xheal/internal/benchcases"
)

// microResult is one core micro-benchmark measurement in the -benchjson
// output; the same quantities `go test -bench` prints.
type microResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// runMicroBenches times the core primitives with the testing package's
// benchmark driver — the allocation trajectory BENCH_*.json tracks across
// PRs. The bodies are the exact ones bench_test.go runs (see
// internal/benchcases), so the recorded numbers and the CI benchmark smoke
// job can never measure different code.
func runMicroBenches() []microResult {
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"HealDeletion", benchcases.HealDeletion},
		{"ApplyBatchSerial", benchcases.ApplyBatchSerial},
		{"ApplyBatchParallel", benchcases.ApplyBatchParallel},
		{"DistributedDeletion", benchcases.DistributedDeletion},
		{"HGraphChurn", benchcases.HGraphChurn},
		{"Lambda2Jacobi", benchcases.Lambda2Jacobi},
		{"Lambda2Lanczos", benchcases.Lambda2Lanczos},
		{"MixingTime", benchcases.MixingTime},
	}
	out := make([]microResult, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		out = append(out, microResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}
